#!/usr/bin/env python3
"""Compare a fresh BENCH_kernel.json against the checked-in baseline.

Usage: perf_check.py FRESH BASELINE [--max-regression FRAC]

Fails (exit 1) when the fresh events/sec figure has regressed by more
than --max-regression (default 0.25, the CI perf-smoke gate) relative
to the baseline. Improvements always pass; the baseline is refreshed
by re-running bench_kernel_throughput and committing the new JSON
alongside the change that earned it.
"""

import argparse
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    for key in ("events_per_sec", "ticks_per_sec", "wall_s", "events"):
        if key not in doc:
            sys.exit(f"{path}: missing field '{key}'")
    return doc


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly measured BENCH_kernel.json")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional events/sec drop "
                             "(default 0.25)")
    args = parser.parse_args()

    fresh = load(args.fresh)
    base = load(args.baseline)

    # The event count is a pure function of the workload: a change
    # means the benchmark is no longer measuring the same work, which
    # would make the throughput comparison meaningless.
    if fresh["events"] != base["events"]:
        sys.exit(
            f"event count changed: fresh {fresh['events']} vs baseline "
            f"{base['events']}; re-record the baseline if the workload "
            "change is intentional")

    fresh_eps = float(fresh["events_per_sec"])
    base_eps = float(base["events_per_sec"])
    ratio = fresh_eps / base_eps if base_eps > 0 else float("inf")
    floor = 1.0 - args.max_regression

    print(f"events/sec: fresh {fresh_eps:.4g}  baseline {base_eps:.4g}  "
          f"ratio {ratio:.3f}  floor {floor:.2f}")
    if ratio < floor:
        sys.exit(
            f"kernel throughput regressed {100 * (1 - ratio):.1f}% "
            f"(> {100 * args.max_regression:.0f}% allowed)")
    print("perf check OK")


if __name__ == "__main__":
    main()
