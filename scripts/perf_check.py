#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against the checked-in baseline.

Usage: perf_check.py FRESH BASELINE [--max-regression FRAC]

Two on-disk forms are understood, so the kernel benchmark and the
cluster sweep share one gate:

  - legacy single-run form (bench_kernel_throughput):
      {"events_per_sec": ..., "ticks_per_sec": ..., "wall_s": ...,
       "events": ...}
  - multi-entry trajectory form (bench_cluster):
      {"benchmark": "...", "entries": [{"name": ..., "events": ...,
       "wall_s": ..., "events_per_sec": ...}, ...]}

A legacy document is treated as one entry named "default". Entries are
matched by name: every baseline entry must appear in the fresh run
(a vanished entry means the benchmark stopped measuring something),
extra fresh entries are reported but pass (new sweep points need a
baseline refresh to become load-bearing).

Fails (exit 1) when any matched entry's events/sec has regressed by
more than --max-regression (default 0.25, the CI gate) relative to the
baseline. Improvements always pass; baselines are refreshed by
re-running the benchmark and committing the new JSON alongside the
change that earned it.
"""

import argparse
import json
import sys


def load_entries(path):
    """Return {name: entry-dict} for either supported JSON form."""
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)

    if "entries" in doc:
        entries = {}
        for i, entry in enumerate(doc["entries"]):
            for key in ("name", "events", "wall_s", "events_per_sec"):
                if key not in entry:
                    sys.exit(f"{path}: entries[{i}] missing '{key}'")
            name = entry["name"]
            if name in entries:
                sys.exit(f"{path}: duplicate entry name '{name}'")
            entries[name] = entry
        if not entries:
            sys.exit(f"{path}: 'entries' is empty")
        return entries

    for key in ("events_per_sec", "ticks_per_sec", "wall_s", "events"):
        if key not in doc:
            sys.exit(f"{path}: missing field '{key}'")
    return {"default": doc}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh", help="freshly measured BENCH_*.json")
    parser.add_argument("baseline", help="checked-in baseline JSON")
    parser.add_argument("--max-regression", type=float, default=0.25,
                        help="allowed fractional events/sec drop "
                             "(default 0.25)")
    args = parser.parse_args()

    fresh = load_entries(args.fresh)
    base = load_entries(args.baseline)
    floor = 1.0 - args.max_regression

    missing = [name for name in base if name not in fresh]
    if missing:
        sys.exit(
            f"baseline entries missing from fresh run: "
            f"{', '.join(sorted(missing))}; the benchmark no longer "
            "measures them — re-record the baseline if intentional")

    extra = [name for name in fresh if name not in base]
    for name in sorted(extra):
        print(f"{name}: not in baseline (new entry, not gated)")

    failures = []
    for name in sorted(base):
        f_entry = fresh[name]
        b_entry = base[name]

        # The event count is a pure function of the workload: a change
        # means the benchmark is no longer measuring the same work,
        # which would make the throughput comparison meaningless.
        if f_entry["events"] != b_entry["events"]:
            sys.exit(
                f"{name}: event count changed: fresh "
                f"{f_entry['events']} vs baseline {b_entry['events']}; "
                "re-record the baseline if the workload change is "
                "intentional")

        fresh_eps = float(f_entry["events_per_sec"])
        base_eps = float(b_entry["events_per_sec"])
        ratio = fresh_eps / base_eps if base_eps > 0 else float("inf")
        print(f"{name}: events/sec fresh {fresh_eps:.4g}  baseline "
              f"{base_eps:.4g}  ratio {ratio:.3f}  floor {floor:.2f}")
        if ratio < floor:
            failures.append(
                f"{name}: regressed {100 * (1 - ratio):.1f}% "
                f"(> {100 * args.max_regression:.0f}% allowed)")

    if failures:
        sys.exit("\n".join(failures))
    print("perf check OK")


if __name__ == "__main__":
    main()
