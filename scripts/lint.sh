#!/usr/bin/env sh
# Static analysis driver: the CoScale invariant linter
# (tools/lint/coscale_lint.py, python3 only) plus clang-tidy over the
# compilation database cmake exports (CMAKE_EXPORT_COMPILE_COMMANDS is
# always on).
#
# Usage:
#   scripts/lint.sh [--require-tools] [build-dir] [-- extra clang-tidy args]
#
# Environment:
#   CLANG_TIDY  clang-tidy executable to use (default: first of
#               clang-tidy, clang-tidy-18 .. clang-tidy-14 on PATH).
#
# Tool-availability policy:
#   default          missing optional tools (clang-tidy, clang-query)
#                    print a notice and are skipped, so the script is
#                    safe in gcc-only environments;
#   --require-tools  a missing tool is an error (exit 2). CI passes
#                    this flag, so a missing tool can never silently
#                    green the lint job.
set -eu

REQUIRE_TOOLS=0
if [ "${1:-}" = "--require-tools" ]; then
    REQUIRE_TOOLS=1
    shift
fi

BUILD_DIR="${1:-build}"
[ $# -gt 0 ] && shift
[ "${1:-}" = "--" ] && shift

cd "$(dirname "$0")/.."

fail_or_skip() {
    # $1 = tool name
    if [ "${REQUIRE_TOOLS}" = 1 ]; then
        echo "lint.sh: $1 not found but --require-tools was given" >&2
        exit 2
    fi
    echo "lint.sh: $1 not found on PATH; skipping that stage." >&2
}

# --- Stage 1: CoScale invariant linter (fixture self-test, then the
# enforced whole-src/ run). Needs only python3.
if command -v python3 >/dev/null 2>&1; then
    echo "lint.sh: coscale_lint self-test"
    python3 tools/lint/coscale_lint.py --self-test
    echo "lint.sh: coscale_lint over src/"
    if [ -f "${BUILD_DIR}/compile_commands.json" ] \
           && command -v clang-query >/dev/null 2>&1; then
        python3 tools/lint/coscale_lint.py -p "${BUILD_DIR}"
    else
        python3 tools/lint/coscale_lint.py
    fi
else
    fail_or_skip python3
fi

# --- Stage 2: clang-tidy over every first-party translation unit.
find_tidy() {
    if [ -n "${CLANG_TIDY:-}" ]; then
        command -v "${CLANG_TIDY}" && return 0
    fi
    for c in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
             clang-tidy-15 clang-tidy-14; do
        command -v "$c" && return 0
    done
    return 1
}

TIDY="$(find_tidy || true)"
if [ -z "${TIDY}" ]; then
    fail_or_skip clang-tidy
    exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing;" >&2
    echo "lint.sh: run 'cmake -B ${BUILD_DIR} -S .' first." >&2
    exit 1
fi

# All first-party translation units; generated/third-party code never
# lands in these directories.
FILES=$(find src tests bench examples -name '*.cc' | sort)

echo "lint.sh: $(${TIDY} --version | head -n 1)"
echo "lint.sh: checking $(echo "${FILES}" | wc -l) files"
# shellcheck disable=SC2086
exec "${TIDY}" -p "${BUILD_DIR}" --quiet "$@" ${FILES}
