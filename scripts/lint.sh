#!/usr/bin/env sh
# Run clang-tidy over the simulator sources using the compilation
# database cmake exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on).
#
# Usage:
#   scripts/lint.sh [build-dir] [-- extra clang-tidy args]
#
# Environment:
#   CLANG_TIDY  clang-tidy executable to use (default: first of
#               clang-tidy, clang-tidy-18 .. clang-tidy-14 on PATH).
#
# Exits 0 with a notice when no clang-tidy is installed, so the script
# is safe to call from environments that only carry the gcc toolchain.
set -eu

BUILD_DIR="${1:-build}"
[ $# -gt 0 ] && shift
[ "${1:-}" = "--" ] && shift

find_tidy() {
    if [ -n "${CLANG_TIDY:-}" ]; then
        command -v "${CLANG_TIDY}" && return 0
    fi
    for c in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
             clang-tidy-15 clang-tidy-14; do
        command -v "$c" && return 0
    done
    return 1
}

TIDY="$(find_tidy || true)"
if [ -z "${TIDY}" ]; then
    echo "lint.sh: clang-tidy not found on PATH (set CLANG_TIDY to" >&2
    echo "lint.sh: override); skipping static analysis." >&2
    exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    echo "lint.sh: ${BUILD_DIR}/compile_commands.json missing;" >&2
    echo "lint.sh: run 'cmake -B ${BUILD_DIR} -S .' first." >&2
    exit 1
fi

cd "$(dirname "$0")/.."

# All first-party translation units; generated/third-party code never
# lands in these directories.
FILES=$(find src tests bench examples -name '*.cc' | sort)

echo "lint.sh: $(${TIDY} --version | head -n 1)"
echo "lint.sh: checking $(echo "${FILES}" | wc -l) files"
# shellcheck disable=SC2086
exec "${TIDY}" -p "${BUILD_DIR}" --quiet "$@" ${FILES}
