#!/usr/bin/env bash
# Measure line coverage of src/ and enforce the committed floor.
#
# Usage:
#   scripts/coverage.sh <build-dir> [--update-baseline]
#
# <build-dir> must have been configured with -DCOSCALE_COVERAGE=ON and
# the tests run (ctest) so the .gcda counters exist. The script runs
# gcov in JSON mode over every instrumented object under
# <build-dir>/src, unions the per-line counters across translation
# units (a header line is covered if any TU covered it), and prints
# the line-coverage percentage of src/. With --update-baseline the
# number is written to scripts/coverage_baseline.txt; otherwise the
# script exits non-zero when coverage fell more than 0.1 points below
# the baseline. Only gcov and python3 are required — both ship with
# the toolchain, so CI and local runs agree to the digit.
set -euo pipefail

build_dir=${1:?usage: scripts/coverage.sh <build-dir> [--update-baseline]}
mode=${2:-check}
repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=$(cd "$build_dir" && pwd)
baseline_file="$repo_root/scripts/coverage_baseline.txt"

if ! find "$build_dir/src" -name '*.gcda' -print -quit | grep -q .; then
    echo "coverage.sh: no .gcda files under $build_dir/src" >&2
    echo "  (configure with -DCOSCALE_COVERAGE=ON and run ctest first)" >&2
    exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

# gcov drops its .gcov.json.gz reports in the working directory.
(
    cd "$workdir"
    find "$build_dir/src" -name '*.gcda' -print0 \
        | xargs -0 gcov --json-format --preserve-paths >/dev/null
)

percent=$(python3 - "$workdir" "$repo_root" <<'PY'
import glob, gzip, json, os, sys

workdir, repo_root = sys.argv[1], sys.argv[2]
src_prefix = os.path.join(repo_root, "src") + os.sep

# (file, line) -> hit anywhere?  Union semantics across TUs.
lines = {}
for report in glob.glob(os.path.join(workdir, "*.gcov.json.gz")):
    with gzip.open(report, "rt") as fh:
        data = json.load(fh)
    for f in data.get("files", []):
        path = os.path.normpath(
            os.path.join(data.get("current_working_directory", ""),
                         f["file"]))
        if not path.startswith(src_prefix):
            continue
        rel = os.path.relpath(path, repo_root)
        for ln in f.get("lines", []):
            key = (rel, ln["line_number"])
            lines[key] = lines.get(key, False) or ln["count"] > 0

total = len(lines)
covered = sum(1 for hit in lines.values() if hit)
if total == 0:
    print("coverage.sh: no src/ lines in the gcov reports", file=sys.stderr)
    sys.exit(2)
print(f"{100.0 * covered / total:.2f} {covered} {total}")
PY
)

read -r pct covered total <<<"$percent"
echo "src/ line coverage: ${pct}% (${covered}/${total} lines)"

if [ "$mode" = "--update-baseline" ]; then
    echo "$pct" > "$baseline_file"
    echo "baseline updated: $baseline_file"
    exit 0
fi

if [ ! -f "$baseline_file" ]; then
    echo "coverage.sh: missing $baseline_file" >&2
    echo "  (create it with: scripts/coverage.sh $build_dir --update-baseline)" >&2
    exit 2
fi

baseline=$(cat "$baseline_file")
ok=$(python3 -c "print(1 if $pct + 0.1 >= $baseline else 0)")
if [ "$ok" != "1" ]; then
    echo "FAIL: coverage ${pct}% is below the committed baseline" \
         "${baseline}% (scripts/coverage_baseline.txt)" >&2
    echo "  Add tests for the new code, or — if the drop is justified —" >&2
    echo "  regenerate the baseline with --update-baseline and explain" >&2
    echo "  why in the commit message." >&2
    exit 1
fi
echo "OK: baseline ${baseline}%"
