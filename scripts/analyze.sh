#!/usr/bin/env sh
# Deep static analysis: cppcheck over the exported compilation
# database, with the checked-in baseline in
# scripts/cppcheck_suppressions.txt. New findings fail the run
# (exit 1); legacy/known ones are tracked in the baseline file with
# reasons, and stale baseline entries fail as unmatchedSuppression so
# the file cannot rot.
#
# Usage:
#   scripts/analyze.sh [--require-tools] [build-dir]
#
# Environment:
#   CPPCHECK      cppcheck executable (default: cppcheck on PATH)
#   CPPCHECK_JOBS parallelism (default: nproc)
set -eu

REQUIRE_TOOLS=0
if [ "${1:-}" = "--require-tools" ]; then
    REQUIRE_TOOLS=1
    shift
fi

BUILD_DIR="${1:-build}"

cd "$(dirname "$0")/.."

CPPCHECK="${CPPCHECK:-cppcheck}"
if ! command -v "${CPPCHECK}" >/dev/null 2>&1; then
    if [ "${REQUIRE_TOOLS}" = 1 ]; then
        echo "analyze.sh: cppcheck not found but --require-tools was" \
             "given" >&2
        exit 2
    fi
    echo "analyze.sh: cppcheck not found on PATH; skipping deep" \
         "static analysis." >&2
    exit 0
fi

if [ ! -f "${BUILD_DIR}/compile_commands.json" ]; then
    echo "analyze.sh: ${BUILD_DIR}/compile_commands.json missing;" >&2
    echo "analyze.sh: run 'cmake -B ${BUILD_DIR} -S .' first." >&2
    exit 1
fi

JOBS="${CPPCHECK_JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "analyze.sh: $(${CPPCHECK} --version)"
# --enable=information reports unmatchedSuppression, which keeps the
# baseline honest; --inline-suppr allows targeted
# `// cppcheck-suppress <id>` with a reason where a finding is a
# true-but-intended positive.
exec "${CPPCHECK}" \
    --project="${BUILD_DIR}/compile_commands.json" \
    --enable=warning,performance,portability,information \
    --inline-suppr \
    --suppressions-list=scripts/cppcheck_suppressions.txt \
    --library=googletest \
    --inconclusive \
    --error-exitcode=1 \
    --quiet \
    -j "${JOBS}"
