/**
 * @file
 * Unit tests for DDR3 parameters: timing resolution across bus
 * frequencies (ns-fixed vs cycle-scaled split), geometry, the
 * bank-interleaved address mapping, and controller-level refresh and
 * frequency-recalibration accounting (checked against the counters
 * the DRAM residency metrics are built on).
 */

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hh"
#include "dram/ddr3_params.hh"
#include "memctrl/mem_ctrl.hh"

namespace coscale {
namespace {

TEST(Ddr3Timing, ResolveAtReferenceClock)
{
    DramTimingParams p;
    ResolvedTiming t = ResolvedTiming::resolve(p, 800 * MHz);
    EXPECT_EQ(t.tCK, 1250u);
    EXPECT_EQ(t.tRCD, 15000u);
    EXPECT_EQ(t.tRP, 15000u);
    EXPECT_EQ(t.tCL, 15000u);
    // Cycle-quoted parameters at the 800 MHz reference clock.
    EXPECT_EQ(t.tRAS, 28u * 1250u);
    EXPECT_EQ(t.tFAW, 20u * 1250u);
    EXPECT_EQ(t.tRTP, 5u * 1250u);
    EXPECT_EQ(t.tRRD, 4u * 1250u);
    EXPECT_EQ(t.tBURST, 4u * 1250u);
    EXPECT_EQ(t.tRFC, 110u * 1000u);
    EXPECT_EQ(t.tREFI, static_cast<Tick>(7.8 * tickPerUs));
}

TEST(Ddr3Timing, DramCoreTimingIsWallClockFixed)
{
    DramTimingParams p;
    ResolvedTiming fast = ResolvedTiming::resolve(p, 800 * MHz);
    ResolvedTiming slow = ResolvedTiming::resolve(p, 200 * MHz);
    // Analog DRAM-core timing does not stretch.
    EXPECT_EQ(fast.tRCD, slow.tRCD);
    EXPECT_EQ(fast.tRAS, slow.tRAS);
    EXPECT_EQ(fast.tFAW, slow.tFAW);
    EXPECT_EQ(fast.tRRD, slow.tRRD);
    EXPECT_EQ(fast.tRTP, slow.tRTP);
    // Only the data burst occupies real cycles of the slower clock.
    EXPECT_EQ(slow.tBURST, 4u * fast.tBURST);
    EXPECT_EQ(slow.tCK, 4u * fast.tCK);
}

TEST(Ddr3Timing, BurstScalesInverselyWithFrequency)
{
    DramTimingParams p;
    Tick prev = 0;
    for (Freq f : {800 * MHz, 600 * MHz, 400 * MHz, 200 * MHz}) {
        ResolvedTiming t = ResolvedTiming::resolve(p, f);
        EXPECT_GT(t.tBURST, prev);
        prev = t.tBURST;
        EXPECT_NEAR(static_cast<double>(t.tBURST),
                    4.0 * tickPerSec / f, 4.0);
    }
}

TEST(MemGeometry, Table2Defaults)
{
    MemGeometry g;
    EXPECT_EQ(g.channels, 4);
    EXPECT_EQ(g.ranksPerChannel(), 4);   // 2 DIMMs x dual rank
    EXPECT_EQ(g.totalRanks(), 16);
    EXPECT_EQ(g.banksPerRank, 8);
    EXPECT_EQ(g.totalBanksPerChannel(), 32);
}

TEST(AddressMap, ConsecutiveBlocksInterleaveChannels)
{
    MemGeometry g;
    for (BlockAddr a = 0; a < 64; ++a) {
        DramCoord c = mapAddress(a, g);
        EXPECT_EQ(c.channel, static_cast<int>(a % 4));
    }
}

TEST(AddressMap, ConsecutiveSameChannelBlocksInterleaveBanks)
{
    MemGeometry g;
    // Blocks 0, 4, 8, ... all land on channel 0 and walk the banks.
    for (int i = 0; i < 8; ++i) {
        DramCoord c = mapAddress(static_cast<BlockAddr>(i) * 4, g);
        EXPECT_EQ(c.channel, 0);
        EXPECT_EQ(c.bank, i);
    }
}

TEST(AddressMap, FieldsWithinBounds)
{
    MemGeometry g;
    for (BlockAddr a = 0; a < 100000; a += 977) {
        DramCoord c = mapAddress(a * 1315423911ULL, g);
        EXPECT_GE(c.channel, 0);
        EXPECT_LT(c.channel, g.channels);
        EXPECT_GE(c.rank, 0);
        EXPECT_LT(c.rank, g.ranksPerChannel());
        EXPECT_GE(c.bank, 0);
        EXPECT_LT(c.bank, g.banksPerRank);
        EXPECT_GE(c.column, 0);
        EXPECT_LT(c.column, g.blocksPerRow);
        EXPECT_LT(c.row, g.rowsPerBank);
    }
}

TEST(AddressMap, IsInjectiveOverSmallRange)
{
    MemGeometry g;
    std::set<std::tuple<int, int, int, std::uint64_t, int>> seen;
    for (BlockAddr a = 0; a < 4096; ++a) {
        DramCoord c = mapAddress(a, g);
        auto key = std::make_tuple(c.channel, c.rank, c.bank, c.row,
                                   c.column);
        EXPECT_TRUE(seen.insert(key).second)
            << "duplicate mapping for block " << a;
    }
}

TEST(DramCurrents, Table2Values)
{
    DramCurrentParams c;
    EXPECT_DOUBLE_EQ(c.iRowRead, 250.0);
    EXPECT_DOUBLE_EQ(c.iRowWrite, 250.0);
    EXPECT_DOUBLE_EQ(c.iActPre, 120.0);
    EXPECT_DOUBLE_EQ(c.iActiveStandby, 67.0);
    EXPECT_DOUBLE_EQ(c.iActivePowerdown, 45.0);
    EXPECT_DOUBLE_EQ(c.iPrechargeStandby, 70.0);
    EXPECT_DOUBLE_EQ(c.iPrechargePowerdown, 45.0);
    EXPECT_DOUBLE_EQ(c.iRefresh, 240.0);
    EXPECT_DOUBLE_EQ(c.vdd, 1.5);
}

// --- Refresh cadence and re-calibration accounting ---

TEST(MemRefresh, RefreshTimingIsWallClockFixedAcrossTheLadder)
{
    DramTimingParams p;
    FreqLadder ladder = defaultMemLadder();
    for (int i = 0; i < ladder.size(); ++i) {
        ResolvedTiming t = ResolvedTiming::resolve(p, ladder.freq(i));
        EXPECT_EQ(t.tREFI, static_cast<Tick>(7.8 * tickPerUs)) << i;
        EXPECT_EQ(t.tRFC, 110u * 1000u) << i;
    }
}

/**
 * Drive steady uniform reads over [0, until), switching every channel
 * to @p second_idx at the halfway point, and return the refresh count
 * (with the count at the switch in @p half_out).
 */
std::uint64_t
refreshesUnderLoad(Tick until, int second_idx, std::uint64_t *half_out)
{
    MemCtrlConfig cfg;
    cfg.ladder = defaultMemLadder();
    MemCtrl mc(cfg, 0);
    Rng rng(17);
    Tick now = 0;
    std::uint64_t token = 1;
    bool switched = false;
    while (now < until) {
        now += 100 * tickPerNs;
        if (!switched && now >= until / 2) {
            *half_out = mc.totalCounters().refreshes;
            mc.setFrequency(ChannelSel::all(), second_idx, now);
            switched = true;
        }
        MemReq r;
        r.addr = rng.next() & 0xffffff;
        r.kind = ReqKind::Read;
        r.core = 0;
        r.arrival = now;
        r.token = token++;
        mc.enqueue(r);
        while (mc.nextEventTick() <= now)
            mc.step();
    }
    while (mc.nextEventTick() != maxTick)
        mc.step();
    return mc.totalCounters().refreshes;
}

TEST(MemRefresh, CountedRefreshesTrackTrefiAcrossAFrequencyTransition)
{
    // Each rank refreshes every tREFI regardless of the bus clock, so
    // the refresh counter must track elapsed wall time / tREFI per
    // rank, with the same cadence before and after a max-to-min bus
    // transition in the middle of the run.
    const Tick span = 2000 * tickPerUs;
    std::uint64_t at_half = 0;
    std::uint64_t total = refreshesUnderLoad(span, 9, &at_half);

    MemGeometry geom;
    double expected = static_cast<double>(span) / (7.8 * tickPerUs)
                      * geom.totalRanks();
    EXPECT_NEAR(static_cast<double>(total), expected, expected * 0.10);
    EXPECT_NEAR(static_cast<double>(total - at_half),
                static_cast<double>(at_half), expected * 0.10);
}

TEST(MemRecalibration, TransitionHaltsTheChannel512CyclesPlus28ns)
{
    // Two identical controllers end at the same frequency; only the
    // switch time differs. A read arriving right at a switch is
    // delayed by the full halt (512 cycles at the new clock + 28 ns);
    // a long-settled switch leaves no residue. A refresh (tRFC) may
    // graze either path's issue tick, so the comparison carries one
    // tRFC of slop per side.
    MemCtrlConfig cfg;
    cfg.ladder = defaultMemLadder();
    const Tick t0 = 50 * tickPerUs;

    auto readFinish = [&](int target, Tick switch_at) -> Tick {
        MemCtrl mc(cfg, 0);
        mc.setFrequency(ChannelSel::all(), target, switch_at);
        MemReq r;
        r.addr = 0x1234;
        r.kind = ReqKind::Read;
        r.core = 0;
        r.arrival = t0;
        r.token = 1;
        mc.enqueue(r);
        while (mc.nextEventTick() != maxTick) {
            auto done = mc.step();
            if (done)
                return done->finishAt;
        }
        ADD_FAILURE() << "read never completed";
        return 0;
    };

    Tick slop = ResolvedTiming::resolve(cfg.timing, 800 * MHz).tRFC;
    Tick prev_halt = 0;
    for (int target : {1, 5, 9}) {
        Tick diff = readFinish(target, t0) - readFinish(target, 0);
        Tick t_ck = periodTicks(cfg.ladder.freq(target));
        Tick halt = t_ck * static_cast<Tick>(cfg.timing.recalCycles)
                    + nsToTicks(cfg.timing.recalExtraNs);
        EXPECT_GE(diff + slop, halt) << "target " << target;
        EXPECT_LE(diff, halt + slop) << "target " << target;
        // The penalty is denominated in cycles of the new clock, so
        // it grows as the target frequency drops.
        EXPECT_GT(halt, prev_halt);
        prev_halt = halt;
    }
}

// ---------------------------------------------------------------------
// Per-standard timing packages (dram/mem_backend.hh).
// ---------------------------------------------------------------------

TEST(DramStandards, Ddr3PackageIsThePaperDefault)
{
    // The DDR3 package must be bit-identical to the historical
    // defaults so selecting it explicitly changes nothing.
    const DramStandardInfo &info = dramStandardInfo(DramStandard::Ddr3);
    DramTimingParams def;
    EXPECT_EQ(info.timing.tRCDns, def.tRCDns);
    EXPECT_EQ(info.timing.tCLns, def.tCLns);
    EXPECT_EQ(info.timing.tWRns, def.tWRns);
    EXPECT_EQ(info.timing.refClock, def.refClock);
    EXPECT_EQ(info.busMax, 800 * MHz);
    FreqLadder ladder = standardMemLadder(DramStandard::Ddr3);
    FreqLadder hist = defaultMemLadder();
    ASSERT_EQ(ladder.size(), hist.size());
    for (int i = 0; i < ladder.size(); ++i) {
        EXPECT_EQ(ladder.freq(i), hist.freq(i)) << "step " << i;
        EXPECT_EQ(ladder.voltage(i), hist.voltage(i)) << "step " << i;
    }
}

TEST(DramStandards, EveryPackageResolvesToSaneTiming)
{
    for (DramStandard s : {DramStandard::Ddr3, DramStandard::Ddr4,
                           DramStandard::Lpddr4}) {
        SCOPED_TRACE(dramStandardName(s));
        const DramStandardInfo &info = dramStandardInfo(s);
        EXPECT_GT(info.busMax, info.busMin);
        FreqLadder ladder = standardMemLadder(s);
        ASSERT_GE(ladder.size(), 2);
        EXPECT_EQ(ladder.freq(0), info.busMax);
        EXPECT_EQ(ladder.freq(ladder.size() - 1), info.busMin);
        for (int i = 1; i < ladder.size(); ++i)
            EXPECT_LT(ladder.freq(i), ladder.freq(i - 1)) << "step " << i;
        // Timing must resolve at both ends of the ladder with
        // positive core-latency components.
        for (Freq f : {info.busMax, info.busMin}) {
            ResolvedTiming t = ResolvedTiming::resolve(info.timing, f);
            EXPECT_GT(t.tRCD, 0u);
            EXPECT_GT(t.tCL, 0u);
            EXPECT_GT(t.tRP, 0u);
            EXPECT_GT(t.tBURST, 0u);
            EXPECT_GT(t.tRFC, 0u);
        }
        EXPECT_GT(info.currents.iActPre, 0.0);
        EXPECT_GT(info.currents.vdd, 0.0);
    }
}

TEST(DramStandards, PackagesAreDistinct)
{
    const DramStandardInfo &d3 = dramStandardInfo(DramStandard::Ddr3);
    const DramStandardInfo &d4 = dramStandardInfo(DramStandard::Ddr4);
    const DramStandardInfo &lp = dramStandardInfo(DramStandard::Lpddr4);
    // DDR4/LPDDR4 run a faster bus than DDR3-800...
    EXPECT_GT(d4.busMax, d3.busMax);
    EXPECT_GT(lp.busMax, d3.busMax);
    // ...and LPDDR4 trades latency for power: slower row activation,
    // lower supply voltage and background current than DDR4.
    EXPECT_GT(lp.timing.tRCDns, d4.timing.tRCDns);
    EXPECT_LT(lp.currents.vdd, d4.currents.vdd);
    EXPECT_LT(lp.currents.iActiveStandby, d4.currents.iActiveStandby);
}

} // namespace
} // namespace coscale
