/**
 * @file
 * Shared golden-fixture helper for the trace byte-identity tests
 * (test_obs, test_fault, test_golden). Fixtures live in the source
 * tree (tests/golden/, path injected via the COSCALE_GOLDEN_DIR
 * compile definition) so a mismatch shows up as a reviewable diff;
 * COSCALE_REGEN_GOLDEN=1 in the environment rewrites them in place.
 */

#ifndef COSCALE_TESTS_GOLDEN_UTIL_HH
#define COSCALE_TESTS_GOLDEN_UTIL_HH

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef COSCALE_GOLDEN_DIR
#error "targets using golden_util.hh must define COSCALE_GOLDEN_DIR"
#endif

namespace coscale {

/**
 * Byte-compare @p got against the checked-in fixture, or rewrite the
 * fixture when COSCALE_REGEN_GOLDEN is set in the environment.
 */
inline void
checkGolden(const std::string &fixture, const std::string &got)
{
    std::string path = std::string(COSCALE_GOLDEN_DIR) + "/" + fixture;
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe in a test harness
    if (std::getenv("COSCALE_REGEN_GOLDEN") != nullptr) {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(out) << "cannot write fixture " << path;
        out << got;
        GTEST_SKIP() << "regenerated " << path;
    }
    std::ifstream in(path, std::ios::binary);
    ASSERT_TRUE(in) << "missing fixture " << path
                    << "; create it with COSCALE_REGEN_GOLDEN=1";
    std::ostringstream want;
    want << in.rdbuf();
    ASSERT_EQ(got.size(), want.str().size())
        << fixture << " changed size; if the simulator change is "
        << "intentional, regenerate with COSCALE_REGEN_GOLDEN=1 and "
        << "commit the diff";
    EXPECT_TRUE(got == want.str())
        << fixture << " changed content; if the simulator change is "
        << "intentional, regenerate with COSCALE_REGEN_GOLDEN=1 and "
        << "commit the diff";
}

} // namespace coscale

#endif // COSCALE_TESTS_GOLDEN_UTIL_HH
