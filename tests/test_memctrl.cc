/**
 * @file
 * Unit tests for the memory controller and channel scheduler: FCFS
 * ordering, bank/bus timing constraints, write-drain hysteresis,
 * refresh, frequency transitions, counters, and open-page hits.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "check/dram_audit.hh"
#include "common/rng.hh"
#include "memctrl/mem_ctrl.hh"

namespace coscale {
namespace {

MemCtrlConfig
makeConfig(bool open_page = false)
{
    MemCtrlConfig cfg;
    cfg.ladder = defaultMemLadder();
    cfg.backend.rowPolicy = open_page ? RowPolicy::Open : RowPolicy::ClosedAuto;
    return cfg;
}

/** Drain all pending events up to (and including) @p until. */
std::vector<MemCompletion>
drain(MemCtrl &mc, Tick until = maxTick)
{
    std::vector<MemCompletion> done;
    while (mc.nextEventTick() <= until && mc.nextEventTick() != maxTick) {
        auto c = mc.step();
        if (c)
            done.push_back(*c);
    }
    return done;
}

MemReq
readReq(BlockAddr addr, Tick arrival, CoreId core = 0,
        std::uint64_t token = 1)
{
    MemReq r;
    r.addr = addr;
    r.kind = ReqKind::Read;
    r.core = core;
    r.arrival = arrival;
    r.token = token;
    return r;
}

MemReq
writeReq(BlockAddr addr, Tick arrival)
{
    MemReq r;
    r.addr = addr;
    r.kind = ReqKind::Writeback;
    r.arrival = arrival;
    return r;
}

TEST(MemCtrl, SingleReadLatencyIsServiceTime)
{
    MemCtrl mc(makeConfig(), 0);
    mc.enqueue(readReq(0, 1000));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 1u);
    // ACT at 1000, data = tRCD + tCL + burst, + fixed response.
    Tick expect = 1000 + nsToTicks(15) + nsToTicks(15) + 4 * 1250
                  + nsToTicks(10);
    EXPECT_EQ(done[0].finishAt, expect);
    EXPECT_EQ(done[0].core, 0);
    EXPECT_EQ(done[0].token, 1u);
}

TEST(MemCtrl, SameBankReadsSerialize)
{
    MemCtrl mc(makeConfig(), 0);
    // Same address -> same channel/bank/row.
    mc.enqueue(readReq(0, 0, 0, 1));
    mc.enqueue(readReq(0, 0, 0, 2));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 2u);
    // Second access must wait for the closed-page bank cycle:
    // tRAS + tRP after the first ACT at the earliest.
    Tick bank_ready = 0 + 28 * 1250 + nsToTicks(15);
    Tick expect2 = bank_ready + nsToTicks(30) + 4 * 1250 + nsToTicks(10);
    EXPECT_EQ(done[1].finishAt, expect2);
}

TEST(MemCtrl, DifferentBanksOverlap)
{
    MemCtrl mc(makeConfig(), 0);
    // Blocks 0 and 4 are same channel, different banks.
    mc.enqueue(readReq(0, 0, 0, 1));
    mc.enqueue(readReq(4, 0, 0, 2));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 2u);
    Tick gap = done[1].finishAt - done[0].finishAt;
    // Overlapped: only the tRRD ACT spacing + bus separates them,
    // far less than a full bank cycle.
    EXPECT_LE(gap, static_cast<Tick>(4 * 1250) + 4 * 1250);
    EXPECT_GT(gap, 0u);
}

TEST(MemCtrl, DataBusSerializesBursts)
{
    MemCtrl mc(makeConfig(), 0);
    // Four different banks on channel 0: bursts share one data bus.
    for (int i = 0; i < 4; ++i)
        mc.enqueue(readReq(static_cast<BlockAddr>(i) * 4, 0, 0,
                           static_cast<std::uint64_t>(i + 1)));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 4u);
    for (size_t i = 1; i < done.size(); ++i) {
        EXPECT_GE(done[i].finishAt - done[i - 1].finishAt,
                  static_cast<Tick>(4 * 1250));
    }
}

TEST(MemCtrl, FcfsOrderAmongReads)
{
    MemCtrl mc(makeConfig(), 0);
    for (int i = 0; i < 6; ++i)
        mc.enqueue(readReq(static_cast<BlockAddr>(i) * 4,
                           static_cast<Tick>(i), 0,
                           static_cast<std::uint64_t>(i + 1)));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 6u);
    for (size_t i = 0; i < done.size(); ++i)
        EXPECT_EQ(done[i].token, i + 1);
}

TEST(MemCtrl, ReadsPrioritizedOverWrites)
{
    MemCtrl mc(makeConfig(), 0);
    mc.enqueue(writeReq(0, 0));
    mc.enqueue(readReq(4, 0, 0, 1));
    // One write below the watermark: the read goes first.
    Tick first = mc.nextEventTick();
    (void)first;
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 1u);
    ChannelCounters c = mc.totalCounters();
    EXPECT_EQ(c.readReqs, 1u);
    EXPECT_EQ(c.writeReqs, 1u);
    // The read saw no bank wait from the write (it issued first).
    EXPECT_EQ(c.bankWaitTicks, 0u);
}

TEST(MemCtrl, WriteDrainTriggersAtHighWatermark)
{
    MemCtrlConfig cfg = makeConfig();
    cfg.writeHighWater = 4;
    cfg.writeLowWater = 1;
    MemCtrl mc(cfg, 0);
    // Fill channel 0's write queue beyond the watermark.
    for (int i = 0; i < 5; ++i)
        mc.enqueue(writeReq(static_cast<BlockAddr>(i) * 4, 0));
    mc.enqueue(readReq(5 * 4, 0, 0, 1));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 1u);
    // The read had to wait behind drained writes.
    EXPECT_GT(mc.totalCounters().bankWaitTicks, 0u);
}

TEST(MemCtrl, RequestsRouteToTheirChannel)
{
    MemCtrl mc(makeConfig(), 0);
    for (BlockAddr a = 0; a < 4; ++a)
        mc.enqueue(readReq(a, 0, 0, a + 1));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 4u);
    // All four finish with full channel parallelism: identical time.
    for (size_t i = 1; i < 4; ++i)
        EXPECT_EQ(done[i].finishAt, done[0].finishAt);
    for (int c = 0; c < 4; ++c)
        EXPECT_EQ(mc.channelCounters(c).readReqs, 1u);
}

TEST(MemCtrl, FrequencyChangeHaltsAccesses)
{
    MemCtrl mc(makeConfig(), 0);
    mc.setFrequency(ChannelSel::all(), 9, 0);  // to 200 MHz
    EXPECT_EQ(mc.frequencyIndex(), 9);
    EXPECT_DOUBLE_EQ(mc.busFreq(), 200 * MHz);
    mc.enqueue(readReq(0, 0, 0, 1));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 1u);
    // Recalibration: 512 cycles at 5 ns plus 28 ns, before the ACT.
    Tick halt = 512u * 5000u + nsToTicks(28);
    Tick expect = halt + nsToTicks(30) + 4 * 5000 + nsToTicks(10);
    EXPECT_EQ(done[0].finishAt, expect);
}

TEST(MemCtrl, SlowerBusStretchesOnlyBurst)
{
    MemCtrl fast(makeConfig(), 0);
    fast.enqueue(readReq(0, 0, 0, 1));
    Tick t_fast = drain(fast)[0].finishAt;

    MemCtrl slow(makeConfig(), 0);
    slow.setFrequency(ChannelSel::all(), 9, 0);
    Tick halt = 512u * 5000u + nsToTicks(28);
    slow.enqueue(readReq(0, halt, 0, 1));
    Tick t_slow = drain(slow)[0].finishAt - halt;

    // Difference is exactly the burst stretch: 4 cycles at (5 - 1.25) ns.
    EXPECT_EQ(t_slow - t_fast, 4u * (5000u - 1250u));
}

TEST(MemCtrl, RefreshDelaysCollidingRequest)
{
    MemCtrlConfig cfg = makeConfig();
    MemCtrl mc(cfg, 0);
    // Find when channel 0 rank 0 first refreshes: due times are
    // staggered across ranks at tREFI * (r+1) / (ranks+1).
    Tick refi = static_cast<Tick>(7.8 * tickPerUs);
    Tick due = refi * 1 / 5;
    // A read arriving just after the due time waits out tRFC.
    mc.enqueue(readReq(0, due + 1, 0, 1));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_GE(done[0].finishAt,
              due + nsToTicks(110) + nsToTicks(30) + 4 * 1250);
    EXPECT_GE(mc.totalCounters().refreshes, 1u);
}

TEST(MemCtrl, CountersTrackServiceAndBusyTime)
{
    MemCtrl mc(makeConfig(), 0);
    mc.enqueue(readReq(0, 0, 0, 1));
    mc.enqueue(writeReq(4, 0));
    drain(mc);
    ChannelCounters c = mc.totalCounters();
    EXPECT_EQ(c.readReqs, 1u);
    EXPECT_EQ(c.writeReqs, 1u);
    EXPECT_EQ(c.activations, 2u);
    EXPECT_EQ(c.precharges, 2u);
    EXPECT_EQ(c.readBursts, 1u);
    EXPECT_EQ(c.writeBursts, 1u);
    EXPECT_EQ(c.busBusyTicks, 2u * 4u * 1250u);
    EXPECT_GT(c.rankActiveTicks, 0u);
    EXPECT_EQ(c.queueSamples, 1u);
}

TEST(MemCtrl, OpenPageRowHitIsFaster)
{
    MemCtrl mc(makeConfig(true), 0);
    mc.enqueue(readReq(0, 0, 0, 1));
    // Block 4*128 = 512: channel 0, bank 0... same row needs same
    // bank and row: consecutive columns are strided by
    // channels*banks*ranks = 128 blocks.
    mc.enqueue(readReq(128, 0, 0, 2));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 2u);
    ChannelCounters c = mc.totalCounters();
    EXPECT_EQ(c.rowHits, 1u);
    EXPECT_EQ(c.rowMisses, 1u);
    // The row hit skips ACT+tRCD: it finishes one burst after the
    // first read's data.
    EXPECT_EQ(done[1].finishAt - done[0].finishAt,
              static_cast<Tick>(4 * 1250));
}

TEST(MemCtrl, OpenPageRowConflictPaysPrecharge)
{
    MemCtrl mc(makeConfig(true), 0);
    mc.enqueue(readReq(0, 0, 0, 1));
    // Same bank, different row.
    BlockAddr other_row = static_cast<BlockAddr>(128) * 4 * 8 * 4;
    mc.enqueue(readReq(other_row, 0, 0, 2));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 2u);
    EXPECT_EQ(mc.totalCounters().rowHits, 0u);
    // Conflict: wait for bank cycle then a fresh ACT.
    Tick gap = done[1].finishAt - done[0].finishAt;
    EXPECT_GT(gap, nsToTicks(30));
}

TEST(MemCtrl, CopyIsIndependent)
{
    MemCtrl a(makeConfig(), 0);
    a.enqueue(readReq(0, 0, 0, 1));
    MemCtrl b = a;
    auto done_b = drain(b);
    EXPECT_EQ(done_b.size(), 1u);
    // Original still has its pending request.
    auto done_a = drain(a);
    EXPECT_EQ(done_a.size(), 1u);
    EXPECT_EQ(done_a[0].finishAt, done_b[0].finishAt);
}

TEST(MemCtrl, CachedNextEventTickMatchesRecomputeOverRandomStream)
{
    // The event kernel trusts the dirty-flagged nextEventTick() caches
    // (Channel candidate + MemCtrl earliest-channel). Pin the cache
    // contract: after any interleaving of enqueues, issues, and
    // frequency changes, the cached value equals a from-scratch
    // recompute (test hooks drop the caches without touching state).
    MemCtrlConfig cfg = makeConfig(/*open_page=*/true);
    MemCtrl mc(cfg, 0);
    Rng rng(97);
    Tick now = 0;
    std::uint64_t token = 1;

    for (int i = 0; i < 5000; ++i) {
        std::uint64_t action = rng.range(10);
        if (action < 5) {
            now += rng.range(200 * tickPerNs);
            if (rng.bernoulli(0.3))
                mc.enqueue(writeReq(rng.next() & 0xffffff, now));
            else
                mc.enqueue(readReq(rng.next() & 0xffffff, now, 0,
                                   token++));
        } else if (action < 9) {
            if (mc.nextEventTick() != maxTick)
                mc.step();
        } else {
            int idx = static_cast<int>(rng.range(
                static_cast<std::uint64_t>(cfg.ladder.size())));
            if (rng.bernoulli(0.5)) {
                mc.setFrequency(ChannelSel::all(), idx, now);
            } else {
                int ch = static_cast<int>(
                    rng.range(static_cast<std::uint64_t>(
                        cfg.geom.channels)));
                mc.setFrequency(ChannelSel::one(ch), idx, now);
            }
        }

        Tick cached = mc.nextEventTick();
        mc.invalidateCandidatesForTest();
        Tick recomputed = mc.nextEventTick();
        ASSERT_EQ(cached, recomputed) << "operation " << i;
    }
    // The stream must actually have exercised pending work.
    std::uint64_t issued = 0;
    for (int c = 0; c < cfg.geom.channels; ++c)
        issued += mc.channelCounters(c).readReqs
                  + mc.channelCounters(c).writeReqs;
    EXPECT_GT(issued, 1000u);
}

// ---------------------------------------------------------------------
// Pluggable-backend conformance (dram/mem_backend.hh).
// ---------------------------------------------------------------------

/** A config naming an explicit backend, with matching timing/ladder. */
MemCtrlConfig
makeBackendConfig(const MemBackendSel &sel)
{
    MemCtrlConfig cfg;
    const DramStandardInfo &info = dramStandardInfo(sel.standard);
    cfg.timing = info.timing;
    cfg.ladder = standardMemLadder(sel.standard);
    cfg.backend = sel;
    return cfg;
}

/** Completion stream fingerprint: (token, finishAt) pairs in order. */
std::vector<std::pair<std::uint64_t, Tick>>
fingerprint(const std::vector<MemCompletion> &done)
{
    std::vector<std::pair<std::uint64_t, Tick>> fp;
    fp.reserve(done.size());
    for (const auto &c : done)
        fp.emplace_back(c.token, c.finishAt);
    return fp;
}

TEST(MemSchedConformance, FrFcfsPrefersRowHitOverOlderConflict)
{
    MemCtrlConfig cfg = makeConfig(/*open_page=*/true);
    cfg.backend.sched = MemSched::FrFcfs;
    MemCtrl mc(cfg, 0);
    mc.enqueue(readReq(0, 0, 0, 1));      // opens row 0 of bank 0
    mc.enqueue(readReq(16384, 1, 0, 2));  // same bank, other row
    mc.enqueue(readReq(128, 2, 0, 3));    // row hit on the open row
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 3u);
    EXPECT_EQ(done[0].token, 1u);
    // The younger row hit is served ahead of the older row conflict.
    EXPECT_EQ(done[1].token, 3u);
    EXPECT_EQ(done[2].token, 2u);
    EXPECT_EQ(mc.totalCounters().rowHits, 1u);
}

TEST(MemSchedConformance, FrFcfsNeverStarvesTheOldestRequest)
{
    MemCtrlConfig cfg = makeConfig(/*open_page=*/true);
    cfg.backend.sched = MemSched::FrFcfs;
    MemCtrl mc(cfg, 0);
    mc.enqueue(readReq(0, 0, 0, 1));       // opens row 0
    mc.enqueue(readReq(16384, 1, 0, 99));  // victim: other row, same bank
    // A long stream of row-0 hits that would starve the victim were it
    // not for the scheduler's consecutive-bypass bound.
    for (int i = 0; i < 20; ++i)
        mc.enqueue(readReq(static_cast<BlockAddr>(128) * (i + 1),
                           2 + i, 0, static_cast<std::uint64_t>(i + 2)));
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 22u);
    size_t victim_pos = done.size();
    for (size_t i = 0; i < done.size(); ++i)
        if (done[i].token == 99u)
            victim_pos = i;
    EXPECT_GT(victim_pos, 1u);  // it was actually bypassed...
    // ...but committed after at most starvationLimit bypasses.
    EXPECT_LE(victim_pos, 1u + Scheduler::starvationLimit);
}

TEST(MemSchedConformance, FrFcfsDegeneratesToFcfsUnderClosedPage)
{
    // Closed-page auto-precharge never leaves a row open, so the
    // row-hit probe never fires and FR-FCFS must reproduce the paper
    // FCFS schedule exactly.
    MemCtrlConfig fcfs_cfg = makeConfig();
    MemCtrlConfig frfcfs_cfg = makeConfig();
    frfcfs_cfg.backend.sched = MemSched::FrFcfs;
    MemCtrl a(fcfs_cfg, 0), b(frfcfs_cfg, 0);
    Rng rng(4242);
    Tick now = 0;
    std::uint64_t token = 1;
    for (int i = 0; i < 400; ++i) {
        now += rng.range(150 * tickPerNs);
        MemReq r = rng.bernoulli(0.35)
                       ? writeReq(rng.next() & 0xfffff, now)
                       : readReq(rng.next() & 0xfffff, now, 0, token++);
        a.enqueue(r);
        b.enqueue(r);
    }
    EXPECT_EQ(fingerprint(drain(a)), fingerprint(drain(b)));
}

TEST(RowPolicyConformance, OpenPageCountersReconcileWithAuditor)
{
    MemCtrlConfig cfg = makeConfig(/*open_page=*/true);
    MemCtrl mc(cfg, 0);
    DramTimingAuditor audit;
    mc.attachAuditor(&audit);
    Rng rng(1234);
    Tick now = 0;
    std::uint64_t token = 1;
    for (int i = 0; i < 600; ++i) {
        now += rng.range(100 * tickPerNs);
        if (rng.bernoulli(0.3))
            mc.enqueue(writeReq(rng.next() & 0xfffff, now));
        else
            mc.enqueue(readReq(rng.next() & 0xfffff, now, 0, token++));
        if (rng.bernoulli(0.5) && mc.nextEventTick() != maxTick)
            mc.step();
    }
    drain(mc);
    ChannelCounters c = mc.totalCounters();
    // The controller's row-buffer accounting and the auditor's
    // independently-replayed shadow must agree command for command.
    EXPECT_EQ(c.rowHits, audit.rowHitsObserved());
    EXPECT_EQ(c.activations, audit.actsObserved());
    // Under open page every request is exactly a hit or a miss, and
    // conflicts (ACT that had to close another row) are a subset of
    // the misses.
    EXPECT_EQ(c.rowHits + c.rowMisses,
              c.readReqs + c.writeReqs + c.prefetchReqs);
    EXPECT_LE(c.rowConflicts, c.rowMisses);
    EXPECT_GT(c.rowHits, 0u);
    EXPECT_GT(c.rowConflicts, 0u);
    EXPECT_GT(audit.commandsAudited(), 0u);
}

TEST(MemCtrlApi, SetFrequencyIsDeterministicAcrossInstances)
{
    // setFrequency is the single audited entry point for memory
    // frequency changes (the PR 7 compat shims are gone — the lint
    // rule memctrl-set-frequency-index keeps them from coming back).
    // Two controllers fed identical traffic and identical frequency
    // calls must stay bit-identical through uniform and per-channel
    // transitions.
    MemCtrlConfig cfg = makeConfig();
    MemCtrl a(cfg, 0), b(cfg, 0);
    auto feed = [](MemCtrl &mc, Tick now, std::uint64_t base) {
        for (int i = 0; i < 8; ++i)
            mc.enqueue(readReq(static_cast<BlockAddr>(i) * 4, now, 0,
                               base + static_cast<std::uint64_t>(i)));
    };
    feed(a, 0, 1);
    feed(b, 0, 1);
    a.setFrequency(ChannelSel::all(), 3, 5000);
    b.setFrequency(ChannelSel::all(), 3, 5000);
    a.setFrequency(ChannelSel::one(2), 1, 9000);
    b.setFrequency(ChannelSel::one(2), 1, 9000);
    feed(a, 10000, 100);
    feed(b, 10000, 100);
    EXPECT_EQ(fingerprint(drain(a)), fingerprint(drain(b)));
    EXPECT_EQ(a.frequencyIndex(), b.frequencyIndex());
    for (int c = 0; c < cfg.geom.channels; ++c)
        EXPECT_EQ(a.channelFrequencyIndex(c), b.channelFrequencyIndex(c));
}

TEST(MemBackend, CachedNextEventTickMatchesRecomputeAcrossBackends)
{
    // The candidate-cache contract (cached == recomputed) must hold
    // for every scheduler x row-policy x standard combination, not
    // just the paper default the golden fixtures pin.
    for (MemSched sched : {MemSched::FcfsDrain, MemSched::FrFcfs}) {
        for (RowPolicy pol : {RowPolicy::ClosedAuto, RowPolicy::Open}) {
            for (DramStandard std_ : {DramStandard::Ddr3,
                                      DramStandard::Ddr4,
                                      DramStandard::Lpddr4}) {
                MemBackendSel sel{sched, pol, std_};
                MemCtrlConfig cfg = makeBackendConfig(sel);
                MemCtrl mc(cfg, 0);
                Rng rng(7 + static_cast<std::uint64_t>(sched) * 31
                        + static_cast<std::uint64_t>(pol) * 131
                        + static_cast<std::uint64_t>(std_) * 1031);
                Tick now = 0;
                std::uint64_t token = 1;
                for (int i = 0; i < 800; ++i) {
                    std::uint64_t action = rng.range(10);
                    if (action < 5) {
                        now += rng.range(200 * tickPerNs);
                        if (rng.bernoulli(0.3))
                            mc.enqueue(writeReq(rng.next() & 0xffffff,
                                                now));
                        else
                            mc.enqueue(readReq(rng.next() & 0xffffff,
                                               now, 0, token++));
                    } else if (action < 9) {
                        if (mc.nextEventTick() != maxTick)
                            mc.step();
                    } else {
                        int idx = static_cast<int>(rng.range(
                            static_cast<std::uint64_t>(
                                cfg.ladder.size())));
                        mc.setFrequency(rng.bernoulli(0.5)
                                            ? ChannelSel::all()
                                            : ChannelSel::one(
                                                  static_cast<int>(
                                                      rng.range(4))),
                                        idx, now);
                    }
                    Tick cached = mc.nextEventTick();
                    mc.invalidateCandidatesForTest();
                    ASSERT_EQ(cached, mc.nextEventTick())
                        << memSchedName(sel.sched) << "/"
                        << rowPolicyName(sel.rowPolicy) << "/"
                        << dramStandardName(sel.standard)
                        << " operation " << i;
                }
            }
        }
    }
}

TEST(MemBackend, ParseAndNameRoundTrip)
{
    for (MemSched s : {MemSched::FcfsDrain, MemSched::FrFcfs}) {
        MemSched out = MemSched::FcfsDrain;
        EXPECT_TRUE(parseMemSched(memSchedName(s), &out));
        EXPECT_EQ(out, s);
    }
    for (RowPolicy p : {RowPolicy::ClosedAuto, RowPolicy::Open}) {
        RowPolicy out = RowPolicy::ClosedAuto;
        EXPECT_TRUE(parseRowPolicy(rowPolicyName(p), &out));
        EXPECT_EQ(out, p);
    }
    for (DramStandard d : {DramStandard::Ddr3, DramStandard::Ddr4,
                           DramStandard::Lpddr4}) {
        DramStandard out = DramStandard::Ddr3;
        EXPECT_TRUE(parseDramStandard(dramStandardName(d), &out));
        EXPECT_EQ(out, d);
    }
    MemSched sink = MemSched::FcfsDrain;
    EXPECT_FALSE(parseMemSched("rr", &sink));
    RowPolicy psink = RowPolicy::ClosedAuto;
    EXPECT_FALSE(parseRowPolicy("adaptive", &psink));
    DramStandard dsink = DramStandard::Ddr3;
    EXPECT_FALSE(parseDramStandard("ddr5", &dsink));
}

TEST(MemCtrl, PrefetchCompletionsKeepKind)
{
    MemCtrl mc(makeConfig(), 0);
    MemReq pf;
    pf.addr = 0;
    pf.kind = ReqKind::Prefetch;
    pf.core = 3;
    pf.arrival = 0;
    mc.enqueue(pf);
    auto done = drain(mc);
    ASSERT_EQ(done.size(), 1u);
    EXPECT_EQ(done[0].kind, ReqKind::Prefetch);
    EXPECT_EQ(done[0].core, 3);
    EXPECT_EQ(mc.totalCounters().prefetchReqs, 1u);
    EXPECT_EQ(mc.totalCounters().readReqs, 0u);
}

} // namespace
} // namespace coscale
