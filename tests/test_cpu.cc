/**
 * @file
 * Unit tests for the trace-driven core model: compute timing across
 * frequencies, stall accounting, the counter architecture, DVFS
 * transitions, instruction budgets, and the OoO/MLP window.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/core.hh"

namespace coscale {
namespace {

/** Deterministic trace source over a fixed record list (wraps). */
class VectorTraceSource final : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceRecord> recs)
        : records(std::move(recs))
    {
    }

    TraceRecord
    next() override
    {
        TraceRecord r = records[pos];
        pos = (pos + 1) % records.size();
        return r;
    }

    std::unique_ptr<TraceSource>
    clone() const override
    {
        return std::make_unique<VectorTraceSource>(*this);
    }

  private:
    std::vector<TraceRecord> records;
    size_t pos = 0;
};

TraceRecord
rec(std::uint32_t gap_instrs, std::uint32_t gap_cycles, BlockAddr addr,
    bool write = false)
{
    TraceRecord r;
    r.gapInstrs = gap_instrs;
    r.gapCycles = gap_cycles;
    r.addr = addr;
    r.isWrite = write;
    r.aluOps = static_cast<std::uint16_t>(gap_instrs / 2);
    r.memOps = static_cast<std::uint16_t>(gap_instrs / 4);
    return r;
}

CoreConfig
makeCfg(bool ooo = false)
{
    CoreConfig cfg;
    cfg.ladder = defaultCoreLadder();
    cfg.transitionTicks = 30 * tickPerUs;
    cfg.ooo = ooo;
    cfg.oooWindow = 128;
    cfg.maxOutstanding = 4;
    cfg.instrBudget = 1'000'000;
    return cfg;
}

TraceHandle
handle(std::vector<TraceRecord> recs)
{
    return TraceHandle(
        std::make_unique<VectorTraceSource>(std::move(recs)));
}

TEST(Core, ComputeTimeAtMaxFrequency)
{
    CoreConfig cfg = makeCfg();
    Core core(0, &cfg, handle({rec(100, 1000, 1)}), 0);
    // 1000 cycles at 4 GHz = 250 ns.
    EXPECT_EQ(core.nextEventTick(), 250 * tickPerNs);
    CoreEvent ev = core.step(250 * tickPerNs);
    EXPECT_TRUE(ev.wantsLlc);
    EXPECT_EQ(ev.addr, 1u);
    EXPECT_EQ(core.counters().tic, 100u);
    EXPECT_EQ(core.counters().tla, 1u);
    EXPECT_EQ(core.counters().computeTicks, 250u * tickPerNs);
    EXPECT_EQ(core.counters().aluOps, 50u);
    EXPECT_EQ(core.counters().memOps, 25u);
}

TEST(Core, ComputeTimeScalesWithFrequency)
{
    CoreConfig cfg = makeCfg();
    cfg.transitionTicks = 0;
    Core core(0, &cfg, handle({rec(100, 2200, 1)}), 0);
    core.setFrequencyIndex(9, 0);  // 2.2 GHz
    // 2200 cycles at 2.2 GHz = 1000 ns (up to period rounding).
    EXPECT_EQ(core.nextEventTick(), 2200 * periodTicks(2.2 * GHz));
    EXPECT_NEAR(static_cast<double>(core.nextEventTick()),
                1000.0 * tickPerNs, 2200.0);
}

TEST(Core, L2HitStallAccounting)
{
    CoreConfig cfg = makeCfg();
    Core core(0, &cfg, handle({rec(10, 100, 1)}), 0);
    Tick t = core.nextEventTick();
    core.step(t);
    Tick hit_lat = nsToTicks(7.5);
    core.completeHit(t, hit_lat);
    EXPECT_EQ(core.nextEventTick(), t + hit_lat);
    core.step(t + hit_lat);
    EXPECT_EQ(core.counters().tms, 1u);
    EXPECT_EQ(core.counters().l2StallTicks, hit_lat);
    EXPECT_EQ(core.counters().tlm, 0u);
}

TEST(Core, MemStallAccounting)
{
    CoreConfig cfg = makeCfg();
    Core core(0, &cfg, handle({rec(10, 100, 1)}), 0);
    Tick t = core.nextEventTick();
    core.step(t);
    std::uint64_t token = core.sendToMemory(t);
    // Blocked until the completion arrives.
    EXPECT_EQ(core.nextEventTick(), maxTick);
    Tick finish = t + nsToTicks(100);
    core.memCompleted(token, finish);
    EXPECT_EQ(core.nextEventTick(), finish);
    core.step(finish);
    EXPECT_EQ(core.counters().tlm, 1u);
    EXPECT_EQ(core.counters().tls, 1u);
    EXPECT_EQ(core.counters().memStallTicks, nsToTicks(100));
}

TEST(Core, FrequencyTransitionMidCompute)
{
    CoreConfig cfg = makeCfg();
    Core core(0, &cfg, handle({rec(100, 1000, 1)}), 0);
    // Run half the gap (500 cycles = 125 ns), then drop to 2 GHz...
    // (index 5 = 3.0 GHz).
    Tick half = 125 * tickPerNs;
    core.setFrequencyIndex(5, half);
    // Remaining 500 cycles at 3.0 GHz (333.33 ps period), after the
    // 30 us transition halt.
    Tick expected = half + cfg.transitionTicks
                    + cyclesToTicks(500, 3.0 * GHz);
    EXPECT_NEAR(static_cast<double>(core.nextEventTick()),
                static_cast<double>(expected), 500.0);
    EXPECT_EQ(core.counters().transitionTicks, cfg.transitionTicks);
}

TEST(Core, TransitionToSameIndexIsFree)
{
    CoreConfig cfg = makeCfg();
    Core core(0, &cfg, handle({rec(100, 1000, 1)}), 0);
    Tick before = core.nextEventTick();
    core.setFrequencyIndex(0, 100);
    EXPECT_EQ(core.nextEventTick(), before);
    EXPECT_EQ(core.counters().transitionTicks, 0u);
}

TEST(Core, TransitionWhileStalledDefersWake)
{
    CoreConfig cfg = makeCfg();
    Core core(0, &cfg, handle({rec(10, 100, 1)}), 0);
    Tick t = core.nextEventTick();
    core.step(t);
    std::uint64_t token = core.sendToMemory(t);
    core.setFrequencyIndex(3, t + 10);
    Tick finish = t + nsToTicks(50);
    core.memCompleted(token, finish);
    // Wake deferred to the end of the transition halt.
    EXPECT_EQ(core.nextEventTick(), t + 10 + cfg.transitionTicks);
}

TEST(Core, BudgetCompletionMarksTick)
{
    CoreConfig cfg = makeCfg();
    cfg.instrBudget = 25;
    Core core(0, &cfg, handle({rec(10, 10, 1)}), 0);
    EXPECT_FALSE(core.done());
    for (int i = 0; i < 3; ++i) {
        Tick t = core.nextEventTick();
        core.step(t);
        core.completeHit(t, 1);
        core.step(core.nextEventTick());
    }
    EXPECT_TRUE(core.done());
    EXPECT_EQ(core.instrsRetired(), 30u);
    EXPECT_NE(core.completionTick(), maxTick);
    // The core keeps running after completion (contention stays).
    EXPECT_NE(core.nextEventTick(), maxTick);
}

TEST(Core, InOrderHasSingleOutstandingMiss)
{
    CoreConfig cfg = makeCfg(false);
    Core core(0, &cfg, handle({rec(10, 10, 1)}), 0);
    core.step(core.nextEventTick());
    core.sendToMemory(core.nextEventTick());
    EXPECT_EQ(core.outstandingMisses(), 1);
    EXPECT_EQ(core.nextEventTick(), maxTick);  // hard stall
}

TEST(Core, OooOverlapsMissesWithinWindow)
{
    CoreConfig cfg = makeCfg(true);
    // Misses every 10 instructions; window 128 allows several.
    Core core(0, &cfg, handle({rec(10, 10, 1), rec(10, 10, 2),
                               rec(10, 10, 3)}),
              0);
    Tick t = core.nextEventTick();
    core.step(t);
    core.sendToMemory(t);
    // Core keeps computing: next event is the next gap end, not a
    // stall.
    EXPECT_NE(core.nextEventTick(), maxTick);
    t = core.nextEventTick();
    core.step(t);
    core.sendToMemory(t);
    EXPECT_EQ(core.outstandingMisses(), 2);
    EXPECT_NE(core.nextEventTick(), maxTick);
    // No stalls counted so far.
    EXPECT_EQ(core.counters().tls, 0u);
    EXPECT_EQ(core.counters().tlm, 2u);
}

TEST(Core, OooStallsWhenWindowExceeded)
{
    CoreConfig cfg = makeCfg(true);
    cfg.oooWindow = 32;
    // 20-instruction gaps: the window check runs when loading the
    // next record, measuring the distance to the oldest unresolved
    // miss. After the third miss (instruction 60, oldest at 20) the
    // distance is 40 >= 32 -> stall.
    Core core(0, &cfg, handle({rec(20, 20, 1), rec(20, 20, 2),
                               rec(20, 20, 3)}),
              0);
    for (int i = 0; i < 3; ++i) {
        Tick t = core.nextEventTick();
        ASSERT_NE(t, maxTick);
        core.step(t);
        core.sendToMemory(t);
    }
    EXPECT_EQ(core.nextEventTick(), maxTick);
    EXPECT_EQ(core.counters().tls, 1u);
    EXPECT_EQ(core.counters().tlm, 3u);
}

TEST(Core, OooStallsAtMshrLimit)
{
    CoreConfig cfg = makeCfg(true);
    cfg.maxOutstanding = 2;
    cfg.oooWindow = 100000;
    Core core(0, &cfg, handle({rec(1, 1, 1), rec(1, 1, 2),
                               rec(1, 1, 3)}),
              0);
    for (int i = 0; i < 2; ++i) {
        Tick t = core.nextEventTick();
        core.step(t);
        core.sendToMemory(t);
    }
    EXPECT_EQ(core.outstandingMisses(), 2);
    EXPECT_EQ(core.nextEventTick(), maxTick);
}

TEST(Core, OooWakesWhenOldestResolves)
{
    CoreConfig cfg = makeCfg(true);
    cfg.oooWindow = 8;
    Core core(0, &cfg, handle({rec(16, 16, 1), rec(16, 16, 2),
                               rec(16, 16, 3)}),
              0);
    Tick t1 = core.nextEventTick();
    core.step(t1);
    std::uint64_t tok1 = core.sendToMemory(t1);
    // Distance to the oldest is still 0: compute continues.
    Tick t2 = core.nextEventTick();
    ASSERT_NE(t2, maxTick);
    core.step(t2);
    core.sendToMemory(t2);
    // Now the window (8 < 16) is exceeded: stall on the oldest miss.
    EXPECT_EQ(core.nextEventTick(), maxTick);
    Tick finish = t2 + nsToTicks(80);
    core.memCompleted(tok1, finish);
    EXPECT_EQ(core.nextEventTick(), finish);
    core.step(finish);
    EXPECT_EQ(core.counters().memStallTicks, nsToTicks(80));
    EXPECT_EQ(core.outstandingMisses(), 1);  // the second miss
}

TEST(Core, CopyIsIndependent)
{
    CoreConfig cfg = makeCfg();
    Core a(0, &cfg, handle({rec(10, 100, 1), rec(10, 100, 2)}), 0);
    Core b = a;
    b.reseatConfig(&cfg);
    Tick t = a.nextEventTick();
    EXPECT_EQ(b.nextEventTick(), t);
    a.step(t);
    a.completeHit(t, 1);
    EXPECT_EQ(b.nextEventTick(), t);  // b untouched
    EXPECT_EQ(b.counters().tic, 0u);
}

} // namespace
} // namespace coscale
