/**
 * @file
 * Tests for the power models: DVFS scaling laws, the 60/30/10
 * CPU/memory/rest power split the paper assumes (Section 4.1), the
 * Micron-style memory breakdown, and the sensitivity knobs used by
 * Figures 11-14.
 */

#include <gtest/gtest.h>

#include "common/dvfs.hh"
#include "power/power_model.hh"

namespace coscale {
namespace {

PowerParams
defaults()
{
    PowerParams p;
    return p;
}

CoreActivityRates
typicalCore(Freq f, double cpi = 1.5)
{
    CoreActivityRates r;
    r.ips = f / cpi;
    r.aluPs = r.ips * 0.40;
    r.fpuPs = r.ips * 0.10;
    r.branchPs = r.ips * 0.15;
    r.memPs = r.ips * 0.35;
    return r;
}

MemActivityRates
typicalMem(double util = 0.3)
{
    MemActivityRates r;
    r.busUtil = util;
    double peak_reads = 4 * 800e6 * 2 / 8.0;
    r.readsPs = peak_reads * util * 0.75;
    r.writesPs = peak_reads * util * 0.25;
    r.rankActiveFrac = util * 1.5;
    return r;
}

TEST(CorePower, ScalesDownWithVoltageAndFrequency)
{
    PowerModel pm(defaults());
    FreqLadder l = defaultCoreLadder();
    double prev = 1e9;
    for (int i = 0; i < l.size(); ++i) {
        double p = pm.corePower(l.voltage(i), l.freq(i),
                                typicalCore(l.freq(i)));
        EXPECT_LT(p, prev) << "index " << i;
        prev = p;
    }
}

TEST(CorePower, MinFrequencyIsBigWin)
{
    PowerModel pm(defaults());
    FreqLadder l = defaultCoreLadder();
    double max_p = pm.corePower(l.voltage(0), l.freq(0),
                                typicalCore(l.freq(0)));
    double min_p = pm.corePower(l.voltage(9), l.freq(9),
                                typicalCore(l.freq(9)));
    // V^2*f scaling: the bottom of the ladder should be far below
    // half of peak power.
    EXPECT_LT(min_p, 0.45 * max_p);
    EXPECT_GT(min_p, 0.05 * max_p);  // leakage floor remains
}

TEST(CorePower, IdleCoreStillBurnsClockAndLeakage)
{
    PowerModel pm(defaults());
    CoreActivityRates idle;
    double p = pm.corePower(1.2, 4 * GHz, idle);
    EXPECT_GT(p, 2.0);
}

TEST(CorePower, CountersPathMatchesRatesPath)
{
    PowerModel pm(defaults());
    CoreCounters d;
    d.tic = 1'000'000;
    d.aluOps = 400'000;
    d.fpuOps = 100'000;
    d.branchOps = 150'000;
    d.memOps = 350'000;
    Tick elapsed = secondsToTicks(1'000'000 / (4e9 / 1.5));
    double from_counters =
        pm.corePowerFromCounters(d, elapsed, 1.2, 4 * GHz);
    double from_rates =
        pm.corePower(1.2, 4 * GHz, typicalCore(4 * GHz));
    EXPECT_NEAR(from_counters, from_rates, from_rates * 0.01);
}

TEST(MemPower, ScalesDownWithFrequency)
{
    PowerModel pm(defaults());
    FreqLadder l = defaultMemLadder();
    double prev = 1e9;
    for (int i = 0; i < l.size(); ++i) {
        double p = pm.memPower(l.voltage(i), l.freq(i), typicalMem(0.1));
        EXPECT_LT(p, prev) << "index " << i;
        prev = p;
    }
}

TEST(MemPower, NearIdleMemoryAtMinFrequencyDropsHard)
{
    // The ILP scenario of Fig. 5: mostly idle memory scaled to
    // 200 MHz should shed more than half its power (the paper reports
    // up to 57% memory energy savings).
    PowerModel pm(defaults());
    FreqLadder l = defaultMemLadder();
    double max_p = pm.memPower(l.voltage(0), l.freq(0), typicalMem(0.03));
    MemActivityRates slow = typicalMem(0.03);
    slow.busUtil *= 4.0;  // same traffic on a 4x slower bus
    double min_p = pm.memPower(l.voltage(9), l.freq(9), slow);
    EXPECT_LT(min_p, 0.50 * max_p);
}

TEST(MemPower, BreakdownSumsToTotal)
{
    PowerModel pm(defaults());
    MemActivityRates r = typicalMem(0.4);
    MemPowerBreakdown b = pm.memPowerBreakdown(1.2, 800 * MHz, r);
    EXPECT_NEAR(b.total(), pm.memPower(1.2, 800 * MHz, r), 1e-9);
    EXPECT_GT(b.background, 0.0);
    EXPECT_GT(b.activate, 0.0);
    EXPECT_GT(b.burst, 0.0);
    EXPECT_GT(b.refresh, 0.0);
    EXPECT_GT(b.pllReg, 0.0);
    EXPECT_GT(b.mc, 0.0);
}

TEST(MemPower, McSpansPaperRange)
{
    // MC power: 4.5 W at idle to 15 W at full utilisation (Section
    // 4.1), at maximum frequency and voltage.
    PowerModel pm(defaults());
    MemPowerBreakdown idle =
        pm.memPowerBreakdown(1.2, 800 * MHz, MemActivityRates{});
    MemActivityRates busy;
    busy.busUtil = 1.0;
    MemPowerBreakdown full = pm.memPowerBreakdown(1.2, 800 * MHz, busy);
    EXPECT_NEAR(idle.mc, 4.5, 0.01);
    EXPECT_NEAR(full.mc, 15.0, 0.01);
}

TEST(MemPower, BurstEnergyIsFrequencyInvariant)
{
    PowerModel pm(defaults());
    MemActivityRates r;
    r.readsPs = 1e8;
    MemPowerBreakdown fast = pm.memPowerBreakdown(1.2, 800 * MHz, r);
    MemPowerBreakdown slow = pm.memPowerBreakdown(0.65, 200 * MHz, r);
    EXPECT_NEAR(fast.burst, slow.burst, 1e-9);
}

TEST(MemPower, MultiplierScalesWholeSubsystem)
{
    PowerParams p = defaults();
    PowerModel pm1(p);
    p.mem.memPowerMultiplier = 2.0;
    PowerModel pm2(p);
    MemActivityRates r = typicalMem(0.3);
    EXPECT_NEAR(pm2.memPower(1.2, 800 * MHz, r),
                2.0 * pm1.memPower(1.2, 800 * MHz, r), 1e-9);
}

TEST(SystemPower, PaperSplitAtPeak)
{
    // Section 4.1: CPU ~60%, memory ~30%, other ~10% at maximum
    // frequencies under the baseline assumptions.
    PowerModel pm(defaults());
    double cpu = 16
                 * pm.corePower(1.2, 4 * GHz, typicalCore(4 * GHz))
                 + pm.l2Power(16 * (4e9 / 1.5) * 0.02);
    double mem = pm.memPower(1.2, 800 * MHz, typicalMem(0.3));
    double other = pm.otherPower();
    double total = cpu + mem + other;
    EXPECT_NEAR(cpu / total, 0.60, 0.05);
    EXPECT_NEAR(mem / total, 0.30, 0.05);
    EXPECT_NEAR(other / total, 0.10, 0.02);
}

TEST(SystemPower, OtherFractionKnob)
{
    for (double frac : {0.05, 0.10, 0.15, 0.20}) {
        PowerParams p = defaults();
        p.otherFrac = frac;
        PowerModel pm(p);
        double ref = pm.referenceCpuMemPower();
        EXPECT_NEAR(pm.otherPower() / (ref + pm.otherPower()), frac,
                    1e-9);
    }
}

TEST(SystemPower, L2PowerHasLeakFloor)
{
    PowerModel pm(defaults());
    EXPECT_NEAR(pm.l2Power(0.0), defaults().l2.leakW, 1e-9);
    EXPECT_GT(pm.l2Power(1e9), pm.l2Power(0.0));
}

TEST(SystemPower, HalfVoltageRangeShrinksCoreSavings)
{
    // Fig. 14: a narrower voltage range reduces what core DVFS can
    // save.
    PowerModel pm(defaults());
    FreqLadder full = defaultCoreLadder();
    FreqLadder half = halfVoltageCoreLadder();
    double p_full = pm.corePower(full.voltage(9), full.freq(9),
                                 typicalCore(full.freq(9)));
    double p_half = pm.corePower(half.voltage(9), half.freq(9),
                                 typicalCore(half.freq(9)));
    EXPECT_GT(p_half, p_full * 1.3);
}

} // namespace
} // namespace coscale
