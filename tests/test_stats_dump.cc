/**
 * @file
 * Tests for the gem5-style statistics dump and for the Reactive
 * feedback-governor baseline.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "policy/coscale_policy.hh"
#include "policy/simple_policies.hh"
#include "sim/runner.hh"
#include "sim/stats_dump.hh"

namespace coscale {
namespace {

TEST(StatsDump, ContainsEveryComponentSection)
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 4;
    auto apps = expandMix(mixByName("MID1"), 4, cfg.instrBudget);
    System sys(cfg, apps);
    sys.run(300 * tickPerUs);

    std::ostringstream os;
    dumpStats(sys, os);
    std::string out = os.str();

    for (const char *needle :
         {"sim.seconds", "core0.instructions", "core3.ipc",
          "cores.aggregate_mips", "llc.mpki", "llc.miss_rate",
          "mem.ch0.reads", "mem.ch3.bus_util",
          "mem.ch0.avg_read_latency_ns", "power.cpu_w", "power.mem_w",
          "power.total_w", "power.epi_nj"}) {
        EXPECT_NE(out.find(needle), std::string::npos)
            << "missing stat " << needle;
    }
}

TEST(StatsDump, WindowedDumpReflectsOnlyTheWindow)
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 4;
    auto apps = expandMix(mixByName("MID1"), 4, cfg.instrBudget);
    System sys(cfg, apps);
    sys.run(200 * tickPerUs);
    CounterSnapshot snap = sys.snapshot();
    sys.run(400 * tickPerUs);

    std::ostringstream os;
    dumpStats(sys, snap, os);
    std::string out = os.str();
    // Window length is 200 us.
    EXPECT_NE(out.find("0.0002"), std::string::npos);
}

TEST(StatsDump, ValuesAreConsistentWithCounters)
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 4;
    auto apps = expandMix(mixByName("MEM2"), 4, cfg.instrBudget);
    System sys(cfg, apps);
    sys.run(500 * tickPerUs);

    std::ostringstream os;
    dumpStats(sys, os);
    std::string out = os.str();
    // Spot-check one value end to end: core0 instruction count.
    std::string key = "core0.instructions";
    size_t pos = out.find(key);
    ASSERT_NE(pos, std::string::npos);
    std::istringstream line(out.substr(pos + key.size()));
    std::uint64_t value = 0;
    line >> value;
    EXPECT_EQ(value, sys.core(0).counters().tic);
}

TEST(Reactive, MeetsBoundAndSavesSomething)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(b));
    ReactivePolicy policy(cfg.numCores, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(policy));
    Comparison c = compare(base, run);
    EXPECT_LE(c.worstDegradation, cfg.gamma + 0.006);
    EXPECT_GT(c.fullSystemSavings, 0.02);
}

TEST(Reactive, LosesToModelPredictiveCoScale)
{
    // The point of the comparison (Section 2.1): reactive stepping
    // converges slowly and cannot trade the knobs, so it saves less.
    SystemConfig cfg = makeScaledConfig(0.05);
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(b));

    ReactivePolicy reactive(cfg.numCores, cfg.gamma);
    Comparison c_r =
        compare(base, coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(reactive)));
    CoScalePolicy cs(cfg.numCores, cfg.gamma);
    Comparison c_cs =
        compare(base, coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(cs)));
    EXPECT_GT(c_cs.fullSystemSavings, c_r.fullSystemSavings + 0.01);
}

TEST(Reactive, StepsAreUniformAndIncremental)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    ReactivePolicy policy(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(policy));
    for (size_t e = 1; e < r.epochs.size(); ++e) {
        const auto &prev = r.epochs[e - 1].applied;
        const auto &cur = r.epochs[e].applied;
        // Uniform core frequency across the chip.
        for (int idx : cur.coreIdx)
            EXPECT_EQ(idx, cur.coreIdx[0]);
        // Never moves more than one step per dimension per epoch.
        EXPECT_LE(std::abs(cur.memIdx - prev.memIdx), 1);
        EXPECT_LE(std::abs(cur.coreIdx[0] - prev.coreIdx[0]), 1);
    }
}

} // namespace
} // namespace coscale
