/**
 * @file
 * Unit tests for the deterministic event-scheduler kernel
 * (sim/event_queue.hh): tie-break ordering (the memory controller's
 * rank 0 beats cores at equal ticks, cores fire in index order),
 * reschedule/cancel semantics, the monotonic-clock invariant under
 * back-dated issues (the case documented in System::run), and heap
 * behaviour at the maxTick sentinel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "sim/event_queue.hh"

namespace coscale {
namespace {

/** Pop the top entry the way System::run does: read it, then park. */
int
popTop(EventQueue &eq)
{
    int rank = eq.topRank();
    eq.schedule(rank, maxTick);
    return rank;
}

TEST(EventQueue, StartsFullyParked)
{
    EventQueue eq(5);
    EXPECT_EQ(eq.size(), 5);
    EXPECT_EQ(eq.topTick(), maxTick);
    for (int r = 0; r < 5; ++r)
        EXPECT_EQ(eq.tickOf(r), maxTick);
}

TEST(EventQueue, EmptyQueueReportsMaxTick)
{
    EventQueue eq(0);
    EXPECT_EQ(eq.size(), 0);
    EXPECT_EQ(eq.topTick(), maxTick);
}

TEST(EventQueue, ControllerBeatsCoresAtEqualTicks)
{
    // Rank 0 is the memory controller, ranks 1..4 are cores; at equal
    // ticks the historical polling loop served the controller first.
    EventQueue eq(5);
    for (int r = 4; r >= 0; --r)
        eq.schedule(r, 1000);
    EXPECT_EQ(eq.topTick(), 1000);
    EXPECT_EQ(eq.topRank(), 0);
}

TEST(EventQueue, CoresFireInIndexOrderAtEqualTicks)
{
    EventQueue eq(9);
    // Schedule in reverse so the order cannot come from insertion.
    for (int r = 8; r >= 1; --r)
        eq.schedule(r, 500);
    std::vector<int> order;
    while (eq.topTick() != maxTick)
        order.push_back(popTop(eq));
    std::vector<int> want = {1, 2, 3, 4, 5, 6, 7, 8};
    EXPECT_EQ(order, want);
}

TEST(EventQueue, EarlierTickWinsOverLowerRank)
{
    EventQueue eq(3);
    eq.schedule(0, 2000);
    eq.schedule(2, 1000);
    EXPECT_EQ(eq.topRank(), 2);
    EXPECT_EQ(eq.topTick(), 1000);
}

TEST(EventQueue, RescheduleMovesBothDirections)
{
    EventQueue eq(4);
    eq.schedule(1, 1000);
    eq.schedule(2, 2000);
    EXPECT_EQ(eq.topRank(), 1);

    // Later: rank 1 defers past rank 2.
    eq.schedule(1, 3000);
    EXPECT_EQ(eq.topRank(), 2);
    EXPECT_EQ(eq.tickOf(1), 3000);

    // Earlier: rank 3 jumps to the front.
    eq.schedule(3, 500);
    EXPECT_EQ(eq.topRank(), 3);
    EXPECT_EQ(eq.topTick(), 500);
}

TEST(EventQueue, RescheduleToSameTickIsIdempotent)
{
    EventQueue eq(3);
    eq.schedule(0, 100);
    eq.schedule(1, 100);
    eq.schedule(1, 100);
    eq.schedule(0, 100);
    EXPECT_EQ(eq.topRank(), 0);
    EXPECT_EQ(popTop(eq), 0);
    EXPECT_EQ(popTop(eq), 1);
    EXPECT_EQ(eq.topTick(), maxTick);
}

TEST(EventQueue, ParkingCancelsAPendingEvent)
{
    EventQueue eq(3);
    eq.schedule(0, 100);
    eq.schedule(1, 200);
    eq.schedule(0, maxTick);  // cancel
    EXPECT_EQ(eq.topRank(), 1);
    EXPECT_EQ(eq.topTick(), 200);
    eq.schedule(1, maxTick);
    EXPECT_EQ(eq.topTick(), maxTick);
}

TEST(EventQueue, ParkedComponentsTieBreakByRankAtSentinel)
{
    // All keys equal maxTick is the everything-idle steady state; the
    // heap must stay valid and re-activation must still work.
    EventQueue eq(6);
    eq.schedule(3, 10);
    EXPECT_EQ(popTop(eq), 3);
    EXPECT_EQ(eq.topTick(), maxTick);
    eq.schedule(5, 7);
    eq.schedule(4, 7);
    EXPECT_EQ(popTop(eq), 4);
    EXPECT_EQ(popTop(eq), 5);
    EXPECT_EQ(eq.topTick(), maxTick);
}

TEST(EventQueue, ResetRestoresParkedStateAtNewSize)
{
    EventQueue eq(2);
    eq.schedule(0, 42);
    eq.reset(7);
    EXPECT_EQ(eq.size(), 7);
    EXPECT_EQ(eq.topTick(), maxTick);
    for (int r = 0; r < 7; ++r)
        EXPECT_EQ(eq.tickOf(r), maxTick);
}

TEST(EventQueue, CopyIsIndependent)
{
    // The System deep-copies (Offline clone-ahead); the copy's queue
    // must not alias the original's heap state.
    EventQueue a(4);
    a.schedule(1, 100);
    a.schedule(2, 50);
    EventQueue b = a;
    EXPECT_EQ(b.topRank(), 2);
    b.schedule(3, 10);
    EXPECT_EQ(b.topRank(), 3);
    EXPECT_EQ(a.topRank(), 2);  // untouched
    EXPECT_EQ(a.tickOf(3), maxTick);
}

/**
 * The back-dated-issue case documented in System::run: engaging write
 * drain can expose a command whose issue tick the channel back-dates
 * below the current clock. The queue must serve such an event
 * immediately (it is the minimum key), and the kernel's
 * `curTick = max(curTick, topTick)` clamp keeps the simulated clock
 * monotonic. Replay that loop against the queue directly.
 */
TEST(EventQueue, BackDatedIssueKeepsClampedClockMonotonic)
{
    EventQueue eq(3);
    eq.schedule(0, 1000);
    eq.schedule(1, 1200);

    Tick cur = 0;
    cur = std::max(cur, eq.topTick());
    EXPECT_EQ(cur, 1000);
    EXPECT_EQ(popTop(eq), 0);

    // Dispatching rank 0 exposes a command due in the past (tick 800
    // < cur): schedule it back-dated. It must be the next event.
    eq.schedule(0, 800);
    EXPECT_EQ(eq.topRank(), 0);
    EXPECT_EQ(eq.topTick(), 800);

    Tick best = eq.topTick();
    cur = std::max(cur, best);  // the System::run clamp
    EXPECT_EQ(cur, 1000);       // the clock never regresses
    EXPECT_EQ(popTop(eq), 0);

    // The un-clamped event stream continues in key order afterwards.
    cur = std::max(cur, eq.topTick());
    EXPECT_EQ(cur, 1200);
    EXPECT_EQ(popTop(eq), 1);
}

/**
 * Randomized differential test: the heap's (topRank, topTick) must
 * always equal a from-scratch linear scan with the historical
 * tie-break (strict <, lowest rank wins) over any schedule sequence,
 * including back-dated keys and sentinel parks.
 */
TEST(EventQueue, FuzzMatchesLinearScanReference)
{
    constexpr int ranks = 17;  // 1 controller + 16 cores
    EventQueue eq(ranks);
    std::vector<Tick> ref(ranks, maxTick);
    Rng rng(2026);

    auto refTop = [&]() {
        int best_rank = 0;
        for (int r = 1; r < ranks; ++r) {
            if (ref[static_cast<size_t>(r)]
                < ref[static_cast<size_t>(best_rank)]) {
                best_rank = r;
            }
        }
        return best_rank;
    };

    for (int i = 0; i < 20000; ++i) {
        int r = static_cast<int>(rng.range(ranks));
        Tick t;
        std::uint64_t kind = rng.range(10);
        if (kind == 0)
            t = maxTick;  // park
        else if (kind == 1)
            t = eq.topTick() == maxTick ? 0 : eq.topTick();  // tie
        else
            t = static_cast<Tick>(rng.range(1'000'000));
        eq.schedule(r, t);
        ref[static_cast<size_t>(r)] = t;

        int want_rank = refTop();
        Tick want_tick = ref[static_cast<size_t>(want_rank)];
        ASSERT_EQ(eq.topTick(), want_tick) << "iteration " << i;
        if (want_tick != maxTick) {
            ASSERT_EQ(eq.topRank(), want_rank) << "iteration " << i;
        }
        ASSERT_EQ(eq.tickOf(r), t);
    }
}

} // namespace
} // namespace coscale
