/**
 * @file
 * Unit tests for the stats module: accumulators, histograms, and the
 * performance-counter snapshot/diff machinery.
 */

#include <gtest/gtest.h>

#include "stats/accum.hh"
#include "stats/perf_counters.hh"

namespace coscale {
namespace {

TEST(Accum, BasicMoments)
{
    Accum a;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        a.sample(v);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.sum(), 10.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.5);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 4.0);
    EXPECT_NEAR(a.variance(), 1.25, 1e-12);
    EXPECT_NEAR(a.stddev(), 1.1180339887, 1e-9);
}

TEST(Accum, EmptyIsZero)
{
    Accum a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accum, MergePreservesStatistics)
{
    Accum a, b, all;
    for (int i = 0; i < 10; ++i) {
        double v = i * 1.5;
        (i % 2 ? a : b).sample(v);
        all.sample(v);
    }
    a += b;
    EXPECT_EQ(a.count(), all.count());
    EXPECT_DOUBLE_EQ(a.sum(), all.sum());
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accum, Reset)
{
    Accum a;
    a.sample(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.sum(), 0.0);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-1.0);   // underflow
    h.sample(0.0);    // bucket 0
    h.sample(5.5);    // bucket 5
    h.sample(9.99);   // bucket 9
    h.sample(10.0);   // overflow
    h.sample(42.0);   // overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(5), 1u);
    EXPECT_EQ(h.bucket(9), 1u);
    EXPECT_EQ(h.numBuckets(), 10);
    EXPECT_EQ(h.summary().count(), 6u);
}

TEST(CoreCounters, DiffIsFieldwise)
{
    CoreCounters a;
    a.tic = 100;
    a.tms = 10;
    a.tla = 12;
    a.tlm = 2;
    a.tls = 2;
    a.computeTicks = 5000;
    a.l2StallTicks = 700;
    a.memStallTicks = 300;
    a.aluOps = 40;
    a.fpuOps = 5;
    a.branchOps = 15;
    a.memOps = 35;

    CoreCounters b = a;
    b.tic += 50;
    b.tlm += 1;
    b.memStallTicks += 120;
    b.aluOps += 20;

    CoreCounters d = b - a;
    EXPECT_EQ(d.tic, 50u);
    EXPECT_EQ(d.tlm, 1u);
    EXPECT_EQ(d.memStallTicks, 120u);
    EXPECT_EQ(d.aluOps, 20u);
    EXPECT_EQ(d.tms, 0u);
    EXPECT_EQ(d.computeTicks, 0u);
}

TEST(CoreCounters, AccumulateIsInverseOfDiff)
{
    CoreCounters a;
    a.tic = 7;
    a.tms = 3;
    CoreCounters d;
    d.tic = 5;
    d.l2StallTicks = 99;
    CoreCounters sum = a;
    sum += d;
    CoreCounters back = sum - a;
    EXPECT_EQ(back.tic, d.tic);
    EXPECT_EQ(back.l2StallTicks, d.l2StallTicks);
}

TEST(ChannelCounters, DiffAndAccumulate)
{
    ChannelCounters a;
    a.readReqs = 10;
    a.writeReqs = 4;
    a.busBusyTicks = 500;
    a.rowHits = 3;
    ChannelCounters b = a;
    b.readReqs += 6;
    b.activations += 9;
    b.rankActiveTicks += 1234;

    ChannelCounters d = b - a;
    EXPECT_EQ(d.readReqs, 6u);
    EXPECT_EQ(d.activations, 9u);
    EXPECT_EQ(d.rankActiveTicks, 1234u);
    EXPECT_EQ(d.writeReqs, 0u);

    ChannelCounters sum = a;
    sum += d;
    EXPECT_EQ(sum.readReqs, b.readReqs);
    EXPECT_EQ(sum.rankActiveTicks, b.rankActiveTicks);
}

TEST(LlcCounters, Diff)
{
    LlcCounters a;
    a.accesses = 100;
    a.hits = 80;
    a.misses = 20;
    LlcCounters b = a;
    b.accesses += 10;
    b.hits += 7;
    b.misses += 3;
    b.writebacks += 2;
    LlcCounters d = b - a;
    EXPECT_EQ(d.accesses, 10u);
    EXPECT_EQ(d.hits, 7u);
    EXPECT_EQ(d.misses, 3u);
    EXPECT_EQ(d.writebacks, 2u);
}

} // namespace
} // namespace coscale
