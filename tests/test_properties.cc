/**
 * @file
 * Parameterized property sweeps across the configuration space:
 * model-vs-simulator prediction accuracy at every memory frequency,
 * LLC invariants across geometries, DDR3 timing invariants across the
 * whole ladder, slack-tracker algebra over random histories, and
 * bound compliance across every Table 1 mix.
 */

#include <gtest/gtest.h>

#include "cache/llc.hh"
#include "common/rng.hh"
#include "policy/coscale_policy.hh"
#include "policy/policy.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

// --- Model accuracy vs the simulator, across memory frequencies ---

/** Pin the whole machine at a fixed configuration. */
class FixedPolicy final : public Policy
{
  public:
    explicit FixedPolicy(int mem_idx, int core_idx = 0)
        : memIdx(mem_idx), coreIdx(core_idx)
    {
    }

    std::string name() const override { return "Fixed"; }

    FreqConfig
    decide(const SystemProfile &prof, const EnergyModel &,
           const FreqConfig &, Tick) override
    {
        FreqConfig cfg;
        cfg.coreIdx.assign(prof.cores.size(), coreIdx);
        cfg.memIdx = memIdx;
        return cfg;
    }

    void observeEpoch(const EpochObservation &,
                      const EnergyModel &) override
    {
    }

  private:
    int memIdx;
    int coreIdx;
};

class ModelAccuracy : public ::testing::TestWithParam<int>
{
};

TEST_P(ModelAccuracy, PredictsCrossFrequencyTpiWithinTolerance)
{
    // Profile the system while it runs at memory index P, predict the
    // all-max TPI with the model, and compare against a real run at
    // maximum frequencies. This is the prediction the slack
    // bookkeeping lives on.
    int anchor_idx = GetParam();
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 8;
    auto apps = expandMix(mixByName("MID2"), 8, cfg.instrBudget);

    System slow(cfg, apps);
    FreqConfig pinned;
    pinned.coreIdx.assign(8, 2);
    pinned.memIdx = anchor_idx;
    slow.applyConfig(pinned);
    slow.run(200 * tickPerUs);  // settle past the transitions
    CounterSnapshot snap = slow.snapshot();
    slow.run(700 * tickPerUs);
    SystemProfile prof = slow.makeProfile(snap);
    EnergyModel em = slow.energyModel();

    System fast(cfg, apps);
    fast.run(200 * tickPerUs);
    CounterSnapshot fsnap = fast.snapshot();
    fast.run(700 * tickPerUs);

    FreqConfig all_max = FreqConfig::allMax(8);
    for (int i = 0; i < 8; ++i) {
        double predicted = em.tpi(prof, i, all_max);
        CoreCounters d = fast.core(i).counters()
                         - fsnap.cores[static_cast<size_t>(i)];
        double actual = ticksToSeconds(500 * tickPerUs)
                        / static_cast<double>(d.tic);
        EXPECT_NEAR(predicted, actual, actual * 0.08)
            << "core " << i << " anchored at mem index " << anchor_idx;
    }
}

INSTANTIATE_TEST_SUITE_P(Anchors, ModelAccuracy,
                         ::testing::Values(0, 3, 6, 9));

// --- LLC invariants across geometries ---

class LlcGeometry : public ::testing::TestWithParam<int>
{
};

TEST_P(LlcGeometry, HitRateAndWritebackInvariants)
{
    int ways = GetParam();
    LlcConfig cfg;
    cfg.sizeBytes = 64 * 1024;
    cfg.ways = ways;
    Llc llc(cfg);
    Rng rng(static_cast<std::uint64_t>(ways));

    std::uint64_t blocks = cfg.sizeBytes / blockBytes;
    for (int i = 0; i < 20000; ++i) {
        // 70% within half the capacity (should mostly hit after
        // warmup), 30% streaming.
        BlockAddr a = rng.bernoulli(0.7)
                          ? rng.range(blocks / 2)
                          : 1'000'000 + static_cast<BlockAddr>(i);
        llc.access(a, rng.bernoulli(0.3));
    }
    const LlcCounters &c = llc.counters();
    EXPECT_EQ(c.accesses, 20000u);
    EXPECT_EQ(c.hits + c.misses, c.accesses);
    // The hot half-capacity set must mostly hit (direct-mapped
    // suffers conflict misses, so its floor is lower).
    EXPECT_GT(static_cast<double>(c.hits) / c.accesses,
              ways == 1 ? 0.50 : 0.55);
    // Writebacks can never exceed misses (one eviction per fill).
    EXPECT_LE(c.writebacks, c.misses);
    EXPECT_GT(c.writebacks, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ways, LlcGeometry,
                         ::testing::Values(1, 2, 4, 8, 16));

// --- DDR3 timing invariants across the whole ladder ---

class LadderSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(LadderSweep, TimingInvariantsAtEveryFrequency)
{
    FreqLadder ladder = defaultMemLadder();
    int idx = GetParam();
    Freq f = ladder.freq(idx);
    DramTimingParams p;
    ResolvedTiming t = ResolvedTiming::resolve(p, f);

    // The burst always spans exactly burstCycles bus periods.
    EXPECT_NEAR(static_cast<double>(t.tBURST),
                static_cast<double>(t.tCK) * p.burstCycles, 4.0);
    // Wall-clock-fixed parameters never change.
    ResolvedTiming ref = ResolvedTiming::resolve(p, ladder.freq(0));
    EXPECT_EQ(t.tRCD, ref.tRCD);
    EXPECT_EQ(t.tRAS, ref.tRAS);
    EXPECT_EQ(t.tFAW, ref.tFAW);
    EXPECT_EQ(t.tRFC, ref.tRFC);
    // Service time is monotone non-increasing in frequency.
    if (idx > 0) {
        ResolvedTiming faster =
            ResolvedTiming::resolve(p, ladder.freq(idx - 1));
        EXPECT_GE(t.tBURST, faster.tBURST);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSteps, LadderSweep,
                         ::testing::Range(0, 10));

// --- Slack-tracker algebra over random histories ---

class SlackHistory : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SlackHistory, AllowedTpiConsistentWithUpdate)
{
    // Property: if an epoch runs exactly at the allowed TPI the
    // tracker returned, the slack never goes (materially) negative.
    Rng rng(GetParam());
    SlackTracker t(1, 0.10, 0.0);
    double epoch = 1e-3;
    for (int e = 0; e < 50; ++e) {
        double ref = rng.uniform(0.4e-9, 2.5e-9);
        double allowed = t.allowedTpi(0, ref, epoch);
        double run_tpi = std::isinf(allowed)
                             ? ref * 3.0
                             : allowed * rng.uniform(0.9, 1.0);
        std::uint64_t instrs =
            static_cast<std::uint64_t>(epoch / run_tpi);
        t.update(0, ref, instrs, epoch);
        EXPECT_GT(t.slackSecs(0), -0.02 * epoch) << "epoch " << e;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SlackHistory,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// --- Bound compliance across every Table 1 mix ---

class AllMixes : public ::testing::TestWithParam<int>
{
};

TEST_P(AllMixes, CoScaleBoundAndSavings)
{
    const WorkloadMix &mix =
        table1Mixes()[static_cast<size_t>(GetParam())];
    SystemConfig cfg = makeScaledConfig(0.03);
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mix).with(b));
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forMix(cfg, mix).with(policy));
    Comparison c = compare(base, run);
    EXPECT_LE(c.worstDegradation, cfg.gamma + 0.006) << mix.name;
    EXPECT_GT(c.fullSystemSavings, 0.06) << mix.name;
    EXPECT_LT(c.fullSystemSavings, 0.35) << mix.name;
}

INSTANTIATE_TEST_SUITE_P(Table1, AllMixes, ::testing::Range(0, 16));

// --- Differential trace properties (obs layer vs run results) ---

class TraceDifferential : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(TraceDifferential, TracedEpochEnergiesTelescopeToRunTotals)
{
    // Every joule in the RunResult must be attributed to exactly one
    // traced window ("epoch" events plus the final "tail" when the
    // workload ends mid-profile): the per-window deltas are computed
    // from the running totals, so their sum telescopes back to the
    // totals up to summation rounding.
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 4;
    cfg.seed = GetParam();
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    VectorTraceSink sink;
    RunRequest req = RunRequest::forMix(cfg, mixByName("MIX2")).with(policy);
    req.withTrace(sink);
    RunResult r = coscale::run(req);

    double cpu = 0.0, mem = 0.0, other = 0.0;
    for (const TraceEvent &ev : sink.events()) {
        if (ev.category() != "epoch")
            continue;
        cpu += ev.num("cpu_j");
        mem += ev.num("mem_j");
        other += ev.num("other_j");
    }
    EXPECT_NEAR(cpu, r.cpuEnergyJ, 1e-9);
    EXPECT_NEAR(mem, r.memEnergyJ, 1e-9);
    EXPECT_NEAR(other, r.otherEnergyJ, 1e-9);
}

TEST_P(TraceDifferential, TracedFrequenciesAreAlwaysOnTheLadders)
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 4;
    cfg.seed = GetParam();
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    VectorTraceSink sink;
    RunRequest req = RunRequest::forMix(cfg, mixByName("MEM2")).with(policy);
    req.withTrace(sink);
    coscale::run(req);

    size_t epochs = 0;
    for (const TraceEvent &ev : sink.events()) {
        if (ev.category() == "epoch" && ev.name() == "epoch") {
            epochs += 1;
            int mem_idx = static_cast<int>(ev.num("mem_idx"));
            ASSERT_GE(mem_idx, 0);
            ASSERT_LT(mem_idx, cfg.memLadder.size());
            EXPECT_DOUBLE_EQ(ev.num("mem_mhz"),
                             cfg.memLadder.freq(mem_idx) / 1e6);
            const TraceField *cores = ev.find("core_idx");
            ASSERT_NE(cores, nullptr);
            ASSERT_EQ(cores->intv.size(),
                      static_cast<size_t>(cfg.numCores));
            for (int idx : cores->intv) {
                EXPECT_GE(idx, 0);
                EXPECT_LT(idx, cfg.coreLadder.size());
            }
        } else if (ev.category() == "dram") {
            int freq_idx = static_cast<int>(ev.num("freq_idx"));
            EXPECT_GE(freq_idx, 0);
            EXPECT_LT(freq_idx, cfg.memLadder.size());
        }
    }
    EXPECT_GT(epochs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceDifferential,
                         ::testing::Values(1u, 7u, 13u));

} // namespace
} // namespace coscale
