/**
 * @file
 * Tests for the trace substrate: synthetic generator statistics
 * (rates, mixes, phases, determinism, clone semantics) and the binary
 * trace file round-trip.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <map>

#include "trace/synthetic.hh"
#include "trace/trace_file.hh"

namespace coscale {
namespace {

AppSpec
simpleApp(double l1_mpki = 20.0, double llc_mpki = 5.0,
          double write_frac = 0.3)
{
    AppSpec s;
    s.name = "test";
    AppPhase p;
    p.instructions = 10'000'000;
    p.baseCpi = 1.2;
    p.l1Mpki = l1_mpki;
    p.llcMpki = llc_mpki;
    p.writeFrac = write_frac;
    p.seqRunLen = 8.0;
    p.hotBlocks = 1024;
    s.phases.push_back(p);
    return s;
}

TEST(Synthetic, GapMatchesL1Mpki)
{
    SyntheticTraceSource src(simpleApp(20.0), 0, 1);
    std::uint64_t instrs = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        instrs += src.next().gapInstrs;
    double mpki = 1000.0 * n / static_cast<double>(instrs);
    EXPECT_NEAR(mpki, 20.0, 1.0);
}

TEST(Synthetic, CyclesTrackBaseCpi)
{
    SyntheticTraceSource src(simpleApp(), 0, 2);
    std::uint64_t instrs = 0;
    std::uint64_t cycles = 0;
    for (int i = 0; i < 50000; ++i) {
        TraceRecord r = src.next();
        instrs += r.gapInstrs;
        cycles += r.gapCycles;
    }
    EXPECT_NEAR(static_cast<double>(cycles) / instrs, 1.2, 0.05);
}

TEST(Synthetic, WriteFraction)
{
    SyntheticTraceSource src(simpleApp(20, 5, 0.4), 0, 3);
    int writes = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        writes += src.next().isWrite;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.4, 0.02);
}

TEST(Synthetic, InstructionMixFractions)
{
    SyntheticTraceSource src(simpleApp(), 0, 4);
    double alu = 0, fpu = 0, br = 0, mem = 0, instrs = 0;
    for (int i = 0; i < 50000; ++i) {
        TraceRecord r = src.next();
        alu += r.aluOps;
        fpu += r.fpuOps;
        br += r.branchOps;
        mem += r.memOps;
        instrs += r.gapInstrs;
    }
    EXPECT_NEAR(alu / instrs, 0.45, 0.02);
    EXPECT_NEAR(fpu / instrs, 0.05, 0.01);
    EXPECT_NEAR(br / instrs, 0.15, 0.02);
    EXPECT_NEAR(mem / instrs, 0.35, 0.02);
}

TEST(Synthetic, StreamVsHotAddressSplit)
{
    // With llcMpki/l1Mpki = 0.25 intent, ~25% of accesses should
    // stream beyond the hot region.
    AppSpec app = simpleApp(20.0, 5.0);
    SyntheticTraceSource src(app, 0, 5);
    BlockAddr base = 0;
    BlockAddr hot_limit = app.phases[0].hotBlocks;
    int streaming = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        TraceRecord r = src.next();
        if (r.addr - base >= hot_limit)
            streaming += 1;
    }
    EXPECT_NEAR(static_cast<double>(streaming) / n, 0.25, 0.02);
}

TEST(Synthetic, AddressSpacesDisjointAcrossCores)
{
    SyntheticTraceSource a(simpleApp(), 0, 6);
    SyntheticTraceSource b(simpleApp(), 1, 6);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(a.next().addr, BlockAddr(1) << 34);
        EXPECT_GE(b.next().addr, BlockAddr(1) << 34);
    }
}

TEST(Synthetic, DeterministicForSameSeed)
{
    SyntheticTraceSource a(simpleApp(), 0, 7);
    SyntheticTraceSource b(simpleApp(), 0, 7);
    for (int i = 0; i < 1000; ++i) {
        TraceRecord ra = a.next();
        TraceRecord rb = b.next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.gapInstrs, rb.gapInstrs);
        EXPECT_EQ(ra.gapCycles, rb.gapCycles);
        EXPECT_EQ(ra.isWrite, rb.isWrite);
    }
}

TEST(Synthetic, ClonePreservesPosition)
{
    SyntheticTraceSource src(simpleApp(), 0, 8);
    for (int i = 0; i < 500; ++i)
        src.next();
    auto clone = src.clone();
    for (int i = 0; i < 500; ++i) {
        TraceRecord a = src.next();
        TraceRecord b = clone->next();
        EXPECT_EQ(a.addr, b.addr);
        EXPECT_EQ(a.gapInstrs, b.gapInstrs);
    }
}

TEST(Synthetic, PhasesChangeIntensity)
{
    AppSpec app;
    app.name = "phased";
    AppPhase light;
    light.instructions = 1'000'000;
    light.l1Mpki = 20;
    light.llcMpki = 1.0;
    AppPhase heavy = light;
    heavy.llcMpki = 15.0;
    app.phases = {light, heavy};

    SyntheticTraceSource src(app, 0, 9);
    // Consume most of the light phase, then sample the heavy one.
    auto measure_stream_frac = [&](std::uint64_t instr_budget) {
        std::uint64_t instrs = 0;
        int stream = 0, n = 0;
        while (instrs < instr_budget) {
            TraceRecord r = src.next();
            instrs += r.gapInstrs;
            n += 1;
            if (r.addr >= light.hotBlocks)
                stream += 1;
        }
        return static_cast<double>(stream) / n;
    };
    double frac_light = measure_stream_frac(800'000);
    // Skip the phase boundary and its ramp.
    measure_stream_frac(500'000);
    double frac_heavy = measure_stream_frac(500'000);
    EXPECT_LT(frac_light, 0.10);
    EXPECT_GT(frac_heavy, 0.5);
}

TEST(Synthetic, PhaseRampIsGradual)
{
    AppSpec app;
    AppPhase a;
    a.instructions = 1'000'000;
    a.l1Mpki = 20;
    a.llcMpki = 0.0;
    AppPhase b = a;
    b.llcMpki = 20.0;   // miss everything
    app.name = "ramp";
    app.phases = {a, b};

    SyntheticTraceSource src(app, 0, 10);
    std::uint64_t instrs = 0;
    while (instrs < 1'000'000)
        instrs += src.next().gapInstrs;
    // First ~7% of phase b (half of the 15% ramp): stream fraction
    // should be clearly below the full-phase intensity.
    int stream = 0, n = 0;
    std::uint64_t start = instrs;
    while (instrs < start + 70'000) {
        TraceRecord r = src.next();
        instrs += r.gapInstrs;
        n += 1;
        if (r.addr >= a.hotBlocks)
            stream += 1;
    }
    double early = static_cast<double>(stream) / n;
    EXPECT_LT(early, 0.75);
    EXPECT_GT(early, 0.05);
}

TEST(TraceHandle, CopyClones)
{
    TraceHandle h(std::make_unique<SyntheticTraceSource>(simpleApp(), 0,
                                                         11));
    h->next();
    TraceHandle copy = h;
    TraceRecord a = h->next();
    TraceRecord b = copy->next();
    EXPECT_EQ(a.addr, b.addr);
    // Diverge independently afterwards.
    h->next();
    TraceRecord c = h->next();
    TraceRecord d = copy->next();
    EXPECT_EQ(c.gapInstrs, c.gapInstrs);
    (void)d;
}

TEST(TraceFile, RoundTrip)
{
    std::string path = "test_trace_roundtrip.bin";
    std::vector<TraceRecord> records;
    {
        SyntheticTraceSource src(simpleApp(), 0, 12);
        TraceFileWriter w(path);
        for (int i = 0; i < 1000; ++i) {
            TraceRecord r = src.next();
            records.push_back(r);
            w.append(r);
        }
        w.close();
        EXPECT_EQ(w.recordsWritten(), 1000u);
    }
    auto buf = loadTraceFile(path);
    ASSERT_EQ(buf->size(), 1000u);
    for (size_t i = 0; i < 1000; ++i) {
        EXPECT_EQ((*buf)[i].addr, records[i].addr);
        EXPECT_EQ((*buf)[i].gapInstrs, records[i].gapInstrs);
        EXPECT_EQ((*buf)[i].gapCycles, records[i].gapCycles);
        EXPECT_EQ((*buf)[i].aluOps, records[i].aluOps);
        EXPECT_EQ((*buf)[i].isWrite, records[i].isWrite);
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayWrapsAround)
{
    std::string path = "test_trace_wrap.bin";
    {
        TraceFileWriter w(path);
        for (int i = 0; i < 10; ++i) {
            TraceRecord r;
            r.addr = static_cast<BlockAddr>(i);
            r.gapInstrs = 1;
            r.gapCycles = 1;
            w.append(r);
        }
    }
    ReplayTraceSource src(loadTraceFile(path));
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 10; ++i)
            EXPECT_EQ(src.next().addr, static_cast<BlockAddr>(i));
    }
    std::remove(path.c_str());
}

TEST(TraceFile, ReplayCloneIsCheapAndIndependent)
{
    std::string path = "test_trace_clone.bin";
    {
        TraceFileWriter w(path);
        for (int i = 0; i < 5; ++i) {
            TraceRecord r;
            r.addr = static_cast<BlockAddr>(i);
            w.append(r);
        }
    }
    ReplayTraceSource src(loadTraceFile(path));
    src.next();
    auto clone = src.clone();
    EXPECT_EQ(src.next().addr, clone->next().addr);
    src.next();
    EXPECT_NE(src.next().addr, clone->next().addr);
    std::remove(path.c_str());
}

} // namespace
} // namespace coscale
