/**
 * @file
 * Edge-case tests for the shared search utilities: admissibility
 * vectors, feasibility short-circuits, memory-only walks that cannot
 * move, cap-scan degenerate cases, and death tests for the library's
 * fatal error paths.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include "policy/search_common.hh"
#include "trace/trace_file.hh"
#include "workloads/spec_catalogue.hh"

namespace coscale {
namespace {

struct SearchFixture : ::testing::Test
{
    SearchFixture()
        : coreLadder(defaultCoreLadder()), memLadder(defaultMemLadder()),
          perf(DramTimingParams{}, 10.0, 7.5)
    {
        PowerParams pp;
        pp.numCores = 2;
        power = PowerModel(pp);
        em = EnergyModel(&perf, &power, &coreLadder, &memLadder);

        prof.windowTicks = 300 * tickPerUs;
        for (int i = 0; i < 2; ++i) {
            CoreProfile c;
            c.cyclesPerInstr = 1.4;
            c.alpha = 0.01;
            c.tpiL2Secs = 7.5e-9;
            c.beta = 0.004;
            c.measuredMemStallSecs = 70e-9;
            c.instrs = 100000;
            c.aluPerInstr = 0.4;
            c.memOpPerInstr = 0.35;
            c.llcAccessPerInstr = 0.014;
            c.memReadPerInstr = 0.004;
            prof.cores.push_back(c);
        }
        prof.mem.profiledBusFreq = 800 * MHz;
        prof.mem.measuredStallSecs = perf.serviceSecs(800 * MHz) + 4e-9;
        prof.mem.wBankSecs = 2.5e-9;
        prof.mem.wBusSecs = 1.5e-9;
        prof.mem.busUtil = 0.2;
        prof.mem.rankActiveFrac = 0.25;
        prof.mem.trafficPerSec = 1.5e8;
        prof.profiledCoreIdx = {0, 0};
        prof.profiledMemIdx = 0;
    }

    FreqLadder coreLadder;
    FreqLadder memLadder;
    PerfModel perf;
    PowerModel power;
    EnergyModel em;
    SystemProfile prof;
};

TEST_F(SearchFixture, RefTpisMatchDirectEvaluation)
{
    FreqConfig ref = FreqConfig::allMax(2);
    ref.memIdx = 3;
    auto v = refTpis(em, prof, ref);
    ASSERT_EQ(v.size(), 2u);
    EXPECT_DOUBLE_EQ(v[0], em.tpi(prof, 0, ref));
    EXPECT_DOUBLE_EQ(v[1], em.tpi(prof, 1, ref));
}

TEST_F(SearchFixture, AllowedTpisScaleWithGamma)
{
    auto ref = refTpis(em, prof, FreqConfig::allMax(2));
    SlackTracker loose(2, 0.20, 0.0);
    SlackTracker tight(2, 0.02, 0.0);
    auto a_loose = allowedTpis(loose, ref, tickPerMs);
    auto a_tight = allowedTpis(tight, ref, tickPerMs);
    for (size_t i = 0; i < 2; ++i) {
        EXPECT_NEAR(a_loose[i], ref[i] * 1.20, ref[i] * 1e-9);
        EXPECT_NEAR(a_tight[i], ref[i] * 1.02, ref[i] * 1e-9);
    }
}

TEST_F(SearchFixture, ConfigFeasibleRejectsDeepScaling)
{
    auto ref = refTpis(em, prof, FreqConfig::allMax(2));
    SlackTracker slack(2, 0.05, 0.0);
    auto allowed = allowedTpis(slack, ref, tickPerMs);
    FreqConfig all_min;
    all_min.coreIdx = {9, 9};
    all_min.memIdx = 9;
    EXPECT_FALSE(configFeasible(em, prof, all_min, allowed));
    EXPECT_TRUE(
        configFeasible(em, prof, FreqConfig::allMax(2), allowed));
}

TEST_F(SearchFixture, MemOnlyBestWithZeroSlackStaysAtMax)
{
    auto ref = refTpis(em, prof, FreqConfig::allMax(2));
    // A tracker driven deeply negative: nothing is admissible.
    SlackTracker slack(2, 0.10, 0.0);
    slack.update(0, ref[0] * 0.5, 1'000'000, 1e-3);
    slack.update(1, ref[1] * 0.5, 1'000'000, 1e-3);
    auto allowed = allowedTpis(slack, ref, tickPerMs);
    int idx = memOnlyBest(em, prof, {0, 0}, allowed);
    EXPECT_EQ(idx, 0);
}

TEST_F(SearchFixture, CapScanWithUnlimitedSlackScalesMemoryBoundCore)
{
    // Make core 1 heavily memory-bound: its frequency barely affects
    // its TPI, so with unlimited slack the optimizer should push it
    // far down the ladder for nearly-free power savings.
    prof.cores[1].cyclesPerInstr = 0.8;
    prof.cores[1].beta = 0.02;
    prof.cores[1].memReadPerInstr = 0.02;
    prof.cores[1].measuredMemStallSecs = 90e-9;

    std::vector<double> allowed = {1.0, 1.0};  // seconds: no limit
    double ser = 0.0;
    FreqConfig pick = capScanBestForMem(em, prof, 0, allowed, ser);
    EXPECT_GT(pick.coreIdx[1], 4);
    EXPECT_LT(ser, 1.0);
    // The compute-bound core scales less than the memory-bound one.
    EXPECT_LE(pick.coreIdx[0], pick.coreIdx[1]);
}

TEST_F(SearchFixture, ExhaustiveBestNeverWorseThanSingleKnob)
{
    auto ref = refTpis(em, prof, FreqConfig::allMax(2));
    SlackTracker slack(2, 0.10, 0.0);
    auto allowed = allowedTpis(slack, ref, tickPerMs);

    double cpu_ser = 0.0;
    capScanBestForMem(em, prof, 0, allowed, cpu_ser);
    int mem_idx = memOnlyBest(em, prof, {0, 0}, allowed);
    FreqConfig mem_cfg = FreqConfig::allMax(2);
    mem_cfg.memIdx = mem_idx;
    double mem_ser = em.ser(prof, mem_cfg);

    FreqConfig joint = exhaustiveBest(em, prof, allowed);
    double joint_ser = em.ser(prof, joint);
    EXPECT_LE(joint_ser, cpu_ser + 1e-12);
    EXPECT_LE(joint_ser, mem_ser + 1e-12);
}

// --- Death tests for fatal error paths ---

TEST(FatalPaths, UnknownMixDies)
{
    EXPECT_EXIT(mixByName("NOPE1"), ::testing::ExitedWithCode(1),
                "unknown workload mix");
}

TEST(FatalPaths, UnknownAppDies)
{
    EXPECT_EXIT(appByName("notaspec"), ::testing::ExitedWithCode(1),
                "unknown application");
}

// Malformed trace files throw structured TraceParseErrors (they are
// input errors, not contract violations — tests/test_fault.cc fuzzes
// the parser more thoroughly).

TEST(FatalPaths, GarbageTraceFileThrows)
{
    std::string path = "garbage.trace";
    {
        std::FILE *f = std::fopen(path.c_str(), "wb");
        std::fputs("this is not a trace file at all......", f);
        std::fclose(f);
    }
    try {
        loadTraceFile(path);
        FAIL() << "expected TraceParseError";
    } catch (const TraceParseError &e) {
        EXPECT_EQ(e.kind(), TraceParseError::Kind::BadMagic);
        EXPECT_NE(std::string(e.what()).find("not a CoScale trace"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(FatalPaths, MissingTraceFileThrows)
{
    try {
        loadTraceFile("/definitely/not/here.trace");
        FAIL() << "expected TraceParseError";
    } catch (const TraceParseError &e) {
        EXPECT_EQ(e.kind(), TraceParseError::Kind::OpenFailed);
        EXPECT_NE(std::string(e.what()).find("cannot open"),
                  std::string::npos);
    }
}

TEST(FatalPaths, TruncatedTraceFileThrows)
{
    std::string path = "truncated.trace";
    {
        TraceFileWriter w(path);
        TraceRecord r;
        for (int i = 0; i < 10; ++i)
            w.append(r);
    }
    // Chop the last record in half.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    long sz = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), sz - 16), 0);
    try {
        loadTraceFile(path);
        FAIL() << "expected TraceParseError";
    } catch (const TraceParseError &e) {
        EXPECT_EQ(e.kind(), TraceParseError::Kind::ShortRecord);
        // The offset names the start of the cut-short final record.
        EXPECT_EQ(e.byteOffset(), 16u + 9u * 32u);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace coscale
