/**
 * @file
 * Unit tests for the analytic models: Eq. 1 CPI/TPI decomposition,
 * the memory-stall frequency projection, profile extraction from
 * counters, and the SER energy model (Eq. 2-3).
 */

#include <gtest/gtest.h>

#include "common/dvfs.hh"
#include "common/rng.hh"
#include "model/energy_model.hh"
#include "model/perf_model.hh"

namespace coscale {
namespace {

PerfModel
makePerf()
{
    return PerfModel(DramTimingParams{}, 10.0, 7.5);
}

CoreProfile
computeBound()
{
    CoreProfile c;
    c.cyclesPerInstr = 1.5;
    c.alpha = 0.008;
    c.tpiL2Secs = 7.5e-9;
    c.beta = 0.0004;
    c.measuredMemStallSecs = 60e-9;
    c.instrs = 1'000'000;
    c.aluPerInstr = 0.45;
    c.fpuPerInstr = 0.02;
    c.branchPerInstr = 0.18;
    c.memOpPerInstr = 0.35;
    c.llcAccessPerInstr = 0.0084;
    c.memReadPerInstr = 0.0004;
    return c;
}

CoreProfile
memoryBound()
{
    CoreProfile c = computeBound();
    c.cyclesPerInstr = 0.9;
    c.alpha = 0.022;
    c.beta = 0.018;
    c.measuredMemStallSecs = 90e-9;
    c.llcAccessPerInstr = 0.04;
    c.memReadPerInstr = 0.018;
    return c;
}

MemProfile
quietMem(Freq anchor = 800 * MHz)
{
    MemProfile m;
    m.profiledBusFreq = anchor;
    m.wBankSecs = 2e-9;
    m.wBusSecs = 1e-9;
    PerfModel pm = makePerf();
    m.measuredStallSecs = pm.serviceSecs(anchor) + 3e-9;
    m.busUtil = 0.15;
    m.rankActiveFrac = 0.2;
    m.writeFrac = 0.25;
    m.trafficPerSec = 1e8;
    return m;
}

TEST(PerfModel, ServiceTimeDecomposition)
{
    PerfModel pm = makePerf();
    // tRCD + tCL + resp = 40 ns fixed, plus the burst.
    EXPECT_NEAR(pm.serviceSecs(800 * MHz), 40e-9 + 5e-9, 1e-12);
    EXPECT_NEAR(pm.serviceSecs(200 * MHz), 40e-9 + 20e-9, 1e-12);
    EXPECT_NEAR(pm.busSecs(800 * MHz), 5e-9, 1e-12);
    EXPECT_NEAR(pm.bankServiceSecs(), 45e-9, 1e-12);
}

TEST(PerfModel, TpiMemExactAtAnchor)
{
    PerfModel pm = makePerf();
    for (Freq anchor : {800 * MHz, 404 * MHz, 200 * MHz}) {
        MemProfile m = quietMem(anchor);
        EXPECT_NEAR(pm.tpiMemSecs(m, anchor), m.measuredStallSecs,
                    1e-12);
    }
}

TEST(PerfModel, TpiMemGrowsAsBusSlows)
{
    PerfModel pm = makePerf();
    MemProfile m = quietMem();
    double prev = 0.0;
    for (Freq f : {800 * MHz, 600 * MHz, 400 * MHz, 200 * MHz}) {
        double v = pm.tpiMemSecs(m, f);
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(PerfModel, QueueingGrowsSuperlinearly)
{
    // At high utilisation the projected wait at a lower frequency
    // must grow faster than the pure burst stretch.
    PerfModel pm = makePerf();
    MemProfile busy = quietMem();
    busy.busUtil = 0.45;
    busy.wBusSecs = 8e-9;
    busy.measuredStallSecs = pm.serviceSecs(800 * MHz) + 10e-9;

    double at_800 = pm.tpiMemSecs(busy, 800 * MHz);
    double at_200 = pm.tpiMemSecs(busy, 200 * MHz);
    double burst_stretch = pm.busSecs(200 * MHz) - pm.busSecs(800 * MHz);
    EXPECT_GT(at_200 - at_800, burst_stretch + busy.wBusSecs * 2.0);
}

TEST(PerfModel, TpiEquation1Structure)
{
    PerfModel pm = makePerf();
    CoreProfile c = computeBound();
    MemProfile m = quietMem();
    double tpi = pm.tpiSecs(c, 4 * GHz, m, 800 * MHz);
    // Compute part: 1.5 cycles at 4 GHz = 0.375 ns; L2 part:
    // alpha * 7.5 ns; memory part: beta * stall.
    EXPECT_NEAR(tpi,
                1.5 / 4e9 + 0.008 * 7.5e-9 + 0.0004 * 60e-9,
                2e-12);
}

TEST(PerfModel, ComputePartScalesWithCoreFrequency)
{
    PerfModel pm = makePerf();
    CoreProfile c = computeBound();
    MemProfile m = quietMem();
    double fast = pm.tpiSecs(c, 4 * GHz, m, 800 * MHz);
    double slow = pm.tpiSecs(c, 2.2 * GHz, m, 800 * MHz);
    EXPECT_NEAR(slow - fast, 1.5 / 2.2e9 - 1.5 / 4e9, 1e-12);
}

TEST(PerfModel, MemoryBoundCoreBarelyCaresAboutCoreFreq)
{
    PerfModel pm = makePerf();
    CoreProfile c = memoryBound();
    MemProfile m = quietMem();
    double fast = pm.tpiSecs(c, 4 * GHz, m, 800 * MHz);
    double slow = pm.tpiSecs(c, 2.2 * GHz, m, 800 * MHz);
    EXPECT_LT((slow - fast) / fast, 0.12);
}

TEST(PerfModel, CoreProfileFromCounters)
{
    PerfModel pm = makePerf();
    CoreCounters d;
    d.tic = 1'000'000;
    d.tms = 8000;
    d.tla = 8400;
    d.tlm = 400;
    d.tls = 400;
    d.computeTicks = 375 * tickPerUs;  // 1.5e6 cycles at 4 GHz
    d.l2StallTicks = 8000 * nsToTicks(7.5);
    d.memStallTicks = 400 * nsToTicks(60);
    d.aluOps = 450'000;
    CoreProfile c = pm.coreProfile(d, 500 * tickPerUs, 4 * GHz);
    EXPECT_NEAR(c.cyclesPerInstr, 1.5, 1e-9);
    EXPECT_NEAR(c.alpha, 0.008, 1e-12);
    EXPECT_NEAR(c.beta, 0.0004, 1e-12);
    EXPECT_NEAR(c.tpiL2Secs, 7.5e-9, 1e-14);
    EXPECT_NEAR(c.measuredMemStallSecs, 60e-9, 1e-14);
    EXPECT_NEAR(c.aluPerInstr, 0.45, 1e-12);
}

TEST(PerfModel, EmptyWindowYieldsZeroProfile)
{
    PerfModel pm = makePerf();
    CoreCounters d;
    CoreProfile c = pm.coreProfile(d, tickPerMs, 4 * GHz);
    EXPECT_EQ(c.instrs, 0u);
    EXPECT_DOUBLE_EQ(c.beta, 0.0);
}

TEST(PerfModel, MemProfileFromCounters)
{
    PerfModel pm = makePerf();
    ChannelCounters d;
    d.readReqs = 1000;
    d.writeReqs = 250;
    d.bankWaitTicks = 1000 * nsToTicks(4);
    d.busWaitTicks = 1000 * nsToTicks(2);
    d.busBusyTicks = 1250 * 4 * 1250;
    d.rankActiveTicks = 8 * tickPerUs;
    MemProfile m =
        pm.memProfile(d, 100 * tickPerUs, 800 * MHz, 4, 16);
    EXPECT_NEAR(m.wBankSecs, 4e-9, 1e-13);
    EXPECT_NEAR(m.wBusSecs, 2e-9, 1e-13);
    EXPECT_NEAR(m.writeFrac, 0.2, 1e-9);
    EXPECT_NEAR(m.measuredStallSecs, 45e-9 + 6e-9, 1e-12);
    EXPECT_NEAR(m.busUtil,
                1250.0 * 4 * 1250 / (4.0 * 100 * tickPerUs), 1e-9);
    EXPECT_NEAR(m.trafficPerSec, 1250 / 100e-6, 1.0);
}

// --- EnergyModel ---

struct EnergyFixture : ::testing::Test
{
    static PowerParams
    fourCoreParams()
    {
        PowerParams p;
        p.numCores = 4;
        return p;
    }

    EnergyFixture()
        : coreLadder(defaultCoreLadder()), memLadder(defaultMemLadder()),
          perf(makePerf()), power(fourCoreParams()),
          em(&perf, &power, &coreLadder, &memLadder)
    {
        prof.windowTicks = 300 * tickPerUs;
        for (int i = 0; i < 4; ++i)
            prof.cores.push_back(i % 2 ? memoryBound() : computeBound());
        prof.mem = quietMem();
        prof.profiledCoreIdx.assign(4, 0);
        prof.profiledMemIdx = 0;
    }

    FreqLadder coreLadder;
    FreqLadder memLadder;
    PerfModel perf;
    PowerModel power;
    EnergyModel em;
    SystemProfile prof;
};

TEST_F(EnergyFixture, SerAtAllMaxIsOne)
{
    FreqConfig all_max = FreqConfig::allMax(4);
    EXPECT_NEAR(em.ser(prof, all_max), 1.0, 1e-9);
    EXPECT_NEAR(em.relativeTime(prof, all_max), 1.0, 1e-9);
}

TEST_F(EnergyFixture, RelativeTimeIsWorstCore)
{
    FreqConfig cfg = FreqConfig::allMax(4);
    cfg.coreIdx[0] = 9;  // compute-bound core to minimum
    double t0 = em.tpi(prof, 0, cfg) / em.tpiAtMax(prof, 0);
    EXPECT_NEAR(em.relativeTime(prof, cfg), t0, 1e-9);
    EXPECT_GT(t0, 1.5);
}

TEST_F(EnergyFixture, SystemPowerDecreasesWithLowerFrequencies)
{
    FreqConfig all_max = FreqConfig::allMax(4);
    FreqConfig all_min = all_max;
    for (auto &c : all_min.coreIdx)
        c = 9;
    all_min.memIdx = 9;
    EXPECT_LT(em.systemPower(prof, all_min),
              0.6 * em.systemPower(prof, all_max));
}

TEST_F(EnergyFixture, ScalingMemoryBoundCoreIsCheaperThanComputeBound)
{
    // Slowing a memory-bound core hurts time far less than slowing a
    // compute-bound one, so its SER must be strictly better — the
    // asymmetry CoScale's marginal-utility ranking exploits.
    FreqConfig mem_scaled = FreqConfig::allMax(4);
    mem_scaled.coreIdx[1] = 6;  // memory-bound core
    FreqConfig cpu_scaled = FreqConfig::allMax(4);
    cpu_scaled.coreIdx[0] = 6;  // compute-bound core
    EXPECT_LT(em.ser(prof, mem_scaled), em.ser(prof, cpu_scaled) - 0.02);
    // And it is close to break-even in absolute terms.
    EXPECT_LT(em.ser(prof, mem_scaled), 1.03);
}

TEST_F(EnergyFixture, CorePowerFallsWithItsOwnIndex)
{
    FreqConfig cfg = FreqConfig::allMax(4);
    double prev = 1e9;
    for (int idx = 0; idx < coreLadder.size(); ++idx) {
        cfg.coreIdx[0] = idx;
        double p = em.corePower(prof, 0, cfg);
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST_F(EnergyFixture, MemPowerFallsWithMemIndex)
{
    FreqConfig cfg = FreqConfig::allMax(4);
    double prev = 1e9;
    for (int idx = 0; idx < memLadder.size(); ++idx) {
        cfg.memIdx = idx;
        double p = em.memPower(prof, cfg);
        EXPECT_LT(p, prev);
        prev = p;
    }
}

TEST_F(EnergyFixture, TpiMonotoneInBothDimensions)
{
    FreqConfig cfg = FreqConfig::allMax(4);
    for (int i = 0; i < 4; ++i) {
        double base = em.tpi(prof, i, cfg);
        FreqConfig slower_core = cfg;
        slower_core.coreIdx[static_cast<size_t>(i)] = 5;
        EXPECT_GT(em.tpi(prof, i, slower_core), base);
        FreqConfig slower_mem = cfg;
        slower_mem.memIdx = 5;
        EXPECT_GE(em.tpi(prof, i, slower_mem), base);
    }
}

TEST_F(EnergyFixture, SerEvaluatorMatchesEnergyModelExactly)
{
    // The cached fast path (used by the policies' searches) must
    // agree with the reference implementation bit-for-bit-ish on
    // arbitrary configurations.
    SerEvaluator ev(em, prof);
    Rng rng(123);
    for (int trial = 0; trial < 200; ++trial) {
        FreqConfig cfg;
        for (int i = 0; i < 4; ++i) {
            cfg.coreIdx.push_back(
                static_cast<int>(rng.range(coreLadder.size())));
        }
        cfg.memIdx = static_cast<int>(rng.range(memLadder.size()));

        for (int i = 0; i < 4; ++i) {
            double ref = em.tpi(prof, i, cfg);
            EXPECT_NEAR(ev.tpi(i, cfg.coreIdx[static_cast<size_t>(i)],
                               cfg.memIdx),
                        ref, ref * 1e-12);
            double p_ref = em.corePower(prof, i, cfg);
            EXPECT_NEAR(
                ev.corePower(i, cfg.coreIdx[static_cast<size_t>(i)],
                             cfg.memIdx),
                p_ref, p_ref * 1e-12);
        }
        double sp = em.systemPower(prof, cfg);
        EXPECT_NEAR(ev.systemPower(cfg), sp, sp * 1e-12);
        double s = em.ser(prof, cfg);
        EXPECT_NEAR(ev.ser(cfg), s, s * 1e-12);
        EXPECT_NEAR(ev.relativeTime(cfg), em.relativeTime(prof, cfg),
                    1e-12);
    }
}

TEST_F(EnergyFixture, LoweringFrequencyCanRaiseSer)
{
    // Section 3.1: "lowering frequency can increase energy
    // consumption if the slowdown is too high" — slowing a
    // compute-bound core to minimum stretches the whole system's
    // runtime while other components keep burning power.
    FreqConfig cfg = FreqConfig::allMax(4);
    cfg.coreIdx[0] = 9;  // compute-bound core to 2.2 GHz
    EXPECT_GT(em.ser(prof, cfg), 1.0);
}

} // namespace
} // namespace coscale
