/**
 * @file
 * Tests for the policies: slack-tracker arithmetic, feasibility, the
 * exhaustive-equivalence of cap-scan (checked against brute force on
 * a small configuration space), the CoScale greedy walk (Fig. 2/3),
 * and the power-capping extension.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "policy/coscale_policy.hh"
#include "policy/offline.hh"
#include "policy/power_cap.hh"
#include "policy/search_common.hh"
#include "policy/simple_policies.hh"
#include "policy/uncoordinated.hh"

namespace coscale {
namespace {

CoreProfile
mkCore(double cyc, double alpha, double beta, double stall_ns)
{
    CoreProfile c;
    c.cyclesPerInstr = cyc;
    c.alpha = alpha;
    c.tpiL2Secs = 7.5e-9;
    c.beta = beta;
    c.measuredMemStallSecs = stall_ns * 1e-9;
    c.instrs = 100'000;
    c.aluPerInstr = 0.4;
    c.fpuPerInstr = 0.1;
    c.branchPerInstr = 0.15;
    c.memOpPerInstr = 0.35;
    c.llcAccessPerInstr = alpha + beta;
    c.memReadPerInstr = beta;
    return c;
}

struct PolicyFixture : ::testing::Test
{
    PolicyFixture(int cores = 4, int core_steps = 10, int mem_steps = 10)
        : coreLadder(defaultCoreLadder(core_steps)),
          memLadder(defaultMemLadder(mem_steps)),
          perf(DramTimingParams{}, 10.0, 7.5), power(PowerParams{}),
          em(&perf, &power, &coreLadder, &memLadder)
    {
        prof.windowTicks = 300 * tickPerUs;
        for (int i = 0; i < cores; ++i) {
            double mix = static_cast<double>(i) / std::max(1, cores - 1);
            prof.cores.push_back(mkCore(1.5 - 0.6 * mix,
                                        0.005 + 0.02 * mix,
                                        0.0005 + 0.012 * mix,
                                        60.0 + 30.0 * mix));
        }
        prof.mem.profiledBusFreq = 800 * MHz;
        prof.mem.wBankSecs = 3e-9;
        prof.mem.wBusSecs = 2e-9;
        prof.mem.measuredStallSecs = perf.serviceSecs(800 * MHz) + 5e-9;
        prof.mem.busUtil = 0.25;
        prof.mem.rankActiveFrac = 0.3;
        prof.mem.writeFrac = 0.25;
        prof.mem.trafficPerSec = 2e8;
        prof.profiledCoreIdx.assign(static_cast<size_t>(cores), 0);
        prof.profiledMemIdx = 0;
    }

    int n() const { return static_cast<int>(prof.cores.size()); }

    FreqLadder coreLadder;
    FreqLadder memLadder;
    PerfModel perf;
    PowerModel power;
    EnergyModel em;
    SystemProfile prof;
};

// --- SlackTracker ---

TEST(SlackTracker, AccumulatesSurplusAtFullSpeed)
{
    SlackTracker t(1, 0.10, 0.0);
    // One epoch at exactly the reference pace: slack grows by
    // gamma * epoch.
    t.update(0, 1e-9, 1'000'000, 1e-3);
    EXPECT_NEAR(t.slackSecs(0), 0.10 * 1e-3, 1e-12);
}

TEST(SlackTracker, GoesNegativeWhenOverSpent)
{
    SlackTracker t(1, 0.10, 0.0);
    // Ran 25% slower than reference with a 10% allowance.
    t.update(0, 1e-9, 800'000, 1e-3);
    EXPECT_LT(t.slackSecs(0), 0.0);
}

TEST(SlackTracker, AllowedTpiAtZeroSlackIsGammaBound)
{
    SlackTracker t(1, 0.10, 0.0);
    EXPECT_NEAR(t.allowedTpi(0, 1e-9, 1e-3), 1.1e-9, 1e-15);
}

TEST(SlackTracker, PositiveSlackLoosensTheBound)
{
    SlackTracker t(1, 0.10, 0.0);
    t.update(0, 1e-9, 1'000'000, 1e-3);  // banked gamma*epoch
    double allowed = t.allowedTpi(0, 1e-9, 1e-3);
    EXPECT_GT(allowed, 1.1e-9);
    // Roughly 2*gamma available for one epoch.
    EXPECT_NEAR(allowed, 1.1e-9 / (1.0 - 0.1e-3 / 1e-3), 1e-14);
}

TEST(SlackTracker, NegativeSlackTightensTheBound)
{
    SlackTracker t(1, 0.10, 0.0);
    t.update(0, 1e-9, 700'000, 1e-3);
    EXPECT_LT(t.allowedTpi(0, 1e-9, 1e-3), 1.1e-9);
}

TEST(SlackTracker, HugeSlackMeansUnconstrained)
{
    SlackTracker t(1, 0.10, 0.0);
    for (int i = 0; i < 20; ++i)
        t.update(0, 1e-9, 1'000'000, 1e-3);
    EXPECT_TRUE(std::isinf(t.allowedTpi(0, 1e-9, 1e-3)));
}

TEST(SlackTracker, SafetyFractionTightensTarget)
{
    SlackTracker loose(1, 0.10, 0.0);
    SlackTracker tight(1, 0.10, 0.5);
    EXPECT_LT(tight.allowedTpi(0, 1e-9, 1e-3),
              loose.allowedTpi(0, 1e-9, 1e-3));
    EXPECT_NEAR(tight.gamma(), 0.05, 1e-12);
}

// --- Cap-scan vs brute force ---

struct SmallSpace : PolicyFixture
{
    SmallSpace() : PolicyFixture(3, 4, 4) {}

    /** Brute-force minimum SER over the full C^N x M space. */
    double
    bruteForceBestSer(const std::vector<double> &allowed)
    {
        double best = 1e18;
        int c_steps = coreLadder.size();
        FreqConfig cfg = FreqConfig::allMax(n());
        for (int m = 0; m < memLadder.size(); ++m) {
            cfg.memIdx = m;
            int total = 1;
            for (int i = 0; i < n(); ++i)
                total *= c_steps;
            for (int combo = 0; combo < total; ++combo) {
                int rem = combo;
                for (int i = 0; i < n(); ++i) {
                    cfg.coreIdx[static_cast<size_t>(i)] = rem % c_steps;
                    rem /= c_steps;
                }
                if (!configFeasible(em, prof, cfg, allowed))
                    continue;
                best = std::min(best, em.ser(prof, cfg));
            }
        }
        return best;
    }
};

TEST_F(SmallSpace, ExhaustiveBestMatchesBruteForce)
{
    FreqConfig all_max = FreqConfig::allMax(n());
    std::vector<double> ref = refTpis(em, prof, all_max);
    SlackTracker slack(n(), 0.10, 0.0);
    std::vector<double> allowed = allowedTpis(slack, ref, tickPerMs);

    double brute = bruteForceBestSer(allowed);
    FreqConfig pick = exhaustiveBest(em, prof, allowed);
    EXPECT_TRUE(configFeasible(em, prof, pick, allowed));
    EXPECT_NEAR(em.ser(prof, pick), brute, brute * 1e-9);
}

TEST_F(SmallSpace, ExhaustiveBestMatchesBruteForceAcrossBounds)
{
    for (double gamma : {0.01, 0.05, 0.15, 0.20}) {
        FreqConfig all_max = FreqConfig::allMax(n());
        std::vector<double> ref = refTpis(em, prof, all_max);
        SlackTracker slack(n(), gamma, 0.0);
        std::vector<double> allowed =
            allowedTpis(slack, ref, tickPerMs);
        double brute = bruteForceBestSer(allowed);
        FreqConfig pick = exhaustiveBest(em, prof, allowed);
        EXPECT_NEAR(em.ser(prof, pick), brute, brute * 1e-9)
            << "gamma " << gamma;
    }
}

// --- CoScale walk ---

TEST_F(PolicyFixture, CoScaleRespectsAllowedTpi)
{
    CoScalePolicy policy(n(), 0.10);
    FreqConfig current = FreqConfig::allMax(n());
    FreqConfig pick = policy.decide(prof, em, current, tickPerMs);
    FreqConfig all_max = FreqConfig::allMax(n());
    std::vector<double> ref = refTpis(em, prof, all_max);
    // A fresh tracker at the same bound gives the same allowance.
    SlackTracker slack(n(), 0.10);
    std::vector<double> allowed = allowedTpis(slack, ref, tickPerMs);
    EXPECT_TRUE(configFeasible(em, prof, pick, allowed));
}

TEST_F(PolicyFixture, CoScaleImprovesOnAllMax)
{
    CoScalePolicy policy(n(), 0.10);
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    EXPECT_LT(em.ser(prof, pick), 1.0);
    // Something actually scaled.
    bool scaled = pick.memIdx > 0;
    for (int idx : pick.coreIdx)
        scaled = scaled || idx > 0;
    EXPECT_TRUE(scaled);
}

TEST_F(PolicyFixture, CoScaleWalkRecordsMonotoneSteps)
{
    CoScalePolicy policy(n(), 0.10);
    policy.recordWalk(true);
    policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    const auto &walk = policy.lastWalk();
    ASSERT_GE(walk.size(), 2u);
    // Each step lowers exactly one component set: indices never rise.
    for (size_t s = 1; s < walk.size(); ++s) {
        EXPECT_GE(walk[s].cfg.memIdx, walk[s - 1].cfg.memIdx);
        for (size_t i = 0; i < walk[s].cfg.coreIdx.size(); ++i)
            EXPECT_GE(walk[s].cfg.coreIdx[i],
                      walk[s - 1].cfg.coreIdx[i]);
        int moved = walk[s].cfg.memIdx - walk[s - 1].cfg.memIdx;
        if (walk[s].memStep) {
            EXPECT_EQ(moved, 1);
        } else {
            EXPECT_EQ(moved, 0);
            EXPECT_GE(walk[s].groupSize, 1);
        }
    }
}

TEST_F(PolicyFixture, CoScaleNearExhaustiveQuality)
{
    // The greedy heuristic should land close to the exhaustive
    // optimum (Section 4.2.3: CoScale does almost as well as
    // Offline).
    CoScalePolicy policy(n(), 0.10);
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);

    FreqConfig all_max = FreqConfig::allMax(n());
    std::vector<double> ref = refTpis(em, prof, all_max);
    SlackTracker slack(n(), 0.10);
    std::vector<double> allowed = allowedTpis(slack, ref, tickPerMs);
    FreqConfig best = exhaustiveBest(em, prof, allowed);

    EXPECT_LE(em.ser(prof, pick), em.ser(prof, best) + 0.03);
}

TEST_F(PolicyFixture, TightBoundMeansFewSteps)
{
    CoScalePolicy policy(n(), 0.002);
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    // With a ~0.2% bound essentially nothing can scale.
    EXPECT_EQ(pick.memIdx, 0);
    int total = 0;
    for (int idx : pick.coreIdx)
        total += idx;
    EXPECT_LE(total, 1);
}

TEST_F(PolicyFixture, MemScaleTouchesOnlyMemory)
{
    MemScalePolicy policy(n(), 0.10);
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    for (int idx : pick.coreIdx)
        EXPECT_EQ(idx, 0);
    EXPECT_GT(pick.memIdx, 0);
}

TEST_F(PolicyFixture, CpuOnlyTouchesOnlyCores)
{
    CpuOnlyPolicy policy(n(), 0.10);
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    EXPECT_EQ(pick.memIdx, 0);
    int total = 0;
    for (int idx : pick.coreIdx)
        total += idx;
    EXPECT_GT(total, 0);
}

TEST_F(PolicyFixture, BaselineNeverScales)
{
    BaselinePolicy policy;
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    EXPECT_EQ(pick.memIdx, 0);
    for (int idx : pick.coreIdx)
        EXPECT_EQ(idx, 0);
}

TEST_F(PolicyFixture, OfflineWantsOracle)
{
    OfflinePolicy policy(n(), 0.10);
    EXPECT_TRUE(policy.wantsOracleProfile());
    CoScalePolicy cs(n(), 0.10);
    EXPECT_FALSE(cs.wantsOracleProfile());
}

TEST_F(PolicyFixture, UncoordinatedScalesBothAggressively)
{
    UncoordinatedPolicy policy(n(), 0.10);
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    int total = 0;
    for (int idx : pick.coreIdx)
        total += idx;
    // Both managers spend the whole slack independently.
    EXPECT_GT(total, 0);
    EXPECT_GT(pick.memIdx, 0);
}

TEST_F(PolicyFixture, SemiAlternatePhasesManagers)
{
    SemiCoordinatedPolicy policy(n(), 0.10,
                                 SemiCoordinatedPolicy::Phase::Alternate);
    FreqConfig current = FreqConfig::allMax(n());
    FreqConfig first = policy.decide(prof, em, current, tickPerMs);
    // Epoch 0: CPU manager only; memory untouched.
    EXPECT_EQ(first.memIdx, current.memIdx);
    FreqConfig second = policy.decide(prof, em, first, tickPerMs);
    // Epoch 1: memory manager only; cores untouched.
    EXPECT_EQ(second.coreIdx, first.coreIdx);
    EXPECT_GT(second.memIdx, first.memIdx);
}

// --- PowerCap ---

TEST_F(PolicyFixture, PowerCapMeetsCapWhenFeasible)
{
    double max_power =
        em.systemPower(prof, FreqConfig::allMax(n()));
    double cap = max_power * 0.8;
    PowerCapPolicy policy(cap);
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    EXPECT_LE(em.systemPower(prof, pick), cap);
    EXPECT_FALSE(policy.lastDecisionOverCap());
}

TEST_F(PolicyFixture, PowerCapNoThrottleWhenAlreadyUnder)
{
    double max_power =
        em.systemPower(prof, FreqConfig::allMax(n()));
    PowerCapPolicy policy(max_power * 1.1);
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    EXPECT_EQ(pick.memIdx, 0);
    for (int idx : pick.coreIdx)
        EXPECT_EQ(idx, 0);
}

TEST_F(PolicyFixture, PowerCapReportsInfeasibleCap)
{
    PowerCapPolicy policy(1.0);  // 1 W: impossible
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    EXPECT_TRUE(policy.lastDecisionOverCap());
    // Everything pinned at minimum.
    EXPECT_EQ(pick.memIdx, memLadder.size() - 1);
    for (int idx : pick.coreIdx)
        EXPECT_EQ(idx, coreLadder.size() - 1);
}

TEST_F(PolicyFixture, PowerCapPrefersCheapPerformance)
{
    // Tight-ish cap: the policy should shed power where it costs the
    // least performance, keeping relative time modest.
    double max_power =
        em.systemPower(prof, FreqConfig::allMax(n()));
    PowerCapPolicy policy(max_power * 0.85);
    FreqConfig pick =
        policy.decide(prof, em, FreqConfig::allMax(n()), tickPerMs);
    EXPECT_LT(em.relativeTime(prof, pick), 1.2);
}

} // namespace
} // namespace coscale
