/**
 * @file
 * Energy-accounting validation: the runner's total energy must equal
 * the integral of the per-epoch logged powers (up to the clipping at
 * workload completion), the component split must be stable across
 * policies, and energy must respond to frequency in the right
 * direction on a pinned system.
 */

#include <gtest/gtest.h>

#include "policy/coscale_policy.hh"
#include "policy/policy.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

TEST(EnergyAccounting, EpochPowersIntegrateToTotalEnergy)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    BaselinePolicy b;
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID2")).with(b));

    // Sum power x duration per epoch, clipping the final epoch at the
    // completion tick exactly as the runner does.
    double energy = 0.0;
    for (size_t e = 0; e < r.epochs.size(); ++e) {
        Tick start = r.epochs[e].startTick;
        Tick end = e + 1 < r.epochs.size() ? r.epochs[e + 1].startTick
                                           : r.finishTick;
        end = std::min(end, r.finishTick);
        if (end <= start)
            continue;
        energy += r.epochs[e].avgPower.totalW()
                  * ticksToSeconds(end - start);
    }
    // The profiling segment of each epoch is accounted separately
    // from the logged (post-decision) segment, so allow a small
    // reconstruction tolerance.
    EXPECT_NEAR(energy, r.totalEnergyJ(), r.totalEnergyJ() * 0.03);
}

TEST(EnergyAccounting, ComponentsAreAllPositiveEveryEpoch)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MIX1")).with(policy));
    for (const auto &e : r.epochs) {
        EXPECT_GT(e.avgPower.cpuW, 5.0);
        EXPECT_GT(e.avgPower.memW, 2.0);
        EXPECT_GT(e.avgPower.otherW, 5.0);
        EXPECT_LT(e.avgPower.totalW(), 300.0);
    }
}

TEST(EnergyAccounting, OtherPowerIsConstant)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(policy));
    ASSERT_GE(r.epochs.size(), 2u);
    for (const auto &e : r.epochs) {
        EXPECT_DOUBLE_EQ(e.avgPower.otherW,
                         r.epochs[0].avgPower.otherW);
    }
}

/** Pin every knob to one index for the whole run. */
class PinnedPolicy final : public Policy
{
  public:
    PinnedPolicy(int core_idx, int mem_idx)
        : coreIdx(core_idx), memIdx(mem_idx)
    {
    }

    std::string name() const override { return "Pinned"; }

    FreqConfig
    decide(const SystemProfile &prof, const EnergyModel &,
           const FreqConfig &, Tick) override
    {
        FreqConfig cfg;
        cfg.coreIdx.assign(prof.cores.size(), coreIdx);
        cfg.memIdx = memIdx;
        return cfg;
    }

    void observeEpoch(const EpochObservation &,
                      const EnergyModel &) override
    {
    }

  private:
    int coreIdx;
    int memIdx;
};

TEST(EnergyAccounting, PinnedLowFrequencyDrawsLessPowerMoreTime)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    BaselinePolicy base_policy;
    RunResult fast = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(base_policy));
    PinnedPolicy slow_policy(6, 6);
    RunResult slow = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(slow_policy));

    double fast_w = fast.totalEnergyJ() / ticksToSeconds(fast.finishTick);
    double slow_w = slow.totalEnergyJ() / ticksToSeconds(slow.finishTick);
    EXPECT_LT(slow_w, fast_w * 0.85);
    EXPECT_GT(slow.finishTick, fast.finishTick * 11 / 10);
}

TEST(EnergyAccounting, CpuEnergyDominatesForIlpMemoryShareForMem)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    BaselinePolicy b1, b2;
    RunResult ilp = coscale::run(RunRequest::forMix(cfg, mixByName("ILP1")).with(b1));
    RunResult mem = coscale::run(RunRequest::forMix(cfg, mixByName("MEM1")).with(b2));
    double ilp_mem_share = ilp.memEnergyJ / ilp.totalEnergyJ();
    double mem_mem_share = mem.memEnergyJ / mem.totalEnergyJ();
    EXPECT_GT(mem_mem_share, ilp_mem_share + 0.05);
    EXPECT_GT(ilp.cpuEnergyJ / ilp.totalEnergyJ(), 0.55);
}

} // namespace
} // namespace coscale
