/**
 * @file
 * Energy-accounting validation: the runner's total energy must equal
 * the integral of the per-epoch logged powers (up to the clipping at
 * workload completion), the component split must be stable across
 * policies, and energy must respond to frequency in the right
 * direction on a pinned system.
 */

#include <gtest/gtest.h>

#include "policy/coscale_policy.hh"
#include "policy/policy.hh"
#include "power/power_model.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

TEST(EnergyAccounting, EpochPowersIntegrateToTotalEnergy)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    BaselinePolicy b;
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID2")).with(b));

    // Sum power x duration per epoch, clipping the final epoch at the
    // completion tick exactly as the runner does.
    double energy = 0.0;
    for (size_t e = 0; e < r.epochs.size(); ++e) {
        Tick start = r.epochs[e].startTick;
        Tick end = e + 1 < r.epochs.size() ? r.epochs[e + 1].startTick
                                           : r.finishTick;
        end = std::min(end, r.finishTick);
        if (end <= start)
            continue;
        energy += r.epochs[e].avgPower.totalW()
                  * ticksToSeconds(end - start);
    }
    // The profiling segment of each epoch is accounted separately
    // from the logged (post-decision) segment, so allow a small
    // reconstruction tolerance.
    EXPECT_NEAR(energy, r.totalEnergyJ(), r.totalEnergyJ() * 0.03);
}

TEST(EnergyAccounting, ComponentsAreAllPositiveEveryEpoch)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MIX1")).with(policy));
    for (const auto &e : r.epochs) {
        EXPECT_GT(e.avgPower.cpuW, 5.0);
        EXPECT_GT(e.avgPower.memW, 2.0);
        EXPECT_GT(e.avgPower.otherW, 5.0);
        EXPECT_LT(e.avgPower.totalW(), 300.0);
    }
}

TEST(EnergyAccounting, OtherPowerIsConstant)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(policy));
    ASSERT_GE(r.epochs.size(), 2u);
    for (const auto &e : r.epochs) {
        EXPECT_DOUBLE_EQ(e.avgPower.otherW,
                         r.epochs[0].avgPower.otherW);
    }
}

/** Pin every knob to one index for the whole run. */
class PinnedPolicy final : public Policy
{
  public:
    PinnedPolicy(int core_idx, int mem_idx)
        : coreIdx(core_idx), memIdx(mem_idx)
    {
    }

    std::string name() const override { return "Pinned"; }

    FreqConfig
    decide(const SystemProfile &prof, const EnergyModel &,
           const FreqConfig &, Tick) override
    {
        FreqConfig cfg;
        cfg.coreIdx.assign(prof.cores.size(), coreIdx);
        cfg.memIdx = memIdx;
        return cfg;
    }

    void observeEpoch(const EpochObservation &,
                      const EnergyModel &) override
    {
    }

  private:
    int coreIdx;
    int memIdx;
};

TEST(EnergyAccounting, PinnedLowFrequencyDrawsLessPowerMoreTime)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    BaselinePolicy base_policy;
    RunResult fast = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(base_policy));
    PinnedPolicy slow_policy(6, 6);
    RunResult slow = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(slow_policy));

    double fast_w = fast.totalEnergyJ() / ticksToSeconds(fast.finishTick);
    double slow_w = slow.totalEnergyJ() / ticksToSeconds(slow.finishTick);
    EXPECT_LT(slow_w, fast_w * 0.85);
    EXPECT_GT(slow.finishTick, fast.finishTick * 11 / 10);
}

/** Alternate the memory bus between max and @p slow_idx each epoch. */
class MemTogglePolicy final : public Policy
{
  public:
    explicit MemTogglePolicy(int slow_idx) : slowIdx(slow_idx) {}

    std::string name() const override { return "MemToggle"; }

    FreqConfig
    decide(const SystemProfile &prof, const EnergyModel &,
           const FreqConfig &prev, Tick) override
    {
        FreqConfig cfg;
        cfg.coreIdx.assign(prof.cores.size(), 0);
        cfg.memIdx = prev.memIdx == 0 ? slowIdx : 0;
        return cfg;
    }

    void observeEpoch(const EpochObservation &,
                      const EnergyModel &) override
    {
    }

  private:
    int slowIdx;
};

TEST(EnergyAccounting, ModelRefreshPowerIsBusFrequencyInvariant)
{
    // tREFI and tRFC are wall-clock-fixed, so the refresh component of
    // memory power must not move across the whole DVFS ladder, while
    // the (DLL-dominated) background component derates with frequency.
    PowerParams pp;
    PowerModel pm(pp);
    FreqLadder ladder = defaultMemLadder();
    MemActivityRates rates;
    rates.readsPs = 1e8;
    rates.writesPs = 2.5e7;
    rates.busUtil = 0.3;
    rates.rankActiveFrac = 0.4;

    MemPowerBreakdown ref =
        pm.memPowerBreakdown(ladder.voltage(0), ladder.freq(0), rates);
    EXPECT_GT(ref.refresh, 0.0);
    for (int i = 1; i < ladder.size(); ++i) {
        MemPowerBreakdown b = pm.memPowerBreakdown(ladder.voltage(i),
                                                   ladder.freq(i), rates);
        EXPECT_DOUBLE_EQ(b.refresh, ref.refresh) << "index " << i;
        EXPECT_LT(b.background, ref.background) << "index " << i;
    }
}

TEST(EnergyAccounting, RefreshCadenceSurvivesMemFrequencyTransitions)
{
    // A policy that transitions the bus nearly every epoch must not
    // disturb the refresh cadence: the counted refreshes (surfaced by
    // the DRAM residency metrics) still track finish time / tREFI per
    // rank, and match the rate of a transition-free run.
    SystemConfig cfg = makeScaledConfig(0.05);
    MemTogglePolicy toggling(cfg.memLadder.size() - 1);
    RunResult t = coscale::run(RunRequest::forMix(cfg, mixByName("MID2"))
                                   .with(toggling)
                                   .withMetrics());
    ASSERT_TRUE(t.metrics);
    ASSERT_GE(t.epochs.size(), 4u);
    EXPECT_GE(t.metrics->counter("run.mem_freq_changes").value(),
              t.epochs.size() / 2);

    double t_secs = ticksToSeconds(t.finishTick);
    double expected = t_secs / (cfg.power.timing.tREFIus * 1e-6)
                      * cfg.geom.totalRanks();
    double counted = static_cast<double>(
        t.metrics->counter("dram.refreshes").value());
    EXPECT_NEAR(counted, expected, expected * 0.15);

    BaselinePolicy pinned;
    RunResult p = coscale::run(RunRequest::forMix(cfg, mixByName("MID2"))
                                   .with(pinned)
                                   .withMetrics());
    ASSERT_TRUE(p.metrics);
    double p_rate = static_cast<double>(
                        p.metrics->counter("dram.refreshes").value())
                    / ticksToSeconds(p.finishTick);
    EXPECT_NEAR(counted / t_secs, p_rate, p_rate * 0.10);
}

TEST(EnergyAccounting, CpuEnergyDominatesForIlpMemoryShareForMem)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    BaselinePolicy b1, b2;
    RunResult ilp = coscale::run(RunRequest::forMix(cfg, mixByName("ILP1")).with(b1));
    RunResult mem = coscale::run(RunRequest::forMix(cfg, mixByName("MEM1")).with(b2));
    double ilp_mem_share = ilp.memEnergyJ / ilp.totalEnergyJ();
    double mem_mem_share = mem.memEnergyJ / mem.totalEnergyJ();
    EXPECT_GT(mem_mem_share, ilp_mem_share + 0.05);
    EXPECT_GT(ilp.cpuEnergyJ / ilp.totalEnergyJ(), 0.55);
}

} // namespace
} // namespace coscale
