/**
 * @file
 * The fault-injection and graceful-degradation layer under test:
 * stateless fault-hash determinism, the per-seam injector behaviours
 * (noise, bias, dropout, staleness, transition deny/delay/clamp,
 * timer jitter), the Policy::safeDecide guards (model-output
 * validation and the slack-exhaustion escape hatch), run-level
 * determinism of faulted runs across worker counts, a golden faulted
 * trace fixture, end-to-end degradation bounds under adversarial
 * counter bias, and fuzz-ish corruption of trace files.
 *
 * Regenerate the faulted golden fixture (after an intentional
 * simulator or schema change) with
 *
 *   COSCALE_REGEN_GOLDEN=1 ./build/tests/test_fault
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exp/engine.hh"
#include "exp/policies.hh"
#include "fault/corrupt.hh"
#include "fault/fault_injector.hh"
#include "golden_util.hh"
#include "obs/trace_sink.hh"
#include "policy/policy.hh"
#include "policy/search_common.hh"
#include "sim/runner.hh"
#include "trace/trace_file.hh"
#include "workloads/spec_catalogue.hh"

namespace coscale {
namespace {

using fault::FaultInjector;
using fault::FaultPlan;
using fault::FaultStream;

// --- stateless hash ---

TEST(FaultHash, PureFunctionOfItsArguments)
{
    EXPECT_EQ(fault::faultHash(1, 2, FaultStream::Dropout, 3),
              fault::faultHash(1, 2, FaultStream::Dropout, 3));
    EXPECT_NE(fault::faultHash(1, 2, FaultStream::Dropout, 3),
              fault::faultHash(2, 2, FaultStream::Dropout, 3));
    EXPECT_NE(fault::faultHash(1, 2, FaultStream::Dropout, 3),
              fault::faultHash(1, 3, FaultStream::Dropout, 3));
    EXPECT_NE(fault::faultHash(1, 2, FaultStream::Dropout, 3),
              fault::faultHash(1, 2, FaultStream::Stale, 3));
    EXPECT_NE(fault::faultHash(1, 2, FaultStream::Dropout, 3),
              fault::faultHash(1, 2, FaultStream::Dropout, 4));
}

TEST(FaultHash, UniformDrawsLandInUnitIntervalWithSaneMean)
{
    double sum = 0.0;
    const int n = 4096;
    for (int e = 0; e < n; ++e) {
        double u = fault::faultUniform(99, static_cast<std::uint64_t>(e),
                                       FaultStream::NoiseGate);
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.05);
}

// --- injector seams ---

SystemProfile
smallProfile()
{
    SystemProfile prof;
    prof.windowTicks = 300 * tickPerUs;
    for (int i = 0; i < 2; ++i) {
        CoreProfile c;
        c.cyclesPerInstr = 1.4;
        c.alpha = 0.01;
        c.tpiL2Secs = 7.5e-9;
        c.beta = 0.004;
        c.measuredMemStallSecs = 70e-9;
        c.instrs = 100000;
        c.aluPerInstr = 0.4;
        c.memOpPerInstr = 0.35;
        c.llcAccessPerInstr = 0.014;
        c.memReadPerInstr = 0.004;
        prof.cores.push_back(c);
    }
    prof.mem.profiledBusFreq = 800 * MHz;
    prof.mem.measuredStallSecs = 90e-9;
    prof.mem.wBankSecs = 2.5e-9;
    prof.mem.wBusSecs = 1.5e-9;
    prof.mem.busUtil = 0.2;
    prof.mem.rankActiveFrac = 0.25;
    prof.mem.trafficPerSec = 1.5e8;
    prof.profiledCoreIdx = {0, 0};
    prof.profiledMemIdx = 0;
    return prof;
}

TEST(FaultInjectorTest, NoiseIsDeterministicAndSparesPowerRates)
{
    FaultPlan plan;
    plan.counterNoiseAmp = 0.10;
    SystemProfile clean = smallProfile();

    FaultInjector a(plan, 7), b(plan, 7);
    SystemProfile pa = a.perturbProfile(clean, 3, 0, nullptr, nullptr);
    SystemProfile pb = b.perturbProfile(clean, 3, 0, nullptr, nullptr);

    for (size_t i = 0; i < clean.cores.size(); ++i) {
        // Identical across injector instances (stateless hash).
        EXPECT_EQ(pa.cores[i].cyclesPerInstr, pb.cores[i].cyclesPerInstr);
        EXPECT_EQ(pa.cores[i].beta, pb.cores[i].beta);
        // Perturbed relative to the clean read, within the amplitude.
        double ratio =
            pa.cores[i].cyclesPerInstr / clean.cores[i].cyclesPerInstr;
        EXPECT_NE(ratio, 1.0);
        EXPECT_GE(ratio, 0.9 - 1e-12);
        EXPECT_LE(ratio, 1.1 + 1e-12);
        // Power-predictor rates are not timing counters.
        EXPECT_EQ(pa.cores[i].aluPerInstr, clean.cores[i].aluPerInstr);
        EXPECT_EQ(pa.cores[i].instrs, clean.cores[i].instrs);
    }
    EXPECT_NE(pa.mem.measuredStallSecs, clean.mem.measuredStallSecs);
    EXPECT_EQ(a.summary().noisyEpochs, 1u);

    // A different seed perturbs differently.
    FaultInjector c(plan, 8);
    SystemProfile pc = c.perturbProfile(clean, 3, 0, nullptr, nullptr);
    EXPECT_NE(pc.cores[0].cyclesPerInstr, pa.cores[0].cyclesPerInstr);
}

TEST(FaultInjectorTest, BiasTargetsOnlyTheMemoryStallChannel)
{
    FaultPlan plan;
    plan.counterNoiseBias = 0.5;
    SystemProfile clean = smallProfile();
    FaultInjector inj(plan, 1);
    SystemProfile p = inj.perturbProfile(clean, 0, 0, nullptr, nullptr);

    for (size_t i = 0; i < clean.cores.size(); ++i) {
        EXPECT_DOUBLE_EQ(p.cores[i].beta, clean.cores[i].beta * 1.5);
        EXPECT_DOUBLE_EQ(p.cores[i].measuredMemStallSecs,
                         clean.cores[i].measuredMemStallSecs * 1.5);
        // With zero amplitude the CPU-side counters stay exact.
        EXPECT_DOUBLE_EQ(p.cores[i].cyclesPerInstr,
                         clean.cores[i].cyclesPerInstr);
        EXPECT_DOUBLE_EQ(p.cores[i].alpha, clean.cores[i].alpha);
    }
    EXPECT_DOUBLE_EQ(p.mem.measuredStallSecs,
                     clean.mem.measuredStallSecs * 1.5);
}

TEST(FaultInjectorTest, DropoutPoisonsExactlyOneCore)
{
    FaultPlan plan;
    plan.counterDropoutProb = 1.0;
    SystemProfile clean = smallProfile();
    FaultInjector inj(plan, 5);
    SystemProfile p = inj.perturbProfile(clean, 0, 0, nullptr, nullptr);

    EXPECT_FALSE(fault::profileFinite(p));
    int poisoned = 0;
    for (const CoreProfile &c : p.cores)
        poisoned += std::isnan(c.cyclesPerInstr) ? 1 : 0;
    EXPECT_EQ(poisoned, 1);
    EXPECT_EQ(inj.summary().counterDropouts, 1u);
}

TEST(FaultInjectorTest, StaleReadReservesPreviousCleanProfile)
{
    FaultPlan plan;
    plan.counterStaleProb = 1.0;
    SystemProfile p0 = smallProfile();
    SystemProfile p1 = smallProfile();
    p1.cores[0].cyclesPerInstr = 2.5;

    FaultInjector inj(plan, 5);
    // Epoch 0 has no previous read to re-serve, so it passes through.
    SystemProfile e0 = inj.perturbProfile(p0, 0, 0, nullptr, nullptr);
    EXPECT_DOUBLE_EQ(e0.cores[0].cyclesPerInstr,
                     p0.cores[0].cyclesPerInstr);
    // Epoch 1 re-serves epoch 0's clean profile, not the new one.
    SystemProfile e1 = inj.perturbProfile(p1, 1, 0, nullptr, nullptr);
    EXPECT_DOUBLE_EQ(e1.cores[0].cyclesPerInstr,
                     p0.cores[0].cyclesPerInstr);
    EXPECT_EQ(inj.summary().staleProfiles, 1u);
}

TEST(FaultInjectorTest, TransitionDenyDelayAndClamp)
{
    FreqConfig prev = FreqConfig::allMax(2);
    prev.memIdx = 2;
    FreqConfig req = prev;
    req.memIdx = 5;
    req.coreIdx = {3, 0};

    {
        FaultPlan plan;
        plan.transitionDenyProb = 1.0;
        FaultInjector inj(plan, 1);
        FreqConfig granted =
            inj.filterTransition(req, prev, 0, 0, nullptr, nullptr);
        EXPECT_EQ(granted.memIdx, prev.memIdx);
        EXPECT_EQ(granted.coreIdx, prev.coreIdx);
        EXPECT_EQ(inj.summary().transitionsDenied, 1u);
        FreqConfig pend;
        EXPECT_FALSE(inj.takePending(&pend));

        // An unchanged request has nothing to deny.
        FreqConfig same =
            inj.filterTransition(prev, prev, 1, 0, nullptr, nullptr);
        EXPECT_EQ(same.memIdx, prev.memIdx);
        EXPECT_EQ(inj.summary().transitionsDenied, 1u);
    }
    {
        FaultPlan plan;
        plan.transitionDelayProb = 1.0;
        FaultInjector inj(plan, 1);
        FreqConfig granted =
            inj.filterTransition(req, prev, 0, 0, nullptr, nullptr);
        EXPECT_EQ(granted.memIdx, prev.memIdx);
        FreqConfig pend;
        ASSERT_TRUE(inj.takePending(&pend));
        EXPECT_EQ(pend.memIdx, req.memIdx);
        EXPECT_EQ(pend.coreIdx, req.coreIdx);
        EXPECT_FALSE(inj.takePending(&pend));
        EXPECT_EQ(inj.summary().transitionsDelayed, 1u);
    }
    {
        FaultPlan plan;
        plan.transitionClampProb = 1.0;
        FaultInjector inj(plan, 1);
        FreqConfig granted =
            inj.filterTransition(req, prev, 0, 0, nullptr, nullptr);
        // One rung short in every dimension that moved.
        EXPECT_EQ(granted.memIdx, 4);       // 2 -> 5 stops at 4
        EXPECT_EQ(granted.coreIdx[0], 2);   // 0 -> 3 stops at 2
        EXPECT_EQ(granted.coreIdx[1], 0);   // did not move
        EXPECT_EQ(inj.summary().transitionsClamped, 1u);
    }
}

TEST(FaultInjectorTest, JitterStaysBoundedAndOutlastsProfiling)
{
    FaultPlan plan;
    plan.epochJitterFrac = 0.10;
    FaultInjector inj(plan, 3);
    Tick nominal = tickPerMs;
    Tick profile = 300 * tickPerUs;
    for (std::uint64_t e = 0; e < 64; ++e) {
        Tick len = inj.jitteredEpochLen(nominal, profile, e, 0, nullptr,
                                        nullptr);
        EXPECT_GT(len, profile);
        EXPECT_GE(static_cast<double>(len),
                  0.9 * static_cast<double>(nominal) - 1.0);
        EXPECT_LE(static_cast<double>(len),
                  1.1 * static_cast<double>(nominal) + 1.0);
    }
    // A nominal epoch at the floor is pushed just past the profile.
    EXPECT_GT(inj.jitteredEpochLen(profile, profile, 0, 0, nullptr,
                                   nullptr),
              profile);
}

// --- safeDecide guards ---

struct GuardFixture : ::testing::Test
{
    GuardFixture()
        : coreLadder(defaultCoreLadder()), memLadder(defaultMemLadder()),
          perf(DramTimingParams{}, 10.0, 7.5)
    {
        PowerParams pp;
        pp.numCores = 2;
        power = PowerModel(pp);
        em = EnergyModel(&perf, &power, &coreLadder, &memLadder);
        prof = smallProfile();
    }

    FreqLadder coreLadder;
    FreqLadder memLadder;
    PerfModel perf;
    PowerModel power;
    EnergyModel em;
    SystemProfile prof;
};

/** Scriptable policy: returns whatever decide() was told to return. */
class StubPolicy final : public Policy
{
  public:
    StubPolicy() : ledger(2, 0.10, 0.0) {}

    std::string name() const override { return "Stub"; }

    FreqConfig
    decide(const SystemProfile &, const EnergyModel &,
           const FreqConfig &, Tick) override
    {
        decides += 1;
        return next;
    }

    void observeEpoch(const EpochObservation &,
                      const EnergyModel &) override
    {
    }

    const SlackTracker *
    slackLedger() const override
    {
        return useLedger ? &ledger : nullptr;
    }

    FreqConfig next;
    SlackTracker ledger;
    bool useLedger = false;
    int decides = 0;
};

TEST_F(GuardFixture, DecisionSaneChecksLaddersAndModelOutput)
{
    FreqConfig good = FreqConfig::allMax(2);
    EXPECT_TRUE(decisionSane(em, prof, good));

    FreqConfig off_ladder = good;
    off_ladder.memIdx = em.mem().size();
    EXPECT_FALSE(decisionSane(em, prof, off_ladder));

    FreqConfig wrong_width = good;
    wrong_width.coreIdx.push_back(0);
    EXPECT_FALSE(decisionSane(em, prof, wrong_width));

    SystemProfile poisoned = prof;
    poisoned.cores[1].cyclesPerInstr =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_FALSE(decisionSane(em, poisoned, good));
}

TEST_F(GuardFixture, SafeDecideHoldsCurrentOnInvalidDecision)
{
    StubPolicy p;
    p.next = FreqConfig::allMax(2);
    p.next.memIdx = 99;  // off the ladder
    MetricsRegistry metrics;
    p.attachObs(nullptr, &metrics);

    FreqConfig current = FreqConfig::allMax(2);
    current.memIdx = 3;
    FreqConfig got = p.safeDecide(prof, em, current, tickPerMs);
    EXPECT_EQ(got.memIdx, 3);
    EXPECT_EQ(p.decides, 1);
    EXPECT_EQ(metrics.counter("guard.held_decision").value(), 1u);
}

TEST_F(GuardFixture, SafeDecideHoldsOnPoisonedProfile)
{
    StubPolicy p;
    p.next = FreqConfig::allMax(2);  // sane indices, NaN prediction
    SystemProfile poisoned = prof;
    // A dropped-out counter poisons the whole core (NaN CPI flows
    // straight into every predicted TPI; NaN in the stall channel
    // alone is clamped away by the hidden-latency formulation).
    poisoned.cores[0].cyclesPerInstr =
        std::numeric_limits<double>::quiet_NaN();

    FreqConfig current = FreqConfig::allMax(2);
    current.memIdx = 2;
    FreqConfig got = p.safeDecide(poisoned, em, current, tickPerMs);
    EXPECT_EQ(got.memIdx, 2);
}

TEST_F(GuardFixture, EscapeHatchForcesMaxOnDeepSlackDeficit)
{
    StubPolicy p;
    p.useLedger = true;
    // App 1 is one full second behind; the epoch is a millisecond.
    p.ledger.update(1, 0.0, 0, 1.0);
    // decide() would return garbage, but must not even be consulted.
    p.next.memIdx = 99;
    MetricsRegistry metrics;
    p.attachObs(nullptr, &metrics);

    FreqConfig current = FreqConfig::allMax(2);
    current.memIdx = 4;
    FreqConfig got = p.safeDecide(prof, em, current, tickPerMs);
    EXPECT_EQ(got.memIdx, 0);
    EXPECT_EQ(got.coreIdx, std::vector<int>({0, 0}));
    EXPECT_EQ(p.decides, 0);
    EXPECT_EQ(metrics.counter("guard.escape_hatch").value(), 1u);
}

TEST_F(GuardFixture, LedgerFreePolicyNeverTakesTheHatch)
{
    StubPolicy p;
    p.useLedger = false;
    p.next = FreqConfig::allMax(2);
    p.next.memIdx = 5;
    FreqConfig got =
        p.safeDecide(prof, em, FreqConfig::allMax(2), tickPerMs);
    EXPECT_EQ(got.memIdx, 5);
    EXPECT_EQ(p.decides, 1);
}

// --- faulted runs: determinism, reporting, goldens ---

SystemConfig
faultConfig()
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 2;
    // Pin the paper-default backend so the fixtures stay byte-identical
    // even under CI's COSCALE_MEM_SCHED/ROW_POLICY/DRAM_STANDARD leg.
    applyMemBackend(cfg, MemBackendSel{});
    // Likewise pin the knob space: at 2 cores / 16 ways the LLC
    // way-partition gate would open under COSCALE_KNOB_LLC_WAYS=1
    // (CI's knob-partition leg) and change miss allocation.
    cfg.knobs.llcWays = false;
    return cfg;
}

/** A plan that exercises several seams but leaves most epochs clean. */
FaultPlan
mixedPlan()
{
    FaultPlan plan;
    plan.counterNoiseAmp = 0.05;
    plan.counterNoiseProb = 0.25;
    plan.transitionDenyProb = 0.4;
    return plan;
}

TEST(FaultRun, SummaryCountsAndJsonReport)
{
    SystemConfig cfg = faultConfig();
    RunRequest req = RunRequest::forMix(cfg, mixByName("MID1"))
                         .with(exp::policyFactoryByName(
                             "coscale", cfg.numCores, cfg.gamma))
                         .withFaults(mixedPlan());
    RunResult r = coscale::run(req);

    EXPECT_TRUE(r.faultsEnabled);
    EXPECT_GE(r.faults.transitionsDenied, 1u);
    EXPECT_GE(r.faults.noisyEpochs, 1u);
    EXPECT_GT(r.faults.total(), 0u);

    std::ostringstream os;
    writeJsonReport(r, nullptr, os);
    EXPECT_NE(os.str().find("\"faults\""), std::string::npos);
    EXPECT_NE(os.str().find("\"transitions_denied\""),
              std::string::npos);
    EXPECT_EQ(os.str().find("\"attempts\""), std::string::npos);

    // Clean runs stay clean: no injector, no faults block.
    RunRequest clean = RunRequest::forMix(cfg, mixByName("MID1"))
                           .with(exp::policyFactoryByName(
                               "coscale", cfg.numCores, cfg.gamma));
    RunResult rc = coscale::run(clean);
    EXPECT_FALSE(rc.faultsEnabled);
    std::ostringstream osc;
    writeJsonReport(rc, nullptr, osc);
    EXPECT_EQ(osc.str().find("\"faults\""), std::string::npos);
}

TEST(FaultRun, FaultedBatchBitIdenticalAcrossWorkerCounts)
{
    SystemConfig cfg = faultConfig();
    const std::vector<std::string> mixes = {"MID1", "ILP1", "MEM1"};

    auto traceAll = [&](int jobs) {
        std::vector<std::unique_ptr<std::ostringstream>> streams;
        std::vector<std::unique_ptr<JsonlTraceSink>> sinks;
        std::vector<RunRequest> reqs;
        for (const std::string &m : mixes) {
            streams.push_back(std::make_unique<std::ostringstream>());
            sinks.push_back(
                std::make_unique<JsonlTraceSink>(*streams.back()));
            reqs.push_back(RunRequest::forMix(cfg, mixByName(m))
                               .with(exp::policyFactoryByName(
                                   "coscale", cfg.numCores, cfg.gamma))
                               .withFaults(mixedPlan()));
            reqs.back().withTrace(*sinks.back());
        }
        exp::EngineOptions opts;
        opts.jobs = jobs;
        exp::ExperimentEngine engine(opts);
        std::vector<exp::RunOutcome> outcomes = engine.run(reqs);
        std::vector<std::string> bytes;
        for (size_t i = 0; i < reqs.size(); ++i) {
            EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
            EXPECT_GT(outcomes[i].result.faults.total(), 0u)
                << mixes[i];
            sinks[i]->finish();
            bytes.push_back(streams[i]->str());
        }
        return bytes;
    };

    std::vector<std::string> serial = traceAll(1);
    std::vector<std::string> parallel = traceAll(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty()) << "mix " << mixes[i];
        EXPECT_EQ(serial[i], parallel[i]) << "mix " << mixes[i];
    }
}

TEST(FaultRun, AllSeamsEmitTraceEventsAndMetrics)
{
    // Every seam armed at once, with observability attached: fault
    // events must land in the trace and the metrics registry, and
    // the per-kind summary must account for each seam.
    SystemConfig cfg = faultConfig();
    FaultPlan plan;
    plan.counterNoiseAmp = 0.05;
    plan.counterDropoutProb = 0.3;
    plan.counterStaleProb = 0.3;
    plan.transitionDenyProb = 0.2;
    plan.transitionDelayProb = 0.2;
    plan.transitionClampProb = 0.2;
    plan.epochJitterFrac = 0.2;

    std::ostringstream os;
    RunResult r;
    {
        JsonlTraceSink sink(os);
        RunRequest req = RunRequest::forMix(cfg, mixByName("MID1"))
                             .with(exp::policyFactoryByName(
                                 "coscale", cfg.numCores, cfg.gamma))
                             .withFaults(plan)
                             .withMetrics();
        req.withTrace(sink);
        r = coscale::run(req);
        sink.finish();
    }

    EXPECT_GE(r.faults.noisyEpochs, 1u);
    EXPECT_GE(r.faults.counterDropouts, 1u);
    EXPECT_GE(r.faults.staleProfiles, 1u);
    EXPECT_GE(r.faults.jitteredEpochs, 1u);
    EXPECT_GE(r.faults.transitionsDenied + r.faults.transitionsDelayed
                  + r.faults.transitionsClamped,
              1u);

    const std::string trace = os.str();
    for (const char *name :
         {"counter_noise", "counter_dropout", "counter_stale",
          "epoch_jitter", "transition"}) {
        EXPECT_NE(trace.find(std::string("\"name\":\"") + name + "\""),
                  std::string::npos)
            << name;
    }
    ASSERT_NE(r.metrics, nullptr);
    EXPECT_EQ(r.metrics->counter("fault.epoch_jitter").value(),
              r.faults.jitteredEpochs);
    EXPECT_EQ(r.metrics->counter("fault.counter_dropout").value(),
              r.faults.counterDropouts);
}

TEST(FaultRun, GoldenFaultedTraceMatchesFixture)
{
    SystemConfig cfg = faultConfig();
    RunRequest req = RunRequest::forMix(cfg, mixByName("MID1"))
                         .with(exp::policyFactoryByName(
                             "coscale", cfg.numCores, cfg.gamma))
                         .withFaults(mixedPlan());
    std::ostringstream os;
    {
        JsonlTraceSink sink(os);
        req.withTrace(sink);
        RunResult r = coscale::run(req);
        // The fixture must actually contain injected faults.
        EXPECT_GE(r.faults.transitionsDenied, 1u);
        EXPECT_GE(r.faults.noisyEpochs, 1u);
        sink.finish();
    }
    EXPECT_NE(os.str().find("\"cat\":\"fault\""), std::string::npos);
    checkGolden("mid1_2core_coscale_faulted.jsonl", os.str());
}

// --- degradation bounds under injected model error ---

double
worstDegradationVsCleanBaseline(const SystemConfig &cfg,
                                const std::string &mix,
                                const std::string &policy,
                                const FaultPlan &plan)
{
    BaselinePolicy baseline;
    RunResult base = coscale::run(
        RunRequest::forMix(cfg, mixByName(mix)).with(baseline));
    RunRequest req = RunRequest::forMix(cfg, mixByName(mix))
                         .with(exp::policyFactoryByName(
                             policy, cfg.numCores, cfg.gamma));
    if (plan.enabled())
        req.withFaults(plan);
    RunResult r = coscale::run(req);
    return compare(base, r).worstDegradation;
}

TEST(Degradation, CoScaleHoldsBoundUnderAdversarialBias)
{
    // The profile consistently doubles the measured memory-stall
    // channel, so Eq. 1 systematically understates the cost of core
    // downclocking. The honest end-of-epoch ledger plus the escape
    // hatch must still end the run within the user bound.
    SystemConfig cfg = faultConfig();
    FaultPlan plan;
    plan.counterNoiseBias = 1.0;
    for (const char *mix : {"MEM1", "MID1"}) {
        double worst = worstDegradationVsCleanBaseline(cfg, mix,
                                                       "coscale", plan);
        EXPECT_LE(worst, cfg.gamma + 0.005) << mix;
    }
}

TEST(Degradation, FeedbackHoldsWhereUncoordinatedViolates)
{
    // Pins the bench_resilience ordering: across the noise sweep,
    // CoScale never violates its bound while Uncoordinated (two
    // controllers double-spending one slack budget, no shared
    // feedback) does at least once.
    SystemConfig cfg = faultConfig();
    bool uncoordinated_violated = false;
    for (double amp : {0.10, 0.15, 0.20}) {
        FaultPlan plan;
        plan.counterNoiseAmp = amp;
        double coscale_worst = worstDegradationVsCleanBaseline(
            cfg, "MEM1", "coscale", plan);
        EXPECT_LE(coscale_worst, cfg.gamma) << "amp " << amp;
        double unc_worst = worstDegradationVsCleanBaseline(
            cfg, "MEM1", "uncoordinated", plan);
        uncoordinated_violated |= unc_worst > cfg.gamma;
    }
    EXPECT_TRUE(uncoordinated_violated);
}

// --- trace-file corruption fuzzing ---

std::string
validTraceBytes(int records)
{
    std::string path = "fuzz_seed.trace";
    {
        TraceFileWriter w(path);
        TraceRecord r;
        for (int i = 0; i < records; ++i) {
            r.addr = static_cast<BlockAddr>(i * 64);
            r.gapInstrs = 10;
            r.gapCycles = 12;
            w.append(r);
        }
    }
    std::string bytes;
    EXPECT_TRUE(fault::readFileBytes(path, &bytes));
    std::remove(path.c_str());
    return bytes;
}

TEST(TraceFuzz, EveryTruncationIsRejectedWithStructuredError)
{
    std::string bytes = validTraceBytes(50);
    ASSERT_EQ(bytes.size(), 16u + 50u * 32u);
    std::string path = "fuzz_trunc.trace";

    for (size_t keep :
         {size_t{0}, size_t{1}, size_t{7}, size_t{8}, size_t{15},
          size_t{16}, size_t{17}, size_t{47}, size_t{48}, size_t{100},
          bytes.size() - 33, bytes.size() - 32, bytes.size() - 1}) {
        ASSERT_TRUE(fault::writeFileBytes(
            path, fault::truncatedCopy(bytes, keep)));
        if (keep == bytes.size() - 32) {
            // Still well-formed except the header count disagrees.
            try {
                loadTraceFile(path);
                FAIL() << "count mismatch accepted at keep=" << keep;
            } catch (const TraceParseError &e) {
                EXPECT_EQ(e.kind(),
                          TraceParseError::Kind::CountMismatch);
            }
            continue;
        }
        try {
            loadTraceFile(path);
            FAIL() << "truncation accepted at keep=" << keep;
        } catch (const TraceParseError &e) {
            EXPECT_LE(e.byteOffset(), bytes.size()) << "keep=" << keep;
            EXPECT_NE(std::string(e.what()).find(path),
                      std::string::npos);
        }
    }
    std::remove(path.c_str());
}

TEST(TraceFuzz, BitFlipsEitherParseFullyOrThrowNeverCrash)
{
    std::string bytes = validTraceBytes(50);
    std::string path = "fuzz_flip.trace";
    for (std::uint64_t seed = 1; seed <= 48; ++seed) {
        ASSERT_TRUE(fault::writeFileBytes(
            path, fault::flipBits(bytes, 3, seed)));
        try {
            auto buf = loadTraceFile(path);
            // Flips landed in the payload: structure intact.
            EXPECT_EQ(buf->size(), 50u);
        } catch (const TraceParseError &e) {
            // Flips hit the magic or the record count.
            EXPECT_TRUE(e.kind() == TraceParseError::Kind::BadMagic
                        || e.kind()
                               == TraceParseError::Kind::CountMismatch
                        || e.kind()
                               == TraceParseError::Kind::ShortRecord);
        }
    }
    std::remove(path.c_str());
}

TEST(TraceFuzz, AnyHeaderBitFlipIsRejected)
{
    std::string bytes = validTraceBytes(50);
    std::string path = "fuzz_header.trace";
    // Every header byte is load-bearing: a flip in the magic must
    // come back BadMagic, a flip in the record count CountMismatch.
    for (size_t pos = 0; pos < 16; ++pos) {
        std::string mutant = bytes;
        mutant[pos] = static_cast<char>(
            static_cast<unsigned char>(mutant[pos]) ^ 0x10u);
        ASSERT_TRUE(fault::writeFileBytes(path, mutant));
        try {
            loadTraceFile(path);
            FAIL() << "header corruption accepted at byte " << pos;
        } catch (const TraceParseError &e) {
            EXPECT_EQ(e.kind(), pos < 8
                                    ? TraceParseError::Kind::BadMagic
                                    : TraceParseError::Kind::CountMismatch)
                << "byte " << pos;
        }
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace coscale
