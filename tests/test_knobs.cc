/**
 * @file
 * Knob-space tests (DESIGN.md §13): KnobVector/KnobSpace membership
 * and the power-cap feasibility predicate, CAT-style LLC way
 * partitioning (miss allocation restricted, lookups whole-set), the
 * UMON shadow-monitor miss curve, the model's missScale anchor and
 * monotonicity, the two-phase CoScale walk's output shape, and the
 * serialization surface of partitioned runs: a golden JSONL/Chrome
 * fixture with per-dimension knob values and the serial-vs---jobs-4
 * byte-identity pin.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/llc.hh"
#include "common/dvfs.hh"
#include "exp/engine.hh"
#include "exp/policies.hh"
#include "golden_util.hh"
#include "model/energy_model.hh"
#include "model/knobs.hh"
#include "obs/trace_sink.hh"
#include "policy/coscale_policy.hh"
#include "sim/runner.hh"
#include "workloads/spec_catalogue.hh"

namespace coscale {
namespace {

// --- Model-level fixture (mirrors test_model's EnergyFixture) ---

PerfModel
makePerf()
{
    return PerfModel(DramTimingParams{}, 10.0, 7.5);
}

CoreProfile
computeBound()
{
    CoreProfile c;
    c.cyclesPerInstr = 1.5;
    c.alpha = 0.008;
    c.tpiL2Secs = 7.5e-9;
    c.beta = 0.0004;
    c.measuredMemStallSecs = 60e-9;
    c.instrs = 1'000'000;
    c.aluPerInstr = 0.45;
    c.fpuPerInstr = 0.02;
    c.branchPerInstr = 0.18;
    c.memOpPerInstr = 0.35;
    c.llcAccessPerInstr = 0.0084;
    c.memReadPerInstr = 0.0004;
    return c;
}

CoreProfile
memoryBound()
{
    CoreProfile c = computeBound();
    c.cyclesPerInstr = 0.9;
    c.alpha = 0.022;
    c.beta = 0.018;
    c.measuredMemStallSecs = 90e-9;
    c.llcAccessPerInstr = 0.04;
    c.memReadPerInstr = 0.018;
    return c;
}

MemProfile
quietMem(Freq anchor = 800 * MHz)
{
    MemProfile m;
    m.profiledBusFreq = anchor;
    m.wBankSecs = 2e-9;
    m.wBusSecs = 1e-9;
    PerfModel pm = makePerf();
    m.measuredStallSecs = pm.serviceSecs(anchor) + 3e-9;
    m.busUtil = 0.15;
    m.rankActiveFrac = 0.2;
    m.writeFrac = 0.25;
    m.trafficPerSec = 1e8;
    return m;
}

struct KnobFixture : ::testing::Test
{
    static PowerParams
    fourCoreParams()
    {
        PowerParams p;
        p.numCores = 4;
        return p;
    }

    KnobFixture()
        : coreLadder(defaultCoreLadder()), memLadder(defaultMemLadder()),
          perf(makePerf()), power(fourCoreParams()),
          em(&perf, &power, &coreLadder, &memLadder)
    {
        prof.windowTicks = 300 * tickPerUs;
        for (int i = 0; i < 4; ++i)
            prof.cores.push_back(i % 2 ? memoryBound() : computeBound());
        prof.mem = quietMem();
        prof.profiledCoreIdx.assign(4, 0);
        prof.profiledMemIdx = 0;
    }

    /**
     * Arm the way dimension: a 16-way snapshot at the even split,
     * with a strictly decreasing reuse-depth histogram so the miss
     * curve is strictly monotone where it matters.
     */
    void
    armWays(int ways_total = 16, int floor = 1)
    {
        prof.waysTotal = ways_total;
        prof.wayFloor = floor;
        int even = ways_total / static_cast<int>(prof.cores.size());
        prof.profiledWayIdx.assign(prof.cores.size(), even);
        for (CoreProfile &c : prof.cores) {
            c.wayHitsPerInstr.assign(
                static_cast<size_t>(ways_total), 0.0);
            for (int d = 0; d < ways_total; ++d)
                c.wayHitsPerInstr[static_cast<size_t>(d)] =
                    c.llcAccessPerInstr
                    / static_cast<double>((d + 1) * (d + 1));
            c.shadowMissPerInstr = c.memReadPerInstr;
        }
    }

    FreqLadder coreLadder;
    FreqLadder memLadder;
    PerfModel perf;
    PowerModel power;
    EnergyModel em;
    SystemProfile prof;
};

TEST_F(KnobFixture, DvfsOnlySpaceShapeAndMembership)
{
    KnobSpace space = makeKnobSpace(em, prof);
    EXPECT_EQ(space.numCores, 4);
    EXPECT_EQ(space.coreSteps, static_cast<int>(em.cores().size()));
    EXPECT_EQ(space.memSteps, static_cast<int>(em.mem().size()));
    EXPECT_FALSE(space.llcWays);
    // Dimension roster: one per core plus the shared memory knob.
    EXPECT_EQ(space.dims.size(), 5u);

    FreqConfig ok = FreqConfig::allMax(4);
    EXPECT_TRUE(space.contains(ok));
    EXPECT_EQ(space.reference().coreIdx, ok.coreIdx);

    FreqConfig off_ladder = ok;
    off_ladder.coreIdx[2] = space.coreSteps;  // one past the end
    EXPECT_FALSE(space.contains(off_ladder));

    FreqConfig bad_mem = ok;
    bad_mem.memIdx = -1;
    EXPECT_FALSE(space.contains(bad_mem));

    FreqConfig wrong_width = ok;
    wrong_width.coreIdx.push_back(0);
    EXPECT_FALSE(space.contains(wrong_width));

    // The way dimension is not part of a DVFS-only space.
    FreqConfig with_ways = ok;
    with_ways.wayIdx.assign(4, 4);
    EXPECT_FALSE(space.contains(with_ways));
}

TEST_F(KnobFixture, WaySpaceMembershipFloorAndBudget)
{
    armWays();
    KnobSpace space = makeKnobSpace(em, prof);
    ASSERT_TRUE(space.llcWays);
    EXPECT_EQ(space.waysTotal, 16);
    EXPECT_EQ(space.wayFloor, 1);
    // Four core knobs, one memory knob, four way knobs.
    EXPECT_EQ(space.dims.size(), 9u);

    FreqConfig ok = FreqConfig::allMax(4);
    ok.wayIdx.assign(4, 4);
    EXPECT_TRUE(space.contains(ok));
    // Held dimension (empty wayIdx) is always a member.
    EXPECT_TRUE(space.contains(FreqConfig::allMax(4)));

    FreqConfig below_floor = ok;
    below_floor.wayIdx[1] = 0;
    EXPECT_FALSE(space.contains(below_floor));

    FreqConfig over_budget = ok;
    over_budget.wayIdx.assign(4, 8);  // sums to 32 > 16
    EXPECT_FALSE(space.contains(over_budget));

    FreqConfig wrong_width = ok;
    wrong_width.wayIdx.pop_back();
    EXPECT_FALSE(space.contains(wrong_width));

    // The modeling reference gives every core the full associativity
    // (a bound, not an applicable partition).
    FreqConfig ref = space.reference();
    EXPECT_EQ(ref.wayIdx, std::vector<int>(4, 16));
}

TEST_F(KnobFixture, UnderCapIsAFeasibilityPredicate)
{
    FreqConfig all_max = FreqConfig::allMax(4);
    // Uncapped: everything is feasible.
    KnobSpace open = makeKnobSpace(em, prof);
    EXPECT_TRUE(open.underCap(em, prof, all_max));

    double p_max = em.systemPower(prof, all_max);
    KnobSpace tight = makeKnobSpace(em, prof, p_max * 0.5);
    EXPECT_FALSE(tight.underCap(em, prof, all_max));
    KnobSpace loose = makeKnobSpace(em, prof, p_max + 1.0);
    EXPECT_TRUE(loose.underCap(em, prof, all_max));

    // The cap never affects structural membership.
    EXPECT_TRUE(tight.contains(all_max));
}

TEST_F(KnobFixture, MissScaleAnchorsAtExactlyOneAndIsMonotone)
{
    // No way snapshot: the scale is the exact IEEE constant 1.0 for
    // any allocation — the DVFS-only identity.
    EXPECT_EQ(em.missScale(prof, 0, 3), 1.0);

    armWays();
    for (int i = 0; i < 4; ++i) {
        // Exactly 1 at the profiled allocation (no rounding slack:
        // this anchors SerEvaluator/EnergyModel audit consistency).
        EXPECT_EQ(em.missScale(prof, i, prof.profiledWayIdx
                                            [static_cast<size_t>(i)]),
                  1.0);
        // Monotone non-increasing in ways: more cache never predicts
        // more misses.
        double prev = em.missScale(prof, i, 1);
        EXPECT_GT(prev, 1.0);  // fewer ways than profiled => more
        for (int w = 2; w <= 16; ++w) {
            double s = em.missScale(prof, i, w);
            EXPECT_LE(s, prev) << "core " << i << " ways " << w;
            prev = s;
        }
        EXPECT_LT(prev, 1.0);  // full cache beats the even split
    }
}

TEST_F(KnobFixture, CoScaleWalksTheWayDimensionOnlyWhenArmed)
{
    Tick epoch = 300 * tickPerUs;
    // DVFS-only profile: the decision holds the way dimension.
    CoScalePolicy plain(4, 0.1);
    FreqConfig d0 = plain.decide(prof, em, FreqConfig::allMax(4), epoch);
    EXPECT_TRUE(d0.wayIdx.empty());

    // Armed profile: the two-phase walk emits a full partition that
    // respects the floor and the budget.
    armWays();
    CoScalePolicy armed(4, 0.1);
    FreqConfig d1 = armed.decide(prof, em, FreqConfig::allMax(4), epoch);
    ASSERT_EQ(d1.wayIdx.size(), 4u);
    int sum = 0;
    for (int w : d1.wayIdx) {
        EXPECT_GE(w, 1);
        sum += w;
    }
    EXPECT_LE(sum, 16);
    EXPECT_TRUE(makeKnobSpace(em, prof).contains(d1));

    // The coscale-dvfs roster entry pins the DVFS-only search even
    // on an armed profile (the bench harness's control arm).
    CoScaleOptions dvfs_only;
    dvfs_only.useWayPartitioning = false;
    CoScalePolicy control(4, 0.1, dvfs_only);
    FreqConfig d2 = control.decide(prof, em, FreqConfig::allMax(4),
                                   epoch);
    EXPECT_TRUE(d2.wayIdx.empty());
}

TEST(PolicyRoster, CoScaleDvfsVariantIsRegistered)
{
    std::vector<std::string> names = exp::knownPolicyNames();
    bool found = false;
    for (const std::string &n : names)
        found = found || n == "coscale-dvfs";
    EXPECT_TRUE(found);
    auto factory = exp::requirePolicyFactory("coscale-dvfs", 4, 0.1);
    EXPECT_EQ(factory()->name(), "CoScale-DVFS");
}

// --- CAT-style way partitioning in the LLC ---

TEST(LlcPartition, RestrictsMissAllocationButNotLookups)
{
    LlcConfig cfg;
    cfg.sizeBytes = 32 * 1024;  // 512 blocks, 16 ways, 32 sets
    cfg.ways = 16;
    std::uint64_t sets =
        cfg.sizeBytes / blockBytes / static_cast<std::uint64_t>(cfg.ways);

    // Unpartitioned control: a 16-block set-resident working set
    // fits, so the second pass hits every access.
    Llc whole(cfg);
    for (int pass = 0; pass < 2; ++pass)
        for (int k = 0; k < 16; ++k) {
            bool hit = whole
                           .access(static_cast<BlockAddr>(k) * sets,
                                   false, 0)
                           .hit;
            EXPECT_EQ(hit, pass == 1);
        }

    // Partitioned: core 0 may allocate in only 8 of the 16 ways, so
    // the same 16-block cyclic working set LRU-thrashes to 0 hits.
    Llc part(cfg);
    part.setPartition({8, 8});
    ASSERT_TRUE(part.partitionActive());
    for (int pass = 0; pass < 2; ++pass)
        for (int k = 0; k < 16; ++k)
            EXPECT_FALSE(part.access(static_cast<BlockAddr>(k) * sets,
                                     false, 0)
                             .hit);

    // Lookups still probe the whole set: core 1 hits on a line that
    // is resident in core 0's ways.
    Llc shared(cfg);
    shared.setPartition({8, 8});
    EXPECT_FALSE(shared.access(0, false, 0).hit);
    EXPECT_TRUE(shared.access(0, false, 1).hit);
}

TEST(LlcPartition, ShadowMonitorRecordsTheMissCurve)
{
    LlcConfig cfg;
    cfg.sizeBytes = 32 * 1024;
    cfg.ways = 16;
    std::uint64_t sets =
        cfg.sizeBytes / blockBytes / static_cast<std::uint64_t>(cfg.ways);

    Llc llc(cfg);
    llc.setShadowTracking(2);
    ASSERT_TRUE(llc.shadowTracking());

    // Core 0 cycles k = 4 same-set blocks for three rounds: round one
    // is 4 cold misses, every later access re-uses at stack depth 3.
    const int k = 4, rounds = 3;
    for (int r = 0; r < rounds; ++r)
        for (int b = 0; b < k; ++b)
            llc.access(static_cast<BlockAddr>(b) * sets, false, 0);

    EXPECT_EQ(llc.shadowMisses()[0], static_cast<std::uint64_t>(k));
    const std::vector<std::uint64_t> &hits = llc.shadowHits();
    EXPECT_EQ(hits[static_cast<size_t>(k - 1)],
              static_cast<std::uint64_t>((rounds - 1) * k));
    for (int d = 0; d < cfg.ways; ++d) {
        if (d != k - 1) {
            EXPECT_EQ(hits[static_cast<size_t>(d)], 0u)
                << "depth " << d;
        }
    }

    // The miss-curve identity m(w) = miss + sum_{d >= w} hits[d]:
    // with fewer than k ways everything misses, with >= k ways only
    // the cold misses remain.
    auto missesAt = [&](int w) {
        std::uint64_t m = llc.shadowMisses()[0];
        for (int d = w; d < cfg.ways; ++d)
            m += hits[static_cast<size_t>(d)];
        return m;
    };
    EXPECT_EQ(missesAt(k - 1), static_cast<std::uint64_t>(rounds * k));
    EXPECT_EQ(missesAt(k), static_cast<std::uint64_t>(k));
    EXPECT_EQ(missesAt(cfg.ways), static_cast<std::uint64_t>(k));

    // Shadow counters are partition-independent: the same stream
    // under a starved 1-way allocation records the same curve.
    Llc starved(cfg);
    starved.setShadowTracking(2);
    starved.setPartition({1, 15});
    for (int r = 0; r < rounds; ++r)
        for (int b = 0; b < k; ++b)
            starved.access(static_cast<BlockAddr>(b) * sets, false, 0);
    EXPECT_EQ(starved.shadowMisses()[0], llc.shadowMisses()[0]);
    EXPECT_EQ(starved.shadowHits(), llc.shadowHits());
}

// --- Serialization of partitioned runs ---

/** The 2-core fixture config with the way-partition knob armed. */
SystemConfig
waysConfig()
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 2;
    // Pin the paper-default backend so the fixtures stay
    // byte-identical under CI's backend-funnel leg.
    applyMemBackend(cfg, MemBackendSel{});
    // Arm the dimension explicitly: 2 cores / 16 ways clears the
    // System's ways >= 2 * cores gate, so this config partitions
    // regardless of COSCALE_KNOB_LLC_WAYS.
    cfg.knobs.llcWays = true;
    // Scale the LLC down to 1 MB (1024 sets) so the fixture working
    // sets below contend for it and the walk has a reason to move
    // ways; at the default 16 MB the partition never leaves the even
    // split and the fixtures would not exercise the dimension.
    cfg.llc.sizeBytes = std::uint64_t(1) << 20;
    return cfg;
}

/**
 * Heterogeneous resident sets for the fixture runs: 4 and 12 blocks
 * per set against 8 ways each under the even split, so one core has
 * idle ways the other needs — the regime where the two-phase walk
 * actually transfers ways.
 */
const std::vector<std::uint64_t> kWaysFootprints = {4096, 12288};

std::string
waysTraceBytes(const std::string &policy_name, TraceFormat format)
{
    SystemConfig cfg = waysConfig();
    RunRequest req =
        RunRequest::forMix(cfg, mixByName("MID1"))
            .with(exp::requirePolicyFactory(policy_name, cfg.numCores,
                                            cfg.gamma));
    applyHotFootprints(req.apps, kWaysFootprints);
    std::ostringstream os;
    std::unique_ptr<TraceSink> sink;
    if (format == TraceFormat::Chrome)
        sink = std::make_unique<ChromeTraceSink>(os);
    else
        sink = std::make_unique<JsonlTraceSink>(os);
    req.withTrace(*sink);
    coscale::run(req);
    sink->finish();
    return os.str();
}

TEST(KnobGolden, PartitionedCoScaleJsonlMatchesFixture)
{
    std::string bytes = waysTraceBytes("coscale", TraceFormat::Jsonl);
    // Epoch events carry the per-dimension knob values.
    EXPECT_NE(bytes.find("\"way_idx\""), std::string::npos);
    checkGolden("mid1_2core_ways_coscale.jsonl", bytes);
}

TEST(KnobGolden, PartitionedCoScaleChromeMatchesFixture)
{
    std::string bytes = waysTraceBytes("coscale", TraceFormat::Chrome);
    EXPECT_NE(bytes.find("way_idx"), std::string::npos);
    checkGolden("mid1_2core_ways_coscale.chrome.json", bytes);
}

TEST(KnobGolden, JsonReportCarriesWayIdxPerEpoch)
{
    SystemConfig cfg = waysConfig();
    RunRequest req =
        RunRequest::forMix(cfg, mixByName("MID1"))
            .with(exp::requirePolicyFactory("coscale", cfg.numCores,
                                            cfg.gamma));
    applyHotFootprints(req.apps, kWaysFootprints);
    RunResult r = coscale::run(req);
    std::ostringstream os;
    writeJsonReport(r, nullptr, os);
    EXPECT_NE(os.str().find("\"way_idx\""), std::string::npos);

    // And a DVFS-only run of the same shape emits none: the knob
    // dimension never leaks into runs that did not opt in.
    SystemConfig plain = waysConfig();
    plain.knobs.llcWays = false;
    RunRequest req2 =
        RunRequest::forMix(plain, mixByName("MID1"))
            .with(exp::requirePolicyFactory("coscale", plain.numCores,
                                            plain.gamma));
    applyHotFootprints(req2.apps, kWaysFootprints);
    RunResult r2 = coscale::run(req2);
    std::ostringstream os2;
    writeJsonReport(r2, nullptr, os2);
    EXPECT_EQ(os2.str().find("\"way_idx\""), std::string::npos);
}

TEST(KnobDeterminism, WorkerCountDoesNotChangePartitionedTraceBytes)
{
    SystemConfig cfg = waysConfig();
    const std::vector<std::string> mixes = {"MID1", "MEM1", "MIX1"};

    auto traceAll = [&](int jobs) {
        std::vector<std::unique_ptr<std::ostringstream>> streams;
        std::vector<std::unique_ptr<JsonlTraceSink>> sinks;
        std::vector<RunRequest> reqs;
        for (const std::string &m : mixes) {
            streams.push_back(std::make_unique<std::ostringstream>());
            sinks.push_back(
                std::make_unique<JsonlTraceSink>(*streams.back()));
            reqs.push_back(
                RunRequest::forMix(cfg, mixByName(m))
                    .with(exp::requirePolicyFactory(
                        "coscale", cfg.numCores, cfg.gamma)));
            applyHotFootprints(reqs.back().apps, kWaysFootprints);
            reqs.back().withTrace(*sinks.back());
        }
        exp::EngineOptions opts;
        opts.jobs = jobs;
        exp::ExperimentEngine engine(opts);
        std::vector<exp::RunOutcome> outcomes = engine.run(reqs);
        std::vector<std::string> bytes;
        for (size_t i = 0; i < reqs.size(); ++i) {
            EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
            sinks[i]->finish();
            bytes.push_back(streams[i]->str());
        }
        return bytes;
    };

    std::vector<std::string> serial = traceAll(1);
    std::vector<std::string> parallel = traceAll(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty()) << "mix " << mixes[i];
        EXPECT_EQ(serial[i], parallel[i]) << "mix " << mixes[i];
    }
}

} // namespace
} // namespace coscale
