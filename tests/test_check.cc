/**
 * @file
 * Tests for the correctness-audit layer: the contract macros
 * (COSCALE_CHECK / COSCALE_DCHECK), panic behaviour switching, the
 * DDR3 timing-legality auditor (acceptance on legal traffic plus one
 * injected violation per rule), the energy-conservation auditor, the
 * Eq. 1 residual auditor, and an audited full-policy-sweep smoke run.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/audit.hh"
#include "check/contract.hh"
#include "policy/coscale_policy.hh"
#include "policy/simple_policies.hh"
#include "policy/uncoordinated.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

// ---------------------------------------------------------------------
// Contract macros.
// ---------------------------------------------------------------------

TEST(Contract, CheckPassesSilently)
{
    ScopedPanicThrow guard;
    EXPECT_NO_THROW(COSCALE_CHECK(1 + 1 == 2));
    EXPECT_NO_THROW(COSCALE_CHECK(true, "never printed %d", 1));
}

TEST(Contract, CheckFailureCarriesContext)
{
    ScopedPanicThrow guard;
    try {
        COSCALE_CHECK(2 + 2 == 5, "arithmetic broke: %d", 42);
        FAIL() << "check did not fire";
    } catch (const CheckFailure &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("2 + 2 == 5"), std::string::npos);
        EXPECT_NE(what.find("arithmetic broke: 42"), std::string::npos);
        EXPECT_NE(std::string(e.file()).find("test_check.cc"),
                  std::string::npos);
        EXPECT_GT(e.line(), 0);
    }
}

TEST(Contract, LegacyAssertSharesTheCheckPath)
{
    ScopedPanicThrow guard;
    // coscale-lint: allow(legacy-assert) -- this test pins the legacy macro's behaviour until it is removed
    EXPECT_THROW(coscale_assert(false, "legacy %s", "spelling"),
                 CheckFailure);
}

TEST(Contract, DcheckFollowsBuildMode)
{
    ScopedPanicThrow guard;
    if (COSCALE_DCHECK_IS_ON()) {
        EXPECT_THROW(COSCALE_DCHECK(false, "audit build"), CheckFailure);
    } else {
        EXPECT_NO_THROW(COSCALE_DCHECK(false, "production build"));
    }
}

TEST(Contract, DisabledDcheckDoesNotEvaluateItsCondition)
{
    int calls = 0;
    auto bump = [&calls]() {
        calls += 1;
        return true;
    };
    COSCALE_DCHECK(bump());
    EXPECT_EQ(calls, COSCALE_DCHECK_IS_ON() ? 1 : 0);
}

TEST(Contract, PanicBehaviourIsScopedAndRestored)
{
    ASSERT_EQ(panicBehavior(), PanicBehavior::Abort);
    {
        ScopedPanicThrow guard;
        EXPECT_EQ(panicBehavior(), PanicBehavior::Throw);
        {
            ScopedPanicThrow nested;
            EXPECT_EQ(panicBehavior(), PanicBehavior::Throw);
        }
        EXPECT_EQ(panicBehavior(), PanicBehavior::Throw);
    }
    EXPECT_EQ(panicBehavior(), PanicBehavior::Abort);
}

TEST(ContractDeathTest, DefaultBehaviourAborts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(COSCALE_CHECK(false, "abort path"), "abort path");
}

// ---------------------------------------------------------------------
// DDR3 timing auditor: acceptance on real controller traffic.
// ---------------------------------------------------------------------

MemCtrlConfig
memConfig(bool open_page = false)
{
    MemCtrlConfig cfg;
    cfg.ladder = defaultMemLadder();
    cfg.backend.rowPolicy = open_page ? RowPolicy::Open : RowPolicy::ClosedAuto;
    return cfg;
}

void
drainAll(MemCtrl &mc)
{
    while (mc.nextEventTick() != maxTick)
        mc.step();
}

TEST(DramAudit, AcceptsLegalClosedPageTraffic)
{
    ScopedPanicThrow guard;
    MemCtrl mc(memConfig(), 0);
    DramTimingAuditor audit;
    mc.attachAuditor(&audit);

    Tick t = 0;
    for (int i = 0; i < 400; ++i) {
        MemReq r;
        r.addr = static_cast<BlockAddr>(i) * 977;
        r.kind = (i % 5 == 4) ? ReqKind::Writeback : ReqKind::Read;
        r.core = i % 4;
        r.arrival = t;
        r.token = static_cast<std::uint64_t>(i);
        mc.enqueue(r);
        t += 2000;
    }
    drainAll(mc);
    EXPECT_GE(audit.commandsAudited(), 400u);
}

TEST(DramAudit, AcceptsLegalOpenPageTraffic)
{
    ScopedPanicThrow guard;
    MemCtrl mc(memConfig(true), 0);
    DramTimingAuditor audit;
    mc.attachAuditor(&audit);

    // Sequential blocks: lots of row hits under open-page management.
    for (int i = 0; i < 400; ++i) {
        MemReq r;
        r.addr = static_cast<BlockAddr>(i);
        r.kind = ReqKind::Read;
        r.core = 0;
        r.arrival = static_cast<Tick>(i) * 1500;
        r.token = static_cast<std::uint64_t>(i);
        mc.enqueue(r);
    }
    drainAll(mc);
    EXPECT_GE(audit.commandsAudited(), 400u);
}

TEST(DramAudit, AcceptsTrafficAcrossFrequencyTransitions)
{
    ScopedPanicThrow guard;
    MemCtrl mc(memConfig(), 0);
    DramTimingAuditor audit;
    mc.attachAuditor(&audit);

    auto burst = [&mc](int base, Tick at) {
        for (int i = 0; i < 64; ++i) {
            MemReq r;
            r.addr = static_cast<BlockAddr>(base + i) * 353;
            r.kind = ReqKind::Read;
            r.core = 0;
            r.arrival = at;
            r.token = static_cast<std::uint64_t>(base + i);
            mc.enqueue(r);
        }
    };
    burst(0, 0);
    drainAll(mc);
    // Step down, then back up; the auditor must follow the resolved
    // timing and the re-calibration halts.
    Tick now = 10 * tickPerMs;
    mc.setFrequency(ChannelSel::all(), mc.cfgRef().ladder.size() - 1, now);
    burst(1000, now);
    drainAll(mc);
    now = 20 * tickPerMs;
    mc.setFrequency(ChannelSel::all(), 0, now);
    burst(2000, now);
    drainAll(mc);
    EXPECT_GE(audit.commandsAudited(), 192u);
    EXPECT_GT(audit.refreshesReplayed(), 0u);
}

TEST(DramAudit, MidRunAttachSeedsWithoutFalsePositives)
{
    ScopedPanicThrow guard;
    MemCtrl mc(memConfig(), 0);
    // Run un-audited traffic first so bank/refresh state is warm.
    for (int i = 0; i < 200; ++i) {
        MemReq r;
        r.addr = static_cast<BlockAddr>(i) * 613;
        r.kind = ReqKind::Read;
        r.core = 0;
        r.arrival = static_cast<Tick>(i) * 1000;
        r.token = static_cast<std::uint64_t>(i);
        mc.enqueue(r);
    }
    drainAll(mc);

    DramTimingAuditor audit;
    mc.attachAuditor(&audit);
    for (int i = 0; i < 200; ++i) {
        MemReq r;
        r.addr = static_cast<BlockAddr>(i) * 613;
        r.kind = ReqKind::Read;
        r.core = 0;
        r.arrival = 300 * tickPerUs + static_cast<Tick>(i) * 1000;
        r.token = static_cast<std::uint64_t>(i);
        mc.enqueue(r);
    }
    drainAll(mc);
    EXPECT_GE(audit.commandsAudited(), 200u);
}

TEST(DramAudit, ClonedControllerRunsUnaudited)
{
    ScopedPanicThrow guard;
    MemCtrl mc(memConfig(), 0);
    DramTimingAuditor audit;
    mc.attachAuditor(&audit);

    // A copy (what the Offline oracle does) must not feed commands
    // into the original's shadow: its stream would diverge.
    MemCtrl clone(mc);
    for (int i = 0; i < 50; ++i) {
        MemReq r;
        r.addr = static_cast<BlockAddr>(i) * 79;
        r.kind = ReqKind::Read;
        r.core = 0;
        r.arrival = static_cast<Tick>(i) * 500;
        r.token = static_cast<std::uint64_t>(i);
        clone.enqueue(r);
    }
    drainAll(clone);
    EXPECT_EQ(audit.commandsAudited(), 0u);
}

// ---------------------------------------------------------------------
// DDR3 timing auditor: injected violations, one per rule.
// ---------------------------------------------------------------------

/** A synthetic single-channel seed with refresh pushed out of the way. */
ChannelAuditSeed
syntheticSeed(int ranks = 1, bool open_page = false)
{
    ChannelAuditSeed seed;
    seed.timing = ResolvedTiming::resolve(DramTimingParams{}, 800 * MHz);
    seed.rowPolicy = open_page ? RowPolicy::Open : RowPolicy::ClosedAuto;
    seed.ranks = ranks;
    seed.banksPerRank = 8;
    seed.rankSeeds.resize(static_cast<size_t>(ranks));
    for (auto &rs : seed.rankSeeds)
        rs.nextRefreshDue = 1'000'000'000;
    return seed;
}

/** A legal closed-page read: ACT at @p issue, earliest data. */
DramCmdEvent
actRead(const ResolvedTiming &t, int bank, Tick issue, int rank = 0)
{
    DramCmdEvent ev;
    ev.channel = 0;
    ev.rank = rank;
    ev.bank = bank;
    ev.isWrite = false;
    ev.rowHit = false;
    ev.arrival = 0;
    ev.issue = issue;
    ev.dataStart = issue + t.tRCD + t.tCL;
    ev.dataEnd = ev.dataStart + t.tBURST;
    return ev;
}

class DramAuditInject : public ::testing::Test
{
  protected:
    void
    seed(int ranks = 1, bool open_page = false)
    {
        s = syntheticSeed(ranks, open_page);
        audit.seedChannel(0, s);
    }

    ScopedPanicThrow guard;
    DramTimingAuditor audit;
    ChannelAuditSeed s;
};

TEST_F(DramAuditInject, CatchesTrrdViolation)
{
    seed();
    const ResolvedTiming &t = s.timing;
    EXPECT_NO_THROW(audit.onCommand(actRead(t, 0, 100000)));
    // Second ACT on the same rank one tick inside the tRRD window.
    EXPECT_THROW(audit.onCommand(actRead(t, 1, 100000 + t.tRRD - 1)),
                 CheckFailure);
}

TEST_F(DramAuditInject, CatchesTfawViolation)
{
    seed();
    const ResolvedTiming &t = s.timing;
    ASSERT_LT(4 * t.tRRD, t.tFAW) << "parameters no longer exercise tFAW";
    Tick base = 100000;
    // Four ACTs at exactly tRRD spacing are legal...
    for (int i = 0; i < 4; ++i) {
        EXPECT_NO_THROW(audit.onCommand(
            actRead(t, i, base + static_cast<Tick>(i) * t.tRRD)));
    }
    // ...but the fifth lands inside the four-activate window.
    EXPECT_THROW(audit.onCommand(actRead(t, 4, base + 4 * t.tRRD)),
                 CheckFailure);
}

TEST_F(DramAuditInject, CatchesBankCycleViolation)
{
    seed();
    const ResolvedTiming &t = s.timing;
    DramCmdEvent first = actRead(t, 0, 100000);
    EXPECT_NO_THROW(audit.onCommand(first));
    // Re-activating the same bank before tRAS + tRP have elapsed.
    Tick too_early = first.issue + t.tRAS + t.tRP - 1;
    EXPECT_THROW(audit.onCommand(actRead(t, 0, too_early)),
                 CheckFailure);
}

TEST_F(DramAuditInject, CatchesBusOverlap)
{
    seed(2);
    const ResolvedTiming &t = s.timing;
    DramCmdEvent first = actRead(t, 0, 100000, 0);
    EXPECT_NO_THROW(audit.onCommand(first));
    // Different rank dodges tRRD/tFAW, but its burst overlaps the
    // first command's occupancy of the shared data bus.
    DramCmdEvent second = actRead(t, 0, 100000 + 2000, 1);
    ASSERT_LT(second.dataStart, first.dataEnd);
    EXPECT_THROW(audit.onCommand(second), CheckFailure);
}

TEST_F(DramAuditInject, CatchesWrongBurstLength)
{
    seed();
    DramCmdEvent ev = actRead(s.timing, 0, 100000);
    ev.dataEnd = ev.dataStart + s.timing.tBURST / 2;
    EXPECT_THROW(audit.onCommand(ev), CheckFailure);
}

TEST_F(DramAuditInject, CatchesCasLatencyViolation)
{
    seed();
    DramCmdEvent ev = actRead(s.timing, 0, 100000);
    ev.dataStart = ev.issue + s.timing.tRCD + s.timing.tCL - 1000;
    ev.dataEnd = ev.dataStart + s.timing.tBURST;
    EXPECT_THROW(audit.onCommand(ev), CheckFailure);
}

TEST_F(DramAuditInject, CatchesCommandInsideRecalibrationHalt)
{
    seed();
    ResolvedTiming slower =
        ResolvedTiming::resolve(DramTimingParams{}, 400 * MHz);
    audit.onFrequencyChange(0, slower, 200000);
    EXPECT_THROW(audit.onCommand(actRead(slower, 0, 150000)),
                 CheckFailure);
    // At the halt boundary the same command is legal again.
    EXPECT_NO_THROW(audit.onCommand(actRead(slower, 0, 200000)));
}

TEST_F(DramAuditInject, CatchesCommandInsideRefreshWindow)
{
    seed();
    s.rankSeeds[0].nextRefreshDue = 1000;
    audit.seedChannel(0, s);
    // The first command's timing floors all sit below the due date,
    // so it may be postponed past it without executing the refresh
    // (JEDEC REF postponement, as the controller models it).
    EXPECT_NO_THROW(audit.onCommand(actRead(s.timing, 0, 2000)));
    EXPECT_EQ(audit.refreshesReplayed(), 0u);
    // The second command's tRRD floor (previous ACT + tRRD) crosses
    // the due date, forcing the refresh: window [1000, 1000 + tRFC).
    // An issue inside that window is illegal.
    ASSERT_LT(Tick{50000}, 1000 + s.timing.tRFC);
    EXPECT_THROW(audit.onCommand(actRead(s.timing, 1, 50000)),
                 CheckFailure);
    EXPECT_GT(audit.refreshesReplayed(), 0u);
}

TEST_F(DramAuditInject, CatchesCommitOrderViolation)
{
    seed();
    EXPECT_NO_THROW(audit.onCommand(actRead(s.timing, 0, 100000)));
    EXPECT_THROW(audit.onCommand(actRead(s.timing, 1, 90000)),
                 CheckFailure);
}

TEST_F(DramAuditInject, CatchesRowHitUnderClosedPage)
{
    seed();
    DramCmdEvent ev = actRead(s.timing, 0, 100000);
    ev.rowHit = true;
    ev.dataStart = ev.issue + s.timing.tCL;
    ev.dataEnd = ev.dataStart + s.timing.tBURST;
    EXPECT_THROW(audit.onCommand(ev), CheckFailure);
}

TEST_F(DramAuditInject, CatchesIssueBeforeArrival)
{
    seed();
    DramCmdEvent ev = actRead(s.timing, 0, 100000);
    ev.arrival = ev.issue + 1;
    EXPECT_THROW(audit.onCommand(ev), CheckFailure);
}

// ---------------------------------------------------------------------
// Energy-conservation auditor.
// ---------------------------------------------------------------------

/** A short profiled run whose profile/model feed the model audits. */
class AuditedProfile : public ::testing::Test
{
  protected:
    AuditedProfile()
        : cfg(makeScaledConfig(0.02)),
          sys(cfg, expandMix(mixByName("MID1"), cfg.numCores,
                             cfg.instrBudget)),
          em(sys.energyModel())
    {
        start = sys.snapshot();
        sys.run(cfg.profileLen);
        prof = sys.makeProfile(start);
    }

    SystemConfig cfg;
    System sys;
    EnergyModel em;
    CounterSnapshot start;
    SystemProfile prof;
};

TEST_F(AuditedProfile, EnergyModelComponentsSumToSystemPower)
{
    ScopedPanicThrow guard;
    EnergyAuditor ea;
    FreqConfig all_max = FreqConfig::allMax(cfg.numCores);
    EXPECT_NO_THROW(ea.auditCandidate(em, prof, all_max));

    // A scaled-down candidate must conserve too.
    FreqConfig slow = all_max;
    slow.memIdx = cfg.memLadder.size() - 1;
    for (int &c : slow.coreIdx)
        c = cfg.coreLadder.size() - 1;
    EXPECT_NO_THROW(ea.auditCandidate(em, prof, slow));
    EXPECT_EQ(ea.candidatesAudited(), 2u);
}

TEST_F(AuditedProfile, SerEvaluatorAgreesWithReferenceModel)
{
    ScopedPanicThrow guard;
    EnergyAuditor ea;
    SerEvaluator ev(em, prof);
    FreqConfig c = FreqConfig::allMax(cfg.numCores);
    for (int m = 0; m < cfg.memLadder.size(); ++m) {
        c.memIdx = m;
        EXPECT_NO_THROW(ea.auditCandidate(em, ev, prof, c));
    }
}

TEST(EnergyAudit, CatchesMisSummedComponents)
{
    ScopedPanicThrow guard;
    EnergyAuditor ea;
    EXPECT_NO_THROW(ea.checkConservation(100.0, 60.0, 30.0, 10.0));
    EXPECT_THROW(ea.checkConservation(100.0, 60.0, 30.0, 11.0),
                 CheckFailure);
}

TEST(EnergyAudit, CatchesAccountingDrift)
{
    ScopedPanicThrow guard;
    EnergyAuditor ea;
    ea.onWindowEnergy(100.0, 40.0, 20.0, 2.0);
    ea.onWindowEnergy(90.0, 50.0, 20.0, 1.0);
    // Matching component streams pass...
    EXPECT_NO_THROW(ea.auditRunTotals(100.0 * 2 + 90.0, 40.0 * 2 + 50.0,
                                      20.0 * 2 + 20.0));
    // ...an epoch dropped from one component stream does not.
    EXPECT_THROW(ea.auditRunTotals(100.0 * 2, 40.0 * 2 + 50.0,
                                   20.0 * 2 + 20.0),
                 CheckFailure);
}

// ---------------------------------------------------------------------
// Performance-model residual auditor.
// ---------------------------------------------------------------------

TEST_F(AuditedProfile, ResidualAuditorAcceptsConsistentEpoch)
{
    ScopedPanicThrow guard;
    PerfAuditor pa(sys.numApps(), cfg.gamma);
    EpochObservation obs;
    obs.epochProfile = prof;
    obs.applied = FreqConfig::allMax(cfg.numCores);
    obs.instrs = sys.instrsSince(start);
    obs.epochTicks = sys.now();
    EXPECT_NO_THROW(pa.onEpoch(obs, em));
    EXPECT_EQ(pa.epochsAudited(), 1u);
}

TEST_F(AuditedProfile, ResidualAuditorCatchesImpossiblyFastEpoch)
{
    ScopedPanicThrow guard;
    PerfAuditor pa(sys.numApps(), cfg.gamma);
    EpochObservation obs;
    obs.epochProfile = prof;
    obs.applied = FreqConfig::allMax(cfg.numCores);
    // Claim two million instructions retired in one nanosecond: far
    // beyond what Eq. 1 allows at any frequency.
    obs.instrs.assign(static_cast<size_t>(cfg.numCores), 2'000'000);
    obs.epochTicks = 1000;
    EXPECT_THROW(pa.onEpoch(obs, em), CheckFailure);
}

TEST_F(AuditedProfile, ResidualAuditorShadowsSlackLedger)
{
    ScopedPanicThrow guard;
    PerfAuditor pa(sys.numApps(), cfg.gamma);
    EpochObservation obs;
    obs.epochProfile = prof;
    obs.applied = FreqConfig::allMax(cfg.numCores);
    obs.instrs = sys.instrsSince(start);
    obs.epochTicks = sys.now();
    for (int e = 0; e < 5; ++e)
        pa.onEpoch(obs, em);
    EXPECT_EQ(pa.epochsAudited(), 5u);
    // At the all-max reference the per-epoch credit is
    // instrs * ref * (1 + gamma) against elapsed = instrs * measured;
    // the shadow must stay finite and replay-consistent (checked
    // internally), and with gamma > 0 a busy app accumulates slack.
    double s0 = pa.shadowSlackSecs(0);
    EXPECT_TRUE(std::isfinite(s0));
}

// ---------------------------------------------------------------------
// Audited end-to-end sweep: every policy family under all three
// auditors on a scaled-down workload.
// ---------------------------------------------------------------------

TEST(AuditSmoke, FullPolicySweepRunsCleanUnderAllAuditors)
{
    ScopedPanicThrow guard;
    SystemConfig cfg = makeScaledConfig(0.02);

    std::vector<std::unique_ptr<Policy>> policies;
    policies.push_back(std::make_unique<BaselinePolicy>());
    policies.push_back(
        std::make_unique<CoScalePolicy>(cfg.numCores, cfg.gamma));
    policies.push_back(
        std::make_unique<MemScalePolicy>(cfg.numCores, cfg.gamma));
    policies.push_back(
        std::make_unique<SemiCoordinatedPolicy>(cfg.numCores, cfg.gamma));
    policies.push_back(
        std::make_unique<UncoordinatedPolicy>(cfg.numCores, cfg.gamma));

    for (auto &policy : policies) {
        SCOPED_TRACE(policy->name());
        AuditSet audit(cfg.numCores, policy->slackGamma());
        RunResult r =
            coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(*policy).withAudit(&audit));
        EXPECT_GT(r.totalInstrs, 0u);
        EXPECT_GT(audit.dram.commandsAudited(), 0u);
        EXPECT_GT(audit.dram.refreshesReplayed(), 0u);
        EXPECT_GT(audit.energy.windowsAudited(), 0u);
        EXPECT_GT(audit.perf.epochsAudited(), 0u);
    }
}

TEST(AuditSmoke, RunnerAutoAttachesWhenEnvRequestsAuditing)
{
    ScopedPanicThrow guard;
    // auditingEnabled() caches its env lookup per process; this test
    // only verifies the explicit-AuditSet path composes with the
    // default-off path (no env set in the test harness).
    SystemConfig cfg = makeScaledConfig(0.01);
    BaselinePolicy base;
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("ILP2")).with(base));
    EXPECT_GT(r.totalInstrs, 0u);
}

} // namespace
} // namespace coscale
