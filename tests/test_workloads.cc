/**
 * @file
 * Tests for the workload catalogue and Table 1 mixes: completeness,
 * class structure, override semantics, and per-mix nominal MPKI
 * against the paper's reported values.
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/spec_catalogue.hh"

namespace coscale {
namespace {

TEST(Catalogue, AllMixAppsExist)
{
    for (const auto &mix : table1Mixes()) {
        for (const auto &ref : mix.apps) {
            AppSpec s = appByName(ref.name);
            EXPECT_EQ(s.name, ref.name);
            EXPECT_FALSE(s.phases.empty());
        }
    }
}

TEST(Catalogue, SixteenMixesInFourClasses)
{
    const auto &mixes = table1Mixes();
    ASSERT_EQ(mixes.size(), 16u);
    for (const std::string cls : {"ILP", "MID", "MEM", "MIX"})
        EXPECT_EQ(mixesByClass(cls).size(), 4u);
}

TEST(Catalogue, MixNamesMatchPaperOrder)
{
    const auto &mixes = table1Mixes();
    EXPECT_EQ(mixes[0].name, "ILP1");
    EXPECT_EQ(mixes[8].name, "MEM1");
    EXPECT_EQ(mixes[15].name, "MIX4");
    for (const auto &m : mixes)
        EXPECT_EQ(m.apps.size(), 4u);
}

TEST(Catalogue, MixByNameFindsEveryMix)
{
    for (const auto &m : table1Mixes())
        EXPECT_EQ(mixByName(m.name).name, m.name);
}

TEST(Catalogue, NominalMpkiMatchesTable1)
{
    // The *intended* (pre-LLC) per-mix MPKI should track Table 1;
    // the measured values are checked end-to-end by
    // bench_table1_workloads.
    for (const auto &mix : table1Mixes()) {
        double sum = 0.0;
        for (const auto &ref : mix.apps)
            sum += nominalMpki(resolveApp(ref));
        double avg = sum / static_cast<double>(mix.apps.size());
        EXPECT_NEAR(avg, mix.tableMpki, mix.tableMpki * 0.25 + 0.1)
            << "mix " << mix.name;
    }
}

TEST(Catalogue, ClassIntensityOrdering)
{
    auto class_mpki = [](const std::string &cls) {
        double sum = 0.0;
        int n = 0;
        for (const auto &m : mixesByClass(cls)) {
            sum += m.tableMpki;
            n += 1;
        }
        return sum / n;
    };
    EXPECT_LT(class_mpki("ILP"), class_mpki("MID"));
    EXPECT_LT(class_mpki("MID"), class_mpki("MIX") + 1.0);
    EXPECT_LT(class_mpki("MIX"), class_mpki("MEM"));
}

TEST(Catalogue, MpkiOverrideScalesPhases)
{
    AppRef ref{"milc", 5.0, -1.0};
    AppSpec scaled = resolveApp(ref);
    EXPECT_NEAR(nominalMpki(scaled), 5.0, 1e-9);
    // Phase structure preserved (milc has three phases).
    EXPECT_EQ(scaled.phases.size(), 3u);
    AppSpec orig = appByName("milc");
    double ratio0 = scaled.phases[0].llcMpki / orig.phases[0].llcMpki;
    double ratio2 = scaled.phases[2].llcMpki / orig.phases[2].llcMpki;
    EXPECT_NEAR(ratio0, ratio2, 1e-9);
}

TEST(Catalogue, WriteFracOverride)
{
    AppRef ref{"applu", -1.0, 0.85};
    AppSpec s = resolveApp(ref);
    for (const auto &p : s.phases)
        EXPECT_DOUBLE_EQ(p.writeFrac, 0.85);
}

TEST(Catalogue, MilcHasThreePhasesOfRisingIntensity)
{
    AppSpec milc = appByName("milc");
    ASSERT_EQ(milc.phases.size(), 3u);
    EXPECT_LT(milc.phases[0].llcMpki, milc.phases[1].llcMpki);
    EXPECT_LT(milc.phases[1].llcMpki, milc.phases[2].llcMpki);
}

TEST(Catalogue, GobmkHasTrafficSpike)
{
    AppSpec gobmk = appByName("gobmk");
    ASSERT_EQ(gobmk.phases.size(), 3u);
    EXPECT_GT(gobmk.phases[1].llcMpki, 3.0 * gobmk.phases[0].llcMpki);
}

TEST(ExpandMix, SixteenCoresFourCopies)
{
    const WorkloadMix &mix = mixByName("MEM1");
    auto specs = expandMix(mix, 16, 20'000'000);
    ASSERT_EQ(specs.size(), 16u);
    // Four copies of each application, round-robin.
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(specs[static_cast<size_t>(i)].name,
                  mix.apps[static_cast<size_t>(i) % 4].name);
}

TEST(ExpandMix, PhaseLengthsSpanBudget)
{
    const WorkloadMix &mix = mixByName("MIX2");
    std::uint64_t budget = 20'000'000;
    auto specs = expandMix(mix, 16, budget);
    for (const auto &s : specs) {
        std::uint64_t total = 0;
        for (const auto &p : s.phases)
            total += p.instructions;
        EXPECT_NEAR(static_cast<double>(total),
                    static_cast<double>(budget),
                    static_cast<double>(budget) * 0.01)
            << s.name;
    }
}

TEST(ExpandMix, OverridesApplied)
{
    // MIX2's milc is overridden to MPKI 5, then the mix-level
    // calibration factor is applied on top.
    const WorkloadMix &mix = mixByName("MIX2");
    auto specs = expandMix(mix, 16, 20'000'000);
    EXPECT_EQ(specs[0].name, "milc");
    EXPECT_NEAR(nominalMpki(specs[0]), 5.0 * mix.mpkiCalib, 1e-6);
}

TEST(Catalogue, NamesAreUnique)
{
    auto names = catalogueNames();
    std::set<std::string> set(names.begin(), names.end());
    EXPECT_EQ(set.size(), names.size());
    EXPECT_GE(names.size(), 25u);
}

} // namespace
} // namespace coscale
