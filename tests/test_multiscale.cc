/**
 * @file
 * Tests for the per-channel memory-DVFS extension: the
 * RegionPerChannel address mapping, independent channel frequency
 * control in the memory controller, per-channel profiling and power
 * accounting, and the MultiScalePolicy end to end.
 */

#include <gtest/gtest.h>

#include "policy/multiscale.hh"
#include "policy/simple_policies.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

TEST(RegionMap, PinsRegionsToChannels)
{
    MemGeometry g;
    g.addrMap = AddrMap::RegionPerChannel;
    for (int app = 0; app < 8; ++app) {
        BlockAddr base = static_cast<BlockAddr>(app) << 34;
        for (BlockAddr off = 0; off < 1000; off += 37) {
            DramCoord c = mapAddress(base + off, g);
            EXPECT_EQ(c.channel, app % 4);
        }
    }
}

TEST(RegionMap, SpreadsBanksWithinRegion)
{
    MemGeometry g;
    g.addrMap = AddrMap::RegionPerChannel;
    bool banks_seen[8] = {};
    for (BlockAddr off = 0; off < 64; ++off) {
        DramCoord c = mapAddress(off, g);
        banks_seen[c.bank] = true;
    }
    for (bool seen : banks_seen)
        EXPECT_TRUE(seen);
}

TEST(MemCtrlPerChannel, IndependentFrequencies)
{
    MemCtrlConfig cfg;
    cfg.ladder = defaultMemLadder();
    MemCtrl mc(cfg, 0);
    EXPECT_FALSE(mc.perChannelFrequencies());
    mc.setFrequency(ChannelSel::one(2), 7, 0);
    EXPECT_TRUE(mc.perChannelFrequencies());
    EXPECT_EQ(mc.channelFrequencyIndex(0), 0);
    EXPECT_EQ(mc.channelFrequencyIndex(2), 7);
    EXPECT_DOUBLE_EQ(mc.channelBusFreq(2), cfg.ladder.freq(7));
    // Uniform change overrides all channels.
    mc.setFrequency(ChannelSel::all(), 3, 1000);
    EXPECT_FALSE(mc.perChannelFrequencies());
    EXPECT_EQ(mc.channelFrequencyIndex(2), 3);
}

TEST(MemCtrlPerChannel, OnlyThatChannelHalts)
{
    MemCtrlConfig cfg;
    cfg.ladder = defaultMemLadder();
    MemCtrl mc(cfg, 0);
    mc.setFrequency(ChannelSel::one(0), 9, 0);
    // Block 0 -> channel 0 (interleave); block 1 -> channel 1.
    MemReq slow_read;
    slow_read.addr = 0;
    slow_read.core = 0;
    slow_read.arrival = 0;
    slow_read.token = 1;
    MemReq fast_read = slow_read;
    fast_read.addr = 1;
    fast_read.token = 2;
    mc.enqueue(slow_read);
    mc.enqueue(fast_read);
    Tick t_slow = 0, t_fast = 0;
    while (mc.nextEventTick() != maxTick) {
        auto done = mc.step();
        if (done && done->token == 1)
            t_slow = done->finishAt;
        if (done && done->token == 2)
            t_fast = done->finishAt;
    }
    // Channel 1 is unaffected by channel 0's recalibration halt.
    EXPECT_LT(t_fast, 60 * tickPerNs);
    EXPECT_GT(t_slow, t_fast + tickPerUs);
}

TEST(SystemPerChannel, ApplyAndReportChannelConfig)
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 4;
    cfg.geom.addrMap = AddrMap::RegionPerChannel;
    cfg.power.geom = cfg.geom;
    auto apps = expandMix(mixByName("MID1"), 4, cfg.instrBudget);
    System sys(cfg, apps);
    sys.run(50 * tickPerUs);

    FreqConfig fc = FreqConfig::allMax(4);
    fc.chanIdx = {0, 3, 6, 9};
    sys.applyConfig(fc);
    FreqConfig cur = sys.currentConfig();
    ASSERT_EQ(cur.chanIdx.size(), 4u);
    EXPECT_EQ(cur.chanIdx[1], 3);
    EXPECT_EQ(cur.chanIdx[3], 9);
}

TEST(SystemPerChannel, ProfilesCarryChannelsAndHomes)
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 8;
    cfg.geom.addrMap = AddrMap::RegionPerChannel;
    cfg.power.geom = cfg.geom;
    auto apps = expandMix(mixByName("MIX2"), 8, cfg.instrBudget);
    System sys(cfg, apps);
    CounterSnapshot snap = sys.snapshot();
    sys.run(300 * tickPerUs);
    SystemProfile prof = sys.makeProfile(snap);
    ASSERT_EQ(prof.channels.size(), 4u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(prof.cores[static_cast<size_t>(i)].homeChannel, i % 4);
    // Channels see different traffic (different applications).
    double lo = 1e18, hi = 0.0;
    for (const auto &ch : prof.channels) {
        lo = std::min(lo, ch.trafficPerSec);
        hi = std::max(hi, ch.trafficPerSec);
    }
    EXPECT_GT(hi, 1.5 * lo);
}

TEST(SystemPerChannel, PerChannelPowerSumsLikeAggregate)
{
    // With uniform frequencies, per-channel power accounting must
    // agree with the aggregate formulation.
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 8;
    auto apps = expandMix(mixByName("MID2"), 8, cfg.instrBudget);
    System sys(cfg, apps);
    CounterSnapshot snap = sys.snapshot();
    sys.run(300 * tickPerUs);
    PowerBreakdown pb = sys.windowPower(snap);

    ChannelCounters total = sys.memCtrl().totalCounters() - snap.mem;
    double aggregate = sys.powerModel().memPowerFromCounters(
        total, sys.now() - snap.tick, cfg.memLadder.voltage(0),
        cfg.memLadder.freq(0));
    EXPECT_NEAR(pb.memW, aggregate, aggregate * 1e-9);
}

TEST(MultiScalePolicy, BeatsUniformOnHeterogeneousMix)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    cfg.geom.addrMap = AddrMap::RegionPerChannel;
    cfg.power.geom = cfg.geom;
    const WorkloadMix &mix = mixByName("MIX2");

    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mix).with(b));
    MemScalePolicy uniform(cfg.numCores, cfg.gamma);
    Comparison cu = compare(base, coscale::run(RunRequest::forMix(cfg, mix).with(uniform)));
    MultiScalePolicy multi(cfg.numCores, cfg.gamma);
    RunResult mul = coscale::run(RunRequest::forMix(cfg, mix).with(multi));
    Comparison cm = compare(base, mul);

    EXPECT_GT(cm.memSavings, cu.memSavings + 0.02);
    EXPECT_LE(cm.worstDegradation, cfg.gamma + 0.005);
}

TEST(MultiScalePolicy, ChannelsDivergeUnderImbalance)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    cfg.geom.addrMap = AddrMap::RegionPerChannel;
    cfg.power.geom = cfg.geom;
    MultiScalePolicy multi(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MIX2")).with(multi));
    ASSERT_GT(r.epochs.size(), 4u);
    const auto &e = r.epochs[r.epochs.size() / 2];
    ASSERT_EQ(e.applied.chanIdx.size(), 4u);
    int lo = 99, hi = -1;
    for (int idx : e.applied.chanIdx) {
        lo = std::min(lo, idx);
        hi = std::max(hi, idx);
    }
    // The memory-bound application's channel stays several steps
    // above the compute-bound one's.
    EXPECT_GE(hi - lo, 3);
}

TEST(MultiScalePolicy, MatchesUniformOnBalancedMix)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    cfg.geom.addrMap = AddrMap::RegionPerChannel;
    cfg.power.geom = cfg.geom;
    const WorkloadMix &mix = mixByName("MID1");

    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mix).with(b));
    MemScalePolicy uniform(cfg.numCores, cfg.gamma);
    Comparison cu = compare(base, coscale::run(RunRequest::forMix(cfg, mix).with(uniform)));
    MultiScalePolicy multi(cfg.numCores, cfg.gamma);
    Comparison cm = compare(base, coscale::run(RunRequest::forMix(cfg, mix).with(multi)));
    EXPECT_NEAR(cm.memSavings, cu.memSavings, 0.05);
}

TEST(MultiScalePolicy, FallsBackWithoutChannelProfiles)
{
    // Hand the policy a profile without per-channel data: it should
    // behave like uniform MemScale rather than crash.
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 4;
    auto apps = expandMix(mixByName("MID1"), 4, cfg.instrBudget);
    System sys(cfg, apps);
    CounterSnapshot snap = sys.snapshot();
    sys.run(300 * tickPerUs);
    SystemProfile prof = sys.makeProfile(snap);
    prof.channels.clear();

    EnergyModel em = sys.energyModel();
    MultiScalePolicy policy(4, 0.10);
    FreqConfig pick =
        policy.decide(prof, em, sys.currentConfig(), cfg.epochLen);
    EXPECT_TRUE(pick.chanIdx.empty());
    EXPECT_GE(pick.memIdx, 0);
}

} // namespace
} // namespace coscale
