/**
 * @file
 * Tests for the JSON writer and the runner's JSON report: structural
 * validity (balanced, correctly quoted and escaped) and content.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/json.hh"
#include "policy/coscale_policy.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

/** A tiny structural validator: balanced braces outside strings. */
bool
structurallyValid(const std::string &s)
{
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (char c : s) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (c == '\\')
                escaped = true;
            else if (c == '"')
                in_string = false;
            continue;
        }
        if (c == '"')
            in_string = true;
        else if (c == '{' || c == '[')
            depth += 1;
        else if (c == '}' || c == ']') {
            depth -= 1;
            if (depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_string;
}

TEST(Json, ObjectWithScalars)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.field("name", "x");
    j.field("count", 3);
    j.field("ratio", 0.5);
    j.field("flag", true);
    j.endObject();
    EXPECT_EQ(os.str(),
              "{\"name\":\"x\",\"count\":3,\"ratio\":0.5,"
              "\"flag\":true}");
}

TEST(Json, NestedStructures)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.beginArray("xs");
    j.value(1);
    j.value(2);
    j.endArray();
    j.beginObject("inner");
    j.field("a", 1);
    j.endObject();
    j.field("tail", 9);
    j.endObject();
    EXPECT_EQ(os.str(),
              "{\"xs\":[1,2],\"inner\":{\"a\":1},\"tail\":9}");
    EXPECT_TRUE(structurallyValid(os.str()));
}

TEST(Json, ArrayOfObjects)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginArray();
    for (int i = 0; i < 3; ++i) {
        j.beginObject();
        j.field("i", i);
        j.endObject();
    }
    j.endArray();
    EXPECT_EQ(os.str(), "[{\"i\":0},{\"i\":1},{\"i\":2}]");
}

TEST(Json, StringEscaping)
{
    std::ostringstream os;
    JsonWriter j(os);
    j.beginObject();
    j.field("s", "a\"b\\c\nd\te");
    j.endObject();
    EXPECT_EQ(os.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(Json, RunReportIsValidAndComplete)
{
    SystemConfig cfg = makeScaledConfig(0.03);
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("ILP2")).with(b));
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forMix(cfg, mixByName("ILP2")).with(policy));
    Comparison c = compare(base, run);

    std::ostringstream os;
    writeJsonReport(run, &c, os);
    std::string out = os.str();
    EXPECT_TRUE(structurallyValid(out));
    for (const char *key :
         {"\"mix\":\"ILP2\"", "\"policy\":\"CoScale\"",
          "\"vs_baseline\"", "\"full_system_savings\"", "\"epochs\"",
          "\"core_idx\"", "\"app_completion_seconds\""}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(Json, ReportWithoutBaselineOmitsComparison)
{
    SystemConfig cfg = makeScaledConfig(0.03);
    BaselinePolicy b;
    RunResult run = coscale::run(RunRequest::forMix(cfg, mixByName("ILP2")).with(b));
    std::ostringstream os;
    writeJsonReport(run, nullptr, os);
    EXPECT_TRUE(structurallyValid(os.str()));
    EXPECT_EQ(os.str().find("vs_baseline"), std::string::npos);
}

} // namespace
} // namespace coscale
