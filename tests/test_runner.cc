/**
 * @file
 * Tests for the epoch runner: warmup handling, epoch logging, energy
 * accounting boundaries, the comparison helpers, and runner-level
 * behaviour of the PowerCap and ablated-CoScale variants.
 */

#include <gtest/gtest.h>

#include "policy/coscale_policy.hh"
#include "policy/power_cap.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

SystemConfig
smallConfig(double scale = 0.05)
{
    return makeScaledConfig(scale);
}

TEST(Runner, WarmupEpochsRunAtMax)
{
    SystemConfig cfg = smallConfig();
    cfg.warmupEpochs = 3;
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(policy));
    ASSERT_GE(r.epochs.size(), 4u);
    for (int e = 0; e < 3; ++e) {
        EXPECT_EQ(r.epochs[static_cast<size_t>(e)].applied.memIdx, 0);
        for (int idx : r.epochs[static_cast<size_t>(e)].applied.coreIdx)
            EXPECT_EQ(idx, 0);
    }
    // After warmup the policy acts.
    bool scaled_later = false;
    for (size_t e = 3; e < r.epochs.size(); ++e) {
        if (r.epochs[e].applied.memIdx > 0)
            scaled_later = true;
        for (int idx : r.epochs[e].applied.coreIdx)
            scaled_later = scaled_later || idx > 0;
    }
    EXPECT_TRUE(scaled_later);
}

TEST(Runner, EpochLogIsChronological)
{
    SystemConfig cfg = smallConfig();
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("ILP2")).with(policy));
    ASSERT_GE(r.epochs.size(), 2u);
    for (size_t e = 1; e < r.epochs.size(); ++e) {
        EXPECT_EQ(r.epochs[e].startTick - r.epochs[e - 1].startTick,
                  cfg.epochLen);
    }
    for (const auto &log : r.epochs)
        EXPECT_GT(log.avgPower.totalW(), 10.0);
}

TEST(Runner, EnergyBoundedByPeakPowerTimesRuntime)
{
    SystemConfig cfg = smallConfig();
    BaselinePolicy b;
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(b));
    double secs = ticksToSeconds(r.finishTick);
    EXPECT_GT(r.totalEnergyJ(), 50.0 * secs);   // > 50 W floor
    EXPECT_LT(r.totalEnergyJ(), 400.0 * secs);  // < 400 W ceiling
}

TEST(Runner, FinishTickIsMaxOfAppCompletions)
{
    SystemConfig cfg = smallConfig();
    BaselinePolicy b;
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID2")).with(b));
    Tick last = 0;
    for (Tick t : r.appCompletion)
        last = std::max(last, t);
    EXPECT_EQ(r.finishTick, last);
    EXPECT_EQ(r.appCompletion.size(), 16u);
}

TEST(Runner, CompareOfIdenticalRunsIsZero)
{
    SystemConfig cfg = smallConfig();
    BaselinePolicy b1, b2;
    RunResult a = coscale::run(RunRequest::forMix(cfg, mixByName("ILP2")).with(b1));
    RunResult c = coscale::run(RunRequest::forMix(cfg, mixByName("ILP2")).with(b2));
    Comparison cmp = compare(a, c);
    EXPECT_DOUBLE_EQ(cmp.fullSystemSavings, 0.0);
    EXPECT_DOUBLE_EQ(cmp.avgDegradation, 0.0);
    EXPECT_DOUBLE_EQ(cmp.worstDegradation, 0.0);
}

TEST(Runner, TinyBudgetTerminatesCleanly)
{
    SystemConfig cfg = smallConfig();
    cfg.instrBudget = 10'000;  // finishes inside the first epoch
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(policy));
    EXPECT_GT(r.totalInstrs, 16u * 10'000u);
    EXPECT_GT(r.totalEnergyJ(), 0.0);
    EXPECT_LT(ticksToSeconds(r.finishTick), 1.0);
}

TEST(Runner, PowerCapHoldsOverWholeRun)
{
    SystemConfig cfg = smallConfig();
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MID4")).with(b));
    double peak_w =
        base.totalEnergyJ() / ticksToSeconds(base.finishTick);
    double cap = peak_w * 0.85;
    PowerCapPolicy policy(cap);
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID4")).with(policy));
    double avg_w = r.totalEnergyJ() / ticksToSeconds(r.finishTick);
    EXPECT_LE(avg_w, cap * 1.03);
    // Capping costs performance but not catastrophically.
    double slowdown = static_cast<double>(r.finishTick)
                          / static_cast<double>(base.finishTick)
                      - 1.0;
    EXPECT_LT(slowdown, 0.35);
}

TEST(Runner, GroupingAblationSavesLess)
{
    SystemConfig cfg = smallConfig();
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(b));

    CoScalePolicy with_groups(cfg.numCores, cfg.gamma);
    Comparison c_full =
        compare(base, coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(with_groups)));

    CoScaleOptions opts;
    opts.coreGrouping = false;
    CoScalePolicy without(cfg.numCores, cfg.gamma, opts);
    Comparison c_nogroup =
        compare(base, coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(without)));

    // Section 3.1: failing to consider group transitions gets the
    // heuristic stuck in local minima.
    EXPECT_GT(c_full.fullSystemSavings,
              c_nogroup.fullSystemSavings + 0.01);
    EXPECT_LE(c_nogroup.worstDegradation, cfg.gamma + 0.005);
}

TEST(Runner, NoSlackCarryUsesLessBudget)
{
    SystemConfig cfg = smallConfig();
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(b));

    CoScaleOptions opts;
    opts.carrySlack = false;
    CoScalePolicy policy(cfg.numCores, cfg.gamma, opts);
    Comparison c =
        compare(base, coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(policy)));
    // Still safe, but leaves slack unused.
    EXPECT_LE(c.worstDegradation, cfg.gamma + 0.005);
    EXPECT_LT(c.avgDegradation, 0.095);
}

TEST(Runner, ChipWideDvfsKeepsCoresUniformAndSavesLess)
{
    SystemConfig cfg = smallConfig();
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MIX3")).with(b));

    CoScaleOptions opts;
    opts.chipWideCpuDvfs = true;
    CoScalePolicy chip(cfg.numCores, cfg.gamma, opts);
    RunResult chip_run = coscale::run(RunRequest::forMix(cfg, mixByName("MIX3")).with(chip));
    Comparison c_chip = compare(base, chip_run);

    // All cores share one frequency in every epoch.
    for (const auto &e : chip_run.epochs) {
        for (int idx : e.applied.coreIdx)
            EXPECT_EQ(idx, e.applied.coreIdx[0]);
    }
    EXPECT_LE(c_chip.worstDegradation, cfg.gamma + 0.005);

    // On a heterogeneous mix, per-core domains buy extra savings.
    CoScalePolicy per_core(cfg.numCores, cfg.gamma);
    Comparison c_pc =
        compare(base, coscale::run(RunRequest::forMix(cfg, mixByName("MIX3")).with(per_core)));
    EXPECT_GE(c_pc.fullSystemSavings,
              c_chip.fullSystemSavings - 0.002);
}

TEST(Runner, DramTrafficAccounted)
{
    SystemConfig cfg = smallConfig();
    BaselinePolicy b;
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MEM3")).with(b));
    EXPECT_GT(r.dramReads, 100'000u);
    EXPECT_GT(r.dramWrites, 10'000u);
    EXPECT_EQ(r.dramPrefetches, 0u);  // prefetcher off by default
    EXPECT_EQ(r.dramTraffic(), r.dramReads + r.dramWrites);
}

TEST(Runner, EnergyPerInstrIsPlausible)
{
    SystemConfig cfg = smallConfig();
    BaselinePolicy b;
    RunResult r = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(b));
    // ~145 W over ~16 cores at ~2 GIPS each: a few nJ per instruction.
    EXPECT_GT(r.energyPerInstrNj(), 1.0);
    EXPECT_LT(r.energyPerInstrNj(), 50.0);
}

} // namespace
} // namespace coscale
