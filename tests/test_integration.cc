/**
 * @file
 * End-to-end integration and property tests: full workload runs under
 * every policy, checking the paper's headline behavioural claims —
 * CoScale and Semi-coordinated respect the bound, Uncoordinated
 * violates it, Offline matches or beats CoScale, energy savings are
 * real, and runs are deterministic.
 *
 * These run at a small time scale (0.05) to keep ctest fast; the
 * bench harnesses repeat them at the default scale.
 */

#include <gtest/gtest.h>

#include "policy/coscale_policy.hh"
#include "policy/offline.hh"
#include "policy/simple_policies.hh"
#include "policy/uncoordinated.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

SystemConfig
testConfig(double scale = 0.05)
{
    return makeScaledConfig(scale);
}

RunResult
baselineFor(const SystemConfig &cfg, const std::string &mix)
{
    BaselinePolicy b;
    return coscale::run(RunRequest::forMix(cfg, mixByName(mix)).with(b));
}

// --- Parameterized bound-compliance sweep (Fig. 6 property) ---

class BoundCompliance : public ::testing::TestWithParam<const char *>
{
};

TEST_P(BoundCompliance, CoScaleStaysWithinBound)
{
    SystemConfig cfg = testConfig();
    RunResult base = baselineFor(cfg, GetParam());
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult run =
        coscale::run(RunRequest::forMix(cfg, mixByName(GetParam()))
                         .with(policy));
    Comparison c = compare(base, run);
    EXPECT_LE(c.worstDegradation, cfg.gamma + 0.005) << GetParam();
    EXPECT_GT(c.fullSystemSavings, 0.05) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Mixes, BoundCompliance,
                         ::testing::Values("ILP2", "MID1", "MID3",
                                           "MIX2", "MEM3"));

// --- Parameterized bound sweep (Fig. 10 property) ---

class GammaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(GammaSweep, BoundRespectedAtEveryGamma)
{
    SystemConfig cfg = testConfig();
    cfg.gamma = GetParam();
    RunResult base = baselineFor(cfg, "MID1");
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(policy));
    Comparison c = compare(base, run);
    EXPECT_LE(c.worstDegradation, cfg.gamma + 0.006);
    if (cfg.gamma >= 0.05) {
        EXPECT_GT(c.fullSystemSavings, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Bounds, GammaSweep,
                         ::testing::Values(0.01, 0.05, 0.15, 0.20));

// --- Policy-contrast properties (Fig. 8/9) ---

TEST(Policies, UncoordinatedViolatesTheBound)
{
    SystemConfig cfg = testConfig();
    RunResult base = baselineFor(cfg, "MID1");
    UncoordinatedPolicy policy(cfg.numCores, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(policy));
    Comparison c = compare(base, run);
    EXPECT_GT(c.worstDegradation, cfg.gamma + 0.02);
}

TEST(Policies, SemiCoordinatedMeetsBoundButSavesLessThanCoScale)
{
    SystemConfig cfg = testConfig();
    RunResult base = baselineFor(cfg, "MID1");
    SemiCoordinatedPolicy semi(cfg.numCores, cfg.gamma);
    RunResult semi_run = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(semi));
    Comparison c_semi = compare(base, semi_run);
    EXPECT_LE(c_semi.worstDegradation, cfg.gamma + 0.006);

    CoScalePolicy cs(cfg.numCores, cfg.gamma);
    RunResult cs_run = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(cs));
    Comparison c_cs = compare(base, cs_run);
    EXPECT_GT(c_cs.fullSystemSavings,
              c_semi.fullSystemSavings - 0.005);
}

TEST(Policies, OfflineIsAtLeastAsGoodAsCoScale)
{
    SystemConfig cfg = testConfig();
    RunResult base = baselineFor(cfg, "MID3");
    CoScalePolicy cs(cfg.numCores, cfg.gamma);
    RunResult cs_run = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(cs));
    OfflinePolicy off(cfg.numCores, cfg.gamma);
    RunResult off_run = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(off));
    Comparison c_cs = compare(base, cs_run);
    Comparison c_off = compare(base, off_run);
    // Offline has a perfect profile and exhaustive search: it should
    // be at least about as good (small tolerance for run dynamics).
    EXPECT_GE(c_off.fullSystemSavings,
              c_cs.fullSystemSavings - 0.02);
    EXPECT_LE(c_off.worstDegradation, cfg.gamma + 0.006);
}

TEST(Policies, SingleKnobPoliciesSaveLessSystemEnergy)
{
    SystemConfig cfg = testConfig();
    RunResult base = baselineFor(cfg, "MID1");

    MemScalePolicy ms(cfg.numCores, cfg.gamma);
    Comparison c_ms =
        compare(base, coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(ms)));
    CpuOnlyPolicy co(cfg.numCores, cfg.gamma);
    Comparison c_co =
        compare(base, coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(co)));
    CoScalePolicy cs(cfg.numCores, cfg.gamma);
    Comparison c_cs =
        compare(base, coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(cs)));

    EXPECT_GT(c_cs.fullSystemSavings, c_ms.fullSystemSavings);
    EXPECT_GT(c_cs.fullSystemSavings, c_co.fullSystemSavings);
    // The unmanaged component's energy rises (longer runtime).
    EXPECT_LT(c_ms.cpuSavings, 0.02);
    EXPECT_LT(c_co.memSavings, 0.02);
    // But each conserves its own component.
    EXPECT_GT(c_ms.memSavings, 0.05);
    EXPECT_GT(c_co.cpuSavings, 0.05);
}

TEST(Policies, ClassComponentOrdering)
{
    // Fig. 5: ILP achieves the highest memory and lowest CPU energy
    // savings; MEM the reverse.
    SystemConfig cfg = testConfig();
    auto coscale_cmp = [&](const std::string &mix) {
        RunResult base = baselineFor(cfg, mix);
        CoScalePolicy p(cfg.numCores, cfg.gamma);
        return compare(base, coscale::run(RunRequest::forMix(cfg, mixByName(mix)).with(p)));
    };
    Comparison ilp = coscale_cmp("ILP2");
    Comparison mem = coscale_cmp("MEM3");
    EXPECT_GT(ilp.memSavings, mem.memSavings + 0.10);
    EXPECT_GT(mem.cpuSavings, ilp.cpuSavings + 0.10);
}

namespace {

/** Count direction reversals of a per-epoch index series. */
int
reversals(const std::vector<EpochLog> &epochs,
          int (*extract)(const EpochLog &))
{
    int count = 0;
    int last_dir = 0;
    for (size_t e = 1; e < epochs.size(); ++e) {
        int prev = extract(epochs[e - 1]);
        int cur = extract(epochs[e]);
        int dir = cur > prev ? 1 : (cur < prev ? -1 : 0);
        if (dir != 0 && last_dir != 0 && dir != last_dir)
            count += 1;
        if (dir != 0)
            last_dir = dir;
    }
    return count;
}

int
memOf(const EpochLog &e)
{
    return e.applied.memIdx;
}

} // namespace

TEST(Policies, SemiCoordinatedOscillatesMoreThanCoScale)
{
    // Section 4.2.2 / Fig. 7: the semi-coordinated managers
    // over-correct in alternating directions; CoScale does not.
    SystemConfig cfg = testConfig(0.1);
    SemiCoordinatedPolicy semi(cfg.numCores, cfg.gamma);
    RunResult semi_run = coscale::run(RunRequest::forMix(cfg, mixByName("MIX2")).with(semi));
    CoScalePolicy cs(cfg.numCores, cfg.gamma);
    RunResult cs_run = coscale::run(RunRequest::forMix(cfg, mixByName("MIX2")).with(cs));

    int semi_rev = reversals(semi_run.epochs, memOf);
    int cs_rev = reversals(cs_run.epochs, memOf);
    EXPECT_GT(semi_rev, cs_rev + 2);
    // The oscillation spans several ladder steps, not single-step
    // dithering.
    int span = 0;
    for (const auto &e : semi_run.epochs)
        span = std::max(span, e.applied.memIdx);
    int floor_idx = 99;
    for (const auto &e : semi_run.epochs)
        floor_idx = std::min(floor_idx, e.applied.memIdx);
    EXPECT_GE(span - floor_idx, 4);
}

TEST(PagePolicy, ClosedPageWinsForMultiprogrammedMixes)
{
    // Section 4.1 (citing Sudan et al.): closed-page row-buffer
    // management outperforms open-page for multi-core CPUs with
    // interleaved traffic.
    SystemConfig closed_cfg = testConfig();
    SystemConfig open_cfg = closed_cfg;
    open_cfg.memBackend.rowPolicy = RowPolicy::Open;
    applyMemBackend(open_cfg, open_cfg.memBackend);
    BaselinePolicy b1, b2;
    RunResult closed_run = coscale::run(RunRequest::forMix(closed_cfg, mixByName("MEM3")).with(b1));
    RunResult open_run = coscale::run(RunRequest::forMix(open_cfg, mixByName("MEM3")).with(b2));
    EXPECT_LE(closed_run.finishTick,
              static_cast<Tick>(open_run.finishTick * 1.02));
}

TEST(Runner, RunsAreDeterministic)
{
    SystemConfig cfg = testConfig();
    CoScalePolicy p1(cfg.numCores, cfg.gamma);
    CoScalePolicy p2(cfg.numCores, cfg.gamma);
    RunResult a = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(p1));
    RunResult b = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(p2));
    EXPECT_EQ(a.finishTick, b.finishTick);
    EXPECT_DOUBLE_EQ(a.totalEnergyJ(), b.totalEnergyJ());
    ASSERT_EQ(a.epochs.size(), b.epochs.size());
    for (size_t e = 0; e < a.epochs.size(); ++e) {
        EXPECT_EQ(a.epochs[e].applied.memIdx,
                  b.epochs[e].applied.memIdx);
        EXPECT_EQ(a.epochs[e].applied.coreIdx,
                  b.epochs[e].applied.coreIdx);
    }
}

TEST(Runner, EnergyBreakdownIsConsistent)
{
    SystemConfig cfg = testConfig();
    RunResult base = baselineFor(cfg, "ILP2");
    EXPECT_GT(base.cpuEnergyJ, 0.0);
    EXPECT_GT(base.memEnergyJ, 0.0);
    EXPECT_GT(base.otherEnergyJ, 0.0);
    EXPECT_NEAR(base.totalEnergyJ(),
                base.cpuEnergyJ + base.memEnergyJ + base.otherEnergyJ,
                1e-9);
    // CPU ~60%, memory ~30%, other ~10% (loose; depends on workload).
    double total = base.totalEnergyJ();
    EXPECT_GT(base.cpuEnergyJ / total, 0.45);
    EXPECT_GT(base.memEnergyJ / total, 0.12);
    EXPECT_NEAR(base.otherEnergyJ / total, 0.10, 0.04);
}

TEST(Runner, EpochCountsScaleWithWorkloadClass)
{
    // Section 4.1: MEM workloads run for many more epochs than ILP.
    SystemConfig cfg = testConfig();
    RunResult ilp = baselineFor(cfg, "ILP2");
    RunResult mem = baselineFor(cfg, "MEM1");
    EXPECT_GT(mem.epochs.size(), 2 * ilp.epochs.size());
}

TEST(Runner, MeasuredMpkiTracksTable1)
{
    SystemConfig cfg = testConfig();
    for (const char *name : {"ILP2", "MID1", "MEM3"}) {
        RunResult base = baselineFor(cfg, name);
        const WorkloadMix &mix = mixByName(name);
        // Calibration targets the default 0.2 scale; at this test's
        // 0.05 scale cold-start misses weigh ~4x more, so allow a
        // larger absolute band.
        EXPECT_NEAR(base.measuredMpki, mix.tableMpki,
                    mix.tableMpki * 0.45 + 0.30)
            << name;
    }
}

TEST(Runner, BaselineNeverTransitions)
{
    SystemConfig cfg = testConfig();
    RunResult base = baselineFor(cfg, "ILP2");
    for (const auto &e : base.epochs) {
        EXPECT_EQ(e.applied.memIdx, 0);
        for (int idx : e.applied.coreIdx)
            EXPECT_EQ(idx, 0);
    }
}

TEST(Runner, CustomAppsRun)
{
    SystemConfig cfg = testConfig();
    cfg.numCores = 4;
    cfg.instrBudget = 200'000;
    std::vector<AppSpec> apps;
    for (int i = 0; i < 4; ++i) {
        AppSpec s;
        s.name = "custom";
        AppPhase p;
        p.instructions = 200'000;
        p.baseCpi = 1.0;
        p.l1Mpki = 15;
        p.llcMpki = 2.0;
        s.phases.push_back(p);
        apps.push_back(s);
    }
    CoScalePolicy policy(4, 0.10);
    RunResult r = coscale::run(RunRequest::forApps(cfg, "custom", apps).with(policy));
    EXPECT_GT(r.totalInstrs, 4u * 200'000u);
    EXPECT_GT(r.totalEnergyJ(), 0.0);
}

} // namespace
} // namespace coscale
