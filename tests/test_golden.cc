/**
 * @file
 * Golden-model property tests: the LLC against a straightforward
 * reference implementation over randomized access streams,
 * memory-controller queueing behaviour against first-principles
 * expectations (latency monotone in load and in bus period), and
 * byte-identity pins for the event-driven simulation kernel (clean
 * and faulted golden traces, deep-copy/re-seat equivalence, and
 * epoch-slicing invariance).
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <sstream>
#include <vector>

#include "cache/llc.hh"
#include "common/rng.hh"
#include "exp/policies.hh"
#include "golden_util.hh"
#include "memctrl/mem_ctrl.hh"
#include "obs/trace_sink.hh"
#include "sim/runner.hh"
#include "workloads/spec_catalogue.hh"

namespace coscale {
namespace {

/** Textbook set-associative LRU cache, deliberately naive. */
class ReferenceCache
{
  public:
    ReferenceCache(std::uint64_t blocks, int ways)
        : ways(ways), sets(blocks / static_cast<std::uint64_t>(ways))
    {
        lru.resize(sets);
        dirty.resize(sets);
    }

    struct Outcome
    {
        bool hit;
        bool writeback;
        BlockAddr victim;
    };

    Outcome
    access(BlockAddr addr, bool write)
    {
        Outcome out{false, false, 0};
        std::uint64_t set = addr % sets;
        auto &order = lru[set];
        auto &d = dirty[set];
        for (auto it = order.begin(); it != order.end(); ++it) {
            if (*it == addr) {
                out.hit = true;
                order.erase(it);
                order.push_front(addr);
                if (write)
                    d[addr] = true;
                return out;
            }
        }
        if (static_cast<int>(order.size()) == ways) {
            BlockAddr victim = order.back();
            order.pop_back();
            if (d[victim]) {
                out.writeback = true;
                out.victim = victim;
            }
            d.erase(victim);
        }
        order.push_front(addr);
        d[addr] = write;
        return out;
    }

  private:
    int ways;
    std::uint64_t sets;
    std::vector<std::list<BlockAddr>> lru;
    std::vector<std::map<BlockAddr, bool>> dirty;
};

class LlcGolden : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(LlcGolden, MatchesReferenceOverRandomStream)
{
    LlcConfig cfg;
    cfg.sizeBytes = 32 * 1024;  // 512 blocks
    cfg.ways = 4;
    Llc llc(cfg);
    ReferenceCache ref(cfg.sizeBytes / blockBytes, cfg.ways);

    Rng rng(GetParam());
    for (int i = 0; i < 30000; ++i) {
        // Mixture of hot reuse and streaming, with writes.
        BlockAddr addr = rng.bernoulli(0.6)
                             ? rng.range(400)
                             : rng.range(1 << 20);
        bool write = rng.bernoulli(0.3);

        LlcAccessResult got = llc.access(addr, write);
        ReferenceCache::Outcome want = ref.access(addr, write);

        ASSERT_EQ(got.hit, want.hit) << "access " << i;
        ASSERT_EQ(got.writeback, want.writeback) << "access " << i;
        if (want.writeback) {
            ASSERT_EQ(got.writebackAddr, want.victim) << "access " << i;
        }
    }
    EXPECT_GT(llc.counters().hits, 10000u);
    EXPECT_GT(llc.counters().writebacks, 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LlcGolden,
                         ::testing::Values(11u, 22u, 33u, 44u));

// --- Memory-controller queueing properties ---

/** Average demand-read latency for a Poisson-ish load. */
double
avgLatencyNs(int freq_idx, double reads_per_us, std::uint64_t seed)
{
    MemCtrlConfig cfg;
    cfg.ladder = defaultMemLadder();
    MemCtrl mc(cfg, 0);
    mc.setFrequency(ChannelSel::all(), freq_idx, 0);
    Tick start = 20 * tickPerUs;  // past any recalibration halt

    Rng rng(seed);
    Tick now = start;
    std::uint64_t token = 1;
    std::vector<Tick> arrivals;
    double total_ns = 0.0;
    int completed = 0;

    for (int i = 0; i < 4000; ++i) {
        now += static_cast<Tick>(
            rng.exponential(1000.0 / reads_per_us) * tickPerNs);
        MemReq r;
        r.addr = rng.next() & 0xffffff;
        r.kind = ReqKind::Read;
        r.core = 0;
        r.arrival = now;
        r.token = token++;
        arrivals.push_back(now);
        mc.enqueue(r);
        // Drain anything ready before the next arrival.
        while (mc.nextEventTick() <= now) {
            auto done = mc.step();
            if (done) {
                total_ns += ticksToNs(
                    done->finishAt
                    - arrivals[static_cast<size_t>(done->token - 1)]);
                completed += 1;
            }
        }
    }
    while (mc.nextEventTick() != maxTick) {
        auto done = mc.step();
        if (done) {
            total_ns += ticksToNs(
                done->finishAt
                - arrivals[static_cast<size_t>(done->token - 1)]);
            completed += 1;
        }
    }
    return total_ns / completed;
}

TEST(MemCtrlQueueing, LatencyGrowsWithLoad)
{
    double light = avgLatencyNs(0, 20.0, 7);    // 20 reads/us
    double medium = avgLatencyNs(0, 150.0, 7);
    double heavy = avgLatencyNs(0, 400.0, 7);
    EXPECT_LT(light, medium);
    EXPECT_LT(medium, heavy);
    // Unloaded latency is near the queue-free service time (~50 ns).
    EXPECT_NEAR(light, 50.0, 12.0);
}

TEST(MemCtrlQueueing, LatencyGrowsAsBusSlows)
{
    double fast = avgLatencyNs(0, 100.0, 9);   // 800 MHz
    double mid = avgLatencyNs(5, 100.0, 9);    // 470 MHz
    double slow = avgLatencyNs(9, 100.0, 9);   // 200 MHz
    EXPECT_LT(fast, mid);
    EXPECT_LT(mid, slow);
    // At 200 MHz the burst alone adds 15 ns over 800 MHz; with
    // queueing on top the gap must exceed that.
    EXPECT_GT(slow - fast, 15.0);
}

TEST(MemCtrlQueueing, BandwidthCapsAtBusRate)
{
    // Saturating load: completions per second cannot exceed the data
    // bus rate of 1 burst per tBURST per channel.
    MemCtrlConfig cfg;
    cfg.ladder = defaultMemLadder();
    MemCtrl mc(cfg, 0);
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        MemReq r;
        r.addr = rng.next() & 0xffffff;
        r.kind = ReqKind::Read;
        r.core = 0;
        r.arrival = 0;
        r.token = static_cast<std::uint64_t>(i + 1);
        mc.enqueue(r);
    }
    Tick last = 0;
    int completed = 0;
    while (mc.nextEventTick() != maxTick) {
        auto done = mc.step();
        if (done) {
            last = std::max(last, done->finishAt);
            completed += 1;
        }
    }
    double secs = ticksToSeconds(last);
    double peak_reads_per_sec = 4.0 * 800e6 / 4.0;  // channels * f/burst
    EXPECT_LE(completed / secs, peak_reads_per_sec * 1.02);
    // And it should get reasonably close to peak under saturation.
    EXPECT_GE(completed / secs, peak_reads_per_sec * 0.5);
}

// --- Event-kernel byte-identity pins ---
//
// The event-driven kernel (sim/event_queue.hh) replaced the polling
// loop; these tests pin that it changed *how* time advances, never
// *what* happens. The fixtures are the same checked-in bytes that
// test_obs (clean) and test_fault (faulted) compare against — they
// were recorded under the polling loop and must never be regenerated
// to accommodate a kernel change.

/** The 2-core fixture configuration (same as test_obs/test_fault). */
SystemConfig
fixtureConfig()
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 2;
    // Pin the paper-default backend so the fixtures stay byte-identical
    // even under CI's COSCALE_MEM_SCHED/ROW_POLICY/DRAM_STANDARD leg.
    applyMemBackend(cfg, MemBackendSel{});
    // Likewise pin the knob space: at 2 cores / 16 ways the LLC
    // way-partition gate would open under COSCALE_KNOB_LLC_WAYS=1
    // (CI's knob-partition leg) and change miss allocation.
    cfg.knobs.llcWays = false;
    return cfg;
}

TEST(KernelGolden, CleanTraceBytesMatchPollingEraFixture)
{
    SystemConfig cfg = fixtureConfig();
    RunRequest req = RunRequest::forMix(cfg, mixByName("MID1"))
                         .with(exp::requirePolicyFactory(
                             "coscale", cfg.numCores, cfg.gamma));
    std::ostringstream os;
    {
        JsonlTraceSink sink(os);
        req.withTrace(sink);
        coscale::run(req);
        sink.finish();
    }
    checkGolden("mid1_2core_coscale.jsonl", os.str());
}

TEST(KernelGolden, FaultedTraceBytesMatchPollingEraFixture)
{
    SystemConfig cfg = fixtureConfig();
    fault::FaultPlan plan;  // test_fault's mixedPlan(), which cut
                            // the fixture
    plan.counterNoiseAmp = 0.05;
    plan.counterNoiseProb = 0.25;
    plan.transitionDenyProb = 0.4;
    RunRequest req = RunRequest::forMix(cfg, mixByName("MID1"))
                         .with(exp::requirePolicyFactory(
                             "coscale", cfg.numCores, cfg.gamma))
                         .withFaults(plan);
    std::ostringstream os;
    {
        JsonlTraceSink sink(os);
        req.withTrace(sink);
        coscale::run(req);
        sink.finish();
    }
    checkGolden("mid1_2core_coscale_faulted.jsonl", os.str());
}

/**
 * A non-default backend fixture: FR-FCFS scheduling, open-page rows,
 * DDR4 timing. Pins the pluggable-backend plumbing end to end — if a
 * refactor silently changes how any of the three interfaces feeds the
 * controller, these bytes move.
 */
TEST(KernelGolden, FrFcfsOpenDdr4TraceBytesMatchFixture)
{
    SystemConfig cfg = fixtureConfig();
    applyMemBackend(cfg, MemBackendSel{MemSched::FrFcfs,
                                       RowPolicy::Open,
                                       DramStandard::Ddr4});
    RunRequest req = RunRequest::forMix(cfg, mixByName("MID1"))
                         .with(exp::requirePolicyFactory(
                             "coscale", cfg.numCores, cfg.gamma));
    std::ostringstream os;
    {
        JsonlTraceSink sink(os);
        req.withTrace(sink);
        coscale::run(req);
        sink.finish();
    }
    checkGolden("mid1_2core_frfcfs_open_ddr4.jsonl", os.str());
}

/**
 * Deep-copy/re-seat: the Offline policy clones the System mid-run
 * (oracleProfile); the clone's event queue is rebuilt from the cloned
 * components. Original and clone must then evolve identically.
 */
TEST(KernelCopy, CloneContinuesIdenticallyAfterReseat)
{
    SystemConfig cfg = fixtureConfig();
    std::vector<AppSpec> apps =
        expandMix(mixByName("MID1"), cfg.numCores, cfg.instrBudget);
    System original(cfg, apps);
    original.run(3 * cfg.epochLen);

    System clone = original;  // re-seats queue membership
    ASSERT_EQ(clone.now(), original.now());
    ASSERT_EQ(clone.eventsDispatched(), original.eventsDispatched());

    Tick until = original.now() + 5 * cfg.epochLen;
    original.run(until);
    clone.run(until);

    EXPECT_EQ(clone.now(), original.now());
    EXPECT_EQ(clone.eventsDispatched(), original.eventsDispatched());
    CounterSnapshot a = original.snapshot();
    CounterSnapshot b = clone.snapshot();
    EXPECT_EQ(a.llc.accesses, b.llc.accesses);
    EXPECT_EQ(a.llc.hits, b.llc.hits);
    EXPECT_EQ(a.mem.readReqs, b.mem.readReqs);
    EXPECT_EQ(a.mem.writeReqs, b.mem.writeReqs);
    ASSERT_EQ(a.cores.size(), b.cores.size());
    for (size_t i = 0; i < a.cores.size(); ++i) {
        EXPECT_EQ(a.cores[i].tic, b.cores[i].tic) << "core " << i;
        EXPECT_EQ(a.cores[i].tla, b.cores[i].tla) << "core " << i;
    }
}

/**
 * Epoch-slicing invariance: driving the kernel one epoch at a time
 * (the runner's pattern) must dispatch the same event stream as one
 * coarse run() over the whole window.
 *
 * The granularity matters: run(until) leaves now() == until, and a
 * back-dated command exposed right after that boundary fires at the
 * bumped clock (inherited polling-era semantics the golden fixtures
 * bake in), so invariance holds at the granularity the fixtures were
 * recorded at — epoch boundaries — not for arbitrary sub-epoch
 * slicing. This pin keeps the runner's per-epoch driving equivalent
 * to a coarse run on the fixture workload.
 */
TEST(KernelDeterminism, EpochSlicingDoesNotChangeTheEventStream)
{
    SystemConfig cfg = fixtureConfig();
    std::vector<AppSpec> apps =
        expandMix(mixByName("MID1"), cfg.numCores, cfg.instrBudget);
    System coarse(cfg, apps);
    System fine(cfg, apps);

    Tick until = 8 * cfg.epochLen;
    coarse.run(until);
    while (fine.now() < until)
        fine.run(fine.now() + cfg.epochLen);

    EXPECT_EQ(coarse.now(), fine.now());
    EXPECT_EQ(coarse.eventsDispatched(), fine.eventsDispatched());
    CounterSnapshot a = coarse.snapshot();
    CounterSnapshot b = fine.snapshot();
    EXPECT_EQ(a.llc.accesses, b.llc.accesses);
    EXPECT_EQ(a.mem.readReqs, b.mem.readReqs);
    for (size_t i = 0; i < a.cores.size(); ++i)
        EXPECT_EQ(a.cores[i].tic, b.cores[i].tic) << "core " << i;
}

} // namespace
} // namespace coscale
