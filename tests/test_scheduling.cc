/**
 * @file
 * Tests for Section 3.3's context-switching support: trace swapping
 * on the core, round-robin rotation in the System, per-thread
 * instruction accounting and completion, and per-thread slack in
 * CoScale when there are more applications than cores.
 */

#include <gtest/gtest.h>

#include <set>

#include "policy/coscale_policy.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

SystemConfig
schedConfig(int quantum = 2, int cores = 4, double scale = 0.02)
{
    SystemConfig cfg = makeScaledConfig(scale);
    cfg.numCores = cores;
    cfg.schedQuantumEpochs = quantum;
    return cfg;
}

std::vector<AppSpec>
makeApps(int count, std::uint64_t budget)
{
    std::vector<AppSpec> apps;
    for (int i = 0; i < count; ++i) {
        AppSpec s;
        s.name = "app" + std::to_string(i);
        AppPhase p;
        p.instructions = budget;
        p.baseCpi = 1.0 + 0.1 * (i % 4);
        p.l1Mpki = 15.0 + 5.0 * (i % 3);
        p.llcMpki = 0.5 + 1.0 * (i % 4);
        s.phases.push_back(p);
        apps.push_back(s);
    }
    return apps;
}

TEST(Scheduling, RotationMovesAppsAcrossCores)
{
    SystemConfig cfg = schedConfig();
    auto apps = makeApps(6, cfg.instrBudget);
    System sys(cfg, apps);
    EXPECT_EQ(sys.numApps(), 6);
    EXPECT_EQ(sys.appAssignment(), (std::vector<int>{0, 1, 2, 3}));

    sys.run(100 * tickPerUs);
    sys.rotateApps();
    // Two parked apps (4, 5) displaced apps on cores 0 and 1.
    EXPECT_EQ(sys.appAssignment(), (std::vector<int>{4, 5, 2, 3}));

    sys.run(200 * tickPerUs);
    sys.rotateApps();
    // The round-robin cursor continues with cores 2 and 3; the queue
    // releases the longest-parked apps (0, 1).
    EXPECT_EQ(sys.appAssignment(), (std::vector<int>{4, 5, 0, 1}));
}

TEST(Scheduling, EveryAppEventuallyRuns)
{
    SystemConfig cfg = schedConfig();
    auto apps = makeApps(7, cfg.instrBudget);
    System sys(cfg, apps);
    std::set<int> seen;
    for (int round = 0; round < 10; ++round) {
        for (int a : sys.appAssignment())
            seen.insert(a);
        sys.run(sys.now() + 100 * tickPerUs);
        sys.rotateApps();
    }
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Scheduling, PerAppInstructionAccounting)
{
    SystemConfig cfg = schedConfig();
    auto apps = makeApps(6, cfg.instrBudget);
    System sys(cfg, apps);

    sys.run(300 * tickPerUs);
    sys.rotateApps();
    sys.run(600 * tickPerUs);
    sys.rotateApps();

    // Total per-core retirements equal the per-app credits for the
    // harvested windows (cores 0/1 were harvested twice, 2/3 once...
    // so compare totals after a final full harvest via completions).
    std::uint64_t core_total = 0;
    for (int i = 0; i < sys.numCores(); ++i)
        core_total += sys.core(i).counters().tic;
    EXPECT_GT(core_total, 100'000u);
}

TEST(Scheduling, CompletionDetectedAcrossMigrations)
{
    SystemConfig cfg = schedConfig();
    cfg.instrBudget = 150'000;  // small budgets finish quickly
    auto apps = makeApps(6, cfg.instrBudget);
    System sys(cfg, apps);

    int guard = 0;
    while (!sys.allAppsDone() && guard++ < 200) {
        sys.run(sys.now() + 100 * tickPerUs);
        sys.rotateApps();
    }
    EXPECT_TRUE(sys.allAppsDone());
    auto completions = sys.appCompletionTicks();
    ASSERT_EQ(completions.size(), 6u);
    for (Tick t : completions) {
        EXPECT_NE(t, maxTick);
        EXPECT_GT(t, 0u);
    }
    // Apps parked at the start must complete later than one that ran
    // from tick zero... at minimum, all completions are distinct
    // enough that parked apps are not marked complete spuriously.
    EXPECT_EQ(sys.lastCompletionTick(),
              *std::max_element(completions.begin(), completions.end()));
}

TEST(Scheduling, DeepCopyCarriesSchedulerState)
{
    SystemConfig cfg = schedConfig();
    auto apps = makeApps(6, cfg.instrBudget);
    System sys(cfg, apps);
    sys.run(200 * tickPerUs);
    sys.rotateApps();

    System clone = sys;
    EXPECT_EQ(clone.appAssignment(), sys.appAssignment());
    sys.run(500 * tickPerUs);
    clone.run(500 * tickPerUs);
    for (int i = 0; i < cfg.numCores; ++i) {
        EXPECT_EQ(sys.core(i).counters().tic,
                  clone.core(i).counters().tic);
    }
}

TEST(Scheduling, RunnerRotatesAtQuantum)
{
    SystemConfig cfg = schedConfig(/*quantum=*/1, /*cores=*/4, 0.03);
    cfg.instrBudget /= 4;  // keep the run short
    auto apps = makeApps(8, cfg.instrBudget);
    CoScalePolicy policy(8, cfg.gamma);  // slack per APPLICATION
    RunResult r = coscale::run(RunRequest::forApps(cfg, "sched-mix", apps).with(policy));
    ASSERT_EQ(r.appCompletion.size(), 8u);
    for (Tick t : r.appCompletion)
        EXPECT_NE(t, maxTick);
    EXPECT_GT(r.totalInstrs, 8u * cfg.instrBudget * 9 / 10);
}

TEST(Scheduling, CoScaleHoldsPerThreadBoundUnderScheduling)
{
    // The Section 3.3 claim: per-thread slack keeps each thread's
    // degradation bounded even as threads migrate across cores.
    //
    // Caveat of wall-clock completion under time-slicing: a thread
    // that needs slightly more CPU time than its last scheduled
    // window must wait out one full park period before finishing, so
    // the worst-case *wall-clock* degradation carries a quantization
    // allowance of one scheduling cycle on top of gamma.
    SystemConfig cfg = schedConfig(/*quantum=*/2, /*cores=*/4, 0.05);
    auto apps = makeApps(8, cfg.instrBudget);

    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forApps(cfg, "sched-mix", apps).with(b));
    CoScalePolicy policy(8, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forApps(cfg, "sched-mix", apps).with(policy));
    Comparison c = compare(base, run);

    Tick min_base = maxTick;
    for (Tick t : base.appCompletion)
        min_base = std::min(min_base, t);
    double park_cycle =
        static_cast<double>(cfg.schedQuantumEpochs) * cfg.epochLen
        * (8.0 - 4.0) / 4.0;
    double quantization = park_cycle / static_cast<double>(min_base);

    EXPECT_LE(c.avgDegradation, cfg.gamma + 0.01);
    EXPECT_LE(c.worstDegradation, cfg.gamma + quantization + 0.01);
    EXPECT_GT(c.fullSystemSavings, 0.03);
}

TEST(Scheduling, ContextSwitchPenaltyIsCharged)
{
    SystemConfig cfg = schedConfig();
    auto apps = makeApps(6, cfg.instrBudget);
    System sys(cfg, apps);
    sys.run(100 * tickPerUs);
    Tick before = sys.core(0).counters().transitionTicks;
    sys.rotateApps();  // core 0 swaps
    EXPECT_EQ(sys.core(0).counters().transitionTicks,
              before + cfg.contextSwitchTicks);
}

} // namespace
} // namespace coscale
