/**
 * @file
 * The observability layer under test: trace event/sink unit
 * behaviour, the metrics registry, event inventory of a traced run,
 * golden-trace fixtures byte-compared against tests/golden/, and
 * byte-identity of traces between serial and multi-worker engine
 * execution.
 *
 * After an intentional simulator or trace-schema change, regenerate
 * the fixtures with
 *
 *   COSCALE_REGEN_GOLDEN=1 ./build/tests/test_obs
 *
 * then review the tests/golden/ diff and commit it alongside the
 * change that caused it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/engine.hh"
#include "exp/policies.hh"
#include "golden_util.hh"
#include "obs/metrics.hh"
#include "obs/trace_sink.hh"
#include "policy/coscale_policy.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

// --- TraceEvent ---

TEST(TraceEvent, KeepsFieldOrderTypesAndLookup)
{
    TraceEvent ev(42, "cat", "label");
    ev.f("d", 1.5)
        .f("u", std::uint64_t{7})
        .f("i", -3)
        .f("s", std::string("text"))
        .f("dv", std::vector<double>{1.0, 2.0})
        .f("iv", std::vector<int>{4, 5});

    EXPECT_EQ(ev.tick(), 42u);
    EXPECT_EQ(ev.category(), "cat");
    EXPECT_EQ(ev.name(), "label");
    ASSERT_EQ(ev.fields().size(), 6u);
    EXPECT_EQ(ev.fields()[0].key, "d");
    EXPECT_EQ(ev.fields()[0].kind, TraceField::Kind::F64);
    EXPECT_EQ(ev.fields()[3].kind, TraceField::Kind::Str);
    EXPECT_EQ(ev.fields()[5].kind, TraceField::Kind::IntVec);

    EXPECT_DOUBLE_EQ(ev.num("d"), 1.5);
    EXPECT_DOUBLE_EQ(ev.num("u"), 7.0);
    EXPECT_DOUBLE_EQ(ev.num("i"), -3.0);
    EXPECT_DOUBLE_EQ(ev.num("s"), 0.0);   // non-numeric
    EXPECT_DOUBLE_EQ(ev.num("nope"), 0.0);
    ASSERT_NE(ev.find("s"), nullptr);
    EXPECT_EQ(ev.find("s")->str, "text");
    EXPECT_EQ(ev.find("nope"), nullptr);
}

// --- JSONL backend ---

TEST(JsonlSink, WritesOneSelfContainedObjectPerLine)
{
    std::ostringstream os;
    JsonlTraceSink sink(os);
    sink.write(TraceEvent(5, "epoch", "epoch")
                   .f("mem_idx", 3)
                   .f("cpu_w", 12.5)
                   .f("core_idx", std::vector<int>{0, 2}));
    sink.write(TraceEvent(9, "run", "summary").f("mix", std::string("MID1")));
    sink.finish();
    EXPECT_EQ(os.str(),
              "{\"tick\":5,\"cat\":\"epoch\",\"name\":\"epoch\","
              "\"args\":{\"mem_idx\":3,\"cpu_w\":12.5,"
              "\"core_idx\":[0,2]}}\n"
              "{\"tick\":9,\"cat\":\"run\",\"name\":\"summary\","
              "\"args\":{\"mix\":\"MID1\"}}\n");
}

// --- Chrome trace_event backend ---

TEST(ChromeSink, EmitsCounterAndInstantPhasesWithIdempotentFinish)
{
    std::ostringstream os;
    ChromeTraceSink sink(os);
    // All-scalar args -> a counter ("C") track.
    sink.write(TraceEvent(2000000, "epoch", "power").f("cpu_w", 10.0));
    // A string field -> a global instant ("i") event.
    sink.write(TraceEvent(3000000, "run", "summary")
                   .f("mix", std::string("MID1")));
    sink.finish();
    std::string once = os.str();
    sink.finish();  // must not append a second trailer
    EXPECT_EQ(os.str(), once);

    EXPECT_EQ(once.substr(0, 16), "{\"traceEvents\":[");
    EXPECT_EQ(once.substr(once.size() - 4), "\n]}\n");
    EXPECT_NE(once.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(once.find("\"ph\":\"i\""), std::string::npos);
    // Timestamps are simulated microseconds: 2e6 ps -> 2 us.
    EXPECT_NE(once.find("\"ts\":2,"), std::string::npos);
}

// --- format parsing + file sink errors ---

TEST(TraceFormat, ParsesKnownNamesRejectsOthers)
{
    TraceFormat fmt = TraceFormat::Chrome;
    EXPECT_TRUE(parseTraceFormat("jsonl", &fmt));
    EXPECT_EQ(fmt, TraceFormat::Jsonl);
    EXPECT_TRUE(parseTraceFormat("chrome", &fmt));
    EXPECT_EQ(fmt, TraceFormat::Chrome);
    EXPECT_FALSE(parseTraceFormat("json", &fmt));
    EXPECT_FALSE(parseTraceFormat("", &fmt));
}

TEST(TraceFormat, OpenTraceSinkThrowsOnUnwritablePath)
{
    TraceSpec spec;
    spec.path = "/nonexistent-dir/deeper/trace.jsonl";
    EXPECT_THROW(openTraceSink(spec), std::runtime_error);
}

// --- MetricsRegistry ---

TEST(Metrics, RegistryAccumulatesAndReportsEmptiness)
{
    MetricsRegistry m;
    EXPECT_TRUE(m.empty());
    m.counter("c").inc();
    m.counter("c").inc(4);
    EXPECT_EQ(m.counter("c").value(), 5u);
    m.gauge("g").set(1.0);
    m.gauge("g").set(2.5);  // last write wins
    EXPECT_DOUBLE_EQ(m.gauge("g").value(), 2.5);
    m.accum("a").sample(1.0);
    m.accum("a").sample(3.0);
    EXPECT_DOUBLE_EQ(m.accum("a").mean(), 2.0);
    Histogram &h = m.histogram("h", 0.0, 4.0, 4);
    h.sample(0.5);
    h.sample(9.0);
    EXPECT_EQ(m.histogram("h", 0.0, 99.0, 1).numBuckets(), 4)
        << "bounds must apply on first use only";
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_FALSE(m.empty());
}

TEST(Metrics, JsonDumpIsDeterministicAndNameSorted)
{
    MetricsRegistry m;
    m.counter("z.last").inc();
    m.counter("a.first").inc(2);
    m.gauge("g").set(0.25);
    m.accum("acc").sample(1.5);
    m.histogram("h", 0.0, 2.0, 2).sample(0.5);

    std::ostringstream o1, o2;
    m.writeJson(o1);
    m.writeJson(o2);
    EXPECT_EQ(o1.str(), o2.str());
    std::string s = o1.str();
    EXPECT_LT(s.find("a.first"), s.find("z.last"));
    EXPECT_NE(s.find("\"counters\""), std::string::npos);
    EXPECT_NE(s.find("\"gauges\""), std::string::npos);
    EXPECT_NE(s.find("\"accums\""), std::string::npos);
    EXPECT_NE(s.find("\"histograms\""), std::string::npos);
}

// --- Traced-run event inventory ---

/** The small, fast configuration all trace tests run on. */
SystemConfig
obsConfig()
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 2;
    // Pin the paper-default backend so the fixtures stay byte-identical
    // even under CI's COSCALE_MEM_SCHED/ROW_POLICY/DRAM_STANDARD leg.
    applyMemBackend(cfg, MemBackendSel{});
    // Likewise pin the knob space: at 2 cores / 16 ways the LLC
    // way-partition gate would open under COSCALE_KNOB_LLC_WAYS=1
    // (CI's knob-partition leg) and change miss allocation.
    cfg.knobs.llcWays = false;
    return cfg;
}

TEST(RunObservability, EmitsEpochSearchDramAndSummaryEvents)
{
    SystemConfig cfg = obsConfig();
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    VectorTraceSink sink;
    RunRequest req = RunRequest::forMix(cfg, mixByName("MID1")).with(policy);
    req.withTrace(sink);
    RunResult r = coscale::run(req);

    size_t epoch_events = 0, dram_events = 0, search_events = 0,
           summary_events = 0;
    for (const TraceEvent &ev : sink.events()) {
        if (ev.category() == "epoch" && ev.name() == "epoch")
            epoch_events += 1;
        else if (ev.category() == "dram")
            dram_events += 1;
        else if (ev.category() == "search")
            search_events += 1;
        else if (ev.category() == "run" && ev.name() == "summary")
            summary_events += 1;
    }

    ASSERT_GT(r.epochs.size(), 0u);
    EXPECT_EQ(epoch_events, r.epochs.size());
    // One event per channel per traced window (epochs, plus possibly
    // a tail window when the workload ends mid-profile).
    EXPECT_GE(dram_events, r.epochs.size());
    // One search summary per post-warmup decide().
    EXPECT_GT(search_events, 0u);
    EXPECT_EQ(summary_events, 1u);
    EXPECT_EQ(sink.events().back().category(), "run");
    EXPECT_EQ(sink.events().back().name(), "summary");

    // Epoch events carry the full schema.
    for (const TraceEvent &ev : sink.events()) {
        if (ev.category() != "epoch" || ev.name() != "epoch")
            continue;
        for (const char *key :
             {"epoch", "start", "mem_idx", "mem_mhz", "core_idx",
              "cpu_w", "mem_w", "other_w", "cpu_j", "mem_j", "other_j",
              "instrs", "pred_tpi", "act_tpi", "slack_secs"}) {
            EXPECT_NE(ev.find(key), nullptr) << "missing field " << key;
        }
    }
}

TEST(RunObservability, MetricsRegistryMatchesRunResult)
{
    SystemConfig cfg = obsConfig();
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunRequest req = RunRequest::forMix(cfg, mixByName("MID1"))
                         .with(policy)
                         .withMetrics();
    RunResult r = coscale::run(req);

    ASSERT_TRUE(r.metrics);
    MetricsRegistry &m = *r.metrics;
    EXPECT_EQ(m.counter("run.epochs").value(), r.epochs.size());
    EXPECT_EQ(m.counter("run.instructions").value(), r.totalInstrs);
    EXPECT_DOUBLE_EQ(m.gauge("run.energy_j").value(), r.totalEnergyJ());
    EXPECT_DOUBLE_EQ(m.gauge("run.finish_secs").value(),
                     ticksToSeconds(r.finishTick));
    EXPECT_GT(m.counter("search.decides").value(), 0u);
    EXPECT_GT(m.counter("search.candidates").value(),
              m.counter("search.decides").value());
    EXPECT_GT(m.accum("epoch.total_w").count(), 0u);
    EXPECT_GT(m.histogram("dram.queue_len", 0.0, 1.0, 1).summary().count(),
              0u);
}

TEST(RunObservability, DisabledObservabilityLeavesResultBare)
{
    SystemConfig cfg = obsConfig();
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult r = coscale::run(
        RunRequest::forMix(cfg, mixByName("MID1")).with(policy));
    EXPECT_EQ(r.metrics, nullptr);
}

// --- Golden fixtures ---

/**
 * Render the trace of one MID1 run on the 2-core obsConfig() through
 * the requested backend, as bytes.
 */
std::string
traceBytes(const std::string &policy_name, TraceFormat format)
{
    SystemConfig cfg = obsConfig();
    RunRequest req =
        RunRequest::forMix(cfg, mixByName("MID1"))
            .with(exp::requirePolicyFactory(policy_name, cfg.numCores,
                                            cfg.gamma));
    std::ostringstream os;
    std::unique_ptr<TraceSink> sink;
    if (format == TraceFormat::Chrome)
        sink = std::make_unique<ChromeTraceSink>(os);
    else
        sink = std::make_unique<JsonlTraceSink>(os);
    req.withTrace(*sink);
    coscale::run(req);
    sink->finish();
    return os.str();
}

TEST(GoldenTrace, CoScaleJsonlMatchesFixture)
{
    checkGolden("mid1_2core_coscale.jsonl",
                traceBytes("coscale", TraceFormat::Jsonl));
}

TEST(GoldenTrace, BaselineJsonlMatchesFixture)
{
    checkGolden("mid1_2core_baseline.jsonl",
                traceBytes("baseline", TraceFormat::Jsonl));
}

TEST(GoldenTrace, CoScaleChromeMatchesFixture)
{
    checkGolden("mid1_2core_coscale.chrome.json",
                traceBytes("coscale", TraceFormat::Chrome));
}

// --- Serial vs parallel byte-identity ---

TEST(TraceDeterminism, WorkerCountDoesNotChangeTraceBytes)
{
    SystemConfig cfg = obsConfig();
    const std::vector<std::string> mixes = {"MID1", "ILP1", "MEM1",
                                            "MIX1"};

    auto traceAll = [&](int jobs) {
        std::vector<std::unique_ptr<std::ostringstream>> streams;
        std::vector<std::unique_ptr<JsonlTraceSink>> sinks;
        std::vector<RunRequest> reqs;
        for (const std::string &m : mixes) {
            streams.push_back(std::make_unique<std::ostringstream>());
            sinks.push_back(
                std::make_unique<JsonlTraceSink>(*streams.back()));
            reqs.push_back(
                RunRequest::forMix(cfg, mixByName(m))
                    .with(exp::requirePolicyFactory(
                        "coscale", cfg.numCores, cfg.gamma)));
            reqs.back().withTrace(*sinks.back());
        }
        exp::EngineOptions opts;
        opts.jobs = jobs;
        exp::ExperimentEngine engine(opts);
        std::vector<exp::RunOutcome> outcomes = engine.run(reqs);
        std::vector<std::string> bytes;
        for (size_t i = 0; i < reqs.size(); ++i) {
            EXPECT_TRUE(outcomes[i].ok) << outcomes[i].error;
            sinks[i]->finish();
            bytes.push_back(streams[i]->str());
        }
        return bytes;
    };

    std::vector<std::string> serial = traceAll(1);
    std::vector<std::string> parallel = traceAll(4);
    ASSERT_EQ(serial.size(), parallel.size());
    for (size_t i = 0; i < serial.size(); ++i) {
        EXPECT_FALSE(serial[i].empty()) << "mix " << mixes[i];
        EXPECT_EQ(serial[i], parallel[i]) << "mix " << mixes[i];
    }
}

} // namespace
} // namespace coscale
