/**
 * @file
 * Combined-feature tests: configurations that switch several options
 * on at once (OoO + prefetching + CoScale, per-channel DVFS under
 * context switching, coarse ladders end to end) and a few API edge
 * cases not covered by the per-module suites.
 */

#include <gtest/gtest.h>

#include "policy/coscale_policy.hh"
#include "policy/multiscale.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

TEST(KitchenSink, OooPlusPrefetchPlusCoScaleHoldsBound)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    cfg.ooo = true;
    cfg.llc.prefetchNextLine = true;

    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MIX3")).with(b));
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forMix(cfg, mixByName("MIX3")).with(policy));
    Comparison c = compare(base, run);

    EXPECT_LE(c.worstDegradation, cfg.gamma + 0.008);
    EXPECT_GT(c.fullSystemSavings, 0.05);
    EXPECT_GT(run.prefetchAccuracy, 0.4);
    EXPECT_GT(run.dramPrefetches, 0u);
}

TEST(KitchenSink, MultiScaleUnderContextSwitching)
{
    // Per-channel DVFS with threads migrating across cores: the
    // channel profiles follow the *currently running* threads, and
    // per-thread slack follows the thread.
    SystemConfig cfg = makeScaledConfig(0.05);
    cfg.numCores = 8;
    cfg.geom.addrMap = AddrMap::RegionPerChannel;
    cfg.power.geom = cfg.geom;
    cfg.schedQuantumEpochs = 2;

    auto apps = expandMix(mixByName("MIX2"), 12, cfg.instrBudget);
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forApps(cfg, "ms-sched", apps).with(b));
    MultiScalePolicy policy(12, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forApps(cfg, "ms-sched", apps).with(policy));
    Comparison c = compare(base, run);

    EXPECT_LE(c.avgDegradation, cfg.gamma + 0.01);
    EXPECT_GT(c.memSavings, 0.05);
}

TEST(KitchenSink, CoarseLaddersEndToEnd)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    cfg.coreLadder = defaultCoreLadder(4);
    cfg.memLadder = defaultMemLadder(4);
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(b));
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forMix(cfg, mixByName("MID3")).with(policy));
    Comparison c = compare(base, run);
    EXPECT_LE(c.worstDegradation, cfg.gamma + 0.006);
    EXPECT_GT(c.fullSystemSavings, 0.05);
    // Applied indices must respect the 4-step ladder.
    for (const auto &e : run.epochs) {
        EXPECT_LT(e.applied.memIdx, 4);
        for (int idx : e.applied.coreIdx)
            EXPECT_LT(idx, 4);
    }
}

TEST(KitchenSink, OpenPagePlusCoScale)
{
    SystemConfig cfg = makeScaledConfig(0.05);
    cfg.memBackend.rowPolicy = RowPolicy::Open;
    applyMemBackend(cfg, cfg.memBackend);
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(b));
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forMix(cfg, mixByName("MID1")).with(policy));
    Comparison c = compare(base, run);
    EXPECT_LE(c.worstDegradation, cfg.gamma + 0.006);
    EXPECT_GT(c.fullSystemSavings, 0.05);
}

TEST(KitchenSink, HalfVoltagePlusMemHeavyRatio)
{
    // Fig. 14 x Fig. 12 interaction: a narrow CPU range with a
    // memory-heavy power split pushes nearly all savings to the
    // memory knob; the bound must still hold.
    SystemConfig cfg = makeScaledConfig(0.05);
    cfg.coreLadder = halfVoltageCoreLadder();
    cfg.power.mem.memPowerMultiplier = 2.0;
    BaselinePolicy b;
    RunResult base = coscale::run(RunRequest::forMix(cfg, mixByName("MID2")).with(b));
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    RunResult run = coscale::run(RunRequest::forMix(cfg, mixByName("MID2")).with(policy));
    Comparison c = compare(base, run);
    EXPECT_LE(c.worstDegradation, cfg.gamma + 0.006);
    EXPECT_GT(c.memSavings, c.cpuSavings);
}

// --- API edge cases ---

TEST(ApiEdges, LadderVoltageAtClampsOutOfRange)
{
    FreqLadder l = defaultCoreLadder();
    EXPECT_DOUBLE_EQ(l.voltageAt(5.0 * GHz), 1.20);
    EXPECT_DOUBLE_EQ(l.voltageAt(1.0 * GHz), 0.65);
}

TEST(ApiEdges, DescendingLadderRequired)
{
    EXPECT_DEATH(
        FreqLadder::explicitFreqs({1.0 * GHz, 2.0 * GHz}, 1.2, 0.65),
        "descending");
}

TEST(ApiEdges, SystemRejectsWrongAppCount)
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 4;
    auto apps = expandMix(mixByName("MID1"), 3, cfg.instrBudget);
    EXPECT_DEATH({ System sys(cfg, apps); }, "one application per core");
}

TEST(ApiEdges, FreqConfigAllMaxShape)
{
    FreqConfig c = FreqConfig::allMax(5);
    EXPECT_EQ(c.coreIdx.size(), 5u);
    EXPECT_EQ(c.memIdx, 0);
    EXPECT_TRUE(c.chanIdx.empty());
    for (int idx : c.coreIdx)
        EXPECT_EQ(idx, 0);
}

TEST(ApiEdges, ScaledConfigBounds)
{
    SystemConfig full = makeScaledConfig(1.0);
    EXPECT_EQ(full.instrBudget, 100'000'000u);
    EXPECT_EQ(full.epochLen, 5 * tickPerMs);
    EXPECT_EQ(full.profileLen, 300 * tickPerUs);
    EXPECT_EQ(full.timing.recalCycles, 512);

    SystemConfig tiny = makeScaledConfig(0.01);
    EXPECT_EQ(tiny.instrBudget, 1'000'000u);
    EXPECT_GT(tiny.timing.recalCycles, 0);
}

} // namespace
} // namespace coscale
