/**
 * @file
 * Tests for the parallel experiment engine: determinism (parallel
 * batches bit-identical to serial, including the emitted JSON),
 * baseline memoization accounting, failure isolation, borrowed-policy
 * rejection, worker-count resolution, and policy-name resolution
 * (including the helpful rejection of unknown names).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/bench_options.hh"
#include "exp/digest.hh"
#include "exp/engine.hh"
#include "exp/policies.hh"
#include "exp/report.hh"
#include "policy/coscale_policy.hh"
#include "policy/simple_policies.hh"
#include "sim/runner.hh"

namespace coscale {
namespace {

SystemConfig
smallConfig(double scale = 0.05)
{
    return makeScaledConfig(scale);
}

std::string
jsonOf(const RunResult &r)
{
    std::ostringstream os;
    writeJsonReport(r, nullptr, os);
    return os.str();
}

void
expectIdentical(const RunResult &a, const RunResult &b)
{
    EXPECT_EQ(a.mixName, b.mixName);
    EXPECT_EQ(a.policyName, b.policyName);
    EXPECT_EQ(a.finishTick, b.finishTick);
    EXPECT_EQ(a.appCompletion, b.appCompletion);
    EXPECT_EQ(a.cpuEnergyJ, b.cpuEnergyJ);
    EXPECT_EQ(a.memEnergyJ, b.memEnergyJ);
    EXPECT_EQ(a.otherEnergyJ, b.otherEnergyJ);
    EXPECT_EQ(a.epochs.size(), b.epochs.size());
    EXPECT_EQ(a.totalInstrs, b.totalInstrs);
    EXPECT_EQ(a.measuredMpki, b.measuredMpki);
    EXPECT_EQ(a.measuredWpki, b.measuredWpki);
    // Byte-identical machine-readable reports, not just equal fields.
    EXPECT_EQ(jsonOf(a), jsonOf(b));
}

std::vector<RunRequest>
matrixRequests(const SystemConfig &cfg)
{
    std::vector<RunRequest> requests;
    for (const char *mix : {"ILP2", "MID3", "MEM1", "MIX2"}) {
        for (const char *pol : {"MemScale", "CoScale", "CPUOnly"}) {
            requests.push_back(
                RunRequest::forMix(cfg, mixByName(mix))
                    .with(exp::policyFactoryByName(pol, cfg.numCores,
                                                   cfg.gamma)));
        }
    }
    return requests;
}

TEST(ExperimentEngine, ParallelBatchBitIdenticalToSerial)
{
    SystemConfig cfg = smallConfig();
    std::vector<RunRequest> requests = matrixRequests(cfg);

    exp::EngineOptions serialOpts;
    serialOpts.jobs = 1;
    exp::ExperimentEngine serial(serialOpts);
    std::vector<exp::RunOutcome> ser = serial.run(requests);

    exp::EngineOptions parOpts;
    parOpts.jobs = 4;
    exp::ExperimentEngine parallel(parOpts);
    std::vector<exp::RunOutcome> par = parallel.run(requests);

    ASSERT_EQ(ser.size(), requests.size());
    ASSERT_EQ(par.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        ASSERT_TRUE(ser[i].ok) << ser[i].error;
        ASSERT_TRUE(par[i].ok) << par[i].error;
        EXPECT_EQ(ser[i].index, i);
        EXPECT_EQ(par[i].index, i);
        expectIdentical(ser[i].result, par[i].result);
    }
}

TEST(ExperimentEngine, FaultedRunsBitIdenticalAcrossWorkerCounts)
{
    // Re-pin the bit-identical-under---jobs-N contract for the
    // event-driven kernel with fault injection in the loop: faulted
    // decisions hash (seed, epoch, stream), so worker interleaving
    // must not leak into the event stream either.
    SystemConfig cfg = smallConfig();
    fault::FaultPlan plan;
    plan.counterNoiseAmp = 0.05;
    plan.counterNoiseProb = 0.25;
    plan.transitionDenyProb = 0.4;

    std::vector<RunRequest> requests;
    for (const char *mix : {"MID3", "MEM1"}) {
        requests.push_back(
            RunRequest::forMix(cfg, mixByName(mix))
                .with(exp::policyFactoryByName("CoScale", cfg.numCores,
                                               cfg.gamma)));
        requests.push_back(
            RunRequest::forMix(cfg, mixByName(mix))
                .with(exp::policyFactoryByName("CoScale", cfg.numCores,
                                               cfg.gamma))
                .withFaults(plan));
    }

    exp::EngineOptions serialOpts;
    serialOpts.jobs = 1;
    exp::ExperimentEngine serial(serialOpts);
    std::vector<exp::RunOutcome> ser = serial.run(requests);

    exp::EngineOptions parOpts;
    parOpts.jobs = 4;
    exp::ExperimentEngine parallel(parOpts);
    std::vector<exp::RunOutcome> par = parallel.run(requests);

    ASSERT_EQ(ser.size(), requests.size());
    ASSERT_EQ(par.size(), requests.size());
    for (size_t i = 0; i < requests.size(); ++i) {
        ASSERT_TRUE(ser[i].ok) << ser[i].error;
        ASSERT_TRUE(par[i].ok) << par[i].error;
        expectIdentical(ser[i].result, par[i].result);
        EXPECT_EQ(ser[i].result.faults.transitionsDenied,
                  par[i].result.faults.transitionsDenied);
        EXPECT_EQ(ser[i].result.faults.noisyEpochs,
                  par[i].result.faults.noisyEpochs);
    }
    // The faulted requests must actually have injected something.
    EXPECT_GE(ser[1].result.faults.transitionsDenied
                  + ser[1].result.faults.noisyEpochs,
              1u);
}

TEST(ExperimentEngine, OutcomesStayInRequestOrder)
{
    SystemConfig cfg = smallConfig();
    std::vector<RunRequest> requests = matrixRequests(cfg);
    exp::EngineOptions opts;
    opts.jobs = 3;
    exp::ExperimentEngine engine(opts);
    std::vector<exp::RunOutcome> outcomes = engine.run(requests);
    for (size_t i = 0; i < requests.size(); ++i) {
        ASSERT_TRUE(outcomes[i].ok);
        EXPECT_EQ(outcomes[i].result.mixName, requests[i].label);
    }
}

TEST(BaselinePool, MemoizesByConfigAndWorkload)
{
    SystemConfig cfg = smallConfig();
    exp::BaselinePool pool;
    exp::EngineOptions opts;
    opts.jobs = 1;
    opts.pool = &pool;
    exp::ExperimentEngine engine(opts);

    auto request = [&](const char *mix) {
        return RunRequest::forMix(cfg, mixByName(mix))
            .with(exp::policyFactoryByName("CoScale", cfg.numCores,
                                           cfg.gamma))
            .withBaseline();
    };

    exp::RunOutcome first = engine.runOne(request("MID3"));
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(pool.misses(), 1u);
    EXPECT_EQ(pool.hits(), 0u);
    EXPECT_EQ(pool.size(), 1u);

    // Same config digest + workload digest -> a hit, and the same
    // memoized RunResult object.
    exp::RunOutcome second = engine.runOne(request("MID3"));
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_EQ(pool.misses(), 1u);
    EXPECT_EQ(pool.hits(), 1u);
    EXPECT_EQ(first.baseline, second.baseline);

    // A different mix is a different key.
    exp::RunOutcome third = engine.runOne(request("ILP2"));
    ASSERT_TRUE(third.ok) << third.error;
    EXPECT_EQ(pool.misses(), 2u);
    EXPECT_EQ(pool.size(), 2u);

    // A different config is a different key even for the same mix.
    SystemConfig other = cfg;
    other.gamma = cfg.gamma / 2.0;
    exp::RunOutcome fourth = engine.runOne(
        RunRequest::forMix(other, mixByName("MID3"))
            .with(exp::policyFactoryByName("CoScale", other.numCores,
                                           other.gamma))
            .withBaseline());
    ASSERT_TRUE(fourth.ok) << fourth.error;
    EXPECT_EQ(pool.misses(), 3u);
}

TEST(BaselinePool, SharedAcrossParallelBatch)
{
    SystemConfig cfg = smallConfig();
    exp::BaselinePool pool;
    exp::EngineOptions opts;
    opts.jobs = 4;
    opts.pool = &pool;
    exp::ExperimentEngine engine(opts);

    std::vector<RunRequest> requests;
    for (const char *pol : {"MemScale", "CoScale", "CPUOnly",
                            "Uncoordinated"}) {
        requests.push_back(
            RunRequest::forMix(cfg, mixByName("MID1"))
                .with(exp::policyFactoryByName(pol, cfg.numCores,
                                               cfg.gamma))
                .withBaseline());
    }
    std::vector<exp::RunOutcome> outcomes = engine.run(requests);
    for (const auto &out : outcomes) {
        ASSERT_TRUE(out.ok) << out.error;
        ASSERT_TRUE(out.hasBaseline);
        EXPECT_EQ(out.baseline, outcomes[0].baseline);
    }
    // One baseline computed no matter how many workers raced for it.
    EXPECT_EQ(pool.misses(), 1u);
    EXPECT_EQ(pool.hits(), 3u);
    EXPECT_EQ(pool.size(), 1u);
}

TEST(ExperimentEngine, ThrowingWorkerPoisonsOnlyItsRequest)
{
    SystemConfig cfg = smallConfig();
    std::vector<RunRequest> requests;
    requests.push_back(
        RunRequest::forMix(cfg, mixByName("ILP2"))
            .with(exp::policyFactoryByName("CoScale", cfg.numCores,
                                           cfg.gamma)));
    requests.push_back(
        RunRequest::forMix(cfg, mixByName("MID2"))
            .with([]() -> std::unique_ptr<Policy> {
                throw std::runtime_error("deliberate factory failure");
            }));
    requests.push_back(
        RunRequest::forMix(cfg, mixByName("MEM2"))
            .with(exp::policyFactoryByName("MemScale", cfg.numCores,
                                           cfg.gamma)));

    exp::EngineOptions opts;
    opts.jobs = 3;
    exp::ExperimentEngine engine(opts);
    std::vector<exp::RunOutcome> outcomes = engine.run(requests);

    EXPECT_TRUE(outcomes[0].ok) << outcomes[0].error;
    EXPECT_FALSE(outcomes[1].ok);
    EXPECT_NE(outcomes[1].error.find("deliberate factory failure"),
              std::string::npos);
    EXPECT_TRUE(outcomes[2].ok) << outcomes[2].error;

    // The JSONL report accounts for every request, pass or fail.
    std::ostringstream os;
    exp::writeJsonlReport(outcomes, os);
    std::string report = os.str();
    size_t lines = 0;
    for (char ch : report)
        lines += ch == '\n' ? 1 : 0;
    EXPECT_EQ(lines, outcomes.size());
    EXPECT_NE(report.find("deliberate factory failure"),
              std::string::npos);
}

TEST(ExperimentEngine, RejectsBorrowedPolicies)
{
    SystemConfig cfg = smallConfig();
    CoScalePolicy policy(cfg.numCores, cfg.gamma);
    exp::EngineOptions opts;
    opts.jobs = 1;
    exp::ExperimentEngine engine(opts);
    exp::RunOutcome out = engine.runOne(
        RunRequest::forMix(cfg, mixByName("MID3")).with(policy));
    EXPECT_FALSE(out.ok);
    EXPECT_NE(out.error.find("factory"), std::string::npos);
}

TEST(ExperimentEngine, ResolveJobsPrecedence)
{
    EXPECT_EQ(exp::resolveJobs(7), 7);

    // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test; no engine running
    ASSERT_EQ(setenv("COSCALE_JOBS", "3", 1), 0);
    EXPECT_EQ(exp::resolveJobs(0), 3);
    EXPECT_EQ(exp::resolveJobs(5), 5);

    // NOLINTNEXTLINE(concurrency-mt-unsafe): single-threaded test; no engine running
    ASSERT_EQ(unsetenv("COSCALE_JOBS"), 0);
    EXPECT_GE(exp::resolveJobs(0), 1);
}

TEST(BenchOptions, ParsesSharedFlags)
{
    const char *argv[] = {"prog",   "--scale",    "0.25", "--jobs",
                          "2",      "--jsonl",    "x.jsonl",
                          "--progress"};
    exp::BenchOptions opts = exp::parseBenchArgs(8,
        const_cast<char **>(argv));
    EXPECT_DOUBLE_EQ(opts.scale, 0.25);
    EXPECT_EQ(opts.jobs, 2);
    EXPECT_EQ(opts.jsonlPath, "x.jsonl");
    EXPECT_TRUE(opts.progress);

    const char *legacy[] = {"prog", "0.5"};
    exp::BenchOptions pos = exp::parseBenchArgs(2,
        const_cast<char **>(legacy), 0.1);
    EXPECT_DOUBLE_EQ(pos.scale, 0.5);

    const char *none[] = {"prog"};
    exp::BenchOptions def = exp::parseBenchArgs(1,
        const_cast<char **>(none), 0.2);
    EXPECT_DOUBLE_EQ(def.scale, 0.2);
}

TEST(Digest, SensitiveToEveryRelevantKnob)
{
    SystemConfig cfg = smallConfig();
    std::uint64_t base = exp::configDigest(cfg);

    SystemConfig changed = cfg;
    changed.gamma *= 2.0;
    EXPECT_NE(exp::configDigest(changed), base);

    changed = cfg;
    changed.seed += 1;
    EXPECT_NE(exp::configDigest(changed), base);

    changed = cfg;
    changed.llc.prefetchNextLine = !changed.llc.prefetchNextLine;
    EXPECT_NE(exp::configDigest(changed), base);

    changed = cfg;
    changed.power.mem.memPowerMultiplier *= 2.0;
    EXPECT_NE(exp::configDigest(changed), base);

    EXPECT_EQ(exp::configDigest(cfg), base);

    std::vector<AppSpec> a =
        expandMix(mixByName("MID1"), cfg.numCores, cfg.instrBudget);
    std::vector<AppSpec> b =
        expandMix(mixByName("MID2"), cfg.numCores, cfg.instrBudget);
    EXPECT_NE(exp::workloadDigest(a), exp::workloadDigest(b));
    EXPECT_EQ(exp::workloadDigest(a), exp::workloadDigest(a));
}

TEST(PolicyFactories, KnowsPaperAndCliNames)
{
    SystemConfig cfg = smallConfig();
    ASSERT_EQ(exp::paperPolicyNames().size(), 6u);
    for (const std::string &name : exp::paperPolicyNames()) {
        PolicyFactory f =
            exp::policyFactoryByName(name, cfg.numCores, cfg.gamma);
        ASSERT_TRUE(static_cast<bool>(f)) << name;
        EXPECT_NE(f(), nullptr) << name;
    }
    for (const char *name : {"baseline", "reactive", "semi-alt",
                             "coscale-chipwide", "multiscale",
                             "powercap"}) {
        PolicyFactory f =
            exp::policyFactoryByName(name, cfg.numCores, cfg.gamma);
        ASSERT_TRUE(static_cast<bool>(f)) << name;
        EXPECT_NE(f(), nullptr) << name;
    }
    // Fresh instance per call, never a shared one.
    PolicyFactory f =
        exp::policyFactoryByName("CoScale", cfg.numCores, cfg.gamma);
    EXPECT_NE(f().get(), f().get());
    EXPECT_FALSE(static_cast<bool>(
        exp::policyFactoryByName("nonsense", cfg.numCores, cfg.gamma)));
}

TEST(PolicyFactories, RejectsUnknownNamesWithValidList)
{
    SystemConfig cfg = smallConfig();
    try {
        exp::requirePolicyFactory("nonsense", cfg.numCores, cfg.gamma);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string msg = e.what();
        // Names the offending spelling and every valid one.
        EXPECT_NE(msg.find("nonsense"), std::string::npos) << msg;
        for (const std::string &name : exp::knownPolicyNames())
            EXPECT_NE(msg.find(name), std::string::npos) << name;
    }
    // Known names resolve to working factories through the same path.
    PolicyFactory f =
        exp::requirePolicyFactory("coscale", cfg.numCores, cfg.gamma);
    ASSERT_TRUE(static_cast<bool>(f));
    EXPECT_NE(f(), nullptr);
}

TEST(ExperimentEngine, RecordsPerRunWallTime)
{
    SystemConfig cfg = smallConfig();
    exp::EngineOptions opts;
    opts.jobs = 1;
    exp::ExperimentEngine engine(opts);
    exp::RunOutcome out = engine.runOne(
        RunRequest::forMix(cfg, mixByName("MID3"))
            .with(exp::policyFactoryByName("CoScale", cfg.numCores,
                                           cfg.gamma))
            .withMetrics());
    ASSERT_TRUE(out.ok) << out.error;
    EXPECT_GT(out.wallSecs, 0.0);
    // The wall time also lands in the run's metrics registry (and
    // only there — JSON reports stay deterministic).
    ASSERT_NE(out.result.metrics, nullptr);
    EXPECT_GT(out.result.metrics->gauge("engine.wall_secs").value(),
              0.0);
    EXPECT_EQ(jsonOf(out.result).find("wall"), std::string::npos);
}

TEST(ExperimentEngine, FailuresCarryRequestAndExceptionContext)
{
    SystemConfig cfg = smallConfig();
    exp::EngineOptions opts;
    opts.jobs = 1;
    exp::ExperimentEngine engine(opts);
    exp::RunOutcome out = engine.runOne(
        RunRequest::forMix(cfg, mixByName("MID2"))
            .with([]() -> std::unique_ptr<Policy> {
                throw std::runtime_error("deliberate factory failure");
            }));
    EXPECT_FALSE(out.ok);
    // Which request, which exception type, and what it said — enough
    // to triage a 200-run batch from the JSONL alone.
    EXPECT_NE(out.error.find("request 'MID2'"), std::string::npos)
        << out.error;
    EXPECT_NE(out.error.find("runtime_error"), std::string::npos)
        << out.error;
    EXPECT_NE(out.error.find("deliberate factory failure"),
              std::string::npos)
        << out.error;
    // The stderr failure digest counts it too.
    EXPECT_EQ(exp::reportFailures({out}), 1u);

    // And an empty batch is a clean no-op, not an edge case.
    exp::ExperimentEngine empty{exp::EngineOptions{}};
    EXPECT_TRUE(empty.run({}).empty());
}

/** Cooperative hang: each decision burns ~200 ms of host time. */
class SlowPolicy final : public Policy
{
  public:
    std::string name() const override { return "Slow"; }

    FreqConfig
    decide(const SystemProfile &profile, const EnergyModel &,
           const FreqConfig &current, Tick) override
    {
        std::this_thread::sleep_for(std::chrono::milliseconds(200));
        (void)profile;
        return current;
    }

    void observeEpoch(const EpochObservation &,
                      const EnergyModel &) override
    {
    }
};

TEST(ExperimentEngine, WatchdogCancelsHungRunAndBatchCompletes)
{
    // The watchdog budget covers every request in the batch, so the
    // healthy run must be far under it and the hung one far over:
    // a scale-0.02 2-core run finishes in ~10 ms of host time and
    // ~10 epochs, while SlowPolicy burns 200 ms per epoch.
    SystemConfig cfg = smallConfig(0.02);
    cfg.numCores = 2;
    std::vector<RunRequest> requests;
    requests.push_back(
        RunRequest::forMix(cfg, mixByName("MID2"))
            .with([]() -> std::unique_ptr<Policy> {
                return std::make_unique<SlowPolicy>();
            }));
    requests.push_back(
        RunRequest::forMix(cfg, mixByName("ILP2"))
            .with(exp::policyFactoryByName("CoScale", cfg.numCores,
                                           cfg.gamma)));

    exp::EngineOptions opts;
    opts.jobs = 2;
    opts.timeoutSecs = 0.5;
    exp::ExperimentEngine engine(opts);
    std::vector<exp::RunOutcome> outcomes = engine.run(requests);

    EXPECT_FALSE(outcomes[0].ok);
    EXPECT_TRUE(outcomes[0].timedOut);
    EXPECT_EQ(outcomes[0].attempts, 1);
    EXPECT_NE(outcomes[0].error.find("watchdog"), std::string::npos)
        << outcomes[0].error;
    // A hung neighbor must not take the batch down with it.
    EXPECT_TRUE(outcomes[1].ok) << outcomes[1].error;

    std::ostringstream os;
    exp::writeJsonlReport(outcomes, os);
    EXPECT_NE(os.str().find("\"timed_out\":true"), std::string::npos);
}

TEST(ExperimentEngine, TransientFailureSucceedsOnRetry)
{
    SystemConfig cfg = smallConfig();
    auto failures = std::make_shared<std::atomic<int>>(1);
    RunRequest req =
        RunRequest::forMix(cfg, mixByName("MID3"))
            .with([failures, &cfg]() -> std::unique_ptr<Policy> {
                if (failures->fetch_sub(1) > 0)
                    throw std::runtime_error("transient glitch");
                return std::make_unique<CoScalePolicy>(cfg.numCores,
                                                       cfg.gamma);
            });

    exp::EngineOptions opts;
    opts.jobs = 1;
    opts.retries = 1;
    opts.backoffSecs = 0.01;
    exp::ExperimentEngine engine(opts);
    exp::RunOutcome out = engine.runOne(req);

    EXPECT_TRUE(out.ok) << out.error;
    EXPECT_EQ(out.attempts, 2);
    EXPECT_TRUE(out.error.empty()) << out.error;

    // The retry count is visible in the report; single-attempt runs
    // stay byte-stable by omitting the field entirely.
    std::ostringstream os;
    exp::writeJsonlReport({out}, os);
    EXPECT_NE(os.str().find("\"attempts\":2"), std::string::npos);
}

TEST(ExperimentEngine, RepeatedlyFailingRequestGetsQuarantined)
{
    SystemConfig cfg = smallConfig();
    auto makeReq = [&] {
        return RunRequest::forMix(cfg, mixByName("MEM2"))
            .with([]() -> std::unique_ptr<Policy> {
                throw std::runtime_error("always broken");
            });
    };

    exp::EngineOptions opts;
    opts.jobs = 1;
    opts.quarantineAfter = 2;
    exp::ExperimentEngine engine(opts);

    exp::RunOutcome first = engine.runOne(makeReq());
    EXPECT_FALSE(first.ok);
    EXPECT_FALSE(first.quarantined);
    exp::RunOutcome second = engine.runOne(makeReq());
    EXPECT_FALSE(second.ok);
    EXPECT_FALSE(second.quarantined);

    // Two exhausted failures of the same (config, workload, label)
    // identity: the third submission is refused without running.
    exp::RunOutcome third = engine.runOne(makeReq());
    EXPECT_FALSE(third.ok);
    EXPECT_TRUE(third.quarantined);
    EXPECT_EQ(third.attempts, 0);
    EXPECT_NE(third.error.find("quarantined"), std::string::npos)
        << third.error;

    std::ostringstream os;
    exp::writeJsonlReport({third}, os);
    EXPECT_NE(os.str().find("\"quarantined\":true"), std::string::npos);
}

TEST(ExperimentEngine, QuarantinedKeysListedAndClearedByReset)
{
    SystemConfig cfg = smallConfig();
    auto makeReq = [&] {
        return RunRequest::forMix(cfg, mixByName("MEM2"))
            .with([]() -> std::unique_ptr<Policy> {
                throw std::runtime_error("always broken");
            });
    };

    exp::EngineOptions opts;
    opts.jobs = 1;
    opts.quarantineAfter = 2;
    exp::ExperimentEngine engine(opts);

    EXPECT_TRUE(engine.quarantinedKeys().empty());
    engine.runOne(makeReq());
    // One strike is not a quarantine yet.
    EXPECT_TRUE(engine.quarantinedKeys().empty());
    engine.runOne(makeReq());

    std::vector<std::string> keys = engine.quarantinedKeys();
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_FALSE(keys[0].empty());

    // The summary line carries exactly those keys; an empty set emits
    // nothing so clean batches stay byte-stable.
    std::ostringstream os;
    exp::writeQuarantineSummary(keys, os);
    EXPECT_EQ(os.str(),
              "{\"quarantined_keys\":[\"" + keys[0] + "\"]}\n");
    std::ostringstream empty;
    exp::writeQuarantineSummary({}, empty);
    EXPECT_TRUE(empty.str().empty());

    // Reset forgives the strikes: the request runs (and fails) again
    // instead of being refused up front.
    engine.resetQuarantine();
    EXPECT_TRUE(engine.quarantinedKeys().empty());
    exp::RunOutcome after = engine.runOne(makeReq());
    EXPECT_FALSE(after.ok);
    EXPECT_FALSE(after.quarantined);
    EXPECT_GT(after.attempts, 0);
}

TEST(ExperimentEngine, QuarantineExpiresAfterResetWindow)
{
    SystemConfig cfg = smallConfig();
    auto makeReq = [&] {
        return RunRequest::forMix(cfg, mixByName("MEM2"))
            .with([]() -> std::unique_ptr<Policy> {
                throw std::runtime_error("always broken");
            });
    };

    exp::EngineOptions opts;
    opts.jobs = 1;
    opts.quarantineAfter = 2;
    opts.quarantineResetSecs = 0.05;
    exp::ExperimentEngine engine(opts);

    engine.runOne(makeReq());
    engine.runOne(makeReq());
    EXPECT_EQ(engine.quarantinedKeys().size(), 1u);

    // After the reset window the strikes lapse: the key drops out of
    // the summary and the next submission is paroled (runs again)
    // rather than refused.
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    EXPECT_TRUE(engine.quarantinedKeys().empty());
    exp::RunOutcome paroled = engine.runOne(makeReq());
    EXPECT_FALSE(paroled.ok);
    EXPECT_FALSE(paroled.quarantined);
    EXPECT_GT(paroled.attempts, 0);
}

} // namespace
} // namespace coscale
