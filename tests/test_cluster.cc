/**
 * @file
 * The cluster-grade battery for the fleet layer (src/cluster/):
 *  - fastcapAllocate invariants on hash-seeded random demand sets
 *    (budget never exceeded, minima respected, budget/demand
 *    monotonicity, symmetry),
 *  - arrival-spec parser round trips, every structured error kind,
 *    and a hash-driven mutation fuzzer (malformed input must throw
 *    ArrivalParseError and nothing else),
 *  - arrival-generator determinism pins (hard-coded expected streams
 *    — the cross-platform bit-identity contract),
 *  - exp::parallelFor execution semantics (every index runs exactly
 *    once, failures don't abort the pool, lowest failing index wins),
 *  - FastCapPolicy cap/fairness behaviour on a synthetic profile,
 *  - ClusterSim properties: the global cap is never exceeded at any
 *    cluster epoch, per-node grants sum under the budget, queue
 *    accounting balances, and a 32-node run is byte-identical between
 *    jobs=1 and jobs=4,
 *  - golden JSONL fixtures for the 8-node FastCap cluster trace
 *    (clean + faulted twin), regenerable via COSCALE_REGEN_GOLDEN=1.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cluster/allocator.hh"
#include "cluster/arrival.hh"
#include "cluster/cluster.hh"
#include "exp/engine.hh"
#include "obs/trace_sink.hh"
#include "policy/fastcap.hh"
#include "policy/power_cap.hh"

#include "golden_util.hh"

namespace coscale {
namespace {

using cluster::ArrivalParseError;
using cluster::ArrivalSpec;
using cluster::ArrivalStream;
using cluster::ClusterConfig;
using cluster::ClusterEpochStats;
using cluster::ClusterResult;
using cluster::ClusterSim;
using cluster::NodePowerDemand;

// --- fastcapAllocate: property tests on hash-seeded demand sets ---

/** Deterministic uniform in [lo, hi) for test-case @p k, draw @p sub. */
double
uni(std::uint64_t k, std::uint64_t sub, double lo, double hi)
{
    return lo
           + (hi - lo)
                 * cluster::arrivalUniform(0xC10C5, k,
                                           ArrivalStream::Route, sub);
}

std::vector<NodePowerDemand>
randomDemands(std::uint64_t k, int n)
{
    std::vector<NodePowerDemand> d;
    for (int i = 0; i < n; ++i) {
        NodePowerDemand nd;
        std::uint64_t s = static_cast<std::uint64_t>(i) * 3;
        nd.minW = uni(k, s, 5.0, 20.0);
        nd.maxW = nd.minW + uni(k, s + 1, 0.0, 40.0);
        nd.demand = uni(k, s + 2, 0.0, 50.0);
        d.push_back(nd);
    }
    return d;
}

double
sumMin(const std::vector<NodePowerDemand> &d)
{
    double s = 0.0;
    for (const NodePowerDemand &nd : d)
        s += nd.minW;
    return s;
}

TEST(FastCapAllocator, GrantsNeverExceedBudget)
{
    for (std::uint64_t k = 0; k < 200; ++k) {
        int n = 1 + static_cast<int>(k % 16);
        std::vector<NodePowerDemand> d = randomDemands(k, n);
        double budget = uni(k, 999, 1.0, 2.0 * sumMin(d) + 100.0);
        std::vector<double> g = cluster::fastcapAllocate(budget, d);
        ASSERT_EQ(g.size(), d.size());
        double s = 0.0;
        for (double gi : g)
            s += gi;
        EXPECT_LE(s, budget * (1.0 + 1e-9))
            << "case " << k << ": grants sum " << s << " over budget "
            << budget;
    }
}

TEST(FastCapAllocator, MinimaAndMaximaRespectedWhenFeasible)
{
    for (std::uint64_t k = 0; k < 200; ++k) {
        int n = 1 + static_cast<int>(k % 12);
        std::vector<NodePowerDemand> d = randomDemands(k, n);
        double budget = sumMin(d) + uni(k, 999, 0.0, 200.0);
        std::vector<double> g = cluster::fastcapAllocate(budget, d);
        for (int i = 0; i < n; ++i) {
            size_t u = static_cast<size_t>(i);
            EXPECT_GE(g[u], d[u].minW - 1e-9)
                << "case " << k << " node " << i;
            EXPECT_LE(g[u], std::max(d[u].minW, d[u].maxW) + 1e-9)
                << "case " << k << " node " << i;
        }
    }
}

TEST(FastCapAllocator, ScarceBudgetScalesMinimaProportionally)
{
    std::vector<NodePowerDemand> d = randomDemands(7, 6);
    double budget = 0.5 * sumMin(d);
    std::vector<double> g = cluster::fastcapAllocate(budget, d);
    for (size_t i = 0; i < d.size(); ++i)
        EXPECT_NEAR(g[i], d[i].minW * budget / sumMin(d), 1e-9);
}

TEST(FastCapAllocator, MonotoneInBudget)
{
    for (std::uint64_t k = 0; k < 100; ++k) {
        int n = 2 + static_cast<int>(k % 10);
        std::vector<NodePowerDemand> d = randomDemands(k, n);
        double b1 = uni(k, 999, 1.0, 1.8 * sumMin(d));
        double b2 = b1 + uni(k, 998, 0.0, 100.0);
        std::vector<double> g1 = cluster::fastcapAllocate(b1, d);
        std::vector<double> g2 = cluster::fastcapAllocate(b2, d);
        for (size_t i = 0; i < d.size(); ++i)
            EXPECT_GE(g2[i], g1[i] - 1e-9)
                << "case " << k << " node " << i << ": budget " << b1
                << " -> " << b2 << " shrank a grant";
    }
}

TEST(FastCapAllocator, IdenticalNodesReceiveIdenticalGrants)
{
    NodePowerDemand nd;
    nd.minW = 10.0;
    nd.maxW = 35.0;
    nd.demand = 4.0;
    std::vector<NodePowerDemand> d(8, nd);
    for (double budget : {40.0, 100.0, 200.0, 400.0}) {
        std::vector<double> g = cluster::fastcapAllocate(budget, d);
        for (size_t i = 1; i < g.size(); ++i)
            EXPECT_DOUBLE_EQ(g[i], g[0]) << "budget " << budget;
    }
}

TEST(FastCapAllocator, RaisingDemandNeverShrinksOwnGrant)
{
    for (std::uint64_t k = 0; k < 100; ++k) {
        int n = 2 + static_cast<int>(k % 8);
        std::vector<NodePowerDemand> d = randomDemands(k, n);
        double budget = sumMin(d) + uni(k, 999, 0.0, 80.0);
        size_t who = static_cast<size_t>(k) % d.size();
        std::vector<double> g1 = cluster::fastcapAllocate(budget, d);
        d[who].demand += uni(k, 997, 0.1, 20.0);
        std::vector<double> g2 = cluster::fastcapAllocate(budget, d);
        EXPECT_GE(g2[who], g1[who] - 1e-9) << "case " << k;
    }
}

TEST(FastCapAllocator, ZeroDemandNodeGetsItsMinimumOnly)
{
    std::vector<NodePowerDemand> d = randomDemands(11, 5);
    d[2].demand = 0.0;
    double budget = sumMin(d) + 60.0;
    std::vector<double> g = cluster::fastcapAllocate(budget, d);
    EXPECT_NEAR(g[2], d[2].minW, 1e-9);
}

TEST(FastCapAllocator, AllZeroDemandSharesSurplusEqually)
{
    NodePowerDemand nd;
    nd.minW = 10.0;
    nd.maxW = 100.0;
    nd.demand = 0.0;
    std::vector<NodePowerDemand> d(4, nd);
    std::vector<double> g = cluster::fastcapAllocate(80.0, d);
    for (double gi : g)
        EXPECT_NEAR(gi, 20.0, 1e-9);
}

TEST(FastCapAllocator, DeadNodeGrantsZeroAndSurvivorsReclaim)
{
    for (std::uint64_t k = 0; k < 100; ++k) {
        int n = 2 + static_cast<int>(k % 8);
        std::vector<NodePowerDemand> d = randomDemands(k, n);
        double budget = sumMin(d) + uni(k, 999, 0.0, 80.0);
        std::vector<double> fresh = cluster::fastcapAllocate(budget, d);
        size_t who = static_cast<size_t>(k) % d.size();
        d[who].trust = cluster::NodeTrust::Dead;
        std::vector<double> g = cluster::fastcapAllocate(budget, d);
        EXPECT_DOUBLE_EQ(g[who], 0.0) << "case " << k;
        // Its watts flow back to the pool: no survivor shrinks.
        for (size_t i = 0; i < d.size(); ++i) {
            if (i != who) {
                EXPECT_GE(g[i], fresh[i] - 1e-9)
                    << "case " << k << " node " << i;
            }
        }
    }
}

TEST(FastCapAllocator, StaleNodeGetsExactlyItsReservation)
{
    for (std::uint64_t k = 0; k < 100; ++k) {
        int n = 2 + static_cast<int>(k % 8);
        std::vector<NodePowerDemand> d = randomDemands(k, n);
        size_t who = static_cast<size_t>(k) % d.size();
        d[who].trust = cluster::NodeTrust::Stale;
        double reserve = std::max(d[who].minW, d[who].maxW);
        // Feasible budget: the reservation is honoured exactly — the
        // node is budgeted for the worst it could be drawing, no
        // demand share on top.
        double budget = sumMin(d) + reserve + uni(k, 999, 1.0, 80.0);
        std::vector<double> g = cluster::fastcapAllocate(budget, d);
        EXPECT_NEAR(g[who], reserve, 1e-9) << "case " << k;
        double s = 0.0;
        for (double gi : g)
            s += gi;
        EXPECT_LE(s, budget * (1.0 + 1e-9)) << "case " << k;
    }
}

TEST(FastCapAllocator, StaleReservationScalesWhenBudgetIsScarce)
{
    // Mid-churn the budget stays a hard invariant: when it cannot
    // cover the floors (stale reservations included), everything
    // scales down proportionally instead of overshooting.
    std::vector<NodePowerDemand> d = randomDemands(13, 6);
    d[1].trust = cluster::NodeTrust::Stale;
    double reserve = std::max(d[1].minW, d[1].maxW);
    double floors = sumMin(d) - d[1].minW + reserve;
    double budget = 0.5 * floors;
    std::vector<double> g = cluster::fastcapAllocate(budget, d);
    double s = 0.0;
    for (double gi : g)
        s += gi;
    EXPECT_LE(s, budget * (1.0 + 1e-9));
    EXPECT_NEAR(g[1], reserve * budget / floors, 1e-9);
}

// --- largestRemainderSplit: apportionment properties ---

std::uint64_t
splitSum(const std::vector<std::uint64_t> &v)
{
    std::uint64_t s = 0;
    for (std::uint64_t x : v)
        s += x;
    return s;
}

TEST(LargestRemainderSplit, ConservesTheTotalExactly)
{
    for (std::uint64_t k = 0; k < 200; ++k) {
        int n = 1 + static_cast<int>(k % 12);
        std::vector<double> w;
        for (int i = 0; i < n; ++i)
            w.push_back(uni(k, static_cast<std::uint64_t>(i) + 50,
                            0.0, 10.0));
        std::uint64_t total = k * 37 % 1000;
        std::vector<std::uint64_t> g = cluster::largestRemainderSplit(
            total, w, k, (k % 2) == 0);
        ASSERT_EQ(g.size(), w.size());
        EXPECT_EQ(splitSum(g), total) << "case " << k;
    }
}

TEST(LargestRemainderSplit, ZeroWeightNodesGetNothing)
{
    std::vector<double> w = {0.0, 3.0, 0.0, 1.0};
    std::vector<std::uint64_t> g =
        cluster::largestRemainderSplit(100, w, 0, false);
    EXPECT_EQ(g[0], 0u);
    EXPECT_EQ(g[2], 0u);
    EXPECT_EQ(splitSum(g), 100u);
    // Proportionality among the positive weights.
    EXPECT_EQ(g[1], 75u);
    EXPECT_EQ(g[3], 25u);
}

TEST(LargestRemainderSplit, NegativeAndNonFiniteWeightsAreSanitized)
{
    std::vector<double> w = {-5.0,
                             std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             2.0};
    std::vector<std::uint64_t> g =
        cluster::largestRemainderSplit(40, w, 0, false);
    EXPECT_EQ(g[0], 0u);
    EXPECT_EQ(g[1], 0u);
    EXPECT_EQ(g[2], 0u);
    EXPECT_EQ(g[3], 40u);
}

TEST(LargestRemainderSplit, AllEqualWeightsSplitWithinOne)
{
    for (std::uint64_t total : {0ull, 1ull, 7ull, 8ull, 103ull}) {
        std::vector<double> w(8, 3.5);
        std::vector<std::uint64_t> g = cluster::largestRemainderSplit(
            total, w, 0, false);
        EXPECT_EQ(splitSum(g), total);
        std::uint64_t lo = *std::min_element(g.begin(), g.end());
        std::uint64_t hi = *std::max_element(g.begin(), g.end());
        EXPECT_LE(hi - lo, 1u) << "total " << total;
    }
}

TEST(LargestRemainderSplit, AllZeroWeightsFallBackToEqual)
{
    std::vector<double> w(5, 0.0);
    std::vector<std::uint64_t> g =
        cluster::largestRemainderSplit(10, w, 0, false);
    EXPECT_EQ(splitSum(g), 10u);
    for (std::uint64_t gi : g)
        EXPECT_EQ(gi, 2u);
}

TEST(LargestRemainderSplit, SingleSurvivorTakesEverything)
{
    // The self-healing routing case: every node but one is masked
    // out, so the whole epoch's arrivals land on the survivor.
    for (size_t who = 0; who < 6; ++who) {
        std::vector<double> w(6, 0.0);
        w[who] = 0.25;
        std::vector<std::uint64_t> g =
            cluster::largestRemainderSplit(57, w, 3, true);
        for (size_t i = 0; i < g.size(); ++i)
            EXPECT_EQ(g[i], i == who ? 57u : 0u) << "survivor " << who;
    }
}

TEST(LargestRemainderSplit, RotationMovesLeftoversNotTotals)
{
    std::vector<double> w(4, 1.0);
    // 4 nodes, 6 units: everyone gets 1, two leftovers rotate.
    std::vector<std::uint64_t> r0 =
        cluster::largestRemainderSplit(6, w, 0, true);
    std::vector<std::uint64_t> r1 =
        cluster::largestRemainderSplit(6, w, 1, true);
    EXPECT_EQ(splitSum(r0), 6u);
    EXPECT_EQ(splitSum(r1), 6u);
    EXPECT_NE(r0, r1);
}

// --- arrival-spec parser: round trips, error kinds, fuzzing ---

TEST(ArrivalParse, FormatRoundTrips)
{
    ArrivalSpec s;
    s.ratePerSec = 120000.0;
    s.diurnalAmp = 0.4;
    s.diurnalPeriod = 8;
    s.burstProb = 0.25;
    s.burstMult = 3.0;
    s.instrPerRequest = 5e5;
    s.sloSecs = 1.5e-3;
    s.seed = 42;
    ArrivalSpec r = cluster::parseArrivalSpec(
        cluster::formatArrivalSpec(s));
    EXPECT_DOUBLE_EQ(r.ratePerSec, s.ratePerSec);
    EXPECT_DOUBLE_EQ(r.diurnalAmp, s.diurnalAmp);
    EXPECT_EQ(r.diurnalPeriod, s.diurnalPeriod);
    EXPECT_DOUBLE_EQ(r.burstProb, s.burstProb);
    EXPECT_DOUBLE_EQ(r.burstMult, s.burstMult);
    EXPECT_DOUBLE_EQ(r.instrPerRequest, s.instrPerRequest);
    EXPECT_DOUBLE_EQ(r.sloSecs, s.sloSecs);
    EXPECT_EQ(r.seed, s.seed);
}

TEST(ArrivalParse, UnsetKeysKeepDefaults)
{
    ArrivalSpec r = cluster::parseArrivalSpec("rate=1000");
    ArrivalSpec def;
    EXPECT_DOUBLE_EQ(r.ratePerSec, 1000.0);
    EXPECT_DOUBLE_EQ(r.diurnalAmp, def.diurnalAmp);
    EXPECT_EQ(r.diurnalPeriod, def.diurnalPeriod);
    EXPECT_DOUBLE_EQ(r.burstMult, def.burstMult);
    EXPECT_EQ(r.seed, def.seed);
}

/** Expect parse to throw @p kind and return the caught error. */
ArrivalParseError
expectParseError(const std::string &text, ArrivalParseError::Kind kind)
{
    try {
        cluster::parseArrivalSpec(text);
    } catch (const ArrivalParseError &e) {
        EXPECT_EQ(static_cast<int>(e.kind()), static_cast<int>(kind))
            << "spec '" << text << "': " << e.what();
        EXPECT_LE(e.charOffset(), text.size());
        return e;
    }
    ADD_FAILURE() << "spec '" << text << "' parsed without error";
    return ArrivalParseError(kind, "", 0, "");
}

TEST(ArrivalParse, StructuredErrorKinds)
{
    expectParseError("", ArrivalParseError::Kind::EmptySpec);
    expectParseError("rate", ArrivalParseError::Kind::BadToken);
    expectParseError("=5", ArrivalParseError::Kind::BadToken);
    expectParseError("rate=", ArrivalParseError::Kind::BadToken);
    expectParseError("rate=100,,", ArrivalParseError::Kind::BadToken);
    expectParseError("bogus=3", ArrivalParseError::Kind::UnknownKey);
    expectParseError("rate=abc", ArrivalParseError::Kind::BadValue);
    expectParseError("seed=-3", ArrivalParseError::Kind::BadValue);
    expectParseError("rate=nan", ArrivalParseError::Kind::BadValue);
    expectParseError("rate=-5", ArrivalParseError::Kind::OutOfRange);
    expectParseError("diurnal=1.5",
                     ArrivalParseError::Kind::OutOfRange);
    expectParseError("period=0", ArrivalParseError::Kind::OutOfRange);
    expectParseError("burstx=0.5",
                     ArrivalParseError::Kind::OutOfRange);
    expectParseError("rate=1,rate=2",
                     ArrivalParseError::Kind::DuplicateKey);
}

TEST(ArrivalParse, ErrorCarriesTokenAndOffset)
{
    ArrivalParseError e = expectParseError(
        "rate=4000,bogus=3", ArrivalParseError::Kind::UnknownKey);
    EXPECT_EQ(e.token(), "bogus=3");
    EXPECT_EQ(e.charOffset(), 10u);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
}

TEST(ArrivalParse, FuzzedSpecsThrowOnlyArrivalParseError)
{
    const std::string base =
        "rate=4000,diurnal=0.4,period=64,burst=0.05,burstx=4,"
        "ipr=250000,slo=0.002,seed=7";
    const std::string pool = "=,.-+eE019xraten \t%";
    int parsed = 0;
    int rejected = 0;
    for (std::uint64_t k = 0; k < 2000; ++k) {
        std::string s = base;
        // 1-4 hash-driven edits: replace, insert, or delete a char.
        int edits = 1 + static_cast<int>(
            cluster::arrivalHash(1, k, ArrivalStream::Route, 0) % 4);
        for (int e = 0; e < edits; ++e) {
            std::uint64_t h = cluster::arrivalHash(
                2, k, ArrivalStream::Route,
                static_cast<std::uint64_t>(e));
            size_t at = s.empty() ? 0 : (h % s.size());
            char c = pool[(h >> 16) % pool.size()];
            switch ((h >> 32) % 3) {
              case 0:
                if (!s.empty())
                    s[at] = c;
                break;
              case 1:
                s.insert(at, 1, c);
                break;
              default:
                if (!s.empty())
                    s.erase(at, 1);
                break;
            }
        }
        try {
            ArrivalSpec spec = cluster::parseArrivalSpec(s);
            // Whatever parsed must satisfy the documented ranges.
            EXPECT_GT(spec.ratePerSec, 0.0) << "spec '" << s << "'";
            EXPECT_GE(spec.diurnalAmp, 0.0);
            EXPECT_LE(spec.diurnalAmp, 1.0);
            EXPECT_GE(spec.burstMult, 1.0);
            parsed += 1;
        } catch (const ArrivalParseError &e) {
            EXPECT_LE(e.charOffset(), s.size())
                << "spec '" << s << "'";
            rejected += 1;
        }
        // Any other exception type escapes and fails the test.
    }
    // The mutator must exercise both paths to mean anything.
    EXPECT_GT(parsed, 0);
    EXPECT_GT(rejected, 100);
}

// --- arrival generator: determinism pins and distributions ---

ArrivalSpec
pinnedSpec()
{
    ArrivalSpec s;
    s.ratePerSec = 120000.0;
    s.diurnalAmp = 0.4;
    s.diurnalPeriod = 8;
    s.burstProb = 0.25;
    s.burstMult = 3.0;
    s.seed = 42;
    return s;
}

TEST(ArrivalStreamPin, ArrivalsMatchPinnedConstants)
{
    // Generated once from this spec at epoch_secs = 1e-4 and pinned:
    // the same seed must reproduce this exact stream on every
    // platform, compiler, and worker count (golden fixtures and the
    // serial-vs-parallel identity both stand on this).
    const std::uint64_t want[16] = {12, 16, 17, 46, 36, 26, 21, 9,
                                    12, 16, 50, 16, 12, 26, 21, 9};
    ArrivalSpec s = pinnedSpec();
    for (std::uint64_t e = 0; e < 16; ++e)
        EXPECT_EQ(cluster::arrivalsInEpoch(s, e, 1e-4), want[e])
            << "epoch " << e;
}

TEST(ArrivalStreamPin, BurstGateMatchesPinnedConstants)
{
    const bool want[16] = {false, false, false, true, true, true,
                           true,  false, false, false, true, false,
                           false, true,  true,  false};
    ArrivalSpec s = pinnedSpec();
    for (std::uint64_t e = 0; e < 16; ++e)
        EXPECT_EQ(cluster::isBurstEpoch(s, e), want[e])
            << "epoch " << e;
}

TEST(ArrivalStreamPin, NodeSeedHashMatchesPinnedConstant)
{
    EXPECT_EQ(cluster::arrivalHash(7, 3, ArrivalStream::NodeSeed),
              7224480963598715247ULL);
}

TEST(ArrivalGenerator, SameSeedSameStreamDifferentSeedDiffers)
{
    ArrivalSpec a = pinnedSpec();
    ArrivalSpec b = pinnedSpec();
    bool differs = false;
    for (std::uint64_t e = 0; e < 64; ++e) {
        EXPECT_EQ(cluster::arrivalsInEpoch(a, e, 1e-4),
                  cluster::arrivalsInEpoch(b, e, 1e-4));
    }
    b.seed = 43;
    for (std::uint64_t e = 0; e < 64 && !differs; ++e)
        differs = cluster::arrivalsInEpoch(a, e, 1e-4)
                  != cluster::arrivalsInEpoch(b, e, 1e-4);
    EXPECT_TRUE(differs);
}

TEST(ArrivalGenerator, DiurnalWaveShape)
{
    EXPECT_DOUBLE_EQ(cluster::diurnalWave(0, 64), 0.0);
    EXPECT_DOUBLE_EQ(cluster::diurnalWave(16, 64), 1.0);
    EXPECT_DOUBLE_EQ(cluster::diurnalWave(32, 64), 0.0);
    EXPECT_DOUBLE_EQ(cluster::diurnalWave(48, 64), -1.0);
    for (std::uint64_t e = 0; e < 200; ++e) {
        double w = cluster::diurnalWave(e, 64);
        EXPECT_LE(std::abs(w), 1.0) << "epoch " << e;
        EXPECT_DOUBLE_EQ(w, cluster::diurnalWave(e + 64, 64));
    }
    EXPECT_DOUBLE_EQ(cluster::diurnalWave(17, 0), 0.0);
}

TEST(ArrivalGenerator, RateStaysInsideEnvelope)
{
    ArrivalSpec s = pinnedSpec();
    double lo = s.ratePerSec * (1.0 - s.diurnalAmp);
    double hi = s.ratePerSec * (1.0 + s.diurnalAmp) * s.burstMult;
    for (std::uint64_t e = 0; e < 500; ++e) {
        double r = cluster::arrivalRatePerSec(s, e);
        EXPECT_GE(r, lo * (1.0 - 1e-12)) << "epoch " << e;
        EXPECT_LE(r, hi * (1.0 + 1e-12)) << "epoch " << e;
    }
}

TEST(ArrivalGenerator, LongRunThroughputMatchesRate)
{
    // Plain Poisson-ish stream: no diurnal, no bursts. The fractional
    // coin must keep long-run throughput at rate * epoch_secs.
    ArrivalSpec s;
    s.ratePerSec = 23456.0;
    s.seed = 9;
    const double epoch_secs = 1e-4;
    double total = 0.0;
    const int n = 20000;
    for (int e = 0; e < n; ++e)
        total += static_cast<double>(cluster::arrivalsInEpoch(
            s, static_cast<std::uint64_t>(e), epoch_secs));
    double mean = total / n;
    EXPECT_NEAR(mean, s.ratePerSec * epoch_secs,
                0.02 * s.ratePerSec * epoch_secs);
}

TEST(ArrivalGenerator, BurstFrequencyTracksProbability)
{
    ArrivalSpec s = pinnedSpec();
    int bursts = 0;
    const int n = 4000;
    for (int e = 0; e < n; ++e)
        bursts += cluster::isBurstEpoch(
                      s, static_cast<std::uint64_t>(e))
                      ? 1
                      : 0;
    double frac = static_cast<double>(bursts) / n;
    EXPECT_NEAR(frac, s.burstProb, 0.05);
}

// --- exp::parallelFor: the shared fan-out primitive ---

TEST(ParallelFor, EveryIndexRunsExactlyOnce)
{
    const std::size_t n = 257;
    std::vector<int> hits(n, 0);
    std::atomic<int> calls{0};
    exp::parallelFor(4, n, [&](std::size_t i) {
        hits[i] += 1; // each index visits exactly one worker
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), static_cast<int>(n));
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, SerialAndParallelProduceIdenticalResults)
{
    const std::size_t n = 100;
    std::vector<std::uint64_t> serial(n, 0);
    std::vector<std::uint64_t> parallel(n, 0);
    exp::parallelFor(1, n, [&](std::size_t i) {
        serial[i] = fault::faultMix64(i);
    });
    exp::parallelFor(4, n, [&](std::size_t i) {
        parallel[i] = fault::faultMix64(i);
    });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, LowestFailingIndexWinsAndAllIndicesStillRun)
{
    const std::size_t n = 64;
    std::vector<int> hits(n, 0);
    auto body = [&](std::size_t i) {
        hits[i] += 1;
        if (i == 9 || i == 2 || i == 40)
            throw std::runtime_error(std::to_string(i));
    };
    try {
        exp::parallelFor(4, n, body);
        FAIL() << "parallelFor swallowed the exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "2");
    }
    // No early abort: the deterministic executed-index set is ALL of
    // them, failures included.
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, SerialPathPropagatesFirstFailure)
{
    std::vector<int> hits(8, 0);
    try {
        exp::parallelFor(1, 8, [&](std::size_t i) {
            hits[i] += 1;
            if (i >= 3)
                throw std::runtime_error(std::to_string(i));
        });
        FAIL() << "serial parallelFor swallowed the exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "3");
    }
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, ZeroIterationsIsANoOp)
{
    std::atomic<int> calls{0};
    exp::parallelFor(4, 0, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
}

// --- FastCapPolicy on a synthetic profile ---

CoreProfile
mkCore(double cyc, double alpha, double beta, double stall_ns)
{
    CoreProfile c;
    c.cyclesPerInstr = cyc;
    c.alpha = alpha;
    c.tpiL2Secs = 7.5e-9;
    c.beta = beta;
    c.measuredMemStallSecs = stall_ns * 1e-9;
    c.instrs = 100'000;
    c.aluPerInstr = 0.4;
    c.fpuPerInstr = 0.1;
    c.branchPerInstr = 0.15;
    c.memOpPerInstr = 0.35;
    c.llcAccessPerInstr = alpha + beta;
    c.memReadPerInstr = beta;
    return c;
}

struct FastCapFixture : ::testing::Test
{
    FastCapFixture()
        : coreLadder(defaultCoreLadder(10)),
          memLadder(defaultMemLadder(10)),
          perf(DramTimingParams{}, 10.0, 7.5), power(PowerParams{}),
          em(&perf, &power, &coreLadder, &memLadder)
    {
        prof.windowTicks = 300 * tickPerUs;
        for (int i = 0; i < 4; ++i) {
            double mix = static_cast<double>(i) / 3.0;
            prof.cores.push_back(mkCore(1.5 - 0.6 * mix,
                                        0.005 + 0.02 * mix,
                                        0.0005 + 0.012 * mix,
                                        60.0 + 30.0 * mix));
        }
        prof.mem.profiledBusFreq = 800 * MHz;
        prof.mem.wBankSecs = 3e-9;
        prof.mem.wBusSecs = 2e-9;
        prof.mem.measuredStallSecs =
            perf.serviceSecs(800 * MHz) + 5e-9;
        prof.mem.busUtil = 0.25;
        prof.mem.rankActiveFrac = 0.3;
        prof.mem.writeFrac = 0.25;
        prof.mem.trafficPerSec = 2e8;
        prof.profiledCoreIdx.assign(4, 0);
        prof.profiledMemIdx = 0;
    }

    int n() const { return static_cast<int>(prof.cores.size()); }

    FreqConfig
    allMin() const
    {
        FreqConfig c;
        c.coreIdx.assign(static_cast<size_t>(n()),
                         static_cast<int>(coreLadder.size()) - 1);
        c.memIdx = static_cast<int>(memLadder.size()) - 1;
        return c;
    }

    double
    maxPower() const
    {
        return em.systemPower(prof, FreqConfig::allMax(n()));
    }

    double
    minPower() const
    {
        return em.systemPower(prof, allMin());
    }

    static const Tick epochLen = 5000 * tickPerUs;

    FreqLadder coreLadder;
    FreqLadder memLadder;
    PerfModel perf;
    PowerModel power;
    EnergyModel em;
    SystemProfile prof;
};

TEST_F(FastCapFixture, GenerousCapRunsFlatOut)
{
    FastCapPolicy p(n(), 0.10, maxPower() * 1.2);
    FreqConfig cfg =
        p.decide(prof, em, FreqConfig::allMax(n()), epochLen);
    EXPECT_EQ(cfg.coreIdx, FreqConfig::allMax(n()).coreIdx);
    EXPECT_EQ(cfg.memIdx, 0);
    EXPECT_FALSE(p.lastDecisionOverCap());
    EXPECT_DOUBLE_EQ(em.relativeTime(prof, cfg), 1.0);
}

TEST_F(FastCapFixture, DecisionFitsUnderTheCap)
{
    double cap = 0.5 * (minPower() + maxPower());
    FastCapPolicy p(n(), 0.10, cap);
    FreqConfig cfg =
        p.decide(prof, em, FreqConfig::allMax(n()), epochLen);
    EXPECT_FALSE(p.lastDecisionOverCap());
    EXPECT_LE(em.systemPower(prof, cfg), cap);
    EXPECT_GE(em.systemPower(prof, cfg), minPower());
}

TEST_F(FastCapFixture, SpendsHeadroomAtLeastAsWellAsPowerCap)
{
    // The fairness-upgrade phase must never do worse than the plain
    // capping descent it starts from.
    for (double f : {0.3, 0.5, 0.7, 0.9}) {
        double cap = minPower() + f * (maxPower() - minPower());
        FastCapPolicy fc(n(), 0.10, cap);
        PowerCapPolicy pc(cap);
        FreqConfig a =
            fc.decide(prof, em, FreqConfig::allMax(n()), epochLen);
        FreqConfig b =
            pc.decide(prof, em, FreqConfig::allMax(n()), epochLen);
        EXPECT_LE(em.relativeTime(prof, a),
                  em.relativeTime(prof, b) + 1e-12)
            << "cap fraction " << f;
        EXPECT_LE(em.systemPower(prof, a), cap);
    }
}

TEST_F(FastCapFixture, PerformanceIsMonotoneInTheCap)
{
    // FastCap's fairness rule: a larger budget share can only speed a
    // node up. (The cluster allocator's budget monotonicity composes
    // with this into fleet-level fairness.)
    double prev_rel = 1e9;
    for (double f : {0.2, 0.4, 0.6, 0.8, 1.1}) {
        double cap = minPower() + f * (maxPower() - minPower());
        FastCapPolicy p(n(), 0.10, cap);
        FreqConfig cfg =
            p.decide(prof, em, FreqConfig::allMax(n()), epochLen);
        double rel = em.relativeTime(prof, cfg);
        EXPECT_LE(rel, prev_rel + 1e-12) << "cap fraction " << f;
        prev_rel = rel;
    }
}

TEST_F(FastCapFixture, InfeasibleCapPinsAllMinAndFlagsOverCap)
{
    FastCapPolicy p(n(), 0.10, minPower() * 0.5);
    FreqConfig cfg =
        p.decide(prof, em, FreqConfig::allMax(n()), epochLen);
    EXPECT_TRUE(p.lastDecisionOverCap());
    EXPECT_EQ(cfg.coreIdx, allMin().coreIdx);
    EXPECT_EQ(cfg.memIdx, allMin().memIdx);
}

TEST_F(FastCapFixture, SetPowerCapRetargetsTheNextDecision)
{
    FastCapPolicy p(n(), 0.10, maxPower() * 1.2);
    FreqConfig wide =
        p.decide(prof, em, FreqConfig::allMax(n()), epochLen);
    double tight = 0.4 * (minPower() + maxPower()) / 2.0
                   + 0.6 * minPower();
    p.setPowerCap(tight);
    EXPECT_DOUBLE_EQ(p.cap(), tight);
    FreqConfig narrow =
        p.decide(prof, em, FreqConfig::allMax(n()), epochLen);
    EXPECT_LE(em.systemPower(prof, narrow), tight);
    EXPECT_LT(em.systemPower(prof, narrow),
              em.systemPower(prof, wide));
}

// --- ClusterSim: fleet properties, byte identity, goldens ---

/** A small fleet sized for test runtime (2-core nodes, 2% scale). */
ClusterConfig
testCluster(int nodes, int epochs)
{
    ClusterConfig cfg;
    cfg.numNodes = nodes;
    cfg.node = cluster::makeNodeConfig(0.02, 2);
    cfg.mix = "MID1";
    cfg.epochs = epochs;
    cfg.seed = 7;
    double epoch_secs = ticksToSeconds(cfg.node.epochLen);
    cfg.arrival.ratePerSec =
        1.5 * static_cast<double>(nodes) / epoch_secs;
    cfg.arrival.diurnalAmp = 0.25;
    cfg.arrival.diurnalPeriod =
        static_cast<std::uint64_t>(std::max(epochs, 4));
    cfg.arrival.burstProb = 0.1;
    cfg.arrival.sloSecs = 6.0 * epoch_secs;
    return cfg;
}

/**
 * A feasible budget for @p cfg: run its uncapped CoScale twin once
 * and place the budget @p frac of the way from the all-min floor to
 * the natural draw. Deterministic (a pure function of the config).
 */
double
feasibleBudget(const ClusterConfig &cfg, double frac)
{
    ClusterConfig probe = cfg;
    probe.policy = "coscale";
    probe.budgetW = 0.0;
    ClusterSim sim(probe);
    ClusterResult r = sim.run();
    double mean = 0.0;
    for (const ClusterEpochStats &e : r.epochs)
        mean += e.powerW;
    mean /= static_cast<double>(r.epochs.size());
    double floor_w = 0.0;
    for (const cluster::NodeEpochOutcome &o : sim.lastOutcomes())
        floor_w += o.minW;
    floor_w *= 1.02;
    return floor_w + frac * (mean - floor_w);
}

/** Run @p cfg with a JSONL trace attached; returns trace + report. */
std::string
runTraced(const ClusterConfig &cfg)
{
    std::ostringstream trace;
    JsonlTraceSink sink(trace);
    ClusterSim sim(cfg);
    sim.attachObs(&sink, nullptr);
    ClusterResult r = sim.run();
    sink.finish();
    std::ostringstream report;
    cluster::writeClusterJsonReport(cfg, r, report);
    return trace.str() + report.str();
}

TEST(ClusterSim, UncappedRunBalancesItsBooks)
{
    ClusterConfig cfg = testCluster(4, 4);
    cfg.policy = "coscale";
    ClusterSim sim(cfg);
    ClusterResult r = sim.run();
    ASSERT_EQ(r.epochs.size(), 4u);
    EXPECT_GT(r.worstPowerW, 0.0);
    EXPECT_EQ(r.capViolationEpochs, 0u); // cap disarmed
    EXPECT_GT(r.totalArrivals, 0u);
    EXPECT_EQ(r.totalArrivals, r.totalCompleted + r.finalQueued);
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    for (const ClusterEpochStats &e : r.epochs) {
        EXPECT_FALSE(e.capExceeded);
        EXPECT_DOUBLE_EQ(e.grantSumW, 0.0);
        arrivals += e.arrivals;
        completed += e.completed;
        // Running balance: everything that arrived is either done or
        // still queued, every epoch.
        EXPECT_EQ(arrivals, completed + e.queued)
            << "epoch " << e.epoch;
    }
    EXPECT_EQ(arrivals, r.totalArrivals);
    EXPECT_EQ(completed, r.totalCompleted);
    EXPECT_GT(r.totalEvents, 0u);
}

TEST(ClusterSim, FastCapNeverExceedsTheGlobalCap)
{
    // The headline property: with the allocator armed, measured
    // cluster power fits under the budget at EVERY cluster epoch, and
    // the per-node grants never over-commit it.
    ClusterConfig cfg = testCluster(6, 6);
    cfg.policy = "fastcap";
    cfg.budgetW = feasibleBudget(cfg, 0.6);
    ClusterSim sim(cfg);
    ClusterResult r = sim.run();
    EXPECT_EQ(r.capViolationEpochs, 0u);
    EXPECT_LE(r.worstPowerW, cfg.budgetW);
    for (const ClusterEpochStats &e : r.epochs) {
        EXPECT_FALSE(e.capExceeded) << "epoch " << e.epoch;
        EXPECT_LE(e.powerW, cfg.budgetW) << "epoch " << e.epoch;
        EXPECT_LE(e.grantSumW, cfg.budgetW * (1.0 + 1e-9))
            << "epoch " << e.epoch;
    }
    double grant_sum = 0.0;
    for (const cluster::NodeEpochOutcome &o : sim.lastOutcomes())
        grant_sum += o.grantW;
    EXPECT_LE(grant_sum, cfg.budgetW * (1.0 + 1e-9));
}

TEST(ClusterSim, UncoordinatedFleetViolatesTheSameCap)
{
    // The contrast run bench_cluster banks on: per-node CoScale alone
    // (no allocator obedience) sails through the budget FastCap
    // respects.
    ClusterConfig cfg = testCluster(6, 6);
    cfg.budgetW = feasibleBudget(cfg, 0.6);
    cfg.policy = "fastcap";
    ClusterSim capped(cfg);
    ClusterResult rc = capped.run();
    EXPECT_EQ(rc.capViolationEpochs, 0u);
    cfg.policy = "coscale";
    ClusterSim wild(cfg);
    ClusterResult rw = wild.run();
    EXPECT_GT(rw.capViolationEpochs, 0u);
    EXPECT_GT(rw.worstPowerW, cfg.budgetW);
}

TEST(ClusterSim, DerivedNodeSeedsAreDistinct)
{
    // Node workloads must decorrelate: the per-node seed derivation
    // cannot collide across a large fleet.
    std::vector<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 1024; ++i)
        seeds.push_back(
            cluster::arrivalHash(7, i, ArrivalStream::NodeSeed));
    std::sort(seeds.begin(), seeds.end());
    EXPECT_TRUE(std::adjacent_find(seeds.begin(), seeds.end())
                == seeds.end());
}

TEST(ClusterSim, LbPolicyNamesRoundTrip)
{
    using cluster::LbPolicy;
    EXPECT_EQ(cluster::parseLbPolicy("rr"), LbPolicy::RoundRobin);
    EXPECT_EQ(cluster::parseLbPolicy("least-loaded"),
              LbPolicy::LeastLoaded);
    EXPECT_EQ(cluster::parseLbPolicy("weighted"),
              LbPolicy::WeightedCapacity);
    for (LbPolicy lb :
         {LbPolicy::RoundRobin, LbPolicy::LeastLoaded,
          LbPolicy::WeightedCapacity})
        EXPECT_EQ(cluster::parseLbPolicy(cluster::lbPolicyName(lb)),
                  lb);
    EXPECT_THROW(cluster::parseLbPolicy("bogus"),
                 std::invalid_argument);
}

TEST(ClusterSim, EveryLbPolicyConservesArrivals)
{
    for (cluster::LbPolicy lb :
         {cluster::LbPolicy::RoundRobin,
          cluster::LbPolicy::LeastLoaded,
          cluster::LbPolicy::WeightedCapacity}) {
        ClusterConfig cfg = testCluster(4, 3);
        cfg.policy = "coscale";
        cfg.lb = lb;
        ClusterSim sim(cfg);
        ClusterResult r = sim.run();
        EXPECT_EQ(r.totalArrivals, r.totalCompleted + r.finalQueued)
            << cluster::lbPolicyName(lb);
        EXPECT_GT(r.totalArrivals, 0u);
    }
}

TEST(ClusterSim, MakeNodeConfigShrinksTheMachine)
{
    SystemConfig c = cluster::makeNodeConfig(0.02, 2);
    EXPECT_EQ(c.numCores, 2);
    EXPECT_EQ(c.power.numCores, 2);
    EXPECT_EQ(c.geom.channels, 1);
    EXPECT_EQ(c.geom.dimmsPerChannel, 1);
    EXPECT_EQ(c.power.geom.channels, 1);
    EXPECT_EQ(c.warmupEpochs, 0);
}

TEST(ClusterSim, SerialAndJobs4RunsAreByteIdentical)
{
    // The PR's concurrency contract at fleet scale: a 32-node capped
    // FastCap run, traced to JSONL plus the JSON report, must be
    // byte-for-byte identical between --jobs 1 and --jobs 4.
    ClusterConfig cfg = testCluster(32, 3);
    cfg.policy = "fastcap";
    cfg.budgetW = 32.0 * 30.0; // identity must hold feasible or not
    cfg.jobs = 1;
    std::string serial = runTraced(cfg);
    cfg.jobs = 4;
    std::string parallel = runTraced(cfg);
    EXPECT_FALSE(serial.empty());
    // The report echoes cfg (minus jobs), so any divergence is real.
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_TRUE(serial == parallel)
        << "32-node run diverges between jobs=1 and jobs=4";
}

TEST(ClusterSim, JsonReportCarriesTheRunShape)
{
    ClusterConfig cfg = testCluster(4, 3);
    cfg.policy = "fastcap";
    cfg.budgetW = feasibleBudget(cfg, 0.7);
    ClusterSim sim(cfg);
    ClusterResult r = sim.run();
    std::ostringstream os;
    cluster::writeClusterJsonReport(cfg, r, os);
    std::string s = os.str();
    for (const char *key :
         {"\"nodes\"", "\"policy\"", "\"budget_w\"", "\"arrival\"",
          "\"worst_power_w\"", "\"cap_violation_epochs\"",
          "\"epochs\"", "\"completed\""})
        EXPECT_NE(s.find(key), std::string::npos) << key;
    EXPECT_NE(s.find("fastcap"), std::string::npos);
}

// --- churn spec parser: round trips and structured errors ---

cluster::ChurnParseError
expectChurnError(const std::string &spec,
                 cluster::ChurnParseError::Kind kind)
{
    try {
        cluster::parseChurnSpec(spec);
    } catch (const cluster::ChurnParseError &e) {
        EXPECT_EQ(static_cast<int>(e.kind()), static_cast<int>(kind))
            << "spec '" << spec << "': " << e.what();
        return e;
    }
    ADD_FAILURE() << "spec '" << spec << "' parsed without error";
    return cluster::ChurnParseError(
        cluster::ChurnParseError::Kind::EmptySpec, "", 0, "");
}

TEST(ChurnParse, FormatRoundTrips)
{
    cluster::ChurnPlan p;
    p.seed = 99;
    p.crashProb = 0.05;
    p.rebootEpochs = 4;
    p.rampEpochs = 3;
    p.flapProb = 0.02;
    p.hangProb = 0.07;
    p.hangEpochs = 5;
    p.blackoutProb = 0.15;
    p.blackoutEpochs = 2;
    p.suspectAfter = 2;
    p.deadAfter = 4;
    cluster::ChurnPlan q =
        cluster::parseChurnSpec(cluster::formatChurnSpec(p));
    EXPECT_EQ(q.seed, p.seed);
    EXPECT_DOUBLE_EQ(q.crashProb, p.crashProb);
    EXPECT_EQ(q.rebootEpochs, p.rebootEpochs);
    EXPECT_EQ(q.rampEpochs, p.rampEpochs);
    EXPECT_DOUBLE_EQ(q.flapProb, p.flapProb);
    EXPECT_DOUBLE_EQ(q.hangProb, p.hangProb);
    EXPECT_EQ(q.hangEpochs, p.hangEpochs);
    EXPECT_DOUBLE_EQ(q.blackoutProb, p.blackoutProb);
    EXPECT_EQ(q.blackoutEpochs, p.blackoutEpochs);
    EXPECT_EQ(q.suspectAfter, p.suspectAfter);
    EXPECT_EQ(q.deadAfter, p.deadAfter);
    EXPECT_TRUE(q.enabled());
}

TEST(ChurnParse, UnsetKeysKeepDefaults)
{
    cluster::ChurnPlan p = cluster::parseChurnSpec("crash=0.1");
    EXPECT_DOUBLE_EQ(p.crashProb, 0.1);
    EXPECT_EQ(p.rebootEpochs, cluster::ChurnPlan{}.rebootEpochs);
    EXPECT_EQ(p.deadAfter, cluster::ChurnPlan{}.deadAfter);
    EXPECT_EQ(p.seed, 0u);
    EXPECT_TRUE(p.enabled());
    EXPECT_FALSE(cluster::ChurnPlan{}.enabled());
}

TEST(ChurnParse, StructuredErrorKinds)
{
    using Kind = cluster::ChurnParseError::Kind;
    expectChurnError("", Kind::EmptySpec);
    expectChurnError("crash", Kind::BadToken);
    expectChurnError("=0.1", Kind::BadToken);
    expectChurnError("crash=", Kind::BadToken);
    expectChurnError("crash=0.1,,", Kind::BadToken);
    expectChurnError("bogus=3", Kind::UnknownKey);
    expectChurnError("crash=abc", Kind::BadValue);
    expectChurnError("seed=-3", Kind::BadValue);
    expectChurnError("crash=nan", Kind::BadValue);
    expectChurnError("crash=1.5", Kind::OutOfRange);
    expectChurnError("crash=-0.1", Kind::OutOfRange);
    expectChurnError("reboot=0", Kind::OutOfRange);
    expectChurnError("hangx=0", Kind::OutOfRange);
    expectChurnError("crash=0.1,crash=0.2", Kind::DuplicateKey);
    // The cross-field check: dead must be >= suspect.
    expectChurnError("suspect=3,dead=2", Kind::OutOfRange);
}

TEST(ChurnParse, ErrorCarriesTokenAndOffset)
{
    cluster::ChurnParseError e = expectChurnError(
        "crash=0.05,bogus=3",
        cluster::ChurnParseError::Kind::UnknownKey);
    EXPECT_EQ(e.token(), "bogus=3");
    EXPECT_EQ(e.charOffset(), 11u);
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
}

// --- churn draws: stateless determinism ---

TEST(ChurnDraw, PureFunctionOfPlanSeedEpochNode)
{
    cluster::ChurnPlan p;
    p.crashProb = 0.3;
    p.hangProb = 0.3;
    p.hangEpochs = 4;
    p.blackoutProb = 0.3;
    p.blackoutEpochs = 3;
    int crashes = 0;
    for (std::uint64_t e = 0; e < 64; ++e) {
        for (std::uint64_t nd = 0; nd < 8; ++nd) {
            bool c = cluster::churnCrashAt(p, 42, e, nd);
            EXPECT_EQ(c, cluster::churnCrashAt(p, 42, e, nd));
            crashes += c ? 1 : 0;
            int h = cluster::churnHangLenAt(p, 42, e, nd);
            EXPECT_EQ(h, cluster::churnHangLenAt(p, 42, e, nd));
            EXPECT_GE(h, 0);
            EXPECT_LE(h, p.hangEpochs);
            int b = cluster::churnBlackoutLenAt(p, 42, e, nd);
            EXPECT_GE(b, 0);
            EXPECT_LE(b, p.blackoutEpochs);
        }
    }
    // With prob 0.3 over 512 draws, some crash and some do not.
    EXPECT_GT(crashes, 0);
    EXPECT_LT(crashes, 512);
}

TEST(ChurnDraw, ZeroAndCertainProbabilitiesPin)
{
    cluster::ChurnPlan none;
    cluster::ChurnPlan sure;
    sure.crashProb = 1.0;
    sure.flapProb = 1.0;
    sure.hangProb = 1.0;
    for (std::uint64_t e = 0; e < 32; ++e) {
        EXPECT_FALSE(cluster::churnCrashAt(none, 7, e, 0));
        EXPECT_EQ(cluster::churnHangLenAt(none, 7, e, 0), 0);
        EXPECT_TRUE(cluster::churnCrashAt(sure, 7, e, 0));
        EXPECT_TRUE(cluster::churnFlapAt(sure, 7, e, 0));
        EXPECT_GE(cluster::churnHangLenAt(sure, 7, e, 0), 1);
    }
}

TEST(ChurnDraw, SeedDerivationIsStableAndNonZero)
{
    cluster::ChurnPlan p;
    // Explicit plan seed wins; otherwise derived from cluster seed.
    p.seed = 123;
    EXPECT_EQ(cluster::churnSeed(p, 7), 123u);
    p.seed = 0;
    EXPECT_NE(cluster::churnSeed(p, 7), 0u);
    EXPECT_EQ(cluster::churnSeed(p, 7), cluster::churnSeed(p, 7));
    EXPECT_NE(cluster::churnSeed(p, 7), cluster::churnSeed(p, 8));
}

// --- HealthMonitor: the belief lifecycle ---

TEST(HealthMonitor, LifecycleAliveSuspectDeadRejoining)
{
    using cluster::NodeHealth;
    cluster::HealthMonitor m(2, 1, 3);
    EXPECT_EQ(m.health(0), NodeHealth::Alive);

    // One missed deadline: suspect, not dead.
    cluster::HealthMonitor::Verdict v = m.observe(0, false);
    EXPECT_EQ(v.health, NodeHealth::Suspect);
    EXPECT_FALSE(v.justDied);
    EXPECT_EQ(m.missedHeartbeats(0), 1);

    // A heartbeat clears the suspicion entirely.
    v = m.observe(0, true);
    EXPECT_EQ(v.health, NodeHealth::Alive);
    EXPECT_EQ(m.missedHeartbeats(0), 0);

    // Three consecutive misses: dead, with the edge fired once.
    m.observe(0, false);
    m.observe(0, false);
    v = m.observe(0, false);
    EXPECT_EQ(v.health, NodeHealth::Dead);
    EXPECT_TRUE(v.justDied);
    v = m.observe(0, false);
    EXPECT_EQ(v.health, NodeHealth::Dead);
    EXPECT_FALSE(v.justDied); // edge, not level

    // Heartbeat returns: rejoining (ramping), then alive once the
    // cluster reports the ramp finished.
    v = m.observe(0, true);
    EXPECT_EQ(v.health, NodeHealth::Rejoining);
    EXPECT_TRUE(v.justRejoined);
    v = m.observe(0, true);
    EXPECT_FALSE(v.justRejoined);
    m.markRampDone(0);
    EXPECT_EQ(m.health(0), NodeHealth::Alive);

    // Node 1 was never touched and stays alive throughout.
    EXPECT_EQ(m.health(1), NodeHealth::Alive);
    EXPECT_EQ(m.countWith(NodeHealth::Alive), 2);
    EXPECT_EQ(m.countWith(NodeHealth::Dead), 0);
}

// --- ClusterSim under churn: self-healing properties ---

/** testCluster with every failure mode armed. */
ClusterConfig
churnedCluster(int nodes, int epochs)
{
    ClusterConfig cfg = testCluster(nodes, epochs);
    cfg.churn.crashProb = 0.08;
    cfg.churn.rebootEpochs = 3;
    cfg.churn.rampEpochs = 2;
    cfg.churn.flapProb = 0.05;
    cfg.churn.hangProb = 0.05;
    cfg.churn.hangEpochs = 3;
    cfg.churn.blackoutProb = 0.1;
    cfg.churn.suspectAfter = 1;
    cfg.churn.deadAfter = 2;
    cfg.churn.seed = 11;
    return cfg;
}

TEST(ClusterChurn, BooksBalanceAndAvailabilityDegrades)
{
    ClusterConfig cfg = churnedCluster(8, 12);
    cfg.policy = "coscale";
    ClusterSim sim(cfg);
    ClusterResult r = sim.run();

    // Request conservation survives crashes, drains, and re-routes:
    // parked (unrouted) work is part of the final backlog.
    EXPECT_EQ(r.totalArrivals, r.totalCompleted + r.finalQueued);
    EXPECT_GT(r.totalArrivals, 0u);

    // Churn actually bit, and the availability accounting agrees
    // with the per-epoch phase counts.
    EXPECT_GT(r.churn.total(), 0u);
    EXPECT_EQ(r.nodeEpochs,
              static_cast<std::uint64_t>(cfg.numNodes)
                  * static_cast<std::uint64_t>(cfg.epochs));
    EXPECT_LT(r.availability, 1.0);
    EXPECT_GT(r.availability, 0.0);
    EXPECT_DOUBLE_EQ(r.availability,
                     static_cast<double>(r.nodeEpochsServing)
                         / static_cast<double>(r.nodeEpochs));
    EXPECT_EQ(r.totalSloViolations,
              r.sloViolationsDegraded + r.sloViolationsClean);

    std::uint64_t down_epochs = 0;
    for (const ClusterEpochStats &e : r.epochs) {
        down_epochs += e.downNodes;
        if (e.downNodes + e.hungNodes > 0) {
            EXPECT_TRUE(e.degraded) << "epoch " << e.epoch;
        }
    }
    EXPECT_EQ(down_epochs, r.churn.downNodeEpochs);
}

TEST(ClusterChurn, FastCapHoldsTheCapThroughChurn)
{
    // The headline robustness property: node crashes, hangs, and
    // telemetry blackouts never let measured fleet power exceed a
    // feasible budget — stale nodes are budgeted at their last-known
    // worst case, dead nodes are fenced before reclaim.
    ClusterConfig cfg = churnedCluster(8, 12);
    cfg.policy = "fastcap";
    ClusterConfig clean = cfg;
    clean.churn = cluster::ChurnPlan{};
    cfg.budgetW = feasibleBudget(clean, 0.7);
    ClusterSim sim(cfg);
    ClusterResult r = sim.run();
    EXPECT_GT(r.churn.total(), 0u);
    EXPECT_EQ(r.capViolationEpochs, 0u);
    EXPECT_LE(r.worstPowerW, cfg.budgetW);
    for (const ClusterEpochStats &e : r.epochs) {
        EXPECT_LE(e.grantSumW, cfg.budgetW * (1.0 + 1e-9))
            << "epoch " << e.epoch;
    }
}

TEST(ClusterChurn, DeadNodesAreDrainedAndRerouted)
{
    // Force deaths: every miss counts, a crash outlives the dead
    // threshold, so the monitor must declare death, drain the
    // victim's queue, and re-route it to survivors.
    ClusterConfig cfg = testCluster(6, 10);
    cfg.policy = "coscale";
    cfg.churn.crashProb = 0.15;
    cfg.churn.rebootEpochs = 4;
    cfg.churn.rampEpochs = 1;
    cfg.churn.suspectAfter = 1;
    cfg.churn.deadAfter = 2;
    cfg.churn.seed = 5;
    ClusterSim sim(cfg);
    ClusterResult r = sim.run();
    EXPECT_GT(r.churn.crashes, 0u);
    EXPECT_GT(r.churn.deaths, 0u);
    EXPECT_GT(r.churn.reroutedRequests, 0u);
    EXPECT_EQ(r.totalArrivals, r.totalCompleted + r.finalQueued);
    // Books stay balanced per epoch too (rerouted work is moved,
    // never duplicated or dropped).
    std::uint64_t arrivals = 0;
    std::uint64_t completed = 0;
    for (const ClusterEpochStats &e : r.epochs) {
        arrivals += e.arrivals;
        completed += e.completed;
        EXPECT_EQ(arrivals, completed + e.queued)
            << "epoch " << e.epoch;
    }
}

TEST(ClusterChurn, RebootedNodesRampBackToService)
{
    ClusterConfig cfg = churnedCluster(8, 16);
    cfg.policy = "fastcap";
    ClusterConfig clean = cfg;
    clean.churn = cluster::ChurnPlan{};
    cfg.budgetW = feasibleBudget(clean, 0.7);
    ClusterSim sim(cfg);
    ClusterResult r = sim.run();
    // Crashes happened and at least one node completed the full
    // down -> reboot -> ramp -> alive arc.
    EXPECT_GT(r.churn.crashes + r.churn.flaps, 0u);
    EXPECT_GT(r.churn.rejoins, 0u);
    EXPECT_GT(r.nodeEpochsServing, 0u);
}

TEST(ClusterChurn, DisabledPlanIsByteIdenticalToPreChurn)
{
    // cfg.churn default-constructs disabled; the golden fixtures
    // below pin the exact pre-churn bytes. Here: a disabled plan is
    // the same object as "no churn config at all".
    ClusterConfig a = testCluster(4, 3);
    ClusterConfig b = testCluster(4, 3);
    b.churn = cluster::ChurnPlan{};
    EXPECT_FALSE(b.churn.enabled());
    EXPECT_EQ(runTraced(a), runTraced(b));
}

TEST(ClusterChurn, SerialAndJobs4ChurnedRunsAreByteIdentical)
{
    // The acceptance gate: a 32-node churned, capped run — crashes,
    // fences, drains, re-routes and all — must be byte-for-byte
    // identical between --jobs 1 and --jobs 4.
    ClusterConfig cfg = churnedCluster(32, 4);
    cfg.policy = "fastcap";
    cfg.budgetW = 32.0 * 30.0;
    cfg.jobs = 1;
    std::string serial = runTraced(cfg);
    cfg.jobs = 4;
    std::string parallel = runTraced(cfg);
    EXPECT_FALSE(serial.empty());
    ASSERT_EQ(serial.size(), parallel.size());
    EXPECT_TRUE(serial == parallel)
        << "32-node churned run diverges between jobs=1 and jobs=4";
}

// --- golden fixtures: the cluster trace format, pinned ---

ClusterConfig
goldenConfig()
{
    ClusterConfig cfg = testCluster(8, 6);
    cfg.policy = "fastcap";
    cfg.budgetW = feasibleBudget(cfg, 0.7);
    return cfg;
}

TEST(ClusterGolden, EightNodeFastCapTraceMatchesFixture)
{
    checkGolden("cluster_8node_fastcap.jsonl",
                runTraced(goldenConfig()));
}

TEST(ClusterGolden, FaultedTwinMatchesFixtureAndDiverges)
{
    ClusterConfig cfg = goldenConfig();
    cfg.faults.counterNoiseAmp = 0.05;
    cfg.faults.counterNoiseBias = 0.02;
    cfg.faults.transitionDenyProb = 0.25;
    ASSERT_TRUE(cfg.faults.enabled());
    std::string faulted = runTraced(cfg);
    // Faults must actually bite (the summary aggregates over nodes)
    // and perturb the trace relative to the clean twin.
    ClusterSim sim(cfg);
    ClusterResult r = sim.run();
    EXPECT_GT(r.faults.total(), 0u);
    EXPECT_NE(faulted, runTraced(goldenConfig()));
    checkGolden("cluster_8node_fastcap_faulted.jsonl", faulted);
}

TEST(ClusterGolden, ChurnedTwinMatchesFixtureAndDiverges)
{
    // Pins the failure-domain trace format: churn events, per-epoch
    // phase/health fields, and the churn summary block in the
    // report. The clean fixture above stays untouched — a disabled
    // plan emits none of these.
    ClusterConfig cfg = goldenConfig();
    cfg.churn.crashProb = 0.08;
    cfg.churn.rebootEpochs = 2;
    cfg.churn.rampEpochs = 1;
    cfg.churn.hangProb = 0.05;
    cfg.churn.blackoutProb = 0.1;
    cfg.churn.suspectAfter = 1;
    cfg.churn.deadAfter = 2;
    cfg.churn.seed = 11;
    ASSERT_TRUE(cfg.churn.enabled());
    std::string churned = runTraced(cfg);
    ClusterSim sim(cfg);
    ClusterResult r = sim.run();
    EXPECT_GT(r.churn.total(), 0u);
    EXPECT_NE(churned, runTraced(goldenConfig()));
    checkGolden("cluster_8node_fastcap_churned.jsonl", churned);
}

} // namespace
} // namespace coscale
