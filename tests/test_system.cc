/**
 * @file
 * Tests for the assembled System: event-loop consistency, per-core
 * time accounting, DVFS transitions, deep-copy determinism (the
 * property the Offline oracle depends on), profiling, and power
 * windows.
 */

#include <gtest/gtest.h>

#include "sim/system.hh"
#include "workloads/spec_catalogue.hh"

namespace coscale {
namespace {

SystemConfig
smallConfig()
{
    SystemConfig cfg = makeScaledConfig(0.02);
    cfg.numCores = 4;
    return cfg;
}

std::vector<AppSpec>
smallApps(const SystemConfig &cfg, const std::string &mix = "MID1")
{
    return expandMix(mixByName(mix), cfg.numCores, cfg.instrBudget);
}

TEST(System, RunsAndRetiresInstructions)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg, smallApps(cfg));
    sys.run(100 * tickPerUs);
    EXPECT_EQ(sys.now(), 100 * tickPerUs);
    for (int i = 0; i < sys.numCores(); ++i)
        EXPECT_GT(sys.core(i).counters().tic, 1000u);
    EXPECT_GT(sys.llc().counters().accesses, 100u);
    EXPECT_GT(sys.memCtrl().totalCounters().readReqs, 0u);
}

TEST(System, TimeAccountingAddsUp)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg, smallApps(cfg));
    Tick horizon = 200 * tickPerUs;
    sys.run(horizon);
    for (int i = 0; i < sys.numCores(); ++i) {
        const CoreCounters &c = sys.core(i).counters();
        Tick accounted = c.computeTicks + c.l2StallTicks
                         + c.memStallTicks + c.transitionTicks;
        // The unaccounted remainder is at most one in-flight segment.
        EXPECT_LE(accounted, horizon);
        EXPECT_GT(accounted, horizon * 9 / 10);
    }
}

TEST(System, CounterConsistencyAcrossHierarchy)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg, smallApps(cfg));
    sys.run(300 * tickPerUs);

    std::uint64_t tla = 0, tlm = 0;
    for (int i = 0; i < sys.numCores(); ++i) {
        tla += sys.core(i).counters().tla;
        tlm += sys.core(i).counters().tlm;
    }
    const LlcCounters &llc = sys.llc().counters();
    // Cores' L2 accesses equal LLC accesses (up to in-flight ones).
    EXPECT_NEAR(static_cast<double>(llc.accesses),
                static_cast<double>(tla), 4.0);
    EXPECT_NEAR(static_cast<double>(llc.misses),
                static_cast<double>(tlm), 4.0);
    // Every LLC miss became a DRAM read (up to queue occupancy).
    ChannelCounters mem = sys.memCtrl().totalCounters();
    EXPECT_LE(mem.readReqs, llc.misses);
    EXPECT_GT(mem.readReqs + 200, llc.misses);
}

TEST(System, ApplyConfigChangesFrequencies)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg, smallApps(cfg));
    sys.run(50 * tickPerUs);
    FreqConfig fc = FreqConfig::allMax(sys.numCores());
    fc.coreIdx[1] = 4;
    fc.memIdx = 3;
    sys.applyConfig(fc);
    EXPECT_EQ(sys.currentConfig().coreIdx[1], 4);
    EXPECT_EQ(sys.currentConfig().memIdx, 3);
    sys.run(100 * tickPerUs);
    EXPECT_GT(sys.core(1).counters().transitionTicks, 0u);
    EXPECT_EQ(sys.core(0).counters().transitionTicks, 0u);
}

TEST(System, SlowerConfigRetiresFewerInstructions)
{
    SystemConfig cfg = smallConfig();
    System fast(cfg, smallApps(cfg));
    System slow(cfg, smallApps(cfg));
    FreqConfig fc = FreqConfig::allMax(cfg.numCores);
    for (auto &c : fc.coreIdx)
        c = 9;
    fc.memIdx = 9;
    slow.applyConfig(fc);
    Tick horizon = 500 * tickPerUs;
    fast.run(horizon);
    slow.run(horizon);
    std::uint64_t fast_instrs = 0, slow_instrs = 0;
    for (int i = 0; i < cfg.numCores; ++i) {
        fast_instrs += fast.core(i).counters().tic;
        slow_instrs += slow.core(i).counters().tic;
    }
    EXPECT_LT(slow_instrs, fast_instrs * 8 / 10);
}

TEST(System, DeepCopyDivergesNever)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg, smallApps(cfg));
    sys.run(100 * tickPerUs);

    System clone = sys;
    // Run both forward identically; they must stay in lockstep.
    sys.run(400 * tickPerUs);
    clone.run(400 * tickPerUs);
    for (int i = 0; i < cfg.numCores; ++i) {
        EXPECT_EQ(sys.core(i).counters().tic,
                  clone.core(i).counters().tic);
        EXPECT_EQ(sys.core(i).counters().memStallTicks,
                  clone.core(i).counters().memStallTicks);
    }
    EXPECT_EQ(sys.llc().counters().misses, clone.llc().counters().misses);
    ChannelCounters a = sys.memCtrl().totalCounters();
    ChannelCounters b = clone.memCtrl().totalCounters();
    EXPECT_EQ(a.readReqs, b.readReqs);
    EXPECT_EQ(a.busBusyTicks, b.busBusyTicks);
}

TEST(System, CloneRunAheadDoesNotDisturbOriginal)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg, smallApps(cfg));
    sys.run(100 * tickPerUs);
    CounterSnapshot before = sys.snapshot();

    SystemProfile oracle = sys.oracleProfile(cfg.epochLen);
    EXPECT_GT(oracle.cores[0].instrs, 0u);

    CounterSnapshot after = sys.snapshot();
    EXPECT_EQ(before.tick, after.tick);
    EXPECT_EQ(before.cores[0].tic, after.cores[0].tic);
    EXPECT_EQ(before.llc.misses, after.llc.misses);
}

TEST(System, OracleProfileIsAtMaxFrequencies)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg, smallApps(cfg));
    FreqConfig slow = FreqConfig::allMax(cfg.numCores);
    slow.memIdx = 6;
    for (auto &c : slow.coreIdx)
        c = 5;
    sys.applyConfig(slow);
    sys.run(200 * tickPerUs);
    SystemProfile oracle = sys.oracleProfile(cfg.epochLen);
    for (int idx : oracle.profiledCoreIdx)
        EXPECT_EQ(idx, 0);
    EXPECT_EQ(oracle.profiledMemIdx, 0);
}

TEST(System, ProfileReflectsWindowOnly)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg, smallApps(cfg));
    sys.run(200 * tickPerUs);
    CounterSnapshot snap = sys.snapshot();
    sys.run(400 * tickPerUs);
    SystemProfile prof = sys.makeProfile(snap);
    EXPECT_EQ(prof.windowTicks, 200 * tickPerUs);
    for (int i = 0; i < cfg.numCores; ++i) {
        EXPECT_EQ(prof.cores[static_cast<size_t>(i)].instrs,
                  sys.core(i).counters().tic - snap.cores[static_cast<size_t>(i)].tic);
    }
}

TEST(System, WindowPowerIsPositiveAndSplit)
{
    SystemConfig cfg = smallConfig();
    System sys(cfg, smallApps(cfg));
    CounterSnapshot snap = sys.snapshot();
    sys.run(300 * tickPerUs);
    PowerBreakdown pb = sys.windowPower(snap);
    EXPECT_GT(pb.cpuW, 1.0);
    EXPECT_GT(pb.memW, 1.0);
    EXPECT_GT(pb.otherW, 1.0);
    EXPECT_NEAR(pb.totalW(), pb.cpuW + pb.memW + pb.otherW, 1e-9);
}

TEST(System, CompletionTracking)
{
    SystemConfig cfg = smallConfig();
    cfg.instrBudget = 50'000;
    System sys(cfg, smallApps(cfg));
    EXPECT_FALSE(sys.allAppsDone());
    Tick t = 100 * tickPerUs;
    while (!sys.allAppsDone() && t < 100 * tickPerMs) {
        sys.run(t);
        t += 100 * tickPerUs;
    }
    EXPECT_TRUE(sys.allAppsDone());
    auto completions = sys.appCompletionTicks();
    Tick last = 0;
    for (Tick c : completions) {
        EXPECT_NE(c, maxTick);
        last = std::max(last, c);
    }
    EXPECT_EQ(sys.lastCompletionTick(), last);
}

TEST(System, DeterministicAcrossIdenticalConstructions)
{
    SystemConfig cfg = smallConfig();
    System a(cfg, smallApps(cfg));
    System b(cfg, smallApps(cfg));
    a.run(300 * tickPerUs);
    b.run(300 * tickPerUs);
    for (int i = 0; i < cfg.numCores; ++i)
        EXPECT_EQ(a.core(i).counters().tic, b.core(i).counters().tic);
    EXPECT_EQ(a.llc().counters().misses, b.llc().counters().misses);
}

TEST(System, DifferentSeedsDiverge)
{
    SystemConfig cfg = smallConfig();
    SystemConfig cfg2 = cfg;
    cfg2.seed = 999;
    System a(cfg, smallApps(cfg));
    System b(cfg2, smallApps(cfg2));
    a.run(300 * tickPerUs);
    b.run(300 * tickPerUs);
    EXPECT_NE(a.llc().counters().accesses, b.llc().counters().accesses);
}

} // namespace
} // namespace coscale
