/**
 * @file
 * Unit tests for the common module: tick/unit conversions, frequency
 * ladders and the voltage map, the RNG distributions, and CSV output.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/csv.hh"
#include "common/dvfs.hh"
#include "common/rng.hh"
#include "common/types.hh"

namespace coscale {
namespace {

TEST(Types, PeriodOfCommonFrequencies)
{
    EXPECT_EQ(periodTicks(1 * GHz), 1000u);
    EXPECT_EQ(periodTicks(4 * GHz), 250u);
    EXPECT_EQ(periodTicks(800 * MHz), 1250u);
    EXPECT_EQ(periodTicks(200 * MHz), 5000u);
}

TEST(Types, UnitConversionsRoundTrip)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(tickPerSec), 1.0);
    EXPECT_EQ(secondsToTicks(1e-3), tickPerMs);
    EXPECT_EQ(nsToTicks(15.0), 15000u);
    EXPECT_DOUBLE_EQ(ticksToNs(15000), 15.0);
    EXPECT_EQ(cyclesToTicks(28, 800 * MHz), 35000u);
}

TEST(FreqLadder, DefaultCoreLadderMatchesPaper)
{
    FreqLadder l = defaultCoreLadder();
    ASSERT_EQ(l.size(), 10);
    EXPECT_DOUBLE_EQ(l.freq(0), 4.0 * GHz);
    EXPECT_DOUBLE_EQ(l.freq(9), 2.2 * GHz);
    EXPECT_NEAR(l.freq(1), 3.8 * GHz, 1.0);
    EXPECT_DOUBLE_EQ(l.voltage(0), 1.20);
    EXPECT_DOUBLE_EQ(l.voltage(9), 0.65);
    // Linear voltage map.
    EXPECT_NEAR(l.voltage(5), 0.65 + (1.2 - 0.65) * (3.0 - 2.2) / 1.8,
                1e-9);
}

TEST(FreqLadder, DefaultMemLadderMatchesPaper)
{
    FreqLadder l = defaultMemLadder();
    ASSERT_EQ(l.size(), 10);
    EXPECT_DOUBLE_EQ(l.freq(0), 800 * MHz);
    EXPECT_DOUBLE_EQ(l.freq(9), 200 * MHz);
    // 66 MHz steps.
    for (int i = 1; i < 9; ++i)
        EXPECT_NEAR(l.freq(i - 1) - l.freq(i), 66 * MHz, 1e6);
}

TEST(FreqLadder, HalfVoltageRange)
{
    FreqLadder l = halfVoltageCoreLadder();
    EXPECT_DOUBLE_EQ(l.voltage(0), 1.20);
    EXPECT_DOUBLE_EQ(l.voltage(9), 0.95);
}

TEST(FreqLadder, ScaleDirectionHelpers)
{
    FreqLadder l = defaultCoreLadder(4);
    EXPECT_TRUE(l.canScaleDown(0));
    EXPECT_FALSE(l.canScaleDown(3));
    EXPECT_FALSE(l.canScaleUp(0));
    EXPECT_TRUE(l.canScaleUp(3));
}

TEST(FreqLadder, CustomStepCounts)
{
    for (int steps : {4, 7, 10}) {
        FreqLadder core = defaultCoreLadder(steps);
        FreqLadder mem = defaultMemLadder(steps);
        EXPECT_EQ(core.size(), steps);
        EXPECT_EQ(mem.size(), steps);
        EXPECT_DOUBLE_EQ(core.fMax(), 4.0 * GHz);
        EXPECT_DOUBLE_EQ(core.fMin(), 2.2 * GHz);
        EXPECT_DOUBLE_EQ(mem.fMax(), 800 * MHz);
        EXPECT_DOUBLE_EQ(mem.fMin(), 200 * MHz);
    }
}

TEST(Rng, Determinism)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, CopyPreservesStream)
{
    Rng a(7);
    a.next();
    Rng b = a;  // value copy
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange)
{
    Rng r(1);
    for (int i = 0; i < 10000; ++i) {
        double v = r.uniform();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ExponentialMean)
{
    Rng r(2);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(Rng, GeometricMean)
{
    Rng r(3);
    double sum = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(0.1));
    EXPECT_NEAR(sum / n, 10.0, 0.2);
}

TEST(Rng, GeometricAlwaysPositive)
{
    Rng r(4);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_GE(r.geometric(0.999), 1u);
        EXPECT_GE(r.geometric(1.0), 1u);
    }
}

TEST(Rng, BernoulliFrequency)
{
    Rng r(5);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Csv, WritesRowsToFile)
{
    std::string path = "test_csv_out.csv";
    {
        CsvWriter w(path);
        w.header({"a", "b", "c"});
        w.row().cell(1).cell(2.5).cell("x");
        w.row().cell("y").cell(3).cell(4.25);
        w.endRow();
    }
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    EXPECT_EQ(ss.str(), "a,b,c\n1,2.5,x\ny,3,4.25\n");
    std::remove(path.c_str());
}

} // namespace
} // namespace coscale
