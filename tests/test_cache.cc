/**
 * @file
 * Unit tests for the shared LLC: geometry, hit/miss behaviour, LRU
 * replacement, dirty-writeback generation, and the next-line
 * prefetcher (issue, accuracy accounting, pollution writebacks).
 */

#include <gtest/gtest.h>

#include "cache/llc.hh"

namespace coscale {
namespace {

LlcConfig
tinyConfig(int ways = 2, std::uint64_t blocks = 16)
{
    LlcConfig cfg;
    cfg.sizeBytes = blocks * blockBytes;
    cfg.ways = ways;
    return cfg;
}

TEST(Llc, GeometryOfPaperConfig)
{
    Llc llc{LlcConfig{}};
    // 16 MB / 64 B / 16 ways = 16384 sets.
    EXPECT_EQ(llc.numSets(), 16384);
    EXPECT_EQ(llc.hitLatency(), nsToTicks(7.5));
}

TEST(Llc, MissThenHit)
{
    Llc llc(tinyConfig());
    LlcAccessResult r1 = llc.access(0x42, false);
    EXPECT_FALSE(r1.hit);
    LlcAccessResult r2 = llc.access(0x42, false);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(llc.counters().accesses, 2u);
    EXPECT_EQ(llc.counters().hits, 1u);
    EXPECT_EQ(llc.counters().misses, 1u);
}

TEST(Llc, ProbeDoesNotDisturbState)
{
    Llc llc(tinyConfig());
    EXPECT_FALSE(llc.probe(7));
    llc.access(7, false);
    EXPECT_TRUE(llc.probe(7));
    EXPECT_EQ(llc.counters().accesses, 1u);
}

TEST(Llc, LruEvictsOldest)
{
    // 2-way, 8 sets: addresses 0, 8, 16 share set 0.
    Llc llc(tinyConfig(2, 16));
    llc.access(0, false);
    llc.access(8, false);
    llc.access(0, false);   // make 0 the MRU
    llc.access(16, false);  // evicts 8
    EXPECT_TRUE(llc.probe(0));
    EXPECT_FALSE(llc.probe(8));
    EXPECT_TRUE(llc.probe(16));
}

TEST(Llc, DirtyEvictionGeneratesWriteback)
{
    Llc llc(tinyConfig(2, 16));
    llc.access(0, true);    // dirty
    llc.access(8, false);
    LlcAccessResult r = llc.access(16, false);  // evicts dirty 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, 0u);
    EXPECT_EQ(llc.counters().writebacks, 1u);
}

TEST(Llc, CleanEvictionGeneratesNoWriteback)
{
    Llc llc(tinyConfig(2, 16));
    llc.access(0, false);
    llc.access(8, false);
    LlcAccessResult r = llc.access(16, false);
    EXPECT_FALSE(r.writeback);
    EXPECT_EQ(llc.counters().writebacks, 0u);
}

TEST(Llc, WriteHitMarksLineDirty)
{
    Llc llc(tinyConfig(2, 16));
    llc.access(0, false);   // clean insert
    llc.access(0, true);    // write hit dirties it
    llc.access(8, false);
    LlcAccessResult r = llc.access(16, false);  // evicts 0
    EXPECT_TRUE(r.writeback);
}

TEST(Llc, PrefetcherIssuesNextLine)
{
    LlcConfig cfg = tinyConfig(4, 64);
    cfg.prefetchNextLine = true;
    Llc llc(cfg);
    LlcAccessResult r = llc.access(100, false);
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.prefetchIssued);
    EXPECT_EQ(r.prefetchAddr, 101u);
    EXPECT_TRUE(llc.probe(101));
}

TEST(Llc, PrefetchHitCountsAsUseful)
{
    LlcConfig cfg = tinyConfig(4, 64);
    cfg.prefetchNextLine = true;
    Llc llc(cfg);
    llc.access(100, false);       // prefetches 101
    LlcAccessResult r = llc.access(101, false);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.hitOnPrefetch);
    EXPECT_EQ(llc.counters().prefetchIssued, 2u);  // 101 then 102
    EXPECT_EQ(llc.counters().prefetchUseful, 1u);
    EXPECT_DOUBLE_EQ(llc.prefetchAccuracy(), 0.5);
}

TEST(Llc, NoPrefetchWhenLineAlreadyPresent)
{
    LlcConfig cfg = tinyConfig(4, 64);
    cfg.prefetchNextLine = true;
    Llc llc(cfg);
    llc.access(101, false);       // brings in 101 (prefetches 102)
    LlcAccessResult r = llc.access(100, false);  // 101 present
    EXPECT_FALSE(r.prefetchIssued);
}

TEST(Llc, SecondUseOfPrefetchedLineIsNotUsefulAgain)
{
    LlcConfig cfg = tinyConfig(4, 64);
    cfg.prefetchNextLine = true;
    Llc llc(cfg);
    llc.access(100, false);
    llc.access(101, false);
    llc.access(101, false);
    EXPECT_EQ(llc.counters().prefetchUseful, 1u);
}

TEST(Llc, StreamingAccuracyApproachesRunLength)
{
    // A pure sequential stream: every block after the first per run
    // hits on a prefetch; accuracy should be high.
    LlcConfig cfg;
    cfg.sizeBytes = 1 << 20;
    cfg.ways = 16;
    cfg.prefetchNextLine = true;
    Llc llc(cfg);
    for (BlockAddr a = 0; a < 4096; ++a)
        llc.access(a, false);
    EXPECT_GT(llc.prefetchAccuracy(), 0.95);
    // Demand misses collapse to ~1 per stream start.
    EXPECT_LT(llc.counters().misses, 64u);
}

TEST(Llc, CopyIsIndependent)
{
    Llc a(tinyConfig());
    a.access(1, false);
    Llc b = a;
    b.access(2, false);
    EXPECT_EQ(a.counters().accesses, 1u);
    EXPECT_EQ(b.counters().accesses, 2u);
    EXPECT_TRUE(b.probe(1));
    EXPECT_FALSE(a.probe(2));
}

} // namespace
} // namespace coscale
