// Fixture: the annotated primitives from common/thread_annotations.hh
// are the sanctioned spelling; -Wthread-safety can see these.
#include "common/thread_annotations.hh"

class WorkQueue
{
  public:
    void
    push()
    {
        coscale::MutexLock lock(mu);
        ++pending;
        cv.notify_one();
    }

  private:
    coscale::Mutex mu;
    coscale::CondVar cv;
    int pending COSCALE_GUARDED_BY(mu) = 0;
};
