// Fixture: raw std locking primitives must fire — they are invisible
// to the clang thread-safety capability analysis.
#include <condition_variable>
#include <mutex>

class WorkQueue
{
  public:
    void
    push()
    {
        std::lock_guard<std::mutex> lock(mu);
        ++pending;
        cv.notify_one();
    }

  private:
    std::mutex mu;
    std::condition_variable cv;
    int pending = 0;
};
