// Fixture: an allow() without a justification is itself a finding —
// a waiver with no recorded reason cannot be audited or retired.

void
setupHostTelemetry()
{
    // coscale-lint: allow(wall-clock)
}
