// Fixture: a justified allow() on a real violation is the sanctioned
// escape hatch — it suppresses the finding and counts as used.
#include <ctime>

long
hostEpochForLogFilename()
{
    // coscale-lint: allow(wall-clock) -- log filenames carry host time by design; never read back into the simulation
    return static_cast<long>(time(nullptr));
}
