// Fixture: raw-assert must fire on assert/abort/exit in simulator
// code. (Fixtures are linted, never compiled.)
#include <cassert>
#include <cstdlib>

void
validate(int cores)
{
    assert(cores > 0);
    if (cores > 4096)
        std::abort();
    if (cores < 0)
        exit(1);
}
