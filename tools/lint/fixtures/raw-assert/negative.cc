// Fixture: the sanctioned spellings must stay silent — the contract
// macros, static_assert, and identifiers that merely contain the
// banned words.
#include "check/contract.hh"

static_assert(sizeof(long) >= 8, "simulator ticks need 64 bits");

void
validate(int cores)
{
    COSCALE_CHECK(cores > 0, "cores=%d", cores);
    COSCALE_DCHECK(cores <= 4096);
}

void
reassert_topology();  // contains "assert" but is not one

struct Port
{
    void abort_drain();  // member named abort_* is fine
};
