// The sanctioned entry point: frequency changes name their target
// through ChannelSel. Reading frequency indices back is fine.
#include "memctrl/mem_ctrl.hh"

namespace coscale {

int
bumpsFrequencyViaChannelSel(MemCtrl &mc, Tick now)
{
    mc.setFrequency(ChannelSel::all(), 1, now);
    mc.setFrequency(ChannelSel::one(0), 2, now);
    return mc.frequencyIndex() + mc.channelFrequencyIndex(0);
}

} // namespace coscale
