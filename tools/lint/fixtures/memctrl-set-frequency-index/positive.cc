// The pre-ChannelSel MemCtrl compat shims: both spellings route
// around the single audited setFrequency(ChannelSel, ...) entry
// point and were deleted.
#include "memctrl/mem_ctrl.hh"

namespace coscale {

void
bumpsFrequencyViaShims(MemCtrl &mc, Tick now)
{
    mc.setFrequencyIndex(1, now);
    mc.setChannelFrequencyIndex(0, 2, now);
}

} // namespace coscale
