// The sanctioned shape: a policy returns the knob vector it wants
// and the runner hands it to System::applyConfig — the single
// actuation point where reconciliation, fault clamps, and
// transition latencies all live. Reading knob state is fine.
#include "model/energy_model.hh"
#include "policy/policy.hh"

namespace coscale {

FreqConfig
policyOnlyDecides(const EnergyModel &em, const SystemProfile &profile,
                  const FreqConfig &prev)
{
    FreqConfig want = prev;
    if (!em.cores().empty())
        want.coreIdx.assign(profile.cores.size(), 0);
    // Way partitions travel the same road: fill want.wayIdx and let
    // the apply layer install it.
    want.wayIdx = prev.wayIdx;
    return want;
}

} // namespace coscale
