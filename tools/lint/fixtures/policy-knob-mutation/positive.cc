// A policy that actuates knobs itself: every one of these calls
// bypasses the runner's requested-vs-granted reconciliation, the
// fault injector's clamps, and the transition-latency accounting.
// (Per-core Core::setFrequencyIndex pokes from policy code are
// caught by the memctrl-set-frequency-index rule, whose exemptions
// never include src/policy/.)
#include "cache/llc.hh"
#include "memctrl/mem_ctrl.hh"

namespace coscale {

void
policyPokesTheHardware(MemCtrl &mc, Llc &cache, Tick now)
{
    mc.setFrequency(ChannelSel::all(), 1, now);
    cache.setPartition({8, 8});
    cache.setShadowTracking(2);
}

} // namespace coscale
