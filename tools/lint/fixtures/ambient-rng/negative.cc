// Fixture: run-owned seeded streams are the sanctioned randomness;
// identifiers merely containing the banned words stay silent.
#include "common/rng.hh"

int
jitterEpoch(coscale::Rng &rng, int span)
{
    // Deterministic: every draw comes from the run's seeded stream.
    return static_cast<int>(rng.nextU64() % span);
}

void
operandFetch();  // contains "rand" but is not a call to it
