// Fixture: ambient RNG must fire — rand() and std::random_device
// break the bit-identical-under---jobs-N contract.
#include <cstdlib>
#include <random>

int
jitterEpoch(int span)
{
    std::random_device entropy;
    (void)entropy;
    srand(42);
    return rand() % span;
}
