// Fixture: the sanctioned global forms stay silent — constants,
// atomics, and Mutex-guarded state annotated with COSCALE_GUARDED_BY.
#include <atomic>
#include <map>
#include <string>

#include "common/thread_annotations.hh"

namespace coscale {

constexpr int kMaxChannels = 8;

const char *const kPhaseNames[] = {"warm", "measure"};

static const double kNominalVoltage = 1.05;

std::atomic<unsigned long> totalRuns{0};

Mutex registryMu;

std::map<std::string, int> registry COSCALE_GUARDED_BY(registryMu);

int
bumpLocal()
{
    // Function-local state is out of scope for this rule (and the
    // engine never shares it).
    static int calls = 0;
    return ++calls;
}

} // namespace coscale
