// Fixture: unguarded mutable globals must fire — they are both a
// data race under the experiment engine and a run-purity hazard.
#include <string>

namespace coscale {

int liveRequests = 0;

static double lastObservedEnergy;

std::string currentPhase = "idle";

} // namespace coscale
