// Backend probing outside memctrl/ and dram/: both the resurrected
// openPage bool and direct comparisons against the backend enums put
// scheduling/row-policy knowledge back where the pluggable-backend
// refactor removed it.
#include "dram/mem_backend.hh"

namespace coscale {

bool
probesBackend(const MemBackendSel &sel, bool openPage)
{
    if (sel.sched == MemSched::FrFcfs)
        return true;
    if (RowPolicy::Open == sel.rowPolicy)
        return true;
    return openPage;
}

} // namespace coscale
