// Consuming the backend vocabulary without branching on it is fine:
// carry the selection, print its names, and let the memctrl/dram
// layers resolve the behavioural interfaces.
#include "dram/mem_backend.hh"

namespace coscale {

const char *
describesBackend(const MemBackendSel &sel)
{
    MemBackendSel copy = sel;
    copy.rowPolicy = RowPolicy::Open;  // assignment, not a probe
    if (copy != sel)
        return memSchedName(copy.sched);
    return dramStandardName(copy.standard);
}

} // namespace coscale
