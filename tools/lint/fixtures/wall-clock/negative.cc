// Fixture: sim ticks carry model time; steady_clock is monotonic
// host time, allowed for watchdogs/benchmarks because it is never
// serialized into traces or reports.
#include <chrono>

#include "common/types.hh"

double
watchdogSeconds(std::chrono::steady_clock::time_point since)
{
    auto dt = std::chrono::steady_clock::now() - since;
    return std::chrono::duration<double>(dt).count();
}

coscale::Tick
epochEnd(coscale::Tick start, coscale::Tick quantum)
{
    return start + quantum;  // model time advances by ticks only
}

void
realtime_scale();  // identifier containing "time" is fine
