// Fixture: wall-clock sources must fire — host time leaking into a
// simulation makes traces nondeterministic.
#include <chrono>
#include <ctime>

long
stampEpoch()
{
    auto now = std::chrono::system_clock::now();
    (void)now;
    return static_cast<long>(time(nullptr));
}
