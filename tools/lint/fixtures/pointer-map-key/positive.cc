// Fixture: pointer-valued map keys must fire — they order by
// allocation address, which varies run to run.
#include <map>
#include <set>

struct Node;

void
track(Node *n)
{
    static thread_local std::map<Node *, int> refCount;
    std::set<const Node *> visited;
    refCount[n]++;
    visited.insert(n);
}
