// Fixture: stable-id keys are fine, and pointer *values* are fine —
// only the key position orders iteration.
#include <map>
#include <string>

struct Node;

void
track(int nodeId, Node *n)
{
    static thread_local std::map<int, Node *> byId;
    static thread_local std::map<std::string, double> byName;
    byId[nodeId] = n;
    byName["root"] = 1.0;
}
