// Fixture: scalar struct members without default initializers must
// fire — a forgotten field reads indeterminate garbage.
#ifndef FIXTURE_MISSING_FIELD_INIT_POSITIVE_HH
#define FIXTURE_MISSING_FIELD_INIT_POSITIVE_HH

#include <cstdint>

struct EpochProfile
{
    double cpuEnergy;
    std::uint64_t memCycles;
    bool converged;
};

#endif
