// Fixture: initialized scalars, class-type members (which
// default-construct), constants, and ctor-managed structs stay
// silent.
#ifndef FIXTURE_MISSING_FIELD_INIT_NEGATIVE_HH
#define FIXTURE_MISSING_FIELD_INIT_NEGATIVE_HH

#include <cstdint>
#include <string>
#include <vector>

struct EpochProfile
{
    double cpuEnergy = 0.0;
    std::uint64_t memCycles = 0;
    bool converged = false;
    std::string label;                //!< default-constructs empty
    std::vector<double> perCore;      //!< default-constructs empty

    static constexpr int kMaxCores = 4096;
};

struct Interval
{
    // A user-declared constructor owns member initialization; the
    // textual rule stays out of its way.
    Interval(long lo, long hi);
    long lo;
    long hi;
};

#endif
