// Fixture: COSCALE_CHECK is the sanctioned spelling.
#include "check/contract.hh"

void
checkTick(long tick)
{
    COSCALE_CHECK(tick >= 0, "tick=%ld", tick);
}
