// Fixture: the deprecated coscale_assert spelling must fire.
#include "common/log.hh"

void
checkTick(long tick)
{
    coscale_assert(tick >= 0, "tick=%ld", tick);
}
