// Fixture: an allow() that suppresses nothing must fire — stale
// waivers hide future regressions at that site.

long
epochLength()
{
    // coscale-lint: allow(wall-clock) -- was time(nullptr) before the tick refactor
    return 1000000L;
}
