// Fixture: a justified allow() that matches a live violation is used,
// so nothing fires.
#include <ctime>

long
hostEpochForLogFilename()
{
    // coscale-lint: allow(wall-clock) -- log filenames carry host time by design; never read back into the simulation
    return static_cast<long>(time(nullptr));
}
