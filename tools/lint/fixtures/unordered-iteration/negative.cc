// Fixture: ordered-map iteration is fine, and point lookups into an
// unordered container (no iteration) are fine too.
#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>

void
dumpCounters(const std::map<std::string, long> &counters,
             const std::unordered_map<std::string, long> &cache)
{
    for (const auto &kv : counters)
        std::printf("%s=%ld\n", kv.first.c_str(), kv.second);
    auto hit = cache.find("llc.misses");
    if (hit != cache.end())
        std::printf("cached=%ld\n", hit->second);
}
