// Fixture: iterating an unordered container must fire — hash order
// would scramble JSONL traces and golden fixtures.
#include <cstdio>
#include <string>
#include <unordered_map>

void
dumpCounters(const std::unordered_map<std::string, long> &counters)
{
    for (const auto &kv : counters)
        std::printf("%s=%ld\n", kv.first.c_str(), kv.second);
}
