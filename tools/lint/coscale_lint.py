#!/usr/bin/env python3
"""CoScale invariant linter.

Statically bans the determinism and correctness hazards this repo has
already paid for at runtime: ambient randomness and wall-clock reads
that would break bit-identical runs, unordered-container iteration
that would scramble golden JSONL fixtures, raw asserts that bypass
the COSCALE_CHECK reporting path, unguarded mutable globals that
break run purity, raw std::mutex uses that dodge the clang
thread-safety annotations, and uninitialized scalar struct members.

Usage:
    coscale_lint.py [paths...]            # default: <repo>/src
    coscale_lint.py --self-test           # fixture corpus check
    coscale_lint.py --list-rules
    coscale_lint.py -p build              # also run clang-query rules
                                          # (needs compile_commands.json)
    coscale_lint.py --json                # machine-readable findings

Suppression syntax (same line or the line above the violation):

    // coscale-lint: allow(<rule-id>) -- <justification>

The justification is mandatory; an allow() without one is itself a
finding (`bad-suppression`), and an allow() that suppresses nothing
is reported as `unused-suppression` so stale waivers cannot linger.

Exit status: 0 clean, 1 findings, 2 usage/tool errors.
"""

import argparse
import json
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
FIXTURE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "fixtures")

SOURCE_EXTS = (".cc", ".hh", ".h", ".cpp", ".hpp")

# ---------------------------------------------------------------------------
# Rule catalog. `exempt` paths (repo-relative) are the implementation
# sites of the sanctioned alternative itself; everything else needs an
# inline, justified allow().
# ---------------------------------------------------------------------------

RULES = {
    "raw-assert": {
        "desc": "raw assert()/abort()/exit() bypasses COSCALE_CHECK",
        "why": "COSCALE_CHECK reports expression + file:line and "
               "honours PanicBehavior::Throw, so tests can observe "
               "violations; a raw assert/abort kills the process and "
               "is compiled out under NDEBUG.",
        "hint": "use COSCALE_CHECK/COSCALE_DCHECK (check/contract.hh) "
                "or coscale_panic/fatal (common/log.hh)",
        # log.cc implements fatal/panic (the one sanctioned
        # abort/exit); contract.hh + log.hh define the macros whose
        # expansions mention the banned spellings.
        "exempt": ["src/common/log.cc", "src/common/log.hh",
                   "src/check/contract.hh"],
    },
    "legacy-assert": {
        "desc": "coscale_assert is the deprecated spelling of "
                "COSCALE_CHECK",
        "why": "one invariant macro family keeps grep, tooling, and "
               "the suppression story simple.",
        "hint": "spell it COSCALE_CHECK",
        "exempt": ["src/common/log.hh"],  # the definition itself
    },
    "ambient-rng": {
        "desc": "ambient RNG (rand/random_device/...) in simulator "
                "code",
        "why": "every random draw must come from a run-owned seeded "
               "stream (common/rng.hh); ambient RNG breaks the "
               "bit-identical-under---jobs-N contract and faulted-run "
               "reproducibility.",
        "hint": "thread a seeded coscale rng through instead",
        "exempt": [],
    },
    "wall-clock": {
        "desc": "wall-clock time source in simulator code",
        "why": "simulation output must be a pure function of the "
               "request; wall-clock reads leak host time into traces "
               "and golden fixtures. Host-side std::chrono::"
               "steady_clock is allowed for watchdogs/benchmarks "
               "because it is monotonic and never serialized.",
        "hint": "use sim ticks for model time, steady_clock for "
                "host-side-only timing",
        "exempt": [],
    },
    "unordered-iteration": {
        "desc": "iteration over std::unordered_{map,set}",
        "why": "hash-order iteration feeds nondeterministic ordering "
               "into traces, JSONL reports, and metrics — the exact "
               "hazard class the golden fixtures pin. Keyed state "
               "that gets iterated must be std::map/std::set.",
        "hint": "use std::map/std::set, or copy to a sorted vector "
                "before iterating",
        "exempt": [],
    },
    "pointer-map-key": {
        "desc": "pointer-valued key in an associative container",
        "why": "pointer keys order by allocation address, which "
               "varies run to run — iteration and tie-breaks become "
               "nondeterministic even in std::map.",
        "hint": "key by a stable id (index, name, digest) instead",
        "exempt": [],
    },
    "mutable-global": {
        "desc": "mutable namespace-scope variable without atomic or "
                "COSCALE_GUARDED_BY protection",
        "why": "unguarded globals are both a data race (engine "
               "workers) and a run-purity hazard (state bleeding "
               "between requests). The sanctioned forms are "
               "std::atomic, a coscale::Mutex-guarded member with "
               "COSCALE_GUARDED_BY, or const/constexpr.",
        "hint": "make it const/constexpr, std::atomic, or guard it "
                "with a Mutex + COSCALE_GUARDED_BY",
        "exempt": [],
    },
    "missing-field-init": {
        "desc": "scalar struct member without a default initializer",
        "why": "an uninitialized scalar in a config/profile/stats "
               "struct reads indeterminate garbage the first time a "
               "caller forgets one field — nondeterminism that "
               "sanitizers only catch on the path that executes.",
        "hint": "give the member a default member initializer "
                "(e.g. `int n = 0;`)",
        "exempt": [],
    },
    "raw-mutex": {
        "desc": "raw std::mutex/lock/condition_variable instead of "
                "the annotated types",
        "why": "coscale::Mutex/MutexLock/CondVar carry the clang "
               "thread-safety capability annotations; raw std types "
               "are invisible to -Wthread-safety, so guarded state "
               "silently loses its static race checking.",
        "hint": "use coscale::Mutex/MutexLock/CondVar "
                "(common/thread_annotations.hh)",
        "exempt": ["src/common/thread_annotations.hh"],  # the wrapper
    },
    "backend-probe": {
        "desc": "memory-backend probing (openPage bool or backend-enum "
                "comparison) outside memctrl/ and dram/",
        "why": "the pluggable backend (dram/mem_backend.hh) keeps "
               "scheduler/row-policy/standard behaviour behind the "
               "Scheduler and RowPolicyModel interfaces; code that "
               "branches on the selection re-creates the hard-coded "
               "coupling the refactor removed, and the openPage bool "
               "it replaced must not come back.",
        "hint": "pass the MemBackendSel through and let memctrl/dram "
                "resolve behaviour, or add a virtual to the backend "
                "interface",
        # Trailing "/" marks a directory prefix: the backend's own
        # implementation layers legitimately dispatch on the enums.
        "exempt": ["src/memctrl/", "src/dram/"],
    },
    "memctrl-set-frequency-index": {
        "desc": "deleted MemCtrl compat shims setFrequencyIndex()/"
                "setChannelFrequencyIndex()",
        "why": "MemCtrl::setFrequency(ChannelSel, idx, now) is the "
               "single audited entry point for memory-frequency "
               "changes; the per-spelling shims it replaced bypassed "
               "the ChannelSel vocabulary and must not come back.",
        "hint": "call setFrequency(ChannelSel::all()/::one(ch), "
                "idx, now)",
        # Core DVFS has its own (unrelated, still-supported)
        # Core::setFrequencyIndex API.
        "exempt": ["src/cpu/core.hh", "src/cpu/core.cc",
                   "src/sim/system.cc"],
    },
    "policy-knob-mutation": {
        "desc": "direct knob mutation (setFrequency/setPartition/"
                "setWayMask) from policy code",
        "why": "policies decide; they do not actuate. A policy that "
               "pokes Core::setFrequencyIndex, MemCtrl::setFrequency "
               "or Llc::setPartition directly bypasses the runner's "
               "requested-vs-granted reconciliation, the fault "
               "injector's clamps, and the transition-latency "
               "accounting — the knob-apply layer "
               "(System::applyConfig) is the single sanctioned "
               "actuation point.",
        "hint": "return the desired KnobVector/FreqConfig from "
                "Policy::decide() and let System::applyConfig "
                "install it",
        "exempt": [],
        # Scoped: actuators outside policy code (the apply layer,
        # the devices themselves) are legitimate callers.
        "only": ["src/policy/"],
    },
    # Meta-rules about the suppression mechanism itself.
    "bad-suppression": {
        "desc": "coscale-lint allow() without a justification",
        "why": "a waiver with no recorded reason cannot be audited "
               "or retired.",
        "hint": "write `// coscale-lint: allow(<rule>) -- <reason>`",
        "exempt": [],
    },
    "unused-suppression": {
        "desc": "coscale-lint allow() that suppresses nothing",
        "why": "stale waivers hide future regressions of the same "
               "rule at that site.",
        "hint": "delete the allow() comment",
        "exempt": [],
    },
}

ALLOW_RE = re.compile(
    r"coscale-lint:\s*allow\(\s*([\w-]+)\s*\)\s*(?:(?:--|:)\s*(.*?))?\s*$")

# Scalar types whose uninitialized reads are the missing-field-init
# hazard (includes the repo's own tick/address typedefs).
SCALAR_TYPES = (
    r"bool|char|short|int|long|float|double|unsigned|signed|"
    r"(?:std\s*::\s*)?size_t|(?:std\s*::\s*)?ptrdiff_t|"
    r"(?:std\s*::\s*)?u?int(?:8|16|32|64|ptr)_t|"
    r"Tick|Addr|BlockAddr|CoreId|ChannelId"
)
SCALAR_RE = re.compile(
    r"^(?:(?:static|constexpr|const|inline|mutable|volatile)\s+)*"
    r"(?P<type>(?:(?:unsigned|signed|long|short)\s+)*(?:%s))\s+"
    r"(?P<names>\w+(?:\s*\[[^\]]*\])?(?:\s*,\s*\w+(?:\s*\[[^\]]*\])?)*)"
    r"\s*;\s*$" % SCALAR_TYPES)


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self):
        return "%s:%d: error: [%s] %s" % (
            self.path, self.line, self.rule, self.message)


# ---------------------------------------------------------------------------
# Lexing: blank out comments and string/char literals so rule regexes
# only ever see code, while keeping line numbers and comment text (for
# the suppression directives).
# ---------------------------------------------------------------------------

def lex(text):
    """Return (code_lines, comment_lines): per-line code with
    comments/literals blanked, and per-line comment text."""
    n = len(text)
    code = []
    comments = []
    cur_code = []
    cur_comment = []
    i = 0
    state = "code"  # code | line_comment | block_comment | str | chr | raw
    raw_delim = ""

    def endline():
        code.append("".join(cur_code))
        comments.append("".join(cur_comment))
        cur_code.clear()
        cur_comment.clear()

    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            if state == "line_comment":
                state = "code"
            endline()
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                m = re.match(r'R"([^(\s\\]{0,16})\(', text[i:])
                if m:
                    state = "raw"
                    raw_delim = ")%s\"" % m.group(1)
                    i += m.end()
                    cur_code.append('""')
                    continue
                state = "str"
                cur_code.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                cur_code.append("'")
                i += 1
                continue
            cur_code.append(c)
            i += 1
            continue
        if state == "line_comment":
            cur_comment.append(c)
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
            else:
                cur_comment.append(c)
                i += 1
            continue
        if state == "raw":
            if text.startswith(raw_delim, i):
                state = "code"
                cur_code.append('"')
                i += len(raw_delim)
            else:
                i += 1
            continue
        # str / chr
        if c == "\\":
            i += 2
            continue
        if (state == "str" and c == '"') or (state == "chr" and c == "'"):
            cur_code.append(c)
            state = "code"
        i += 1
    endline()
    return code, comments


# ---------------------------------------------------------------------------
# Simple pattern rules.
# ---------------------------------------------------------------------------

BANNED_CALL_RULES = [
    ("raw-assert",
     re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?"
                r"(assert|abort|exit|_Exit|quick_exit)\s*\("),
     "raw '%s(' call"),
    ("legacy-assert",
     re.compile(r"(?<![\w.>:])(coscale_assert)\s*\("),
     "'%s(' is deprecated"),
    ("ambient-rng",
     re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?"
                r"(rand|srand|rand_r|drand48|mrand48|lrand48)\s*\("),
     "ambient RNG call '%s('"),
    ("wall-clock",
     re.compile(r"(?<![\w.>:])(?:std\s*::\s*)?"
                r"(time|clock|gettimeofday|clock_gettime|ftime|"
                r"localtime|localtime_r|gmtime|gmtime_r|mktime)\s*\("),
     "wall-clock call '%s('"),
    ("memctrl-set-frequency-index",
     re.compile(r"\b(setFrequencyIndex|setChannelFrequencyIndex)"
                r"\s*\("),
     "'%s(' is a deleted MemCtrl compat shim"),
    ("policy-knob-mutation",
     re.compile(r"\b(setFrequency|setPartition|setWayMask|"
                r"setShadowTracking)\s*\("),
     "'%s(' actuates a knob directly from policy code"),
]

BANNED_NAME_RULES = [
    ("ambient-rng",
     re.compile(r"\b(?:std\s*::\s*)?(random_device)\b"),
     "'std::%s' is ambient entropy"),
    ("wall-clock",
     re.compile(r"\b(?:std\s*::\s*)?(?:chrono\s*::\s*)?"
                r"(system_clock|high_resolution_clock)\b"),
     "'%s' is (or may alias) the wall clock"),
    ("raw-mutex",
     re.compile(r"\bstd\s*::\s*(mutex|recursive_mutex|timed_mutex|"
                r"recursive_timed_mutex|shared_mutex|shared_timed_mutex|"
                r"lock_guard|unique_lock|scoped_lock|shared_lock|"
                r"condition_variable|condition_variable_any)\b"),
     "raw 'std::%s'"),
    ("backend-probe",
     re.compile(r"\b(openPage)\b"),
     "'%s' resurrects the deleted row-policy bool"),
    ("backend-probe",
     re.compile(r"(?:==|!=)\s*(?:coscale\s*::\s*)?"
                r"(MemSched|RowPolicy|DramStandard)\s*::"),
     "comparison against backend enum '%s'"),
    ("backend-probe",
     re.compile(r"\b(MemSched|RowPolicy|DramStandard)\s*::\s*\w+\s*"
                r"(?:==|!=)"),
     "comparison against backend enum '%s'"),
]

PTR_KEY_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:unordered_)?(?:map|multimap|set|multiset)\s*"
    r"<\s*(?:const\s+)?[\w:]+(?:\s*<[^<>]*>)?(?:\s+const)?\s*\*")

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<")
UNORDERED_VAR_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*"
    r"<[^;{()]*>\s+(?:[&*]\s*)?(\w+)\s*(?:=|;|\{|,|\))")


def check_patterns(path, code_lines, findings):
    for lineno, line in enumerate(code_lines, 1):
        for rule, rx, msg in BANNED_CALL_RULES:
            for m in rx.finditer(line):
                findings.append(Finding(path, lineno, rule,
                                        (msg % m.group(1)) + "; "
                                        + RULES[rule]["hint"]))
        for rule, rx, msg in BANNED_NAME_RULES:
            for m in rx.finditer(line):
                findings.append(Finding(path, lineno, rule,
                                        (msg % m.group(1)) + "; "
                                        + RULES[rule]["hint"]))
        for m in PTR_KEY_RE.finditer(line):
            findings.append(Finding(
                path, lineno, "pointer-map-key",
                "pointer-valued key in '%s...'; %s"
                % (m.group(0), RULES["pointer-map-key"]["hint"])))


def check_unordered_iteration(path, code_lines, findings):
    """Flag range-for / .begin() iteration over a variable declared in
    this file as an unordered container."""
    names = set()
    for line in code_lines:
        for m in UNORDERED_VAR_RE.finditer(line):
            names.add(m.group(1))
    if not names:
        return
    alt = "|".join(re.escape(x) for x in sorted(names))
    range_re = re.compile(r"for\s*\([^;)]*:\s*&?\s*(?:\w+(?:\.|->))?"
                          r"(%s)\s*\)" % alt)
    # begin() marks the start of an iteration; bare end() is allowed
    # because `it != m.end()` after find() is a lookup, not a walk.
    iter_re = re.compile(r"\b(%s)\s*(?:\.|->)\s*c?r?begin\s*\(" % alt)
    for lineno, line in enumerate(code_lines, 1):
        for m in list(range_re.finditer(line)) + list(iter_re.finditer(line)):
            findings.append(Finding(
                path, lineno, "unordered-iteration",
                "iterating unordered container '%s' yields hash order; "
                "%s" % (m.group(1),
                        RULES["unordered-iteration"]["hint"])))


# ---------------------------------------------------------------------------
# mutable-global: a brace-scope walk that only inspects statements at
# namespace scope in .cc files.
# ---------------------------------------------------------------------------

GLOBAL_EXEMPT_TYPE_RE = re.compile(
    r"^(?:static\s+|inline\s+)*(?:"
    r"(?:const|constexpr|constinit)\b"
    r"|(?:std\s*::\s*)?atomic\b"
    r"|(?:coscale\s*::\s*)?(?:common\s*::\s*)?Mutex\b"
    r"|(?:std\s*::\s*)?once_flag\b"
    r")")

VAR_DEF_RE = re.compile(
    r"^(?:static\s+|inline\s+|mutable\s+)*"
    r"[\w:]+(?:\s*<[^;{}]*>)?(?:\s*[&*])*\s+\w+(?:\s*\[[^\]]*\])?"
    r"\s*(?:=.*)?$", re.S)

NON_VAR_KEYWORDS = re.compile(
    r"^\s*(?:using|typedef|class|struct|enum|union|template|namespace|"
    r"extern|friend|static_assert|public|private|protected|#)")


def check_mutable_globals(path, code_lines, findings):
    if not path.endswith(".cc") and not path.endswith(".cpp"):
        return
    text = "\n".join(code_lines)
    # Scope stack entries: "ns" (namespace/extern-C) or "other".
    stack = []
    stmt = []
    stmt_line = 1
    line = 1
    i = 0
    n = len(text)

    def at_ns_scope():
        return all(kind == "ns" for kind in stack)

    def classify_opener(buf):
        head = "".join(buf).strip()
        # The token run immediately before '{' decides the scope kind.
        if re.search(r"\bnamespace\b(?:\s+[\w:]+)?\s*$", head):
            return "ns"
        if re.search(r'\bextern\s*$', head):
            return "ns"
        return "other"

    def flush(terminator):
        s = "".join(stmt).strip()
        stmt.clear()
        if not s or not at_ns_scope():
            return
        if NON_VAR_KEYWORDS.match(s):
            return
        guarded = "COSCALE_GUARDED_BY" in s or "COSCALE_PT_GUARDED_BY" in s
        s_clean = re.sub(r"\bCOSCALE_\w+\s*\([^()]*\)", "", s)
        s_clean = re.sub(r"__attribute__\s*\(\(.*?\)\)", "", s_clean).strip()
        if terminator == "}":  # function/class body ended the statement
            return
        if "(" in s_clean:  # function decl/def or ctor-style init
            return
        if not VAR_DEF_RE.match(s_clean):
            return
        if guarded or GLOBAL_EXEMPT_TYPE_RE.match(s_clean):
            return
        findings.append(Finding(
            path, stmt_line, "mutable-global",
            "mutable namespace-scope variable '%s...'; %s"
            % (s_clean.split("=")[0].strip()[:60],
               RULES["mutable-global"]["hint"])))

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            if not "".join(stmt).strip():
                stmt_line = line
            stmt.append(" ")
        elif c == "{":
            stack.append(classify_opener(stmt))
            if stack[-1] == "ns":
                stmt.clear()
                stmt_line = line
            else:
                # Skip the body wholesale; statements inside non-ns
                # scopes are function/class internals.
                depth = 1
                i += 1
                while i < n and depth:
                    if text[i] == "{":
                        depth += 1
                    elif text[i] == "}":
                        depth -= 1
                    elif text[i] == "\n":
                        line += 1
                    i += 1
                stack.pop()
                # Peek: `};` (class/init-list) keeps the statement
                # alive until the semicolon; a bare `}` (function)
                # terminates it.
                j = i
                while j < n and text[j] in " \t\n":
                    j += 1
                if j < n and text[j] == ";":
                    stmt.append(" {} ")
                else:
                    flush("}")
                    stmt_line = line
                continue
        elif c == "}":
            if stack:
                stack.pop()
            stmt.clear()
            stmt_line = line
        elif c == ";":
            flush(";")
            stmt_line = line
        else:
            stmt.append(c)
        i += 1


# ---------------------------------------------------------------------------
# missing-field-init: scalar members without default initializers in
# header structs (classes manage invariants in ctors; structs here are
# aggregates filled by designated/partial init on hot paths).
# ---------------------------------------------------------------------------

STRUCT_OPEN_RE = re.compile(
    r"\bstruct\s+(?:COSCALE_\w+(?:\([^)]*\))?\s+)?(\w+)\s*"
    r"(?::[^{;]*)?\{")


def check_missing_field_init(path, code_lines, findings):
    if not path.endswith((".hh", ".h", ".hpp")):
        return
    text = "\n".join(code_lines)
    line_of = []  # char offset -> line precomputed lazily
    offset = 0
    for lineno, l in enumerate(code_lines, 1):
        line_of.append((offset, lineno))
        offset += len(l) + 1

    def lineno_at(pos):
        lo, hi = 0, len(line_of) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if line_of[mid][0] <= pos:
                lo = mid
            else:
                hi = mid - 1
        return line_of[lo][1]

    for m in STRUCT_OPEN_RE.finditer(text):
        name = m.group(1)
        # Extract the body at depth 1.
        depth = 1
        i = m.end()
        start = i
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        body = text[start:i - 1]
        # Skip structs with user-declared constructors: their members
        # may be initialized there, beyond a textual linter's sight.
        if re.search(r"\b%s\s*\(" % re.escape(name), body):
            continue
        # Walk depth-1 member statements only.
        depth = 0
        stmt_start = 0
        for j, c in enumerate(body):
            if c == "{":
                depth += 1
            elif c == "}":
                depth -= 1
                if depth == 0:
                    stmt_start = j + 1
            elif c == ";" and depth == 0:
                stmt = body[stmt_start:j + 1].strip()
                stmt_start = j + 1
                sm = SCALAR_RE.match(stmt)
                if not sm:
                    continue
                if re.match(r"^(static|constexpr)\b", stmt):
                    continue
                findings.append(Finding(
                    path, lineno_at(start + j),
                    "missing-field-init",
                    "scalar member '%s %s' of struct %s has no default "
                    "initializer; %s"
                    % (sm.group("type"), sm.group("names"), name,
                       RULES["missing-field-init"]["hint"])))


# ---------------------------------------------------------------------------
# Suppressions.
# ---------------------------------------------------------------------------

def apply_suppressions(path, comment_lines, findings):
    allows = {}   # lineno -> (rule, justification, used)
    out = []
    for lineno, comment in enumerate(comment_lines, 1):
        m = ALLOW_RE.search(comment)
        if not m:
            continue
        rule, why = m.group(1), (m.group(2) or "").strip()
        if rule not in RULES:
            out.append(Finding(path, lineno, "bad-suppression",
                               "allow(%s) names an unknown rule" % rule))
            continue
        if not why:
            out.append(Finding(
                path, lineno, "bad-suppression",
                "allow(%s) needs a justification: "
                "`// coscale-lint: allow(%s) -- <reason>`"
                % (rule, rule)))
            continue
        allows[lineno] = [rule, why, False]

    for f in findings:
        suppressed = False
        for at in (f.line, f.line - 1):
            a = allows.get(at)
            if a and a[0] == f.rule:
                a[2] = True
                suppressed = True
                break
        if not suppressed:
            out.append(f)

    for lineno, (rule, _why, used) in sorted(allows.items()):
        if not used:
            out.append(Finding(
                path, lineno, "unused-suppression",
                "allow(%s) suppresses nothing; %s"
                % (rule, RULES["unused-suppression"]["hint"])))
    return out


# ---------------------------------------------------------------------------
# clang-query integration (optional, AST-accurate second opinion).
# Matcher files: tools/lint/matchers/<rule-id>.cql
# ---------------------------------------------------------------------------

MATCHER_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "matchers")
QUERY_LOC_RE = re.compile(r"^(/[^:]+|[^:]+):(\d+):\d+:")


def find_clang_query():
    for cand in ("clang-query", "clang-query-18", "clang-query-17",
                 "clang-query-16", "clang-query-15", "clang-query-14"):
        path = shutil.which(cand)
        if path:
            return path
    return None


def run_clang_query(binary, build_dir, files):
    """Run every matcher file over the TUs; map matches to findings."""
    findings = []
    if not os.path.isdir(MATCHER_DIR):
        return findings
    tus = [f for f in files if f.endswith((".cc", ".cpp"))]
    if not tus:
        return findings
    for mf in sorted(os.listdir(MATCHER_DIR)):
        if not mf.endswith(".cql"):
            continue
        rule = mf[:-len(".cql")]
        if rule not in RULES:
            continue
        cmd = [binary, "-p", build_dir, "-f",
               os.path.join(MATCHER_DIR, mf)] + tus
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=600)
        except (OSError, subprocess.TimeoutExpired) as e:
            sys.stderr.write("coscale-lint: clang-query failed: %s\n" % e)
            return findings
        for line in proc.stdout.splitlines():
            m = QUERY_LOC_RE.match(line.strip())
            if m and "binds here" in line:
                path = os.path.relpath(m.group(1), REPO_ROOT) \
                    if os.path.isabs(m.group(1)) else m.group(1)
                findings.append(Finding(
                    path, int(m.group(2)), rule,
                    "%s (clang-query); %s"
                    % (RULES[rule]["desc"], RULES[rule]["hint"])))
    return findings


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def is_exempt(rel, rule):
    """Exempt entries ending in '/' are directory prefixes; the rest
    are exact repo-relative paths. Rules with an `only` list apply
    solely under those directory prefixes (plus the rule's own
    fixture directory, so --self-test can exercise them without
    tripping scoped rules on other rules' fixtures)."""
    only = RULES[rule].get("only")
    if only and not rel.startswith("tools/lint/fixtures/%s/" % rule) \
            and not any(rel.startswith(p) for p in only):
        return True
    for ex in RULES[rule]["exempt"]:
        if ex.endswith("/"):
            if rel.startswith(ex):
                return True
        elif rel == ex:
            return True
    return False


def lint_file(path, rel, enabled):
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    code_lines, comment_lines = lex(text)
    raw = []
    check_patterns(rel, code_lines, raw)
    check_unordered_iteration(rel, code_lines, raw)
    check_mutable_globals(rel, code_lines, raw)
    check_missing_field_init(rel, code_lines, raw)
    raw = [f for f in raw
           if f.rule in enabled and not is_exempt(rel, f.rule)]
    return apply_suppressions(rel, comment_lines, raw)


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isfile(p):
            files.append(p)
            continue
        for dirpath, _dirs, names in os.walk(p):
            for name in sorted(names):
                if name.endswith(SOURCE_EXTS):
                    files.append(os.path.join(dirpath, name))
    return sorted(files)


def self_test():
    """Every rule must fire on its positive fixture and stay silent on
    its negative twin."""
    failures = []
    rules_seen = set()
    for rule in sorted(RULES):
        rdir = os.path.join(FIXTURE_DIR, rule)
        pos = os.path.join(rdir, "positive.cc")
        neg = os.path.join(rdir, "negative.cc")
        # Header-shaped rules use .hh fixtures.
        if not os.path.exists(pos):
            pos = os.path.join(rdir, "positive.hh")
            neg = os.path.join(rdir, "negative.hh")
        if not (os.path.exists(pos) and os.path.exists(neg)):
            failures.append("%s: fixture pair missing under %s"
                            % (rule, rdir))
            continue
        rules_seen.add(rule)
        # All rules stay enabled so a fixture that trips a *different*
        # rule (or leaves a stale suppression) is caught too.
        pf = lint_file(pos, os.path.relpath(pos, REPO_ROOT), set(RULES))
        nf = lint_file(neg, os.path.relpath(neg, REPO_ROOT), set(RULES))
        fired = [f for f in pf if f.rule == rule]
        if not fired:
            failures.append("%s: did NOT fire on %s" % (rule, pos))
        stray = [f for f in pf if f.rule != rule]
        if stray:
            failures.append("%s: positive fixture raised foreign "
                            "findings: %s" % (rule, stray[0]))
        if nf:
            failures.append("%s: fired on negative fixture %s: %s"
                            % (rule, neg, nf[0]))
    for rule, ok in sorted((r, r in rules_seen) for r in RULES):
        status = "ok" if ok and not any(x.startswith(rule + ":")
                                        for x in failures) else "FAIL"
        print("  %-20s %s" % (rule, status))
    if failures:
        print("\nself-test failures:")
        for f in failures:
            print("  " + f)
        return 1
    print("self-test: %d rules, all firing/silent as expected."
          % len(rules_seen))
    return 0


def main(argv):
    ap = argparse.ArgumentParser(
        prog="coscale_lint.py",
        description="CoScale determinism & correctness invariant "
                    "linter")
    ap.add_argument("paths", nargs="*",
                    help="files/directories to lint (default: src/)")
    ap.add_argument("-p", "--build-dir", default=None,
                    help="build dir with compile_commands.json; "
                         "enables the clang-query AST rules when "
                         "clang-query is installed")
    ap.add_argument("--rules", default=None,
                    help="comma-separated rule subset")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the fixture corpus under "
                         "tools/lint/fixtures/")
    ap.add_argument("--require-tools", action="store_true",
                    help="fail (exit 2) if clang-query was requested "
                         "via -p but is not installed")
    ap.add_argument("--json", action="store_true",
                    help="emit findings as a JSON array")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            r = RULES[rule]
            print("%-20s %s" % (rule, r["desc"]))
            print("%-20s   why: %s" % ("", r["why"]))
            print("%-20s   fix: %s" % ("", r["hint"]))
        return 0

    if args.self_test:
        return self_test()

    enabled = set(RULES)
    if args.rules:
        enabled = set(args.rules.split(","))
        unknown = enabled - set(RULES)
        if unknown:
            sys.stderr.write("coscale-lint: unknown rule(s): %s\n"
                             % ", ".join(sorted(unknown)))
            return 2

    paths = args.paths or [os.path.join(REPO_ROOT, "src")]
    files = collect_files(paths)
    if not files:
        sys.stderr.write("coscale-lint: no source files under %s\n"
                         % ", ".join(paths))
        return 2

    findings = []
    for path in files:
        rel = os.path.relpath(os.path.abspath(path), REPO_ROOT)
        findings.extend(lint_file(path, rel, enabled))

    if args.build_dir:
        db = os.path.join(args.build_dir, "compile_commands.json")
        if not os.path.exists(db):
            sys.stderr.write("coscale-lint: %s missing; run cmake "
                             "first\n" % db)
            return 2
        binary = find_clang_query()
        if binary:
            relset = {os.path.relpath(os.path.abspath(p), REPO_ROOT)
                      for p in files}
            ast = [f for f in run_clang_query(binary, args.build_dir,
                                              files)
                   if f.rule in enabled and f.path in relset
                   and not is_exempt(f.path, f.rule)]
            # Route AST findings through the same inline-suppression
            # machinery as the textual ones.
            by_path = {}
            for f in ast:
                by_path.setdefault(f.path, []).append(f)
            for rel, fs in by_path.items():
                with open(os.path.join(REPO_ROOT, rel),
                          encoding="utf-8", errors="replace") as fh:
                    _code, comment_lines = lex(fh.read())
                findings.extend(
                    f for f in apply_suppressions(rel, comment_lines, fs)
                    if f.rule != "unused-suppression")
        elif args.require_tools:
            sys.stderr.write("coscale-lint: clang-query not found but "
                             "--require-tools was given\n")
            return 2
        else:
            sys.stderr.write("coscale-lint: clang-query not found; "
                             "AST rules skipped (textual rules still "
                             "ran)\n")

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    if args.json:
        print(json.dumps([vars(f) for f in findings], indent=2))
    else:
        for f in findings:
            print(f)
        if findings:
            print("coscale-lint: %d finding(s). Suppress a justified "
                  "exception with `// coscale-lint: allow(<rule>) -- "
                  "<reason>`." % len(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
