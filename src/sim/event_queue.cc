#include "sim/event_queue.hh"

#include "check/contract.hh"

namespace coscale {

void
EventQueue::reset(int num_components)
{
    COSCALE_CHECK(num_components >= 0,
                  "negative component count %d", num_components);
    std::size_t n = static_cast<std::size_t>(num_components);
    heap.resize(n);
    pos.resize(n);
    keys.assign(n, maxTick);
    // All keys equal maxTick, so rank order is already heap order.
    for (std::size_t i = 0; i < n; ++i) {
        heap[i] = static_cast<int>(i);
        pos[i] = i;
    }
}

} // namespace coscale
