#include "sim/stats_dump.hh"

#include <iomanip>

namespace coscale {

namespace {

class Dumper
{
  public:
    explicit Dumper(std::ostream &os) : os(os) {}

    void
    line(const std::string &name, double value, const char *desc)
    {
        os << std::left << std::setw(44) << name << std::right
           << std::setw(16) << std::setprecision(6) << value << "  # "
           << desc << "\n";
    }

    void
    line(const std::string &name, std::uint64_t value, const char *desc)
    {
        os << std::left << std::setw(44) << name << std::right
           << std::setw(16) << value << "  # " << desc << "\n";
    }

    void
    section(const std::string &title)
    {
        os << "\n---------- " << title << " ----------\n";
    }

  private:
    std::ostream &os;
};

double
safeDiv(double a, double b)
{
    return b != 0.0 ? a / b : 0.0;
}

} // namespace

void
dumpStats(const System &sys, const CounterSnapshot &since,
          std::ostream &os)
{
    Dumper d(os);
    Tick elapsed = sys.now() - since.tick;
    double secs = ticksToSeconds(elapsed);

    d.section("sim");
    d.line("sim.ticks", static_cast<std::uint64_t>(elapsed),
           "window length (ps)");
    d.line("sim.seconds", secs, "window length (s)");
    d.line("sim.now", static_cast<std::uint64_t>(sys.now()),
           "current tick");

    d.section("cores");
    std::uint64_t total_instrs = 0;
    for (int i = 0; i < sys.numCores(); ++i) {
        CoreCounters c = sys.core(i).counters()
                         - since.cores[static_cast<size_t>(i)];
        std::string p = "core" + std::to_string(i) + ".";
        total_instrs += c.tic;
        d.line(p + "instructions", c.tic, "committed (TIC)");
        d.line(p + "ipc",
               safeDiv(static_cast<double>(c.tic),
                       secs * sys.core(i).freq()),
               "instructions per core cycle");
        d.line(p + "l2_accesses", c.tla, "LLC accesses (TLA)");
        d.line(p + "l2_misses", c.tlm, "LLC misses (TLM)");
        d.line(p + "l1_miss_stalls", c.tms, "L2-hit stalls (TMS)");
        d.line(p + "mem_stalls", c.tls, "memory stalls (TLS)");
        d.line(p + "compute_frac",
               safeDiv(static_cast<double>(c.computeTicks),
                       static_cast<double>(elapsed)),
               "time executing");
        d.line(p + "mem_stall_frac",
               safeDiv(static_cast<double>(c.memStallTicks),
                       static_cast<double>(elapsed)),
               "time stalled on DRAM");
        d.line(p + "freq_ghz", sys.core(i).freq() / 1e9,
               "current frequency");
    }
    d.line("cores.total_instructions", total_instrs, "all cores");
    d.line("cores.aggregate_mips", safeDiv(total_instrs, secs) / 1e6,
           "million instructions per second");

    d.section("llc");
    LlcCounters l = sys.llc().counters() - since.llc;
    d.line("llc.accesses", l.accesses, "demand accesses");
    d.line("llc.hits", l.hits, "demand hits");
    d.line("llc.misses", l.misses, "demand misses");
    d.line("llc.miss_rate",
           safeDiv(static_cast<double>(l.misses),
                   static_cast<double>(l.accesses)),
           "miss ratio");
    d.line("llc.mpki",
           1000.0 * safeDiv(static_cast<double>(l.misses),
                            static_cast<double>(total_instrs)),
           "misses per kilo-instruction");
    d.line("llc.writebacks", l.writebacks, "dirty evictions");
    d.line("llc.prefetches", l.prefetchIssued, "prefetch fills");
    d.line("llc.prefetch_accuracy", sys.llc().prefetchAccuracy(),
           "useful / issued (cumulative)");

    d.section("memory");
    for (int ch = 0; ch < sys.memCtrl().numChannels(); ++ch) {
        ChannelCounters c =
            sys.memCtrl().channelCounters(ch)
            - since.memChannels[static_cast<size_t>(ch)];
        std::string p = "mem.ch" + std::to_string(ch) + ".";
        d.line(p + "reads", c.readReqs, "demand reads");
        d.line(p + "writes", c.writeReqs, "writebacks");
        d.line(p + "prefetches", c.prefetchReqs, "prefetch fills");
        d.line(p + "activations", c.activations, "page opens");
        d.line(p + "row_hits", c.rowHits, "open-page row hits");
        d.line(p + "refreshes", c.refreshes, "rank refreshes");
        d.line(p + "bus_util",
               safeDiv(static_cast<double>(c.busBusyTicks),
                       static_cast<double>(elapsed)),
               "data-bus busy fraction");
        double reads = static_cast<double>(c.readReqs);
        d.line(p + "avg_read_latency_ns",
               reads > 0.0 ? ticksToNs(c.bankWaitTicks + c.busWaitTicks
                                       + c.serviceTicks)
                                 / reads
                           : 0.0,
               "queue + service, per demand read");
        d.line(p + "freq_mhz", sys.memCtrl().channelBusFreq(ch) / 1e6,
               "current bus frequency");
    }

    d.section("power");
    PowerBreakdown pb = sys.windowPower(since);
    d.line("power.cpu_w", pb.cpuW, "cores + shared L2");
    d.line("power.mem_w", pb.memW, "DRAM + DIMM + MC");
    d.line("power.other_w", pb.otherW, "rest of system (fixed)");
    d.line("power.total_w", pb.totalW(), "full system");
    d.line("power.energy_j", pb.totalW() * secs, "window energy");
    d.line("power.epi_nj",
           1e9 * safeDiv(pb.totalW() * secs,
                         static_cast<double>(total_instrs)),
           "energy per instruction");
}

void
dumpStats(const System &sys, std::ostream &os)
{
    // A zero snapshot dumps beginning-of-time totals. Note tick 0
    // windows are rejected by the power model; require progress.
    CounterSnapshot zero;
    zero.cores.resize(static_cast<size_t>(sys.numCores()));
    zero.memChannels.resize(
        static_cast<size_t>(sys.memCtrl().numChannels()));
    dumpStats(sys, zero, os);
}

} // namespace coscale
