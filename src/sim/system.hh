/**
 * @file
 * The full simulated server: 16 trace-driven cores, the shared LLC,
 * and the four-channel DDR3 memory system, advanced by a
 * deterministic event-driven kernel (sim/event_queue.hh): every
 * component's cached nextEventTick() is registered in an indexed
 * min-heap and rescheduled on state changes, and run() is a
 * pop–dispatch loop. Rank order in the queue (memory controller
 * first, then cores by index) replicates the historical polling
 * loop's tie-break exactly, keeping golden traces byte-identical.
 *
 * The System is deep-copyable: the Offline policy clones it and runs
 * the clone one epoch ahead at maximum frequencies to obtain its
 * perfect profile. No component holds owning pointers into another;
 * the only cross-references (config pointers) are re-seated on copy,
 * and event-queue membership is re-derived from the cloned
 * components at the same time.
 */

#ifndef COSCALE_SIM_SYSTEM_HH
#define COSCALE_SIM_SYSTEM_HH

#include <string>
#include <vector>

#include "cache/llc.hh"
#include "common/dvfs.hh"
#include "common/types.hh"
#include "cpu/core.hh"
#include "memctrl/mem_ctrl.hh"
#include "model/energy_model.hh"
#include "model/perf_model.hh"
#include "power/power_model.hh"
#include "sim/event_queue.hh"
#include "trace/synthetic.hh"
#include "trace/trace.hh"

namespace coscale {

/** Knob-space enablement (model/knobs.hh, DESIGN.md §13). */
struct KnobConfig
{
    /**
     * Expose the per-core LLC way-partition dimension: the System
     * installs an even-split starting partition, enables the shadow
     * monitors, and the profile carries the per-core miss curves —
     * which puts the way dimension into makeKnobSpace() and the
     * policies' search. Requires llc.ways >= 2 * numCores (the
     * partition must leave room to move); silently inert otherwise,
     * so enabling it on the default 16-core/16-way server changes
     * nothing.
     */
    bool llcWays = false;
    int wayFloor = 1;  //!< QoS floor: minimum ways per core
};

/** Everything needed to instantiate a System. */
struct SystemConfig
{
    int numCores = 16;
    FreqLadder coreLadder = defaultCoreLadder();
    FreqLadder memLadder = defaultMemLadder();

    LlcConfig llc;
    MemGeometry geom;
    DramTimingParams timing;
    int writeHighWater = 16;
    int writeLowWater = 8;
    double respFixedNs = 10.0;
    /**
     * Memory-backend selection (dram/mem_backend.hh): scheduler, row
     * policy, DRAM standard. The single source of truth — anything
     * standard-dependent (timing, memLadder, power.mem) is derived
     * from it by applyMemBackend(). Defaults to the paper's backend.
     */
    MemBackendSel memBackend;

    /** Optional knob dimensions beyond DVFS (all off by default). */
    KnobConfig knobs;

    Tick coreTransitionTicks = 30 * tickPerUs;
    bool ooo = false;
    int oooWindow = 128;
    int maxOutstanding = 16;
    std::uint64_t instrBudget = 20'000'000;

    Tick epochLen = tickPerMs;           //!< scaled default (see below)
    Tick profileLen = 60 * tickPerUs;
    double gamma = 0.10;                 //!< allowed slowdown

    /**
     * Epochs run at maximum frequency before the policy starts
     * deciding. Lets the caches warm so the first real decision is
     * not based on a cold-start profile, and accrues initial slack
     * cushion — an OS would do the same when a program starts.
     */
    int warmupEpochs = 1;

    /**
     * OS scheduling quantum in epochs (Section 3.3: context
     * switching with per-thread slack). 0 disables scheduling; with
     * a positive value the System may be built with more
     * applications than cores, rotated round-robin every quantum.
     */
    int schedQuantumEpochs = 0;

    /** Pipeline/cache-warmth penalty charged per context switch. */
    Tick contextSwitchTicks = 5 * tickPerUs;

    PowerParams power;  //!< geom/timing/numCores filled by factories
    std::uint64_t seed = 1;

    /**
     * Documentation of the time scale relative to the paper's setup
     * (100M instructions, 5 ms epochs, 300 us profiling, 30+ us core
     * transitions). All four are scaled together so per-workload
     * epoch counts and relative overheads match the paper.
     */
    double timeScale = 0.2;
};

/**
 * The paper's configuration at time scale @p scale (default 0.2:
 * 20M instructions, 1 ms epochs). scale = 1.0 reproduces the full
 * 100M-instruction setup.
 */
SystemConfig makeScaledConfig(double scale = 0.2);

/**
 * Select @p sel as @p cfg's memory backend and re-derive everything
 * that depends on the DRAM standard: cfg.timing and cfg.power.timing
 * from the standard's table (with the recalibration penalty rescaled
 * by cfg.timeScale, exactly as makeScaledConfig() scales the DDR3
 * default), cfg.memLadder from the standard's bus-frequency range,
 * and cfg.power.mem currents/fRef from its electrical package. With
 * the default MemBackendSel this reproduces makeScaledConfig()'s
 * output bit-for-bit, so tests that depend on the paper's backend
 * (golden fixtures, DDR3 timing arithmetic) call this to pin it
 * explicitly, immune to the COSCALE_MEM_SCHED / COSCALE_ROW_POLICY /
 * COSCALE_DRAM_STANDARD environment overrides that makeScaledConfig()
 * honours (the CI non-default-backend leg sets those).
 */
void applyMemBackend(SystemConfig &cfg, const MemBackendSel &sel);

/** Snapshot of all cumulative counters, for window deltas. */
struct CounterSnapshot
{
    std::vector<CoreCounters> cores;
    ChannelCounters mem;                    //!< aggregate
    std::vector<ChannelCounters> memChannels; //!< per channel
    LlcCounters llc;
    /** Shadow-monitor counters (empty unless tracking is on). */
    std::vector<std::uint64_t> llcWayHits;   //!< [core][depth]
    std::vector<std::uint64_t> llcShadowMiss; //!< per core
    Tick tick = 0;
};

/** Average power of a counter window, by component. */
struct PowerBreakdown
{
    double cpuW = 0.0;   //!< cores + shared L2
    double memW = 0.0;   //!< DRAM + DIMM + MC
    double otherW = 0.0; //!< fixed rest-of-system
    double totalW() const { return cpuW + memW + otherW; }
};

/** The simulated machine. */
class System
{
  public:
    /**
     * Build a system running the given applications. Without
     * scheduling (schedQuantumEpochs == 0) @p apps must have exactly
     * numCores entries; with scheduling it may have more, and the
     * surplus waits in the run queue.
     */
    System(const SystemConfig &cfg, const std::vector<AppSpec> &apps);

    System(const System &other);
    System &operator=(const System &other);

    /** Advance simulated time to @p until. */
    void run(Tick until);

    Tick now() const { return curTick; }

    /** True once every application reached its instruction budget. */
    bool allAppsDone() const;

    /** Completion tick of the slowest application. */
    Tick lastCompletionTick() const;

    /** Per-application completion ticks (maxTick if unfinished). */
    std::vector<Tick> appCompletionTicks() const;

    /** Apply a DVFS decision (with transition penalties). */
    void applyConfig(const FreqConfig &cfg);

    FreqConfig currentConfig() const;

    CounterSnapshot snapshot() const;

    /** Model profile over the window since @p since. */
    SystemProfile makeProfile(const CounterSnapshot &since) const;

    /**
     * The Offline policy's perfect profile: clone this system, run
     * the clone for @p horizon at all-max frequencies, profile it.
     */
    SystemProfile oracleProfile(Tick horizon) const;

    /** Measured average power over the window since @p since. */
    PowerBreakdown windowPower(const CounterSnapshot &since) const;

    /** Instructions retired per core since @p since. */
    std::vector<std::uint64_t>
    instrsSince(const CounterSnapshot &since) const;

    /**
     * Context-switch rotation (scheduling mode): park every running
     * application at the back of the run queue and dispatch the
     * longest-waiting ones. No-op without waiting applications.
     */
    void rotateApps();

    /** Which application currently runs on each core. */
    const std::vector<int> &appAssignment() const { return appOnCore; }

    /** Total applications (>= numCores in scheduling mode). */
    int numApps() const { return static_cast<int>(appInstrs.size()); }

    /**
     * Events dispatched by the kernel since construction (core steps
     * plus memory-controller command issues). The denominator of the
     * kernel-throughput benchmark's events/sec figure.
     */
    std::uint64_t eventsDispatched() const { return events; }

    const SystemConfig &config() const { return cfg; }
    const Llc &llc() const { return cache; }
    const MemCtrl &memCtrl() const { return mc; }
    const Core &core(int i) const
    {
        return coreVec[static_cast<size_t>(i)];
    }
    int numCores() const { return static_cast<int>(coreVec.size()); }

    const PerfModel &perfModel() const { return perf; }
    const PowerModel &powerModel() const { return power; }

    /** An EnergyModel viewing this system's models and ladders. */
    EnergyModel
    energyModel() const
    {
        return EnergyModel(&perf, &power, &cfg.coreLadder,
                           &cfg.memLadder);
    }

    /**
     * Attach a DDR3 timing-legality auditor (check/dram_audit.hh) to
     * every memory channel; nullptr detaches. The pointer is
     * non-owning and dropped on copy, so oracle clones run un-audited.
     */
    void attachDramAuditor(DramTimingAuditor *a) { mc.attachAuditor(a); }

  private:
    /** The memory controller's rank in the event queue (cores follow). */
    static constexpr int mcRank = 0;

    void reseat();
    void handleLlcAccess(Core &core, const CoreEvent &ev);

    // --- event-kernel reschedule hooks ---
    // Called after any operation that may move a component's cached
    // nextEventTick(); the queue key must always equal the
    // component's current value when run() pops.
    void
    rescheduleMc()
    {
        eq.schedule(mcRank, mc.nextEventTick());
    }

    void
    rescheduleCore(int i)
    {
        eq.schedule(mcRank + 1 + i,
                    coreVec[static_cast<size_t>(i)].nextEventTick());
    }

    /** Re-derive every queue key (construction, copy, applyConfig). */
    void syncQueue();

    /** Credit a core's retired instructions to its current app. */
    void harvestCore(int i);

    SystemConfig cfg;
    CoreConfig coreCfg;        //!< shared by all cores (pointer target)
    std::vector<Core> coreVec;
    Llc cache;
    MemCtrl mc;
    PerfModel perf;
    PowerModel power;
    Tick curTick = 0;
    std::uint64_t events = 0;  //!< kernel events dispatched
    EventQueue eq;             //!< rank 0 = mc, rank 1+i = core i

    // --- scheduling state (Section 3.3 context switching) ---
    struct ParkedApp
    {
        int app = -1; //!< -1 = unassigned; real ids start at 0
        TraceHandle trace;
    };
    std::vector<int> appOnCore;          //!< app id per core
    std::vector<ParkedApp> parked;       //!< FIFO run queue
    std::vector<std::uint64_t> appInstrs; //!< retired per app
    std::vector<Tick> appCompletion;     //!< budget-crossing ticks
    std::vector<std::uint64_t> ticAtDispatch; //!< core TIC at swap-in
    bool rotated = false;                //!< any rotation happened
    int nextSwapCore = 0;                //!< round-robin cursor
};

} // namespace coscale

#endif // COSCALE_SIM_SYSTEM_HH
