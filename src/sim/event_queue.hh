/**
 * @file
 * The deterministic event-scheduler kernel: an indexed binary
 * min-heap over a fixed set of component ranks, keyed by
 * (tick, rank).
 *
 * Components do not poll; they (or rather the System on their
 * behalf) *reschedule* their next-event tick whenever it changes, and
 * the simulation loop pops the earliest entry. Every component is
 * always present in the heap — an idle component is parked at the
 * maxTick sentinel rather than removed — so schedule() is a pure
 * re-key (sift up or down) and never allocates after reset().
 *
 * Tie-break contract (must never change — the golden trace fixtures
 * depend on it): at equal ticks the lower rank fires first. The
 * System assigns rank 0 to the memory controller and rank 1+i to
 * core i, exactly replicating the historical polling loop's order
 * (controller beats cores, cores in index order).
 *
 * Plain value type: copying a System copies the queue verbatim, and
 * System::reseat() re-derives every key from the cloned components
 * so queue membership always refers to the owning system's state.
 */

#ifndef COSCALE_SIM_EVENT_QUEUE_HH
#define COSCALE_SIM_EVENT_QUEUE_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace coscale {

/** Indexed min-heap of per-component next-event ticks. */
class EventQueue
{
  public:
    EventQueue() = default;
    explicit EventQueue(int num_components) { reset(num_components); }

    /** Rebuild for @p num_components ranks, all parked at maxTick. */
    void reset(int num_components);

    /** Number of component ranks (fixed between resets). */
    int size() const { return static_cast<int>(keys.size()); }

    /**
     * (Re)schedule component @p rank's next event at @p t. Passing
     * maxTick parks the component (cancels its pending event).
     * Idempotent; O(log n) when the key actually moves. Inline: this
     * is the kernel's hottest call (twice per dispatched event).
     */
    void
    schedule(int rank, Tick t)
    {
        std::size_t r = static_cast<std::size_t>(rank);
        Tick old = keys[r];
        if (old == t)
            return;
        keys[r] = t;
        if (t < old)
            siftUp(pos[r]);
        else
            siftDown(pos[r]);
    }

    /** The tick currently scheduled for @p rank. */
    Tick
    tickOf(int rank) const
    {
        return keys[static_cast<std::size_t>(rank)];
    }

    /** Rank of the earliest event (lowest rank wins ties). */
    int topRank() const { return heap[0]; }

    /** Tick of the earliest event; maxTick when everything is idle. */
    Tick
    topTick() const
    {
        return heap.empty() ? maxTick
                            : keys[static_cast<std::size_t>(heap[0])];
    }

  private:
    /** Heap order: (tick, rank) lexicographic. */
    bool
    before(int a, int b) const
    {
        Tick ta = keys[static_cast<std::size_t>(a)];
        Tick tb = keys[static_cast<std::size_t>(b)];
        return ta != tb ? ta < tb : a < b;
    }

    void
    place(std::size_t slot, int rank)
    {
        heap[slot] = rank;
        pos[static_cast<std::size_t>(rank)] = slot;
    }

    void
    siftUp(std::size_t slot)
    {
        int rank = heap[slot];
        while (slot > 0) {
            std::size_t parent = (slot - 1) / 2;
            if (!before(rank, heap[parent]))
                break;
            place(slot, heap[parent]);
            slot = parent;
        }
        place(slot, rank);
    }

    void
    siftDown(std::size_t slot)
    {
        int rank = heap[slot];
        std::size_t n = heap.size();
        for (;;) {
            std::size_t kid = 2 * slot + 1;
            if (kid >= n)
                break;
            if (kid + 1 < n && before(heap[kid + 1], heap[kid]))
                kid += 1;
            if (!before(heap[kid], rank))
                break;
            place(slot, heap[kid]);
            slot = kid;
        }
        place(slot, rank);
    }

    std::vector<int> heap;   //!< slot -> rank
    std::vector<std::size_t> pos; //!< rank -> slot
    std::vector<Tick> keys;  //!< rank -> scheduled tick
};

} // namespace coscale

#endif // COSCALE_SIM_EVENT_QUEUE_HH
