/**
 * @file
 * The epoch-based experiment runner (Section 3, "Overall operation"):
 * per epoch, profile for 300 us (scaled), let the policy pick
 * frequencies, transition, run the epoch out, then update the
 * policy's slack from whole-epoch counters.
 *
 * Also provides the result records and baseline-relative comparison
 * helpers every benchmark harness uses.
 */

#ifndef COSCALE_SIM_RUNNER_HH
#define COSCALE_SIM_RUNNER_HH

#include <string>
#include <vector>

#include "policy/policy.hh"
#include "sim/system.hh"
#include "workloads/spec_catalogue.hh"

namespace coscale {

struct AuditSet;

/** Per-epoch log entry (frequencies and power), for Fig. 7. */
struct EpochLog
{
    Tick startTick = 0;
    FreqConfig applied;
    PowerBreakdown avgPower;
};

/** Outcome of one workload run under one policy. */
struct RunResult
{
    std::string mixName;
    std::string policyName;

    Tick finishTick = 0;              //!< slowest app's completion
    std::vector<Tick> appCompletion;  //!< per core

    double cpuEnergyJ = 0.0;   //!< cores + L2, until finishTick
    double memEnergyJ = 0.0;
    double otherEnergyJ = 0.0;

    std::vector<EpochLog> epochs;

    std::uint64_t totalInstrs = 0;
    double measuredMpki = 0.0;  //!< demand LLC misses per kilo-instr
    double measuredWpki = 0.0;
    double prefetchAccuracy = 0.0;

    // DRAM traffic (for the prefetching study, Fig. 16).
    std::uint64_t dramReads = 0;      //!< demand reads serviced
    std::uint64_t dramPrefetches = 0; //!< prefetch fills serviced
    std::uint64_t dramWrites = 0;     //!< writebacks serviced

    std::uint64_t
    dramTraffic() const
    {
        return dramReads + dramPrefetches + dramWrites;
    }

    double
    totalEnergyJ() const
    {
        return cpuEnergyJ + memEnergyJ + otherEnergyJ;
    }

    /** Energy per instruction in nanojoules. */
    double
    energyPerInstrNj() const
    {
        return totalInstrs
                   ? totalEnergyJ() * 1e9
                         / static_cast<double>(totalInstrs)
                   : 0.0;
    }
};

/** Baseline-relative savings and degradations. */
struct Comparison
{
    double fullSystemSavings = 0.0; //!< 1 - E/E_base
    double cpuSavings = 0.0;
    double memSavings = 0.0;
    double avgDegradation = 0.0;    //!< mean per-app slowdown
    double worstDegradation = 0.0;  //!< slowest per-app slowdown
};

/**
 * Run @p mix under @p policy on a fresh System built from @p cfg.
 *
 * When @p audit is given, its three auditors (check/audit.hh) observe
 * the whole run: the DRAM timing auditor is attached to every memory
 * channel, and the energy/perf auditors see each epoch. When it is
 * null and auditing is enabled (COSCALE_AUDIT build or environment),
 * the runner creates and wires a private AuditSet automatically.
 */
RunResult runWorkload(const SystemConfig &cfg, const WorkloadMix &mix,
                      Policy &policy, AuditSet *audit = nullptr);

/** Run with explicit per-core application specs (custom workloads). */
RunResult runApps(const SystemConfig &cfg, const std::string &label,
                  const std::vector<AppSpec> &apps, Policy &policy,
                  AuditSet *audit = nullptr);

/** Compare a policy run against the matching baseline run. */
Comparison compare(const RunResult &baseline, const RunResult &run);

/**
 * Emit a machine-readable JSON report of a run (and, when given, its
 * baseline comparison), including the per-epoch frequency/power log.
 */
void writeJsonReport(const RunResult &run,
                     const Comparison *vs_baseline, std::ostream &os);

} // namespace coscale

#endif // COSCALE_SIM_RUNNER_HH
