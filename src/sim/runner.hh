/**
 * @file
 * The epoch-based experiment runner (Section 3, "Overall operation"):
 * per epoch, profile for 300 us (scaled), let the policy pick
 * frequencies, transition, run the epoch out, then update the
 * policy's slack from whole-epoch counters.
 *
 * Also provides the result records and baseline-relative comparison
 * helpers every benchmark harness uses.
 */

#ifndef COSCALE_SIM_RUNNER_HH
#define COSCALE_SIM_RUNNER_HH

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.hh"
#include "obs/metrics.hh"
#include "obs/trace_sink.hh"
#include "policy/policy.hh"
#include "sim/system.hh"
#include "workloads/spec_catalogue.hh"

namespace coscale {

struct AuditSet;

/**
 * Creates a fresh Policy instance for one run. Batch execution (the
 * experiment engine in exp/) requires a factory rather than a shared
 * Policy object: policies carry mutable per-run state (slack ledgers,
 * search history), so two parallel runs through one instance would
 * race and, worse, silently couple their decisions.
 */
using PolicyFactory = std::function<std::unique_ptr<Policy>()>;

/** Per-epoch log entry (frequencies and power), for Fig. 7. */
struct EpochLog
{
    Tick startTick = 0;
    FreqConfig applied;
    PowerBreakdown avgPower;
};

/** Outcome of one workload run under one policy. */
struct RunResult
{
    std::string mixName;
    std::string policyName;

    Tick finishTick = 0;              //!< slowest app's completion
    std::vector<Tick> appCompletion;  //!< per core

    double cpuEnergyJ = 0.0;   //!< cores + L2, until finishTick
    double memEnergyJ = 0.0;
    double otherEnergyJ = 0.0;

    std::vector<EpochLog> epochs;

    std::uint64_t totalInstrs = 0;
    double measuredMpki = 0.0;  //!< demand LLC misses per kilo-instr
    double measuredWpki = 0.0;
    double prefetchAccuracy = 0.0;

    // DRAM traffic (for the prefetching study, Fig. 16).
    std::uint64_t dramReads = 0;      //!< demand reads serviced
    std::uint64_t dramPrefetches = 0; //!< prefetch fills serviced
    std::uint64_t dramWrites = 0;     //!< writebacks serviced

    /**
     * Per-run metrics registry, populated when the request asked for
     * one (RunRequest::withMetrics). Null otherwise. Shared so results
     * stay cheap to copy through the engine's outcome plumbing.
     */
    std::shared_ptr<MetricsRegistry> metrics;

    /**
     * Injected-fault accounting: true when the request carried an
     * enabled FaultPlan, with the per-kind event counts. All-zero for
     * clean runs. Deterministic (pure function of the request), so it
     * may appear in JSON reports.
     */
    bool faultsEnabled = false;
    fault::FaultSummary faults;

    std::uint64_t
    dramTraffic() const
    {
        return dramReads + dramPrefetches + dramWrites;
    }

    double
    totalEnergyJ() const
    {
        return cpuEnergyJ + memEnergyJ + otherEnergyJ;
    }

    /** Energy per instruction in nanojoules. */
    double
    energyPerInstrNj() const
    {
        return totalInstrs
                   ? totalEnergyJ() * 1e9
                         / static_cast<double>(totalInstrs)
                   : 0.0;
    }
};

/** Baseline-relative savings and degradations. */
struct Comparison
{
    double fullSystemSavings = 0.0; //!< 1 - E/E_base
    double cpuSavings = 0.0;
    double memSavings = 0.0;
    double avgDegradation = 0.0;    //!< mean per-app slowdown
    double worstDegradation = 0.0;  //!< slowest per-app slowdown
};

/**
 * A self-contained description of one simulation run: configuration,
 * workload, policy, seeding, and audit wiring. Requests are plain
 * values — copyable, comparable by digest, safe to ship to a worker
 * thread — and are the unit of work of the experiment engine
 * (exp/engine.hh) as well as the argument of the unified run() entry
 * point below.
 *
 * Determinism contract: a run is a pure function of the request. Two
 * requests with equal configuration, apps, and seed produce
 * bit-identical RunResults regardless of which thread executes them
 * or what else runs concurrently.
 */
struct RunRequest
{
    std::string label;          //!< result mixName (mix or custom tag)
    SystemConfig cfg;
    std::vector<AppSpec> apps;  //!< one entry per core (or per thread)

    /** Preferred policy source: a fresh instance per execution. */
    PolicyFactory makePolicy;

    /**
     * Alternative for single-shot call sites that need to inspect the
     * policy object afterwards: a caller-owned instance. Mutually
     * exclusive with batch execution — the engine rejects borrowed
     * policies because the instance would be shared across threads.
     */
    Policy *borrowedPolicy = nullptr;

    /** Non-zero overrides cfg.seed (deterministic per-request seeding). */
    std::uint64_t seed = 0;

    /**
     * Force-attach a private AuditSet even when the build/environment
     * default (auditingEnabled()) is off.
     */
    bool forceAudit = false;

    /** External auditors to observe the run (tests). */
    AuditSet *auditSet = nullptr;

    /**
     * Engine only: memoize a BaselinePolicy run of the same
     * configuration + workload and report the Comparison against it.
     */
    bool wantBaseline = false;

    /**
     * Epoch-level trace output (obs/trace_sink.hh). When the spec has
     * a path, run() opens a private sink for the run and closes it on
     * completion. Timestamps are simulated ticks, so a trace is as
     * deterministic as the run itself.
     */
    TraceSpec trace;

    /**
     * Alternative to @ref trace for tests and embedders: a borrowed,
     * caller-owned sink. The caller keeps responsibility for calling
     * finish() on it. A run uses at most one sink; a borrowed sink
     * wins over a TraceSpec path.
     */
    TraceSink *traceSink = nullptr;

    /** Collect a per-run MetricsRegistry into RunResult::metrics. */
    bool wantMetrics = false;

    /**
     * Deterministic fault injection (fault/fault_plan.hh). A
     * default-constructed (disabled) plan costs nothing: the runner
     * never instantiates an injector and the epoch loop is untouched
     * byte-for-byte. Faulted runs keep the determinism contract —
     * every fault decision is a pure function of (plan, effective
     * seed, epoch), never of execution order.
     */
    fault::FaultPlan faults;

    /**
     * Cooperative cancellation (the engine's watchdog): when non-null
     * and set, the epoch loop aborts at the next epoch boundary by
     * throwing std::runtime_error. Never part of the determinism
     * contract — a cancelled run produces no result at all.
     */
    const std::atomic<bool> *cancelFlag = nullptr;

    /** Request for a Table 1 mix expanded over cfg's cores. */
    static RunRequest forMix(const SystemConfig &cfg,
                             const WorkloadMix &mix);

    /** Request with explicit per-core application specs. */
    static RunRequest forApps(const SystemConfig &cfg, std::string label,
                              std::vector<AppSpec> apps);

    /** Attach a policy factory (chainable). */
    RunRequest &
    with(PolicyFactory factory)
    {
        makePolicy = std::move(factory);
        return *this;
    }

    /** Borrow a caller-owned policy instance (chainable). */
    RunRequest &
    with(Policy &policy)
    {
        borrowedPolicy = &policy;
        return *this;
    }

    RunRequest &
    withSeed(std::uint64_t s)
    {
        seed = s;
        return *this;
    }

    RunRequest &
    withAudit(AuditSet *audit)
    {
        auditSet = audit;
        return *this;
    }

    RunRequest &
    withForcedAudit(bool on = true)
    {
        forceAudit = on;
        return *this;
    }

    RunRequest &
    withBaseline(bool on = true)
    {
        wantBaseline = on;
        return *this;
    }

    /** Write an epoch-level trace to @p spec's path (chainable). */
    RunRequest &
    withTrace(TraceSpec spec)
    {
        trace = std::move(spec);
        return *this;
    }

    /** Emit trace events into a caller-owned sink (chainable). */
    RunRequest &
    withTrace(TraceSink &sink)
    {
        traceSink = &sink;
        return *this;
    }

    RunRequest &
    withMetrics(bool on = true)
    {
        wantMetrics = on;
        return *this;
    }

    /** Attach a fault-injection plan (chainable). */
    RunRequest &
    withFaults(fault::FaultPlan plan)
    {
        faults = plan;
        return *this;
    }

    /** Arm cooperative cancellation (engine watchdog; chainable). */
    RunRequest &
    withCancelFlag(const std::atomic<bool> *flag)
    {
        cancelFlag = flag;
        return *this;
    }

    /** cfg with the per-request seed override applied. */
    SystemConfig
    effectiveConfig() const
    {
        SystemConfig c = cfg;
        if (seed != 0)
            c.seed = seed;
        return c;
    }
};

/**
 * Run the experiment described by @p req on a fresh System and return
 * its results. run(RunRequest) is the single entry point every
 * harness, example, and test goes through: build a request with
 * RunRequest::forMix or RunRequest::forApps, layer options on with
 * the with*() chain, and pass it here.
 *
 * Audit wiring: when req.auditSet is given, its three auditors
 * (check/audit.hh) observe the whole run — the DRAM timing auditor is
 * attached to every memory channel and the energy/perf auditors see
 * each epoch. When it is null and auditing is enabled (COSCALE_AUDIT
 * build or environment, or req.forceAudit), a private AuditSet is
 * created and wired automatically.
 *
 * Observability wiring: when the request names a trace sink (path or
 * borrowed) the epoch loop emits one "epoch" event per epoch (applied
 * frequencies, exact per-component energy, predicted-vs-actual TPI,
 * the policy's slack ledger), one "dram"/chN event per memory channel
 * per epoch, the policies' own "search" events, and a final "run"
 * summary. With wantMetrics, a registry of run-wide counters,
 * accumulators, and histograms lands in RunResult::metrics.
 */
RunResult run(const RunRequest &req);

/** Compare a policy run against the matching baseline run. */
Comparison compare(const RunResult &baseline, const RunResult &run);

/**
 * Emit a machine-readable JSON report of a run (and, when given, its
 * baseline comparison), including the per-epoch frequency/power log,
 * the injected-fault summary for faulted runs, and — when
 * @p attempts > 0 — the engine's attempt count (omitted otherwise so
 * single-attempt reports stay byte-stable).
 */
void writeJsonReport(const RunResult &run,
                     const Comparison *vs_baseline, std::ostream &os,
                     int attempts = 0);

} // namespace coscale

#endif // COSCALE_SIM_RUNNER_HH
