#include "sim/system.hh"

#include <algorithm>

#include <cstdlib>

#include "check/contract.hh"
#include "common/log.hh"
#include "model/knobs.hh"
#include "trace/synthetic.hh"

namespace coscale {

SystemConfig
makeScaledConfig(double scale)
{
    COSCALE_CHECK(scale > 0.0 && scale <= 1.0,
                  "time scale must be in (0, 1]");
   SystemConfig cfg;
   cfg.timeScale = scale;
   cfg.instrBudget =
       static_cast<std::uint64_t>(100e6 * scale + 0.5);
   cfg.epochLen = static_cast<Tick>(5.0 * tickPerMs * scale + 0.5);
   cfg.profileLen = static_cast<Tick>(300.0 * tickPerUs * scale + 0.5);
   cfg.coreTransitionTicks =
       static_cast<Tick>(30.0 * tickPerUs * scale + 0.5);
   // Scale the memory re-calibration penalty consistently with the
   // epoch length so transition overheads keep the paper's relative
   // cost (they are "negligible" against 5 ms epochs).
   cfg.timing.recalCycles = std::max(
       1, static_cast<int>(512.0 * scale + 0.5));
   cfg.timing.recalExtraNs = 28.0 * scale;

   cfg.power.geom = cfg.geom;
   cfg.power.timing = cfg.timing;
   cfg.power.numCores = cfg.numCores;

   // CI's non-default-backend leg steers every config built through
   // this funnel via the environment; unset (or empty) variables
   // leave the paper's backend untouched, and backend-pinned tests
   // re-apply their explicit selection afterwards.
   MemBackendSel sel = cfg.memBackend;
   bool overridden = false;
   // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; no setenv in the process
   if (const char *e = std::getenv("COSCALE_MEM_SCHED"); e && *e) {
       COSCALE_CHECK(parseMemSched(e, &sel.sched),
                     "bad COSCALE_MEM_SCHED '%s'", e);
       overridden = true;
   }
   // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; no setenv in the process
   if (const char *e = std::getenv("COSCALE_ROW_POLICY"); e && *e) {
       COSCALE_CHECK(parseRowPolicy(e, &sel.rowPolicy),
                     "bad COSCALE_ROW_POLICY '%s'", e);
       overridden = true;
   }
   // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; no setenv in the process
   if (const char *e = std::getenv("COSCALE_DRAM_STANDARD"); e && *e) {
       COSCALE_CHECK(parseDramStandard(e, &sel.standard),
                     "bad COSCALE_DRAM_STANDARD '%s'", e);
       overridden = true;
   }
   if (overridden)
       applyMemBackend(cfg, sel);
   // CI's knob-partition leg turns on the LLC way dimension the same
   // way; the System's own gate (ways >= 2 * cores) keeps it inert on
   // geometries with no room to partition, such as the default
   // 16-core/16-way server.
   // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; no setenv in the process
   if (const char *e = std::getenv("COSCALE_KNOB_LLC_WAYS");
       e && *e && *e != '0') {
       cfg.knobs.llcWays = true;
   }
   return cfg;
}

void
applyMemBackend(SystemConfig &cfg, const MemBackendSel &sel)
{
   cfg.memBackend = sel;
   const DramStandardInfo &info = dramStandardInfo(sel.standard);
   DramTimingParams timing = info.timing;
   // Rescale the recalibration penalty with the time scale, matching
   // makeScaledConfig()'s treatment of the DDR3 default.
   timing.recalCycles = std::max(
       1, static_cast<int>(info.timing.recalCycles * cfg.timeScale
                           + 0.5));
   timing.recalExtraNs = info.timing.recalExtraNs * cfg.timeScale;
   cfg.timing = timing;
   cfg.memLadder = standardMemLadder(sel.standard);
   cfg.power.timing = cfg.timing;
   cfg.power.mem.currents = info.currents;
   cfg.power.mem.fRef = info.busMax;
}

System::System(const SystemConfig &cfg_in, const std::vector<AppSpec> &apps)
   : cfg(cfg_in)
{
   int num_apps = static_cast<int>(apps.size());
   bool sched = cfg.schedQuantumEpochs > 0 && num_apps > cfg.numCores;
   if (sched) {
       COSCALE_CHECK(num_apps >= cfg.numCores,
                      "scheduling needs at least one app per core");
   } else {
       COSCALE_CHECK(num_apps == cfg.numCores,
                      "need one application per core (%d vs %d)",
                      num_apps, cfg.numCores);
   }

   coreCfg.ladder = cfg.coreLadder;
   coreCfg.transitionTicks = cfg.coreTransitionTicks;
   coreCfg.ooo = cfg.ooo;
   coreCfg.oooWindow = cfg.oooWindow;
   coreCfg.maxOutstanding = cfg.maxOutstanding;
   // Under scheduling, per-thread budgets are tracked by the System
   // through budget markers, not by the core itself.
   coreCfg.instrBudget = sched ? ~std::uint64_t(0) : cfg.instrBudget;

   cache = Llc(cfg.llc);
   // The way-partition dimension needs room to move under the QoS
   // floor; with fewer than two ways per core the gate stays closed
   // and the system is byte-identical to a knob-free build.
   if (cfg.knobs.llcWays && cfg.llc.ways >= 2 * cfg.numCores) {
       cache.setShadowTracking(cfg.numCores);
       // The even split is also the policies' performance reference
       // (KnobSpace::baselinePartition), so both layers share the
       // helper rather than each computing their own split.
       cache.setPartition(evenWaySplit(cfg.llc.ways, cfg.numCores));
   }

   MemCtrlConfig mcc;
   mcc.geom = cfg.geom;
   mcc.timing = cfg.timing;
   mcc.ladder = cfg.memLadder;
   mcc.writeHighWater = cfg.writeHighWater;
   mcc.writeLowWater = cfg.writeLowWater;
   mcc.respFixedNs = cfg.respFixedNs;
   mcc.backend = cfg.memBackend;
   mc = MemCtrl(mcc, 0);

   perf = PerfModel(cfg.timing, cfg.respFixedNs, cfg.llc.hitLatencyNs);

   PowerParams pp = cfg.power;
   pp.geom = cfg.geom;
   pp.timing = cfg.timing;
   pp.numCores = cfg.numCores;
   power = PowerModel(pp);

   coreVec.reserve(static_cast<size_t>(cfg.numCores));
   for (int i = 0; i < cfg.numCores; ++i) {
       TraceHandle trace(std::make_unique<SyntheticTraceSource>(
           apps[static_cast<size_t>(i)], i,
           cfg.seed * 7919 + static_cast<std::uint64_t>(i) * 104729));
       coreVec.emplace_back(i, &coreCfg, std::move(trace), 0);
       appOnCore.push_back(i);
       ticAtDispatch.push_back(0);
       if (sched)
           coreVec.back().setBudgetMarker(cfg.instrBudget);
   }
   eq.reset(1 + cfg.numCores);
   syncQueue();

   appInstrs.assign(static_cast<size_t>(num_apps), 0);
   appCompletion.assign(static_cast<size_t>(num_apps), maxTick);
   for (int a = cfg.numCores; a < num_apps; ++a) {
       ParkedApp p;
       p.app = a;
       p.trace = TraceHandle(std::make_unique<SyntheticTraceSource>(
           apps[static_cast<size_t>(a)], a,
           cfg.seed * 7919 + static_cast<std::uint64_t>(a) * 104729));
       parked.push_back(std::move(p));
   }
}

System::System(const System &other)
   : cfg(other.cfg), coreCfg(other.coreCfg), coreVec(other.coreVec),
     cache(other.cache), mc(other.mc), perf(other.perf),
     power(other.power), curTick(other.curTick),
     events(other.events),
     appOnCore(other.appOnCore), parked(other.parked),
     appInstrs(other.appInstrs), appCompletion(other.appCompletion),
     ticAtDispatch(other.ticAtDispatch), rotated(other.rotated),
     nextSwapCore(other.nextSwapCore)
{
   reseat();
}

System &
System::operator=(const System &other)
{
   if (this != &other) {
       cfg = other.cfg;
       coreCfg = other.coreCfg;
       coreVec = other.coreVec;
       cache = other.cache;
       mc = other.mc;
       perf = other.perf;
       power = other.power;
       curTick = other.curTick;
       events = other.events;
       appOnCore = other.appOnCore;
       parked = other.parked;
       appInstrs = other.appInstrs;
       appCompletion = other.appCompletion;
       ticAtDispatch = other.ticAtDispatch;
       rotated = other.rotated;
       nextSwapCore = other.nextSwapCore;
       reseat();
   }
   return *this;
}

void
System::reseat()
{
   for (auto &core : coreVec)
       core.reseatConfig(&coreCfg);
   // Queue membership is not copied; re-derive it from the cloned
   // components so the clone's keys reference the clone's state.
   eq.reset(1 + numCores());
   syncQueue();
}

void
System::syncQueue()
{
   rescheduleMc();
   for (int i = 0; i < numCores(); ++i)
       rescheduleCore(i);
}

void
System::handleLlcAccess(Core &core, const CoreEvent &ev)
{
   LlcAccessResult res = cache.access(ev.addr, ev.write, core.id());
   bool to_mem = false;
   if (res.hit) {
       core.completeHit(curTick, cache.hitLatency());
   } else {
       std::uint64_t token = core.sendToMemory(curTick);
       MemReq req;
       req.addr = ev.addr;
       req.kind = ReqKind::Read;
       req.core = core.id();
       req.arrival = curTick;
       req.token = token;
       mc.enqueue(req);
       to_mem = true;
   }
   if (res.writeback) {
       MemReq wb;
       wb.addr = res.writebackAddr;
       wb.kind = ReqKind::Writeback;
       wb.arrival = curTick;
       mc.enqueue(wb);
       to_mem = true;
   }
   if (res.prefetchIssued) {
       MemReq pf;
       pf.addr = res.prefetchAddr;
       pf.kind = ReqKind::Prefetch;
       pf.core = core.id();
       pf.arrival = curTick;
       mc.enqueue(pf);
       to_mem = true;
   }
   if (res.prefetchWriteback) {
       MemReq wb;
       wb.addr = res.prefetchWritebackAddr;
       wb.kind = ReqKind::Writeback;
       wb.arrival = curTick;
       mc.enqueue(wb);
       to_mem = true;
   }
   if (to_mem)
       rescheduleMc();
}

void
System::run(Tick until)
{
   while (curTick < until) {
       // Pop–dispatch: the queue key (tick, rank) reproduces the old
       // polling scan's order exactly — the controller (rank 0) wins
       // ties against cores, and cores tie-break by index.
       Tick best = eq.topTick();
       if (best >= until) {
           curTick = until;
           return;
       }
       // A candidate-selection switch in the memory scheduler (write
       // drain engaging, or the read queue running dry) can expose a
       // queued command whose timing floors all lie in the past; the
       // channel back-dates its issue to those floors.  Such events
       // are due immediately — the simulated clock never regresses.
       curTick = std::max(curTick, best);
       events += 1;
       int rank = eq.topRank();
       if (rank == mcRank) {
           auto done = mc.step();
           rescheduleMc();
           if (done && done->kind == ReqKind::Read && done->core >= 0) {
               int c = done->core;
               coreVec[static_cast<size_t>(c)].memCompleted(
                   done->token, done->finishAt);
               rescheduleCore(c);
           }
       } else {
           int i = rank - 1 - mcRank;
           Core &who = coreVec[static_cast<size_t>(i)];
           CoreEvent ev = who.step(curTick);
           if (ev.wantsLlc)
               handleLlcAccess(who, ev);
           rescheduleCore(i);
       }
   }
}

bool
System::allAppsDone() const
{
   if (parked.empty() && !rotated) {
       for (const auto &core : coreVec) {
           if (!core.done())
               return false;
       }
       return true;
   }
   for (Tick t : appCompletionTicks()) {
       if (t == maxTick)
           return false;
   }
   return true;
}

Tick
System::lastCompletionTick() const
{
   Tick last = 0;
   for (Tick t : appCompletionTicks())
       last = std::max(last, t == maxTick ? Tick(0) : t);
   return last;
}

std::vector<Tick>
System::appCompletionTicks() const
{
   if (parked.empty() && !rotated) {
       std::vector<Tick> out;
       out.reserve(coreVec.size());
       for (const auto &core : coreVec)
           out.push_back(core.completionTick());
       return out;
   }
   // Scheduling mode: recorded completions, merged with any budget
   // markers that fired since the last harvest.
   std::vector<Tick> out = appCompletion;
   for (int i = 0; i < numCores(); ++i) {
       int app = appOnCore[static_cast<size_t>(i)];
       Tick marker = coreVec[static_cast<size_t>(i)].budgetMarkerTick();
       if (out[static_cast<size_t>(app)] == maxTick && marker != maxTick)
           out[static_cast<size_t>(app)] = marker;
   }
   return out;
}

void
System::harvestCore(int i)
{
   Core &core = coreVec[static_cast<size_t>(i)];
   int app = appOnCore[static_cast<size_t>(i)];
   std::uint64_t tic = core.counters().tic;
   appInstrs[static_cast<size_t>(app)] +=
       tic - ticAtDispatch[static_cast<size_t>(i)];
   ticAtDispatch[static_cast<size_t>(i)] = tic;
   Tick marker = core.budgetMarkerTick();
   if (appCompletion[static_cast<size_t>(app)] == maxTick
       && marker != maxTick) {
       appCompletion[static_cast<size_t>(app)] = marker;
   }
}

void
System::rotateApps()
{
   if (parked.empty())
       return;
   rotated = true;
   size_t swaps = parked.size();
   for (size_t j = 0; j < swaps; ++j) {
       int i = nextSwapCore;
       nextSwapCore = (nextSwapCore + 1) % numCores();
       harvestCore(i);

       ParkedApp incoming = std::move(parked.front());
       parked.erase(parked.begin());

       Core &core = coreVec[static_cast<size_t>(i)];
       TraceHandle outgoing = core.swapTrace(
           std::move(incoming.trace), curTick, cfg.contextSwitchTicks);

       ParkedApp out;
       out.app = appOnCore[static_cast<size_t>(i)];
       out.trace = std::move(outgoing);
       parked.push_back(std::move(out));

       appOnCore[static_cast<size_t>(i)] = incoming.app;
       ticAtDispatch[static_cast<size_t>(i)] = core.counters().tic;
       std::uint64_t done = appInstrs[static_cast<size_t>(incoming.app)];
       if (done < cfg.instrBudget) {
           core.setBudgetMarker(core.counters().tic
                                + (cfg.instrBudget - done));
       } else {
           core.setBudgetMarker(~std::uint64_t(0));
       }
       rescheduleCore(i);  // swapTrace restarted the core's clock
   }
}

void
System::applyConfig(const FreqConfig &fc)
{
   COSCALE_CHECK(static_cast<int>(fc.coreIdx.size()) == numCores(),
                  "decision size mismatch");
   for (int i = 0; i < numCores(); ++i) {
       coreVec[static_cast<size_t>(i)].setFrequencyIndex(
           fc.coreIdx[static_cast<size_t>(i)], curTick);
   }
   if (fc.chanIdx.empty()) {
       mc.setFrequency(ChannelSel::all(), fc.memIdx, curTick);
   } else {
       COSCALE_CHECK(static_cast<int>(fc.chanIdx.size())
                          == mc.numChannels(),
                      "per-channel decision size mismatch");
       for (int c = 0; c < mc.numChannels(); ++c) {
           mc.setFrequency(ChannelSel::one(c),
                           fc.chanIdx[static_cast<size_t>(c)], curTick);
       }
   }
   // Way-mask updates are a register write in CAT-style hardware:
   // no transition halt, resident lines migrate lazily on misses.
   if (!fc.wayIdx.empty()) {
       COSCALE_CHECK(static_cast<int>(fc.wayIdx.size()) == numCores(),
                      "way decision size mismatch");
       cache.setPartition(fc.wayIdx);
   }
   // Transition halts moved every component's next-event tick.
   syncQueue();
}

FreqConfig
System::currentConfig() const
{
   FreqConfig fc;
   fc.coreIdx.reserve(coreVec.size());
   for (const auto &core : coreVec)
       fc.coreIdx.push_back(core.frequencyIndex());
   fc.memIdx = mc.frequencyIndex();
   if (mc.perChannelFrequencies()) {
       for (int c = 0; c < mc.numChannels(); ++c)
           fc.chanIdx.push_back(mc.channelFrequencyIndex(c));
   }
   if (cache.partitionActive())
       fc.wayIdx = cache.partition();
   return fc;
}

CounterSnapshot
System::snapshot() const
{
   CounterSnapshot s;
   s.cores.reserve(coreVec.size());
   for (const auto &core : coreVec)
       s.cores.push_back(core.counters());
   s.mem = mc.totalCounters();
   for (int c = 0; c < mc.numChannels(); ++c)
       s.memChannels.push_back(mc.channelCounters(c));
   s.llc = cache.counters();
   if (cache.shadowTracking()) {
       s.llcWayHits = cache.shadowHits();
       s.llcShadowMiss = cache.shadowMisses();
   }
   s.tick = curTick;
   return s;
}

SystemProfile
System::makeProfile(const CounterSnapshot &since) const
{
   Tick elapsed = curTick - since.tick;
   COSCALE_CHECK(elapsed > 0, "empty profiling window");

   SystemProfile prof;
   prof.windowTicks = elapsed;
   prof.cores.reserve(coreVec.size());
   for (size_t i = 0; i < coreVec.size(); ++i) {
       CoreCounters delta = coreVec[i].counters() - since.cores[i];
       prof.cores.push_back(
           perf.coreProfile(delta, elapsed, coreVec[i].freq()));
       prof.profiledCoreIdx.push_back(coreVec[i].frequencyIndex());
   }
   ChannelCounters mem_delta = mc.totalCounters() - since.mem;
   prof.mem = perf.memProfile(mem_delta, elapsed, mc.busFreq(),
                              cfg.geom.channels, cfg.geom.totalRanks());
   prof.profiledMemIdx = mc.frequencyIndex();

   // Way-partition snapshot: the shadow monitors' partition-
   // independent miss curves, as per-instruction rates over the
   // window. Absent (waysTotal == 0) when partitioning is off, which
   // keeps the model on the legacy DVFS-only paths.
   if (cache.partitionActive() && cache.shadowTracking()
       && since.llcShadowMiss.size() == coreVec.size()) {
       prof.waysTotal = cfg.llc.ways;
       prof.wayFloor = cfg.knobs.wayFloor;
       prof.profiledWayIdx = cache.partition();
       const std::vector<std::uint64_t> &hits = cache.shadowHits();
       const std::vector<std::uint64_t> &miss = cache.shadowMisses();
       size_t ways = static_cast<size_t>(cfg.llc.ways);
       for (size_t i = 0; i < coreVec.size(); ++i) {
           std::uint64_t instrs =
               coreVec[i].counters().tic - since.cores[i].tic;
           if (instrs == 0)
               continue;  // empty curve; the model falls back to 1.0
           double inv = 1.0 / static_cast<double>(instrs);
           CoreProfile &c = prof.cores[i];
           c.wayHitsPerInstr.assign(ways, 0.0);
           for (size_t d = 0; d < ways; ++d) {
               c.wayHitsPerInstr[d] =
                   static_cast<double>(hits[i * ways + d]
                                       - since.llcWayHits[i * ways + d])
                   * inv;
           }
           c.shadowMissPerInstr =
               static_cast<double>(miss[i] - since.llcShadowMiss[i])
               * inv;
       }
   }

   // Per-channel profiles (MultiScale extension) and core homing.
   for (int c = 0; c < mc.numChannels(); ++c) {
       ChannelCounters d = mc.channelCounters(c)
                           - since.memChannels[static_cast<size_t>(c)];
       prof.channels.push_back(perf.memProfile(
           d, elapsed, mc.channelBusFreq(c), 1,
           cfg.geom.ranksPerChannel()));
   }
   if (cfg.geom.addrMap == AddrMap::RegionPerChannel) {
       for (size_t i = 0; i < prof.cores.size(); ++i) {
           prof.cores[i].homeChannel =
               static_cast<int>(i) % cfg.geom.channels;
       }
   }
   if (!parked.empty() || rotated)
       prof.appOnCore = appOnCore;
   return prof;
}

SystemProfile
System::oracleProfile(Tick horizon) const
{
   System clone(*this);
   clone.applyConfig(FreqConfig::allMax(clone.numCores()));
   // Skip the clone past the transition halts so the oracle window
   // reflects steady execution at maximum frequencies.
   Tick start = clone.now() + cfg.coreTransitionTicks;
   clone.run(start);
   CounterSnapshot s = clone.snapshot();
   clone.run(start + horizon);
   return clone.makeProfile(s);
}

PowerBreakdown
System::windowPower(const CounterSnapshot &since) const
{
   Tick elapsed = curTick - since.tick;
   COSCALE_CHECK(elapsed > 0, "empty power window");

   PowerBreakdown pb;
   for (size_t i = 0; i < coreVec.size(); ++i) {
       CoreCounters delta = coreVec[i].counters() - since.cores[i];
       int idx = coreVec[i].frequencyIndex();
       pb.cpuW += power.corePowerFromCounters(
           delta, elapsed, cfg.coreLadder.voltage(idx),
           cfg.coreLadder.freq(idx));
   }
   LlcCounters llc_delta = cache.counters() - since.llc;
   double llc_rate = static_cast<double>(llc_delta.accesses)
                     / ticksToSeconds(elapsed);
   pb.cpuW += power.l2Power(llc_rate);

   // Memory power is accounted per channel so per-channel DVFS
   // (MultiScale) is costed correctly; with uniform frequencies this
   // sums to the aggregate formulation.
   for (int c = 0; c < mc.numChannels(); ++c) {
       ChannelCounters d = mc.channelCounters(c)
                           - since.memChannels[static_cast<size_t>(c)];
       int idx = mc.channelFrequencyIndex(c);
       pb.memW += power.memChannelPowerFromCounters(
           d, elapsed, cfg.memLadder.voltage(idx),
           cfg.memLadder.freq(idx));
   }
   pb.otherW = power.otherPower();
   return pb;
}

std::vector<std::uint64_t>
System::instrsSince(const CounterSnapshot &since) const
{
   std::vector<std::uint64_t> out;
   out.reserve(coreVec.size());
   for (size_t i = 0; i < coreVec.size(); ++i)
       out.push_back(coreVec[i].counters().tic - since.cores[i].tic);
   return out;
}

} // namespace coscale
