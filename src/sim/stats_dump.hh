/**
 * @file
 * Human-readable statistics dump for a System, in the spirit of
 * gem5's stats.txt: every counter of every component, plus derived
 * rates, formatted one per line as `name value # description`.
 */

#ifndef COSCALE_SIM_STATS_DUMP_HH
#define COSCALE_SIM_STATS_DUMP_HH

#include <ostream>

#include "sim/system.hh"

namespace coscale {

/**
 * Write every component's counters and headline derived statistics
 * to @p os. @p since allows dumping a window instead of
 * beginning-of-time totals.
 */
void dumpStats(const System &sys, std::ostream &os);
void dumpStats(const System &sys, const CounterSnapshot &since,
               std::ostream &os);

} // namespace coscale

#endif // COSCALE_SIM_STATS_DUMP_HH
