#include "sim/runner.hh"

#include <algorithm>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "check/audit.hh"
#include "check/contract.hh"
#include "common/json.hh"
#include "fault/fault_injector.hh"

namespace coscale {

namespace {

/**
 * Accumulate the energy of the window since @p since, clipped at the
 * workload's completion tick if it fell inside the window. The energy
 * auditor, when attached, shadows the same integral.
 */
void
accumulateEnergy(const System &sys, const CounterSnapshot &since,
                 RunResult &result, PowerBreakdown *avg_out = nullptr,
                 EnergyAuditor *ea = nullptr)
{
    Tick end = sys.now();
    if (end <= since.tick)
        return;
    PowerBreakdown pb = sys.windowPower(since);
    if (avg_out)
        *avg_out = pb;

    Tick effective_end = end;
    if (sys.allAppsDone())
        effective_end = std::min(end, sys.lastCompletionTick());
    if (effective_end <= since.tick)
        return;
    double secs = ticksToSeconds(effective_end - since.tick);
    result.cpuEnergyJ += pb.cpuW * secs;
    result.memEnergyJ += pb.memW * secs;
    result.otherEnergyJ += pb.otherW * secs;
    if (ea) {
        ea->checkConservation(pb.totalW(), pb.cpuW, pb.memW, pb.otherW);
        ea->onWindowEnergy(pb.cpuW, pb.memW, pb.otherW, secs);
    }
}

/**
 * Per-channel DRAM telemetry for one epoch window: counter deltas
 * reduced to the rates/fractions Fig. 7-style timelines need.
 */
void
traceDramWindow(const System &sys, const SystemConfig &cfg,
                const CounterSnapshot &since,
                const CounterSnapshot &end, TraceSink *sink,
                MetricsRegistry *metrics)
{
    Tick elapsed = end.tick - since.tick;
    if (elapsed == 0)
        return;
    int ranks = cfg.geom.ranksPerChannel();
    for (size_t c = 0; c < end.memChannels.size(); ++c) {
        ChannelCounters d = end.memChannels[c] - since.memChannels[c];
        double row_total =
            static_cast<double>(d.rowHits + d.rowMisses);
        double avg_q =
            d.queueSamples
                ? static_cast<double>(d.queueLenSum)
                      / static_cast<double>(d.queueSamples)
                : 0.0;
        double bus_frac = static_cast<double>(d.busBusyTicks)
                          / static_cast<double>(elapsed);
        double rank_frac =
            static_cast<double>(d.rankActiveTicks)
            / (static_cast<double>(elapsed) * ranks);
        if (metrics) {
            metrics->histogram("dram.queue_len", 0.0, 32.0, 32)
                .sample(avg_q);
            if (row_total > 0.0) {
                metrics->accum("dram.row_hit_rate")
                    .sample(static_cast<double>(d.rowHits) / row_total);
            }
            metrics->accum("dram.rank_active_frac").sample(rank_frac);
            metrics->counter("dram.refreshes").inc(d.refreshes);
        }
        if (sink) {
            sink->write(
                TraceEvent(end.tick, "dram",
                           "ch" + std::to_string(c))
                    .f("reads", d.readReqs)
                    .f("writes", d.writeReqs)
                    .f("prefetches", d.prefetchReqs)
                    .f("row_hits", d.rowHits)
                    .f("row_misses", d.rowMisses)
                    .f("avg_queue_len", avg_q)
                    .f("bus_busy_frac", bus_frac)
                    .f("rank_active_frac", rank_frac)
                    .f("refreshes", d.refreshes)
                    .f("activations", d.activations)
                    .f("precharges", d.precharges)
                    .f("freq_idx",
                       sys.memCtrl().channelFrequencyIndex(
                           static_cast<int>(c))));
        }
    }
}

/**
 * The epoch loop shared by every entry path: profile, decide,
 * transition, run the epoch out, update slack — with optional
 * per-epoch tracing and metrics (both null when observability is off;
 * the hot path then pays a handful of pointer tests).
 *
 * Fault injection (@p inj, null for clean runs) perturbs the loop at
 * its three runtime seams: the profiling snapshot the policy reads,
 * the requested-vs-granted DVFS transition, and the epoch timer. The
 * loop applies and accounts the *granted* configuration throughout —
 * EpochLog, slack observation, traces, and energy all follow what the
 * (faulty) hardware actually did, not what the policy asked for.
 *
 * Cooperative cancellation (@p cancel, null normally): the engine's
 * watchdog sets the flag and the loop aborts at the next epoch
 * boundary by throwing.
 */
RunResult
runEpochLoop(const SystemConfig &cfg, const std::string &label,
             const std::vector<AppSpec> &apps, Policy &policy,
             AuditSet *audit, bool force_audit, TraceSink *sink,
             MetricsRegistry *metrics, fault::FaultInjector *inj,
             const std::atomic<bool> *cancel)
{
    System sys(cfg, apps);
    EnergyModel em = sys.energyModel();

    // Auto-instantiate the auditors when auditing is on by default
    // (COSCALE_AUDIT build, or COSCALE_AUDIT=1 in the environment).
    std::unique_ptr<AuditSet> local_audit;
    if (!audit && (force_audit || auditingEnabled())) {
        local_audit = std::make_unique<AuditSet>(sys.numApps(),
                                                 policy.slackGamma());
        audit = local_audit.get();
    }
    EnergyAuditor *ea = audit ? &audit->energy : nullptr;
    if (audit)
        sys.attachDramAuditor(&audit->dram);

    RunResult result;
    result.mixName = label;
    result.policyName = policy.name();

    const bool tracing = sink != nullptr || metrics != nullptr;
    policy.attachObs(sink, metrics);

    int epoch_no = 0;
    while (!sys.allAppsDone()) {
        if (cancel && cancel->load(std::memory_order_relaxed)) {
            throw std::runtime_error(
                "run '" + label + "' cancelled at epoch "
                + std::to_string(epoch_no) + " (engine watchdog)");
        }
        // Context-switch rotation at scheduling-quantum boundaries
        // (before profiling, so the profile reflects the incoming
        // threads).
        if (cfg.schedQuantumEpochs > 0 && epoch_no > 0
            && epoch_no % cfg.schedQuantumEpochs == 0) {
            sys.rotateApps();
        }
        // A transition the fault layer delayed lands at this epoch
        // boundary: the profiling phase below runs under it.
        if (inj) {
            FreqConfig pend;
            if (inj->takePending(&pend)) {
                sys.applyConfig(pend);
                if (sink) {
                    sink->write(
                        TraceEvent(sys.now(), "fault",
                                   "transition_late")
                            .f("epoch",
                               static_cast<std::uint64_t>(epoch_no))
                            .f("mem_idx", pend.memIdx)
                            .f("core_idx", pend.coreIdx));
                }
            }
        }
        Tick epoch_start = sys.now();
        CounterSnapshot epoch_snap = sys.snapshot();

        // Epoch-delta anchors: traced per-epoch energy is the exact
        // difference of the run totals, so traced epochs sum to the
        // RunResult to the last bit.
        double cpu_j0 = result.cpuEnergyJ;
        double mem_j0 = result.memEnergyJ;
        double other_j0 = result.otherEnergyJ;

        // Profiling phase (runs under the previous configuration).
        sys.run(epoch_start + cfg.profileLen);
        if (sys.allAppsDone()) {
            accumulateEnergy(sys, epoch_snap, result, nullptr, ea);
            if (tracing) {
                CounterSnapshot end_snap = sys.snapshot();
                if (sink) {
                    sink->write(
                        TraceEvent(sys.now(), "epoch", "tail")
                            .f("start",
                               static_cast<std::uint64_t>(epoch_start))
                            .f("cpu_j", result.cpuEnergyJ - cpu_j0)
                            .f("mem_j", result.memEnergyJ - mem_j0)
                            .f("other_j",
                               result.otherEnergyJ - other_j0));
                }
                traceDramWindow(sys, cfg, epoch_snap, end_snap, sink,
                                metrics);
            }
            break;
        }

        const std::uint64_t fepoch =
            static_cast<std::uint64_t>(epoch_no);
        SystemProfile prof = policy.wantsOracleProfile()
                                 ? sys.oracleProfile(cfg.epochLen)
                                 : sys.makeProfile(epoch_snap);
        if (inj) {
            prof = inj->perturbProfile(prof, fepoch, sys.now(), sink,
                                       metrics);
        }
        FreqConfig prev_cfg = sys.currentConfig();
        policy.setObsTick(sys.now());
        FreqConfig decision =
            epoch_no < cfg.warmupEpochs
                ? prev_cfg
                : policy.safeDecide(prof, em, prev_cfg, cfg.epochLen);
        // A policy that does not speak the way dimension (empty
        // wayIdx) holds the installed partition rather than dropping
        // it — the knob is "held", never implicitly reset.
        if (decision.wayIdx.empty() && !prev_cfg.wayIdx.empty())
            decision.wayIdx = prev_cfg.wayIdx;
        // Requested vs granted: the fault layer may deny, delay, or
        // clamp the transition. Everything downstream — applyConfig,
        // the epoch log, slack observation, energy — follows granted.
        FreqConfig granted =
            inj ? inj->filterTransition(decision, prev_cfg, fepoch,
                                        sys.now(), sink, metrics)
                : decision;
        epoch_no += 1;

        // Account the profiling segment before frequencies change.
        accumulateEnergy(sys, epoch_snap, result, nullptr, ea);
        CounterSnapshot mid_snap = sys.snapshot();

        Tick epoch_len =
            inj ? inj->jitteredEpochLen(cfg.epochLen, cfg.profileLen,
                                        fepoch, sys.now(), sink,
                                        metrics)
                : cfg.epochLen;
        sys.applyConfig(granted);
        sys.run(epoch_start + epoch_len);

        EpochLog log;
        log.startTick = epoch_start;
        log.applied = granted;
        accumulateEnergy(sys, mid_snap, result, &log.avgPower, ea);
        result.epochs.push_back(std::move(log));

        EpochObservation obs;
        obs.epochProfile = sys.makeProfile(epoch_snap);
        obs.instrs = sys.instrsSince(epoch_snap);
        obs.epochTicks = sys.now() - epoch_start;
        obs.applied = granted;
        if (sys.numApps() > sys.numCores())
            obs.appOnCore = sys.appAssignment();
        policy.observeEpoch(obs, em);

        if (tracing) {
            CounterSnapshot end_snap = sys.snapshot();
            std::uint64_t epoch_idx = result.epochs.size() - 1;
            std::uint64_t instrs = 0;
            for (std::uint64_t v : obs.instrs)
                instrs += v;

            int core_changes = 0;
            size_t nc = std::min(granted.coreIdx.size(),
                                 prev_cfg.coreIdx.size());
            for (size_t i = 0; i < nc; ++i) {
                if (granted.coreIdx[i] != prev_cfg.coreIdx[i])
                    core_changes += 1;
            }
            bool mem_changed =
                granted.memIdx != prev_cfg.memIdx
                || granted.chanIdx != prev_cfg.chanIdx;

            const PowerBreakdown &pw = result.epochs.back().avgPower;
            if (metrics) {
                metrics->counter("run.epochs").inc();
                metrics->counter("run.core_freq_changes")
                    .inc(static_cast<std::uint64_t>(core_changes));
                if (mem_changed)
                    metrics->counter("run.mem_freq_changes").inc();
                metrics->accum("epoch.total_w").sample(pw.totalW());
                metrics->accum("epoch.cpu_w").sample(pw.cpuW);
                metrics->accum("epoch.mem_w").sample(pw.memW);
            }
            if (sink) {
                double act_secs = ticksToSeconds(obs.epochTicks);
                std::vector<double> pred_tpi;
                std::vector<double> act_tpi;
                pred_tpi.reserve(static_cast<size_t>(sys.numCores()));
                act_tpi.reserve(static_cast<size_t>(sys.numCores()));
                for (int i = 0; i < sys.numCores(); ++i) {
                    pred_tpi.push_back(em.tpi(prof, i, granted));
                    std::uint64_t n_i =
                        obs.instrs[static_cast<size_t>(i)];
                    act_tpi.push_back(
                        n_i ? act_secs / static_cast<double>(n_i)
                            : 0.0);
                }
                TraceEvent ev(sys.now(), "epoch", "epoch");
                ev.f("epoch", epoch_idx)
                    .f("start",
                       static_cast<std::uint64_t>(epoch_start))
                    .f("mem_idx", granted.memIdx)
                    .f("mem_mhz",
                       em.mem().freq(granted.memIdx) / 1e6)
                    .f("core_idx", granted.coreIdx)
                    .f("cpu_w", pw.cpuW)
                    .f("mem_w", pw.memW)
                    .f("other_w", pw.otherW)
                    .f("cpu_j", result.cpuEnergyJ - cpu_j0)
                    .f("mem_j", result.memEnergyJ - mem_j0)
                    .f("other_j", result.otherEnergyJ - other_j0)
                    .f("instrs", instrs)
                    .f("pred_tpi", pred_tpi)
                    .f("act_tpi", act_tpi);
                if (!granted.chanIdx.empty())
                    ev.f("chan_idx", granted.chanIdx);
                if (!granted.wayIdx.empty())
                    ev.f("way_idx", granted.wayIdx);
                if (const SlackTracker *ledger = policy.slackLedger()) {
                    std::vector<double> slack;
                    slack.reserve(
                        static_cast<size_t>(ledger->size()));
                    for (int a = 0; a < ledger->size(); ++a)
                        slack.push_back(ledger->slackSecs(a));
                    ev.f("slack_secs", slack);
                }
                sink->write(ev);
            }
            traceDramWindow(sys, cfg, epoch_snap, end_snap, sink,
                            metrics);
        }

        if (audit) {
            // Cross-check the decision the policy just took (Eq. 2/3
            // decomposition and SER fast path) and the Eq. 1 residual
            // of the epoch that just ran. A counter dropout poisons
            // the profile with NaN by design — the audit contract
            // assumes finite inputs, so the candidate check is
            // skipped for those epochs (the guarded policy held its
            // frequencies anyway).
            if (!inj || fault::profileFinite(prof))
                audit->energy.auditCandidate(em, prof, granted);
            audit->perf.onEpoch(obs, em);
        }
    }

    if (audit) {
        audit->energy.auditRunTotals(result.cpuEnergyJ,
                                     result.memEnergyJ,
                                     result.otherEnergyJ);
        sys.attachDramAuditor(nullptr);
    }

    result.finishTick = sys.lastCompletionTick();
    result.appCompletion = sys.appCompletionTicks();

    std::uint64_t instrs = 0;
    for (int i = 0; i < sys.numCores(); ++i)
        instrs += sys.core(i).counters().tic;
    result.totalInstrs = instrs;

    const LlcCounters &llc = sys.llc().counters();
    if (instrs > 0) {
        result.measuredMpki = 1000.0 * static_cast<double>(llc.misses)
                              / static_cast<double>(instrs);
        result.measuredWpki =
            1000.0 * static_cast<double>(llc.writebacks)
            / static_cast<double>(instrs);
    }
    result.prefetchAccuracy = sys.llc().prefetchAccuracy();

    ChannelCounters mem = sys.memCtrl().totalCounters();
    result.dramReads = mem.readReqs;
    result.dramPrefetches = mem.prefetchReqs;
    result.dramWrites = mem.writeReqs;

    policy.attachObs(nullptr, nullptr);
    if (metrics) {
        metrics->counter("run.instructions").inc(result.totalInstrs);
        metrics->gauge("run.finish_secs")
            .set(ticksToSeconds(result.finishTick));
        metrics->gauge("run.energy_j").set(result.totalEnergyJ());
        metrics->gauge("run.energy_per_instr_nj")
            .set(result.energyPerInstrNj());
    }
    if (sink) {
        sink->write(TraceEvent(sys.now(), "run", "summary")
                        .f("mix", result.mixName)
                        .f("policy", result.policyName)
                        .f("finish_secs",
                           ticksToSeconds(result.finishTick))
                        .f("cpu_j", result.cpuEnergyJ)
                        .f("mem_j", result.memEnergyJ)
                        .f("other_j", result.otherEnergyJ)
                        .f("instrs", result.totalInstrs)
                        .f("epochs",
                           static_cast<std::uint64_t>(
                               result.epochs.size())));
    }
    return result;
}

} // namespace

RunRequest
RunRequest::forMix(const SystemConfig &cfg, const WorkloadMix &mix)
{
    RunRequest req;
    req.label = mix.name;
    req.cfg = cfg;
    req.apps = expandMix(mix, cfg.numCores, cfg.instrBudget);
    return req;
}

RunRequest
RunRequest::forApps(const SystemConfig &cfg, std::string label,
                    std::vector<AppSpec> apps)
{
    RunRequest req;
    req.label = std::move(label);
    req.cfg = cfg;
    req.apps = std::move(apps);
    return req;
}

RunResult
run(const RunRequest &req)
{
    COSCALE_CHECK(req.borrowedPolicy != nullptr
                      || static_cast<bool>(req.makePolicy),
                  "RunRequest has neither a policy factory nor a "
                  "borrowed policy");
    COSCALE_CHECK(!req.apps.empty(),
                  "RunRequest '%s' has no applications",
                  req.label.c_str());

    std::unique_ptr<Policy> owned;
    Policy *policy = req.borrowedPolicy;
    if (!policy) {
        owned = req.makePolicy();
        COSCALE_CHECK(owned != nullptr,
                      "policy factory for '%s' returned null",
                      req.label.c_str());
        policy = owned.get();
    }

    // Observability: a borrowed sink wins; otherwise open a private
    // one from the spec. Private sinks are finished (Chrome footer,
    // flush) before the result returns; borrowed sinks stay open so
    // callers can pool several runs into one stream.
    std::unique_ptr<TraceSink> owned_sink;
    TraceSink *sink = req.traceSink;
    if (!sink && req.trace.enabled()) {
        owned_sink = openTraceSink(req.trace);
        sink = owned_sink.get();
    }
    std::shared_ptr<MetricsRegistry> metrics;
    if (req.wantMetrics)
        metrics = std::make_shared<MetricsRegistry>();

    // Fault injection: the injector exists only for runs that asked
    // for it; a disabled plan leaves the epoch loop untouched. The
    // injector seeds from the plan, falling back to the effective
    // config seed, so faults stay a pure function of the request.
    SystemConfig cfg = req.effectiveConfig();
    std::unique_ptr<fault::FaultInjector> inj;
    if (req.faults.enabled())
        inj = std::make_unique<fault::FaultInjector>(req.faults,
                                                     cfg.seed);

    RunResult result =
        runEpochLoop(cfg, req.label, req.apps, *policy, req.auditSet,
                     req.forceAudit, sink, metrics.get(), inj.get(),
                     req.cancelFlag);
    if (inj) {
        result.faultsEnabled = true;
        result.faults = inj->summary();
    }
    if (owned_sink)
        owned_sink->finish();
    result.metrics = std::move(metrics);
    return result;
}

Comparison
compare(const RunResult &baseline, const RunResult &run)
{
    Comparison c;
    double e_base = baseline.totalEnergyJ();
    if (e_base > 0.0)
        c.fullSystemSavings = 1.0 - run.totalEnergyJ() / e_base;
    if (baseline.cpuEnergyJ > 0.0)
        c.cpuSavings = 1.0 - run.cpuEnergyJ / baseline.cpuEnergyJ;
    if (baseline.memEnergyJ > 0.0)
        c.memSavings = 1.0 - run.memEnergyJ / baseline.memEnergyJ;

    COSCALE_CHECK(baseline.appCompletion.size()
                      == run.appCompletion.size(),
                  "mismatched app counts in comparison");
    double sum = 0.0;
    double worst = 0.0;
    size_t n = run.appCompletion.size();
    for (size_t i = 0; i < n; ++i) {
        double d = static_cast<double>(run.appCompletion[i])
                       / static_cast<double>(baseline.appCompletion[i])
                   - 1.0;
        sum += d;
        worst = std::max(worst, d);
    }
    c.avgDegradation = n ? sum / static_cast<double>(n) : 0.0;
    c.worstDegradation = worst;
    return c;
}

void
writeJsonReport(const RunResult &run, const Comparison *vs_baseline,
                std::ostream &os, int attempts)
{
    JsonWriter j(os);
    j.beginObject();
    j.field("mix", run.mixName);
    j.field("policy", run.policyName);
    if (attempts > 0)
        j.field("attempts", static_cast<std::uint64_t>(attempts));
    j.field("finish_seconds", ticksToSeconds(run.finishTick));
    j.field("total_instructions",
            static_cast<std::uint64_t>(run.totalInstrs));
    j.field("energy_j", run.totalEnergyJ());
    j.field("cpu_energy_j", run.cpuEnergyJ);
    j.field("mem_energy_j", run.memEnergyJ);
    j.field("other_energy_j", run.otherEnergyJ);
    j.field("energy_per_instr_nj", run.energyPerInstrNj());
    j.field("measured_mpki", run.measuredMpki);
    j.field("measured_wpki", run.measuredWpki);
    j.field("prefetch_accuracy", run.prefetchAccuracy);
    j.field("dram_reads", static_cast<std::uint64_t>(run.dramReads));
    j.field("dram_writes", static_cast<std::uint64_t>(run.dramWrites));

    if (run.faultsEnabled) {
        // Injected-fault summary: deterministic (pure function of the
        // request's plan + seed), so it belongs in the report.
        j.beginObject("faults");
        j.field("noisy_epochs", run.faults.noisyEpochs);
        j.field("stale_profiles", run.faults.staleProfiles);
        j.field("counter_dropouts", run.faults.counterDropouts);
        j.field("transitions_denied", run.faults.transitionsDenied);
        j.field("transitions_delayed", run.faults.transitionsDelayed);
        j.field("transitions_clamped", run.faults.transitionsClamped);
        j.field("jittered_epochs", run.faults.jitteredEpochs);
        j.endObject();
    }

    if (vs_baseline) {
        j.beginObject("vs_baseline");
        j.field("full_system_savings", vs_baseline->fullSystemSavings);
        j.field("cpu_savings", vs_baseline->cpuSavings);
        j.field("mem_savings", vs_baseline->memSavings);
        j.field("avg_degradation", vs_baseline->avgDegradation);
        j.field("worst_degradation", vs_baseline->worstDegradation);
        j.endObject();
    }

    j.beginArray("app_completion_seconds");
    for (Tick t : run.appCompletion)
        j.value(ticksToSeconds(t));
    j.endArray();

    j.beginArray("epochs");
    for (const auto &e : run.epochs) {
        j.beginObject();
        j.field("start_seconds", ticksToSeconds(e.startTick));
        j.field("mem_idx", e.applied.memIdx);
        j.beginArray("core_idx");
        for (int idx : e.applied.coreIdx)
            j.value(idx);
        j.endArray();
        if (!e.applied.chanIdx.empty()) {
            j.beginArray("chan_idx");
            for (int idx : e.applied.chanIdx)
                j.value(idx);
            j.endArray();
        }
        if (!e.applied.wayIdx.empty()) {
            j.beginArray("way_idx");
            for (int idx : e.applied.wayIdx)
                j.value(idx);
            j.endArray();
        }
        j.field("cpu_w", e.avgPower.cpuW);
        j.field("mem_w", e.avgPower.memW);
        j.field("total_w", e.avgPower.totalW());
        j.endObject();
    }
    j.endArray();
    j.endObject();
    os << "\n";
}

} // namespace coscale
