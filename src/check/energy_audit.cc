#include "check/energy_audit.hh"

#include <cmath>

#include "check/contract.hh"

namespace coscale {

namespace {

bool
closeRel(double a, double b, double rel_tol)
{
    double scale = std::max(1.0, std::max(std::fabs(a), std::fabs(b)));
    return std::fabs(a - b) <= rel_tol * scale;
}

} // namespace

void
EnergyAuditor::auditCandidate(const EnergyModel &em,
                              const SerEvaluator &ev,
                              const SystemProfile &prof,
                              const FreqConfig &cfg)
{
    int n = static_cast<int>(prof.cores.size());
    COSCALE_CHECK(static_cast<int>(cfg.coreIdx.size()) == n,
                  "candidate core count %d != profile core count %d",
                  static_cast<int>(cfg.coreIdx.size()), n);

    // Eq. 2 conservation: P = P_other + P_L2 + P_mem + sum_i P_core,
    // each term recomputed through the public single-component APIs.
    double core_w = 0.0;
    double llc_rate = 0.0;
    for (int i = 0; i < n; ++i) {
        double p = em.corePower(prof, i, cfg);
        COSCALE_CHECK(std::isfinite(p) && p >= 0.0,
                      "core %d power %f not finite/non-negative", i, p);
        core_w += p;
        double t = em.tpi(prof, i, cfg);
        COSCALE_CHECK(std::isfinite(t) && t >= 0.0,
                      "core %d TPI %g not finite/non-negative", i, t);
        if (t > 0.0) {
            llc_rate += prof.cores[static_cast<size_t>(i)]
                            .llcAccessPerInstr
                        / t;
        }
    }
    double l2_w = em.powerModel().l2Power(llc_rate);
    double mem_w = em.memPower(prof, cfg);
    double other_w = em.powerModel().otherPower();
    double total_w = em.systemPower(prof, cfg);
    COSCALE_CHECK(std::isfinite(mem_w) && mem_w >= 0.0,
                  "memory power %f not finite/non-negative", mem_w);
    checkConservation(total_w, core_w + l2_w, mem_w, other_w);

    // Fast path vs reference model (DESIGN.md: bit-compatibility).
    double fast_w = ev.systemPower(cfg);
    COSCALE_CHECK(closeRel(fast_w, total_w, relTol),
                  "SerEvaluator power %.12g drifted from EnergyModel "
                  "%.12g",
                  fast_w, total_w);
    double ref_rel = em.relativeTime(prof, cfg);
    double fast_rel = ev.relativeTime(cfg);
    COSCALE_CHECK(closeRel(fast_rel, ref_rel, relTol),
                  "SerEvaluator relative time %.12g drifted from "
                  "EnergyModel %.12g",
                  fast_rel, ref_rel);
    COSCALE_CHECK(fast_rel >= 1.0 - 1e-12,
                  "relative epoch time %.12g below 1 (faster than "
                  "all-max)",
                  fast_rel);
    double ref_ser = em.ser(prof, cfg);
    double fast_ser = ev.ser(cfg);
    COSCALE_CHECK(closeRel(fast_ser, ref_ser, relTol),
                  "SerEvaluator SER %.12g drifted from EnergyModel "
                  "%.12g",
                  fast_ser, ref_ser);
    COSCALE_CHECK(std::isfinite(fast_ser) && fast_ser > 0.0,
                  "SER %.12g not finite/positive", fast_ser);

    nCandidates += 1;
}

void
EnergyAuditor::auditCandidate(const EnergyModel &em,
                              const SystemProfile &prof,
                              const FreqConfig &cfg)
{
    SerEvaluator ev(em, prof);
    auditCandidate(em, ev, prof, cfg);
}

void
EnergyAuditor::checkConservation(double total, double cpu, double mem,
                                 double other) const
{
    COSCALE_CHECK(std::isfinite(total) && std::isfinite(cpu)
                      && std::isfinite(mem) && std::isfinite(other),
                  "non-finite energy components (%f = %f + %f + %f)",
                  total, cpu, mem, other);
    double sum = cpu + mem + other;
    double scale =
        std::max(1.0, std::max(std::fabs(total), std::fabs(sum)));
    COSCALE_CHECK(std::fabs(total - sum) <= accountTolRel * scale,
                  "energy not conserved: total %.12g != cpu %.12g + "
                  "mem %.12g + other %.12g (sum %.12g)",
                  total, cpu, mem, other, sum);
}

void
EnergyAuditor::onWindowEnergy(double cpu_w, double mem_w,
                              double other_w, double secs)
{
    COSCALE_CHECK(secs >= 0.0 && std::isfinite(secs),
                  "bad window length %f s", secs);
    COSCALE_CHECK(cpu_w >= 0.0 && mem_w >= 0.0 && other_w >= 0.0,
                  "negative window power (cpu %f, mem %f, other %f)",
                  cpu_w, mem_w, other_w);
    shadowTotalJ += (cpu_w + mem_w + other_w) * secs;
    nWindows += 1;
}

void
EnergyAuditor::auditRunTotals(double cpu_j, double mem_j,
                              double other_j) const
{
    checkConservation(shadowTotalJ, cpu_j, mem_j, other_j);
}

} // namespace coscale
