/**
 * @file
 * The performance-model residual auditor: per epoch, checks the Eq. 1
 * TPI prediction against what the simulator actually did, and keeps a
 * shadow of the Section 3 slack ledger to detect bookkeeping drift.
 *
 * Residual checks (per core, when enough instructions retired):
 *  - the core can never run *faster* than the model's physical
 *    prediction allows (measured TPI below pred/(1 + hard bound) is a
 *    timing bug in the simulator or a broken model anchor);
 *  - when the core was predicted busy for most of the epoch, it also
 *    must not run grossly slower than predicted (the model is
 *    anchored at the profiled operating point, so large residuals
 *    mean the anchor or the decomposition broke). Cores that finish
 *    their app mid-epoch are idle for the remainder and are exempt
 *    from the slow-side check.
 *
 * Slack ledger checks (per application):
 *  - the incremental ledger must equal credit-sum minus time-sum
 *    replayed from scratch (catches double updates / missed epochs);
 *  - ledger values stay finite;
 *  - the admissible-TPI bound derived from the ledger is monotone:
 *    non-negative slack can never tighten the bound below the
 *    (1 + gamma) * ref pace.
 *
 * Violations are reported through COSCALE_CHECK; large-but-legal
 * residuals are surfaced via warn() and worstResidual().
 */

#ifndef COSCALE_CHECK_PERF_AUDIT_HH
#define COSCALE_CHECK_PERF_AUDIT_HH

#include <cstdint>
#include <vector>

#include "model/energy_model.hh"
#include "policy/policy.hh"

namespace coscale {

/** Tolerances for the residual auditor. */
struct PerfAuditConfig
{
    /** Hard failure bound on |pred - measured| / measured. */
    double residualHard = 0.60;
    /** warn() threshold (model drift worth investigating). */
    double residualWarn = 0.25;
    /** Cores retiring fewer instructions per epoch are skipped. */
    std::uint64_t minInstrs = 10000;
    /**
     * Slow-side residuals only apply when predicted busy time covers
     * at least this fraction of the epoch (else the app finished
     * mid-epoch and the measured TPI is inflated by idling).
     */
    double busyFracFloor = 0.60;
    /** Relative tolerance on ledger replay. */
    double ledgerTolRel = 1e-9;
};

/** Audits Eq. 1 predictions and the slack ledger epoch by epoch. */
class PerfAuditor
{
  public:
    PerfAuditor() = default;
    PerfAuditor(int num_apps, double gamma,
                PerfAuditConfig cfg = PerfAuditConfig{})
        : cfg(cfg), gamma(gamma),
          shadowSlack(static_cast<size_t>(num_apps), 0.0),
          creditSum(static_cast<size_t>(num_apps), 0.0),
          timeSum(static_cast<size_t>(num_apps), 0.0)
    {
    }

    /** Audit one completed epoch. */
    void onEpoch(const EpochObservation &obs, const EnergyModel &em);

    /** Largest residual seen (over checked cores). */
    double worstResidual() const { return worst; }

    std::uint64_t epochsAudited() const { return nEpochs; }

    double
    shadowSlackSecs(int app) const
    {
        return shadowSlack[static_cast<size_t>(app)];
    }

  private:
    PerfAuditConfig cfg;
    double gamma = 0.10;
    std::vector<double> shadowSlack;
    std::vector<double> creditSum;
    std::vector<double> timeSum;
    double worst = 0.0;
    std::uint64_t nEpochs = 0;
};

} // namespace coscale

#endif // COSCALE_CHECK_PERF_AUDIT_HH
