#include "check/dram_audit.hh"

#include <algorithm>

#include "check/contract.hh"
#include "dram/row_policy.hh"

namespace coscale {

void
DramTimingAuditor::seedChannel(int channel, const ChannelAuditSeed &seed)
{
    COSCALE_CHECK(channel >= 0, "bad audit channel %d", channel);
    COSCALE_CHECK(seed.ranks > 0 && seed.banksPerRank > 0,
                  "audit seed without geometry (ranks=%d banks=%d)",
                  seed.ranks, seed.banksPerRank);
    size_t c = static_cast<size_t>(channel);
    if (c >= chans.size())
        chans.resize(c + 1);

    ChannelShadow &sh = chans[c];
    sh.seeded = true;
    sh.t = seed.timing;
    sh.policy = &RowPolicyModel::get(seed.rowPolicy);
    sh.banksPerRank = seed.banksPerRank;
    sh.busFreeAt = seed.busFreeAt;
    sh.haltUntil = seed.haltUntil;
    sh.lastIssueAt = seed.lastIssueAt;

    sh.ranks.assign(static_cast<size_t>(seed.ranks), RankShadow{});
    for (size_t r = 0; r < sh.ranks.size(); ++r) {
        if (r >= seed.rankSeeds.size())
            break;
        const RankAuditSeed &rs = seed.rankSeeds[r];
        RankShadow &shr = sh.ranks[r];
        shr.lastActAt = rs.lastActAt;
        shr.actCount = rs.actCount;
        std::copy(rs.actWindow, rs.actWindow + 4, shr.actWindow);
        shr.actCursor = rs.actCursor;
        shr.nextRefreshDue = rs.nextRefreshDue;
        shr.refreshUntil = rs.refreshUntil;
    }

    size_t n_banks =
        static_cast<size_t>(seed.ranks) * static_cast<size_t>(seed.banksPerRank);
    sh.banks.assign(n_banks, BankShadow{});
    for (size_t b = 0; b < n_banks; ++b) {
        if (b < seed.bankActFloor.size())
            sh.banks[b].actFloor = seed.bankActFloor[b];
        if (b < seed.bankCasFloor.size())
            sh.banks[b].casFloor = seed.bankCasFloor[b];
    }
}

DramTimingAuditor::ChannelShadow &
DramTimingAuditor::shadowFor(int channel)
{
    COSCALE_CHECK(tracksChannel(channel),
                  "DRAM command on unseeded audit channel %d", channel);
    return chans[static_cast<size_t>(channel)];
}

void
DramTimingAuditor::onCommand(const DramCmdEvent &ev)
{
    ChannelShadow &sh = shadowFor(ev.channel);
    const ResolvedTiming &t = sh.t;

    COSCALE_CHECK(ev.rank >= 0
                      && ev.rank < static_cast<int>(sh.ranks.size()),
                  "command on unknown rank %d (channel %d)", ev.rank,
                  ev.channel);
    COSCALE_CHECK(ev.bank >= 0 && ev.bank < sh.banksPerRank,
                  "command on unknown bank %d (channel %d)", ev.bank,
                  ev.channel);

    RankShadow &rank = sh.ranks[static_cast<size_t>(ev.rank)];
    BankShadow &bank = sh.banks[static_cast<size_t>(
        ev.rank * sh.banksPerRank + ev.bank)];
    Tick cas_lat = ev.isWrite ? t.tCWL : t.tCL;

    // Ordering and global halts apply to every command.
    COSCALE_CHECK(ev.issue >= sh.lastIssueAt,
                  "channel %d commit order violated: %llu after %llu",
                  ev.channel,
                  static_cast<unsigned long long>(ev.issue),
                  static_cast<unsigned long long>(sh.lastIssueAt));
    COSCALE_CHECK(ev.issue >= sh.haltUntil,
                  "channel %d command at %llu inside re-calibration "
                  "halt ending %llu",
                  ev.channel,
                  static_cast<unsigned long long>(ev.issue),
                  static_cast<unsigned long long>(sh.haltUntil));
    COSCALE_CHECK(ev.issue >= ev.arrival,
                  "channel %d command issued at %llu before its "
                  "arrival %llu",
                  ev.channel,
                  static_cast<unsigned long long>(ev.issue),
                  static_cast<unsigned long long>(ev.arrival));

    // Refresh bookkeeping mirrors the controller's lazy execution
    // rule: a refresh executes once a command's *pre-refresh* timing
    // floor reaches its due date, and that command is then pushed
    // past the executed window. A command whose floors stay below the
    // due date may commit beyond it unrefreshed — JEDEC DDR3 REF
    // postponement. The window chain (begin = max(due, previous end))
    // is identical no matter how late execution happens, and the
    // shadow's floors never exceed the controller's, so a committed
    // issue inside the shadow's executed window is a genuine bug.
    Tick floor;
    if (ev.rowHit) {
        floor = std::max({ev.arrival, bank.casFloor, sh.haltUntil});
    } else {
        Tick rrd_ready =
            rank.actCount ? rank.lastActAt + t.tRRD : 0;
        Tick faw_ready =
            rank.actCount >= 4
                ? rank.actWindow[static_cast<size_t>(rank.actCursor)]
                      + t.tFAW
                : 0;
        floor = std::max({ev.arrival, bank.actFloor, sh.haltUntil,
                          rrd_ready, faw_ready});
    }
    while (rank.nextRefreshDue <= floor) {
        Tick begin = std::max(rank.nextRefreshDue, rank.refreshUntil);
        rank.refreshUntil = begin + t.tRFC;
        rank.nextRefreshDue += t.tREFI;
        floor = std::max(floor, rank.refreshUntil);
        nRefreshes += 1;
    }
    COSCALE_CHECK(ev.issue >= rank.refreshUntil,
                  "channel %d rank %d command at %llu inside refresh "
                  "window ending %llu",
                  ev.channel, ev.rank,
                  static_cast<unsigned long long>(ev.issue),
                  static_cast<unsigned long long>(rank.refreshUntil));

    if (ev.rowHit) {
        // CAS without ACT: legal only under open-page management and
        // only once the bank's previous burst window has cleared.
        COSCALE_CHECK(sh.policy->keepsRowsOpen(),
                      "row-hit CAS under closed-page policy "
                      "(channel %d rank %d bank %d)",
                      ev.channel, ev.rank, ev.bank);
        COSCALE_CHECK(ev.issue >= bank.casFloor,
                      "channel %d rank %d bank %d CAS at %llu before "
                      "CAS floor %llu",
                      ev.channel, ev.rank, ev.bank,
                      static_cast<unsigned long long>(ev.issue),
                      static_cast<unsigned long long>(bank.casFloor));
        COSCALE_CHECK(ev.dataStart >= ev.issue + cas_lat,
                      "channel %d CAS latency violated: data at %llu, "
                      "CAS at %llu, tCL/tCWL %llu",
                      ev.channel,
                      static_cast<unsigned long long>(ev.dataStart),
                      static_cast<unsigned long long>(ev.issue),
                      static_cast<unsigned long long>(cas_lat));

        Tick cas_eff = ev.dataStart - cas_lat;
        bank.casFloor = cas_eff + t.tBURST;
        Tick pre_ready = std::max(
            bank.lastActAt + t.tRAS,
            ev.isWrite ? cas_eff + t.tCWL + t.tBURST + t.tWR
                       : cas_eff + t.tRTP);
        bank.actFloor = pre_ready + t.tRP;
        nRowHits += 1;
    } else {
        // ACT path: bank cycle, tRRD, and tFAW constraints.
        COSCALE_CHECK(ev.issue >= bank.actFloor,
                      "channel %d rank %d bank %d ACT at %llu violates "
                      "bank cycle (tRAS/tRTP/tWR/tRP) floor %llu",
                      ev.channel, ev.rank, ev.bank,
                      static_cast<unsigned long long>(ev.issue),
                      static_cast<unsigned long long>(bank.actFloor));
        if (rank.actCount >= 1) {
            COSCALE_CHECK(
                ev.issue >= rank.lastActAt + t.tRRD,
                "channel %d rank %d tRRD violated: ACT at %llu, "
                "previous ACT %llu, tRRD %llu",
                ev.channel, ev.rank,
                static_cast<unsigned long long>(ev.issue),
                static_cast<unsigned long long>(rank.lastActAt),
                static_cast<unsigned long long>(t.tRRD));
        }
        if (rank.actCount >= 4) {
            Tick oldest =
                rank.actWindow[static_cast<size_t>(rank.actCursor)];
            COSCALE_CHECK(
                ev.issue >= oldest + t.tFAW,
                "channel %d rank %d tFAW violated: 5th ACT at %llu, "
                "window opened %llu, tFAW %llu",
                ev.channel, ev.rank,
                static_cast<unsigned long long>(ev.issue),
                static_cast<unsigned long long>(oldest),
                static_cast<unsigned long long>(t.tFAW));
        }
        COSCALE_CHECK(ev.dataStart >= ev.issue + t.tRCD + cas_lat,
                      "channel %d tRCD+CAS violated: data at %llu, "
                      "ACT at %llu",
                      ev.channel,
                      static_cast<unsigned long long>(ev.dataStart),
                      static_cast<unsigned long long>(ev.issue));

        Tick cas_eff = ev.dataStart - cas_lat;
        bank.actFloor =
            std::max(ev.issue + t.tRAS,
                     ev.isWrite ? cas_eff + t.tCWL + t.tBURST + t.tWR
                                : cas_eff + t.tRTP)
            + t.tRP;
        bank.casFloor = ev.issue + t.tRCD;
        bank.lastActAt = ev.issue;

        rank.lastActAt = ev.issue;
        rank.actWindow[static_cast<size_t>(rank.actCursor)] = ev.issue;
        rank.actCursor = (rank.actCursor + 1) % 4;
        rank.actCount += 1;
        nActs += 1;
    }

    // Shared data bus: in-order, non-overlapping, exactly one burst.
    COSCALE_CHECK(ev.dataStart >= sh.busFreeAt,
                  "channel %d data-bus overlap: burst at %llu before "
                  "bus free %llu",
                  ev.channel,
                  static_cast<unsigned long long>(ev.dataStart),
                  static_cast<unsigned long long>(sh.busFreeAt));
    COSCALE_CHECK(ev.dataEnd == ev.dataStart + t.tBURST,
                  "channel %d burst length %llu != tBURST %llu",
                  ev.channel,
                  static_cast<unsigned long long>(ev.dataEnd
                                                  - ev.dataStart),
                  static_cast<unsigned long long>(t.tBURST));

    sh.busFreeAt = ev.dataEnd;
    sh.lastIssueAt = ev.issue;
    nAudited += 1;
}

void
DramTimingAuditor::onFrequencyChange(int channel,
                                     const ResolvedTiming &timing,
                                     Tick halt_until)
{
    ChannelShadow &sh = shadowFor(channel);
    sh.t = timing;
    sh.haltUntil = std::max(sh.haltUntil, halt_until);
    sh.busFreeAt = std::max(sh.busFreeAt, halt_until);
    for (BankShadow &bank : sh.banks) {
        bank.actFloor = std::max(bank.actFloor, halt_until);
        bank.casFloor = std::max(bank.casFloor, halt_until);
    }
    // The refresh schedule is wall-clock fixed (tREFI/tRFC are
    // nanosecond-specified), so rank shadows carry over unchanged.
}

} // namespace coscale
