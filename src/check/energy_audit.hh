/**
 * @file
 * The energy-conservation auditor: cross-checks the Section 3.3
 * power/energy pipeline at two levels.
 *
 * Model level (per candidate configuration): full-system power must
 * equal the independently recomputed sum of its components (per-core
 * + shared L2 + memory subsystem + rest-of-system, Eq. 2's P(...)),
 * and the SerEvaluator fast path must agree with the reference
 * EnergyModel on power, relative time, and SER. A future optimisation
 * of the cached tables that drifts from the reference model trips the
 * audit immediately.
 *
 * Accounting level (per epoch window): the runner reports each
 * window's average component powers; the auditor shadows the total
 * energy integral and verifies at end of run that the per-component
 * energy streams (cpu/mem/other) sum to it, i.e. no energy is created
 * or lost by the epoch accounting.
 *
 * Violations are reported through COSCALE_CHECK.
 */

#ifndef COSCALE_CHECK_ENERGY_AUDIT_HH
#define COSCALE_CHECK_ENERGY_AUDIT_HH

#include <cstdint>

#include "model/energy_model.hh"

namespace coscale {

/** Cross-checks power decomposition and energy bookkeeping. */
class EnergyAuditor
{
  public:
    EnergyAuditor() = default;
    explicit EnergyAuditor(double rel_tol) : relTol(rel_tol) {}

    /**
     * Audit one candidate configuration against @p em and the cached
     * evaluator @p ev (built from the same profile).
     */
    void auditCandidate(const EnergyModel &em, const SerEvaluator &ev,
                        const SystemProfile &prof,
                        const FreqConfig &cfg);

    /** As above, building a throwaway evaluator. */
    void auditCandidate(const EnergyModel &em,
                        const SystemProfile &prof,
                        const FreqConfig &cfg);

    /**
     * Check that a reported full-system figure equals the sum of its
     * components within tolerance (used for both W and J figures).
     */
    void checkConservation(double total, double cpu, double mem,
                           double other) const;

    /** Accumulate one epoch window's measured energy. */
    void onWindowEnergy(double cpu_w, double mem_w, double other_w,
                        double secs);

    /**
     * End-of-run audit: the per-component energy totals must sum to
     * the shadow-integrated total.
     */
    void auditRunTotals(double cpu_j, double mem_j,
                        double other_j) const;

    std::uint64_t candidatesAudited() const { return nCandidates; }
    std::uint64_t windowsAudited() const { return nWindows; }

  private:
    double relTol = 1e-9;       //!< fast path vs reference model
    double accountTolRel = 1e-6; //!< accumulated energy streams
    double shadowTotalJ = 0.0;
    std::uint64_t nCandidates = 0;
    std::uint64_t nWindows = 0;
};

} // namespace coscale

#endif // COSCALE_CHECK_ENERGY_AUDIT_HH
