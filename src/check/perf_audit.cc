#include "check/perf_audit.hh"

#include <cmath>

#include "check/contract.hh"

namespace coscale {

void
PerfAuditor::onEpoch(const EpochObservation &obs, const EnergyModel &em)
{
    const SystemProfile &prof = obs.epochProfile;
    int n = static_cast<int>(prof.cores.size());
    COSCALE_CHECK(static_cast<int>(obs.instrs.size()) == n,
                  "epoch observation instr count %d != cores %d",
                  static_cast<int>(obs.instrs.size()), n);
    COSCALE_CHECK(static_cast<int>(obs.applied.coreIdx.size()) == n,
                  "applied configuration size %d != cores %d",
                  static_cast<int>(obs.applied.coreIdx.size()), n);
    COSCALE_CHECK(obs.epochTicks > 0, "empty audited epoch");
    double epoch_secs = ticksToSeconds(obs.epochTicks);

    for (int i = 0; i < n; ++i) {
        std::uint64_t instrs = obs.instrs[static_cast<size_t>(i)];

        // --- Eq. 1 residual ---
        if (instrs >= cfg.minInstrs) {
            double pred = em.tpi(prof, i, obs.applied);
            double measured =
                epoch_secs / static_cast<double>(instrs);
            COSCALE_CHECK(std::isfinite(pred) && pred > 0.0,
                          "core %d predicted TPI %g not positive", i,
                          pred);
            double residual =
                std::fabs(pred - measured) / measured;

            // Fast side: the simulator can never beat the model's
            // physical floor by more than the hard bound.
            COSCALE_CHECK(
                measured * (1.0 + cfg.residualHard) >= pred,
                "core %d ran faster than Eq. 1 allows: measured TPI "
                "%.3e, predicted %.3e (epoch %.3e s, %llu instrs)",
                i, measured, pred, epoch_secs,
                static_cast<unsigned long long>(instrs));

            // Slow side: only when the core was predicted busy for
            // most of the epoch (idle tails are legal).
            double busy_frac =
                pred * static_cast<double>(instrs) / epoch_secs;
            if (busy_frac >= cfg.busyFracFloor) {
                COSCALE_CHECK(
                    measured <= pred * (1.0 + cfg.residualHard),
                    "core %d ran slower than Eq. 1 predicts: measured "
                    "TPI %.3e, predicted %.3e (busy frac %.2f)",
                    i, measured, pred, busy_frac);
                if (residual > worst)
                    worst = residual;
                if (residual > cfg.residualWarn) {
                    warn("perf audit: core %d Eq. 1 residual %.1f%% "
                         "(predicted %.3e s/instr, measured %.3e)",
                         i, 100.0 * residual, pred, measured);
                }
            }
        }

        // --- slack ledger shadow (Section 3) ---
        int app = appOf(obs.appOnCore, i);
        COSCALE_CHECK(app >= 0
                          && app < static_cast<int>(shadowSlack.size()),
                      "epoch observation maps core %d to unknown app "
                      "%d",
                      i, app);
        size_t sa = static_cast<size_t>(app);
        double ref = em.tpiAtMax(prof, i);
        COSCALE_CHECK(std::isfinite(ref) && ref >= 0.0,
                      "core %d all-max TPI %g not finite", i, ref);
        double credit =
            static_cast<double>(instrs) * ref * (1.0 + gamma);
        shadowSlack[sa] += credit - epoch_secs;
        creditSum[sa] += credit;
        timeSum[sa] += epoch_secs;

        COSCALE_CHECK(std::isfinite(shadowSlack[sa]),
                      "app %d slack ledger went non-finite", app);
        double replay = creditSum[sa] - timeSum[sa];
        double scale = std::max(
            1.0, std::fabs(creditSum[sa]) + std::fabs(timeSum[sa]));
        COSCALE_CHECK(
            std::fabs(shadowSlack[sa] - replay)
                <= cfg.ledgerTolRel * scale,
            "app %d slack ledger drifted: incremental %.12g vs "
            "replayed %.12g",
            app, shadowSlack[sa], replay);

        // Monotonicity of the admissible bound: accumulated headroom
        // can only loosen the (1 + gamma) * ref pace, never tighten
        // it.
        if (shadowSlack[sa] >= 0.0 && ref > 0.0
            && shadowSlack[sa] < epoch_secs) {
            double allowed = (1.0 + gamma) * ref * epoch_secs
                             / (epoch_secs - shadowSlack[sa]);
            COSCALE_CHECK(
                allowed >= (1.0 + gamma) * ref * (1.0 - 1e-12),
                "app %d admissible TPI %.3e tightened below the "
                "slack-free pace %.3e",
                app, allowed, (1.0 + gamma) * ref);
        }
    }
    nEpochs += 1;
}

} // namespace coscale
