/**
 * @file
 * The DDR3 timing-legality auditor: an independent shadow model of
 * the constraints a channel scheduler must honour, fed one event per
 * committed command by memctrl/mem_ctrl.cc.
 *
 * The auditor deliberately re-derives every floor from its own state
 * (it never reads the controller's bank/rank bookkeeping), so a bug
 * in the scheduler's timing arithmetic cannot hide itself. Checked
 * per command:
 *
 *  - bank cycle time: an ACT may not land before the previous access
 *    to the bank has finished its row cycle (tRAS tail, tRTP/tWR
 *    write recovery, tRP precharge);
 *  - open-page CAS legality: a row-hit CAS respects the bank's
 *    previous burst (casFloor);
 *  - same-rank ACT-to-ACT spacing (tRRD);
 *  - the four-activate window (tFAW) over the rank's last four ACTs;
 *  - data-bus occupancy: bursts never overlap and are exactly tBURST;
 *  - CAS latency: data cannot start earlier than issue + tRCD + tCL
 *    (tCWL for writes), or issue + tCL for row hits;
 *  - refresh windows: the tREFI schedule is replayed in shadow with
 *    the controller's lazy execution rule (a refresh runs once a
 *    command's pre-refresh timing floor reaches its due date; until
 *    then commands may be postponed past it, as JEDEC permits), and
 *    no command may land inside an executed tRFC window;
 *  - frequency re-calibration halts: no command before haltUntil, and
 *    all floors re-based across a transition (Section 4.1's 512-cycle
 *    + 28 ns penalty);
 *  - channel commit order: issue ticks are monotone per channel.
 *
 * Violations are reported through COSCALE_CHECK, so a test can catch
 * them as CheckFailure via ScopedPanicThrow.
 */

#ifndef COSCALE_CHECK_DRAM_AUDIT_HH
#define COSCALE_CHECK_DRAM_AUDIT_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "dram/ddr3_params.hh"
#include "dram/mem_backend.hh"

namespace coscale {

class RowPolicyModel;

/** One committed DRAM command, as reported by Channel::step(). */
struct DramCmdEvent
{
    int channel = 0;
    int rank = 0;
    int bank = 0;              //!< bank index within the rank
    std::uint64_t row = 0;
    bool isWrite = false;
    bool rowHit = false;       //!< open-page CAS without an ACT
    Tick arrival = 0;          //!< request arrival at the controller
    Tick issue = 0;            //!< ACT tick (or CAS tick for row hits)
    Tick dataStart = 0;        //!< first beat on the data bus
    Tick dataEnd = 0;          //!< last beat + 1
};

/** Shadow refresh/ACT-history state of one rank at attach time. */
struct RankAuditSeed
{
    Tick nextRefreshDue = 0;
    Tick refreshUntil = 0;
    Tick lastActAt = 0;
    std::uint64_t actCount = 0;
    Tick actWindow[4] = {0, 0, 0, 0};
    int actCursor = 0;
};

/**
 * Everything the auditor needs to take over mid-run without false
 * positives: current resolved timing, the floors accumulated so far,
 * and the refresh schedule. Channel::attachAuditor() builds this.
 */
struct ChannelAuditSeed
{
    ResolvedTiming timing;
    RowPolicy rowPolicy = RowPolicy::ClosedAuto;
    int ranks = 0;
    int banksPerRank = 0;
    Tick busFreeAt = 0;
    Tick haltUntil = 0;
    Tick lastIssueAt = 0;
    std::vector<RankAuditSeed> rankSeeds;     //!< [rank]
    std::vector<Tick> bankActFloor;           //!< [rank*banksPerRank+bank]
    std::vector<Tick> bankCasFloor;           //!< same indexing (open page)
};

/** Replays DDR3 timing rules against the command stream. */
class DramTimingAuditor
{
  public:
    DramTimingAuditor() = default;

    /** Install (or reset) the shadow state of @p channel. */
    void seedChannel(int channel, const ChannelAuditSeed &seed);

    /** Validate one committed command and advance the shadow. */
    void onCommand(const DramCmdEvent &ev);

    /** Re-base the shadow across a frequency re-calibration. */
    void onFrequencyChange(int channel, const ResolvedTiming &timing,
                           Tick halt_until);

    /** Commands validated so far (all channels). */
    std::uint64_t commandsAudited() const { return nAudited; }

    /** Refresh windows replayed so far (all channels). */
    std::uint64_t refreshesReplayed() const { return nRefreshes; }

    /** ACT commands validated so far (all channels). */
    std::uint64_t actsObserved() const { return nActs; }

    /** Row-hit CAS commands validated so far (all channels). */
    std::uint64_t rowHitsObserved() const { return nRowHits; }

    /** True if seedChannel() was called for @p channel. */
    bool
    tracksChannel(int channel) const
    {
        auto c = static_cast<std::size_t>(channel);
        return c < chans.size() && chans[c].seeded;
    }

  private:
    struct BankShadow
    {
        Tick actFloor = 0;   //!< earliest legal next ACT
        Tick casFloor = 0;   //!< earliest legal next row-hit CAS
        Tick lastActAt = 0;
    };

    struct RankShadow
    {
        Tick lastActAt = 0;
        std::uint64_t actCount = 0;
        Tick actWindow[4] = {0, 0, 0, 0};
        int actCursor = 0;
        Tick nextRefreshDue = 0;
        Tick refreshUntil = 0;
    };

    struct ChannelShadow
    {
        bool seeded = false;
        ResolvedTiming t;
        /** The same RowPolicyModel singleton the channel schedules
         *  with (dram/row_policy.hh), resolved from the seed's
         *  RowPolicy enum; decides row-hit legality. */
        const RowPolicyModel *policy = nullptr;
        int banksPerRank = 0;
        Tick busFreeAt = 0;
        Tick haltUntil = 0;
        Tick lastIssueAt = 0;
        std::vector<BankShadow> banks;
        std::vector<RankShadow> ranks;
    };

    ChannelShadow &shadowFor(int channel);

    std::vector<ChannelShadow> chans;
    std::uint64_t nAudited = 0;
    std::uint64_t nRefreshes = 0;
    std::uint64_t nActs = 0;
    std::uint64_t nRowHits = 0;
};

} // namespace coscale

#endif // COSCALE_CHECK_DRAM_AUDIT_HH
