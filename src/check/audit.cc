#include "check/audit.hh"

#include <cstdlib>
#include <cstring>

namespace coscale {

namespace {

bool
envRequestsAudit()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; no setenv in the process
    const char *v = std::getenv("COSCALE_AUDIT");
    if (!v)
        return false;
    return std::strcmp(v, "1") == 0 || std::strcmp(v, "on") == 0
           || std::strcmp(v, "ON") == 0 || std::strcmp(v, "true") == 0
           || std::strcmp(v, "yes") == 0;
}

} // namespace

bool
auditingEnabled()
{
#ifdef COSCALE_AUDIT_ENABLED
    constexpr bool compiled_in = true;
#else
    constexpr bool compiled_in = false;
#endif
    static const bool enabled = compiled_in || envRequestsAudit();
    return enabled;
}

} // namespace coscale
