/**
 * @file
 * The contract library: always-on and audit-only invariant checks,
 * layered on common/log.hh.
 *
 * COSCALE_CHECK(cond [, fmt, ...]) is always compiled in; a failure
 * reports the expression, an optional printf-formatted explanation,
 * and the file:line of the check, then panics (aborts, or throws
 * CheckFailure under PanicBehavior::Throw — see common/log.hh).
 *
 * COSCALE_DCHECK has the same shape but compiles to nothing unless
 * the tree is configured with -DCOSCALE_AUDIT=ON (which defines
 * COSCALE_AUDIT_ENABLED). Use it for per-event invariants on hot
 * paths (command scheduling, candidate evaluation) that would cost
 * measurable time in production sweeps; use COSCALE_CHECK everywhere
 * else.
 *
 * Both macros fully type-check their arguments in every build mode,
 * so an audit-only check can never bit-rot silently.
 */

#ifndef COSCALE_CHECK_CONTRACT_HH
#define COSCALE_CHECK_CONTRACT_HH

#include "common/log.hh"

/** Always-on invariant check with file:line + expression context. */
#define COSCALE_CHECK(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) [[unlikely]] {                                        \
            ::coscale::detail::checkFailed(                                \
                #cond, __FILE__, __LINE__                                  \
                __VA_OPT__(, ::coscale::detail::formatString(__VA_ARGS__)));\
        }                                                                  \
    } while (0)

#ifdef COSCALE_AUDIT_ENABLED

/** Audit-build invariant check; free in production builds. */
#define COSCALE_DCHECK(cond, ...) COSCALE_CHECK(cond __VA_OPT__(, ) __VA_ARGS__)

/** True when COSCALE_DCHECK is active (for tests and reporting). */
#define COSCALE_DCHECK_IS_ON() true

#else

// The `false &&` keeps the condition and arguments semantically
// checked (odr-use-free) while guaranteeing zero generated code.
#define COSCALE_DCHECK(cond, ...)                                          \
    do {                                                                   \
        if (false && (cond)) [[unlikely]] {                                \
            COSCALE_CHECK(cond __VA_OPT__(, ) __VA_ARGS__);                \
        }                                                                  \
    } while (0)

#define COSCALE_DCHECK_IS_ON() false

#endif // COSCALE_AUDIT_ENABLED

#endif // COSCALE_CHECK_CONTRACT_HH
