/**
 * @file
 * The audit bundle: one object carrying the three runtime auditors
 * (DDR3 timing legality, energy conservation, Eq. 1 residual + slack
 * ledger) that the epoch runner wires into a simulation.
 *
 * Activation: the runner instantiates a bundle automatically when
 * auditingEnabled() — i.e. the tree was configured with
 * -DCOSCALE_AUDIT=ON, or the COSCALE_AUDIT environment variable is
 * set to a truthy value ("1", "on", "true", "yes"). Tests may also
 * construct and attach an AuditSet explicitly in any build mode; the
 * auditors themselves are always compiled.
 */

#ifndef COSCALE_CHECK_AUDIT_HH
#define COSCALE_CHECK_AUDIT_HH

#include "check/dram_audit.hh"
#include "check/energy_audit.hh"
#include "check/perf_audit.hh"

namespace coscale {

/**
 * True when runtime auditing should be on by default: compiled with
 * COSCALE_AUDIT=ON, or requested via the COSCALE_AUDIT environment
 * variable. Evaluated once per process.
 */
bool auditingEnabled();

/** The three auditors a full-system run carries. */
struct AuditSet
{
    AuditSet(int num_apps, double gamma,
             PerfAuditConfig perf_cfg = PerfAuditConfig{})
        : perf(num_apps, gamma, perf_cfg)
    {
    }

    DramTimingAuditor dram;
    EnergyAuditor energy;
    PerfAuditor perf;
};

} // namespace coscale

#endif // COSCALE_CHECK_AUDIT_HH
