/**
 * @file
 * gem5-style status/error reporting: inform(), warn(), fatal(), panic().
 *
 * fatal() is for user errors (bad configuration); it exits with code 1.
 * panic() is for internal invariant violations; by default it aborts,
 * but tests may switch it to throw CheckFailure (see PanicBehavior) so
 * detected violations can be asserted on instead of killing the
 * process.
 *
 * The preferred invariant macros are COSCALE_CHECK / COSCALE_DCHECK in
 * check/contract.hh; they and the legacy coscale_assert below share
 * the detail::checkFailed reporting path (expression + file:line).
 */

#ifndef COSCALE_COMMON_LOG_HH
#define COSCALE_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "common/thread_annotations.hh"

namespace coscale {

/**
 * Thrown by panic()/failed checks when PanicBehavior::Throw is
 * active. Carries the formatted message plus the reporting site.
 */
class CheckFailure : public std::runtime_error
{
  public:
    CheckFailure(const std::string &msg, const char *file, int line)
        : std::runtime_error(msg), srcFile(file), srcLine(line)
    {
    }

    const char *file() const { return srcFile; }
    int line() const { return srcLine; }

  private:
    const char *srcFile;
    int srcLine;
};

/** What logPanic does after printing the message. */
enum class PanicBehavior
{
    Abort,  //!< std::abort() (the default; production behaviour)
    Throw,  //!< throw CheckFailure (test harnesses)
};

/** Set the global panic behaviour; returns the previous one. */
PanicBehavior setPanicBehavior(PanicBehavior b);

/** The currently active panic behaviour. */
PanicBehavior panicBehavior();

/**
 * RAII guard switching panic() to throw CheckFailure for a scope.
 * Death-free testing of invariant violations:
 *
 *   ScopedPanicThrow guard;
 *   EXPECT_THROW(auditor.onCommand(bad), CheckFailure);
 */
class ScopedPanicThrow
{
  public:
    ScopedPanicThrow() : prev(setPanicBehavior(PanicBehavior::Throw)) {}
    ~ScopedPanicThrow() { setPanicBehavior(prev); }
    ScopedPanicThrow(const ScopedPanicThrow &) = delete;
    ScopedPanicThrow &operator=(const ScopedPanicThrow &) = delete;

  private:
    PanicBehavior prev;
};

namespace detail {

[[noreturn]] void logFatal(const std::string &msg);
// Never returns normally: aborts or throws CheckFailure per the
// active PanicBehavior.
[[noreturn]] void logPanic(const std::string &msg,
                           const char *file, int line);
void logInform(const std::string &msg);
void logWarn(const std::string &msg);

/** Report a failed invariant check (expression only). */
[[noreturn]] void checkFailed(const char *expr, const char *file,
                              int line);

/** Report a failed invariant check with a formatted explanation. */
[[noreturn]] void checkFailed(const char *expr, const char *file,
                              int line, const std::string &msg);

/**
 * True the first time @p key is seen in this process. Thread-safe:
 * the seen-key set is guarded by the logger's mutex, so concurrent
 * engine workers racing on the same key elect exactly one winner.
 */
bool shouldWarnOnce(const std::string &key);

std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::logInform(detail::formatString(fmt, args...));
}

/** Print a warning to stderr. Simulation continues. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::logWarn(detail::formatString(fmt, args...));
}

/**
 * Like warn(), but each distinct @p key prints at most once per
 * process — for diagnostics that would otherwise repeat per worker
 * thread or per request in a large engine batch.
 */
template <typename... Args>
void
warnOnce(const std::string &key, const char *fmt, Args... args)
{
    if (detail::shouldWarnOnce(key))
        detail::logWarn(detail::formatString(fmt, args...));
}

/** Terminate due to a user error (bad config, bad arguments). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::logFatal(detail::formatString(fmt, args...));
}

/**
 * Terminate successfully after an informational code path (--help).
 * Lives here so every process-exit site sits in this one audited
 * file; the lint rule `raw-assert` bans std::exit anywhere else.
 */
[[noreturn]] inline void
exitCleanly()
{
    // NOLINTNEXTLINE(concurrency-mt-unsafe): only reached from single-threaded CLI parsing (--help)
    std::exit(0);
}

/** Terminate due to an internal bug (abort or CheckFailure). */
#define coscale_panic(...)                                                 \
    ::coscale::detail::logPanic(                                           \
        ::coscale::detail::formatString(__VA_ARGS__), __FILE__, __LINE__)

/**
 * Like assert, but always compiled in and reported via panic.
 * Legacy spelling of COSCALE_CHECK (check/contract.hh); both share
 * detail::checkFailed, so behaviour and formatting are identical.
 */
#define coscale_assert(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) [[unlikely]] {                                        \
            ::coscale::detail::checkFailed(                                \
                #cond, __FILE__, __LINE__                                  \
                __VA_OPT__(, ::coscale::detail::formatString(__VA_ARGS__)));\
        }                                                                  \
    } while (0)

} // namespace coscale

#endif // COSCALE_COMMON_LOG_HH
