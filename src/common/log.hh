/**
 * @file
 * gem5-style status/error reporting: inform(), warn(), fatal(), panic().
 *
 * fatal() is for user errors (bad configuration); it exits with code 1.
 * panic() is for internal invariant violations; it aborts.
 */

#ifndef COSCALE_COMMON_LOG_HH
#define COSCALE_COMMON_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <string>

namespace coscale {

namespace detail {

[[noreturn]] void logFatal(const std::string &msg);
[[noreturn]] void logPanic(const std::string &msg,
                           const char *file, int line);
void logInform(const std::string &msg);
void logWarn(const std::string &msg);

std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Print an informational message to stderr. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    detail::logInform(detail::formatString(fmt, args...));
}

/** Print a warning to stderr. Simulation continues. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    detail::logWarn(detail::formatString(fmt, args...));
}

/** Terminate due to a user error (bad config, bad arguments). */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    detail::logFatal(detail::formatString(fmt, args...));
}

/** Terminate due to an internal bug. */
#define coscale_panic(...)                                                 \
    ::coscale::detail::logPanic(                                           \
        ::coscale::detail::formatString(__VA_ARGS__), __FILE__, __LINE__)

/** Like assert, but always compiled in and reported via panic. */
#define coscale_assert(cond, ...)                                          \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::coscale::detail::logPanic(                                   \
                ::coscale::detail::formatString(                           \
                    "assertion '%s' failed: %s", #cond,                    \
                    ::coscale::detail::formatString(__VA_ARGS__).c_str()), \
                __FILE__, __LINE__);                                       \
        }                                                                  \
    } while (0)

} // namespace coscale

#endif // COSCALE_COMMON_LOG_HH
