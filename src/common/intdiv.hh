/**
 * @file
 * Exact modulo by an invariant divisor without the hardware divide.
 *
 * The synthetic trace generator reduces one raw RNG draw modulo the
 * phase's hot-set size for every reuse access — millions of 64-bit
 * divisions by a value that only changes at phase boundaries. A
 * Granlund–Montgomery style reciprocal turns each reduction into a
 * multiply-high plus a bounded correction; the correction loop makes
 * the result exactly x % d by construction (never an approximation),
 * so substituting it for the divide is bit-identical.
 */

#ifndef COSCALE_COMMON_INTDIV_HH
#define COSCALE_COMMON_INTDIV_HH

#include <cstdint>

namespace coscale {

// __extension__ keeps -Wpedantic quiet about the GCC/Clang 128-bit
// integer (needed for the 64x64 -> high-64 multiply).
__extension__ typedef unsigned __int128 Uint128;

/**
 * Memoized exact x % d for a slowly-changing divisor d >= 1.
 * Trivially copyable (the Offline oracle deep-copies its owners).
 */
struct InvariantMod
{
    std::uint64_t d = 0; //!< bound divisor (0 = unbound; d=0 never
                         //!< matches a rebind check since d >= 1)
    std::uint64_t m = 0; //!< floor(2^(63+l) / d)
    int s = 0;           //!< l - 1

    /** Bind the divisor and precompute its reciprocal. */
    void
    rebind(std::uint64_t div)
    {
        d = div;
        if (div <= 1) {
            m = 0;
            s = 0;
            return;
        }
        // l = ceil(log2(d)), so 2^(l-1) < d <= 2^l and the scaled
        // reciprocal floor(2^(63+l) / d) fits in 64 bits.
        int l = 64 - __builtin_clzll(div - 1);
        s = l - 1;
        m = static_cast<std::uint64_t>(
            (static_cast<Uint128>(1) << (63 + l)) / div);
    }

    /** Exact x % d for the bound divisor. */
    std::uint64_t
    operator()(std::uint64_t x) const
    {
        if (d <= 1)
            return 0;
        // q_hat = floor(x * m / 2^(63+l)) is within 2 of x / d (the
        // reciprocal truncation and the final floor each lose < 1),
        // and never above it; the loop closes the gap exactly.
        std::uint64_t q =
            static_cast<std::uint64_t>(
                (static_cast<Uint128>(x) * m) >> 64)
            >> s;
        std::uint64_t r = x - q * d;
        while (r >= d)
            r -= d;
        return r;
    }
};

} // namespace coscale

#endif // COSCALE_COMMON_INTDIV_HH
