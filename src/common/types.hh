/**
 * @file
 * Fundamental simulation types: ticks (picoseconds), frequencies, and
 * unit-conversion helpers shared by every module.
 */

#ifndef COSCALE_COMMON_TYPES_HH
#define COSCALE_COMMON_TYPES_HH

#include <cstdint>

namespace coscale {

/** Simulation time unit: one tick equals one picosecond. */
using Tick = std::uint64_t;

/** A (possibly negative) span of simulation time, in picoseconds. */
using TickDelta = std::int64_t;

/** Sentinel meaning "no event scheduled". */
constexpr Tick maxTick = ~Tick(0);

/** Ticks per common SI time units. */
constexpr Tick tickPerPs = 1;
constexpr Tick tickPerNs = 1000;
constexpr Tick tickPerUs = 1000 * 1000;
constexpr Tick tickPerMs = Tick(1000) * 1000 * 1000;
constexpr Tick tickPerSec = Tick(1000) * 1000 * 1000 * 1000;

/** Frequency in hertz. Stored as double: the ladders are small. */
using Freq = double;

constexpr Freq kHz = 1e3;
constexpr Freq MHz = 1e6;
constexpr Freq GHz = 1e9;

/** Clock period of @p f in ticks (rounded to the nearest picosecond). */
constexpr Tick
periodTicks(Freq f)
{
    return static_cast<Tick>(static_cast<double>(tickPerSec) / f + 0.5);
}

/** Convert @p cycles at frequency @p f to ticks. */
constexpr Tick
cyclesToTicks(double cycles, Freq f)
{
    return static_cast<Tick>(
        cycles * static_cast<double>(tickPerSec) / f + 0.5);
}

/** Convert a tick count to (double) seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerSec);
}

/** Convert (double) seconds to ticks. */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(tickPerSec) + 0.5);
}

/** Convert nanoseconds (double) to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickPerNs) + 0.5);
}

/** Convert ticks to nanoseconds (double). */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerNs);
}

/** Identifier types. */
using CoreId = int;
using ChannelId = int;
using AppId = int;

/** A 64-byte cache-block address (block index, not byte address). */
using BlockAddr = std::uint64_t;

/** Cache block size in bytes; fixed at 64 per Table 2. */
constexpr unsigned blockBytes = 64;

} // namespace coscale

#endif // COSCALE_COMMON_TYPES_HH
