/**
 * @file
 * Minimal CSV writer used by the benchmark harnesses to emit the rows
 * and series of each paper table/figure.
 */

#ifndef COSCALE_COMMON_CSV_HH
#define COSCALE_COMMON_CSV_HH

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace coscale {

/** Streams rows of comma-separated values to a file or stdout. */
class CsvWriter
{
  public:
    /** Write to @p path; an empty path writes to stdout. */
    explicit CsvWriter(const std::string &path = "");
    ~CsvWriter();

    CsvWriter(const CsvWriter &) = delete;
    CsvWriter &operator=(const CsvWriter &) = delete;

    /** Emit a header row. */
    void header(const std::vector<std::string> &columns);

    /** Begin a new row. */
    CsvWriter &row();

    /** Append one cell to the current row. */
    CsvWriter &cell(const std::string &value);
    CsvWriter &cell(const char *value);
    CsvWriter &cell(double value);
    CsvWriter &cell(long long value);
    CsvWriter &cell(unsigned long long value);
    CsvWriter &cell(int value);

    /** Flush the current row, if any. */
    void endRow();

  private:
    void writeLine(const std::string &line);

    std::ofstream file;
    bool toStdout;
    bool rowOpen = false;
    std::ostringstream current;
};

} // namespace coscale

#endif // COSCALE_COMMON_CSV_HH
