#include "common/csv.hh"

#include <cstdio>

#include "common/log.hh"

namespace coscale {

CsvWriter::CsvWriter(const std::string &path)
    : toStdout(path.empty())
{
    if (!toStdout) {
        file.open(path);
        if (!file)
            fatal("cannot open CSV output file '%s'", path.c_str());
    }
}

CsvWriter::~CsvWriter()
{
    endRow();
}

void
CsvWriter::header(const std::vector<std::string> &columns)
{
    endRow();
    std::ostringstream line;
    for (size_t i = 0; i < columns.size(); ++i) {
        if (i)
            line << ',';
        line << columns[i];
    }
    writeLine(line.str());
}

CsvWriter &
CsvWriter::row()
{
    endRow();
    rowOpen = true;
    current.str("");
    current.clear();
    return *this;
}

CsvWriter &
CsvWriter::cell(const std::string &value)
{
    if (current.tellp() > 0)
        current << ',';
    current << value;
    return *this;
}

CsvWriter &
CsvWriter::cell(const char *value)
{
    return cell(std::string(value));
}

CsvWriter &
CsvWriter::cell(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return cell(std::string(buf));
}

CsvWriter &
CsvWriter::cell(long long value)
{
    return cell(std::to_string(value));
}

CsvWriter &
CsvWriter::cell(unsigned long long value)
{
    return cell(std::to_string(value));
}

CsvWriter &
CsvWriter::cell(int value)
{
    return cell(std::to_string(value));
}

void
CsvWriter::endRow()
{
    if (!rowOpen)
        return;
    writeLine(current.str());
    rowOpen = false;
}

void
CsvWriter::writeLine(const std::string &line)
{
    if (toStdout)
        std::fprintf(stdout, "%s\n", line.c_str());
    else
        file << line << '\n';
}

} // namespace coscale
