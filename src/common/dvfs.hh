/**
 * @file
 * DVFS domain descriptions: discrete frequency ladders and the
 * voltage/frequency relationship used by the power models.
 *
 * Per the paper (Section 4.1):
 *  - cores: 10 equally spaced frequencies in 2.2-4.0 GHz, voltage
 *    0.65-1.2 V scaling linearly with frequency (Sandy Bridge-like);
 *  - memory bus: 800 MHz down to 200 MHz in 66 MHz steps (10 points);
 *    the memory controller always runs at twice the bus frequency and
 *    shares the cores' voltage range; DRAM devices are
 *    frequency-scaled only (fixed 1.5 V).
 */

#ifndef COSCALE_COMMON_DVFS_HH
#define COSCALE_COMMON_DVFS_HH

#include <cstddef>
#include <vector>

#include "common/types.hh"

namespace coscale {

/**
 * A discrete ladder of operating frequencies with a linear
 * voltage-vs-frequency map.
 *
 * Index 0 is the highest frequency ("origin" of CoScale's search);
 * larger indices are lower frequencies.
 */
class FreqLadder
{
  public:
    FreqLadder() = default;

    /**
     * Build a ladder of @p steps equally spaced frequencies from
     * @p fMax down to @p fMin, with voltage mapped linearly from
     * @p vMax at fMax to @p vMin at fMin.
     */
    static FreqLadder linear(Freq f_max, Freq f_min, int steps,
                             double v_max, double v_min);

    /**
     * Build a ladder from an explicit high-to-low frequency list with
     * a linear voltage map over [fMin, fMax].
     */
    static FreqLadder explicitFreqs(std::vector<Freq> freqs_high_to_low,
                                    double v_max, double v_min);

    /** Number of available frequency steps. */
    int size() const { return static_cast<int>(freqs.size()); }

    /** Frequency at ladder index @p idx (0 = fastest). */
    Freq
    freq(int idx) const
    {
        return freqs[static_cast<std::size_t>(idx)];
    }

    /** Supply voltage at ladder index @p idx. */
    double
    voltage(int idx) const
    {
        return volts[static_cast<std::size_t>(idx)];
    }

    /** Voltage for an arbitrary frequency via the linear map. */
    double voltageAt(Freq f) const;

    /** Highest frequency (index 0). */
    Freq fMax() const { return freqs.front(); }

    /** Lowest frequency (last index). */
    Freq fMin() const { return freqs.back(); }

    /** Highest voltage. */
    double vMax() const { return vHigh; }

    /** Lowest voltage. */
    double vMin() const { return vLow; }

    /** True if @p idx is not the last (lowest) step. */
    bool canScaleDown(int idx) const { return idx + 1 < size(); }

    /** True if @p idx is not the first (highest) step. */
    bool canScaleUp(int idx) const { return idx > 0; }

  private:
    std::vector<Freq> freqs;   //!< high-to-low frequencies
    std::vector<double> volts; //!< matching supply voltages
    double vHigh = 0.0;
    double vLow = 0.0;
};

/** The paper's default core ladder: 2.2-4.0 GHz, 10 steps, 0.65-1.2 V. */
FreqLadder defaultCoreLadder(int steps = 10);

/** As defaultCoreLadder but with the half-width 0.95-1.2 V range. */
FreqLadder halfVoltageCoreLadder(int steps = 10);

/**
 * The paper's default memory-bus ladder: 800 down to 200 MHz in 66 MHz
 * steps (10 points). @p steps other than 10 picks equally spaced
 * points over the same range (Fig. 15 sensitivity).
 */
FreqLadder defaultMemLadder(int steps = 10);

} // namespace coscale

#endif // COSCALE_COMMON_DVFS_HH
