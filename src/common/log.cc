#include "common/log.hh"

#include <atomic>
#include <cstdarg>
#include <set>
#include <vector>

#include "common/thread_annotations.hh"

namespace coscale {

namespace {

// Not simulator state: a process-wide reporting mode, mutated only by
// test harnesses via setPanicBehavior/ScopedPanicThrow. Atomic so a
// guard on the main thread never races experiment-engine workers that
// hit a panic path.
std::atomic<PanicBehavior> panicMode{PanicBehavior::Abort};

// warnOnce bookkeeping. Process-wide reporting state, never part of a
// simulation's observable output, so it does not threaten run purity.
Mutex warnOnceMu;
std::set<std::string> &
warnedKeys() COSCALE_REQUIRES(warnOnceMu)
{
    static std::set<std::string> keys;
    return keys;
}

} // namespace

PanicBehavior
setPanicBehavior(PanicBehavior b)
{
    return panicMode.exchange(b, std::memory_order_acq_rel);
}

PanicBehavior
panicBehavior()
{
    return panicMode.load(std::memory_order_acquire);
}

namespace detail {

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int len = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (len < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(len));
}

void
logInform(const std::string &msg)
{
    std::fprintf(stderr, "info: %s\n", msg.c_str());
}

void
logWarn(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
logFatal(const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    // NOLINTNEXTLINE(concurrency-mt-unsafe): fatal() is terminal by contract; no cleanup races with a process that is exiting
    std::exit(1);
}

void
logPanic(const std::string &msg, const char *file, int line)
{
    if (panicBehavior() == PanicBehavior::Throw)
        throw CheckFailure(msg, file, line);
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

void
checkFailed(const char *expr, const char *file, int line)
{
    logPanic(formatString("check '%s' failed", expr), file, line);
}

void
checkFailed(const char *expr, const char *file, int line,
            const std::string &msg)
{
    logPanic(formatString("check '%s' failed: %s", expr, msg.c_str()),
             file, line);
}

bool
shouldWarnOnce(const std::string &key)
{
    MutexLock lock(warnOnceMu);
    return warnedKeys().insert(key).second;
}

} // namespace detail
} // namespace coscale
