#include "common/dvfs.hh"

#include "check/contract.hh"
#include "common/log.hh"

namespace coscale {

FreqLadder
FreqLadder::linear(Freq f_max, Freq f_min, int steps,
                   double v_max, double v_min)
{
    COSCALE_CHECK(steps >= 2, "a ladder needs at least two steps");
    COSCALE_CHECK(f_max > f_min, "fMax must exceed fMin");
    std::vector<Freq> fs;
    fs.reserve(static_cast<size_t>(steps));
    for (int i = 0; i < steps; ++i) {
        double frac = static_cast<double>(i) / (steps - 1);
        fs.push_back(f_max - frac * (f_max - f_min));
    }
    return explicitFreqs(std::move(fs), v_max, v_min);
}

FreqLadder
FreqLadder::explicitFreqs(std::vector<Freq> freqs_high_to_low,
                          double v_max, double v_min)
{
    COSCALE_CHECK(freqs_high_to_low.size() >= 2, "need >= 2 frequencies");
    for (size_t i = 1; i < freqs_high_to_low.size(); ++i) {
        COSCALE_CHECK(freqs_high_to_low[i] < freqs_high_to_low[i - 1],
                      "ladder must be strictly descending");
    }
    FreqLadder ladder;
    ladder.freqs = std::move(freqs_high_to_low);
    ladder.vHigh = v_max;
    ladder.vLow = v_min;
    ladder.volts.reserve(ladder.freqs.size());
    for (Freq f : ladder.freqs)
        ladder.volts.push_back(ladder.voltageAt(f));
    return ladder;
}

double
FreqLadder::voltageAt(Freq f) const
{
    double f_max = freqs.front();
    double f_min = freqs.back();
    double frac = (f - f_min) / (f_max - f_min);
    if (frac < 0.0)
        frac = 0.0;
    if (frac > 1.0)
        frac = 1.0;
    return vLow + frac * (vHigh - vLow);
}

FreqLadder
defaultCoreLadder(int steps)
{
    return FreqLadder::linear(4.0 * GHz, 2.2 * GHz, steps, 1.20, 0.65);
}

FreqLadder
halfVoltageCoreLadder(int steps)
{
    return FreqLadder::linear(4.0 * GHz, 2.2 * GHz, steps, 1.20, 0.95);
}

FreqLadder
defaultMemLadder(int steps)
{
    if (steps == 10) {
        // 800 MHz down in 66 MHz steps, matching Section 4.1.
        std::vector<Freq> fs = {
            800 * MHz, 734 * MHz, 668 * MHz, 602 * MHz, 536 * MHz,
            470 * MHz, 404 * MHz, 338 * MHz, 272 * MHz, 200 * MHz,
        };
        // MC voltage range matches the cores (Section 4.1).
        return FreqLadder::explicitFreqs(std::move(fs), 1.20, 0.65);
    }
    return FreqLadder::linear(800 * MHz, 200 * MHz, steps, 1.20, 0.65);
}

} // namespace coscale
