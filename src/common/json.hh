/**
 * @file
 * A minimal streaming JSON writer (objects, arrays, scalars, correct
 * string escaping) for machine-readable experiment reports. Not a
 * parser; output only.
 */

#ifndef COSCALE_COMMON_JSON_HH
#define COSCALE_COMMON_JSON_HH

#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

namespace coscale {

/** Streams syntactically valid JSON to an std::ostream. */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os(os) {}

    /** Begin an object; in an object context, with a key. */
    void
    beginObject()
    {
        comma();
        os << '{';
        push(true);
    }

    void
    beginObject(const std::string &key)
    {
        writeKey(key);
        os << '{';
        push(true);
    }

    void
    endObject()
    {
        os << '}';
        pop();
    }

    void
    beginArray(const std::string &key)
    {
        writeKey(key);
        os << '[';
        push(false);
    }

    void
    beginArray()
    {
        comma();
        os << '[';
        push(false);
    }

    void
    endArray()
    {
        os << ']';
        pop();
    }

    void
    field(const std::string &key, const std::string &value)
    {
        writeKey(key);
        writeString(value);
    }

    void
    field(const std::string &key, const char *value)
    {
        field(key, std::string(value));
    }

    void
    field(const std::string &key, double value)
    {
        writeKey(key);
        writeNumber(value);
    }

    void
    field(const std::string &key, std::uint64_t value)
    {
        writeKey(key);
        os << value;
    }

    void
    field(const std::string &key, int value)
    {
        writeKey(key);
        os << value;
    }

    void
    field(const std::string &key, bool value)
    {
        writeKey(key);
        os << (value ? "true" : "false");
    }

    /** Array elements. */
    void
    value(double v)
    {
        comma();
        writeNumber(v);
    }

    void
    value(int v)
    {
        comma();
        os << v;
    }

    void
    value(std::uint64_t v)
    {
        comma();
        os << v;
    }

    void
    value(const std::string &v)
    {
        comma();
        writeString(v);
    }

  private:
    struct Frame
    {
        bool isObject = false;
        bool first = true;
    };

    void
    push(bool is_object)
    {
        stack.push_back(Frame{is_object, true});
    }

    void
    pop()
    {
        stack.pop_back();
        if (!stack.empty())
            stack.back().first = false;
    }

    void
    comma()
    {
        if (stack.empty())
            return;
        if (!stack.back().first)
            os << ',';
        stack.back().first = false;
    }

    void
    writeKey(const std::string &key)
    {
        comma();
        writeString(key);
        os << ':';
    }

    void
    writeString(const std::string &s)
    {
        os << '"';
        for (char c : s) {
            switch (c) {
              case '"':
                os << "\\\"";
                break;
              case '\\':
                os << "\\\\";
                break;
              case '\n':
                os << "\\n";
                break;
              case '\t':
                os << "\\t";
                break;
              case '\r':
                os << "\\r";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
            }
        }
        os << '"';
    }

    void
    writeNumber(double v)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.9g", v);
        os << buf;
    }

    std::ostream &os;
    std::vector<Frame> stack;
};

} // namespace coscale

#endif // COSCALE_COMMON_JSON_HH
