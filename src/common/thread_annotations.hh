/**
 * @file
 * Clang Thread Safety Analysis annotations plus the annotated locking
 * primitives every shared-state component in src/ must use.
 *
 * The COSCALE_* macros expand to clang's capability attributes when
 * the compiler supports them (-Wthread-safety turns violations into
 * diagnostics; the COSCALE_THREAD_SAFETY CMake option promotes them
 * to errors) and to nothing under gcc, so the tree builds identically
 * with either toolchain.
 *
 * Conventions (enforced by tools/lint/coscale_lint.py rule
 * `raw-mutex`):
 *  - hold state behind coscale::Mutex, never a raw std::mutex;
 *  - annotate every member the mutex protects with
 *    COSCALE_GUARDED_BY(mu) (pointees with COSCALE_PT_GUARDED_BY);
 *  - take the lock with the RAII MutexLock, never lock()/unlock()
 *    pairs, so scopes and capabilities stay in sync;
 *  - functions that expect the caller to hold a lock say so with
 *    COSCALE_REQUIRES(mu);
 *  - condition waits go through coscale::CondVar, whose wait methods
 *    require the capability they temporarily release.
 *
 * Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
 */

#ifndef COSCALE_COMMON_THREAD_ANNOTATIONS_HH
#define COSCALE_COMMON_THREAD_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define COSCALE_THREAD_ATTR(x) __attribute__((x))
#else
#define COSCALE_THREAD_ATTR(x) // no-op outside clang
#endif

/** Marks a class as a lockable capability ("mutex"). */
#define COSCALE_CAPABILITY(x) COSCALE_THREAD_ATTR(capability(x))

/** Marks an RAII class that acquires in its ctor, releases in dtor. */
#define COSCALE_SCOPED_CAPABILITY COSCALE_THREAD_ATTR(scoped_lockable)

/** Data member readable/writable only while holding @p x. */
#define COSCALE_GUARDED_BY(x) COSCALE_THREAD_ATTR(guarded_by(x))

/** Pointer member whose pointee is protected by @p x. */
#define COSCALE_PT_GUARDED_BY(x) COSCALE_THREAD_ATTR(pt_guarded_by(x))

/** Function that must be called with the capability held. */
#define COSCALE_REQUIRES(...) \
    COSCALE_THREAD_ATTR(requires_capability(__VA_ARGS__))

/** Function that must be called with the capability NOT held. */
#define COSCALE_EXCLUDES(...) \
    COSCALE_THREAD_ATTR(locks_excluded(__VA_ARGS__))

/** Function that acquires the capability and holds it on return. */
#define COSCALE_ACQUIRE(...) \
    COSCALE_THREAD_ATTR(acquire_capability(__VA_ARGS__))

/** Function that releases a held capability. */
#define COSCALE_RELEASE(...) \
    COSCALE_THREAD_ATTR(release_capability(__VA_ARGS__))

/** Function that acquires the capability iff it returns @p ret. */
#define COSCALE_TRY_ACQUIRE(...) \
    COSCALE_THREAD_ATTR(try_acquire_capability(__VA_ARGS__))

/** Lock-ordering declaration: this capability after those. */
#define COSCALE_ACQUIRED_AFTER(...) \
    COSCALE_THREAD_ATTR(acquired_after(__VA_ARGS__))

/** Lock-ordering declaration: this capability before those. */
#define COSCALE_ACQUIRED_BEFORE(...) \
    COSCALE_THREAD_ATTR(acquired_before(__VA_ARGS__))

/** Function returning a reference to the capability guarding data. */
#define COSCALE_RETURN_CAPABILITY(x) \
    COSCALE_THREAD_ATTR(lock_returned(x))

/** Escape hatch; every use needs a justifying comment. */
#define COSCALE_NO_THREAD_SAFETY_ANALYSIS \
    COSCALE_THREAD_ATTR(no_thread_safety_analysis)

namespace coscale {

/**
 * The annotated mutex. Same semantics and cost as the std::mutex it
 * wraps; exists so clang can associate COSCALE_GUARDED_BY members
 * with acquisitions. Satisfies BasicLockable/Lockable, so it also
 * works with std::condition_variable_any (see CondVar).
 */
class COSCALE_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() COSCALE_ACQUIRE() { mu.lock(); }
    void unlock() COSCALE_RELEASE() { mu.unlock(); }
    bool try_lock() COSCALE_TRY_ACQUIRE(true) { return mu.try_lock(); }

  private:
    friend class CondVar;
    std::mutex mu;
};

/**
 * RAII scope lock over Mutex — the only sanctioned way to take one
 * (lint rule `raw-mutex` bans std::lock_guard/std::unique_lock in
 * src/). Not movable: a lock that changes owner mid-scope defeats
 * the static analysis.
 */
class COSCALE_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) COSCALE_ACQUIRE(m) : mu(m)
    {
        mu.lock();
    }
    ~MutexLock() COSCALE_RELEASE() { mu.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu;
};

/**
 * Condition variable bound to the annotated Mutex. Wait methods take
 * the Mutex itself (not the MutexLock) and REQUIRE its capability:
 * from the analysis' point of view the capability is held across the
 * wait, which matches the caller-visible contract — the guarded
 * predicate may only be read before and after, never during.
 */
class CondVar
{
  public:
    void notify_one() { cv.notify_one(); }
    void notify_all() { cv.notify_all(); }

    void
    wait(Mutex &m) COSCALE_REQUIRES(m)
    {
        cv.wait(m.mu); // NOLINT(bugprone-spuriously-wake-up-functions)
    }

    template <typename Clock, typename Duration>
    std::cv_status
    waitUntil(Mutex &m,
              const std::chrono::time_point<Clock, Duration> &deadline)
        COSCALE_REQUIRES(m)
    {
        return cv.wait_until(m.mu, deadline);
    }

  private:
    std::condition_variable_any cv;
};

} // namespace coscale

#endif // COSCALE_COMMON_THREAD_ANNOTATIONS_HH
