/**
 * @file
 * A small, fast, value-type pseudo-random number generator
 * (xoshiro256** seeded via splitmix64) plus the distributions the
 * synthetic trace generator needs.
 *
 * Being a plain value type (trivially copyable state) is essential:
 * the Offline policy deep-copies the whole simulator, including every
 * trace generator, to obtain oracle profiles.
 */

#ifndef COSCALE_COMMON_RNG_HH
#define COSCALE_COMMON_RNG_HH

#include <cmath>
#include <cstdint>

namespace coscale {

/** xoshiro256** generator with value semantics. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto &word : s) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(s[1] * 5, 7) * 9;
        const std::uint64_t t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = rotl(s[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). @p n must be > 0. */
    std::uint64_t
    range(std::uint64_t n)
    {
        return next() % n;
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Exponentially distributed value with mean @p mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        return -mean * std::log(1.0 - u);
    }

    /**
     * Geometric number of trials until first success (>= 1) with
     * success probability @p p.
     *
     * The log(1 - p) denominator is memoized on p: callers usually
     * sample with the same p many times in a row, and reusing the
     * exact same double divisor keeps results bit-identical to the
     * uncached formula.
     */
    std::uint64_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        if (p <= 0.0)
            return 1;
        double u = uniform();
        if (u <= 0.0)
            u = 0x1.0p-53;
        if (p != geoP) {
            geoP = p;
            geoLogDenom = std::log(1.0 - p);
        }
        double v = std::log(1.0 - u) / geoLogDenom;
        std::uint64_t n = static_cast<std::uint64_t>(v) + 1;
        return n == 0 ? 1 : n;
    }

    /** Normal sample via Box-Muller (one value, no caching). */
    double
    normal(double mean, double stddev)
    {
        double u1 = uniform();
        double u2 = uniform();
        if (u1 <= 0.0)
            u1 = 0x1.0p-53;
        double r = std::sqrt(-2.0 * std::log(u1));
        return mean + stddev * r * std::cos(6.283185307179586 * u2);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t s[4];

    // geometric() denominator memo; p is always in (0, 1) so the
    // sentinel never matches. Plain doubles keep the type trivially
    // copyable (the Offline oracle deep-copies every generator).
    double geoP = -1.0;
    double geoLogDenom = 1.0;
};

} // namespace coscale

#endif // COSCALE_COMMON_RNG_HH
