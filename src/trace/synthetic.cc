#include "trace/synthetic.hh"

#include <algorithm>

#include "check/contract.hh"
#include "common/log.hh"

namespace coscale {

namespace {

// Streaming region size per application: 2^24 blocks (1 GB), far
// larger than the LLC so streamed blocks never accidentally hit.
constexpr std::uint64_t streamRegionBlocks = std::uint64_t(1) << 24;

} // namespace

SyntheticTraceSource::SyntheticTraceSource(AppSpec spec, int addr_space,
                                           std::uint64_t seed)
    : app(std::move(spec)),
      base(static_cast<BlockAddr>(addr_space) << 34),
      rng(seed)
{
    COSCALE_CHECK(!app.phases.empty(), "app '%s' has no phases",
                  app.name.c_str());
    phaseInstrsLeft = app.phases[0].instructions;
    streamPtr = rng.range(streamRegionBlocks);
}

const AppPhase &
SyntheticTraceSource::blendedPhase() const
{
    const AppPhase &cur = app.phases[phaseIdx];
    if (app.phases.size() < 2 || !anyPhaseCompleted)
        return cur;

    std::uint64_t ramp = cur.instructions * 15 / 100;
    std::uint64_t progressed = cur.instructions - phaseInstrsLeft;
    if (ramp == 0 || progressed >= ramp)
        return cur;

    const AppPhase &prev =
        app.phases[(phaseIdx + app.phases.size() - 1)
                   % app.phases.size()];
    double t = static_cast<double>(progressed)
               / static_cast<double>(ramp);
    auto lerp = [t](double a, double b) { return a + t * (b - a); };

    blendBuf = cur;
    blendBuf.baseCpi = lerp(prev.baseCpi, cur.baseCpi);
    blendBuf.l1Mpki = lerp(prev.l1Mpki, cur.l1Mpki);
    blendBuf.llcMpki = lerp(prev.llcMpki, cur.llcMpki);
    blendBuf.writeFrac = lerp(prev.writeFrac, cur.writeFrac);
    return blendBuf;
}

void
SyntheticTraceSource::advancePhase(std::uint64_t instrs)
{
    while (instrs >= phaseInstrsLeft) {
        instrs -= phaseInstrsLeft;
        phaseIdx = (phaseIdx + 1) % app.phases.size();
        phaseInstrsLeft = app.phases[phaseIdx].instructions;
        anyPhaseCompleted = true;
    }
    phaseInstrsLeft -= instrs;
}

void
SyntheticTraceSource::refreshRates(const AppPhase &p)
{
    if (p.l1Mpki == rateKeyL1 && p.llcMpki == rateKeyLlc)
        return;
    rateKeyL1 = p.l1Mpki;
    rateKeyLlc = p.llcMpki;
    memoGapMean = p.l1Mpki > 0.0 ? 1000.0 / p.l1Mpki : 1000.0;
    memoGapP = 1.0 / std::max(1.0, memoGapMean);
    // Miss-intent ratio: what fraction of LLC accesses should stream
    // (and therefore miss in a cache they have never touched).
    memoMissRatio =
        p.l1Mpki > 0.0 ? std::min(1.0, p.llcMpki / p.l1Mpki) : 0.0;
}

BlockAddr
SyntheticTraceSource::pickAddress(const AppPhase &p)
{
    if (rng.bernoulli(memoMissRatio)) {
        // Streaming access: advance the sequential cursor; jump to a
        // random far location when the current run ends.
        if (streamRunLeft == 0) {
            streamRunLeft = rng.geometric(1.0 / std::max(1.0, p.seqRunLen));
            streamPtr = rng.range(streamRegionBlocks);
        }
        streamRunLeft -= 1;
        BlockAddr a = streamPtr;
        streamPtr = (streamPtr + 1) % streamRegionBlocks;
        // Hot region occupies the bottom of the space; keep streams
        // clear of it.
        return base + p.hotBlocks + a;
    }

    // Reuse access within the hot working set. Same draw, same
    // reduction as rng.range(hot) — just without the divide.
    std::uint64_t hot = std::max<std::uint64_t>(1, p.hotBlocks);
    if (hot != hotMod.d)
        hotMod.rebind(hot);
    return base + hotMod(rng.next());
}

TraceRecord
SyntheticTraceSource::next()
{
    // Reference, not copy: valid through this call since the phase
    // only advances at the very end.
    const AppPhase &p = blendedPhase();
    refreshRates(p);

    TraceRecord r;
    std::uint64_t gap = rng.geometric(memoGapP);
    gap = std::min<std::uint64_t>(gap, 100'000);
    r.gapInstrs = static_cast<std::uint32_t>(gap);

    // Mild CPI jitter so profiling windows are realistic predictors,
    // not perfect ones.
    double cpi = p.baseCpi * rng.uniform(0.95, 1.05);
    r.gapCycles = static_cast<std::uint32_t>(
        std::max(1.0, cpi * static_cast<double>(gap) + 0.5));

    auto mix_count = [&](double frac) {
        double v = frac * static_cast<double>(gap);
        std::uint64_t n = static_cast<std::uint64_t>(v);
        if (rng.bernoulli(v - static_cast<double>(n)))
            n += 1;
        return static_cast<std::uint16_t>(std::min<std::uint64_t>(n, 65535));
    };
    r.aluOps = mix_count(p.fAlu);
    r.fpuOps = mix_count(p.fFpu);
    r.branchOps = mix_count(p.fBranch);
    r.memOps = mix_count(p.fMem);

    r.addr = pickAddress(p);
    r.isWrite = rng.bernoulli(p.writeFrac) ? 1 : 0;

    advancePhase(gap);
    return r;
}

std::unique_ptr<TraceSource>
SyntheticTraceSource::clone() const
{
    return std::make_unique<SyntheticTraceSource>(*this);
}

} // namespace coscale
