#include "trace/trace_file.hh"

#include <cstdio>
#include <cstring>

#include "check/contract.hh"
#include "common/log.hh"

namespace coscale {

namespace {

constexpr char traceMagic[8] = {'C', 'O', 'S', 'C', 'T', 'R', 'C', '1'};

struct PackedRecord
{
    std::uint64_t addr;
    std::uint32_t gapInstrs;
    std::uint32_t gapCycles;
    std::uint16_t aluOps;
    std::uint16_t fpuOps;
    std::uint16_t branchOps;
    std::uint16_t memOps;
    std::uint8_t isWrite;
    std::uint8_t pad[7];
};
static_assert(sizeof(PackedRecord) == 32, "packed record must be 32 B");

PackedRecord
pack(const TraceRecord &r)
{
    PackedRecord p{};
    p.addr = r.addr;
    p.gapInstrs = r.gapInstrs;
    p.gapCycles = r.gapCycles;
    p.aluOps = r.aluOps;
    p.fpuOps = r.fpuOps;
    p.branchOps = r.branchOps;
    p.memOps = r.memOps;
    p.isWrite = r.isWrite;
    return p;
}

TraceRecord
unpack(const PackedRecord &p)
{
    TraceRecord r;
    r.addr = p.addr;
    r.gapInstrs = p.gapInstrs;
    r.gapCycles = p.gapCycles;
    r.aluOps = p.aluOps;
    r.fpuOps = p.fpuOps;
    r.branchOps = p.branchOps;
    r.memOps = p.memOps;
    r.isWrite = p.isWrite;
    return r;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : filePath(path)
{
    fp = std::fopen(path.c_str(), "wb");
    if (!fp)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::uint64_t zero = 0;
    std::fwrite(traceMagic, 1, sizeof(traceMagic), fp);
    std::fwrite(&zero, sizeof(zero), 1, fp);
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::append(const TraceRecord &r)
{
    COSCALE_CHECK(fp, "append after close on '%s'", filePath.c_str());
    PackedRecord p = pack(r);
    if (std::fwrite(&p, sizeof(p), 1, fp) != 1)
        fatal("short write to trace file '%s'", filePath.c_str());
    count += 1;
}

void
TraceFileWriter::close()
{
    if (!fp)
        return;
    std::fseek(fp, sizeof(traceMagic), SEEK_SET);
    std::fwrite(&count, sizeof(count), 1, fp);
    std::fclose(fp);
    fp = nullptr;
}

std::shared_ptr<const std::vector<TraceRecord>>
loadTraceFile(const std::string &path)
{
    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp)
        fatal("cannot open trace file '%s'", path.c_str());

    char magic[8];
    std::uint64_t count = 0;
    if (std::fread(magic, 1, sizeof(magic), fp) != sizeof(magic)
        || std::memcmp(magic, traceMagic, sizeof(magic)) != 0) {
        std::fclose(fp);
        fatal("'%s' is not a CoScale trace file", path.c_str());
    }
    if (std::fread(&count, sizeof(count), 1, fp) != 1) {
        std::fclose(fp);
        fatal("'%s': truncated header", path.c_str());
    }

    auto buf = std::make_shared<std::vector<TraceRecord>>();
    buf->reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedRecord p;
        if (std::fread(&p, sizeof(p), 1, fp) != 1) {
            std::fclose(fp);
            fatal("'%s': truncated at record %llu", path.c_str(),
                  static_cast<unsigned long long>(i));
        }
        buf->push_back(unpack(p));
    }
    std::fclose(fp);
    if (buf->empty())
        fatal("'%s': empty trace", path.c_str());
    return buf;
}

} // namespace coscale
