#include "trace/trace_file.hh"

#include <cstdio>
#include <cstring>

#include "check/contract.hh"
#include "common/log.hh"

namespace coscale {

namespace {

constexpr char traceMagic[8] = {'C', 'O', 'S', 'C', 'T', 'R', 'C', '1'};

struct PackedRecord
{
    std::uint64_t addr;
    std::uint32_t gapInstrs;
    std::uint32_t gapCycles;
    std::uint16_t aluOps;
    std::uint16_t fpuOps;
    std::uint16_t branchOps;
    std::uint16_t memOps;
    std::uint8_t isWrite;
    std::uint8_t pad[7];
};
static_assert(sizeof(PackedRecord) == 32, "packed record must be 32 B");

PackedRecord
pack(const TraceRecord &r)
{
    PackedRecord p{};
    p.addr = r.addr;
    p.gapInstrs = r.gapInstrs;
    p.gapCycles = r.gapCycles;
    p.aluOps = r.aluOps;
    p.fpuOps = r.fpuOps;
    p.branchOps = r.branchOps;
    p.memOps = r.memOps;
    p.isWrite = r.isWrite;
    return p;
}

TraceRecord
unpack(const PackedRecord &p)
{
    TraceRecord r;
    r.addr = p.addr;
    r.gapInstrs = p.gapInstrs;
    r.gapCycles = p.gapCycles;
    r.aluOps = p.aluOps;
    r.fpuOps = p.fpuOps;
    r.branchOps = p.branchOps;
    r.memOps = p.memOps;
    r.isWrite = p.isWrite;
    return r;
}

} // namespace

TraceFileWriter::TraceFileWriter(const std::string &path)
    : filePath(path)
{
    fp = std::fopen(path.c_str(), "wb");
    if (!fp)
        fatal("cannot open trace file '%s' for writing", path.c_str());
    std::uint64_t zero = 0;
    std::fwrite(traceMagic, 1, sizeof(traceMagic), fp);
    std::fwrite(&zero, sizeof(zero), 1, fp);
}

TraceFileWriter::~TraceFileWriter()
{
    close();
}

void
TraceFileWriter::append(const TraceRecord &r)
{
    COSCALE_CHECK(fp, "append after close on '%s'", filePath.c_str());
    PackedRecord p = pack(r);
    if (std::fwrite(&p, sizeof(p), 1, fp) != 1)
        fatal("short write to trace file '%s'", filePath.c_str());
    count += 1;
}

void
TraceFileWriter::close()
{
    if (!fp)
        return;
    std::fseek(fp, sizeof(traceMagic), SEEK_SET);
    std::fwrite(&count, sizeof(count), 1, fp);
    std::fclose(fp);
    fp = nullptr;
}

TraceParseError::TraceParseError(Kind kind, const std::string &path,
                                 std::uint64_t byte_offset,
                                 const std::string &detail)
    : std::runtime_error("trace file '" + path + "': " + detail
                         + " (byte offset "
                         + std::to_string(byte_offset) + ")"),
      theKind(kind), thePath(path), theOffset(byte_offset)
{
}

std::shared_ptr<const std::vector<TraceRecord>>
loadTraceFile(const std::string &path)
{
    constexpr std::uint64_t header_bytes =
        sizeof(traceMagic) + sizeof(std::uint64_t);

    std::FILE *fp = std::fopen(path.c_str(), "rb");
    if (!fp) {
        throw TraceParseError(TraceParseError::Kind::OpenFailed, path,
                              0, "cannot open for reading");
    }
    // RAII so every throw below closes the handle.
    struct Closer
    {
        std::FILE *fp;
        ~Closer() { std::fclose(fp); }
    } closer{fp};

    // Measure the whole file before trusting anything in it: the
    // header count and the actual size must agree exactly, so a
    // truncated copy or a corrupted header is rejected up front
    // instead of surfacing as a short read mid-parse.
    if (std::fseek(fp, 0, SEEK_END) != 0) {
        throw TraceParseError(TraceParseError::Kind::OpenFailed, path,
                              0, "cannot seek");
    }
    long end = std::ftell(fp);
    if (end < 0) {
        throw TraceParseError(TraceParseError::Kind::OpenFailed, path,
                              0, "cannot measure size");
    }
    std::uint64_t file_bytes = static_cast<std::uint64_t>(end);
    std::rewind(fp);

    if (file_bytes < header_bytes) {
        throw TraceParseError(TraceParseError::Kind::ShortHeader, path,
                              file_bytes,
                              "file ends inside the 16-byte header");
    }

    char magic[sizeof(traceMagic)];
    std::uint64_t count = 0;
    if (std::fread(magic, 1, sizeof(magic), fp) != sizeof(magic)
        || std::memcmp(magic, traceMagic, sizeof(magic)) != 0) {
        throw TraceParseError(TraceParseError::Kind::BadMagic, path, 0,
                              "bad magic, not a CoScale trace");
    }
    if (std::fread(&count, sizeof(count), 1, fp) != 1) {
        throw TraceParseError(TraceParseError::Kind::ShortHeader, path,
                              sizeof(magic), "unreadable record count");
    }

    std::uint64_t payload = file_bytes - header_bytes;
    if (payload % sizeof(PackedRecord) != 0) {
        std::uint64_t whole = payload / sizeof(PackedRecord);
        throw TraceParseError(
            TraceParseError::Kind::ShortRecord, path,
            header_bytes + whole * sizeof(PackedRecord),
            "final record is cut short ("
                + std::to_string(payload % sizeof(PackedRecord))
                + " of " + std::to_string(sizeof(PackedRecord))
                + " bytes)");
    }
    if (payload / sizeof(PackedRecord) != count) {
        throw TraceParseError(
            TraceParseError::Kind::CountMismatch, path,
            sizeof(magic),
            "header promises " + std::to_string(count)
                + " records but the file holds "
                + std::to_string(payload / sizeof(PackedRecord)));
    }
    if (count == 0) {
        throw TraceParseError(TraceParseError::Kind::Empty, path,
                              header_bytes, "empty trace");
    }

    auto buf = std::make_shared<std::vector<TraceRecord>>();
    buf->reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedRecord p;
        if (std::fread(&p, sizeof(p), 1, fp) != 1) {
            throw TraceParseError(
                TraceParseError::Kind::ShortRecord, path,
                header_bytes + i * sizeof(PackedRecord),
                "read failed at record " + std::to_string(i));
        }
        buf->push_back(unpack(p));
    }
    return buf;
}

} // namespace coscale
