/**
 * @file
 * Binary trace record/replay, mirroring the paper's two-step
 * methodology (M5 produces traces; the detailed simulator replays
 * them). Also gives tests a way to pin exact input sequences.
 *
 * File format: 16-byte header ("COSCTRC1" magic + record count),
 * followed by packed little-endian records.
 */

#ifndef COSCALE_TRACE_TRACE_FILE_HH
#define COSCALE_TRACE_TRACE_FILE_HH

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace coscale {

/**
 * Structured parse failure from loadTraceFile. Malformed input files
 * are an operational condition, not a programming error, so they
 * throw (callers decide whether to die, skip, or retry) instead of
 * taking the whole process down via fatal(). kind() and byteOffset()
 * let tests and tools pin exactly what was rejected and where.
 */
class TraceParseError : public std::runtime_error
{
  public:
    enum class Kind
    {
        OpenFailed,    //!< file missing or unreadable
        BadMagic,      //!< first 8 bytes are not "COSCTRC1"
        ShortHeader,   //!< file ends inside the 16-byte header
        ShortRecord,   //!< file ends inside a 32-byte record
        CountMismatch, //!< header count disagrees with the file size
        Empty,         //!< well-formed but zero records
    };

    TraceParseError(Kind kind, const std::string &path,
                    std::uint64_t byte_offset, const std::string &detail);

    Kind kind() const { return theKind; }
    const std::string &path() const { return thePath; }

    /** Offset of the first byte that could not be honoured. */
    std::uint64_t byteOffset() const { return theOffset; }

  private:
    Kind theKind;
    std::string thePath;
    std::uint64_t theOffset;
};

/** Write a record stream to a trace file. */
class TraceFileWriter
{
  public:
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void append(const TraceRecord &r);

    /** Finalize the header. Called automatically on destruction. */
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    std::string filePath;
    std::FILE *fp = nullptr;
    std::uint64_t count = 0;
};

/**
 * Load an entire trace file into memory. Validates the magic, that
 * the header record count matches the file size exactly, and that no
 * record is cut short; any violation throws TraceParseError before a
 * single record is handed to the caller.
 */
std::shared_ptr<const std::vector<TraceRecord>>
loadTraceFile(const std::string &path);

/**
 * Replay a loaded trace. The underlying buffer is shared and
 * immutable, so copies are cheap and safe; position is per-source.
 * The stream wraps at the end (applications re-execute).
 */
class ReplayTraceSource final : public TraceSource
{
  public:
    explicit
    ReplayTraceSource(std::shared_ptr<const std::vector<TraceRecord>> buf)
        : records(std::move(buf))
    {
    }

    TraceRecord
    next() override
    {
        const auto &v = *records;
        TraceRecord r = v[pos];
        pos = (pos + 1) % v.size();
        return r;
    }

    std::unique_ptr<TraceSource>
    clone() const override
    {
        return std::make_unique<ReplayTraceSource>(*this);
    }

  private:
    std::shared_ptr<const std::vector<TraceRecord>> records;
    size_t pos = 0;
};

} // namespace coscale

#endif // COSCALE_TRACE_TRACE_FILE_HH
