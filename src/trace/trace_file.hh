/**
 * @file
 * Binary trace record/replay, mirroring the paper's two-step
 * methodology (M5 produces traces; the detailed simulator replays
 * them). Also gives tests a way to pin exact input sequences.
 *
 * File format: 16-byte header ("COSCTRC1" magic + record count),
 * followed by packed little-endian records.
 */

#ifndef COSCALE_TRACE_TRACE_FILE_HH
#define COSCALE_TRACE_TRACE_FILE_HH

#include <memory>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace coscale {

/** Write a record stream to a trace file. */
class TraceFileWriter
{
  public:
    explicit TraceFileWriter(const std::string &path);
    ~TraceFileWriter();

    TraceFileWriter(const TraceFileWriter &) = delete;
    TraceFileWriter &operator=(const TraceFileWriter &) = delete;

    void append(const TraceRecord &r);

    /** Finalize the header. Called automatically on destruction. */
    void close();

    std::uint64_t recordsWritten() const { return count; }

  private:
    std::string filePath;
    std::FILE *fp = nullptr;
    std::uint64_t count = 0;
};

/** Load an entire trace file into memory. */
std::shared_ptr<const std::vector<TraceRecord>>
loadTraceFile(const std::string &path);

/**
 * Replay a loaded trace. The underlying buffer is shared and
 * immutable, so copies are cheap and safe; position is per-source.
 * The stream wraps at the end (applications re-execute).
 */
class ReplayTraceSource final : public TraceSource
{
  public:
    explicit
    ReplayTraceSource(std::shared_ptr<const std::vector<TraceRecord>> buf)
        : records(std::move(buf))
    {
    }

    TraceRecord
    next() override
    {
        const auto &v = *records;
        TraceRecord r = v[pos];
        pos = (pos + 1) % v.size();
        return r;
    }

    std::unique_ptr<TraceSource>
    clone() const override
    {
        return std::make_unique<ReplayTraceSource>(*this);
    }

  private:
    std::shared_ptr<const std::vector<TraceRecord>> records;
    size_t pos = 0;
};

} // namespace coscale

#endif // COSCALE_TRACE_TRACE_FILE_HH
