/**
 * @file
 * Synthetic application model substituting for the paper's SPEC
 * SimPoint traces (see DESIGN.md, "Substitutions").
 *
 * An application is a cyclic sequence of phases; each phase is a
 * stochastic process characterised by its compute CPI, L1 miss rate
 * (= LLC access rate), intended LLC miss ratio, write fraction,
 * spatial run length (sequential-streaming behaviour, which the
 * next-line prefetcher exploits), hot-set size (temporal reuse, which
 * the real simulated LLC turns into hits), and instruction mix.
 */

#ifndef COSCALE_TRACE_SYNTHETIC_HH
#define COSCALE_TRACE_SYNTHETIC_HH

#include <string>
#include <vector>

#include "common/intdiv.hh"
#include "common/rng.hh"
#include "trace/trace.hh"

namespace coscale {

/** Parameters of one application phase. */
struct AppPhase
{
    std::uint64_t instructions = 1'000'000; //!< phase length
    double baseCpi = 1.0;      //!< compute cycles per instruction
    double l1Mpki = 20.0;      //!< LLC accesses per kilo-instruction
    double llcMpki = 2.0;      //!< intended LLC misses per kilo-instr
    double writeFrac = 0.25;   //!< stores among LLC accesses
    double seqRunLen = 6.0;    //!< mean sequential streaming run
    std::uint64_t hotBlocks = 2048; //!< hot working set (blocks)
    double fAlu = 0.45;        //!< instruction-mix fractions
    double fFpu = 0.05;
    double fBranch = 0.15;
    double fMem = 0.35;
};

/** A named application: phases, cycled until the core's budget. */
struct AppSpec
{
    std::string name;
    std::vector<AppPhase> phases;
};

/** Generates TraceRecords from an AppSpec. Fully value-typed. */
class SyntheticTraceSource final : public TraceSource
{
  public:
    /**
     * @param spec the application model
     * @param addr_space distinct per core; block addresses are offset
     *        by addr_space << 34 so applications never share blocks
     * @param seed RNG seed (distinct per core for copy diversity)
     */
    SyntheticTraceSource(AppSpec spec, int addr_space,
                         std::uint64_t seed);

    TraceRecord next() override;
    std::unique_ptr<TraceSource> clone() const override;

    const AppSpec &spec() const { return app; }

  private:
    /**
     * Effective phase parameters, ramped linearly from the previous
     * phase over the first ~15% of the current phase (real programs
     * shift behaviour gradually, not as step functions). The returned
     * reference is valid until the next call or phase advance.
     */
    const AppPhase &blendedPhase() const;
    void advancePhase(std::uint64_t instrs);
    BlockAddr pickAddress(const AppPhase &p);
    void refreshRates(const AppPhase &p);

    AppSpec app;
    BlockAddr base = 0;         //!< address-space base (block index)
    Rng rng;
    size_t phaseIdx = 0;
    std::uint64_t phaseInstrsLeft = 0;
    bool anyPhaseCompleted = false; //!< no blending before 1st switch
    BlockAddr streamPtr = 0;    //!< streaming cursor within region
    std::uint64_t streamRunLeft = 0;
    mutable AppPhase blendBuf;  //!< blendedPhase() scratch (no copy
                                //!< on the common non-ramp path)

    // Memo for the per-record derived rates (three double divisions
    // otherwise recomputed from the same phase parameters millions of
    // times in a row). Keyed on the exact inputs and storing the exact
    // computed doubles, so reuse is bit-identical to recomputation.
    // Plain doubles keep the type trivially copyable (the Offline
    // oracle deep-copies every generator). l1Mpki is never negative,
    // so the -1 sentinel can't match a real key.
    double rateKeyL1 = -1.0;    //!< memo key: p.l1Mpki
    double rateKeyLlc = -1.0;   //!< memo key: p.llcMpki
    double memoGapMean = 0.0;   //!< 1000 / l1Mpki (or 1000)
    double memoGapP = 0.0;      //!< 1 / max(1, gapMean)
    double memoMissRatio = 0.0; //!< min(1, llcMpki / l1Mpki) (or 0)

    // Reciprocal for the hot-set reduction (one per reuse access);
    // the hot-set size only changes at phase boundaries. Exact (see
    // intdiv.hh), so results match the plain modulo bit for bit.
    InvariantMod hotMod;
};

} // namespace coscale

#endif // COSCALE_TRACE_SYNTHETIC_HH
