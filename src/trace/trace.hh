/**
 * @file
 * Trace abstraction for the two-step simulation methodology
 * (Section 4.1): cores replay a stream of post-L1 records. Each record
 * is one LLC access plus the compute "gap" (instructions, core cycles,
 * and the activity-counter instruction mix) preceding it.
 *
 * TraceSource is polymorphic (synthetic generator, file replay);
 * TraceHandle gives it value semantics via clone-on-copy so the whole
 * simulator remains deep-copyable.
 */

#ifndef COSCALE_TRACE_TRACE_HH
#define COSCALE_TRACE_TRACE_HH

#include <cstdint>
#include <memory>

#include "common/types.hh"

namespace coscale {

/** One LLC access and the compute gap leading up to it. */
struct TraceRecord
{
    BlockAddr addr = 0;       //!< block address of the LLC access
    std::uint32_t gapInstrs = 1;  //!< instructions in the gap (>= 1)
    std::uint32_t gapCycles = 1;  //!< core compute cycles for the gap
    std::uint16_t aluOps = 0;     //!< activity-counter events in gap
    std::uint16_t fpuOps = 0;
    std::uint16_t branchOps = 0;
    std::uint16_t memOps = 0;
    std::uint8_t isWrite = 0;     //!< store to this block
};

/** Producer of an (unbounded) stream of trace records. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next record. Streams never end; they wrap. */
    virtual TraceRecord next() = 0;

    /** Deep copy, preserving generator/replay position. */
    virtual std::unique_ptr<TraceSource> clone() const = 0;
};

/** Value-semantic owner of a TraceSource (clone-on-copy). */
class TraceHandle
{
  public:
    TraceHandle() = default;

    explicit
    TraceHandle(std::unique_ptr<TraceSource> s)
        : src(std::move(s))
    {
    }

    TraceHandle(const TraceHandle &o)
        : src(o.src ? o.src->clone() : nullptr)
    {
    }

    TraceHandle &
    operator=(const TraceHandle &o)
    {
        if (this != &o)
            src = o.src ? o.src->clone() : nullptr;
        return *this;
    }

    TraceHandle(TraceHandle &&) = default;
    TraceHandle &operator=(TraceHandle &&) = default;

    TraceSource *operator->() { return src.get(); }
    TraceSource &operator*() { return *src; }
    explicit operator bool() const { return src != nullptr; }

  private:
    std::unique_ptr<TraceSource> src;
};

} // namespace coscale

#endif // COSCALE_TRACE_TRACE_HH
