#include "model/knobs.hh"

#include "model/energy_model.hh"

namespace coscale {

bool
KnobSpace::contains(const KnobVector &vec) const
{
    if (static_cast<int>(vec.coreIdx.size()) != numCores)
        return false;
    for (int c : vec.coreIdx) {
        if (c < 0 || c >= coreSteps)
            return false;
    }
    if (vec.memIdx < 0 || vec.memIdx >= memSteps)
        return false;
    if (!vec.chanIdx.empty()) {
        if (static_cast<int>(vec.chanIdx.size()) != numChannels)
            return false;
        for (int m : vec.chanIdx) {
            if (m < 0 || m >= memSteps)
                return false;
        }
    }
    if (!vec.wayIdx.empty()) {
        if (!llcWays)
            return false;
        if (static_cast<int>(vec.wayIdx.size()) != numCores)
            return false;
        int sum = 0;
        for (int w : vec.wayIdx) {
            if (w < wayFloor || w > waysTotal)
                return false;
            sum += w;
        }
        if (sum > waysTotal)
            return false;
    }
    return true;
}

KnobVector
KnobSpace::reference() const
{
    KnobVector ref = KnobVector::allMax(numCores);
    if (llcWays)
        ref.wayIdx.assign(static_cast<size_t>(numCores), waysTotal);
    return ref;
}

std::vector<int>
KnobSpace::baselinePartition() const
{
    return evenWaySplit(waysTotal, numCores);
}

std::vector<int>
evenWaySplit(int ways_total, int num_cores)
{
    std::vector<int> way(static_cast<size_t>(num_cores), 0);
    if (num_cores <= 0)
        return way;
    int base = ways_total / num_cores;
    int rem = ways_total - base * num_cores;
    for (int i = 0; i < num_cores; ++i)
        way[static_cast<size_t>(i)] = base + (i < rem ? 1 : 0);
    return way;
}

bool
KnobSpace::underCap(const EnergyModel &em, const SystemProfile &prof,
                    const KnobVector &vec) const
{
    if (powerCapW == std::numeric_limits<double>::infinity())
        return true;
    return em.systemPower(prof, vec) <= powerCapW;
}

KnobSpace
makeKnobSpace(const EnergyModel &em, const SystemProfile &prof,
              double power_cap_w)
{
    KnobSpace space;
    space.numCores = static_cast<int>(prof.cores.size());
    space.coreSteps = static_cast<int>(em.cores().size());
    space.memSteps = static_cast<int>(em.mem().size());
    space.numChannels = static_cast<int>(prof.channels.size());
    space.llcWays = prof.waysTotal > 0;
    space.waysTotal = prof.waysTotal;
    space.wayFloor = prof.wayFloor;
    space.powerCapW = power_cap_w;

    // Transition latencies are descriptor metadata (nominal actuator
    // costs: the 30 us core V/f ramp, the DRAM recalibration halt,
    // a register write for the way masks); the byte-sensitive search
    // paths never read them.
    for (int i = 0; i < space.numCores; ++i) {
        KnobDim d;
        d.kind = KnobKind::CoreFreq;
        d.id = i;
        d.size = space.coreSteps;
        d.minIdx = 0;
        d.maxIdx = space.coreSteps - 1;
        d.transitionSecs = 30e-6;
        space.dims.push_back(d);
    }
    {
        KnobDim d;
        d.kind = KnobKind::MemFreq;
        d.id = 0;
        d.size = space.memSteps;
        d.minIdx = 0;
        d.maxIdx = space.memSteps - 1;
        d.transitionSecs = 1e-6;
        space.dims.push_back(d);
    }
    for (int ch = 0; ch < space.numChannels; ++ch) {
        KnobDim d;
        d.kind = KnobKind::ChanFreq;
        d.id = ch;
        d.size = space.memSteps;
        d.minIdx = 0;
        d.maxIdx = space.memSteps - 1;
        d.transitionSecs = 1e-6;
        space.dims.push_back(d);
    }
    if (space.llcWays) {
        for (int i = 0; i < space.numCores; ++i) {
            KnobDim d;
            d.kind = KnobKind::LlcWay;
            d.id = i;
            d.size = space.waysTotal + 1;
            d.minIdx = space.wayFloor;
            d.maxIdx = space.waysTotal;
            d.transitionSecs = 0.0;
            space.dims.push_back(d);
        }
    }
    return space;
}

} // namespace coscale
