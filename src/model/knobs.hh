/**
 * @file
 * The generic knob vector and knob space the policy/search stack
 * operates on (DESIGN.md §13).
 *
 * CoScale's original search walks exactly two knob families — per-core
 * frequency and memory frequency. `KnobVector` generalizes the
 * candidate to typed dimensions (per-core DVFS, memory DVFS, per-
 * channel DVFS, per-core LLC way allocation) and `KnobSpace` describes
 * which dimensions a given system actually exposes: ladder sizes,
 * QoS floors, and the power cap as a feasibility predicate over the
 * vector rather than a separate code path.
 *
 * Contract: a vector whose optional dimensions are empty is exactly
 * the legacy `(coreFreqIdx[], memFreqIdx)` pair, and every consumer
 * treats it with the legacy arithmetic bit for bit — the default
 * (DVFS-only) knob space stays byte-identical to the pre-refactor
 * code.
 */

#ifndef COSCALE_MODEL_KNOBS_HH
#define COSCALE_MODEL_KNOBS_HH

#include <cstddef>
#include <limits>
#include <vector>

namespace coscale {

class EnergyModel;
struct SystemProfile;

/**
 * A candidate setting of every controllable knob. Historically named
 * FreqConfig (energy_model.hh keeps that alias); the optional
 * dimensions default to "held" (empty), which every consumer treats
 * as the legacy DVFS-only pair.
 */
struct KnobVector
{
    std::vector<int> coreIdx;  //!< ladder index per core
    int memIdx = 0;
    /**
     * Optional per-channel memory indices (MultiScale extension).
     * Empty means the uniform memIdx applies to every channel.
     */
    std::vector<int> chanIdx;
    /**
     * Optional per-core LLC way allocation (way-partitioning knob).
     * Empty means the dimension is held: whatever partition the
     * system currently has (or none) stays in place, and the model
     * evaluates the candidate at the profiled allocation.
     */
    std::vector<int> wayIdx;

    static KnobVector
    allMax(int num_cores)
    {
        KnobVector c;
        c.coreIdx.assign(static_cast<std::size_t>(num_cores), 0);
        c.memIdx = 0;
        return c;
    }
};

/** The knob families a dimension can belong to. */
enum class KnobKind { CoreFreq, MemFreq, ChanFreq, LlcWay };

/**
 * One scalar dimension of the space: which family, which instance
 * (core or channel id), its index range, and the nominal transition
 * latency the actuator pays (descriptor metadata for callers that
 * budget transitions; the byte-sensitive paths do not read it).
 */
struct KnobDim
{
    KnobKind kind = KnobKind::CoreFreq;
    int id = 0;          //!< core or channel index; 0 for MemFreq
    int size = 0;        //!< number of settings (ladder steps / ways)
    int minIdx = 0;      //!< lowest legal index (QoS floor for ways)
    int maxIdx = 0;      //!< highest legal index
    double transitionSecs = 0.0; //!< nominal actuator latency
};

/**
 * The search space a system exposes: dimension roster, bounds, and
 * the power cap expressed as a feasibility predicate (`underCap`)
 * instead of a dedicated search mode. Built from the live system via
 * makeKnobSpace(); policies walk it instead of hard-coding
 * `em.cores().size()` / `em.mem().size()`.
 */
struct KnobSpace
{
    int numCores = 0;
    int coreSteps = 0;   //!< core ladder size
    int memSteps = 0;    //!< memory ladder size
    int numChannels = 0;
    bool llcWays = false; //!< way-partition dimension present?
    int waysTotal = 0;    //!< associativity W when llcWays
    int wayFloor = 1;     //!< QoS floor: min ways per core
    /** Feasibility cap in watts; +inf means uncapped. */
    double powerCapW = std::numeric_limits<double>::infinity();
    std::vector<KnobDim> dims;

    /** Is @p vec a well-formed member of this space? */
    bool contains(const KnobVector &vec) const;

    /**
     * The modeling reference: all-max frequencies, and — when the
     * way dimension is present — every core at the full
     * associativity (each core's best case, like the paper's
     * all-max; the sum may exceed W deliberately, it is a modeling
     * bound, not an applicable partition).
     */
    KnobVector reference() const;

    /**
     * The power-cap feasibility predicate: predicted system power of
     * @p vec under @p prof is within powerCapW. Always true when
     * uncapped.
     */
    bool underCap(const EnergyModel &em, const SystemProfile &prof,
                  const KnobVector &vec) const;

    /**
     * The baseline partition of this space: the even split the System
     * installs at construction (see evenWaySplit()). This — not
     * reference()'s per-core best case — is the partition the
     * measured performance bound is taken against, since the baseline
     * policy never moves it.
     */
    std::vector<int> baselinePartition() const;
};

/**
 * The even way split over @p num_cores cores of a @p ways_total -way
 * LLC: floor(W/N) ways each, the remainder going to the lowest-index
 * cores. The System installs exactly this partition at construction,
 * and the policies anchor their performance reference to it, so the
 * two layers must agree — both call this helper.
 */
std::vector<int> evenWaySplit(int ways_total, int num_cores);

/**
 * Build the knob space the system described by (@p em, @p prof)
 * exposes: per-core DVFS from the core ladder, memory DVFS from the
 * active backend's ladder, per-channel DVFS when the profile has
 * channels, and the LLC way dimension when the profile carries a
 * partitioned-LLC snapshot (prof.waysTotal > 0).
 */
KnobSpace makeKnobSpace(const EnergyModel &em,
                        const SystemProfile &prof,
                        double power_cap_w =
                            std::numeric_limits<double>::infinity());

} // namespace coscale

#endif // COSCALE_MODEL_KNOBS_HH
