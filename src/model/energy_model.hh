/**
 * @file
 * The full-system energy model of Section 3.3 (Eq. 2-3): predicts
 * system power and the System Energy Ratio (SER) for any candidate
 * combination of per-core and memory frequencies, from a profiling
 * snapshot.
 *
 * P(f1..fn, fmem) = P_other + P_L2 + P_mem(fmem) + sum_i P_core(fi)
 * SER(cand)       = T_rel(cand) * P(cand) / P(all-max)
 *
 * where T_rel is the relative epoch time of the core with the highest
 * predicted TPI degradation versus all-max frequencies.
 */

#ifndef COSCALE_MODEL_ENERGY_MODEL_HH
#define COSCALE_MODEL_ENERGY_MODEL_HH

#include <vector>

#include "check/contract.hh"
#include "common/dvfs.hh"
#include "model/knobs.hh"
#include "model/perf_model.hh"
#include "power/power_model.hh"

namespace coscale {

/**
 * A candidate configuration. Historically the DVFS-only pair; now the
 * full knob vector (model/knobs.hh) — the optional dimensions default
 * to empty, which preserves the legacy arithmetic exactly.
 */
using FreqConfig = KnobVector;

/** Predicts TPI, power, and SER for candidate configurations. */
class EnergyModel
{
  public:
    EnergyModel() = default;
    EnergyModel(const PerfModel *perf, const PowerModel *power,
                const FreqLadder *core_ladder,
                const FreqLadder *mem_ladder)
        : perf(perf), power(power), coreLadder(core_ladder),
          memLadder(mem_ladder)
    {
    }

    /** Predicted TPI (seconds) of core @p i under @p cfg. */
    double tpi(const SystemProfile &prof, int i,
               const FreqConfig &cfg) const;

    /** Predicted TPI of core @p i with everything at max. */
    double tpiAtMax(const SystemProfile &prof, int i) const;

    /** Predicted power of core @p i alone under @p cfg. */
    double corePower(const SystemProfile &prof, int i,
                     const FreqConfig &cfg) const;

    /** Predicted memory-subsystem power under @p cfg. */
    double memPower(const SystemProfile &prof,
                    const FreqConfig &cfg) const;

    /** Predicted full-system power under @p cfg. */
    double systemPower(const SystemProfile &prof,
                       const FreqConfig &cfg) const;

    /** Predicted relative epoch time (worst core) vs all-max. */
    double relativeTime(const SystemProfile &prof,
                        const FreqConfig &cfg) const;

    /** The System Energy Ratio (Eq. 2) vs all-max. */
    double ser(const SystemProfile &prof, const FreqConfig &cfg) const;

    const FreqLadder &cores() const { return *coreLadder; }
    const FreqLadder &mem() const { return *memLadder; }
    const PerfModel &perfModel() const { return *perf; }
    const PowerModel &powerModel() const { return *power; }

    /**
     * The model-predicted demand-read rate at the profiled
     * configuration — the anchor for traffic scaling. Constant for a
     * given profile; cache it (SerEvaluator does) when evaluating
     * many candidates.
     */
    double profiledReadRate(const SystemProfile &prof) const;

    /** memPower with the profiled read rate precomputed. */
    double memPower(const SystemProfile &prof, const FreqConfig &cfg,
                    double reads_prof) const;

    /**
     * LLC-miss scaling factor for core @p i when allocated @p ways
     * ways, relative to the profiled allocation: predicted misses at
     * @p ways over predicted misses at the profiled way count, from
     * the shadow-monitor miss curve in the profile. Exactly 1.0 when
     * the profile carries no way-partition snapshot (DVFS-only
     * identity) or @p ways equals the profiled allocation.
     */
    double missScale(const SystemProfile &prof, int i, int ways) const;

  private:
    friend class SerEvaluator;

    /** Memory activity rates anchored on the profile. */
    MemActivityRates memRates(const SystemProfile &prof,
                              const FreqConfig &cfg,
                              double reads_prof) const;

    const PerfModel *perf = nullptr;
    const PowerModel *power = nullptr;
    const FreqLadder *coreLadder = nullptr;
    const FreqLadder *memLadder = nullptr;
};

/**
 * Evaluates many candidate configurations against one profile,
 * caching everything that does not change between candidates: the
 * per-core all-max TPIs, the all-max system power (the SER
 * denominator), and the traffic anchor. This is what makes the
 * greedy walk and the cap-scan searches run in microseconds
 * (Section 3.1's overhead claim).
 */
class SerEvaluator
{
  public:
    SerEvaluator(const EnergyModel &em, const SystemProfile &prof);

    double tpiAtMax(int i) const
    {
        return tpiMax[static_cast<size_t>(i)];
    }

    /** Predicted TPI of core @p i at ladder indices (c, m). O(1). */
    double
    tpi(int i, int c, int m) const
    {
        COSCALE_DCHECK(i >= 0 && i < numCores, "core %d", i);
        COSCALE_DCHECK(c >= 0
                           && c < static_cast<int>(invCoreFreq.size()),
                       "core ladder index %d", c);
        COSCALE_DCHECK(m >= 0 && m < numMem, "mem ladder index %d", m);
        size_t si = static_cast<size_t>(i);
        return cyc[si] * invCoreFreq[static_cast<size_t>(c)]
               + l2Part[si]
               + stallPerInstr[si * static_cast<size_t>(numMem)
                               + static_cast<size_t>(m)];
    }

    /** Predicted power of core @p i at indices (c, m). O(1). */
    double
    corePower(int i, int c, int m) const
    {
        size_t si = static_cast<size_t>(i);
        size_t sc = static_cast<size_t>(c);
        double t = tpi(i, c, m);
        double ips = t > 0.0 ? 1.0 / t : 0.0;
        return clockW[sc] + eventNj[si] * 1e-9 * coreV2[sc] * ips
               + leakW[sc];
    }

    /**
     * TPI of core @p i at indices (c, m) with @p w LLC ways. O(1).
     * Only callable when the profile carried a way-partition
     * snapshot (waysTotal > 0).
     */
    double
    tpi(int i, int c, int m, int w) const
    {
        COSCALE_DCHECK(waysTotal > 0, "no way dimension");
        COSCALE_DCHECK(w >= 0 && w <= waysTotal, "ways %d", w);
        size_t si = static_cast<size_t>(i);
        return cyc[si] * invCoreFreq[static_cast<size_t>(c)]
               + l2Part[si]
               + wayScale[si * static_cast<size_t>(waysTotal + 1)
                          + static_cast<size_t>(w)]
                     * stallPerInstr[si * static_cast<size_t>(numMem)
                                     + static_cast<size_t>(m)];
    }

    /** Power of core @p i at indices (c, m) with @p w ways. O(1). */
    double
    corePower(int i, int c, int m, int w) const
    {
        size_t si = static_cast<size_t>(i);
        size_t sc = static_cast<size_t>(c);
        double t = tpi(i, c, m, w);
        double ips = t > 0.0 ? 1.0 / t : 0.0;
        return clockW[sc] + eventNj[si] * 1e-9 * coreV2[sc] * ips
               + leakW[sc];
    }

    double relativeTime(const FreqConfig &cfg) const;
    double systemPower(const FreqConfig &cfg) const;
    double ser(const FreqConfig &cfg) const;
    double basePower() const { return pBase; }

  private:
    /** Memory-subsystem power at mem index m, given the predicted
     *  demand-read rate of the candidate. Mirrors
     *  PowerModel::memPower exactly. */
    double memPowerFast(int m, double reads_cand) const;

    const EnergyModel *em;
    const SystemProfile *prof;
    int numCores = 0;
    int numMem = 0;

    // Per-core constants.
    std::vector<double> tpiMax;
    std::vector<double> cyc;        //!< compute cycles per instr
    std::vector<double> l2Part;     //!< alpha * Tl2 (seconds)
    std::vector<double> stallPerInstr; //!< [core][memIdx] stall/instr
    std::vector<double> eventNj;    //!< total event energy per instr
    std::vector<double> llcPerInstr;
    std::vector<double> readPerInstr;

    // Way-partition tables (empty when the profile has no way
    // snapshot; every candidate then takes the legacy paths).
    int waysTotal = 0;
    std::vector<double> wayScale;   //!< [core][ways] miss scaling

    // Per-core-frequency constants.
    std::vector<double> invCoreFreq;
    std::vector<double> coreV2;     //!< (V/Vnom)^2
    std::vector<double> clockW;
    std::vector<double> leakW;

    // Per-memory-frequency constants.
    std::vector<double> busStretch;   //!< SBus(m)/SBus(profiled)
    std::vector<double> bgActW;       //!< background W if all active
    std::vector<double> bgPdW;        //!< background W if all idle
    std::vector<double> eActJ;        //!< per access
    std::vector<double> eReadJ;
    std::vector<double> eWriteJ;
    std::vector<double> refreshW;
    std::vector<double> pllW;
    std::vector<double> regPerUtilW;
    std::vector<double> mcMinW;
    std::vector<double> mcSpanW;

    double readsProf = 0.0;
    double pBase = 0.0;
};

} // namespace coscale

#endif // COSCALE_MODEL_ENERGY_MODEL_HH
