#include "model/energy_model.hh"

#include <algorithm>

#include "common/log.hh"

namespace coscale {

namespace {

/**
 * Predicted LLC misses per instruction of @p c when allocated @p w
 * ways, from the shadow-monitor miss curve: the mandatory misses plus
 * every profiled hit whose reuse (stack) depth needs more than @p w
 * ways. Monotone non-increasing in @p w.
 */
double
missesAtWays(const CoreProfile &c, int w)
{
    double misses = c.shadowMissPerInstr;
    for (size_t d = static_cast<size_t>(w);
         d < c.wayHitsPerInstr.size(); ++d)
        misses += c.wayHitsPerInstr[d];
    return misses;
}

} // namespace

double
EnergyModel::missScale(const SystemProfile &prof, int i,
                       int ways) const
{
    if (prof.waysTotal <= 0)
        return 1.0;
    const CoreProfile &c = prof.cores[static_cast<size_t>(i)];
    if (c.wayHitsPerInstr.empty())
        return 1.0;
    int wp = static_cast<int>(prof.profiledWayIdx.size())
                     == static_cast<int>(prof.cores.size())
                 ? prof.profiledWayIdx[static_cast<size_t>(i)]
                 : prof.waysTotal;
    double den = missesAtWays(c, wp);
    if (den <= 0.0)
        return 1.0;
    return missesAtWays(c, ways) / den;
}

double
EnergyModel::tpi(const SystemProfile &prof, int i,
                 const FreqConfig &cfg) const
{
    const CoreProfile &c = prof.cores[static_cast<size_t>(i)];
    if (!cfg.wayIdx.empty()) {
        return perf->tpiSecs(
            c, coreLadder->freq(cfg.coreIdx[static_cast<size_t>(i)]),
            prof.mem, memLadder->freq(cfg.memIdx),
            missScale(prof, i, cfg.wayIdx[static_cast<size_t>(i)]));
    }
    return perf->tpiSecs(c,
                         coreLadder->freq(cfg.coreIdx[static_cast<size_t>(i)]),
                         prof.mem, memLadder->freq(cfg.memIdx));
}

double
EnergyModel::tpiAtMax(const SystemProfile &prof, int i) const
{
    const CoreProfile &c = prof.cores[static_cast<size_t>(i)];
    // Under a way-partition snapshot the reference is each core's
    // best case — all-max frequencies at the full associativity —
    // mirroring the paper's all-max reference for frequencies.
    if (prof.waysTotal > 0) {
        return perf->tpiSecs(c, coreLadder->fMax(), prof.mem,
                             memLadder->fMax(),
                             missScale(prof, i, prof.waysTotal));
    }
    return perf->tpiSecs(c, coreLadder->fMax(), prof.mem,
                         memLadder->fMax());
}

double
EnergyModel::corePower(const SystemProfile &prof, int i,
                       const FreqConfig &cfg) const
{
    const CoreProfile &c = prof.cores[static_cast<size_t>(i)];
    double t = tpi(prof, i, cfg);
    double ips = t > 0.0 ? 1.0 / t : 0.0;
    CoreActivityRates r;
    r.ips = ips;
    r.aluPs = c.aluPerInstr * ips;
    r.fpuPs = c.fpuPerInstr * ips;
    r.branchPs = c.branchPerInstr * ips;
    r.memPs = c.memOpPerInstr * ips;
    int idx = cfg.coreIdx[static_cast<size_t>(i)];
    return power->corePower(coreLadder->voltage(idx),
                            coreLadder->freq(idx), r);
}

double
EnergyModel::profiledReadRate(const SystemProfile &prof) const
{
    int n = static_cast<int>(prof.cores.size());
    FreqConfig prof_cfg;
    prof_cfg.coreIdx = prof.profiledCoreIdx;
    prof_cfg.memIdx = prof.profiledMemIdx;
    if (prof_cfg.coreIdx.empty())
        prof_cfg = FreqConfig::allMax(n);

    double reads_prof = 0.0;
    for (int i = 0; i < n; ++i) {
        const CoreProfile &c = prof.cores[static_cast<size_t>(i)];
        double t_prof = tpi(prof, i, prof_cfg);
        if (t_prof > 0.0)
            reads_prof += c.memReadPerInstr / t_prof;
    }
    return reads_prof;
}

MemActivityRates
EnergyModel::memRates(const SystemProfile &prof, const FreqConfig &cfg,
                      double reads_prof) const
{
    const MemProfile &m = prof.mem;
    int n = static_cast<int>(prof.cores.size());

    // Demand-read rate predicted by the model at the candidate versus
    // at the profiled configuration; their ratio scales the observed
    // total traffic (which includes prefetches and writebacks).
    double reads_cand = 0.0;
    for (int i = 0; i < n; ++i) {
        const CoreProfile &c = prof.cores[static_cast<size_t>(i)];
        double t_cand = tpi(prof, i, cfg);
        if (t_cand > 0.0) {
            double reads = c.memReadPerInstr / t_cand;
            // A smaller way allocation turns hits into misses: the
            // demand-read rate scales with the miss curve too.
            if (!cfg.wayIdx.empty())
                reads *= missScale(prof, i,
                                   cfg.wayIdx[static_cast<size_t>(i)]);
            reads_cand += reads;
        }
    }
    double traffic_scale =
        reads_prof > 0.0 ? reads_cand / reads_prof : 1.0;

    MemActivityRates rates;
    double traffic = m.trafficPerSec * traffic_scale;
    rates.readsPs = traffic * (1.0 - m.writeFrac);
    rates.writesPs = traffic * m.writeFrac;

    Freq f_cand = memLadder->freq(cfg.memIdx);
    Freq f_prof = m.profiledBusFreq;
    double bus_stretch = perf->busSecs(f_cand) / perf->busSecs(f_prof);
    rates.busUtil =
        std::min(1.0, m.busUtil * traffic_scale * bus_stretch);
    double occ_stretch = perf->bankOccupancySecs(f_cand)
                         / perf->bankOccupancySecs(f_prof);
    rates.rankActiveFrac = std::min(
        1.0, m.rankActiveFrac * traffic_scale * occ_stretch);
    return rates;
}

double
EnergyModel::memPower(const SystemProfile &prof,
                      const FreqConfig &cfg) const
{
    return memPower(prof, cfg, profiledReadRate(prof));
}

double
EnergyModel::memPower(const SystemProfile &prof, const FreqConfig &cfg,
                      double reads_prof) const
{
    MemActivityRates rates = memRates(prof, cfg, reads_prof);
    return power->memPower(memLadder->voltage(cfg.memIdx),
                           memLadder->freq(cfg.memIdx), rates);
}

double
EnergyModel::systemPower(const SystemProfile &prof,
                         const FreqConfig &cfg) const
{
    int n = static_cast<int>(prof.cores.size());
    double total = power->otherPower();

    double llc_rate = 0.0;
    for (int i = 0; i < n; ++i) {
        total += corePower(prof, i, cfg);
        const CoreProfile &c = prof.cores[static_cast<size_t>(i)];
        double t = tpi(prof, i, cfg);
        if (t > 0.0)
            llc_rate += c.llcAccessPerInstr / t;
    }
    total += power->l2Power(llc_rate);
    total += memPower(prof, cfg);
    return total;
}

double
EnergyModel::relativeTime(const SystemProfile &prof,
                          const FreqConfig &cfg) const
{
    int n = static_cast<int>(prof.cores.size());
    double worst = 1.0;
    for (int i = 0; i < n; ++i) {
        double t_max = tpiAtMax(prof, i);
        if (t_max <= 0.0)
            continue;
        worst = std::max(worst, tpi(prof, i, cfg) / t_max);
    }
    return worst;
}

double
EnergyModel::ser(const SystemProfile &prof, const FreqConfig &cfg) const
{
    FreqConfig all_max =
        FreqConfig::allMax(static_cast<int>(prof.cores.size()));
    if (prof.waysTotal > 0)
        all_max.wayIdx.assign(prof.cores.size(), prof.waysTotal);
    double p_base = systemPower(prof, all_max);
    if (p_base <= 0.0)
        return 1.0;
    return relativeTime(prof, cfg) * systemPower(prof, cfg) / p_base;
}

SerEvaluator::SerEvaluator(const EnergyModel &em_in,
                           const SystemProfile &prof_in)
    : em(&em_in), prof(&prof_in)
{
    const PerfModel &perf = *em->perf;
    const PowerModel &power = *em->power;
    const PowerParams &pp = power.params();
    numCores = static_cast<int>(prof->cores.size());
    numMem = em->memLadder->size();
    int num_core_steps = em->coreLadder->size();

    // --- per-core-frequency tables ---
    const CorePowerParams &cp = pp.core;
    for (int c = 0; c < num_core_steps; ++c) {
        Freq f = em->coreLadder->freq(c);
        double v = em->coreLadder->voltage(c);
        double v_ratio = v / cp.vNom;
        invCoreFreq.push_back(1.0 / f);
        coreV2.push_back(v_ratio * v_ratio);
        clockW.push_back(cp.clockW * v_ratio * v_ratio * (f / cp.fNom));
        leakW.push_back(cp.leakW * v_ratio);
    }

    const MemPowerParams &mp = pp.mem;
    const DramCurrentParams &cur = mp.currents;
    int devices = pp.geom.devicesPerRank;
    int total_ranks = pp.geom.totalRanks();
    int dimms = pp.geom.channels * pp.geom.dimmsPerChannel;
    double t_rc_s = pp.timing.tRAScycles / pp.timing.refClock
                    + pp.timing.tRPns * 1e-9;
    double t_burst_ref_s = pp.timing.burstCycles / mp.fRef;
    double e_refresh = cur.vdd
                       * (cur.iRefresh - cur.iPrechargeStandby) * 1e-3
                       * pp.timing.tRFCns * 1e-9 * devices;
    for (int m = 0; m < numMem; ++m) {
        Freq f = em->memLadder->freq(m);
        double f_ratio = f / mp.fRef;
        double v_ratio = em->memLadder->voltage(m) / 1.20;
        double v2f = v_ratio * v_ratio * f_ratio;
        busStretch.push_back(perf.busSecs(f)
                             / perf.busSecs(prof->mem.profiledBusFreq));
        double i_act =
            cur.iActiveStandby
            * (1.0 - mp.standbySlope + mp.standbySlope * f_ratio);
        double i_pd = cur.iPrechargePowerdown
                      * (1.0 - mp.powerdownSlope
                         + mp.powerdownSlope * f_ratio);
        double per_dev = cur.vdd * 1e-3 * devices * total_ranks
                         * mp.backgroundScale;
        bgActW.push_back(per_dev * i_act);
        bgPdW.push_back(per_dev * i_pd);
        eActJ.push_back(cur.vdd * (cur.iActPre - cur.iPrechargeStandby)
                        * 1e-3 * t_rc_s * devices);
        eReadJ.push_back(cur.vdd * (cur.iRowRead - cur.iActiveStandby)
                         * 1e-3 * t_burst_ref_s * devices
                         * mp.ioTermScale);
        eWriteJ.push_back(cur.vdd
                          * (cur.iRowWrite - cur.iActiveStandby) * 1e-3
                          * t_burst_ref_s * devices * mp.ioTermScale);
        refreshW.push_back(e_refresh * total_ranks
                           / (pp.timing.tREFIus * 1e-6));
        pllW.push_back(dimms * mp.pllW * v2f);
        regPerUtilW.push_back(dimms * mp.regMaxW * f_ratio);
        mcMinW.push_back(mp.mcMinW * v2f);
        mcSpanW.push_back((mp.mcMaxW - mp.mcMinW) * v2f);
    }

    // --- per-core tables ---
    waysTotal = prof->waysTotal;
    for (int i = 0; i < numCores; ++i) {
        const CoreProfile &c = prof->cores[static_cast<size_t>(i)];
        cyc.push_back(c.cyclesPerInstr);
        l2Part.push_back(c.alpha * c.tpiL2Secs);
        eventNj.push_back(cp.eInstrNj + cp.eAluNj * c.aluPerInstr
                          + cp.eFpuNj * c.fpuPerInstr
                          + cp.eBranchNj * c.branchPerInstr
                          + cp.eMemNj * c.memOpPerInstr);
        llcPerInstr.push_back(c.llcAccessPerInstr);
        readPerInstr.push_back(c.memReadPerInstr);
        for (int m = 0; m < numMem; ++m) {
            stallPerInstr.push_back(perf.memStallPerInstrSecs(
                c, prof->mem, em->memLadder->freq(m)));
        }
        if (waysTotal > 0) {
            for (int w = 0; w <= waysTotal; ++w)
                wayScale.push_back(em->missScale(*prof, i, w));
        }
        tpiMax.push_back(waysTotal > 0 ? tpi(i, 0, 0, waysTotal)
                                       : tpi(i, 0, 0));
    }

    readsProf = em->profiledReadRate(*prof);
    FreqConfig base = FreqConfig::allMax(numCores);
    if (waysTotal > 0)
        base.wayIdx.assign(static_cast<size_t>(numCores), waysTotal);
    pBase = systemPower(base);
}

double
SerEvaluator::relativeTime(const FreqConfig &cfg) const
{
    if (!cfg.wayIdx.empty()) {
        double worst = 1.0;
        for (int i = 0; i < numCores; ++i) {
            size_t si = static_cast<size_t>(i);
            double t_max = tpiMax[si];
            if (t_max <= 0.0)
                continue;
            double r = tpi(i, cfg.coreIdx[si], cfg.memIdx,
                           cfg.wayIdx[si])
                       / t_max;
            if (r > worst)
                worst = r;
        }
        return worst;
    }
    double worst = 1.0;
    for (int i = 0; i < numCores; ++i) {
        double t_max = tpiMax[static_cast<size_t>(i)];
        if (t_max <= 0.0)
            continue;
        double r = tpi(i, cfg.coreIdx[static_cast<size_t>(i)],
                       cfg.memIdx)
                   / t_max;
        if (r > worst)
            worst = r;
    }
    return worst;
}

double
SerEvaluator::memPowerFast(int m, double reads_cand) const
{
    const MemProfile &mprof = prof->mem;
    size_t sm = static_cast<size_t>(m);
    double scale = readsProf > 0.0 ? reads_cand / readsProf : 1.0;
    double traffic = mprof.trafficPerSec * scale;
    double reads_ps = traffic * (1.0 - mprof.writeFrac);
    double writes_ps = traffic * mprof.writeFrac;
    double util =
        std::min(1.0, mprof.busUtil * scale * busStretch[sm]);
    double rank = std::min(1.0, mprof.rankActiveFrac * scale);

    double background = rank * bgActW[sm] + (1.0 - rank) * bgPdW[sm];
    double act = eActJ[sm] * (reads_ps + writes_ps);
    double burst = eReadJ[sm] * reads_ps + eWriteJ[sm] * writes_ps;
    double pll_reg = pllW[sm] + regPerUtilW[sm] * util;
    double mc = mcMinW[sm] + mcSpanW[sm] * util;
    return (background + act + burst + refreshW[sm] + pll_reg + mc)
           * em->power->params().mem.memPowerMultiplier;
}

double
SerEvaluator::systemPower(const FreqConfig &cfg) const
{
    if (!cfg.wayIdx.empty()) {
        double total = em->power->otherPower();
        double llc_rate = 0.0;
        double reads_cand = 0.0;
        int m = cfg.memIdx;
        for (int i = 0; i < numCores; ++i) {
            size_t si = static_cast<size_t>(i);
            int c = cfg.coreIdx[si];
            int w = cfg.wayIdx[si];
            double t = tpi(i, c, m, w);
            double ips = t > 0.0 ? 1.0 / t : 0.0;
            total += clockW[static_cast<size_t>(c)]
                     + eventNj[si] * 1e-9
                           * coreV2[static_cast<size_t>(c)] * ips
                     + leakW[static_cast<size_t>(c)];
            // LLC accesses are allocation-invariant; demand reads
            // (misses) scale with the miss curve.
            llc_rate += llcPerInstr[si] * ips;
            reads_cand +=
                wayScale[si * static_cast<size_t>(waysTotal + 1)
                         + static_cast<size_t>(w)]
                * readPerInstr[si] * ips;
        }
        const L2PowerParams &l2 = em->power->params().l2;
        total += l2.leakW + l2.accessNj * 1e-9 * llc_rate;
        total += memPowerFast(m, reads_cand);
        return total;
    }
    double total = em->power->otherPower();
    double llc_rate = 0.0;
    double reads_cand = 0.0;
    int m = cfg.memIdx;
    for (int i = 0; i < numCores; ++i) {
        size_t si = static_cast<size_t>(i);
        int c = cfg.coreIdx[si];
        double t = tpi(i, c, m);
        double ips = t > 0.0 ? 1.0 / t : 0.0;
        total += clockW[static_cast<size_t>(c)]
                 + eventNj[si] * 1e-9 * coreV2[static_cast<size_t>(c)]
                       * ips
                 + leakW[static_cast<size_t>(c)];
        llc_rate += llcPerInstr[si] * ips;
        reads_cand += readPerInstr[si] * ips;
    }
    const L2PowerParams &l2 = em->power->params().l2;
    total += l2.leakW + l2.accessNj * 1e-9 * llc_rate;
    total += memPowerFast(m, reads_cand);
    return total;
}

double
SerEvaluator::ser(const FreqConfig &cfg) const
{
    if (pBase <= 0.0)
        return 1.0;
    return relativeTime(cfg) * systemPower(cfg) / pBase;
}

} // namespace coscale
