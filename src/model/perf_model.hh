/**
 * @file
 * The analytic performance model of Section 3.3.
 *
 * Equation 1:
 *   E[CPI] = (E[TPIcpu] + alpha*E[TPIl2] + beta*E[TPImem]) * Fcpu
 *
 * We work directly in time-per-instruction (TPI, seconds):
 *   TPI(fc, fm) = cyclesPerInstr / fc  +  alpha * Tl2
 *                 + beta * E[TPImem](fm)
 *
 * with the paper's memory-stall decomposition
 *   E[TPImem](fm) = xiBank * (SBank + xiBus * SBus(fm))
 * refined in two ways (both exact at the profiled frequency; see
 * DESIGN.md section 7):
 *  - bus queueing scales with an M/M/1-like utilisation term rather
 *    than linearly with the burst time (measured stall-vs-frequency
 *    curves are superlinear);
 *  - per-core memory time uses the hidden-latency form
 *    stall/instr = misses/instr * L(f) - hidden, which reduces to
 *    beta * E[TPImem] for in-order cores and correctly captures the
 *    MLP window stalling more often as the bus slows.
 */

#ifndef COSCALE_MODEL_PERF_MODEL_HH
#define COSCALE_MODEL_PERF_MODEL_HH

#include <vector>

#include "common/dvfs.hh"
#include "common/types.hh"
#include "dram/ddr3_params.hh"
#include "stats/perf_counters.hh"

namespace coscale {

/** Frequency-invariant profile of one core over a window. */
struct CoreProfile
{
    double cyclesPerInstr = 1.0; //!< compute cycles per instruction
    double alpha = 0.0;          //!< L2-hit stalls per instruction
    double tpiL2Secs = 0.0;      //!< mean L2-hit stall (fixed domain)
    double beta = 0.0;           //!< memory stalls per instruction
    double measuredMemStallSecs = 0.0; //!< mean per-miss stall
    std::uint64_t instrs = 0;

    // Per-instruction rates for the power predictor.
    double aluPerInstr = 0.0;
    double fpuPerInstr = 0.0;
    double branchPerInstr = 0.0;
    double memOpPerInstr = 0.0;
    double llcAccessPerInstr = 0.0;
    double memReadPerInstr = 0.0; //!< DRAM reads per instruction

    /**
     * Shadow-monitor miss curve (partitioned LLC only; empty
     * otherwise): wayHitsPerInstr[d] is the rate of hits at reuse
     * (stack) depth d — hits needing at least d+1 ways — and
     * shadowMissPerInstr the mandatory misses even at the full
     * associativity. Misses at w ways = shadowMissPerInstr +
     * sum_{d >= w} wayHitsPerInstr[d].
     */
    std::vector<double> wayHitsPerInstr;
    double shadowMissPerInstr = 0.0;

    /**
     * The memory channel this core's accesses land on under the
     * RegionPerChannel mapping; -1 under interleaving (all channels).
     */
    int homeChannel = -1;
};

/** Memory-subsystem profile over a window (channels aggregated). */
struct MemProfile
{
    double xiBank = 1.0;     //!< bank queueing multiplier (reporting)
    double xiBus = 1.0;      //!< bus queueing multiplier (reporting)
    double wBankSecs = 0.0;  //!< measured per-read wait before ACT
    double wBusSecs = 0.0;   //!< measured per-read data-bus wait
    double measuredStallSecs = 0.0; //!< anchor: measured svc+wait
    Freq profiledBusFreq = 800 * MHz;
    double writeFrac = 0.2;  //!< writebacks / total traffic
    double busUtil = 0.0;    //!< at the profiled frequency
    double rankActiveFrac = 0.0;
    double trafficPerSec = 0.0; //!< reads+writes per second observed
};

/** A full profiling snapshot handed to the policies. */
struct SystemProfile
{
    std::vector<CoreProfile> cores;
    MemProfile mem;               //!< aggregate over all channels
    std::vector<MemProfile> channels; //!< per-channel (MultiScale)
    Tick windowTicks = 0;
    std::vector<int> profiledCoreIdx; //!< DVFS state during the window
    int profiledMemIdx = 0;
    /**
     * LLC way-partition snapshot (0 / empty when partitioning is
     * off, which keeps the model on the legacy DVFS-only paths).
     */
    int waysTotal = 0;     //!< LLC associativity when partitioned
    int wayFloor = 1;      //!< QoS floor: min ways per core
    std::vector<int> profiledWayIdx; //!< allocation during the window
    /**
     * Application id per core (Section 3.3 context switching). Empty
     * means the identity mapping (app i on core i).
     */
    std::vector<int> appOnCore;
};

/** Evaluates Eq. 1 and its memory decomposition. */
class PerfModel
{
  public:
    PerfModel() = default;
    PerfModel(DramTimingParams timing, double resp_fixed_ns,
              double llc_hit_ns);

    /** Derive a core profile from a counter window. */
    CoreProfile coreProfile(const CoreCounters &delta, Tick elapsed,
                            Freq f_core) const;

    /** Derive the memory profile from aggregated channel counters. */
    MemProfile memProfile(const ChannelCounters &delta, Tick elapsed,
                          Freq bus_freq, int channels,
                          int total_ranks) const;

    /** Nominal (queue-free) read service time at @p f, seconds. */
    double serviceSecs(Freq bus_freq) const;

    /**
     * SBank of the paper's decomposition: the queue-free bank access
     * time (precharge + row access + column read), wall-clock fixed.
     */
    double bankServiceSecs() const;

    /** Bank-occupancy time (tRAS tail + tRP) at @p f, seconds. */
    double bankOccupancySecs(Freq bus_freq) const;

    /** Burst (bus) time at @p f, seconds. */
    double busSecs(Freq bus_freq) const;

    /** Predicted mean per-miss stall at @p f, seconds. */
    double tpiMemSecs(const MemProfile &m, Freq bus_freq) const;

    /**
     * Predicted memory-stall time per instruction of a core at bus
     * frequency @p f, via the hidden-latency formulation (handles
     * both in-order and MLP-window cores; exact at the profiled
     * frequency).
     */
    double memStallPerInstrSecs(const CoreProfile &c,
                                const MemProfile &m,
                                Freq bus_freq) const;

    /**
     * Predicted time per instruction at (fc, fm), seconds.
     * @p miss_scale multiplies the memory-stall term (LLC way-
     * partition candidates: predicted misses at the candidate
     * allocation over misses at the profiled one); the default 1.0
     * is an exact no-op.
     */
    double tpiSecs(const CoreProfile &c, Freq f_core,
                   const MemProfile &m, Freq bus_freq,
                   double miss_scale = 1.0) const;

  private:
    DramTimingParams timing;
    double respFixedNs = 10.0;
    double llcHitNs = 7.5;
};

} // namespace coscale

#endif // COSCALE_MODEL_PERF_MODEL_HH
