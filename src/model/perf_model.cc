#include "model/perf_model.hh"

#include <algorithm>

#include "common/log.hh"

namespace coscale {

PerfModel::PerfModel(DramTimingParams timing_in, double resp_fixed_ns,
                     double llc_hit_ns)
    : timing(timing_in), respFixedNs(resp_fixed_ns), llcHitNs(llc_hit_ns)
{
}

CoreProfile
PerfModel::coreProfile(const CoreCounters &delta, Tick elapsed,
                       Freq f_core) const
{
    (void)elapsed;
    CoreProfile p;
    p.instrs = delta.tic;
    if (delta.tic == 0)
        return p;
    double instrs = static_cast<double>(delta.tic);

    p.cyclesPerInstr =
        ticksToSeconds(delta.computeTicks) * f_core / instrs;
    p.alpha = static_cast<double>(delta.tms) / instrs;
    p.tpiL2Secs = delta.tms
                      ? ticksToSeconds(delta.l2StallTicks)
                            / static_cast<double>(delta.tms)
                      : llcHitNs * 1e-9;
    p.beta = static_cast<double>(delta.tls) / instrs;
    p.measuredMemStallSecs =
        delta.tls ? ticksToSeconds(delta.memStallTicks)
                        / static_cast<double>(delta.tls)
                  : 0.0;

    p.aluPerInstr = static_cast<double>(delta.aluOps) / instrs;
    p.fpuPerInstr = static_cast<double>(delta.fpuOps) / instrs;
    p.branchPerInstr = static_cast<double>(delta.branchOps) / instrs;
    p.memOpPerInstr = static_cast<double>(delta.memOps) / instrs;
    p.llcAccessPerInstr = static_cast<double>(delta.tla) / instrs;
    p.memReadPerInstr = static_cast<double>(delta.tlm) / instrs;
    return p;
}

double
PerfModel::serviceSecs(Freq bus_freq) const
{
    return (timing.tRCDns + timing.tCLns + respFixedNs) * 1e-9
           + timing.burstCycles / bus_freq;
}

double
PerfModel::bankServiceSecs() const
{
    return (timing.tRPns + timing.tRCDns + timing.tCLns) * 1e-9;
}

double
PerfModel::bankOccupancySecs(Freq bus_freq) const
{
    // DRAM-core timing is wall-clock fixed (see ddr3_params.hh); the
    // bank-occupancy tail does not stretch with the bus clock.
    (void)bus_freq;
    return timing.tRAScycles / timing.refClock + timing.tRPns * 1e-9;
}

double
PerfModel::busSecs(Freq bus_freq) const
{
    return timing.burstCycles / bus_freq;
}

MemProfile
PerfModel::memProfile(const ChannelCounters &delta, Tick elapsed,
                      Freq bus_freq, int channels,
                      int total_ranks) const
{
    MemProfile m;
    m.profiledBusFreq = bus_freq;
    std::uint64_t reads = delta.readReqs + delta.prefetchReqs;
    std::uint64_t traffic = reads + delta.writeReqs;
    if (elapsed > 0) {
        double secs = ticksToSeconds(elapsed);
        m.trafficPerSec = static_cast<double>(traffic) / secs;
        m.busUtil = static_cast<double>(delta.busBusyTicks)
                    / (static_cast<double>(elapsed) * channels);
        m.rankActiveFrac = static_cast<double>(delta.rankActiveTicks)
                           / (static_cast<double>(elapsed) * total_ranks);
    }
    if (traffic > 0) {
        m.writeFrac = static_cast<double>(delta.writeReqs)
                      / static_cast<double>(traffic);
    }
    if (reads == 0) {
        // No observed traffic: queue-free model.
        m.measuredStallSecs = serviceSecs(bus_freq);
        m.xiBank = (m.measuredStallSecs - respFixedNs * 1e-9)
                   / (bankServiceSecs() + busSecs(bus_freq));
        m.xiBus = 1.0;
        return m;
    }
    double nreads = static_cast<double>(reads);
    m.wBankSecs = ticksToSeconds(delta.bankWaitTicks) / nreads;
    m.wBusSecs = ticksToSeconds(delta.busWaitTicks) / nreads;
    double s_nom = serviceSecs(bus_freq);
    double s_bus = busSecs(bus_freq);

    m.measuredStallSecs = s_nom + m.wBankSecs + m.wBusSecs;

    // The paper's xi multipliers, derived for reporting and for the
    // Table/Fig harnesses; prediction uses the wait split directly
    // (see tpiMemSecs).
    m.xiBus = 1.0 + m.wBusSecs / s_bus;
    double resp = respFixedNs * 1e-9;
    m.xiBank = std::max(
        0.05, (m.measuredStallSecs - resp)
                  / (bankServiceSecs() + m.xiBus * s_bus));
    return m;
}

double
PerfModel::tpiMemSecs(const MemProfile &m, Freq bus_freq) const
{
    // Per-miss latency decomposition (the paper's xi form refined
    // with the measured wait split and a utilisation-aware queueing
    // term; exact at the profiled frequency by construction):
    //
    //   E(f) = [fixed DRAM core + controller time]
    //          + SBus(f)                         (the data burst)
    //          + wBank * (0.5 + 0.5*SBus(f)/SBus(a))
    //              (bank waits: row-cycle conflicts are wall-clock
    //               fixed; write-drain blocking scales with bursts)
    //          + wBus * Q(f)/Q(a)
    //              (bus queueing: service time stretches AND the
    //               utilisation rises, so waits grow superlinearly;
    //               Q = SBus * u / (1 - u), M/M/1-like)
    double s_bus_a = busSecs(m.profiledBusFreq);
    double s_bus_f = busSecs(bus_freq);
    double ratio = s_bus_f / s_bus_a;

    double bank_scale = 0.5 + 0.5 * ratio;

    double u_a = std::min(0.90, std::max(1e-4, m.busUtil));
    double u_f = std::min(0.90, u_a * ratio);
    double q_a = s_bus_a * u_a / (1.0 - u_a);
    double q_f = s_bus_f * u_f / (1.0 - u_f);
    double bus_scale = q_a > 0.0 ? q_f / q_a : ratio;

    double fixed = m.measuredStallSecs - s_bus_a - m.wBankSecs
                   - m.wBusSecs;
    return fixed + s_bus_f + m.wBankSecs * bank_scale
           + m.wBusSecs * bus_scale;
}

double
PerfModel::memStallPerInstrSecs(const CoreProfile &c,
                                const MemProfile &m,
                                Freq bus_freq) const
{
    if (c.memReadPerInstr <= 0.0)
        return 0.0;

    // Hidden-latency formulation: *every* LLC miss (memReadPerInstr)
    // pays the memory latency, but the core hides a fixed amount of
    // it per instruction (MLP window overlap; zero for in-order
    // cores). The hidden share is calibrated so the expression
    // reproduces the measured stall exactly at the profiled
    // frequency:
    //   stall/instr (f) = mR * L(f) - hidden,
    //   hidden = mR * L(anchor) - beta * measuredStall.
    // When the bus slows, the full latency growth of every miss hits
    // the pipeline — under MLP the window fills sooner and stalls
    // more often, which a fixed stall *count* model would miss.
    double l_anchor = tpiMemSecs(m, m.profiledBusFreq);
    double l_target = tpiMemSecs(m, bus_freq);
    double measured_per_instr =
        c.measuredMemStallSecs > 0.0
            ? c.beta * c.measuredMemStallSecs
            : c.memReadPerInstr * l_anchor;
    double hidden = c.memReadPerInstr * l_anchor - measured_per_instr;
    return std::max(0.0, c.memReadPerInstr * l_target - hidden);
}

double
PerfModel::tpiSecs(const CoreProfile &c, Freq f_core,
                   const MemProfile &m, Freq bus_freq,
                   double miss_scale) const
{
    // miss_scale == 1.0 multiplies exactly (IEEE identity), so the
    // DVFS-only callers are bit-identical to the pre-knob code.
    return c.cyclesPerInstr / f_core + c.alpha * c.tpiL2Secs
           + miss_scale * memStallPerInstrSecs(c, m, bus_freq);
}

} // namespace coscale
