#include "memctrl/mem_ctrl.hh"

#include <algorithm>

#include "check/contract.hh"
#include "check/dram_audit.hh"

namespace coscale {

Channel::Channel(const MemCtrlConfig *cfg, int id, int freq_idx,
                 Tick start)
    : cfg(cfg), chanId(id), freqIdx(freq_idx)
{
    bindBackend();
    t = ResolvedTiming::resolve(cfg->timing, cfg->ladder.freq(freq_idx));
    banks.resize(static_cast<size_t>(cfg->geom.totalBanksPerChannel()));
    ranks.resize(static_cast<size_t>(cfg->geom.ranksPerChannel()));
    // Stagger initial refresh due times across ranks.
    for (size_t r = 0; r < ranks.size(); ++r) {
        ranks[r].nextRefreshDue =
            start + (t.tREFI * (r + 1)) / (ranks.size() + 1);
    }
    lastCommitAt = start;
}

void
Channel::attachAuditor(DramTimingAuditor *a)
{
    auditor = a;
    if (!a)
        return;
    // Seed the shadow from the live floors so attaching mid-run does
    // not report pre-attach history as violations. The floors are
    // derived through the same RowPolicyModel the scheduler uses, so
    // auditor and controller can never disagree about the policy.
    ChannelAuditSeed seed;
    seed.timing = t;
    seed.rowPolicy = cfg->backend.rowPolicy;
    seed.ranks = cfg->geom.ranksPerChannel();
    seed.banksPerRank = cfg->geom.banksPerRank;
    seed.busFreeAt = busFreeAt;
    seed.haltUntil = haltUntil;
    seed.lastIssueAt = lastCommitAt;
    seed.rankSeeds.reserve(ranks.size());
    for (const RankState &r : ranks) {
        RankAuditSeed rs;
        rs.nextRefreshDue = r.nextRefreshDue;
        rs.refreshUntil = r.refreshUntil;
        rs.lastActAt = r.lastActAt;
        rs.actCount = r.actCount;
        std::copy(r.actWindow, r.actWindow + 4, rs.actWindow);
        rs.actCursor = r.actCursor;
        seed.rankSeeds.push_back(rs);
    }
    seed.bankActFloor.reserve(banks.size());
    seed.bankCasFloor.reserve(banks.size());
    for (const BankState &b : banks) {
        seed.bankActFloor.push_back(rowPol->auditActFloor(b, t));
        seed.bankCasFloor.push_back(b.casReadyAt);
    }
    a->seedChannel(chanId, seed);
}

void
Channel::enqueue(const MemReq &req)
{
    // Selective invalidation: whether an arrival at the back of a
    // queue can displace the cached candidate is the scheduler's
    // call (FCFS: only on a hysteresis queue switch; FR-FCFS: always,
    // a new arrival may hit an open row). The write-drain hysteresis
    // flag must still advance exactly when the always-recompute code
    // would have advanced it, hence the eager high-watermark check
    // (the low watermark can only trip after a dequeue, which always
    // invalidates).
    if (req.kind == ReqKind::Writeback) {
        writeQ.push_back(req);
        if (static_cast<int>(writeQ.size()) >= cfg->writeHighWater)
            drainMode = true;
        if (haveCand
            && sched->invalidateOnArrival(true, candIsWrite, drainMode))
            haveCand = false;
    } else {
        stats.queueLenSum += readQ.size();
        stats.queueSamples += 1;
        readQ.push_back(req);
        if (haveCand
            && sched->invalidateOnArrival(false, candIsWrite, drainMode))
            haveCand = false;
    }
}

bool
Channel::selectCandidate() const
{
    if (readQ.empty() && writeQ.empty()) {
        haveCand = false;
        return false;
    }
    // Write-drain hysteresis: reads have priority until the writeback
    // queue reaches the high watermark; drain until the low watermark.
    if (static_cast<int>(writeQ.size()) >= cfg->writeHighWater)
        drainMode = true;
    else if (static_cast<int>(writeQ.size()) <= cfg->writeLowWater)
        drainMode = false;

    Scheduler::QueueView view;
    view.readQ = &readQ;
    view.writeQ = &writeQ;
    view.drainMode = drainMode;
    view.frontBypasses = frontBypasses;
    RowHitProbe probe(this, [](const void *ctx, const MemReq &r) {
        const auto *self = static_cast<const Channel *>(ctx);
        const DramCoord &c = r.coord;
        const BankState &bank = self->banks[static_cast<size_t>(
            c.rank * self->cfg->geom.banksPerRank + c.bank)];
        return self->rowPol->isHit(bank, c);
    });
    Scheduler::Pick p = sched->pick(view, probe);

    candIsWrite = p.isWrite;
    candIndex = p.index;
    const MemReq &req = candIsWrite
                            ? writeQ[candIndex]
                            : readQ[candIndex];
    candIssueAt = std::max(computeIssueTick(req), lastCommitAt);
    haveCand = true;
    return true;
}

Tick
Channel::applyRefreshes(RankState &rank, Tick tick,
                        std::uint64_t *commit_refreshes) const
{
    while (rank.nextRefreshDue <= tick) {
        Tick begin = std::max(rank.nextRefreshDue, rank.refreshUntil);
        rank.refreshUntil = begin + t.tRFC;
        rank.nextRefreshDue += t.tREFI;
        if (commit_refreshes)
            *commit_refreshes += 1;
        tick = std::max(tick, rank.refreshUntil);
    }
    return std::max(tick, rank.refreshUntil);
}

Tick
Channel::computeIssueTick(const MemReq &req) const
{
    const DramCoord &c = req.coord;
    const BankState &bank =
        banks[static_cast<size_t>(c.rank * cfg->geom.banksPerRank + c.bank)];
    RankState rank_probe = ranks[static_cast<size_t>(c.rank)];

    if (rowPol->isHit(bank, c)) {
        // Row hit: next CAS, no ACT required.
        Tick cas = std::max({req.arrival, bank.casReadyAt, haltUntil});
        return applyRefreshes(rank_probe, cas, /*commit=*/nullptr);
    }

    Tick rrd_ready =
        rank_probe.actCount ? rank_probe.lastActAt + t.tRRD : 0;
    Tick faw_ready =
        rank_probe.actCount >= 4
            ? rank_probe.actWindow[rank_probe.actCursor] + t.tFAW
            : 0;
    Tick bank_ready = rowPol->actReady(bank, req.arrival, t);
    Tick act = std::max({req.arrival, bank_ready, haltUntil,
                         rrd_ready, faw_ready});
    return applyRefreshes(rank_probe, act, /*commit=*/nullptr);
}

void
Channel::accountActive(RankState &rank, Tick from, Tick to)
{
    Tick begin = std::max(from, rank.activeUntil);
    if (to > begin) {
        stats.rankActiveTicks += to - begin;
        rank.activeUntil = to;
    }
}

std::optional<MemCompletion>
Channel::step()
{
    COSCALE_CHECK(haveCand, "step() without a pending candidate");

    std::deque<MemReq> &q = candIsWrite ? writeQ : readQ;
    COSCALE_DCHECK(candIndex < q.size(),
                   "candidate index outlived its queue");
    MemReq req = q[candIndex];
    if (candIndex == 0) {
        q.pop_front();
        frontBypasses = 0;
    } else {
        // FR-FCFS row-hit bypass: serve out of order and advance the
        // anti-starvation counter the scheduler's pick() consults.
        q.erase(q.begin() + candIndex);
        frontBypasses += 1;
    }
    haveCand = false;

    const DramCoord &c = req.coord;
    BankState &bank =
        banks[static_cast<size_t>(c.rank * cfg->geom.banksPerRank + c.bank)];
    RankState &rank = ranks[static_cast<size_t>(c.rank)];

    bool row_hit = rowPol->isHit(bank, c);

    // Re-run the issue computation against the *live* rank state so
    // refresh bookkeeping mutates for real this time.
    Tick issue;
    if (row_hit) {
        Tick cas = std::max({req.arrival, bank.casReadyAt, haltUntil});
        issue = applyRefreshes(rank, cas, &stats.refreshes);
    } else {
        Tick rrd_ready = rank.actCount ? rank.lastActAt + t.tRRD : 0;
        Tick faw_ready =
            rank.actCount >= 4
                ? rank.actWindow[rank.actCursor] + t.tFAW
                : 0;
        Tick bank_ready = rowPol->actReady(bank, req.arrival, t);
        Tick act = std::max({req.arrival, bank_ready, haltUntil,
                             rrd_ready, faw_ready});
        issue = applyRefreshes(rank, act, &stats.refreshes);
    }
    issue = std::max(issue, lastCommitAt);
    lastCommitAt = issue;

    bool is_write = req.kind == ReqKind::Writeback;
    Tick cas_lat = is_write ? t.tCWL : t.tCL;

    Tick data_start;
    Tick bank_ready;
    if (row_hit) {
        Tick cas = issue;
        data_start = std::max(cas + cas_lat, busFreeAt);
        stats.rowHits += 1;
        bank_ready = rowPol->onHit(bank, is_write, data_start, cas_lat, t);
    } else {
        Tick act = issue;
        data_start = std::max(act + t.tRCD + cas_lat, busFreeAt);
        Tick cas_eff = data_start - cas_lat;
        if (is_write) {
            bank_ready = std::max(act + t.tRAS,
                                  cas_eff + t.tCWL + t.tBURST + t.tWR)
                         + t.tRP;
        } else {
            bank_ready = std::max(act + t.tRAS, cas_eff + t.tRTP) + t.tRP;
        }
        stats.activations += 1;
        stats.precharges += 1;
        if (rowPol->keepsRowsOpen()) {
            // Open page classifies every ACT as a miss; the subset
            // that had to close another row first is also a conflict
            // (rowConflicts <= rowMisses, and rowHits + rowMisses
            // covers every row-managed access).
            stats.rowMisses += 1;
            if (bank.rowOpen)
                stats.rowConflicts += 1;
        }
        rowPol->onAct(bank, c, act, bank_ready,
                      data_start + t.tBURST, t);
        rank.lastActAt = act;
        rank.actWindow[rank.actCursor] = act;
        rank.actCursor = (rank.actCursor + 1) % 4;
        rank.actCount += 1;
    }

    Tick data_end = data_start + t.tBURST;
    COSCALE_DCHECK(data_end > data_start, "empty burst");
    COSCALE_DCHECK(issue >= req.arrival,
                   "command issued before its request arrived");
    busFreeAt = data_end;
    accountActive(rank, issue, bank_ready);

    if (auditor) {
        DramCmdEvent ev;
        ev.channel = chanId;
        ev.rank = c.rank;
        ev.bank = c.bank;
        ev.row = c.row;
        ev.isWrite = is_write;
        ev.rowHit = row_hit;
        ev.arrival = req.arrival;
        ev.issue = issue;
        ev.dataStart = data_start;
        ev.dataEnd = data_end;
        auditor->onCommand(ev);
    }

    if (is_write) {
        stats.writeReqs += 1;
        stats.writeBursts += 1;
        stats.busBusyTicks += t.tBURST;
        return std::nullopt;
    }

    // Read/prefetch accounting.
    Tick nominal_data = issue + (row_hit ? cas_lat : t.tRCD + cas_lat);
    stats.bankWaitTicks += issue - req.arrival;
    if (data_start > nominal_data)
        stats.busWaitTicks += data_start - nominal_data;
    stats.serviceTicks += data_end - issue;
    stats.busBusyTicks += t.tBURST;
    stats.readBursts += 1;
    if (req.kind == ReqKind::Prefetch)
        stats.prefetchReqs += 1;
    else
        stats.readReqs += 1;

    MemCompletion done;
    done.core = req.core;
    done.kind = req.kind;
    done.finishAt = data_end + nsToTicks(cfg->respFixedNs);
    done.token = req.token;
    return done;
}

void
Channel::changeFrequency(int freq_idx, Tick halt_until)
{
    freqIdx = freq_idx;
    t = ResolvedTiming::resolve(cfg->timing, cfg->ladder.freq(freq_idx));
    haltUntil = std::max(haltUntil, halt_until);
    busFreeAt = std::max(busFreeAt, halt_until);
    for (auto &bank : banks) {
        bank.readyAt = std::max(bank.readyAt, halt_until);
        bank.casReadyAt = std::max(bank.casReadyAt, halt_until);
        // Re-calibration passes through precharge powerdown: open
        // rows are closed (a no-op under closed-page management).
        bank.rowOpen = false;
    }
    haveCand = false;
    if (auditor)
        auditor->onFrequencyChange(chanId, t, halt_until);
}

MemCtrl::MemCtrl(MemCtrlConfig cfg, Tick start)
    : config(std::move(cfg))
{
    channels.reserve(static_cast<size_t>(config.geom.channels));
    for (int c = 0; c < config.geom.channels; ++c)
        channels.emplace_back(&config, c, 0, start);
}

MemCtrl::MemCtrl(const MemCtrl &other)
    : config(other.config), channels(other.channels),
      freqIdx(other.freqIdx)
{
    reseatChannelPointers();
}

MemCtrl &
MemCtrl::operator=(const MemCtrl &other)
{
    if (this != &other) {
        config = other.config;
        channels = other.channels;
        freqIdx = other.freqIdx;
        reseatChannelPointers();
    }
    return *this;
}

void
MemCtrl::reseatChannelPointers()
{
    // Channels keep only a pointer to the shared config (plus the
    // immutable backend singletons it names); fix them up after
    // copying so they refer to *this* controller's config. Auditor
    // pointers are dropped: a clone (the Offline oracle) would
    // otherwise feed a divergent command stream into the original's
    // shadow state.
    for (auto &ch : channels) {
        ch.reseatConfig(&config);
        ch.attachAuditor(nullptr);
    }
    nextValid = false;
}

void
MemCtrl::attachAuditor(DramTimingAuditor *a)
{
    for (auto &ch : channels)
        ch.attachAuditor(a);
}

void
MemCtrl::enqueue(const MemReq &req)
{
    MemReq stamped = req;
    stamped.coord = mapAddress(req.addr, config.geom);
    Channel &ch = channels[static_cast<size_t>(stamped.coord.channel)];
    // The earliest-channel cache only depends on each channel's
    // next-event tick. An arrival that leaves this channel's tick
    // unchanged (its cached candidate survived the scheduler's
    // selective invalidation in Channel::enqueue) cannot move the
    // cross-channel minimum, so the scan result stays valid. Probing
    // before the append is idempotent: the kernel re-evaluates every
    // channel after each dispatched event, so the
    // candidate/hysteresis state already reflects the current queue
    // depths.
    Tick before = ch.nextEventTick();
    ch.enqueue(stamped);
    if (ch.nextEventTick() != before)
        nextValid = false;
}

Tick
MemCtrl::recomputeNext() const
{
    // Deterministic tie-break: strict < keeps the lowest channel
    // index at equal ticks, matching the historical scan order.
    nextTick = maxTick;
    nextChan = -1;
    for (size_t c = 0; c < channels.size(); ++c) {
        Tick tk = channels[c].nextEventTick();
        if (tk < nextTick) {
            nextTick = tk;
            nextChan = static_cast<int>(c);
        }
    }
    nextValid = true;
    return nextTick;
}

std::optional<MemCompletion>
MemCtrl::step()
{
    nextEventTick();  // refresh the earliest-channel cache if dirty
    COSCALE_CHECK(nextChan >= 0, "MemCtrl::step with no pending events");
    Channel &who = channels[static_cast<size_t>(nextChan)];
    nextValid = false;
    return who.step();
}

void
MemCtrl::setFrequency(ChannelSel sel, int idx, Tick now)
{
    COSCALE_CHECK(idx >= 0 && idx < config.ladder.size(),
                  "bad memory frequency index %d", idx);
    if (sel.isAll()) {
        freqIdx = idx;
        for (int c = 0; c < numChannels(); ++c)
            setFrequency(ChannelSel::one(c), idx, now);
        return;
    }
    COSCALE_CHECK(sel.ch >= 0 && sel.ch < numChannels(),
                  "bad channel %d", sel.ch);
    Channel &channel = channels[static_cast<size_t>(sel.ch)];
    if (idx == channel.freqIndex())
        return;
    Tick t_ck_new = periodTicks(config.ladder.freq(idx));
    Tick halt = now
                + t_ck_new * static_cast<Tick>(config.timing.recalCycles)
                + nsToTicks(config.timing.recalExtraNs);
    channel.changeFrequency(idx, halt);
    nextValid = false;
}

bool
MemCtrl::perChannelFrequencies() const
{
    for (size_t c = 1; c < channels.size(); ++c) {
        if (channels[c].freqIndex() != channels[0].freqIndex())
            return true;
    }
    return false;
}

ChannelCounters
MemCtrl::totalCounters() const
{
    ChannelCounters sum;
    for (const auto &ch : channels)
        sum += ch.counters();
    return sum;
}

} // namespace coscale
