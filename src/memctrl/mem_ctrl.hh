/**
 * @file
 * The on-chip memory controller and per-channel DRAM scheduling model.
 *
 * The backend is pluggable (dram/mem_backend.hh): a Scheduler picks
 * the next request (paper FCFS-with-write-drain or FR-FCFS), a
 * RowPolicyModel manages the row buffer (closed-page auto-precharge
 * or open-page), and a DramStandard names the timing/current package
 * (DDR3-800, DDR4-1600, LPDDR4-1600). The default MemBackendSel is
 * the paper's Section 4.1 configuration and reproduces the
 * pre-refactor controller bit-for-bit.
 *
 * Timing constraints modelled per channel: bank cycle time (tRCD /
 * tCL / tRAS / tRTP / tWR / tRP), same-rank ACT-to-ACT spacing (tRRD),
 * the four-activate window (tFAW), shared data-bus occupancy (burst
 * cycles per the standard), periodic per-rank refresh (tREFI / tRFC),
 * and frequency-recalibration halts (recalCycles memory cycles plus
 * recalExtraNs, both per-standard).
 *
 * Everything is a plain value type so the whole simulator can be
 * deep-copied (needed by the Offline oracle policy): the Scheduler
 * and RowPolicyModel are immutable singletons re-bound from the
 * config on copy, and every piece of mutable scheduling state (queues,
 * bank/rank state, drain hysteresis, the FR-FCFS anti-starvation
 * counter) is an ordinary copyable member.
 */

#ifndef COSCALE_MEMCTRL_MEM_CTRL_HH
#define COSCALE_MEMCTRL_MEM_CTRL_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "common/dvfs.hh"
#include "common/types.hh"
#include "dram/ddr3_params.hh"
#include "dram/mem_backend.hh"
#include "dram/row_policy.hh"
#include "memctrl/mem_req.hh"
#include "memctrl/scheduler.hh"
#include "stats/perf_counters.hh"

namespace coscale {

class DramTimingAuditor;

/** Memory-controller configuration. */
struct MemCtrlConfig
{
    MemGeometry geom;
    DramTimingParams timing;
    FreqLadder ladder;        //!< bus-frequency ladder (index 0 fastest)
    int writeHighWater = 16;  //!< write-drain trigger (half of 32-deep)
    int writeLowWater = 8;    //!< write-drain release
    double respFixedNs = 10.0; //!< MC pipeline + link overhead per read
    MemBackendSel backend;     //!< scheduler / row policy / standard
};

/**
 * Which channel a frequency change targets: one channel (the
 * MultiScale per-channel domains) or all of them (the paper's shared
 * bus domain).
 */
struct ChannelSel
{
    int ch = -1;  //!< channel index, or -1 for every channel

    static constexpr ChannelSel all() { return ChannelSel{}; }
    static constexpr ChannelSel one(int c) { return ChannelSel{c}; }
    constexpr bool isAll() const { return ch < 0; }
};

/** One DRAM channel: queues, bank/rank state, and the scheduler. */
class Channel
{
  public:
    Channel() = default;
    Channel(const MemCtrlConfig *cfg, int id, int freq_idx, Tick start);

    /** Add a transaction to the appropriate queue. */
    void enqueue(const MemReq &req);

    /**
     * Absolute tick of the next command issue, or maxTick if idle.
     * The value is cached behind a dirty flag that enqueue(), step(),
     * and changeFrequency() invalidate; repeated calls between state
     * changes cost one branch (inline fast path).
     */
    Tick
    nextEventTick() const
    {
        if (!haveCand && !selectCandidate())
            return maxTick;
        return candIssueAt;
    }

    /**
     * Test hook: drop the cached candidate so the next
     * nextEventTick() recomputes from scratch. Recomputation is
     * idempotent, so cached == recomputed pins the cache-invalidation
     * contract (see test_memctrl.cc).
     */
    void invalidateCandidateForTest() { haveCand = false; }

    /**
     * Commit the pending command. Must only be called when the
     * simulated time has reached nextEventTick(). Returns a
     * completion when a read or prefetch was issued.
     */
    std::optional<MemCompletion> step();

    /** Apply a bus-frequency change taking effect after @p halt_until. */
    void changeFrequency(int freq_idx, Tick halt_until);

    /**
     * Re-point at the owning controller's config after a copy and
     * re-bind the backend singletons it names.
     */
    void
    reseatConfig(const MemCtrlConfig *c)
    {
        cfg = c;
        bindBackend();
    }

    /**
     * Attach a timing-legality auditor (check/dram_audit.hh), seeding
     * it with this channel's live floors so mid-run attachment never
     * false-fires. Pass nullptr to detach. The pointer is non-owning
     * and deliberately NOT carried across copies: a cloned controller
     * (the Offline oracle) would otherwise replay a divergent command
     * stream into the same shadow.
     */
    void attachAuditor(DramTimingAuditor *a);

    /** Cumulative counters. */
    const ChannelCounters &counters() const { return stats; }

    /** Current bus-frequency ladder index of this channel. */
    int freqIndex() const { return freqIdx; }

    /** Outstanding queue depths (for tests). */
    size_t readQueueDepth() const { return readQ.size(); }
    size_t writeQueueDepth() const { return writeQ.size(); }
    bool drainingWrites() const { return drainMode; }

  private:
    struct RankState
    {
        Tick actWindow[4] = {0, 0, 0, 0}; //!< last four ACT ticks
        int actCursor = 0;
        std::uint64_t actCount = 0; //!< ACTs issued so far
        Tick lastActAt = 0;        //!< for tRRD
        Tick nextRefreshDue = 0;
        Tick refreshUntil = 0;
        Tick activeUntil = 0;      //!< power accounting (union of use)
    };

    /** Resolve the backend singletons named by the config. */
    void
    bindBackend()
    {
        sched = &Scheduler::get(cfg->backend.sched);
        rowPol = &RowPolicyModel::get(cfg->backend.rowPolicy);
    }

    /**
     * Pick the next request to issue into the candidate cache;
     * updates drainMode. Const because it only refreshes the cache:
     * recomputing from identical queue state always reproduces the
     * same candidate (the drain-hysteresis update is idempotent
     * between queue changes, and Scheduler::pick() is pure).
     */
    bool selectCandidate() const;

    /** Earliest ACT (or CAS for open-page hits) tick for @p req. */
    Tick computeIssueTick(const MemReq &req) const;

    /**
     * Apply refreshes due on @p rank before @p t; may push t later.
     * @p commit_refreshes distinguishes the real issue path (step()
     * passes the live refresh counter) from the timing probes in
     * computeIssueTick(), which run on a copy of the rank state and
     * pass nullptr so probing never commits stats.
     */
    Tick applyRefreshes(RankState &rank, Tick t,
                        std::uint64_t *commit_refreshes) const;

    /** Account rank-active time for the power model. */
    void accountActive(RankState &rank, Tick from, Tick to);

    const MemCtrlConfig *cfg = nullptr;
    const Scheduler *sched = nullptr;     //!< singleton; see bindBackend
    const RowPolicyModel *rowPol = nullptr; //!< singleton
    DramTimingAuditor *auditor = nullptr; //!< non-owning; not copied
    ResolvedTiming t;
    int chanId = 0;
    int freqIdx = 0;

    std::deque<MemReq> readQ;
    std::deque<MemReq> writeQ;
    std::vector<BankState> banks;  //!< [rank * banksPerRank + bank]
    std::vector<RankState> ranks;
    Tick busFreeAt = 0;
    Tick haltUntil = 0;
    Tick lastCommitAt = 0;

    /**
     * Consecutive commits that served a request other than the front
     * of its queue (FR-FCFS row-hit bypasses). Committed state — only
     * step() updates it — feeding Scheduler::pick()'s anti-starvation
     * guard through QueueView.
     */
    std::uint32_t frontBypasses = 0;

    // Candidate cache: haveCand is the (inverted) dirty flag, cleared
    // by enqueue/step/changeFrequency. drainMode is scheduler state,
    // but it only ever changes inside selectCandidate() and its
    // update is a pure function of the queue depths, so refreshing
    // the cache from a const context is safe.
    mutable bool drainMode = false;
    mutable bool haveCand = false;
    mutable bool candIsWrite = false;
    mutable std::uint32_t candIndex = 0;
    mutable Tick candIssueAt = 0;

    ChannelCounters stats;
};

/** The multi-channel memory controller with a shared frequency domain. */
class MemCtrl
{
  public:
    MemCtrl() = default;
    MemCtrl(MemCtrlConfig cfg, Tick start);

    // Value semantics: channels point back into our config, so the
    // pointer must be re-seated on copy/move.
    MemCtrl(const MemCtrl &other);
    MemCtrl &operator=(const MemCtrl &other);

    /** Route a transaction to its channel. */
    void enqueue(const MemReq &req);

    /**
     * Earliest pending command across channels (maxTick when idle).
     * Cached with the winning channel behind a dirty flag so the
     * event kernel's reschedule path and step() share one scan.
     */
    Tick
    nextEventTick() const
    {
        return nextValid ? nextTick : recomputeNext();
    }

    /** Issue the earliest pending command. */
    std::optional<MemCompletion> step();

    /** Test hook: force a from-scratch next-event recompute. */
    void
    invalidateCandidatesForTest()
    {
        nextValid = false;
        for (auto &ch : channels)
            ch.invalidateCandidateForTest();
    }

    /**
     * Change the bus frequency of @p sel: every channel
     * (ChannelSel::all(), the paper's shared domain — all accesses
     * halt for the re-calibration of recalCycles memory cycles plus
     * recalExtraNs) or a single channel (ChannelSel::one(), the
     * MultiScale per-channel domains — only that channel halts). The
     * single audited entry point for memory-frequency changes.
     */
    void setFrequency(ChannelSel sel, int idx, Tick now);

    int frequencyIndex() const { return freqIdx; }
    Freq busFreq() const { return config.ladder.freq(freqIdx); }

    /**
     * Attach @p a to every channel (nullptr detaches). Auditors are
     * dropped on copy: clones run un-audited.
     */
    void attachAuditor(DramTimingAuditor *a);

    int
    channelFrequencyIndex(int ch) const
    {
        return channels[static_cast<size_t>(ch)].freqIndex();
    }

    Freq
    channelBusFreq(int ch) const
    {
        return config.ladder.freq(channelFrequencyIndex(ch));
    }

    /** True if any two channels run at different frequencies. */
    bool perChannelFrequencies() const;
    const MemCtrlConfig &cfgRef() const { return config; }

    /** Sum of all per-channel counters. */
    ChannelCounters totalCounters() const;

    const ChannelCounters &
    channelCounters(int c) const
    {
        return channels[static_cast<size_t>(c)].counters();
    }

    int numChannels() const { return static_cast<int>(channels.size()); }

    size_t
    totalQueueDepth() const
    {
        size_t n = 0;
        for (const auto &ch : channels)
            n += ch.readQueueDepth() + ch.writeQueueDepth();
        return n;
    }

  private:
    void reseatChannelPointers();

    /** Slow path of nextEventTick(): rescan channels into the cache. */
    Tick recomputeNext() const;

    MemCtrlConfig config;
    std::vector<Channel> channels;
    int freqIdx = 0;

    // Earliest-channel cache, invalidated by enqueue/step/frequency
    // changes (mutable: refreshed from const nextEventTick()).
    mutable bool nextValid = false;
    mutable Tick nextTick = maxTick;
    mutable int nextChan = -1;
};

} // namespace coscale

#endif // COSCALE_MEMCTRL_MEM_CTRL_HH
