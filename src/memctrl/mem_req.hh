/**
 * @file
 * The memory-transaction types exchanged between the LLC and the
 * memory controller, split out of mem_ctrl.hh so the scheduler
 * interface (memctrl/scheduler.hh) can name them without pulling in
 * the whole controller.
 */

#ifndef COSCALE_MEMCTRL_MEM_REQ_HH
#define COSCALE_MEMCTRL_MEM_REQ_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/ddr3_params.hh"

namespace coscale {

/** Kinds of memory transactions the LLC can issue. */
enum class ReqKind { Read, Writeback, Prefetch };

/** A memory transaction as seen by the controller. */
struct MemReq
{
    BlockAddr addr = 0;
    ReqKind kind = ReqKind::Read;
    CoreId core = -1;  //!< requesting core for Read/Prefetch
    Tick arrival = 0;
    std::uint64_t token = 0; //!< matches completions to MSHRs

    /**
     * DRAM coordinates of @p addr, stamped once by MemCtrl::enqueue
     * (the geometry never changes mid-run). The channel scheduler
     * probes a candidate's timing many times between queue changes;
     * carrying the mapping with the request keeps the repeated
     * div/mod address decomposition off that path.
     */
    DramCoord coord{};
};

/** Notification that a read or prefetch finished. */
struct MemCompletion
{
    CoreId core = -1;
    ReqKind kind = ReqKind::Read;
    Tick finishAt = 0;  //!< data back at the LLC
    std::uint64_t token = 0;
};

} // namespace coscale

#endif // COSCALE_MEMCTRL_MEM_REQ_HH
