#include "memctrl/scheduler.hh"

#include <algorithm>

namespace coscale {

namespace {

/**
 * The paper's scheduler (Section 4.1): FCFS among reads, reads
 * prioritized over writebacks until the write queue reaches the high
 * watermark, then drain to the low watermark. The queue choice below
 * and the selective invalidation rules reproduce the pre-interface
 * channel logic exactly — golden fixtures depend on it.
 */
class FcfsDrainScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "fcfs"; }

    Pick
    pick(const QueueView &q, const RowHitProbe &) const override
    {
        Pick p;
        p.isWrite = (q.drainMode || q.readQ->empty())
                    && !q.writeQ->empty();
        p.index = 0;
        return p;
    }

    bool
    invalidateOnArrival(bool arrival_is_write, bool cand_is_write,
                        bool drain_mode) const override
    {
        // An arrival appends at the back of an FCFS queue, so a
        // cached front candidate stays valid unless the arrival
        // changes *which* queue gets served: a writeback steals
        // candidacy from a read only in drain mode, and a read
        // preempts a cached write only when that write was selected
        // for lack of reads (not in drain mode).
        return arrival_is_write ? (!cand_is_write && drain_mode)
                                : (cand_is_write && !drain_mode);
    }
};

/**
 * First-ready FCFS: same write-drain queue choice, but within the
 * served queue the oldest *row-hitting* request (searched over the
 * first searchWindow entries) goes first; with no hit, plain FCFS.
 * Under closed-page management nothing ever hits, so FR-FCFS
 * degenerates to FCFS exactly.
 *
 * Anti-starvation: once starvationLimit consecutive commits have
 * bypassed the served queue's front (Channel::step() keeps the
 * count), the next pick is forced to the front, so the oldest
 * request's delay is bounded no matter how long the row-hit stream
 * runs.
 */
class FrFcfsScheduler final : public Scheduler
{
  public:
    const char *name() const override { return "frfcfs"; }

    Pick
    pick(const QueueView &q, const RowHitProbe &is_hit) const override
    {
        Pick p;
        p.isWrite = (q.drainMode || q.readQ->empty())
                    && !q.writeQ->empty();
        p.index = 0;
        const std::deque<MemReq> &served =
            p.isWrite ? *q.writeQ : *q.readQ;
        if (q.frontBypasses >= starvationLimit)
            return p;
        std::uint32_t n = std::min(
            static_cast<std::uint32_t>(served.size()), searchWindow);
        for (std::uint32_t i = 0; i < n; ++i) {
            if (is_hit(served[i])) {
                p.index = i;
                break;
            }
        }
        return p;
    }

    bool
    invalidateOnArrival(bool, bool, bool) const override
    {
        // A new arrival can hit an open row and out-rank the cached
        // candidate from anywhere in the window; always recompute.
        return true;
    }
};

} // namespace

const Scheduler &
Scheduler::get(MemSched kind)
{
    static const FcfsDrainScheduler fcfs;
    static const FrFcfsScheduler frfcfs;
    if (kind == MemSched::FrFcfs)
        return frfcfs;
    return fcfs;
}

} // namespace coscale
