/**
 * @file
 * Channel command scheduling behind the MemSched enum: which queued
 * request a channel serves next.
 *
 * Like RowPolicyModel (dram/row_policy.hh), implementations are
 * immutable singletons — all mutable scheduler state (the write-drain
 * hysteresis flag, the FR-FCFS anti-starvation counter) lives in the
 * Channel as plain value members, so deep-copying a controller never
 * clones a scheduler.
 *
 * pick() must be a pure function of its inputs: the channel's
 * candidate cache (Channel::nextEventTick()) assumes recomputing the
 * pick between queue changes reproduces the same answer, and the
 * cached == recomputed conformance test in tests/test_memctrl.cc
 * pins that for every scheduler. Anything a scheduler wants to
 * remember across commits must flow through the QueueView fields and
 * be updated by Channel::step(), never from inside pick().
 */

#ifndef COSCALE_MEMCTRL_SCHEDULER_HH
#define COSCALE_MEMCTRL_SCHEDULER_HH

#include <cstdint>
#include <deque>

#include "dram/mem_backend.hh"
#include "memctrl/mem_req.hh"

namespace coscale {

/**
 * Non-owning callable the channel hands to pick() for row-hit
 * probing: would this request hit its bank's open row right now?
 * (A plain function-pointer pair, so building one allocates nothing.)
 */
class RowHitProbe
{
  public:
    using Fn = bool (*)(const void *ctx, const MemReq &req);
    RowHitProbe(const void *ctx, Fn fn) : ctx(ctx), fn(fn) {}
    bool operator()(const MemReq &req) const { return fn(ctx, req); }

  private:
    const void *ctx;
    Fn fn;
};

/** The channel command scheduler interface. */
class Scheduler
{
  public:
    /**
     * After this many consecutive commits that skipped the oldest
     * request of the served queue, FR-FCFS falls back to plain FCFS
     * for one pick. Bounds worst-case queueing delay: the oldest
     * request is served at latest every starvationLimit + 1 commits.
     */
    static constexpr std::uint32_t starvationLimit = 8;

    /** How far into a queue a scheduler searches for a better pick. */
    static constexpr std::uint32_t searchWindow = 32;

    /** The chosen request: which queue, and the index within it. */
    struct Pick
    {
        bool isWrite = false;
        std::uint32_t index = 0;
    };

    /** Read-only scheduling inputs handed to pick(). */
    struct QueueView
    {
        const std::deque<MemReq> *readQ = nullptr;
        const std::deque<MemReq> *writeQ = nullptr;
        /** Write-drain hysteresis flag, already updated for this pick. */
        bool drainMode = false;
        /** Consecutive commits that bypassed the served queue's front. */
        std::uint32_t frontBypasses = 0;
    };

    virtual ~Scheduler() = default;

    /** Short lowercase scheduler name (matches memSchedName()). */
    virtual const char *name() const = 0;

    /**
     * Choose the next request. At least one queue is non-empty. Must
     * be pure (see file comment); @p is_hit may be called freely.
     */
    virtual Pick pick(const QueueView &q,
                      const RowHitProbe &is_hit) const = 0;

    /**
     * Does an arrival at the back of a queue invalidate the cached
     * candidate? Called by Channel::enqueue() with the cached pick
     * still in place; returning false keeps it (the selective-
     * invalidation fast path the FCFS event kernel relies on).
     */
    virtual bool invalidateOnArrival(bool arrival_is_write,
                                     bool cand_is_write,
                                     bool drain_mode) const = 0;

    /** The immutable singleton implementing @p kind. */
    static const Scheduler &get(MemSched kind);
};

} // namespace coscale

#endif // COSCALE_MEMCTRL_SCHEDULER_HH
