#include "obs/metrics.hh"

#include "common/json.hh"

namespace coscale {

void
MetricsRegistry::writeJson(std::ostream &os) const
{
    JsonWriter j(os);
    j.beginObject();

    j.beginObject("counters");
    for (const auto &[name, c] : counters_)
        j.field(name, c.value());
    j.endObject();

    j.beginObject("gauges");
    for (const auto &[name, g] : gauges_)
        j.field(name, g.value());
    j.endObject();

    j.beginObject("accums");
    for (const auto &[name, a] : accums_) {
        j.beginObject(name);
        j.field("count", a.count());
        j.field("sum", a.sum());
        j.field("mean", a.mean());
        j.field("min", a.min());
        j.field("max", a.max());
        j.endObject();
    }
    j.endObject();

    j.beginObject("histograms");
    for (const auto &[name, h] : hists_) {
        j.beginObject(name);
        j.field("lo", h.low());
        j.field("hi", h.high());
        j.field("underflow", h.underflow());
        j.field("overflow", h.overflow());
        j.beginArray("buckets");
        for (int b = 0; b < h.numBuckets(); ++b)
            j.value(h.bucket(b));
        j.endArray();
        j.endObject();
    }
    j.endObject();

    j.endObject();
}

} // namespace coscale
