#include "obs/trace_sink.hh"

#include <fstream>
#include <stdexcept>
#include <utility>

#include "common/json.hh"

namespace coscale {

namespace {

/** Emit one field into an open JSON object. */
void
writeField(JsonWriter &j, const TraceField &fld)
{
    switch (fld.kind) {
      case TraceField::Kind::F64:
        j.field(fld.key, fld.f64);
        break;
      case TraceField::Kind::U64:
        j.field(fld.key, fld.u64);
        break;
      case TraceField::Kind::I64:
        j.field(fld.key, static_cast<int>(fld.i64));
        break;
      case TraceField::Kind::Str:
        j.field(fld.key, fld.str);
        break;
      case TraceField::Kind::F64Vec:
        j.beginArray(fld.key);
        for (double v : fld.f64v)
            j.value(v);
        j.endArray();
        break;
      case TraceField::Kind::IntVec:
        j.beginArray(fld.key);
        for (int v : fld.intv)
            j.value(v);
        j.endArray();
        break;
    }
}

bool
isScalarNumber(const TraceField &fld)
{
    return fld.kind == TraceField::Kind::F64
           || fld.kind == TraceField::Kind::U64
           || fld.kind == TraceField::Kind::I64;
}

/** File-owning wrapper around either streaming backend. */
class FileTraceSink final : public TraceSink
{
  public:
    FileTraceSink(const std::string &path, TraceFormat format)
        : out(path)
    {
        if (!out)
            throw std::runtime_error("cannot open trace file '" + path
                                     + "'");
        if (format == TraceFormat::Chrome)
            inner = std::make_unique<ChromeTraceSink>(out);
        else
            inner = std::make_unique<JsonlTraceSink>(out);
    }

    void write(const TraceEvent &ev) override { inner->write(ev); }

    void
    finish() override
    {
        inner->finish();
        out.flush();
    }

  private:
    std::ofstream out;
    std::unique_ptr<TraceSink> inner;
};

} // namespace

bool
parseTraceFormat(const std::string &text, TraceFormat *out)
{
    if (text == "jsonl") {
        *out = TraceFormat::Jsonl;
        return true;
    }
    if (text == "chrome") {
        *out = TraceFormat::Chrome;
        return true;
    }
    return false;
}

const TraceField *
TraceEvent::find(const std::string &key) const
{
    for (const TraceField &fld : fieldVec) {
        if (fld.key == key)
            return &fld;
    }
    return nullptr;
}

double
TraceEvent::num(const std::string &key) const
{
    const TraceField *fld = find(key);
    if (!fld)
        return 0.0;
    switch (fld->kind) {
      case TraceField::Kind::F64:
        return fld->f64;
      case TraceField::Kind::U64:
        return static_cast<double>(fld->u64);
      case TraceField::Kind::I64:
        return static_cast<double>(fld->i64);
      default:
        return 0.0;
    }
}

void
JsonlTraceSink::write(const TraceEvent &ev)
{
    JsonWriter j(os);
    j.beginObject();
    j.field("tick", static_cast<std::uint64_t>(ev.tick()));
    j.field("cat", ev.category());
    j.field("name", ev.name());
    j.beginObject("args");
    for (const TraceField &fld : ev.fields())
        writeField(j, fld);
    j.endObject();
    j.endObject();
    os << "\n";
}

ChromeTraceSink::ChromeTraceSink(std::ostream &os) : os(os)
{
    os << "{\"traceEvents\":[\n";
}

void
ChromeTraceSink::write(const TraceEvent &ev)
{
    if (!first)
        os << ",\n";
    first = false;

    bool counter = !ev.fields().empty();
    for (const TraceField &fld : ev.fields())
        counter = counter && isScalarNumber(fld);

    JsonWriter j(os);
    j.beginObject();
    j.field("name", ev.name());
    j.field("cat", ev.category());
    j.field("ph", counter ? "C" : "i");
    if (!counter)
        j.field("s", "g");
    // trace_event timestamps are microseconds; ticks are picoseconds.
    j.field("ts", static_cast<double>(ev.tick()) / 1e6);
    j.field("pid", 0);
    j.field("tid", 0);
    j.beginObject("args");
    for (const TraceField &fld : ev.fields())
        writeField(j, fld);
    j.endObject();
    j.endObject();
}

void
ChromeTraceSink::finish()
{
    if (!finished) {
        os << "\n]}\n";
        finished = true;
    }
    os.flush();
}

std::unique_ptr<TraceSink>
openTraceSink(const TraceSpec &spec)
{
    return std::make_unique<FileTraceSink>(spec.path, spec.format);
}

} // namespace coscale
