/**
 * @file
 * A registry of named run metrics — counters, gauges, scalar
 * accumulators, and histograms — built on the stats/accum.hh
 * primitives. One registry belongs to one run (or one engine batch);
 * nothing here takes a lock.
 *
 * Names are stored in ordered maps and serialised sorted, so a
 * registry's JSON dump is deterministic: same run, same bytes.
 */

#ifndef COSCALE_OBS_METRICS_HH
#define COSCALE_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

#include "stats/accum.hh"

namespace coscale {

/** Named counters/gauges/accumulators/histograms for one run. */
class MetricsRegistry
{
  public:
    /** Monotonic event count. */
    class Counter
    {
      public:
        void inc(std::uint64_t by = 1) { n += by; }
        std::uint64_t value() const { return n; }

      private:
        std::uint64_t n = 0;
    };

    /** Last-write-wins scalar. */
    class Gauge
    {
      public:
        void set(double value) { v = value; }
        double value() const { return v; }

      private:
        double v = 0.0;
    };

    /** The counter named @p name, created on first use. */
    Counter &counter(const std::string &name) { return counters_[name]; }

    Gauge &gauge(const std::string &name) { return gauges_[name]; }

    Accum &accum(const std::string &name) { return accums_[name]; }

    /**
     * The histogram named @p name; the bounds apply only on first
     * use (an existing histogram is returned as-is).
     */
    Histogram &
    histogram(const std::string &name, double lo, double hi, int buckets)
    {
        auto it = hists_.find(name);
        if (it == hists_.end()) {
            it = hists_.emplace(name, Histogram(lo, hi, buckets)).first;
        }
        return it->second;
    }

    bool
    empty() const
    {
        return counters_.empty() && gauges_.empty() && accums_.empty()
               && hists_.empty();
    }

    /**
     * One deterministic JSON object:
     *   {"counters":{...},"gauges":{...},
     *    "accums":{name:{count,sum,mean,min,max}},
     *    "histograms":{name:{lo,hi,underflow,overflow,buckets:[...]}}}
     */
    void writeJson(std::ostream &os) const;

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Gauge> gauges_;
    std::map<std::string, Accum> accums_;
    std::map<std::string, Histogram> hists_;
};

} // namespace coscale

#endif // COSCALE_OBS_METRICS_HH
