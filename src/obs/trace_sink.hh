/**
 * @file
 * The epoch-level tracing layer: structured, sim-tick-timestamped
 * events emitted at epoch boundaries (and other coarse simulation
 * milestones) through a pluggable TraceSink.
 *
 * Determinism contract (see DESIGN.md, "Observability"): every event
 * is a pure function of the run that produced it. Timestamps are
 * simulated ticks, never wall-clock; doubles are formatted with a
 * fixed printf conversion; field order is the emission order. Two
 * identical RunRequests therefore produce byte-identical trace files
 * regardless of thread count or host — which is what lets the test
 * suite check traces in as golden fixtures.
 *
 * Hot-path cost contract: the disabled state is a null pointer, so
 * instrumented code guards with a single branch and builds no event.
 * Sinks are owned by exactly one run (no sharing across engine
 * workers), so no backend takes a lock.
 */

#ifndef COSCALE_OBS_TRACE_SINK_HH
#define COSCALE_OBS_TRACE_SINK_HH

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.hh"

namespace coscale {

/** On-disk encodings understood by openTraceSink(). */
enum class TraceFormat
{
    Jsonl,   //!< one JSON object per line (the golden-fixture form)
    Chrome,  //!< chrome://tracing / Perfetto trace_event JSON
};

/** Parse "jsonl" / "chrome"; returns false on anything else. */
bool parseTraceFormat(const std::string &text, TraceFormat *out);

/** A --trace request: destination path plus encoding. */
struct TraceSpec
{
    std::string path;  //!< empty = tracing disabled
    TraceFormat format = TraceFormat::Jsonl;

    bool enabled() const { return !path.empty(); }
};

/** One typed key/value pair of a trace event. */
struct TraceField
{
    enum class Kind
    {
        F64,
        U64,
        I64,
        Str,
        F64Vec,
        IntVec,
    };

    std::string key;
    Kind kind = Kind::F64;
    double f64 = 0.0;
    std::uint64_t u64 = 0;
    std::int64_t i64 = 0;
    std::string str;
    std::vector<double> f64v;
    std::vector<int> intv;
};

/**
 * A structured trace event: tick, category, name, and ordered fields.
 * Built with the chainable f() appenders and handed to a sink by
 * value:
 *
 *   sink->write(TraceEvent(now, "epoch", "epoch")
 *                   .f("mem_idx", cfg.memIdx)
 *                   .f("cpu_w", power.cpuW));
 */
class TraceEvent
{
  public:
    TraceEvent(Tick tick, std::string category, std::string name)
        : tickAt(tick), cat(std::move(category)), label(std::move(name))
    {
    }

    TraceEvent &
    f(const char *key, double v)
    {
        TraceField fld;
        fld.key = key;
        fld.kind = TraceField::Kind::F64;
        fld.f64 = v;
        fieldVec.push_back(std::move(fld));
        return *this;
    }

    TraceEvent &
    f(const char *key, std::uint64_t v)
    {
        TraceField fld;
        fld.key = key;
        fld.kind = TraceField::Kind::U64;
        fld.u64 = v;
        fieldVec.push_back(std::move(fld));
        return *this;
    }

    TraceEvent &
    f(const char *key, int v)
    {
        TraceField fld;
        fld.key = key;
        fld.kind = TraceField::Kind::I64;
        fld.i64 = v;
        fieldVec.push_back(std::move(fld));
        return *this;
    }

    TraceEvent &
    f(const char *key, const std::string &v)
    {
        TraceField fld;
        fld.key = key;
        fld.kind = TraceField::Kind::Str;
        fld.str = v;
        fieldVec.push_back(std::move(fld));
        return *this;
    }

    TraceEvent &
    f(const char *key, std::vector<double> v)
    {
        TraceField fld;
        fld.key = key;
        fld.kind = TraceField::Kind::F64Vec;
        fld.f64v = std::move(v);
        fieldVec.push_back(std::move(fld));
        return *this;
    }

    TraceEvent &
    f(const char *key, std::vector<int> v)
    {
        TraceField fld;
        fld.key = key;
        fld.kind = TraceField::Kind::IntVec;
        fld.intv = std::move(v);
        fieldVec.push_back(std::move(fld));
        return *this;
    }

    Tick tick() const { return tickAt; }
    const std::string &category() const { return cat; }
    const std::string &name() const { return label; }
    const std::vector<TraceField> &fields() const { return fieldVec; }

    /** The field named @p key, or nullptr. */
    const TraceField *find(const std::string &key) const;

    /** Numeric value of field @p key (0.0 when absent/non-numeric). */
    double num(const std::string &key) const;

  private:
    Tick tickAt;
    std::string cat;
    std::string label;
    std::vector<TraceField> fieldVec;
};

/**
 * Where trace events go. The null backend is simply a nullptr
 * TraceSink* — instrumentation sites branch on the pointer and never
 * construct an event when tracing is off.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    TraceSink() = default;
    TraceSink(const TraceSink &) = delete;
    TraceSink &operator=(const TraceSink &) = delete;

    virtual void write(const TraceEvent &ev) = 0;

    /**
     * Write any trailer and flush. Idempotent. The runner finishes
     * sinks it opened from a TraceSpec; a borrowed sink
     * (RunRequest::withTrace(TraceSink&)) is finished by its owner.
     */
    virtual void finish() {}
};

/** JSONL backend: one self-contained JSON object per event line. */
class JsonlTraceSink : public TraceSink
{
  public:
    explicit JsonlTraceSink(std::ostream &os) : os(os) {}

    void write(const TraceEvent &ev) override;
    void finish() override { os.flush(); }

  private:
    std::ostream &os;
};

/**
 * Chrome trace_event backend ({"traceEvents":[...]}): events whose
 * fields are all scalar numbers become counter ("C") events — they
 * plot as tracks in chrome://tracing / Perfetto — and everything else
 * becomes a global instant ("i") event carrying its args verbatim.
 * Timestamps are simulated microseconds (tick / 1e6).
 */
class ChromeTraceSink : public TraceSink
{
  public:
    explicit ChromeTraceSink(std::ostream &os);

    void write(const TraceEvent &ev) override;
    void finish() override;

  private:
    std::ostream &os;
    bool first = true;
    bool finished = false;
};

/** In-memory backend for tests: keeps every event, loses nothing to
 *  formatting. */
class VectorTraceSink : public TraceSink
{
  public:
    void write(const TraceEvent &ev) override { eventVec.push_back(ev); }

    const std::vector<TraceEvent> &events() const { return eventVec; }

  private:
    std::vector<TraceEvent> eventVec;
};

/**
 * Open a file-backed sink for @p spec (which must be enabled()).
 * Throws std::runtime_error when the file cannot be created.
 */
std::unique_ptr<TraceSink> openTraceSink(const TraceSpec &spec);

} // namespace coscale

#endif // COSCALE_OBS_TRACE_SINK_HH
