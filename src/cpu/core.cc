#include "cpu/core.hh"

#include <algorithm>

#include "check/contract.hh"
#include "common/log.hh"

namespace coscale {

Core::Core(CoreId id, const CoreConfig *cfg, TraceHandle trace_in,
           Tick start)
    : coreId(id), cfg(cfg), trace(std::move(trace_in))
{
    COSCALE_CHECK(static_cast<bool>(trace), "core %d has no trace", id);
    freqIdx = 0;
    period = periodTicks(cfg->ladder.freq(0));
    current = trace->next();
    computeStart = start;
    gapCyclesLeft = current.gapCycles;
    computeEndAt = computeStart + gapCyclesLeft * period;
    state = State::Compute;
    wakeAt = computeEndAt;
}

void
Core::retireGap(Tick now)
{
    stats.tic += current.gapInstrs;
    stats.computeTicks += now - computeStart;
    stats.aluOps += current.aluOps;
    stats.fpuOps += current.fpuOps;
    stats.branchOps += current.branchOps;
    stats.memOps += current.memOps;
    if (completionAt == maxTick && stats.tic >= cfg->instrBudget)
        completionAt = now;
    if (budgetMarkerAt == maxTick && stats.tic >= budgetMarkerTic)
        budgetMarkerAt = now;
}

void
Core::drainResolved(Tick now)
{
    while (!outstanding.empty() && outstanding.front().resolveAt <= now)
        outstanding.pop_front();
}

bool
Core::mustStallForMisses() const
{
    if (outstanding.empty())
        return false;
    if (static_cast<int>(outstanding.size()) >= cfg->maxOutstanding)
        return true;
    std::uint64_t dist = stats.tic - outstanding.front().atInstr;
    return dist >= static_cast<std::uint64_t>(cfg->oooWindow);
}

void
Core::loadNextRecord(Tick now)
{
    drainResolved(now);
    if (cfg->ooo && mustStallForMisses()) {
        state = State::StallMem;
        stallStart = now;
        stalledOnFront = true;
        stats.tls += 1;
        Tick resolve = outstanding.front().resolveAt;
        wakeAt = resolve == maxTick
                     ? maxTick
                     : std::max(resolve, transitionUntil);
        return;
    }
    stalledOnFront = false;
    current = trace->next();
    computeStart = std::max(now, transitionUntil);
    gapCyclesLeft = current.gapCycles;
    computeEndAt = computeStart + gapCyclesLeft * period;
    state = State::Compute;
    wakeAt = computeEndAt;
}

CoreEvent
Core::step(Tick now)
{
    CoreEvent ev;
    switch (state) {
      case State::Compute:
        retireGap(now);
        stats.tla += 1;
        state = State::NeedLlc;
        wakeAt = maxTick;
        ev.wantsLlc = true;
        ev.addr = current.addr;
        ev.write = current.isWrite != 0;
        return ev;

      case State::StallL2:
        stats.l2StallTicks += now - stallStart;
        loadNextRecord(now);
        return ev;

      case State::StallMem:
        stats.memStallTicks += now - stallStart;
        loadNextRecord(now);
        return ev;

      case State::NeedLlc:
        coscale_panic("core %d stepped while awaiting LLC result",
                      coreId);
    }
    return ev;
}

void
Core::completeHit(Tick now, Tick hit_latency)
{
    COSCALE_CHECK(state == State::NeedLlc,
                  "completeHit in wrong state on core %d", coreId);
    stats.tms += 1;
    state = State::StallL2;
    stallStart = now;
    wakeAt = std::max(now + hit_latency, transitionUntil);
}

std::uint64_t
Core::sendToMemory(Tick now)
{
    COSCALE_CHECK(state == State::NeedLlc,
                  "sendToMemory in wrong state on core %d", coreId);
    std::uint64_t token = nextToken++;
    stats.tlm += 1;
    outstanding.push_back(OutMiss{token, stats.tic, maxTick});

    if (!cfg->ooo) {
        stats.tls += 1;
        state = State::StallMem;
        stallStart = now;
        stalledOnFront = true;
        wakeAt = maxTick;
    } else {
        loadNextRecord(now);
    }
    return token;
}

void
Core::memCompleted(std::uint64_t token, Tick finish_at)
{
    for (auto &m : outstanding) {
        if (m.token == token) {
            m.resolveAt = finish_at;
            break;
        }
    }
    if (state == State::StallMem && stalledOnFront
        && !outstanding.empty()
        && outstanding.front().resolveAt != maxTick) {
        wakeAt = std::max(outstanding.front().resolveAt, transitionUntil);
    }
}

TraceHandle
Core::swapTrace(TraceHandle incoming, Tick now, Tick switch_penalty)
{
    COSCALE_CHECK(state != State::NeedLlc,
                  "context switch during an LLC access on core %d",
                  coreId);
    TraceHandle outgoing = std::move(trace);
    trace = std::move(incoming);

    // Flush: abandon in-flight misses (their completions are matched
    // by token and simply never looked up again) and charge the
    // switch penalty as transition time.
    outstanding.clear();
    stalledOnFront = false;
    transitionUntil = std::max(transitionUntil, now + switch_penalty);
    stats.transitionTicks += switch_penalty;

    current = trace->next();
    computeStart = std::max(now, transitionUntil);
    gapCyclesLeft = current.gapCycles;
    computeEndAt = computeStart + gapCyclesLeft * period;
    state = State::Compute;
    wakeAt = computeEndAt;
    return outgoing;
}

void
Core::setFrequencyIndex(int idx, Tick now)
{
    COSCALE_CHECK(idx >= 0 && idx < cfg->ladder.size(),
                  "bad core frequency index %d", idx);
    if (idx == freqIdx)
        return;
    COSCALE_CHECK(state != State::NeedLlc,
                  "frequency change during an LLC access on core %d",
                  coreId);

    freqIdx = idx;
    Tick new_period = periodTicks(cfg->ladder.freq(idx));
    transitionUntil = now + cfg->transitionTicks;
    stats.transitionTicks += cfg->transitionTicks;

    switch (state) {
      case State::Compute: {
        Tick executed = now - computeStart;
        stats.computeTicks += executed;
        std::uint64_t cycles_done = executed / period;
        gapCyclesLeft =
            gapCyclesLeft > cycles_done ? gapCyclesLeft - cycles_done : 0;
        period = new_period;
        computeStart = transitionUntil;
        computeEndAt = computeStart + gapCyclesLeft * period;
        wakeAt = computeEndAt;
        break;
      }
      case State::StallL2:
        period = new_period;
        wakeAt = std::max(wakeAt, transitionUntil);
        break;
      case State::StallMem:
        period = new_period;
        if (wakeAt != maxTick)
            wakeAt = std::max(wakeAt, transitionUntil);
        break;
      case State::NeedLlc:
        break;  // unreachable; asserted above
    }
}

} // namespace coscale
