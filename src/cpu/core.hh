/**
 * @file
 * Trace-driven core model (Section 4.1): in-order, single-issue,
 * one outstanding LLC miss, Alpha-like. Optionally emulates an
 * out-of-order instruction window (Section 4.2.4) that overlaps LLC
 * misses within a 128-instruction window (MLP but no extra ILP).
 *
 * The core alternates between "compute" segments (gap cycles at the
 * current core frequency) and LLC accesses whose latency the cache
 * and memory system determine. Per-core DVFS transitions halt the
 * core for a configurable few tens of microseconds.
 *
 * Maintains the CoScale counter set: TIC/TMS/TLA/TLM/TLS, the four
 * Core Activity Counters, and stall-time integrators.
 */

#ifndef COSCALE_CPU_CORE_HH
#define COSCALE_CPU_CORE_HH

#include <deque>

#include "common/dvfs.hh"
#include "common/types.hh"
#include "stats/perf_counters.hh"
#include "trace/trace.hh"

namespace coscale {

/** Per-core static configuration. */
struct CoreConfig
{
    FreqLadder ladder;                    //!< DVFS ladder (idx 0 fastest)
    Tick transitionTicks = 30 * tickPerUs; //!< DVFS halt per change
    bool ooo = false;                     //!< emulate MLP window
    int oooWindow = 128;                  //!< instruction window
    int maxOutstanding = 16;              //!< MSHRs in OoO mode
    std::uint64_t instrBudget = 20'000'000; //!< completion point
};

/** What a core wants from the System when its next event fires. */
struct CoreEvent
{
    bool wantsLlc = false;
    BlockAddr addr = 0;
    bool write = false;
};

/** One trace-driven core. Plain value type (config pointer reseated). */
class Core
{
  public:
    Core() = default;
    Core(CoreId id, const CoreConfig *cfg, TraceHandle trace, Tick start);

    /** Re-point at the owning system's config after a copy. */
    void reseatConfig(const CoreConfig *c) { cfg = c; }

    /** Absolute tick of the next core event (maxTick if blocked). */
    Tick nextEventTick() const { return wakeAt; }

    /**
     * Advance the core; must be called when simulated time reaches
     * nextEventTick(). May request an LLC access, in which case the
     * System must follow up with completeHit() or sendToMemory().
     */
    CoreEvent step(Tick now);

    /** The pending LLC access hit; resume after @p hit_latency. */
    void completeHit(Tick now, Tick hit_latency);

    /**
     * The pending LLC access missed and was dispatched to memory.
     * @return the request token to match the completion with.
     */
    std::uint64_t sendToMemory(Tick now);

    /** A read for @p token finishes at @p finish_at. */
    void memCompleted(std::uint64_t token, Tick finish_at);

    /** Change this core's DVFS state (halts the core briefly). */
    void setFrequencyIndex(int idx, Tick now);

    /**
     * Context switch: replace the running trace with @p incoming and
     * return the outgoing one. The pipeline and MSHRs are flushed
     * (in-flight misses are abandoned; their completions will be
     * ignored) and execution restarts on the incoming trace after a
     * switch penalty. Hardware counters keep accumulating — they are
     * per-core, not per-thread; per-thread attribution is the OS's
     * (the System's) job.
     */
    TraceHandle swapTrace(TraceHandle incoming, Tick now,
                          Tick switch_penalty);

    /**
     * Arm a marker that records the tick at which this core's
     * cumulative instruction count (TIC) crosses @p tic_value — how
     * the scheduler detects a thread reaching its budget mid-epoch.
     */
    void
    setBudgetMarker(std::uint64_t tic_value)
    {
        budgetMarkerTic = tic_value;
        budgetMarkerAt = maxTick;
    }

    /** Tick the armed marker fired at (maxTick if not yet). */
    Tick budgetMarkerTick() const { return budgetMarkerAt; }

    int frequencyIndex() const { return freqIdx; }
    Freq freq() const { return cfg->ladder.freq(freqIdx); }

    const CoreCounters &counters() const { return stats; }
    std::uint64_t instrsRetired() const { return stats.tic; }

    /** True once the instruction budget has been reached. */
    bool done() const { return completionAt != maxTick; }
    Tick completionTick() const { return completionAt; }

    CoreId id() const { return coreId; }
    int outstandingMisses() const
    {
        return static_cast<int>(outstanding.size());
    }

  private:
    enum class State
    {
        Compute,   //!< executing the current gap
        StallL2,   //!< blocked on an L2 hit
        StallMem,  //!< blocked on a DRAM access (or MLP window/MSHR)
        NeedLlc,   //!< transient: step() returned an LLC request
    };

    struct OutMiss
    {
        std::uint64_t token = 0;
        std::uint64_t atInstr = 0; //!< retired-instruction position
        Tick resolveAt = maxTick;  //!< known once the MC commits it
    };

    /** Pull the next trace record and enter Compute (or stall). */
    void loadNextRecord(Tick now);

    /** Retire the instructions of the just-finished gap. */
    void retireGap(Tick now);

    /** Drop resolved misses from the front of the outstanding queue. */
    void drainResolved(Tick now);

    /** True if the MLP window or MSHR limit forces a stall. */
    bool mustStallForMisses() const;

    CoreId coreId = -1;
    const CoreConfig *cfg = nullptr;
    TraceHandle trace;

    int freqIdx = 0;
    Tick period = 0;

    State state = State::Compute;
    TraceRecord current;      //!< record whose gap is being executed
    Tick computeStart = 0;
    Tick computeEndAt = 0;
    std::uint64_t gapCyclesLeft = 0; //!< remaining after a transition
    Tick wakeAt = maxTick;
    Tick stallStart = 0;
    Tick transitionUntil = 0;

    std::deque<OutMiss> outstanding;
    std::uint64_t nextToken = 1;
    bool stalledOnFront = false;  //!< StallMem waits for front miss

    Tick completionAt = maxTick;
    std::uint64_t budgetMarkerTic = ~std::uint64_t(0);
    Tick budgetMarkerAt = maxTick;
    CoreCounters stats;
};

} // namespace coscale

#endif // COSCALE_CPU_CORE_HH
