/**
 * @file
 * Cluster health monitoring: per-epoch heartbeat deadlines with
 * configurable suspicion thresholds, driving the alive -> suspect ->
 * dead -> rejoining lifecycle the allocator and load balancer react
 * to (DESIGN.md §12).
 *
 * The monitor only sees what a real control plane would: whether a
 * node's heartbeat made this epoch's deadline. It cannot distinguish
 * a crashed node from a hung or partitioned one — that asymmetry is
 * the point, and the reason a dead verdict fences the node
 * (STONITH-style forced power-off) before its grant is reclaimed.
 *
 * Deterministic and single-threaded by design: ClusterSim drives
 * observe() serially in node-index order during its epoch pre-phase,
 * so the monitor's state never depends on worker scheduling.
 */

#ifndef COSCALE_CLUSTER_HEALTH_HH
#define COSCALE_CLUSTER_HEALTH_HH

#include <vector>

namespace coscale {
namespace cluster {

/** The monitor's belief about one node (not its physical state). */
enum class NodeHealth
{
    Alive,     //!< heartbeats on deadline; routable, trusted
    Suspect,   //!< missed >= suspectAfter deadlines; not routable,
               //!< budgeted conservatively
    Dead,      //!< missed >= deadAfter deadlines; fenced, drained,
               //!< grant reclaimed
    Rejoining, //!< heartbeat returned after death; ramping from
               //!< all-min before full trust
};

const char *nodeHealthName(NodeHealth h);

class HealthMonitor
{
  public:
    /** What one observe() call decided, with edge triggers. */
    struct Verdict
    {
        NodeHealth health = NodeHealth::Alive;
        bool justDied = false;     //!< crossed the dead threshold now
        bool justRejoined = false; //!< dead -> rejoining now
    };

    /**
     * @param nodes fleet size
     * @param suspect_after missed heartbeats before suspect (>= 1)
     * @param dead_after missed heartbeats before dead (>= suspect)
     */
    HealthMonitor(int nodes, int suspect_after, int dead_after);

    /**
     * Record @p node's heartbeat outcome for the current epoch and
     * return the (possibly updated) verdict. Called once per node per
     * epoch, serially.
     */
    Verdict observe(int node, bool heartbeat);

    /**
     * Promote a rejoining node to alive once its warm-up ramp is
     * done (the cluster tracks ramp progress; the monitor tracks
     * belief).
     */
    void markRampDone(int node);

    NodeHealth health(int node) const;
    int missedHeartbeats(int node) const;

    /** Fleet counts by current belief, for traces and stats. */
    int countWith(NodeHealth h) const;

  private:
    struct Entry
    {
        NodeHealth health = NodeHealth::Alive;
        int missed = 0;
    };

    int suspectAfter;
    int deadAfter;
    std::vector<Entry> entries;
};

} // namespace cluster
} // namespace coscale

#endif // COSCALE_CLUSTER_HEALTH_HH
