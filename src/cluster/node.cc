#include "cluster/node.hh"

#include <cmath>

#include "check/contract.hh"

namespace coscale {
namespace cluster {

const char *
nodePhaseName(NodePhase p)
{
    switch (p) {
      case NodePhase::Up:
        return "up";
      case NodePhase::Hung:
        return "hung";
      case NodePhase::Down:
        return "down";
      case NodePhase::Ramping:
        return "ramping";
    }
    return "?";
}

NodeSim::NodeSim(int node_id, const SystemConfig &cfg,
                 const std::vector<AppSpec> &apps,
                 const PolicyFactory &factory,
                 const fault::FaultPlan &faults)
    : nodeId(node_id), sys(cfg, apps), em(sys.energyModel()),
      policy(factory())
{
    COSCALE_CHECK(policy != nullptr,
                  "node %d: policy factory returned null", node_id);
    if (faults.enabled()) {
        inj = std::make_unique<fault::FaultInjector>(faults,
                                                     cfg.seed);
    }
}

NodeEpochOutcome
NodeSim::advanceEpoch(double granted_cap_w)
{
    const SystemConfig &cfg = sys.config();
    NodeEpochOutcome out;
    out.grantW = granted_cap_w;

    // A transition the fault layer delayed lands at this epoch
    // boundary, exactly as in the single-machine loop. No sink: the
    // cluster layer owns tracing (nodes advance concurrently).
    if (inj) {
        FreqConfig pend;
        if (inj->takePending(&pend))
            sys.applyConfig(pend);
    }

    Tick epoch_start = sys.now();
    CounterSnapshot epoch_snap = sys.snapshot();

    // Profiling phase under the previous configuration.
    sys.run(epoch_start + cfg.profileLen);

    const std::uint64_t fepoch = static_cast<std::uint64_t>(epochNo);
    SystemProfile prof = policy->wantsOracleProfile()
                             ? sys.oracleProfile(cfg.epochLen)
                             : sys.makeProfile(epoch_snap);
    if (inj) {
        prof = inj->perturbProfile(prof, fepoch, sys.now(), nullptr,
                                   nullptr);
    }
    FreqConfig prev_cfg = sys.currentConfig();
    policy->setObsTick(sys.now());
    if (granted_cap_w > 0.0)
        policy->setPowerCap(granted_cap_w);
    FreqConfig decision =
        epochNo < cfg.warmupEpochs
            ? prev_cfg
            : policy->safeDecide(prof, em, prev_cfg, cfg.epochLen);
    FreqConfig granted =
        inj ? inj->filterTransition(decision, prev_cfg, fepoch,
                                    sys.now(), nullptr, nullptr)
            : decision;
    epochNo += 1;

    // Profiling-window power, accounted before frequencies change.
    PowerBreakdown prof_pb = sys.windowPower(epoch_snap);
    CounterSnapshot mid_snap = sys.snapshot();
    double prof_secs = ticksToSeconds(mid_snap.tick - epoch_snap.tick);

    Tick epoch_len =
        inj ? inj->jitteredEpochLen(cfg.epochLen, cfg.profileLen,
                                    fepoch, sys.now(), nullptr,
                                    nullptr)
            : cfg.epochLen;
    sys.applyConfig(granted);
    sys.run(epoch_start + epoch_len);

    PowerBreakdown run_pb = sys.windowPower(mid_snap);
    double run_secs = ticksToSeconds(sys.now() - mid_snap.tick);

    EpochObservation obs;
    obs.epochProfile = sys.makeProfile(epoch_snap);
    obs.instrs = sys.instrsSince(epoch_snap);
    obs.epochTicks = sys.now() - epoch_start;
    obs.applied = granted;
    if (sys.numApps() > sys.numCores())
        obs.appOnCore = sys.appAssignment();
    policy->observeEpoch(obs, em);

    // Epoch energy/power: time-weighted across the two windows.
    double secs = prof_secs + run_secs;
    out.energyJ = prof_pb.totalW() * prof_secs
                  + run_pb.totalW() * run_secs;
    out.avgPowerW = secs > 0.0 ? out.energyJ / secs : 0.0;
    out.cpuW = secs > 0.0 ? (prof_pb.cpuW * prof_secs
                             + run_pb.cpuW * run_secs)
                                / secs
                          : 0.0;
    out.memW = secs > 0.0 ? (prof_pb.memW * prof_secs
                             + run_pb.memW * run_secs)
                                / secs
                          : 0.0;

    // Model views for the allocator: what the policy thought it
    // applied, and the feasibility envelope on the *measured* epoch
    // profile (clean by construction — faults only touch the profile
    // the policy reads). Non-finite predictions (fault-poisoned
    // profile reached the decision) carry the previous envelope.
    double pred = em.systemPower(prof, granted);
    out.predictedW = std::isfinite(pred) ? pred : out.avgPowerW;
    int n = sys.numCores();
    FreqConfig all_max = FreqConfig::allMax(n);
    FreqConfig all_min;
    all_min.coreIdx.assign(static_cast<size_t>(n),
                           em.cores().size() - 1);
    all_min.memIdx = em.mem().size() - 1;
    double min_w = em.systemPower(obs.epochProfile, all_min);
    double max_w = em.systemPower(obs.epochProfile, all_max);
    if (std::isfinite(min_w))
        lastMinW = min_w;
    if (std::isfinite(max_w))
        lastMaxW = max_w;
    out.minW = lastMinW;
    out.maxW = lastMaxW;
    out.overCap = granted_cap_w > 0.0
                  && out.predictedW > granted_cap_w;

    std::uint64_t instrs = 0;
    for (std::uint64_t v : obs.instrs)
        instrs += v;
    out.instrs = instrs;
    lastInstrs = instrs;

    out.memIdx = granted.memIdx;
    double idx_sum = 0.0;
    for (int idx : granted.coreIdx)
        idx_sum += idx;
    out.avgCoreIdx = granted.coreIdx.empty()
                         ? 0.0
                         : idx_sum / static_cast<double>(
                               granted.coreIdx.size());

    // A completed epoch is the lifecycle's reference point: the last
    // grant actually received, the hold template for a future hang,
    // and a fresh telemetry report for the allocator.
    lastGrantW = granted_cap_w;
    lastOut = out;
    telemetryFresh = true;
    return out;
}

void
NodeSim::beginEpoch()
{
    if (phaseNow == NodePhase::Down) {
        downLeft -= 1;
        if (downLeft <= 0) {
            // Reboot: warm restart into the all-min configuration.
            // The workload state survives (warm reboot), but the
            // machine comes back at its power floor and ramps.
            FreqConfig low;
            low.coreIdx.assign(
                static_cast<size_t>(sys.numCores()),
                em.cores().size() - 1);
            low.memIdx = em.mem().size() - 1;
            sys.applyConfig(low);
            rampLeft = pendingRamp;
            phaseNow = rampLeft > 0 ? NodePhase::Ramping
                                    : NodePhase::Up;
        }
    } else if (phaseNow == NodePhase::Hung) {
        hangLeft -= 1;
        if (hangLeft <= 0)
            phaseNow = NodePhase::Up;
    } else if (phaseNow == NodePhase::Ramping) {
        rampLeft -= 1;
        if (rampLeft <= 0)
            phaseNow = NodePhase::Up;
    }
    if (blackoutLeft > 0)
        blackoutLeft -= 1;
}

void
NodeSim::crash(int down_epochs, int ramp_epochs)
{
    COSCALE_CHECK(down_epochs >= 1, "downtime must be >= 1 epoch");
    phaseNow = NodePhase::Down;
    downLeft = down_epochs;
    pendingRamp = ramp_epochs >= 0 ? ramp_epochs : 0;
    hangLeft = 0;
    blackoutLeft = 0;
    lastInstrs = 0;
    telemetryFresh = false;
}

void
NodeSim::hang(int epochs)
{
    COSCALE_CHECK(epochs >= 1, "hang must last >= 1 epoch");
    if (phaseNow != NodePhase::Up)
        return;
    phaseNow = NodePhase::Hung;
    hangLeft = epochs;
}

void
NodeSim::blackout(int epochs)
{
    COSCALE_CHECK(epochs >= 1, "blackout must last >= 1 epoch");
    if (epochs > blackoutLeft)
        blackoutLeft = epochs;
}

NodeEpochOutcome
NodeSim::holdEpoch()
{
    // Wedged: the machine neither advances nor obeys new grants, but
    // it is still powered — stuck drawing what it drew last epoch.
    // This is exactly why silent nodes get conservative reservations:
    // reclaiming a hung node's grant would double-spend its watts.
    NodeEpochOutcome out = lastOut;
    out.grantW = lastGrantW;
    out.instrs = 0;
    out.overCap = false;
    lastInstrs = 0;
    telemetryFresh = false;
    return out;
}

NodeEpochOutcome
NodeSim::downEpoch()
{
    lastInstrs = 0;
    telemetryFresh = false;
    return NodeEpochOutcome{};
}

std::vector<QueuedBatch>
NodeSim::drainQueue()
{
    std::vector<QueuedBatch> drained(queue.begin(), queue.end());
    queue.clear();
    return drained;
}

void
NodeSim::enqueueAged(std::uint64_t arrival_epoch,
                     std::uint64_t requests)
{
    if (requests == 0)
        return;
    QueuedBatch b;
    b.arrivalEpoch = arrival_epoch;
    b.remaining = requests;
    // The queue is nondecreasing in arrival epoch (normal enqueues
    // append the current epoch); keep it that way so FIFO latency
    // accounting stays exact for re-routed work.
    auto it = std::find_if(queue.begin(), queue.end(),
                           [arrival_epoch](const QueuedBatch &q) {
                               return q.arrivalEpoch > arrival_epoch;
                           });
    queue.insert(it, b);
}

void
NodeSim::enqueue(std::uint64_t requests, std::uint64_t epoch)
{
    if (requests == 0)
        return;
    QueuedBatch b;
    b.arrivalEpoch = epoch;
    b.remaining = requests;
    queue.push_back(b);
}

NodeServiceStats
NodeSim::serveQueue(std::uint64_t epoch, double epoch_secs,
                    double instr_per_request, double slo_secs)
{
    NodeServiceStats stats;
    COSCALE_CHECK(instr_per_request >= 1.0,
                  "instr_per_request must be >= 1");
    std::uint64_t capacity = static_cast<std::uint64_t>(
        static_cast<double>(lastInstrs) / instr_per_request);
    while (capacity > 0 && !queue.empty()) {
        QueuedBatch &b = queue.front();
        std::uint64_t served =
            b.remaining < capacity ? b.remaining : capacity;
        b.remaining -= served;
        capacity -= served;
        stats.completed += served;
        // Arrival epoch through serving epoch inclusive: a request
        // served the epoch it arrived still waited one epoch.
        double latency =
            static_cast<double>(epoch - b.arrivalEpoch + 1)
            * epoch_secs;
        stats.latencySecsSum += latency * static_cast<double>(served);
        if (latency > stats.maxLatencySecs)
            stats.maxLatencySecs = latency;
        if (latency > slo_secs)
            stats.sloViolations += served;
        if (b.remaining == 0)
            queue.pop_front();
    }
    return stats;
}

std::uint64_t
NodeSim::queuedRequests() const
{
    std::uint64_t total = 0;
    for (const QueuedBatch &b : queue)
        total += b.remaining;
    return total;
}

} // namespace cluster
} // namespace coscale
