#include "cluster/node.hh"

#include <cmath>

#include "check/contract.hh"

namespace coscale {
namespace cluster {

NodeSim::NodeSim(int node_id, const SystemConfig &cfg,
                 const std::vector<AppSpec> &apps,
                 const PolicyFactory &factory,
                 const fault::FaultPlan &faults)
    : nodeId(node_id), sys(cfg, apps), em(sys.energyModel()),
      policy(factory())
{
    COSCALE_CHECK(policy != nullptr,
                  "node %d: policy factory returned null", node_id);
    if (faults.enabled()) {
        inj = std::make_unique<fault::FaultInjector>(faults,
                                                     cfg.seed);
    }
}

NodeEpochOutcome
NodeSim::advanceEpoch(double granted_cap_w)
{
    const SystemConfig &cfg = sys.config();
    NodeEpochOutcome out;
    out.grantW = granted_cap_w;

    // A transition the fault layer delayed lands at this epoch
    // boundary, exactly as in the single-machine loop. No sink: the
    // cluster layer owns tracing (nodes advance concurrently).
    if (inj) {
        FreqConfig pend;
        if (inj->takePending(&pend))
            sys.applyConfig(pend);
    }

    Tick epoch_start = sys.now();
    CounterSnapshot epoch_snap = sys.snapshot();

    // Profiling phase under the previous configuration.
    sys.run(epoch_start + cfg.profileLen);

    const std::uint64_t fepoch = static_cast<std::uint64_t>(epochNo);
    SystemProfile prof = policy->wantsOracleProfile()
                             ? sys.oracleProfile(cfg.epochLen)
                             : sys.makeProfile(epoch_snap);
    if (inj) {
        prof = inj->perturbProfile(prof, fepoch, sys.now(), nullptr,
                                   nullptr);
    }
    FreqConfig prev_cfg = sys.currentConfig();
    policy->setObsTick(sys.now());
    if (granted_cap_w > 0.0)
        policy->setPowerCap(granted_cap_w);
    FreqConfig decision =
        epochNo < cfg.warmupEpochs
            ? prev_cfg
            : policy->safeDecide(prof, em, prev_cfg, cfg.epochLen);
    FreqConfig granted =
        inj ? inj->filterTransition(decision, prev_cfg, fepoch,
                                    sys.now(), nullptr, nullptr)
            : decision;
    epochNo += 1;

    // Profiling-window power, accounted before frequencies change.
    PowerBreakdown prof_pb = sys.windowPower(epoch_snap);
    CounterSnapshot mid_snap = sys.snapshot();
    double prof_secs = ticksToSeconds(mid_snap.tick - epoch_snap.tick);

    Tick epoch_len =
        inj ? inj->jitteredEpochLen(cfg.epochLen, cfg.profileLen,
                                    fepoch, sys.now(), nullptr,
                                    nullptr)
            : cfg.epochLen;
    sys.applyConfig(granted);
    sys.run(epoch_start + epoch_len);

    PowerBreakdown run_pb = sys.windowPower(mid_snap);
    double run_secs = ticksToSeconds(sys.now() - mid_snap.tick);

    EpochObservation obs;
    obs.epochProfile = sys.makeProfile(epoch_snap);
    obs.instrs = sys.instrsSince(epoch_snap);
    obs.epochTicks = sys.now() - epoch_start;
    obs.applied = granted;
    if (sys.numApps() > sys.numCores())
        obs.appOnCore = sys.appAssignment();
    policy->observeEpoch(obs, em);

    // Epoch energy/power: time-weighted across the two windows.
    double secs = prof_secs + run_secs;
    out.energyJ = prof_pb.totalW() * prof_secs
                  + run_pb.totalW() * run_secs;
    out.avgPowerW = secs > 0.0 ? out.energyJ / secs : 0.0;
    out.cpuW = secs > 0.0 ? (prof_pb.cpuW * prof_secs
                             + run_pb.cpuW * run_secs)
                                / secs
                          : 0.0;
    out.memW = secs > 0.0 ? (prof_pb.memW * prof_secs
                             + run_pb.memW * run_secs)
                                / secs
                          : 0.0;

    // Model views for the allocator: what the policy thought it
    // applied, and the feasibility envelope on the *measured* epoch
    // profile (clean by construction — faults only touch the profile
    // the policy reads). Non-finite predictions (fault-poisoned
    // profile reached the decision) carry the previous envelope.
    double pred = em.systemPower(prof, granted);
    out.predictedW = std::isfinite(pred) ? pred : out.avgPowerW;
    int n = sys.numCores();
    FreqConfig all_max = FreqConfig::allMax(n);
    FreqConfig all_min;
    all_min.coreIdx.assign(static_cast<size_t>(n),
                           em.cores().size() - 1);
    all_min.memIdx = em.mem().size() - 1;
    double min_w = em.systemPower(obs.epochProfile, all_min);
    double max_w = em.systemPower(obs.epochProfile, all_max);
    if (std::isfinite(min_w))
        lastMinW = min_w;
    if (std::isfinite(max_w))
        lastMaxW = max_w;
    out.minW = lastMinW;
    out.maxW = lastMaxW;
    out.overCap = granted_cap_w > 0.0
                  && out.predictedW > granted_cap_w;

    std::uint64_t instrs = 0;
    for (std::uint64_t v : obs.instrs)
        instrs += v;
    out.instrs = instrs;
    lastInstrs = instrs;

    out.memIdx = granted.memIdx;
    double idx_sum = 0.0;
    for (int idx : granted.coreIdx)
        idx_sum += idx;
    out.avgCoreIdx = granted.coreIdx.empty()
                         ? 0.0
                         : idx_sum / static_cast<double>(
                               granted.coreIdx.size());
    return out;
}

void
NodeSim::enqueue(std::uint64_t requests, std::uint64_t epoch)
{
    if (requests == 0)
        return;
    Batch b;
    b.arrivalEpoch = epoch;
    b.remaining = requests;
    queue.push_back(b);
}

NodeServiceStats
NodeSim::serveQueue(std::uint64_t epoch, double epoch_secs,
                    double instr_per_request, double slo_secs)
{
    NodeServiceStats stats;
    COSCALE_CHECK(instr_per_request >= 1.0,
                  "instr_per_request must be >= 1");
    std::uint64_t capacity = static_cast<std::uint64_t>(
        static_cast<double>(lastInstrs) / instr_per_request);
    while (capacity > 0 && !queue.empty()) {
        Batch &b = queue.front();
        std::uint64_t served =
            b.remaining < capacity ? b.remaining : capacity;
        b.remaining -= served;
        capacity -= served;
        stats.completed += served;
        // Arrival epoch through serving epoch inclusive: a request
        // served the epoch it arrived still waited one epoch.
        double latency =
            static_cast<double>(epoch - b.arrivalEpoch + 1)
            * epoch_secs;
        stats.latencySecsSum += latency * static_cast<double>(served);
        if (latency > stats.maxLatencySecs)
            stats.maxLatencySecs = latency;
        if (latency > slo_secs)
            stats.sloViolations += served;
        if (b.remaining == 0)
            queue.pop_front();
    }
    return stats;
}

std::uint64_t
NodeSim::queuedRequests() const
{
    std::uint64_t total = 0;
    for (const Batch &b : queue)
        total += b.remaining;
    return total;
}

} // namespace cluster
} // namespace coscale
