#include "cluster/arrival.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace coscale {
namespace cluster {

namespace {

const char *
kindName(ArrivalParseError::Kind k)
{
    switch (k) {
      case ArrivalParseError::Kind::EmptySpec:
        return "empty spec";
      case ArrivalParseError::Kind::BadToken:
        return "bad token";
      case ArrivalParseError::Kind::UnknownKey:
        return "unknown key";
      case ArrivalParseError::Kind::BadValue:
        return "bad value";
      case ArrivalParseError::Kind::OutOfRange:
        return "out of range";
      case ArrivalParseError::Kind::DuplicateKey:
        return "duplicate key";
    }
    return "?";
}

std::string
describe(ArrivalParseError::Kind kind, const std::string &token,
         std::size_t offset, const std::string &detail)
{
    std::ostringstream os;
    os << "arrival spec: " << kindName(kind);
    if (!token.empty())
        os << " '" << token << "'";
    os << " at offset " << offset;
    if (!detail.empty())
        os << ": " << detail;
    os << " (expected key=value pairs: rate, diurnal, period, burst, "
          "burstx, ipr, slo, seed)";
    return os.str();
}

/** Parse a full-token double; throws BadValue on junk or non-finite. */
double
parseDouble(const std::string &token, const std::string &value,
            std::size_t offset)
{
    errno = 0;
    const char *begin = value.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0' || errno == ERANGE
        || !std::isfinite(v)) {
        throw ArrivalParseError(ArrivalParseError::Kind::BadValue,
                                token, offset,
                                "'" + value + "' is not a finite number");
    }
    return v;
}

/** Parse a full-token unsigned integer. */
std::uint64_t
parseU64(const std::string &token, const std::string &value,
         std::size_t offset)
{
    errno = 0;
    const char *begin = value.c_str();
    char *end = nullptr;
    unsigned long long v = std::strtoull(begin, &end, 10);
    if (end == begin || *end != '\0' || errno == ERANGE
        || value[0] == '-') {
        throw ArrivalParseError(
            ArrivalParseError::Kind::BadValue, token, offset,
            "'" + value + "' is not an unsigned integer");
    }
    return static_cast<std::uint64_t>(v);
}

[[noreturn]] void
outOfRange(const std::string &token, std::size_t offset,
           const std::string &why)
{
    throw ArrivalParseError(ArrivalParseError::Kind::OutOfRange, token,
                            offset, why);
}

} // namespace

ArrivalParseError::ArrivalParseError(Kind kind, std::string token,
                                     std::size_t offset,
                                     const std::string &detail)
    : std::runtime_error(describe(kind, token, offset, detail)),
      errKind(kind), errToken(std::move(token)), errOffset(offset)
{
}

ArrivalSpec
parseArrivalSpec(const std::string &text)
{
    if (text.empty()) {
        throw ArrivalParseError(ArrivalParseError::Kind::EmptySpec, "",
                                0, "");
    }
    ArrivalSpec spec;
    // Bit k set once key k has been seen (duplicate detection).
    unsigned seen = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string token = text.substr(pos, comma - pos);
        std::size_t offset = pos;
        pos = comma + 1;

        std::size_t eq = token.find('=');
        if (token.empty() || eq == std::string::npos || eq == 0
            || eq + 1 == token.size()) {
            throw ArrivalParseError(ArrivalParseError::Kind::BadToken,
                                    token, offset,
                                    "expected key=value");
        }
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);

        struct Knob
        {
            const char *name = nullptr;
            unsigned bit = 0;
        };
        static const Knob knobs[] = {
            {"rate", 1u << 0},  {"diurnal", 1u << 1},
            {"period", 1u << 2}, {"burst", 1u << 3},
            {"burstx", 1u << 4}, {"ipr", 1u << 5},
            {"slo", 1u << 6},    {"seed", 1u << 7},
        };
        unsigned bit = 0;
        for (const Knob &k : knobs) {
            if (key == k.name) {
                bit = k.bit;
                break;
            }
        }
        if (bit == 0) {
            throw ArrivalParseError(
                ArrivalParseError::Kind::UnknownKey, token, offset, "");
        }
        if (seen & bit) {
            throw ArrivalParseError(
                ArrivalParseError::Kind::DuplicateKey, token, offset,
                "");
        }
        seen |= bit;

        if (key == "rate") {
            spec.ratePerSec = parseDouble(token, value, offset);
            if (spec.ratePerSec <= 0.0)
                outOfRange(token, offset, "rate must be > 0");
        } else if (key == "diurnal") {
            spec.diurnalAmp = parseDouble(token, value, offset);
            if (spec.diurnalAmp < 0.0 || spec.diurnalAmp > 1.0)
                outOfRange(token, offset, "diurnal must be in [0, 1]");
        } else if (key == "period") {
            spec.diurnalPeriod = parseU64(token, value, offset);
            if (spec.diurnalPeriod == 0)
                outOfRange(token, offset, "period must be >= 1");
        } else if (key == "burst") {
            spec.burstProb = parseDouble(token, value, offset);
            if (spec.burstProb < 0.0 || spec.burstProb > 1.0)
                outOfRange(token, offset, "burst must be in [0, 1]");
        } else if (key == "burstx") {
            spec.burstMult = parseDouble(token, value, offset);
            if (spec.burstMult < 1.0)
                outOfRange(token, offset, "burstx must be >= 1");
        } else if (key == "ipr") {
            spec.instrPerRequest = parseDouble(token, value, offset);
            if (spec.instrPerRequest < 1.0)
                outOfRange(token, offset, "ipr must be >= 1");
        } else if (key == "slo") {
            spec.sloSecs = parseDouble(token, value, offset);
            if (spec.sloSecs <= 0.0)
                outOfRange(token, offset, "slo must be > 0");
        } else { // seed
            spec.seed = parseU64(token, value, offset);
        }

        if (comma == text.size())
            break;
    }
    return spec;
}

std::string
formatArrivalSpec(const ArrivalSpec &s)
{
    std::ostringstream os;
    os.precision(17);
    os << "rate=" << s.ratePerSec << ",diurnal=" << s.diurnalAmp
       << ",period=" << s.diurnalPeriod << ",burst=" << s.burstProb
       << ",burstx=" << s.burstMult << ",ipr=" << s.instrPerRequest
       << ",slo=" << s.sloSecs << ",seed=" << s.seed;
    return os.str();
}

bool
isBurstEpoch(const ArrivalSpec &spec, std::uint64_t epoch)
{
    if (spec.burstProb <= 0.0)
        return false;
    return arrivalUniform(spec.seed, epoch, ArrivalStream::BurstGate)
           < spec.burstProb;
}

double
arrivalRatePerSec(const ArrivalSpec &spec, std::uint64_t epoch)
{
    double rate =
        spec.ratePerSec
        * (1.0
           + spec.diurnalAmp * diurnalWave(epoch, spec.diurnalPeriod));
    if (isBurstEpoch(spec, epoch))
        rate *= spec.burstMult;
    return rate;
}

std::uint64_t
arrivalsInEpoch(const ArrivalSpec &spec, std::uint64_t epoch,
                double epoch_secs)
{
    double expected = arrivalRatePerSec(spec, epoch) * epoch_secs;
    if (expected <= 0.0)
        return 0;
    double whole = std::floor(expected);
    std::uint64_t count = static_cast<std::uint64_t>(whole);
    // The fractional arrival resolves by a stateless coin, keeping
    // long-run throughput equal to the rate with zero carried state.
    if (arrivalUniform(spec.seed, epoch, ArrivalStream::CountFrac)
        < expected - whole) {
        count += 1;
    }
    return count;
}

} // namespace cluster
} // namespace coscale
