#include "cluster/allocator.hh"

#include <algorithm>
#include <cmath>

namespace coscale {
namespace cluster {

namespace {

/** Clamp model inputs to finite non-negative values: a faulted node
 *  can report NaN predictions, and the allocator's invariants assume
 *  finite arithmetic. */
double
finiteOrZero(double v)
{
    return std::isfinite(v) && v > 0.0 ? v : 0.0;
}

} // namespace

std::vector<double>
fastcapAllocate(double budget_w,
                const std::vector<NodePowerDemand> &nodes)
{
    const std::size_t n = nodes.size();
    std::vector<double> grants(n, 0.0);
    if (n == 0 || !(budget_w > 0.0))
        return grants;

    std::vector<double> min_w(n, 0.0);
    std::vector<double> headroom(n, 0.0);
    std::vector<double> weight(n, 0.0);
    double sum_min = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        switch (nodes[i].trust) {
          case NodeTrust::Dead:
            // Fenced and drawing nothing: reclaim the whole grant.
            min_w[i] = 0.0;
            headroom[i] = 0.0;
            weight[i] = 0.0;
            break;
          case NodeTrust::Stale:
            // Silent but possibly still drawing: reserve the
            // conservative envelope as a hard floor with no upside —
            // the node cannot be steered, so it gets no demand share
            // and no headroom, just its reservation.
            min_w[i] = std::max(finiteOrZero(nodes[i].minW),
                                finiteOrZero(nodes[i].maxW));
            headroom[i] = 0.0;
            weight[i] = 0.0;
            break;
          case NodeTrust::Fresh:
            min_w[i] = finiteOrZero(nodes[i].minW);
            headroom[i] =
                std::max(min_w[i], finiteOrZero(nodes[i].maxW))
                - min_w[i];
            weight[i] = finiteOrZero(nodes[i].demand);
            break;
        }
        sum_min += min_w[i];
    }

    if (budget_w <= sum_min) {
        // The budget cannot cover the floors: scale the minima
        // proportionally. Every node will report overCap and pin
        // all-min; the measured shortfall is the operator's signal
        // that the budget is infeasible, not silently hidden.
        if (sum_min <= 0.0) {
            double even = budget_w / static_cast<double>(n);
            grants.assign(n, even);
            return grants;
        }
        for (std::size_t i = 0; i < n; ++i)
            grants[i] = budget_w * min_w[i] / sum_min;
        return grants;
    }

    // Guarantee the floors, then water-fill the remainder
    // proportionally to demand, clamped at each node's headroom.
    // Each round either distributes everything (no clamp hit) or
    // saturates at least one node, so the loop runs at most n+1
    // times. The fixed point is min(headroom_i, lambda*w_i) with a
    // single water level lambda — monotone in the budget.
    grants = min_w;
    double remaining = budget_w - sum_min;
    std::vector<std::size_t> active;
    active.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        if (headroom[i] > 0.0)
            active.push_back(i);
    }

    constexpr double eps = 1e-12;
    while (remaining > eps && !active.empty()) {
        double total_weight = 0.0;
        for (std::size_t i : active)
            total_weight += weight[i];
        const bool equal_shares = total_weight <= 0.0;
        if (equal_shares)
            total_weight = static_cast<double>(active.size());

        double distributed = 0.0;
        std::vector<std::size_t> still_active;
        still_active.reserve(active.size());
        for (std::size_t i : active) {
            double w = equal_shares ? 1.0 : weight[i];
            double share = remaining * w / total_weight;
            double add = std::min(share, headroom[i]);
            grants[i] += add;
            headroom[i] -= add;
            distributed += add;
            if (headroom[i] > eps)
                still_active.push_back(i);
        }
        remaining -= distributed;
        if (still_active.size() == active.size()) {
            // No clamp fired: every share landed in full, so the
            // remainder is exhausted up to fp rounding.
            break;
        }
        active.swap(still_active);
    }
    return grants;
}

} // namespace cluster
} // namespace coscale
