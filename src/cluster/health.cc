#include "cluster/health.hh"

#include "check/contract.hh"

namespace coscale {
namespace cluster {

const char *
nodeHealthName(NodeHealth h)
{
    switch (h) {
      case NodeHealth::Alive:
        return "alive";
      case NodeHealth::Suspect:
        return "suspect";
      case NodeHealth::Dead:
        return "dead";
      case NodeHealth::Rejoining:
        return "rejoining";
    }
    return "?";
}

HealthMonitor::HealthMonitor(int nodes, int suspect_after,
                             int dead_after)
    : suspectAfter(suspect_after), deadAfter(dead_after),
      entries(static_cast<std::size_t>(nodes))
{
    COSCALE_CHECK(nodes >= 1, "monitor needs at least 1 node");
    COSCALE_CHECK(suspect_after >= 1,
                  "suspect threshold must be >= 1");
    COSCALE_CHECK(dead_after >= suspect_after,
                  "dead threshold must be >= suspect threshold");
}

HealthMonitor::Verdict
HealthMonitor::observe(int node, bool heartbeat)
{
    Entry &e = entries[static_cast<std::size_t>(node)];
    Verdict v;
    if (heartbeat) {
        e.missed = 0;
        switch (e.health) {
          case NodeHealth::Alive:
          case NodeHealth::Rejoining:
            break; // rejoining resolves via markRampDone, not here
          case NodeHealth::Suspect:
            e.health = NodeHealth::Alive;
            break;
          case NodeHealth::Dead:
            e.health = NodeHealth::Rejoining;
            v.justRejoined = true;
            break;
        }
    } else {
        e.missed += 1;
        if (e.health != NodeHealth::Dead && e.missed >= deadAfter) {
            e.health = NodeHealth::Dead;
            v.justDied = true;
        } else if ((e.health == NodeHealth::Alive
                    || e.health == NodeHealth::Rejoining)
                   && e.missed >= suspectAfter) {
            e.health = NodeHealth::Suspect;
        }
    }
    v.health = e.health;
    return v;
}

void
HealthMonitor::markRampDone(int node)
{
    Entry &e = entries[static_cast<std::size_t>(node)];
    if (e.health == NodeHealth::Rejoining)
        e.health = NodeHealth::Alive;
}

NodeHealth
HealthMonitor::health(int node) const
{
    return entries[static_cast<std::size_t>(node)].health;
}

int
HealthMonitor::missedHeartbeats(int node) const
{
    return entries[static_cast<std::size_t>(node)].missed;
}

int
HealthMonitor::countWith(NodeHealth h) const
{
    int n = 0;
    for (const Entry &e : entries)
        n += e.health == h ? 1 : 0;
    return n;
}

} // namespace cluster
} // namespace coscale
