/**
 * @file
 * The cluster's open-loop request stream: a seeded arrival generator
 * with a diurnal load wave, probabilistic burst epochs, and
 * per-request latency SLOs — "millions of users" traffic rather than
 * a fixed SPEC trace (ROADMAP, fleet-scale item).
 *
 * Determinism contract: every arrival count is a pure function of
 * (spec, epoch) through the stateless splitmix64 hash from
 * fault/fault_plan.hh — never a sequential RNG — so the stream is
 * independent of worker count, node count, and evaluation order, and
 * identical across platforms. The diurnal wave is a piecewise
 * parabola (multiplications only, no libm transcendentals), because
 * std::sin is not bit-identical across C libraries and the stream
 * feeds golden fixtures.
 */

#ifndef COSCALE_CLUSTER_ARRIVAL_HH
#define COSCALE_CLUSTER_ARRIVAL_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "fault/fault_plan.hh"

namespace coscale {
namespace cluster {

/**
 * Structured parse failure for an --arrival spec string, mirroring
 * trace/trace_file.hh's TraceParseError: a kind, the offending token,
 * and the character offset into the spec, so front ends can point at
 * the exact mistake.
 */
class ArrivalParseError : public std::runtime_error
{
  public:
    enum class Kind
    {
        EmptySpec,    //!< the spec string is empty
        BadToken,     //!< token is not of the form key=value
        UnknownKey,   //!< key is not a recognised knob
        BadValue,     //!< value is not a number of the expected form
        OutOfRange,   //!< value parsed but violates the knob's range
        DuplicateKey, //!< the same key appeared twice
    };

    ArrivalParseError(Kind kind, std::string token, std::size_t offset,
                      const std::string &detail);

    Kind kind() const { return errKind; }
    const std::string &token() const { return errToken; }
    std::size_t charOffset() const { return errOffset; }

  private:
    Kind errKind;
    std::string errToken;
    std::size_t errOffset;
};

/**
 * One request stream: base rate modulated by a diurnal wave, with
 * burst epochs and a latency SLO per request. A plain value — two
 * equal specs generate bit-identical streams.
 */
struct ArrivalSpec
{
    /** Mean request arrival rate at zero diurnal phase. */
    double ratePerSec = 4000.0;

    /** Diurnal modulation amplitude in [0, 1]: rate swings between
     *  rate*(1-amp) and rate*(1+amp) over one period. */
    double diurnalAmp = 0.0;

    /** Diurnal period in cluster epochs ("one day"). */
    std::uint64_t diurnalPeriod = 64;

    /** Probability that an epoch is a burst epoch. */
    double burstProb = 0.0;

    /** Rate multiplier during a burst epoch (>= 1). */
    double burstMult = 4.0;

    /** Service demand per request, in instructions. */
    double instrPerRequest = 250e3;

    /** Per-request latency SLO in seconds. */
    double sloSecs = 2e-3;

    /** Stream seed (independent of the nodes' workload seeds). */
    std::uint64_t seed = 1;
};

/**
 * Parse a comma-separated key=value spec, e.g.
 *   "rate=4000,diurnal=0.4,period=64,burst=0.05,burstx=4,
 *    ipr=250000,slo=0.002,seed=7"
 * Unset keys keep their ArrivalSpec defaults. Throws
 * ArrivalParseError on malformed input.
 */
ArrivalSpec parseArrivalSpec(const std::string &text);

/** Round-trip: a spec string parseArrivalSpec() maps back to @p s. */
std::string formatArrivalSpec(const ArrivalSpec &s);

/**
 * Hash sub-streams of the cluster layer. Values start at 100 so they
 * can never collide with fault::FaultStream draws sharing a seed.
 */
enum class ArrivalStream : std::uint64_t
{
    BurstGate = 100, //!< is this epoch a burst epoch?
    CountFrac = 101, //!< fractional-arrival coin
    Route = 102,     //!< load-balancer tie-breaks (reserved)
    NodeSeed = 103,  //!< per-node workload seed derivation
};

/** Stateless hash for the cluster streams (splitmix64 chain). */
constexpr std::uint64_t
arrivalHash(std::uint64_t seed, std::uint64_t epoch, ArrivalStream s,
            std::uint64_t sub = 0)
{
    std::uint64_t x = fault::faultMix64(seed);
    x = fault::faultMix64(x ^ epoch);
    x = fault::faultMix64(x ^ static_cast<std::uint64_t>(s));
    return fault::faultMix64(x ^ sub);
}

/** Uniform double in [0, 1) from the stateless hash. */
constexpr double
arrivalUniform(std::uint64_t seed, std::uint64_t epoch, ArrivalStream s,
               std::uint64_t sub = 0)
{
    return static_cast<double>(arrivalHash(seed, epoch, s, sub) >> 11)
           * 0x1.0p-53;
}

/**
 * The diurnal wave at @p epoch for a cycle of @p period epochs: a
 * piecewise parabola through (0,0) -> (period/4, 1) ->
 * (period/2, 0) -> (3*period/4, -1) -> (period, 0), the libm-free
 * stand-in for sin(2*pi*epoch/period). Exact on every platform.
 */
constexpr double
diurnalWave(std::uint64_t epoch, std::uint64_t period)
{
    if (period == 0)
        return 0.0;
    double x = static_cast<double>(epoch % period)
               / static_cast<double>(period);
    return x < 0.5 ? 16.0 * x * (0.5 - x)
                   : -16.0 * (x - 0.5) * (1.0 - x);
}

/** True when @p epoch draws a burst under @p spec. */
bool isBurstEpoch(const ArrivalSpec &spec, std::uint64_t epoch);

/** Instantaneous arrival rate at @p epoch (diurnal + burst). */
double arrivalRatePerSec(const ArrivalSpec &spec, std::uint64_t epoch);

/**
 * Arrivals in cluster epoch @p epoch of @p epoch_secs: the integer
 * part of rate*epoch_secs plus a hash coin for the fractional part,
 * so long-run throughput matches the rate without any sequential
 * state.
 */
std::uint64_t arrivalsInEpoch(const ArrivalSpec &spec,
                              std::uint64_t epoch, double epoch_secs);

} // namespace cluster
} // namespace coscale

#endif // COSCALE_CLUSTER_ARRIVAL_HH
