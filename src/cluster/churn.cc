#include "cluster/churn.hh"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace coscale {
namespace cluster {

namespace {

const char *
kindName(ChurnParseError::Kind k)
{
    switch (k) {
      case ChurnParseError::Kind::EmptySpec:
        return "empty spec";
      case ChurnParseError::Kind::BadToken:
        return "bad token";
      case ChurnParseError::Kind::UnknownKey:
        return "unknown key";
      case ChurnParseError::Kind::BadValue:
        return "bad value";
      case ChurnParseError::Kind::OutOfRange:
        return "out of range";
      case ChurnParseError::Kind::DuplicateKey:
        return "duplicate key";
    }
    return "?";
}

std::string
describe(ChurnParseError::Kind kind, const std::string &token,
         std::size_t offset, const std::string &detail)
{
    std::ostringstream os;
    os << "churn spec: " << kindName(kind);
    if (!token.empty())
        os << " '" << token << "'";
    os << " at offset " << offset;
    if (!detail.empty())
        os << ": " << detail;
    os << " (expected key=value pairs: crash, reboot, ramp, flap, "
          "hang, hangx, blackout, blackoutx, suspect, dead, seed)";
    return os.str();
}

/** Parse a full-token double; throws BadValue on junk or non-finite. */
double
parseDouble(const std::string &token, const std::string &value,
            std::size_t offset)
{
    errno = 0;
    const char *begin = value.c_str();
    char *end = nullptr;
    double v = std::strtod(begin, &end);
    if (end == begin || *end != '\0' || errno == ERANGE
        || !std::isfinite(v)) {
        throw ChurnParseError(ChurnParseError::Kind::BadValue, token,
                              offset,
                              "'" + value + "' is not a finite number");
    }
    return v;
}

/** Parse a full-token unsigned integer. */
std::uint64_t
parseU64(const std::string &token, const std::string &value,
         std::size_t offset)
{
    errno = 0;
    const char *begin = value.c_str();
    char *end = nullptr;
    unsigned long long v = std::strtoull(begin, &end, 10);
    if (end == begin || *end != '\0' || errno == ERANGE
        || value[0] == '-') {
        throw ChurnParseError(
            ChurnParseError::Kind::BadValue, token, offset,
            "'" + value + "' is not an unsigned integer");
    }
    return static_cast<std::uint64_t>(v);
}

/** Parse a bounded int knob (epoch counts, thresholds). */
int
parseEpochs(const std::string &token, const std::string &value,
            std::size_t offset, int lo)
{
    std::uint64_t v = parseU64(token, value, offset);
    if (v < static_cast<std::uint64_t>(lo) || v > 1'000'000) {
        throw ChurnParseError(
            ChurnParseError::Kind::OutOfRange, token, offset,
            "must be in [" + std::to_string(lo) + ", 1000000]");
    }
    return static_cast<int>(v);
}

[[noreturn]] void
outOfRange(const std::string &token, std::size_t offset,
           const std::string &why)
{
    throw ChurnParseError(ChurnParseError::Kind::OutOfRange, token,
                          offset, why);
}

double
parseProb(const std::string &token, const std::string &value,
          std::size_t offset)
{
    double v = parseDouble(token, value, offset);
    if (v < 0.0 || v > 1.0)
        outOfRange(token, offset, "probability must be in [0, 1]");
    return v;
}

} // namespace

ChurnParseError::ChurnParseError(Kind kind, std::string token,
                                 std::size_t offset,
                                 const std::string &detail)
    : std::runtime_error(describe(kind, token, offset, detail)),
      errKind(kind), errToken(std::move(token)), errOffset(offset)
{
}

ChurnPlan
parseChurnSpec(const std::string &text)
{
    if (text.empty()) {
        throw ChurnParseError(ChurnParseError::Kind::EmptySpec, "", 0,
                              "");
    }
    ChurnPlan plan;
    // Bit k set once key k has been seen (duplicate detection).
    unsigned seen = 0;
    // The dead-vs-suspect cross check needs a token to point at.
    std::string dead_token;
    std::size_t dead_offset = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        std::size_t comma = text.find(',', pos);
        if (comma == std::string::npos)
            comma = text.size();
        std::string token = text.substr(pos, comma - pos);
        std::size_t offset = pos;
        pos = comma + 1;

        std::size_t eq = token.find('=');
        if (token.empty() || eq == std::string::npos || eq == 0
            || eq + 1 == token.size()) {
            throw ChurnParseError(ChurnParseError::Kind::BadToken,
                                  token, offset, "expected key=value");
        }
        std::string key = token.substr(0, eq);
        std::string value = token.substr(eq + 1);

        struct Knob
        {
            const char *name = nullptr;
            unsigned bit = 0;
        };
        static const Knob knobs[] = {
            {"crash", 1u << 0},     {"reboot", 1u << 1},
            {"ramp", 1u << 2},      {"flap", 1u << 3},
            {"hang", 1u << 4},      {"hangx", 1u << 5},
            {"blackout", 1u << 6},  {"blackoutx", 1u << 7},
            {"suspect", 1u << 8},   {"dead", 1u << 9},
            {"seed", 1u << 10},
        };
        unsigned bit = 0;
        for (const Knob &k : knobs) {
            if (key == k.name) {
                bit = k.bit;
                break;
            }
        }
        if (bit == 0) {
            throw ChurnParseError(ChurnParseError::Kind::UnknownKey,
                                  token, offset, "");
        }
        if (seen & bit) {
            throw ChurnParseError(ChurnParseError::Kind::DuplicateKey,
                                  token, offset, "");
        }
        seen |= bit;

        if (key == "crash") {
            plan.crashProb = parseProb(token, value, offset);
        } else if (key == "reboot") {
            plan.rebootEpochs = parseEpochs(token, value, offset, 1);
        } else if (key == "ramp") {
            plan.rampEpochs = parseEpochs(token, value, offset, 0);
        } else if (key == "flap") {
            plan.flapProb = parseProb(token, value, offset);
        } else if (key == "hang") {
            plan.hangProb = parseProb(token, value, offset);
        } else if (key == "hangx") {
            plan.hangEpochs = parseEpochs(token, value, offset, 1);
        } else if (key == "blackout") {
            plan.blackoutProb = parseProb(token, value, offset);
        } else if (key == "blackoutx") {
            plan.blackoutEpochs = parseEpochs(token, value, offset, 1);
        } else if (key == "suspect") {
            plan.suspectAfter = parseEpochs(token, value, offset, 1);
        } else if (key == "dead") {
            plan.deadAfter = parseEpochs(token, value, offset, 1);
            dead_token = token;
            dead_offset = offset;
        } else { // seed
            plan.seed = parseU64(token, value, offset);
        }

        if (comma == text.size())
            break;
    }
    if (plan.deadAfter < plan.suspectAfter) {
        outOfRange(dead_token.empty() ? "dead" : dead_token,
                   dead_offset,
                   "dead threshold must be >= suspect threshold");
    }
    return plan;
}

std::string
formatChurnSpec(const ChurnPlan &p)
{
    std::ostringstream os;
    os.precision(17);
    os << "crash=" << p.crashProb << ",reboot=" << p.rebootEpochs
       << ",ramp=" << p.rampEpochs << ",flap=" << p.flapProb
       << ",hang=" << p.hangProb << ",hangx=" << p.hangEpochs
       << ",blackout=" << p.blackoutProb << ",blackoutx="
       << p.blackoutEpochs << ",suspect=" << p.suspectAfter
       << ",dead=" << p.deadAfter << ",seed=" << p.seed;
    return os.str();
}

bool
churnCrashAt(const ChurnPlan &p, std::uint64_t seed,
             std::uint64_t epoch, std::uint64_t node)
{
    if (p.crashProb <= 0.0)
        return false;
    return fault::faultUniform(seed, epoch,
                               fault::FaultStream::ChurnCrash, node)
           < p.crashProb;
}

bool
churnFlapAt(const ChurnPlan &p, std::uint64_t seed,
            std::uint64_t epoch, std::uint64_t node)
{
    if (p.flapProb <= 0.0)
        return false;
    return fault::faultUniform(seed, epoch,
                               fault::FaultStream::ChurnFlap, node)
           < p.flapProb;
}

int
churnHangLenAt(const ChurnPlan &p, std::uint64_t seed,
               std::uint64_t epoch, std::uint64_t node)
{
    if (p.hangProb <= 0.0)
        return 0;
    if (fault::faultUniform(seed, epoch,
                            fault::FaultStream::ChurnHang, node)
        >= p.hangProb) {
        return 0;
    }
    std::uint64_t span = static_cast<std::uint64_t>(p.hangEpochs);
    return 1
           + static_cast<int>(
               fault::faultHash(seed, epoch,
                                fault::FaultStream::ChurnHangLen, node)
               % (span > 0 ? span : 1));
}

int
churnBlackoutLenAt(const ChurnPlan &p, std::uint64_t seed,
                   std::uint64_t epoch, std::uint64_t node)
{
    if (p.blackoutProb <= 0.0)
        return 0;
    if (fault::faultUniform(seed, epoch,
                            fault::FaultStream::ChurnBlackout, node)
        >= p.blackoutProb) {
        return 0;
    }
    std::uint64_t span = static_cast<std::uint64_t>(p.blackoutEpochs);
    return 1
           + static_cast<int>(
               fault::faultHash(
                   seed, epoch,
                   fault::FaultStream::ChurnBlackoutLen, node)
               % (span > 0 ? span : 1));
}

} // namespace cluster
} // namespace coscale
