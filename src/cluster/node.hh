/**
 * @file
 * One node of the simulated cluster: a full System (cores, LLC, DRAM)
 * driven epoch-by-epoch under an externally granted power cap, plus
 * an open-loop request queue served by the instructions the node
 * actually retired.
 *
 * NodeSim::advanceEpoch mirrors one iteration of the single-machine
 * epoch loop (sim/runner.cc) — profile, decide, transition, run the
 * epoch out, observe — with two cluster-specific twists: the granted
 * cap is pushed into the policy (Policy::setPowerCap) before it
 * decides, and the node runs open-ended (the workload is a compute
 * substrate, not a finite job), so there is no completion handling.
 *
 * Determinism: a node owns every bit of its state (System, policy
 * instance, fault injector) and advanceEpoch touches nothing shared,
 * so the cluster may advance nodes on any thread in any order and the
 * per-node outcomes are bit-identical. Trace emission is deliberately
 * left to the cluster layer, which serializes it in node-index order.
 */

#ifndef COSCALE_CLUSTER_NODE_HH
#define COSCALE_CLUSTER_NODE_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "fault/fault_injector.hh"
#include "sim/runner.hh"
#include "sim/system.hh"

namespace coscale {
namespace cluster {

/** What one epoch under a grant did, as the allocator and traces see it. */
struct NodeEpochOutcome
{
    /** The cap this epoch ran under (0 = uncapped). */
    double grantW = 0.0;

    /** Measured average power over the whole epoch (profiling included). */
    double avgPowerW = 0.0;
    double cpuW = 0.0;
    double memW = 0.0;

    /** Measured energy of the whole epoch, joules. */
    double energyJ = 0.0;

    /** Model-predicted power of the applied configuration. */
    double predictedW = 0.0;

    /**
     * Model-predicted power envelope of this node on this epoch's
     * measured profile: all-min and all-max configurations. The
     * allocator's feasibility bounds for the next grant round. When
     * the model output is non-finite (a fault-poisoned profile) the
     * previous finite values are carried.
     */
    double minW = 0.0;
    double maxW = 0.0;

    /** The policy predicted over its grant (grant > 0 only). */
    bool overCap = false;

    /** Instructions retired this epoch — the request-serving capacity. */
    std::uint64_t instrs = 0;

    /** Applied memory ladder index and mean core ladder index. */
    int memIdx = 0;
    double avgCoreIdx = 0.0;
};

/** Queue outcome of one epoch's request service. */
struct NodeServiceStats
{
    std::uint64_t completed = 0;
    std::uint64_t sloViolations = 0;
    double latencySecsSum = 0.0;
    double maxLatencySecs = 0.0;
};

class NodeSim
{
  public:
    /**
     * @param node_id position in the cluster (labels and traces)
     * @param cfg complete node configuration (cfg.seed must already
     *        be the per-node seed — the cluster derives one per node)
     * @param apps one AppSpec per core (the compute substrate)
     * @param factory fresh policy instance for this node
     * @param faults fault plan (disabled plan = clean node)
     */
    NodeSim(int node_id, const SystemConfig &cfg,
            const std::vector<AppSpec> &apps,
            const PolicyFactory &factory,
            const fault::FaultPlan &faults);

    /**
     * Run one epoch under @p granted_cap_w (0 = uncapped: the policy
     * keeps whatever cap it was built with untouched).
     */
    NodeEpochOutcome advanceEpoch(double granted_cap_w);

    /**
     * Force a configuration before the first epoch. Capped clusters
     * boot every node in the all-min state: epoch 0 profiles under
     * it, so even the first epoch cannot overshoot the budget the
     * way an all-max cold start would.
     */
    void presetConfig(const FreqConfig &c) { sys.applyConfig(c); }

    /** Add @p requests arrivals routed here at @p epoch. */
    void enqueue(std::uint64_t requests, std::uint64_t epoch);

    /**
     * Serve queued requests with the capacity the last advanceEpoch
     * earned: floor(instrs / instr_per_request) whole requests, FIFO.
     * A request's latency spans its arrival epoch through the serving
     * epoch inclusive, at @p epoch_secs per epoch.
     */
    NodeServiceStats serveQueue(std::uint64_t epoch, double epoch_secs,
                                double instr_per_request,
                                double slo_secs);

    std::uint64_t queuedRequests() const;

    int id() const { return nodeId; }
    const System &system() const { return sys; }
    Policy &nodePolicy() { return *policy; }
    std::uint64_t eventsDispatched() const
    {
        return sys.eventsDispatched();
    }
    fault::FaultSummary faultSummary() const
    {
        return inj ? inj->summary() : fault::FaultSummary{};
    }

  private:
    struct Batch
    {
        std::uint64_t arrivalEpoch = 0;
        std::uint64_t remaining = 0;
    };

    int nodeId;
    System sys;
    EnergyModel em;
    std::unique_ptr<Policy> policy;
    std::unique_ptr<fault::FaultInjector> inj;

    int epochNo = 0;
    std::uint64_t lastInstrs = 0;
    double lastMinW = 0.0;
    double lastMaxW = 0.0;
    std::deque<Batch> queue;
};

} // namespace cluster
} // namespace coscale

#endif // COSCALE_CLUSTER_NODE_HH
