/**
 * @file
 * One node of the simulated cluster: a full System (cores, LLC, DRAM)
 * driven epoch-by-epoch under an externally granted power cap, plus
 * an open-loop request queue served by the instructions the node
 * actually retired.
 *
 * NodeSim::advanceEpoch mirrors one iteration of the single-machine
 * epoch loop (sim/runner.cc) — profile, decide, transition, run the
 * epoch out, observe — with two cluster-specific twists: the granted
 * cap is pushed into the policy (Policy::setPowerCap) before it
 * decides, and the node runs open-ended (the workload is a compute
 * substrate, not a finite job), so there is no completion handling.
 *
 * Determinism: a node owns every bit of its state (System, policy
 * instance, fault injector) and advanceEpoch touches nothing shared,
 * so the cluster may advance nodes on any thread in any order and the
 * per-node outcomes are bit-identical. Trace emission is deliberately
 * left to the cluster layer, which serializes it in node-index order.
 */

#ifndef COSCALE_CLUSTER_NODE_HH
#define COSCALE_CLUSTER_NODE_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "cluster/health.hh"
#include "fault/fault_injector.hh"
#include "sim/runner.hh"
#include "sim/system.hh"

namespace coscale {
namespace cluster {

/**
 * The node's physical condition, as churn actually leaves it —
 * distinct from NodeHealth, which is only the monitor's belief.
 */
enum class NodePhase
{
    Up,      //!< running normally under its grant
    Hung,    //!< wedged: powered (stuck at last power) but retiring
             //!< and serving nothing, heartbeats missed
    Down,    //!< crashed or fenced: zero power, zero service
    Ramping, //!< rebooted at all-min, warming up before full load
};

const char *nodePhaseName(NodePhase p);

/** One routed batch of requests, FIFO by arrival epoch. */
struct QueuedBatch
{
    std::uint64_t arrivalEpoch = 0;
    std::uint64_t remaining = 0;
};

/** What one epoch under a grant did, as the allocator and traces see it. */
struct NodeEpochOutcome
{
    /** The cap this epoch ran under (0 = uncapped). */
    double grantW = 0.0;

    /** Measured average power over the whole epoch (profiling included). */
    double avgPowerW = 0.0;
    double cpuW = 0.0;
    double memW = 0.0;

    /** Measured energy of the whole epoch, joules. */
    double energyJ = 0.0;

    /** Model-predicted power of the applied configuration. */
    double predictedW = 0.0;

    /**
     * Model-predicted power envelope of this node on this epoch's
     * measured profile: all-min and all-max configurations. The
     * allocator's feasibility bounds for the next grant round. When
     * the model output is non-finite (a fault-poisoned profile) the
     * previous finite values are carried.
     */
    double minW = 0.0;
    double maxW = 0.0;

    /** The policy predicted over its grant (grant > 0 only). */
    bool overCap = false;

    /** Instructions retired this epoch — the request-serving capacity. */
    std::uint64_t instrs = 0;

    /** Applied memory ladder index and mean core ladder index. */
    int memIdx = 0;
    double avgCoreIdx = 0.0;
};

/** Queue outcome of one epoch's request service. */
struct NodeServiceStats
{
    std::uint64_t completed = 0;
    std::uint64_t sloViolations = 0;
    double latencySecsSum = 0.0;
    double maxLatencySecs = 0.0;
};

class NodeSim
{
  public:
    /**
     * @param node_id position in the cluster (labels and traces)
     * @param cfg complete node configuration (cfg.seed must already
     *        be the per-node seed — the cluster derives one per node)
     * @param apps one AppSpec per core (the compute substrate)
     * @param factory fresh policy instance for this node
     * @param faults fault plan (disabled plan = clean node)
     */
    NodeSim(int node_id, const SystemConfig &cfg,
            const std::vector<AppSpec> &apps,
            const PolicyFactory &factory,
            const fault::FaultPlan &faults);

    /**
     * Run one epoch under @p granted_cap_w (0 = uncapped: the policy
     * keeps whatever cap it was built with untouched).
     */
    NodeEpochOutcome advanceEpoch(double granted_cap_w);

    /**
     * Force a configuration before the first epoch. Capped clusters
     * boot every node in the all-min state: epoch 0 profiles under
     * it, so even the first epoch cannot overshoot the budget the
     * way an all-max cold start would.
     */
    void presetConfig(const FreqConfig &c) { sys.applyConfig(c); }

    /** Add @p requests arrivals routed here at @p epoch. */
    void enqueue(std::uint64_t requests, std::uint64_t epoch);

    /**
     * Serve queued requests with the capacity the last advanceEpoch
     * earned: floor(instrs / instr_per_request) whole requests, FIFO.
     * A request's latency spans its arrival epoch through the serving
     * epoch inclusive, at @p epoch_secs per epoch.
     */
    NodeServiceStats serveQueue(std::uint64_t epoch, double epoch_secs,
                                double instr_per_request,
                                double slo_secs);

    std::uint64_t queuedRequests() const;

    // --- failure-domain lifecycle (driven serially by ClusterSim's
    // --- epoch pre-phase; see cluster.cc and DESIGN.md §12) ---

    NodePhase phase() const { return phaseNow; }
    NodeHealth health() const { return healthNow; }
    void setHealth(NodeHealth h) { healthNow = h; }

    /**
     * Advance the lifecycle clocks one epoch: a finished downtime
     * reboots into the all-min configuration (Ramping, or Up when the
     * ramp is zero), a finished hang resumes Up, a finished ramp
     * resumes Up, and an active blackout ticks down.
     */
    void beginEpoch();

    /**
     * Power loss (a drawn crash/flap, or a dead-verdict fence): down
     * for @p down_epochs, then reboot into all-min and ramp for
     * @p ramp_epochs.
     */
    void crash(int down_epochs, int ramp_epochs);

    /** Wedge for @p epochs: powered but inert, heartbeats missed. */
    void hang(int epochs);

    /** Suppress telemetry toward the allocator for @p epochs. */
    void blackout(int epochs);

    bool blackoutActive() const { return blackoutLeft > 0; }

    /**
     * True when the allocator holds a trustworthy report of this
     * node's last epoch (false right after hangs and reboots until
     * the next normal epoch completes).
     */
    bool telemetryOk() const { return telemetryFresh; }

    /**
     * Conservative power reservation for a node whose telemetry is
     * stale or whose heartbeats are missing: the larger of the last
     * grant it is known to have received and the last all-max
     * envelope it reported. Budgeting a silent node at this level
     * keeps the global cap safe even if it is hung and still drawing.
     */
    double
    staleReserveW() const
    {
        return std::max(lastGrantW, lastMaxW);
    }

    /** Last-known all-min power: the warm-up grant after a reboot. */
    double rebootFloorW() const { return lastMinW; }

    /**
     * The epoch of a hung node: nothing advances, nothing retires,
     * but the machine is still powered and stuck drawing its last
     * measured power. Service capacity collapses to zero.
     */
    NodeEpochOutcome holdEpoch();

    /** The epoch of a crashed/fenced node: zero power, zero service. */
    NodeEpochOutcome downEpoch();

    /**
     * Hand the queue over for re-routing (dead-node drain). The
     * queue is left empty; batches keep their arrival epochs so
     * latency accounting survives the move.
     */
    std::vector<QueuedBatch> drainQueue();

    /**
     * Re-enqueue a drained batch, preserving FIFO-by-arrival order
     * (inserted before the first batch that arrived later).
     */
    void enqueueAged(std::uint64_t arrival_epoch,
                     std::uint64_t requests);

    int id() const { return nodeId; }
    const System &system() const { return sys; }
    Policy &nodePolicy() { return *policy; }
    std::uint64_t eventsDispatched() const
    {
        return sys.eventsDispatched();
    }
    fault::FaultSummary faultSummary() const
    {
        return inj ? inj->summary() : fault::FaultSummary{};
    }

  private:
    int nodeId;
    System sys;
    EnergyModel em;
    std::unique_ptr<Policy> policy;
    std::unique_ptr<fault::FaultInjector> inj;

    int epochNo = 0;
    std::uint64_t lastInstrs = 0;
    double lastMinW = 0.0;
    double lastMaxW = 0.0;
    std::deque<QueuedBatch> queue;

    // Lifecycle state (mutated only in the cluster's serial phases
    // and by this node's own epoch — never shared across workers).
    NodePhase phaseNow = NodePhase::Up;
    NodeHealth healthNow = NodeHealth::Alive;
    int downLeft = 0;     //!< epochs of downtime remaining
    int hangLeft = 0;     //!< epochs of hang remaining
    int blackoutLeft = 0; //!< epochs of telemetry blackout remaining
    int rampLeft = 0;     //!< warm-up epochs remaining
    int pendingRamp = 0;  //!< ramp length to apply at reboot
    bool telemetryFresh = true;
    double lastGrantW = 0.0;
    NodeEpochOutcome lastOut; //!< the hold template for hung epochs
};

} // namespace cluster
} // namespace coscale

#endif // COSCALE_CLUSTER_NODE_HH
