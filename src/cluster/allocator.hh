/**
 * @file
 * The cluster-level power-cap allocator: FastCap's cap-and-fairness
 * rule (PAPERS.md) dividing one global budget across nodes each
 * cluster epoch. Every node first receives its minimum achievable
 * power (nobody can run below all-min frequencies); the remaining
 * budget is water-filled proportionally to demand, clamped at each
 * node's maximum useful power. A pure function of its inputs —
 * deterministic by construction, and cheap enough to run every
 * cluster epoch for thousands of nodes.
 */

#ifndef COSCALE_CLUSTER_ALLOCATOR_HH
#define COSCALE_CLUSTER_ALLOCATOR_HH

#include <vector>

namespace coscale {
namespace cluster {

/**
 * How much the allocator may trust one node's report this round
 * (health monitoring feeds this; cluster/health.hh).
 */
enum class NodeTrust
{
    /** Report is current: full minW/maxW/demand participation. */
    Fresh,

    /**
     * Report is stale or the node is silent but possibly still
     * drawing (suspect, hung, telemetry blackout): the node is
     * budgeted a fixed conservative reservation — max(minW, maxW) as
     * both floor and ceiling, no demand share — so the global cap
     * stays safe without trusting a word it says.
     */
    Stale,

    /**
     * Declared dead and fenced: zero reservation, its whole grant is
     * reclaimed for the survivors.
     */
    Dead,
};

/** One node's inputs to the allocator, from its last epoch profile. */
struct NodePowerDemand
{
    /** Predicted system power at all-min frequencies: the floor the
     *  node cannot go below even if granted nothing. */
    double minW = 0.0;

    /** Predicted system power at all-max frequencies: granting more
     *  than this buys nothing. */
    double maxW = 0.0;

    /** Offered load (queued requests / work); only relative
     *  magnitudes matter. While any node has positive demand,
     *  zero-demand nodes receive just their minimum; when every
     *  demand is zero the remainder is shared equally. */
    double demand = 0.0;

    /** Telemetry trust level (default preserves PR 8 behaviour). */
    NodeTrust trust = NodeTrust::Fresh;
};

/**
 * Divide @p budget_w across @p nodes.
 *
 * Invariants (property-tested in tests/test_cluster.cc):
 *  - sum(grants) <= budget_w (up to fp rounding),
 *  - grants[i] >= nodes[i].minW whenever budget_w >= sum(minW),
 *  - grants[i] <= max(minW, maxW) always,
 *  - monotone in budget_w: more budget never shrinks any grant,
 *  - symmetric: identical nodes receive identical grants,
 *  - demand-monotone: raising one node's demand (all else equal)
 *    never shrinks that node's grant,
 *  - Dead nodes are granted exactly 0 regardless of their reported
 *    envelope (their watts go back into the shared pool),
 *  - Stale nodes are granted exactly their reservation
 *    max(minW, maxW) when the budget covers all floors, never more.
 *
 * When the budget cannot even cover the minima, grants scale the
 * minima proportionally — every node is over-capped and its
 * controller pins all-min (the overCap condition nodes report).
 * Stale reservations scale down with everyone else's floors in that
 * regime: the budget stays a hard invariant even mid-churn.
 */
std::vector<double> fastcapAllocate(
    double budget_w, const std::vector<NodePowerDemand> &nodes);

} // namespace cluster
} // namespace coscale

#endif // COSCALE_CLUSTER_ALLOCATOR_HH
