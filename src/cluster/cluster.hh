/**
 * @file
 * Fleet-scale simulation: N independent Systems (cluster/node.hh), an
 * open-loop seeded request generator (cluster/arrival.hh), a load
 * balancer, and a cluster-level power-cap allocator
 * (cluster/allocator.hh) that re-divides a global budget across the
 * nodes every cluster epoch while each node optimizes under its
 * grant.
 *
 * Epoch structure: the cluster epoch is the synchronization quantum.
 * Each cluster epoch the driver (serially, in this order) draws the
 * epoch's arrivals, routes them, computes the per-node grants, then
 * fans the N node epochs out over exp::parallelFor — each node is a
 * sealed deterministic unit, so serial and --jobs N execution produce
 * bit-identical results — and finally aggregates and traces the
 * outcomes in node-index order.
 *
 * Cap semantics: budgetW > 0 arms the allocator; grants are pushed
 * into each node's policy via Policy::setPowerCap before it decides.
 * Policies that ignore the cap (everything except fastcap/powercap)
 * still *receive* grants — the cluster measures how badly an
 * uncoordinated fleet overshoots, which is the point of the
 * comparison.
 */

#ifndef COSCALE_CLUSTER_CLUSTER_HH
#define COSCALE_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include <deque>

#include "cluster/arrival.hh"
#include "cluster/churn.hh"
#include "cluster/health.hh"
#include "cluster/node.hh"
#include "fault/fault_plan.hh"
#include "obs/metrics.hh"
#include "obs/trace_sink.hh"

namespace coscale {
namespace cluster {

/** How the balancer spreads an epoch's arrivals across nodes. */
enum class LbPolicy
{
    RoundRobin,       //!< equal weights, rotating remainder
    LeastLoaded,      //!< weight 1 / (1 + queued requests)
    WeightedCapacity, //!< weight = last epoch's retired instructions
};

/** Parse "rr" / "least-loaded" / "weighted". Throws on unknown names. */
LbPolicy parseLbPolicy(const std::string &name);
const char *lbPolicyName(LbPolicy lb);

/**
 * Weighted largest-remainder apportionment: split @p total into
 * integer counts proportional to @p weights, exactly conserving the
 * total. Non-positive and non-finite weights contribute nothing
 * while any weight is positive; when no weight is positive the split
 * falls back to equal weights. Leftover units go to the largest
 * fractional parts (stable, index-ordered tie-break), or rotate from
 * index (@p rotation % n) when @p rotate_leftovers is set (the
 * RoundRobin balancer's anti-bias).
 *
 * Pure and deterministic; property-tested in tests/test_cluster.cc
 * (conservation, zero-weight nodes, all-equal weights,
 * single-survivor routing).
 */
std::vector<std::uint64_t> largestRemainderSplit(
    std::uint64_t total, const std::vector<double> &weights,
    std::uint64_t rotation, bool rotate_leftovers);

/**
 * A node SystemConfig sized for fleet runs: makeScaledConfig(scale)
 * shrunk to @p cores cores, warmup disabled (a warming node runs
 * all-max, which would blow through any grant at cluster epoch 0).
 */
SystemConfig makeNodeConfig(double scale = 0.05, int cores = 2);

struct ClusterConfig
{
    int numNodes = 8;

    /** Per-node machine; every node gets a distinct derived seed. */
    SystemConfig node = makeNodeConfig();

    /** Table 1 mix running on every node (the compute substrate). */
    std::string mix = "MID1";

    /** Per-node policy name (exp/policies.hh spelling). */
    std::string policy = "fastcap";

    /** Global power budget in watts; <= 0 disables capping. */
    double budgetW = 0.0;

    /** Cluster epochs to simulate. */
    int epochs = 12;

    ArrivalSpec arrival;
    LbPolicy lb = LbPolicy::WeightedCapacity;

    /** Cluster seed: arrivals, routing, and per-node seeds derive. */
    std::uint64_t seed = 1;

    /** Fault plan applied to every node (per-node fault seeds). */
    fault::FaultPlan faults;

    /**
     * Node churn plan (crashes, hangs, flaps, telemetry blackouts)
     * plus the health monitor's suspicion thresholds. A disabled
     * plan (the default) skips the failure domain entirely and the
     * run is bit-identical to a pre-churn cluster.
     */
    ChurnPlan churn;

    /** Worker threads for the node fan-out (resolveJobs semantics). */
    int jobs = 1;
};

/** One cluster epoch, aggregated over all nodes. */
struct ClusterEpochStats
{
    std::uint64_t epoch = 0;
    std::uint64_t arrivals = 0;
    double grantSumW = 0.0;  //!< what the allocator handed out
    double powerW = 0.0;     //!< measured, summed over nodes
    std::uint64_t completed = 0;
    std::uint64_t sloViolations = 0;
    std::uint64_t queued = 0; //!< backlog after serving
    double meanLatencySecs = 0.0;
    double maxLatencySecs = 0.0;
    bool capExceeded = false; //!< budget armed and powerW > budget

    // Failure-domain view of the epoch (all zero when churn is off).
    std::uint64_t downNodes = 0;    //!< physically down this epoch
    std::uint64_t hungNodes = 0;    //!< wedged this epoch
    std::uint64_t suspectNodes = 0; //!< monitor belief after deadline
    std::uint64_t deadNodes = 0;    //!< monitor belief after deadline
    std::uint64_t reroutedRequests = 0; //!< drained and re-routed
    bool degraded = false; //!< any node not Up this epoch
};

/** Whole-run aggregate. */
struct ClusterResult
{
    std::vector<ClusterEpochStats> epochs;
    double worstPowerW = 0.0;
    std::uint64_t capViolationEpochs = 0;
    std::uint64_t totalArrivals = 0;
    std::uint64_t totalCompleted = 0;
    std::uint64_t totalSloViolations = 0;
    std::uint64_t finalQueued = 0;
    std::uint64_t totalEvents = 0; //!< kernel events, all nodes
    fault::FaultSummary faults;    //!< summed over nodes

    // Failure-domain aggregates (zero / 1.0 when churn is off).
    ChurnSummary churn;
    std::uint64_t nodeEpochs = 0;        //!< nodes x epochs
    std::uint64_t nodeEpochsServing = 0; //!< phase Up or Ramping
    double availability = 1.0; //!< serving node-epochs / node-epochs

    /** SLO attribution: violations in degraded vs clean epochs. */
    std::uint64_t sloViolationsDegraded = 0;
    std::uint64_t sloViolationsClean = 0;
};

class ClusterSim
{
  public:
    explicit ClusterSim(const ClusterConfig &cfg);

    /** Attach trace/metrics sinks (null detaches). Serial emission. */
    void attachObs(TraceSink *sink, MetricsRegistry *metrics);

    /** Advance every node one epoch; returns the aggregate. */
    ClusterEpochStats step();

    /** Run cfg.epochs steps and aggregate. */
    ClusterResult run();

    const ClusterConfig &config() const { return cfg; }
    int numNodes() const { return static_cast<int>(nodes.size()); }
    const NodeSim &node(int i) const
    {
        return *nodes[static_cast<size_t>(i)];
    }
    const std::vector<NodeEpochOutcome> &lastOutcomes() const
    {
        return outcomes;
    }
    const ChurnSummary &churnSummary() const { return churnSum; }
    const HealthMonitor &healthMonitor() const { return monitor; }

    /** Requests parked while no node was routable (counts as queue). */
    std::uint64_t unroutedRequests() const;

  private:
    /**
     * The serial churn pre-phase for one epoch: advance lifecycle
     * clocks, draw new failure episodes, evaluate every heartbeat
     * deadline, fence and drain freshly-dead nodes (their batches
     * land in @p drained), and promote finished ramps.
     */
    void applyChurn(std::vector<QueuedBatch> &drained);

    /** Balancer weights for this epoch, churn-masked; all-zero means
     *  no routable node (the caller parks the work). */
    std::vector<double> routeWeights() const;

    std::vector<std::uint64_t> route(std::uint64_t arrivals,
                                     const std::vector<double> &w);
    std::vector<double> computeGrants();

    void emitChurnEvent(Tick tick, std::uint64_t node,
                        const char *kind, std::uint64_t spanEpochs);

    ClusterConfig cfg;
    std::vector<std::unique_ptr<NodeSim>> nodes;
    std::vector<NodeEpochOutcome> outcomes; //!< last epoch, per node
    std::uint64_t epochNo = 0;
    TraceSink *sink = nullptr;
    MetricsRegistry *metrics = nullptr;

    // Failure domain (inert when cfg.churn is disabled).
    HealthMonitor monitor;
    std::uint64_t churnSeedVal = 0;
    ChurnSummary churnSum;
    std::deque<QueuedBatch> unrouted; //!< parked: no routable node
};

/** Machine-readable run report (deterministic; epoch series + totals). */
void writeClusterJsonReport(const ClusterConfig &cfg,
                            const ClusterResult &result,
                            std::ostream &os);

} // namespace cluster
} // namespace coscale

#endif // COSCALE_CLUSTER_CLUSTER_HH
