#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "check/contract.hh"
#include "cluster/allocator.hh"
#include "common/json.hh"
#include "exp/engine.hh"
#include "exp/policies.hh"
#include "workloads/spec_catalogue.hh"

namespace coscale {
namespace cluster {

namespace {

/**
 * Nodes run open-ended: the mix is a compute substrate for the
 * request stream, not a finite job, so the per-app budget is pushed
 * out of reach (phase lengths were already expanded from the real
 * budget before this override).
 */
constexpr std::uint64_t openEndedBudget = 1'000'000'000'000ULL;

/** Effectively-uncapped watts for policies built without a budget. */
constexpr double uncappedWatts = 1e9;

} // namespace

LbPolicy
parseLbPolicy(const std::string &name)
{
    if (name == "rr" || name == "round-robin" || name == "roundrobin")
        return LbPolicy::RoundRobin;
    if (name == "least-loaded" || name == "leastloaded" || name == "ll")
        return LbPolicy::LeastLoaded;
    if (name == "weighted" || name == "capacity"
        || name == "weighted-capacity") {
        return LbPolicy::WeightedCapacity;
    }
    throw std::invalid_argument(
        "unknown load-balancer policy '" + name
        + "'; valid names: rr, least-loaded, weighted");
}

const char *
lbPolicyName(LbPolicy lb)
{
    switch (lb) {
      case LbPolicy::RoundRobin:
        return "rr";
      case LbPolicy::LeastLoaded:
        return "least-loaded";
      case LbPolicy::WeightedCapacity:
        return "weighted";
    }
    return "?";
}

SystemConfig
makeNodeConfig(double scale, int cores)
{
    SystemConfig c = makeScaledConfig(scale);
    COSCALE_CHECK(cores >= 1 && cores <= c.numCores,
                  "node cores must be in [1, %d]", c.numCores);
    c.numCores = cores;
    c.power.numCores = cores;
    // Node-sized memory system: one channel, one DIMM. The 16-core
    // server's four-channel background power would swamp a small
    // node's dynamic range and leave nothing for a cap to trade.
    c.geom.channels = 1;
    c.geom.dimmsPerChannel = 1;
    c.power.geom = c.geom;
    c.warmupEpochs = 0;
    // Fleet nodes keep the DVFS-only knob space: the LLC way
    // dimension is a single-server study, and small nodes (2 cores,
    // 16 ways) would otherwise open the partition gate under CI's
    // COSCALE_KNOB_LLC_WAYS=1 leg and break the cluster goldens.
    c.knobs.llcWays = false;
    return c;
}

ClusterSim::ClusterSim(const ClusterConfig &cfg_in)
    : cfg(cfg_in),
      monitor(cfg_in.numNodes >= 1 ? cfg_in.numNodes : 1,
              cfg_in.churn.suspectAfter, cfg_in.churn.deadAfter),
      churnSeedVal(churnSeed(cfg_in.churn, cfg_in.seed))
{
    COSCALE_CHECK(cfg.numNodes >= 1, "cluster needs at least 1 node");
    COSCALE_CHECK(cfg.epochs >= 1, "cluster needs at least 1 epoch");
    if (cfg.churn.enabled()) {
        COSCALE_CHECK(cfg.churn.rebootEpochs >= 1,
                      "churn reboot downtime must be >= 1 epoch");
        COSCALE_CHECK(cfg.churn.rampEpochs >= 0,
                      "churn ramp must be >= 0 epochs");
        COSCALE_CHECK(cfg.churn.hangEpochs >= 1
                          && cfg.churn.blackoutEpochs >= 1,
                      "churn episode lengths must be >= 1 epoch");
    }

    const WorkloadMix &mix = mixByName(cfg.mix);
    std::vector<AppSpec> apps =
        expandMix(mix, cfg.node.numCores, cfg.node.instrBudget);

    double node_cap = cfg.budgetW > 0.0
                          ? cfg.budgetW / cfg.numNodes
                          : uncappedWatts;
    PolicyFactory factory = exp::requirePolicyFactory(
        cfg.policy, cfg.node.numCores, cfg.node.gamma, node_cap);

    nodes.reserve(static_cast<size_t>(cfg.numNodes));
    for (int i = 0; i < cfg.numNodes; ++i) {
        SystemConfig nc = cfg.node;
        std::uint64_t s = arrivalHash(
            cfg.seed, static_cast<std::uint64_t>(i),
            ArrivalStream::NodeSeed);
        nc.seed = s ? s : 1;
        nc.instrBudget = openEndedBudget;
        nodes.push_back(std::make_unique<NodeSim>(i, nc, apps,
                                                  factory,
                                                  cfg.faults));
    }
    if (cfg.budgetW > 0.0) {
        // Safe boot: a capped fleet starts all-min, so epoch 0 (which
        // profiles under the boot configuration) stays under any
        // feasible budget instead of opening flat-out at all-max.
        FreqConfig low;
        low.coreIdx.assign(
            static_cast<size_t>(cfg.node.numCores),
            cfg.node.coreLadder.size() - 1);
        low.memIdx = cfg.node.memLadder.size() - 1;
        for (std::unique_ptr<NodeSim> &nd : nodes)
            nd->presetConfig(low);
    }
    outcomes.assign(static_cast<size_t>(cfg.numNodes),
                    NodeEpochOutcome{});
}

void
ClusterSim::attachObs(TraceSink *sink_, MetricsRegistry *metrics_)
{
    sink = sink_;
    metrics = metrics_;
}

std::vector<std::uint64_t>
largestRemainderSplit(std::uint64_t total,
                      const std::vector<double> &weights,
                      std::uint64_t rotation, bool rotate_leftovers)
{
    size_t n = weights.size();
    std::vector<std::uint64_t> counts(n, 0);
    if (n == 0 || total == 0)
        return counts;

    std::vector<double> w(n, 0.0);
    double wsum = 0.0;
    for (size_t i = 0; i < n; ++i) {
        double v = weights[i];
        w[i] = std::isfinite(v) && v > 0.0 ? v : 0.0;
        wsum += w[i];
    }
    if (!(wsum > 0.0)) {
        w.assign(n, 1.0);
        wsum = static_cast<double>(n);
    }

    // Largest-remainder apportionment: exact integer split, biased
    // only by the fractional parts (deterministic tie-break by node
    // index; rotate_leftovers rotates the leftover start so small
    // streams do not always favour node 0).
    std::vector<double> frac(n, 0.0);
    std::uint64_t assigned = 0;
    for (size_t i = 0; i < n; ++i) {
        double share = static_cast<double>(total) * w[i] / wsum;
        double fl = std::floor(share);
        counts[i] = static_cast<std::uint64_t>(fl);
        frac[i] = share - fl;
        assigned += counts[i];
    }
    std::uint64_t leftover = total > assigned ? total - assigned : 0;
    if (rotate_leftovers) {
        size_t start = static_cast<size_t>(rotation % n);
        for (std::uint64_t k = 0; k < leftover; ++k)
            counts[(start + k) % n] += 1;
    } else {
        std::vector<size_t> order(n);
        for (size_t i = 0; i < n; ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&frac](size_t a, size_t b) {
                             return frac[a] > frac[b];
                         });
        for (std::uint64_t k = 0; k < leftover; ++k)
            counts[order[static_cast<size_t>(k) % n]] += 1;
    }
    return counts;
}

std::vector<double>
ClusterSim::routeWeights() const
{
    size_t n = nodes.size();
    std::vector<double> w(n, 1.0);
    if (cfg.lb == LbPolicy::LeastLoaded) {
        for (size_t i = 0; i < n; ++i) {
            w[i] = 1.0
                   / (1.0
                      + static_cast<double>(
                          nodes[i]->queuedRequests()));
        }
    } else if (cfg.lb == LbPolicy::WeightedCapacity && epochNo > 0) {
        for (size_t i = 0; i < n; ++i)
            w[i] = static_cast<double>(outcomes[i].instrs);
    }
    if (cfg.churn.enabled()) {
        // Route only where the monitor believes requests can land:
        // alive and rejoining nodes. Suspects keep their queue but
        // get no new work; dead/down nodes get nothing.
        double masked = 0.0;
        for (size_t i = 0; i < n; ++i) {
            NodeHealth h = nodes[i]->health();
            if (h != NodeHealth::Alive && h != NodeHealth::Rejoining)
                w[i] = 0.0;
            masked += w[i];
        }
        if (!(masked > 0.0)) {
            // Weight starvation (e.g. weighted-capacity with zero
            // instrs among the survivors): equal split across the
            // routable set, never back to the dead.
            for (size_t i = 0; i < n; ++i) {
                NodeHealth h = nodes[i]->health();
                w[i] = h == NodeHealth::Alive
                               || h == NodeHealth::Rejoining
                           ? 1.0
                           : 0.0;
            }
        }
    }
    return w;
}

std::vector<std::uint64_t>
ClusterSim::route(std::uint64_t arrivals,
                  const std::vector<double> &w)
{
    size_t n = nodes.size();
    if (arrivals == 0)
        return std::vector<std::uint64_t>(n, 0);
    if (cfg.churn.enabled()) {
        double total = 0.0;
        for (double v : w)
            total += v;
        // No routable node at all: the caller parks the arrivals
        // rather than letting the fallback resurrect dead targets.
        if (!(total > 0.0))
            return std::vector<std::uint64_t>(n, 0);
    }
    return largestRemainderSplit(arrivals, w, epochNo,
                                 cfg.lb == LbPolicy::RoundRobin);
}

std::vector<double>
ClusterSim::computeGrants()
{
    size_t n = nodes.size();
    std::vector<double> grants(n, 0.0);
    if (cfg.budgetW <= 0.0)
        return grants; // uncapped: advanceEpoch(0) leaves caps alone

    if (epochNo == 0) {
        // No outcomes to size demands from yet: even split.
        double share = cfg.budgetW / static_cast<double>(n);
        grants.assign(n, share);
        return grants;
    }
    std::vector<NodePowerDemand> demands(n);
    for (size_t i = 0; i < n; ++i) {
        demands[i].minW = outcomes[i].minW;
        demands[i].maxW = outcomes[i].maxW;
        demands[i].demand =
            static_cast<double>(nodes[i]->queuedRequests());
        if (!cfg.churn.enabled())
            continue;
        const NodeSim &nd = *nodes[i];
        NodePhase p = nd.phase();
        NodeHealth h = nd.health();
        if (p == NodePhase::Down || h == NodeHealth::Dead) {
            // Physically off, or declared dead and therefore fenced
            // in applyChurn(): reclaim the grant entirely.
            demands[i].trust = NodeTrust::Dead;
        } else if (p == NodePhase::Hung || nd.blackoutActive()
                   || h == NodeHealth::Suspect
                   || (p == NodePhase::Up && !nd.telemetryOk())) {
            // Silent or untrustworthy but possibly still drawing:
            // reserve the last-known conservative envelope as both
            // floor and ceiling. A node with no completed epoch yet
            // has no envelope — reserve the epoch-0 even share, the
            // cap its policy was built with and cannot exceed.
            double r = nd.staleReserveW();
            if (!(r > 0.0))
                r = cfg.budgetW / static_cast<double>(n);
            demands[i].minW = r;
            demands[i].maxW = r;
            demands[i].demand = 0.0;
            demands[i].trust = NodeTrust::Stale;
        } else if (p == NodePhase::Ramping) {
            // Rebooting node ramps from all-min: pin its grant to the
            // power floor until the ramp finishes so the survivors
            // keep the headroom the crash freed up. No history (it
            // crashed before its first epoch completed) falls back
            // to the even share — all-min draw is surely below it.
            double f = nd.telemetryOk() ? outcomes[i].minW
                                        : nd.rebootFloorW();
            if (!(f > 0.0))
                f = cfg.budgetW / static_cast<double>(n);
            demands[i].minW = f;
            demands[i].maxW = f;
            demands[i].demand = 0.0;
        }
    }
    return fastcapAllocate(cfg.budgetW, demands);
}

void
ClusterSim::emitChurnEvent(Tick tick, std::uint64_t node,
                           const char *kind,
                           std::uint64_t spanEpochs)
{
    if (sink) {
        TraceEvent ev(tick, "cluster", "churn");
        ev.f("epoch", epochNo).f("node", node).f("kind", kind);
        if (spanEpochs > 0)
            ev.f("epochs", spanEpochs);
        sink->write(ev);
    }
    if (metrics) {
        metrics->counter(std::string("cluster.churn.") + kind).inc();
    }
}

void
ClusterSim::applyChurn(std::vector<QueuedBatch> &drained)
{
    const ChurnPlan &plan = cfg.churn;
    size_t n = nodes.size();
    Tick tick = static_cast<Tick>(epochNo) * cfg.node.epochLen;
    for (size_t i = 0; i < n; ++i) {
        NodeSim &nd = *nodes[i];
        std::uint64_t node = static_cast<std::uint64_t>(i);

        // Advance lifecycle clocks first: reboots complete, hangs
        // unwedge, ramps finish — all before this epoch's draws, so
        // an episode's length is exactly what the draw said.
        nd.beginEpoch();

        // New failure episodes only strike running nodes. Priority
        // crash > flap > hang > blackout: at most one phase-changing
        // episode begins per node per epoch (a blackout can overlap
        // any of them but is redundant with crash/flap downtime).
        if (nd.phase() == NodePhase::Up) {
            if (churnCrashAt(plan, churnSeedVal, epochNo, node)) {
                nd.crash(plan.rebootEpochs, plan.rampEpochs);
                churnSum.crashes += 1;
                emitChurnEvent(
                    tick, node, "crash",
                    static_cast<std::uint64_t>(plan.rebootEpochs));
            } else if (churnFlapAt(plan, churnSeedVal, epochNo,
                                   node)) {
                nd.crash(1, plan.rampEpochs);
                churnSum.flaps += 1;
                emitChurnEvent(tick, node, "flap", 1);
            } else {
                int hang_len = churnHangLenAt(plan, churnSeedVal,
                                              epochNo, node);
                if (hang_len > 0) {
                    nd.hang(hang_len);
                    churnSum.hangs += 1;
                    emitChurnEvent(
                        tick, node, "hang",
                        static_cast<std::uint64_t>(hang_len));
                } else {
                    int bo = churnBlackoutLenAt(plan, churnSeedVal,
                                                epochNo, node);
                    if (bo > 0) {
                        nd.blackout(bo);
                        churnSum.blackouts += 1;
                        emitChurnEvent(
                            tick, node, "blackout",
                            static_cast<std::uint64_t>(bo));
                    }
                }
            }
        }

        // Heartbeat deadline: a node answers iff it is running (a
        // ramping node is running). Telemetry blackouts silence the
        // *reports* but not the heartbeat — the monitor only
        // suspects what stops answering.
        bool heartbeat = nd.phase() == NodePhase::Up
                         || nd.phase() == NodePhase::Ramping;
        HealthMonitor::Verdict v = monitor.observe(
            static_cast<int>(i), heartbeat);
        if (v.justDied) {
            churnSum.deaths += 1;
            // Fence before reclaiming: the monitor cannot tell a
            // crash from a hang, and reclaiming a hung node's watts
            // would double-spend them. Forcing power-off makes the
            // zero-reservation safe (STONITH).
            if (nd.phase() == NodePhase::Up
                || nd.phase() == NodePhase::Hung) {
                nd.crash(plan.rebootEpochs, plan.rampEpochs);
                churnSum.fences += 1;
                emitChurnEvent(
                    tick, node, "fence",
                    static_cast<std::uint64_t>(plan.rebootEpochs));
            }
            emitChurnEvent(tick, node, "dead", 0);
            // Self-healing: the dead node's backlog drains to the
            // balancer for re-routing across the survivors.
            std::vector<QueuedBatch> q = nd.drainQueue();
            drained.insert(drained.end(), q.begin(), q.end());
        }
        if (v.justRejoined)
            emitChurnEvent(tick, node, "rejoin", 0);
        if (nd.phase() == NodePhase::Up
            && monitor.health(static_cast<int>(i))
                   == NodeHealth::Rejoining) {
            // Ramp done and still answering: full member again.
            monitor.markRampDone(static_cast<int>(i));
            churnSum.rejoins += 1;
            emitChurnEvent(tick, node, "alive", 0);
        }
        nd.setHealth(monitor.health(static_cast<int>(i)));
    }
}

std::uint64_t
ClusterSim::unroutedRequests() const
{
    std::uint64_t total = 0;
    for (const QueuedBatch &b : unrouted)
        total += b.remaining;
    return total;
}

ClusterEpochStats
ClusterSim::step()
{
    size_t n = nodes.size();
    const bool churned = cfg.churn.enabled();
    ClusterEpochStats st;
    st.epoch = epochNo;

    // Serial churn pre-phase: lifecycle clocks, new episodes,
    // heartbeat deadlines, fencing, queue drains — all before the
    // balancer and allocator look at the fleet, so this epoch's
    // routing and grants already see this epoch's failures.
    std::vector<QueuedBatch> drained;
    if (churned)
        applyChurn(drained);

    std::uint64_t arrivals = arrivalsInEpoch(
        cfg.arrival, epochNo, ticksToSeconds(cfg.node.epochLen));
    st.arrivals = arrivals;

    std::vector<double> w = routeWeights();
    double wsum = 0.0;
    for (double v : w)
        wsum += v;
    const bool routable = !churned || wsum > 0.0;

    // Self-healing: batches drained from dead nodes (plus anything
    // parked from earlier all-dead epochs) are re-routed across the
    // survivors with their original arrival epochs, so their latency
    // keeps accruing from the real arrival, not the re-route.
    if (routable) {
        while (!unrouted.empty()) {
            drained.push_back(unrouted.front());
            unrouted.pop_front();
        }
        for (const QueuedBatch &b : drained) {
            std::vector<std::uint64_t> split = largestRemainderSplit(
                b.remaining, w, epochNo,
                cfg.lb == LbPolicy::RoundRobin);
            for (size_t i = 0; i < n; ++i) {
                if (split[i])
                    nodes[i]->enqueueAged(b.arrivalEpoch, split[i]);
            }
            st.reroutedRequests += b.remaining;
            churnSum.reroutedRequests += b.remaining;
        }
    } else {
        for (const QueuedBatch &b : drained)
            unrouted.push_back(b);
    }

    std::vector<std::uint64_t> routed = route(arrivals, w);
    if (!routable && arrivals > 0) {
        QueuedBatch park;
        park.arrivalEpoch = epochNo;
        park.remaining = arrivals;
        unrouted.push_back(park);
    } else {
        for (size_t i = 0; i < n; ++i)
            nodes[i]->enqueue(routed[i], epochNo);
    }

    std::vector<double> grants = computeGrants();

    double epoch_secs = ticksToSeconds(cfg.node.epochLen);
    std::vector<NodeServiceStats> svc(n);

    // The parallel quantum: each node epoch is a sealed deterministic
    // unit; outcomes land in pre-sized slots, so worker scheduling
    // cannot reorder anything observable. The per-node directive
    // (run / hold / sleep) was fixed by the serial pre-phase.
    exp::parallelFor(
        exp::resolveJobs(cfg.jobs), n, [&](std::size_t i) {
            switch (nodes[i]->phase()) {
              case NodePhase::Down:
                outcomes[i] = nodes[i]->downEpoch();
                svc[i] = NodeServiceStats{};
                break;
              case NodePhase::Hung:
                outcomes[i] = nodes[i]->holdEpoch();
                svc[i] = NodeServiceStats{};
                break;
              case NodePhase::Up:
              case NodePhase::Ramping:
                outcomes[i] = nodes[i]->advanceEpoch(grants[i]);
                svc[i] = nodes[i]->serveQueue(
                    epochNo, epoch_secs,
                    cfg.arrival.instrPerRequest,
                    cfg.arrival.sloSecs);
                break;
            }
        });

    // Serial aggregation and tracing, in node-index order.
    double latency_sum = 0.0;
    Tick tick = static_cast<Tick>(epochNo + 1) * cfg.node.epochLen;
    for (size_t i = 0; i < n; ++i) {
        const NodeEpochOutcome &o = outcomes[i];
        st.grantSumW += o.grantW;
        st.powerW += o.avgPowerW;
        st.completed += svc[i].completed;
        st.sloViolations += svc[i].sloViolations;
        st.queued += nodes[i]->queuedRequests();
        latency_sum += svc[i].latencySecsSum;
        if (svc[i].maxLatencySecs > st.maxLatencySecs)
            st.maxLatencySecs = svc[i].maxLatencySecs;
        if (churned) {
            switch (nodes[i]->phase()) {
              case NodePhase::Down:
                st.downNodes += 1;
                break;
              case NodePhase::Hung:
                st.hungNodes += 1;
                break;
              default:
                break;
            }
        }
        if (sink) {
            TraceEvent ev(tick, "cluster", "node");
            ev.f("epoch", st.epoch)
                .f("node", static_cast<std::uint64_t>(i))
                .f("grant_w", o.grantW)
                .f("power_w", o.avgPowerW)
                .f("pred_w", o.predictedW)
                .f("min_w", o.minW)
                .f("max_w", o.maxW)
                .f("instrs", o.instrs)
                .f("queue", nodes[i]->queuedRequests())
                .f("completed", svc[i].completed)
                .f("slo_viol", svc[i].sloViolations)
                .f("mem_idx", o.memIdx)
                .f("avg_core_idx", o.avgCoreIdx);
            if (churned) {
                ev.f("phase", nodePhaseName(nodes[i]->phase()))
                    .f("health",
                       nodeHealthName(nodes[i]->health()));
            }
            sink->write(ev);
        }
    }
    st.queued += unroutedRequests();
    st.meanLatencySecs =
        st.completed
            ? latency_sum / static_cast<double>(st.completed)
            : 0.0;
    st.capExceeded = cfg.budgetW > 0.0 && st.powerW > cfg.budgetW;
    if (churned) {
        st.suspectNodes = static_cast<std::uint64_t>(
            monitor.countWith(NodeHealth::Suspect));
        st.deadNodes = static_cast<std::uint64_t>(
            monitor.countWith(NodeHealth::Dead));
        churnSum.downNodeEpochs += st.downNodes;
        for (size_t i = 0; i < n; ++i) {
            if (nodes[i]->phase() != NodePhase::Up) {
                st.degraded = true;
                break;
            }
        }
    }

    if (sink) {
        TraceEvent ev(tick, "cluster", "epoch");
        ev.f("epoch", st.epoch)
            .f("arrivals", st.arrivals)
            .f("grant_sum_w", st.grantSumW)
            .f("power_w", st.powerW)
            .f("budget_w", cfg.budgetW)
            .f("completed", st.completed)
            .f("slo_violations", st.sloViolations)
            .f("queued", st.queued)
            .f("mean_latency_s", st.meanLatencySecs)
            .f("max_latency_s", st.maxLatencySecs)
            .f("cap_exceeded",
               static_cast<std::uint64_t>(st.capExceeded ? 1 : 0));
        if (churned) {
            ev.f("down_nodes", st.downNodes)
                .f("hung_nodes", st.hungNodes)
                .f("suspect_nodes", st.suspectNodes)
                .f("dead_nodes", st.deadNodes)
                .f("rerouted", st.reroutedRequests)
                .f("degraded",
                   static_cast<std::uint64_t>(st.degraded ? 1 : 0));
        }
        sink->write(ev);
    }
    if (metrics) {
        metrics->counter("cluster.epochs").inc();
        metrics->counter("cluster.arrivals").inc(st.arrivals);
        metrics->counter("cluster.completed").inc(st.completed);
        metrics->counter("cluster.slo_violations")
            .inc(st.sloViolations);
        if (st.capExceeded)
            metrics->counter("cluster.cap_violations").inc();
        metrics->accum("cluster.power_w").sample(st.powerW);
        metrics->accum("cluster.queued").sample(
            static_cast<double>(st.queued));
        if (churned) {
            metrics->counter("cluster.rerouted_requests")
                .inc(st.reroutedRequests);
            metrics->counter("cluster.node_epochs_down")
                .inc(st.downNodes);
        }
    }
    epochNo += 1;
    return st;
}

ClusterResult
ClusterSim::run()
{
    ClusterResult r;
    size_t n = nodes.size();
    r.epochs.reserve(static_cast<size_t>(cfg.epochs));
    for (int e = 0; e < cfg.epochs; ++e) {
        ClusterEpochStats st = step();
        r.totalArrivals += st.arrivals;
        r.totalCompleted += st.completed;
        r.totalSloViolations += st.sloViolations;
        if (st.powerW > r.worstPowerW)
            r.worstPowerW = st.powerW;
        if (st.capExceeded)
            r.capViolationEpochs += 1;
        r.nodeEpochsServing += static_cast<std::uint64_t>(n)
                               - st.downNodes - st.hungNodes;
        if (st.degraded)
            r.sloViolationsDegraded += st.sloViolations;
        else
            r.sloViolationsClean += st.sloViolations;
        r.epochs.push_back(st);
    }
    r.nodeEpochs = static_cast<std::uint64_t>(cfg.epochs)
                   * static_cast<std::uint64_t>(n);
    r.availability =
        r.nodeEpochs
            ? static_cast<double>(r.nodeEpochsServing)
                  / static_cast<double>(r.nodeEpochs)
            : 1.0;
    r.churn = churnSum;
    r.finalQueued += unroutedRequests();
    for (const std::unique_ptr<NodeSim> &nd : nodes) {
        r.finalQueued += nd->queuedRequests();
        r.totalEvents += nd->eventsDispatched();
        fault::FaultSummary fs = nd->faultSummary();
        r.faults.noisyEpochs += fs.noisyEpochs;
        r.faults.staleProfiles += fs.staleProfiles;
        r.faults.counterDropouts += fs.counterDropouts;
        r.faults.transitionsDenied += fs.transitionsDenied;
        r.faults.transitionsDelayed += fs.transitionsDelayed;
        r.faults.transitionsClamped += fs.transitionsClamped;
        r.faults.jitteredEpochs += fs.jitteredEpochs;
    }
    return r;
}

void
writeClusterJsonReport(const ClusterConfig &cfg,
                       const ClusterResult &result, std::ostream &os)
{
    JsonWriter j(os);
    j.beginObject();
    j.field("nodes", cfg.numNodes);
    j.field("policy", cfg.policy);
    j.field("mix", cfg.mix);
    j.field("budget_w", cfg.budgetW);
    j.field("lb", lbPolicyName(cfg.lb));
    j.field("arrival", formatArrivalSpec(cfg.arrival));
    j.field("seed", cfg.seed);
    j.field("cluster_epochs",
            static_cast<std::uint64_t>(cfg.epochs));
    j.field("total_arrivals", result.totalArrivals);
    j.field("total_completed", result.totalCompleted);
    j.field("total_slo_violations", result.totalSloViolations);
    j.field("final_queued", result.finalQueued);
    j.field("worst_power_w", result.worstPowerW);
    j.field("cap_violation_epochs", result.capViolationEpochs);
    if (cfg.faults.enabled()) {
        j.beginObject("faults");
        j.field("noisy_epochs", result.faults.noisyEpochs);
        j.field("stale_profiles", result.faults.staleProfiles);
        j.field("counter_dropouts", result.faults.counterDropouts);
        j.field("transitions_denied",
                result.faults.transitionsDenied);
        j.field("transitions_delayed",
                result.faults.transitionsDelayed);
        j.field("transitions_clamped",
                result.faults.transitionsClamped);
        j.field("jittered_epochs", result.faults.jitteredEpochs);
        j.endObject();
    }
    if (cfg.churn.enabled()) {
        j.beginObject("churn");
        j.field("spec", formatChurnSpec(cfg.churn));
        j.field("crashes", result.churn.crashes);
        j.field("flaps", result.churn.flaps);
        j.field("hangs", result.churn.hangs);
        j.field("blackouts", result.churn.blackouts);
        j.field("deaths", result.churn.deaths);
        j.field("fences", result.churn.fences);
        j.field("rejoins", result.churn.rejoins);
        j.field("rerouted_requests", result.churn.reroutedRequests);
        j.field("down_node_epochs", result.churn.downNodeEpochs);
        j.field("node_epochs", result.nodeEpochs);
        j.field("node_epochs_serving", result.nodeEpochsServing);
        j.field("availability", result.availability);
        j.field("slo_violations_degraded",
                result.sloViolationsDegraded);
        j.field("slo_violations_clean", result.sloViolationsClean);
        j.endObject();
    }
    j.beginArray("epochs");
    for (const ClusterEpochStats &st : result.epochs) {
        j.beginObject();
        j.field("epoch", st.epoch);
        j.field("arrivals", st.arrivals);
        j.field("grant_sum_w", st.grantSumW);
        j.field("power_w", st.powerW);
        j.field("completed", st.completed);
        j.field("slo_violations", st.sloViolations);
        j.field("queued", st.queued);
        j.field("mean_latency_s", st.meanLatencySecs);
        j.field("max_latency_s", st.maxLatencySecs);
        j.field("cap_exceeded", st.capExceeded);
        if (cfg.churn.enabled()) {
            j.field("down_nodes", st.downNodes);
            j.field("hung_nodes", st.hungNodes);
            j.field("suspect_nodes", st.suspectNodes);
            j.field("dead_nodes", st.deadNodes);
            j.field("rerouted", st.reroutedRequests);
            j.field("degraded", st.degraded);
        }
        j.endObject();
    }
    j.endArray();
    j.endObject();
    os << "\n";
}

} // namespace cluster
} // namespace coscale
