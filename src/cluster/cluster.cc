#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

#include "check/contract.hh"
#include "cluster/allocator.hh"
#include "common/json.hh"
#include "exp/engine.hh"
#include "exp/policies.hh"
#include "workloads/spec_catalogue.hh"

namespace coscale {
namespace cluster {

namespace {

/**
 * Nodes run open-ended: the mix is a compute substrate for the
 * request stream, not a finite job, so the per-app budget is pushed
 * out of reach (phase lengths were already expanded from the real
 * budget before this override).
 */
constexpr std::uint64_t openEndedBudget = 1'000'000'000'000ULL;

/** Effectively-uncapped watts for policies built without a budget. */
constexpr double uncappedWatts = 1e9;

} // namespace

LbPolicy
parseLbPolicy(const std::string &name)
{
    if (name == "rr" || name == "round-robin" || name == "roundrobin")
        return LbPolicy::RoundRobin;
    if (name == "least-loaded" || name == "leastloaded" || name == "ll")
        return LbPolicy::LeastLoaded;
    if (name == "weighted" || name == "capacity"
        || name == "weighted-capacity") {
        return LbPolicy::WeightedCapacity;
    }
    throw std::invalid_argument(
        "unknown load-balancer policy '" + name
        + "'; valid names: rr, least-loaded, weighted");
}

const char *
lbPolicyName(LbPolicy lb)
{
    switch (lb) {
      case LbPolicy::RoundRobin:
        return "rr";
      case LbPolicy::LeastLoaded:
        return "least-loaded";
      case LbPolicy::WeightedCapacity:
        return "weighted";
    }
    return "?";
}

SystemConfig
makeNodeConfig(double scale, int cores)
{
    SystemConfig c = makeScaledConfig(scale);
    COSCALE_CHECK(cores >= 1 && cores <= c.numCores,
                  "node cores must be in [1, %d]", c.numCores);
    c.numCores = cores;
    c.power.numCores = cores;
    // Node-sized memory system: one channel, one DIMM. The 16-core
    // server's four-channel background power would swamp a small
    // node's dynamic range and leave nothing for a cap to trade.
    c.geom.channels = 1;
    c.geom.dimmsPerChannel = 1;
    c.power.geom = c.geom;
    c.warmupEpochs = 0;
    return c;
}

ClusterSim::ClusterSim(const ClusterConfig &cfg_in) : cfg(cfg_in)
{
    COSCALE_CHECK(cfg.numNodes >= 1, "cluster needs at least 1 node");
    COSCALE_CHECK(cfg.epochs >= 1, "cluster needs at least 1 epoch");

    const WorkloadMix &mix = mixByName(cfg.mix);
    std::vector<AppSpec> apps =
        expandMix(mix, cfg.node.numCores, cfg.node.instrBudget);

    double node_cap = cfg.budgetW > 0.0
                          ? cfg.budgetW / cfg.numNodes
                          : uncappedWatts;
    PolicyFactory factory = exp::requirePolicyFactory(
        cfg.policy, cfg.node.numCores, cfg.node.gamma, node_cap);

    nodes.reserve(static_cast<size_t>(cfg.numNodes));
    for (int i = 0; i < cfg.numNodes; ++i) {
        SystemConfig nc = cfg.node;
        std::uint64_t s = arrivalHash(
            cfg.seed, static_cast<std::uint64_t>(i),
            ArrivalStream::NodeSeed);
        nc.seed = s ? s : 1;
        nc.instrBudget = openEndedBudget;
        nodes.push_back(std::make_unique<NodeSim>(i, nc, apps,
                                                  factory,
                                                  cfg.faults));
    }
    if (cfg.budgetW > 0.0) {
        // Safe boot: a capped fleet starts all-min, so epoch 0 (which
        // profiles under the boot configuration) stays under any
        // feasible budget instead of opening flat-out at all-max.
        FreqConfig low;
        low.coreIdx.assign(
            static_cast<size_t>(cfg.node.numCores),
            cfg.node.coreLadder.size() - 1);
        low.memIdx = cfg.node.memLadder.size() - 1;
        for (std::unique_ptr<NodeSim> &nd : nodes)
            nd->presetConfig(low);
    }
    outcomes.assign(static_cast<size_t>(cfg.numNodes),
                    NodeEpochOutcome{});
}

void
ClusterSim::attachObs(TraceSink *sink_, MetricsRegistry *metrics_)
{
    sink = sink_;
    metrics = metrics_;
}

std::vector<std::uint64_t>
ClusterSim::route(std::uint64_t arrivals)
{
    size_t n = nodes.size();
    std::vector<std::uint64_t> counts(n, 0);
    if (arrivals == 0)
        return counts;

    std::vector<double> w(n, 1.0);
    if (cfg.lb == LbPolicy::LeastLoaded) {
        for (size_t i = 0; i < n; ++i) {
            w[i] = 1.0
                   / (1.0
                      + static_cast<double>(
                          nodes[i]->queuedRequests()));
        }
    } else if (cfg.lb == LbPolicy::WeightedCapacity && epochNo > 0) {
        for (size_t i = 0; i < n; ++i)
            w[i] = static_cast<double>(outcomes[i].instrs);
    }
    double total = 0.0;
    for (double v : w)
        total += v;
    if (!(total > 0.0)) {
        w.assign(n, 1.0);
        total = static_cast<double>(n);
    }

    // Largest-remainder apportionment: exact integer split, biased
    // only by the fractional parts (deterministic tie-break by node
    // index; RoundRobin rotates the leftover start so small streams
    // do not always favour node 0).
    std::vector<double> frac(n, 0.0);
    std::uint64_t assigned = 0;
    for (size_t i = 0; i < n; ++i) {
        double share = static_cast<double>(arrivals) * w[i] / total;
        double fl = std::floor(share);
        counts[i] = static_cast<std::uint64_t>(fl);
        frac[i] = share - fl;
        assigned += counts[i];
    }
    std::uint64_t leftover =
        arrivals > assigned ? arrivals - assigned : 0;
    if (cfg.lb == LbPolicy::RoundRobin) {
        size_t start = static_cast<size_t>(epochNo % n);
        for (std::uint64_t k = 0; k < leftover; ++k)
            counts[(start + k) % n] += 1;
    } else {
        std::vector<size_t> order(n);
        for (size_t i = 0; i < n; ++i)
            order[i] = i;
        std::stable_sort(order.begin(), order.end(),
                         [&frac](size_t a, size_t b) {
                             return frac[a] > frac[b];
                         });
        for (std::uint64_t k = 0; k < leftover; ++k)
            counts[order[static_cast<size_t>(k) % n]] += 1;
    }
    return counts;
}

std::vector<double>
ClusterSim::computeGrants()
{
    size_t n = nodes.size();
    std::vector<double> grants(n, 0.0);
    if (cfg.budgetW <= 0.0)
        return grants; // uncapped: advanceEpoch(0) leaves caps alone

    if (epochNo == 0) {
        // No outcomes to size demands from yet: even split.
        double share = cfg.budgetW / static_cast<double>(n);
        grants.assign(n, share);
        return grants;
    }
    std::vector<NodePowerDemand> demands(n);
    for (size_t i = 0; i < n; ++i) {
        demands[i].minW = outcomes[i].minW;
        demands[i].maxW = outcomes[i].maxW;
        demands[i].demand =
            static_cast<double>(nodes[i]->queuedRequests());
    }
    return fastcapAllocate(cfg.budgetW, demands);
}

ClusterEpochStats
ClusterSim::step()
{
    size_t n = nodes.size();
    std::uint64_t arrivals = arrivalsInEpoch(
        cfg.arrival, epochNo, ticksToSeconds(cfg.node.epochLen));
    std::vector<std::uint64_t> routed = route(arrivals);
    for (size_t i = 0; i < n; ++i)
        nodes[i]->enqueue(routed[i], epochNo);
    std::vector<double> grants = computeGrants();

    double epoch_secs = ticksToSeconds(cfg.node.epochLen);
    std::vector<NodeServiceStats> svc(n);

    // The parallel quantum: each node epoch is a sealed deterministic
    // unit; outcomes land in pre-sized slots, so worker scheduling
    // cannot reorder anything observable.
    exp::parallelFor(
        exp::resolveJobs(cfg.jobs), n, [&](std::size_t i) {
            outcomes[i] = nodes[i]->advanceEpoch(grants[i]);
            svc[i] = nodes[i]->serveQueue(
                epochNo, epoch_secs, cfg.arrival.instrPerRequest,
                cfg.arrival.sloSecs);
        });

    // Serial aggregation and tracing, in node-index order.
    ClusterEpochStats st;
    st.epoch = epochNo;
    st.arrivals = arrivals;
    double latency_sum = 0.0;
    Tick tick = static_cast<Tick>(epochNo + 1) * cfg.node.epochLen;
    for (size_t i = 0; i < n; ++i) {
        const NodeEpochOutcome &o = outcomes[i];
        st.grantSumW += o.grantW;
        st.powerW += o.avgPowerW;
        st.completed += svc[i].completed;
        st.sloViolations += svc[i].sloViolations;
        st.queued += nodes[i]->queuedRequests();
        latency_sum += svc[i].latencySecsSum;
        if (svc[i].maxLatencySecs > st.maxLatencySecs)
            st.maxLatencySecs = svc[i].maxLatencySecs;
        if (sink) {
            sink->write(
                TraceEvent(tick, "cluster", "node")
                    .f("epoch", st.epoch)
                    .f("node", static_cast<std::uint64_t>(i))
                    .f("grant_w", o.grantW)
                    .f("power_w", o.avgPowerW)
                    .f("pred_w", o.predictedW)
                    .f("min_w", o.minW)
                    .f("max_w", o.maxW)
                    .f("instrs", o.instrs)
                    .f("queue", nodes[i]->queuedRequests())
                    .f("completed", svc[i].completed)
                    .f("slo_viol", svc[i].sloViolations)
                    .f("mem_idx", o.memIdx)
                    .f("avg_core_idx", o.avgCoreIdx));
        }
    }
    st.meanLatencySecs =
        st.completed
            ? latency_sum / static_cast<double>(st.completed)
            : 0.0;
    st.capExceeded = cfg.budgetW > 0.0 && st.powerW > cfg.budgetW;

    if (sink) {
        sink->write(
            TraceEvent(tick, "cluster", "epoch")
                .f("epoch", st.epoch)
                .f("arrivals", st.arrivals)
                .f("grant_sum_w", st.grantSumW)
                .f("power_w", st.powerW)
                .f("budget_w", cfg.budgetW)
                .f("completed", st.completed)
                .f("slo_violations", st.sloViolations)
                .f("queued", st.queued)
                .f("mean_latency_s", st.meanLatencySecs)
                .f("max_latency_s", st.maxLatencySecs)
                .f("cap_exceeded",
                   static_cast<std::uint64_t>(st.capExceeded ? 1
                                                             : 0)));
    }
    if (metrics) {
        metrics->counter("cluster.epochs").inc();
        metrics->counter("cluster.arrivals").inc(st.arrivals);
        metrics->counter("cluster.completed").inc(st.completed);
        metrics->counter("cluster.slo_violations")
            .inc(st.sloViolations);
        if (st.capExceeded)
            metrics->counter("cluster.cap_violations").inc();
        metrics->accum("cluster.power_w").sample(st.powerW);
        metrics->accum("cluster.queued").sample(
            static_cast<double>(st.queued));
    }
    epochNo += 1;
    return st;
}

ClusterResult
ClusterSim::run()
{
    ClusterResult r;
    r.epochs.reserve(static_cast<size_t>(cfg.epochs));
    for (int e = 0; e < cfg.epochs; ++e) {
        ClusterEpochStats st = step();
        r.totalArrivals += st.arrivals;
        r.totalCompleted += st.completed;
        r.totalSloViolations += st.sloViolations;
        if (st.powerW > r.worstPowerW)
            r.worstPowerW = st.powerW;
        if (st.capExceeded)
            r.capViolationEpochs += 1;
        r.epochs.push_back(st);
    }
    for (const std::unique_ptr<NodeSim> &nd : nodes) {
        r.finalQueued += nd->queuedRequests();
        r.totalEvents += nd->eventsDispatched();
        fault::FaultSummary fs = nd->faultSummary();
        r.faults.noisyEpochs += fs.noisyEpochs;
        r.faults.staleProfiles += fs.staleProfiles;
        r.faults.counterDropouts += fs.counterDropouts;
        r.faults.transitionsDenied += fs.transitionsDenied;
        r.faults.transitionsDelayed += fs.transitionsDelayed;
        r.faults.transitionsClamped += fs.transitionsClamped;
        r.faults.jitteredEpochs += fs.jitteredEpochs;
    }
    return r;
}

void
writeClusterJsonReport(const ClusterConfig &cfg,
                       const ClusterResult &result, std::ostream &os)
{
    JsonWriter j(os);
    j.beginObject();
    j.field("nodes", cfg.numNodes);
    j.field("policy", cfg.policy);
    j.field("mix", cfg.mix);
    j.field("budget_w", cfg.budgetW);
    j.field("lb", lbPolicyName(cfg.lb));
    j.field("arrival", formatArrivalSpec(cfg.arrival));
    j.field("seed", cfg.seed);
    j.field("cluster_epochs",
            static_cast<std::uint64_t>(cfg.epochs));
    j.field("total_arrivals", result.totalArrivals);
    j.field("total_completed", result.totalCompleted);
    j.field("total_slo_violations", result.totalSloViolations);
    j.field("final_queued", result.finalQueued);
    j.field("worst_power_w", result.worstPowerW);
    j.field("cap_violation_epochs", result.capViolationEpochs);
    if (cfg.faults.enabled()) {
        j.beginObject("faults");
        j.field("noisy_epochs", result.faults.noisyEpochs);
        j.field("stale_profiles", result.faults.staleProfiles);
        j.field("counter_dropouts", result.faults.counterDropouts);
        j.field("transitions_denied",
                result.faults.transitionsDenied);
        j.field("transitions_delayed",
                result.faults.transitionsDelayed);
        j.field("transitions_clamped",
                result.faults.transitionsClamped);
        j.field("jittered_epochs", result.faults.jitteredEpochs);
        j.endObject();
    }
    j.beginArray("epochs");
    for (const ClusterEpochStats &st : result.epochs) {
        j.beginObject();
        j.field("epoch", st.epoch);
        j.field("arrivals", st.arrivals);
        j.field("grant_sum_w", st.grantSumW);
        j.field("power_w", st.powerW);
        j.field("completed", st.completed);
        j.field("slo_violations", st.sloViolations);
        j.field("queued", st.queued);
        j.field("mean_latency_s", st.meanLatencySecs);
        j.field("max_latency_s", st.maxLatencySecs);
        j.field("cap_exceeded", st.capExceeded);
        j.endObject();
    }
    j.endArray();
    j.endObject();
    os << "\n";
}

} // namespace cluster
} // namespace coscale
