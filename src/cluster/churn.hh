/**
 * @file
 * Cluster-scale node churn: a seeded plan of crashes, reboots with
 * warm-up ramps, hang/straggler episodes, flapping, and telemetry
 * blackouts toward the allocator (DESIGN.md §12 "Failure domain &
 * self-healing").
 *
 * Determinism contract: every churn decision is a pure function of
 * (plan, seed, epoch, node) through the stateless splitmix64 hash
 * from fault/fault_plan.hh, on dedicated FaultStream lanes (200+)
 * that can never collide with the fault layer's (1..7) or the
 * arrival layer's (100+). All churn state evolves in the cluster's
 * serial pre-phase, so a churned run keeps the exact
 * bit-identical-under---jobs-N contract of a clean one.
 */

#ifndef COSCALE_CLUSTER_CHURN_HH
#define COSCALE_CLUSTER_CHURN_HH

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "fault/fault_plan.hh"

namespace coscale {
namespace cluster {

/**
 * Structured parse failure for a --churn spec string, mirroring
 * ArrivalParseError: a kind, the offending token, and the character
 * offset into the spec, so front ends can point at the exact mistake.
 */
class ChurnParseError : public std::runtime_error
{
  public:
    enum class Kind
    {
        EmptySpec,    //!< the spec string is empty
        BadToken,     //!< token is not of the form key=value
        UnknownKey,   //!< key is not a recognised knob
        BadValue,     //!< value is not a number of the expected form
        OutOfRange,   //!< value parsed but violates the knob's range
        DuplicateKey, //!< the same key appeared twice
    };

    ChurnParseError(Kind kind, std::string token, std::size_t offset,
                    const std::string &detail);

    Kind kind() const { return errKind; }
    const std::string &token() const { return errToken; }
    std::size_t charOffset() const { return errOffset; }

  private:
    Kind errKind;
    std::string errToken;
    std::size_t errOffset;
};

/**
 * What can happen to a node and how often, plus the health monitor's
 * suspicion thresholds. A plain value: two equal plans produce
 * bit-identical churn. All probabilities are per node per cluster
 * epoch, drawn only while the node is up; a default-constructed plan
 * is "no churn" and the cluster skips the whole failure domain
 * (zero cost when off, like FaultPlan and obs/).
 */
struct ChurnPlan
{
    /** Churn-stream seed. 0 means "derive from the cluster seed". */
    std::uint64_t seed = 0;

    /** Probability a node crashes (power-loss reboot). */
    double crashProb = 0.0;

    /** Epochs a crashed node stays down before rebooting (>= 1). */
    int rebootEpochs = 3;

    /**
     * Warm-up ramp after a reboot: the node rejoins at the all-min
     * configuration and its grant is pinned to its power floor for
     * this many epochs before it resumes full participation.
     */
    int rampEpochs = 2;

    /** Probability of a flap: a crash with a 1-epoch downtime. */
    double flapProb = 0.0;

    /**
     * Probability a node starts a hang/straggler episode: it stays
     * powered (stuck drawing its last epoch's power) but retires
     * nothing, serves nothing, and misses its heartbeats.
     */
    double hangProb = 0.0;

    /** Maximum hang length; each episode draws 1..hangEpochs. */
    int hangEpochs = 2;

    /**
     * Probability of a telemetry blackout toward the allocator: the
     * node keeps running and heartbeating, but its envelope reports
     * do not arrive, so the allocator must budget it conservatively.
     */
    double blackoutProb = 0.0;

    /** Maximum blackout length; each draws 1..blackoutEpochs. */
    int blackoutEpochs = 1;

    /** Missed heartbeats before alive -> suspect (>= 1). */
    int suspectAfter = 1;

    /**
     * Missed heartbeats before suspect -> dead (>= suspectAfter).
     * Declaring a node dead fences it (a hung node is forcibly
     * powered off, STONITH-style), drains its queue, and reclaims
     * its power grant.
     */
    int deadAfter = 3;

    /** True when any failure mode is armed. */
    bool
    enabled() const
    {
        return crashProb > 0.0 || flapProb > 0.0 || hangProb > 0.0
               || blackoutProb > 0.0;
    }
};

/**
 * Parse a comma-separated key=value spec, e.g.
 *   "crash=0.05,reboot=3,ramp=2,flap=0.02,hang=0.05,hangx=2,
 *    blackout=0.1,blackoutx=1,suspect=1,dead=3,seed=7"
 * (formatChurnSpec()'s canonical key order; keys may appear in any
 * order on input).
 * Unset keys keep their ChurnPlan defaults. Throws ChurnParseError
 * on malformed input (including dead < suspect).
 */
ChurnPlan parseChurnSpec(const std::string &text);

/** Round-trip: a spec string parseChurnSpec() maps back to @p p. */
std::string formatChurnSpec(const ChurnPlan &p);

/** Per-kind event counts accumulated over a churned cluster run. */
struct ChurnSummary
{
    std::uint64_t crashes = 0;   //!< crash episodes started
    std::uint64_t flaps = 0;     //!< 1-epoch crash blips
    std::uint64_t hangs = 0;     //!< hang episodes started
    std::uint64_t blackouts = 0; //!< telemetry blackout episodes
    std::uint64_t fences = 0;    //!< dead verdicts that powered off
                                 //!< a still-drawing (hung) node
    std::uint64_t deaths = 0;    //!< dead verdicts declared
    std::uint64_t rejoins = 0;   //!< ramps completed back to alive
    std::uint64_t reroutedRequests = 0; //!< drained + re-routed
    std::uint64_t downNodeEpochs = 0;   //!< node-epochs spent down

    std::uint64_t
    total() const
    {
        return crashes + flaps + hangs + blackouts + fences + deaths
               + rejoins;
    }
};

/** Resolve the effective churn seed (plan seed, else derived). */
constexpr std::uint64_t
churnSeed(const ChurnPlan &p, std::uint64_t cluster_seed)
{
    if (p.seed)
        return p.seed;
    // Dedicated derivation lane: shifting the cluster seed before the
    // mix keeps churn draws decoupled from every (seed, epoch,
    // stream) tuple the arrival and fault layers can form.
    std::uint64_t s = fault::faultMix64(cluster_seed
                                        ^ 0x636872756e5f6370ULL);
    return s ? s : 1;
}

/** Does @p node crash at @p epoch (drawn only while it is up)? */
bool churnCrashAt(const ChurnPlan &p, std::uint64_t seed,
                  std::uint64_t epoch, std::uint64_t node);

/** Does @p node flap (1-epoch crash) at @p epoch? */
bool churnFlapAt(const ChurnPlan &p, std::uint64_t seed,
                 std::uint64_t epoch, std::uint64_t node);

/** Hang episode length starting at @p epoch: 0 = none, else 1..max. */
int churnHangLenAt(const ChurnPlan &p, std::uint64_t seed,
                   std::uint64_t epoch, std::uint64_t node);

/** Blackout length starting at @p epoch: 0 = none, else 1..max. */
int churnBlackoutLenAt(const ChurnPlan &p, std::uint64_t seed,
                       std::uint64_t epoch, std::uint64_t node);

} // namespace cluster
} // namespace coscale

#endif // COSCALE_CLUSTER_CHURN_HH
