/**
 * @file
 * The performance-counter architecture CoScale requires (Section 3.3).
 *
 * Per core:
 *  - instruction counters: TIC, TMS, TLA, TLM, TLS;
 *  - stall-time integrators for the L2 and memory components of CPI;
 *  - four Core Activity Counters (ALU / FPU / branch / load-store)
 *    for the core power model.
 *
 * Per memory channel: the MemScale queueing/row-buffer counters plus
 * the two power counters (active-vs-idle rank cycles, page
 * open/close events).
 *
 * All counter structs are cumulative plain values; epoch or profiling
 * windows are obtained by snapshotting and subtracting (operator-).
 */

#ifndef COSCALE_STATS_PERF_COUNTERS_HH
#define COSCALE_STATS_PERF_COUNTERS_HH

#include <cstdint>

#include "common/types.hh"

namespace coscale {

/** Per-core performance and activity counters. */
struct CoreCounters
{
    // --- Instruction counters (Section 3.3) ---
    std::uint64_t tic = 0;  //!< Total Instructions Committed
    std::uint64_t tms = 0;  //!< Total L1 Miss Stalls (events)
    std::uint64_t tla = 0;  //!< Total L2 Accesses
    std::uint64_t tlm = 0;  //!< Total L2 Misses
    std::uint64_t tls = 0;  //!< Total L2 Miss Stalls (events)

    // --- Stall/compute time integrators ---
    Tick computeTicks = 0;     //!< executing (core-frequency) time
    Tick l2StallTicks = 0;     //!< stalled on L2 hits
    Tick memStallTicks = 0;    //!< stalled on L2 misses (DRAM)
    Tick transitionTicks = 0;  //!< halted for a DVFS transition

    // --- Core Activity Counters (power model) ---
    std::uint64_t aluOps = 0;
    std::uint64_t fpuOps = 0;
    std::uint64_t branchOps = 0;
    std::uint64_t memOps = 0;

    CoreCounters
    operator-(const CoreCounters &o) const
    {
        CoreCounters d;
        d.tic = tic - o.tic;
        d.tms = tms - o.tms;
        d.tla = tla - o.tla;
        d.tlm = tlm - o.tlm;
        d.tls = tls - o.tls;
        d.computeTicks = computeTicks - o.computeTicks;
        d.l2StallTicks = l2StallTicks - o.l2StallTicks;
        d.memStallTicks = memStallTicks - o.memStallTicks;
        d.transitionTicks = transitionTicks - o.transitionTicks;
        d.aluOps = aluOps - o.aluOps;
        d.fpuOps = fpuOps - o.fpuOps;
        d.branchOps = branchOps - o.branchOps;
        d.memOps = memOps - o.memOps;
        return d;
    }

    CoreCounters &
    operator+=(const CoreCounters &o)
    {
        tic += o.tic;
        tms += o.tms;
        tla += o.tla;
        tlm += o.tlm;
        tls += o.tls;
        computeTicks += o.computeTicks;
        l2StallTicks += o.l2StallTicks;
        memStallTicks += o.memStallTicks;
        transitionTicks += o.transitionTicks;
        aluOps += o.aluOps;
        fpuOps += o.fpuOps;
        branchOps += o.branchOps;
        memOps += o.memOps;
        return *this;
    }
};

/** Per-channel memory-system counters (MemScale's seven plus power). */
struct ChannelCounters
{
    // --- Queueing / service statistics ---
    std::uint64_t readReqs = 0;      //!< demand reads serviced
    std::uint64_t writeReqs = 0;     //!< writebacks serviced
    std::uint64_t prefetchReqs = 0;  //!< prefetch fills serviced
    Tick bankWaitTicks = 0;   //!< read wait due to bank/rank not ready
    Tick busWaitTicks = 0;    //!< extra read wait due to data-bus busy
    Tick serviceTicks = 0;    //!< read ACT-to-data-end, no queueing
    std::uint64_t queueLenSum = 0;   //!< queue length at read arrival
    std::uint64_t queueSamples = 0;  //!< number of such samples

    // --- Row-buffer statistics ---
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    /**
     * Open-page ACTs that first had to close another row (a strict
     * subset of rowMisses, so hit-rate denominators are unchanged).
     * Always zero under closed-page auto-precharge.
     */
    std::uint64_t rowConflicts = 0;

    // --- Power counters ---
    std::uint64_t activations = 0;   //!< page open events (ACT)
    std::uint64_t precharges = 0;    //!< page close events
    std::uint64_t readBursts = 0;
    std::uint64_t writeBursts = 0;
    std::uint64_t refreshes = 0;
    Tick busBusyTicks = 0;    //!< data-bus transferring
    Tick rankActiveTicks = 0; //!< sum over ranks: >= 1 bank open

    ChannelCounters
    operator-(const ChannelCounters &o) const
    {
        ChannelCounters d;
        d.readReqs = readReqs - o.readReqs;
        d.writeReqs = writeReqs - o.writeReqs;
        d.prefetchReqs = prefetchReqs - o.prefetchReqs;
        d.bankWaitTicks = bankWaitTicks - o.bankWaitTicks;
        d.busWaitTicks = busWaitTicks - o.busWaitTicks;
        d.serviceTicks = serviceTicks - o.serviceTicks;
        d.queueLenSum = queueLenSum - o.queueLenSum;
        d.queueSamples = queueSamples - o.queueSamples;
        d.rowHits = rowHits - o.rowHits;
        d.rowMisses = rowMisses - o.rowMisses;
        d.rowConflicts = rowConflicts - o.rowConflicts;
        d.activations = activations - o.activations;
        d.precharges = precharges - o.precharges;
        d.readBursts = readBursts - o.readBursts;
        d.writeBursts = writeBursts - o.writeBursts;
        d.refreshes = refreshes - o.refreshes;
        d.busBusyTicks = busBusyTicks - o.busBusyTicks;
        d.rankActiveTicks = rankActiveTicks - o.rankActiveTicks;
        return d;
    }

    ChannelCounters &
    operator+=(const ChannelCounters &o)
    {
        readReqs += o.readReqs;
        writeReqs += o.writeReqs;
        prefetchReqs += o.prefetchReqs;
        bankWaitTicks += o.bankWaitTicks;
        busWaitTicks += o.busWaitTicks;
        serviceTicks += o.serviceTicks;
        queueLenSum += o.queueLenSum;
        queueSamples += o.queueSamples;
        rowHits += o.rowHits;
        rowMisses += o.rowMisses;
        rowConflicts += o.rowConflicts;
        activations += o.activations;
        precharges += o.precharges;
        readBursts += o.readBursts;
        writeBursts += o.writeBursts;
        refreshes += o.refreshes;
        busBusyTicks += o.busBusyTicks;
        rankActiveTicks += o.rankActiveTicks;
        return *this;
    }
};

/** Shared-LLC counters (for the L2 power model and MPKI reporting). */
struct LlcCounters
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t prefetchIssued = 0;
    std::uint64_t prefetchUseful = 0;

    LlcCounters
    operator-(const LlcCounters &o) const
    {
        LlcCounters d;
        d.accesses = accesses - o.accesses;
        d.hits = hits - o.hits;
        d.misses = misses - o.misses;
        d.writebacks = writebacks - o.writebacks;
        d.prefetchIssued = prefetchIssued - o.prefetchIssued;
        d.prefetchUseful = prefetchUseful - o.prefetchUseful;
        return d;
    }
};

} // namespace coscale

#endif // COSCALE_STATS_PERF_COUNTERS_HH
