/**
 * @file
 * Small statistics helpers: scalar accumulators and fixed-bucket
 * histograms, used by tests and the benchmark harnesses.
 */

#ifndef COSCALE_STATS_ACCUM_HH
#define COSCALE_STATS_ACCUM_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace coscale {

/** Accumulates count/sum/min/max/sum-of-squares of a scalar stream. */
class Accum
{
  public:
    void
    sample(double v)
    {
        n += 1;
        total += v;
        totalSq += v * v;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    std::uint64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n ? total / static_cast<double>(n) : 0.0; }
    double min() const { return n ? lo : 0.0; }
    double max() const { return n ? hi : 0.0; }

    double
    variance() const
    {
        if (n < 2)
            return 0.0;
        double m = mean();
        return totalSq / static_cast<double>(n) - m * m;
    }

    double stddev() const { return std::sqrt(std::max(0.0, variance())); }

    void
    reset()
    {
        *this = Accum();
    }

    /** Merge another accumulator into this one. */
    Accum &
    operator+=(const Accum &other)
    {
        n += other.n;
        total += other.total;
        totalSq += other.totalSq;
        lo = std::min(lo, other.lo);
        hi = std::max(hi, other.hi);
        return *this;
    }

  private:
    std::uint64_t n = 0;
    double total = 0.0;
    double totalSq = 0.0;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
};

/** Linear-bucket histogram over [lo, hi) with overflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, int buckets)
        : lowBound(lo), highBound(hi),
          counts(static_cast<size_t>(buckets) + 2, 0)
    {
    }

    void
    sample(double v)
    {
        size_t idx;
        int inner = static_cast<int>(counts.size()) - 2;
        if (v < lowBound) {
            idx = 0;
        } else if (v >= highBound) {
            idx = counts.size() - 1;
        } else {
            double frac = (v - lowBound) / (highBound - lowBound);
            idx = 1 + static_cast<size_t>(frac * inner);
        }
        counts[idx] += 1;
        stats.sample(v);
    }

    std::uint64_t underflow() const { return counts.front(); }
    std::uint64_t overflow() const { return counts.back(); }

    std::uint64_t
    bucket(int i) const
    {
        return counts[static_cast<size_t>(i) + 1];
    }

    int numBuckets() const { return static_cast<int>(counts.size()) - 2; }

    double low() const { return lowBound; }
    double high() const { return highBound; }

    const Accum &summary() const { return stats; }

  private:
    double lowBound;
    double highBound;
    std::vector<std::uint64_t> counts;
    Accum stats;
};

} // namespace coscale

#endif // COSCALE_STATS_ACCUM_HH
