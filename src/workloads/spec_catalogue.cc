#include "workloads/spec_catalogue.hh"

#include <algorithm>
#include <map>

#include "check/contract.hh"
#include "common/log.hh"

namespace coscale {

namespace {

/**
 * Class-level defaults. Phase lengths in the catalogue are stored as
 * relative weights; expandMix() rescales them so one full cycle of
 * phases spans the configured instruction budget.
 */
struct ClassDefaults
{
    double baseCpi;
    double l1Mpki;
    double seqRunLen;
    std::uint64_t hotBlocks;
};

constexpr ClassDefaults ilpDefaults = {1.50, 8.0, 4.0, 1536};
constexpr ClassDefaults midDefaults = {1.10, 18.0, 6.0, 3072};
constexpr ClassDefaults memDefaults = {0.90, 40.0, 10.0, 4096};

AppPhase
makePhase(const ClassDefaults &d, double weight, double mpki,
          double write_frac, bool fp)
{
    AppPhase p;
    p.instructions = static_cast<std::uint64_t>(weight * 1000.0);
    p.baseCpi = d.baseCpi;
    p.l1Mpki = d.l1Mpki;
    p.llcMpki = mpki;
    p.writeFrac = write_frac;
    p.seqRunLen = d.seqRunLen;
    p.hotBlocks = d.hotBlocks;
    if (fp) {
        p.fAlu = 0.25;
        p.fFpu = 0.30;
        p.fBranch = 0.10;
        p.fMem = 0.35;
    } else {
        p.fAlu = 0.45;
        p.fFpu = 0.02;
        p.fBranch = 0.18;
        p.fMem = 0.35;
    }
    return p;
}

AppSpec
makeApp(const std::string &name, const ClassDefaults &d, double mpki,
        double write_frac, bool fp)
{
    AppSpec s;
    s.name = name;
    s.phases.push_back(makePhase(d, 1.0, mpki, write_frac, fp));
    return s;
}

std::map<std::string, AppSpec>
buildCatalogue()
{
    std::map<std::string, AppSpec> cat;
    auto add = [&](AppSpec s) { cat[s.name] = std::move(s); };

    // --- ILP (compute-intensive) applications ---
    add(makeApp("vortex", ilpDefaults, 0.50, 0.15, false));
    add(makeApp("gcc", ilpDefaults, 0.35, 0.20, false));
    add(makeApp("sixtrack", ilpDefaults, 0.35, 0.10, true));
    add(makeApp("mesa", ilpDefaults, 0.28, 0.12, true));
    add(makeApp("perlbmk", ilpDefaults, 0.15, 0.15, false));
    add(makeApp("crafty", ilpDefaults, 0.20, 0.10, false));
    add(makeApp("gzip", ilpDefaults, 0.15, 0.25, false));
    add(makeApp("eon", ilpDefaults, 0.14, 0.10, false));
    add(makeApp("sjeng", ilpDefaults, 1.10, 0.10, false));
    add(makeApp("hmmer", ilpDefaults, 2.00, 0.40, false));

    // gobmk carries the MIX2 traffic spike visible in Fig. 7: a short
    // burst of memory intensity around 45% of the run.
    {
        AppSpec s;
        s.name = "gobmk";
        s.phases.push_back(makePhase(ilpDefaults, 0.45, 1.5, 0.15, false));
        s.phases.push_back(makePhase(ilpDefaults, 0.10, 9.0, 0.20, false));
        s.phases.push_back(makePhase(ilpDefaults, 0.45, 1.5, 0.15, false));
        add(std::move(s));
    }

    // --- MID (compute/memory balanced) applications ---
    add(makeApp("ammp", midDefaults, 1.90, 0.38, true));
    add(makeApp("gap", midDefaults, 1.00, 0.32, false));
    add(makeApp("wupwise", midDefaults, 2.00, 0.42, true));
    add(makeApp("vpr", midDefaults, 2.00, 0.36, false));
    add(makeApp("apsi", midDefaults, 0.50, 0.55, true));
    add(makeApp("bzip2", midDefaults, 0.60, 0.60, false));
    add(makeApp("astar", midDefaults, 2.80, 0.26, false));
    add(makeApp("parser", midDefaults, 2.20, 0.26, false));
    add(makeApp("twolf", midDefaults, 2.60, 0.25, false));
    add(makeApp("facerec", midDefaults, 2.80, 0.30, true));

    // --- MEM (memory-intensive) applications ---
    add(makeApp("swim", memDefaults, 31.0, 0.50, true));
    add(makeApp("applu", memDefaults, 21.8, 0.42, true));
    add(makeApp("galgel", memDefaults, 10.0, 0.19, true));
    add(makeApp("equake", memDefaults, 10.0, 0.20, true));
    add(makeApp("art", memDefaults, 11.0, 0.20, true));
    add(makeApp("mgrid", memDefaults, 5.00, 0.24, true));
    add(makeApp("fma3d", memDefaults, 7.00, 0.24, true));
    add(makeApp("sphinx3", memDefaults, 4.50, 0.35, true));
    add(makeApp("lucas", memDefaults, 3.00, 0.40, true));

    // milc exhibits the three phases of Fig. 7: initially light
    // memory traffic, then progressively memory-bound.
    {
        AppSpec s;
        s.name = "milc";
        s.phases.push_back(makePhase(memDefaults, 0.35, 2.0, 0.18, true));
        s.phases.push_back(makePhase(memDefaults, 0.30, 7.0, 0.22, true));
        s.phases.push_back(makePhase(memDefaults, 0.35, 12.0, 0.24, true));
        add(std::move(s));
    }

    return cat;
}

const std::map<std::string, AppSpec> &
catalogue()
{
    static const std::map<std::string, AppSpec> cat = buildCatalogue();
    return cat;
}

std::vector<WorkloadMix>
buildMixes()
{
    auto mix = [](const std::string &name, const std::string &cls,
                  std::vector<AppRef> apps, double mpki, double wpki,
                  double calib) {
        WorkloadMix m;
        m.name = name;
        m.wlClass = cls;
        m.apps = std::move(apps);
        m.tableMpki = mpki;
        m.tableWpki = wpki;
        m.mpkiCalib = calib;
        return m;
    };
    auto a = [](const std::string &n) { return AppRef{n, -1.0, -1.0}; };
    auto ao = [](const std::string &n, double mpki, double wf = -1.0) {
        return AppRef{n, mpki, wf};
    };

    // The calibration factors absorb cold-start and hot-set
    // contention misses the real LLC adds on top of the generator's
    // miss intent; they were measured at the default 0.2 time scale
    // (see bench_table1_workloads).
    std::vector<WorkloadMix> mixes;
    mixes.push_back(mix("ILP1", "ILP",
        {a("vortex"), a("gcc"), a("sixtrack"), a("mesa")}, 0.37, 0.06,
        0.60));
    mixes.push_back(mix("ILP2", "ILP",
        {a("perlbmk"), a("crafty"), a("gzip"), a("eon")}, 0.16, 0.03,
        0.44));
    mixes.push_back(mix("ILP3", "ILP",
        {a("sixtrack"), a("mesa"), a("perlbmk"), a("crafty")}, 0.27,
        0.07, 0.62));
    mixes.push_back(mix("ILP4", "ILP",
        {a("vortex"), a("mesa"), a("perlbmk"), a("crafty")}, 0.25, 0.04,
        0.48));

    mixes.push_back(mix("MID1", "MID",
        {a("ammp"), a("gap"), a("wupwise"), a("vpr")}, 1.76, 0.74,
        0.62));
    mixes.push_back(mix("MID2", "MID",
        {a("astar"), a("parser"), a("twolf"), a("facerec")}, 2.61, 0.89,
        0.64));
    mixes.push_back(mix("MID3", "MID",
        {a("apsi"), a("bzip2"), a("ammp"), a("gap")}, 1.00, 0.60,
        0.57));
    mixes.push_back(mix("MID4", "MID",
        {a("wupwise"), a("vpr"), a("astar"), a("parser")}, 2.13, 0.90,
        0.59));

    mixes.push_back(mix("MEM1", "MEM",
        {a("swim"), a("applu"), a("galgel"), a("equake")}, 18.2, 7.92,
        0.96));
    mixes.push_back(mix("MEM2", "MEM",
        {a("art"), a("milc"), a("mgrid"), a("fma3d")}, 7.75, 2.53,
        0.73));
    mixes.push_back(mix("MEM3", "MEM",
        {a("fma3d"), a("mgrid"), a("galgel"), a("equake")}, 7.93, 2.55,
        0.66));
    mixes.push_back(mix("MEM4", "MEM",
        {ao("swim", -1.0, 0.58), ao("applu", -1.0, 0.48), a("sphinx3"),
         a("lucas")}, 15.07, 7.31,
        1.35));

    // The MIX workloads use different SimPoints of the same programs
    // in the original study; the overrides model that.
    mixes.push_back(mix("MIX1", "MIX",
        {ao("applu", 8.5, 0.95), ao("hmmer", 2.0, 0.80), a("gap"),
         a("gzip")}, 2.93, 2.56, 1.12));
    mixes.push_back(mix("MIX2", "MIX",
        {ao("milc", 5.0), a("gobmk"), ao("facerec", 2.0), a("perlbmk")},
        2.34, 0.39, 0.94));
    mixes.push_back(mix("MIX3", "MIX",
        {ao("equake", 7.0), a("ammp"), a("sjeng"), a("crafty")},
        2.55, 0.80, 1.00));
    mixes.push_back(mix("MIX4", "MIX",
        {ao("swim", 4.5, 0.90), a("ammp"), a("twolf"), a("sixtrack")},
        2.35, 1.38, 0.85));
    return mixes;
}

} // namespace

AppSpec
appByName(const std::string &name)
{
    const auto &cat = catalogue();
    auto it = cat.find(name);
    if (it == cat.end())
        fatal("unknown application '%s'", name.c_str());
    return it->second;
}

std::vector<std::string>
catalogueNames()
{
    std::vector<std::string> names;
    for (const auto &kv : catalogue())
        names.push_back(kv.first);
    return names;
}

double
nominalMpki(const AppSpec &spec)
{
    double instr = 0.0;
    double weighted = 0.0;
    for (const auto &p : spec.phases) {
        instr += static_cast<double>(p.instructions);
        weighted += static_cast<double>(p.instructions) * p.llcMpki;
    }
    return instr > 0.0 ? weighted / instr : 0.0;
}

AppSpec
resolveApp(const AppRef &ref)
{
    AppSpec spec = appByName(ref.name);
    if (ref.mpkiOverride > 0.0) {
        double nominal = nominalMpki(spec);
        double scale = ref.mpkiOverride / nominal;
        for (auto &p : spec.phases)
            p.llcMpki *= scale;
    }
    if (ref.writeFracOverride >= 0.0) {
        for (auto &p : spec.phases)
            p.writeFrac = ref.writeFracOverride;
    }
    return spec;
}

AppSpec
scalePhaseLengths(AppSpec spec, double factor)
{
    for (auto &p : spec.phases) {
        double v = static_cast<double>(p.instructions) * factor;
        p.instructions = std::max<std::uint64_t>(
            1000, static_cast<std::uint64_t>(v));
    }
    return spec;
}

const std::vector<WorkloadMix> &
table1Mixes()
{
    static const std::vector<WorkloadMix> mixes = buildMixes();
    return mixes;
}

const WorkloadMix &
mixByName(const std::string &name)
{
    for (const auto &m : table1Mixes()) {
        if (m.name == name)
            return m;
    }
    fatal("unknown workload mix '%s'", name.c_str());
}

std::vector<WorkloadMix>
mixesByClass(const std::string &wl_class)
{
    std::vector<WorkloadMix> out;
    for (const auto &m : table1Mixes()) {
        if (m.wlClass == wl_class)
            out.push_back(m);
    }
    return out;
}

std::vector<AppSpec>
expandMix(const WorkloadMix &mix, int num_cores,
          std::uint64_t instr_budget)
{
    COSCALE_CHECK(!mix.apps.empty(), "mix '%s' has no applications",
                  mix.name.c_str());
    std::vector<AppSpec> specs;
    specs.reserve(static_cast<size_t>(num_cores));
    for (int core = 0; core < num_cores; ++core) {
        const AppRef &ref =
            mix.apps[static_cast<size_t>(core) % mix.apps.size()];
        AppSpec spec = resolveApp(ref);
        if (mix.mpkiCalib != 1.0) {
            for (auto &p : spec.phases)
                p.llcMpki *= mix.mpkiCalib;
        }
        double weight_total = 0.0;
        for (const auto &p : spec.phases)
            weight_total += static_cast<double>(p.instructions);
        spec = scalePhaseLengths(
            spec, static_cast<double>(instr_budget) / weight_total);
        specs.push_back(std::move(spec));
    }
    return specs;
}

void
applyHotFootprints(std::vector<AppSpec> &apps,
                   const std::vector<std::uint64_t> &footprints)
{
    COSCALE_CHECK(!footprints.empty(),
                  "need at least one hot-footprint override");
    for (size_t i = 0; i < apps.size(); ++i) {
        std::uint64_t blocks = footprints[i % footprints.size()];
        COSCALE_CHECK(blocks > 0, "hot footprint must be positive");
        for (AppPhase &p : apps[i].phases)
            p.hotBlocks = blocks;
    }
}

} // namespace coscale
