/**
 * @file
 * The workload substrate: a catalogue of synthetic models for the
 * SPEC 2000/2006 applications referenced in Table 1, and the sixteen
 * workload mixes (ILP/MID/MEM/MIX 1-4).
 *
 * Each application model is calibrated so that the per-mix LLC MPKI
 * and WPKI measured through the simulated 16 MB LLC approximate the
 * paper's Table 1 (verified by bench_table1_workloads). Where the
 * same application appears in mixes with very different reported
 * intensity (different SimPoints in the original), the mix entry
 * carries an override.
 */

#ifndef COSCALE_WORKLOADS_SPEC_CATALOGUE_HH
#define COSCALE_WORKLOADS_SPEC_CATALOGUE_HH

#include <string>
#include <vector>

#include "trace/synthetic.hh"

namespace coscale {

/** Reference to a catalogue application, with optional overrides. */
struct AppRef
{
    std::string name;
    double mpkiOverride = -1.0;      //!< <0: catalogue value
    double writeFracOverride = -1.0; //!< <0: catalogue value
};

/** One Table 1 workload mix: four applications, four copies each. */
struct WorkloadMix
{
    std::string name;     //!< e.g. "MEM1"
    std::string wlClass;  //!< "ILP", "MID", "MEM", or "MIX"
    std::vector<AppRef> apps;  //!< the four distinct applications
    double tableMpki = 0.0;    //!< Table 1 reported MPKI
    double tableWpki = 0.0;    //!< Table 1 reported WPKI
    /**
     * Calibration multiplier on the generator's miss *intent*, so the
     * MPKI *measured* through the real shared LLC (which adds
     * cold-start and contention misses on top of the intent) lands on
     * the Table 1 value. Determined empirically at the default time
     * scale; see bench_table1_workloads.
     */
    double mpkiCalib = 1.0;
};

/** Look up an application model by SPEC name. Fatal if unknown. */
AppSpec appByName(const std::string &name);

/** All application names in the catalogue. */
std::vector<std::string> catalogueNames();

/**
 * Materialise an AppRef: fetch the catalogue entry and apply
 * overrides (MPKI overrides scale every phase's llcMpki by
 * override / nominal).
 */
AppSpec resolveApp(const AppRef &ref);

/** Instruction-weighted average llcMpki across an app's phases. */
double nominalMpki(const AppSpec &spec);

/**
 * Scale all phase lengths by @p factor (used to match phase structure
 * to a non-default instruction budget).
 */
AppSpec scalePhaseLengths(AppSpec spec, double factor);

/** The sixteen Table 1 mixes, in the paper's order. */
const std::vector<WorkloadMix> &table1Mixes();

/** Find a mix by name ("MEM1" ... "MIX4"). Fatal if unknown. */
const WorkloadMix &mixByName(const std::string &name);

/** All mixes of a class ("ILP"/"MID"/"MEM"/"MIX"). */
std::vector<WorkloadMix> mixesByClass(const std::string &wl_class);

/**
 * Expand a mix into one AppSpec per core: four copies of each of the
 * four applications, phase lengths scaled so one full phase cycle
 * spans @p instr_budget instructions.
 */
std::vector<AppSpec> expandMix(const WorkloadMix &mix, int num_cores,
                               std::uint64_t instr_budget);

/**
 * Override the hot working-set size of each expanded application:
 * app i gets footprints[i % footprints.size()] blocks in every phase.
 * Models SimPoints of the same programs with distinct resident sets
 * (the way the MIX mixes override llcMpki), which is what makes a
 * shared LLC contended heterogeneously — the regime cache-partition
 * studies (bench_knob_dimensions) need. The catalogue's class
 * defaults are untouched.
 */
void applyHotFootprints(std::vector<AppSpec> &apps,
                        const std::vector<std::uint64_t> &footprints);

} // namespace coscale

#endif // COSCALE_WORKLOADS_SPEC_CATALOGUE_HH
