/**
 * @file
 * Process-wide memoization of no-DVFS baseline runs.
 *
 * Every baseline-relative experiment needs a BaselinePolicy run of
 * the same configuration + workload; before the engine existed, each
 * bench harness recomputed those privately. The pool runs each
 * distinct baseline exactly once per process — keyed by
 * (configuration digest, workload digest, label) — and shares the
 * result across threads, harness phases, and engine instances.
 *
 * Concurrency: the first requester of a key becomes its computer;
 * later requesters (on any thread) block on a shared future rather
 * than duplicating the run. A baseline that throws poisons only its
 * own key — every requester of that key sees the same exception.
 */

#ifndef COSCALE_EXP_BASELINE_POOL_HH
#define COSCALE_EXP_BASELINE_POOL_HH

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <string>
#include <tuple>

#include "common/thread_annotations.hh"
#include "sim/runner.hh"

namespace coscale {
namespace exp {

/** Identity of one baseline run (see digest.hh). */
struct BaselineKey
{
    std::uint64_t cfgDigest = 0;
    std::uint64_t appsDigest = 0;
    std::string label;

    bool
    operator<(const BaselineKey &o) const
    {
        return std::tie(cfgDigest, appsDigest, label)
               < std::tie(o.cfgDigest, o.appsDigest, o.label);
    }
};

class BaselinePool
{
  public:
    /**
     * The memoized BaselinePolicy run matching @p req's configuration
     * (with its seed override applied) and application list. Computes
     * it on first request; the returned reference stays valid for the
     * pool's lifetime. Rethrows the baseline's failure, if any.
     */
    const RunResult &baseline(const RunRequest &req);

    /** Memoization accounting (for tests and progress reports). */
    std::uint64_t hits() const { return nHits.load(); }
    std::uint64_t misses() const { return nMisses.load(); }

    /** Number of distinct baselines computed (or in flight). */
    std::size_t size() const;

  private:
    mutable Mutex mu;
    std::map<BaselineKey, std::shared_future<RunResult>> entries
        COSCALE_GUARDED_BY(mu);
    std::atomic<std::uint64_t> nHits{0};
    std::atomic<std::uint64_t> nMisses{0};
};

/** The process-wide pool the engine uses by default. */
BaselinePool &processBaselinePool();

} // namespace exp
} // namespace coscale

#endif // COSCALE_EXP_BASELINE_POOL_HH
