#include "exp/policies.hh"

#include <cctype>
#include <memory>
#include <stdexcept>

#include "policy/coscale_policy.hh"
#include "policy/fastcap.hh"
#include "policy/multiscale.hh"
#include "policy/offline.hh"
#include "policy/power_cap.hh"
#include "policy/simple_policies.hh"
#include "policy/uncoordinated.hh"

namespace coscale {
namespace exp {

namespace {

std::string
canonical(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        if (c == '-' || c == '_' || c == ' ')
            continue;
        out.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

} // namespace

const std::vector<std::string> &
paperPolicyNames()
{
    static const std::vector<std::string> names = {
        "MemScale",  "CPUOnly", "Uncoordinated",
        "Semi-coordinated", "CoScale", "Offline",
    };
    return names;
}

const std::vector<std::string> &
knownPolicyNames()
{
    static const std::vector<std::string> names = {
        "baseline",  "reactive",         "memscale",
        "cpuonly",   "uncoordinated",    "semi",
        "semi-alt",  "coscale",          "coscale-dvfs",
        "coscale-chipwide", "offline",   "multiscale",
        "powercap",  "fastcap",
    };
    return names;
}

PolicyFactory
policyFactoryByName(const std::string &name, int cores, double gamma,
                    double capWatts)
{
    const std::string p = canonical(name);
    if (p == "baseline")
        return [] { return std::make_unique<BaselinePolicy>(); };
    if (p == "reactive") {
        return [cores, gamma] {
            return std::make_unique<ReactivePolicy>(cores, gamma);
        };
    }
    if (p == "memscale") {
        return [cores, gamma] {
            return std::make_unique<MemScalePolicy>(cores, gamma);
        };
    }
    if (p == "cpuonly") {
        return [cores, gamma] {
            return std::make_unique<CpuOnlyPolicy>(cores, gamma);
        };
    }
    if (p == "uncoordinated") {
        return [cores, gamma] {
            return std::make_unique<UncoordinatedPolicy>(cores, gamma);
        };
    }
    if (p == "semi" || p == "semicoordinated") {
        return [cores, gamma] {
            return std::make_unique<SemiCoordinatedPolicy>(cores,
                                                           gamma);
        };
    }
    if (p == "semialt") {
        return [cores, gamma] {
            return std::make_unique<SemiCoordinatedPolicy>(
                cores, gamma, SemiCoordinatedPolicy::Phase::Alternate);
        };
    }
    if (p == "coscale") {
        return [cores, gamma] {
            return std::make_unique<CoScalePolicy>(cores, gamma);
        };
    }
    if (p == "coscaledvfs") {
        // Ablation baseline for the generalized knob walk: identical
        // controller, way-partition dimension held.
        return [cores, gamma] {
            CoScaleOptions o;
            o.useWayPartitioning = false;
            o.nameOverride = "CoScale-DVFS";
            return std::make_unique<CoScalePolicy>(cores, gamma, o);
        };
    }
    if (p == "coscalechipwide") {
        return [cores, gamma] {
            CoScaleOptions o;
            o.chipWideCpuDvfs = true;
            return std::make_unique<CoScalePolicy>(cores, gamma, o);
        };
    }
    if (p == "offline") {
        return [cores, gamma] {
            return std::make_unique<OfflinePolicy>(cores, gamma);
        };
    }
    if (p == "multiscale") {
        return [cores, gamma] {
            return std::make_unique<MultiScalePolicy>(cores, gamma);
        };
    }
    if (p == "powercap") {
        return [capWatts] {
            return std::make_unique<PowerCapPolicy>(capWatts);
        };
    }
    if (p == "fastcap") {
        return [cores, gamma, capWatts] {
            return std::make_unique<FastCapPolicy>(cores, gamma,
                                                   capWatts);
        };
    }
    return {};
}

PolicyFactory
requirePolicyFactory(const std::string &name, int cores, double gamma,
                     double capWatts)
{
    PolicyFactory f = policyFactoryByName(name, cores, gamma, capWatts);
    if (f)
        return f;
    std::string msg = "unknown policy '" + name + "'; valid names: ";
    const std::vector<std::string> &known = knownPolicyNames();
    for (size_t i = 0; i < known.size(); ++i) {
        if (i)
            msg += ", ";
        msg += known[i];
    }
    throw std::invalid_argument(msg);
}

} // namespace exp
} // namespace coscale
