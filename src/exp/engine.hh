/**
 * @file
 * The parallel experiment engine: executes a batch of RunRequests on
 * a worker pool, memoizing baseline runs through the process-wide
 * BaselinePool and reporting per-request outcomes.
 *
 * Determinism contract: each simulation is a pure function of its
 * request (own System, own RNG, own Policy instance from the
 * request's factory), so a batch executed with N workers produces
 * bit-identical RunResults — and byte-identical JSON reports — to the
 * same batch executed serially, in the same request order. The only
 * shared mutable state is the baseline pool, whose entries are
 * themselves deterministic runs.
 *
 * Failure isolation: a request whose policy factory or simulation
 * throws poisons only its own outcome (ok = false, error set); the
 * rest of the batch completes normally.
 */

#ifndef COSCALE_EXP_ENGINE_HH
#define COSCALE_EXP_ENGINE_HH

#include <cstddef>
#include <string>
#include <vector>

#include "exp/baseline_pool.hh"
#include "sim/runner.hh"

namespace coscale {
namespace exp {

/**
 * Worker count resolution: @p requested if positive, else the
 * COSCALE_JOBS environment variable, else hardware concurrency
 * (minimum 1).
 */
int resolveJobs(int requested);

struct EngineOptions
{
    /** 0 = auto (COSCALE_JOBS, then hardware concurrency). */
    int jobs = 0;

    /** Print one progress line per completed request to stderr. */
    bool progress = false;

    /** Baseline memoization pool; null = the process-wide pool. */
    BaselinePool *pool = nullptr;
};

/** Outcome of one request in a batch (index = request position). */
struct RunOutcome
{
    std::size_t index = 0;
    std::string label;
    bool ok = false;
    std::string error;       //!< set when !ok

    RunResult result;        //!< valid when ok

    /**
     * Host wall-clock seconds spent executing this request (including
     * a memoized-baseline wait, if any). Diagnostic only — never part
     * of JSON reports, which must stay deterministic.
     */
    double wallSecs = 0.0;

    /** Filled when the request asked for a baseline comparison. */
    bool hasBaseline = false;
    Comparison vsBaseline;
    const RunResult *baseline = nullptr; //!< owned by the pool
};

class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions options = {});

    /**
     * Execute every request (requests[i] -> outcomes[i]). Requests
     * must carry a policy factory; borrowed Policy instances are
     * rejected per request (they are not thread-safe to share).
     */
    std::vector<RunOutcome> run(const std::vector<RunRequest> &requests);

    /** Execute one request with engine semantics (never throws). */
    RunOutcome runOne(const RunRequest &req, std::size_t index = 0);

    /** Resolved worker count. */
    int jobs() const { return jobCount; }

    BaselinePool &pool() const;

  private:
    EngineOptions options;
    int jobCount;
};

} // namespace exp
} // namespace coscale

#endif // COSCALE_EXP_ENGINE_HH
