/**
 * @file
 * The parallel experiment engine: executes a batch of RunRequests on
 * a worker pool, memoizing baseline runs through the process-wide
 * BaselinePool and reporting per-request outcomes.
 *
 * Determinism contract: each simulation is a pure function of its
 * request (own System, own RNG, own Policy instance from the
 * request's factory), so a batch executed with N workers produces
 * bit-identical RunResults — and byte-identical JSON reports — to the
 * same batch executed serially, in the same request order. The only
 * shared mutable state is the baseline pool, whose entries are
 * themselves deterministic runs.
 *
 * Failure isolation: a request whose policy factory or simulation
 * throws poisons only its own outcome (ok = false, error set); the
 * rest of the batch completes normally. Errors carry the request
 * label and the exception's (demangled) type so a batch report is
 * actionable on its own.
 *
 * Production hardening (all off by default):
 *  - per-run wall-clock watchdog (timeoutSecs): a run that exceeds
 *    the budget is cancelled cooperatively at its next epoch boundary
 *    and reported ok = false / timedOut;
 *  - bounded retry with backoff (retries/backoffSecs) for transient
 *    failures, with the attempt count in the outcome;
 *  - quarantine: a request identity that keeps failing after all its
 *    retries is short-circuited for the rest of the process.
 */

#ifndef COSCALE_EXP_ENGINE_HH
#define COSCALE_EXP_ENGINE_HH

#include <chrono>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.hh"
#include "exp/baseline_pool.hh"
#include "sim/runner.hh"

namespace coscale {
namespace exp {

/**
 * Worker count resolution: @p requested if positive, else the
 * COSCALE_JOBS environment variable, else hardware concurrency
 * (minimum 1).
 */
int resolveJobs(int requested);

/**
 * Run fn(0) .. fn(n-1), each exactly once, on up to @p jobs worker
 * threads (atomic-next-index pool; serial in index order when
 * @p jobs <= 1 or @p n <= 1). The index argument is taken literally —
 * callers wanting COSCALE_JOBS / hardware-concurrency resolution pass
 * resolveJobs(requested).
 *
 * Exception semantics match the engine's determinism contract: every
 * index runs regardless of failures elsewhere (no early abort, so the
 * set of executed indices never depends on thread timing), and after
 * all indices complete the exception from the LOWEST failing index is
 * rethrown. Callers therefore see the same error for jobs = 1 and
 * jobs = N.
 *
 * fn must be safe to invoke concurrently from distinct threads for
 * distinct indices; parallelFor itself never invokes it twice for the
 * same index.
 */
void parallelFor(int jobs, std::size_t n,
                 const std::function<void(std::size_t)> &fn);

struct EngineOptions
{
    /** 0 = auto (COSCALE_JOBS, then hardware concurrency). */
    int jobs = 0;

    /** Print one progress line per completed request to stderr. */
    bool progress = false;

    /** Baseline memoization pool; null = the process-wide pool. */
    BaselinePool *pool = nullptr;

    /**
     * Per-run wall-clock watchdog in host seconds; 0 disables it.
     * The run is cancelled cooperatively (the epoch loop checks a
     * flag at every epoch boundary), so a timed-out simulation never
     * leaves a worker thread wedged mid-epoch.
     */
    double timeoutSecs = 0.0;

    /** Extra attempts after a failed first one (0 = fail fast). */
    int retries = 0;

    /** Host-side sleep before attempt k+1 (scaled by k). */
    double backoffSecs = 0.05;

    /**
     * After this many fully-exhausted failures of one request
     * identity (label + config digest + workload digest), identical
     * requests are refused without running. 0 disables quarantine.
     */
    int quarantineAfter = 3;

    /**
     * Host seconds after which an identity's failure strikes expire:
     * a request whose last exhausted failure is older than this runs
     * again with a clean record (transient-environment recovery
     * without restarting the engine). 0 = strikes never expire;
     * resetQuarantine() clears everything immediately either way.
     */
    double quarantineResetSecs = 0.0;
};

/** Outcome of one request in a batch (index = request position). */
struct RunOutcome
{
    std::size_t index = 0;
    std::string label;
    bool ok = false;
    std::string error;       //!< set when !ok

    RunResult result;        //!< valid when ok

    /** Execution attempts consumed (>= 1 unless quarantined). */
    int attempts = 0;

    /** Last attempt was killed by the wall-clock watchdog. */
    bool timedOut = false;

    /** Refused without running: identity failed too often before. */
    bool quarantined = false;

    /**
     * Host wall-clock seconds spent executing this request (including
     * a memoized-baseline wait, if any). Diagnostic only — never part
     * of JSON reports, which must stay deterministic.
     */
    double wallSecs = 0.0;

    /** Filled when the request asked for a baseline comparison. */
    bool hasBaseline = false;
    Comparison vsBaseline;
    const RunResult *baseline = nullptr; //!< owned by the pool
};

class ExperimentEngine
{
  public:
    explicit ExperimentEngine(EngineOptions options = {});

    /**
     * Execute every request (requests[i] -> outcomes[i]). Requests
     * must carry a policy factory; borrowed Policy instances are
     * rejected per request (they are not thread-safe to share).
     */
    std::vector<RunOutcome> run(const std::vector<RunRequest> &requests);

    /** Execute one request with engine semantics (never throws). */
    RunOutcome runOne(const RunRequest &req, std::size_t index = 0);

    /** Resolved worker count. */
    int jobs() const { return jobCount; }

    BaselinePool &pool() const;

    /**
     * Request identities currently refused by quarantine (strike
     * count at the threshold and, with quarantineResetSecs set, not
     * yet expired), sorted. Batch harnesses append these to the JSONL
     * summary so a refused identity is visible without grepping for
     * individual "quarantined" outcome lines.
     */
    std::vector<std::string> quarantinedKeys();

    /** Forgive every identity: clear all quarantine strikes. */
    void resetQuarantine();

  private:
    struct Attempt
    {
        bool ok = false;
        bool timedOut = false;
        std::string error;
        RunResult result;
    };

    /** Strike record for one request identity. */
    struct QuarantineEntry
    {
        int count = 0;

        /** Host time of the last exhausted failure (expiry clock). */
        std::chrono::steady_clock::time_point last;
    };

    Attempt runAttempt(const RunRequest &req);
    std::string quarantineKey(const RunRequest &req) const;

    /** Strikes expired? (reset knob armed and the record is old.) */
    bool quarantineExpired(const QuarantineEntry &e) const;

    EngineOptions options;
    int jobCount;

    // Exhausted-failure records per request identity (see
    // EngineOptions::quarantineAfter). Engine-local on purpose: a
    // fresh engine starts with a clean slate.
    Mutex quarantineMu;
    std::map<std::string, QuarantineEntry> exhaustedFailures
        COSCALE_GUARDED_BY(quarantineMu);
};

} // namespace exp
} // namespace coscale

#endif // COSCALE_EXP_ENGINE_HH
