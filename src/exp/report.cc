#include "exp/report.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/json.hh"
#include "common/log.hh"

namespace coscale {
namespace exp {

void
writeJsonlReport(const std::vector<RunOutcome> &outcomes,
                 std::ostream &os)
{
    for (const RunOutcome &out : outcomes) {
        if (out.ok) {
            // Attempt counts are host-dependent, so they only appear
            // (attempts > 1) when a retry actually happened — a
            // clean deterministic batch stays byte-stable.
            writeJsonReport(out.result,
                            out.hasBaseline ? &out.vsBaseline : nullptr,
                            os, out.attempts > 1 ? out.attempts : 0);
        } else {
            JsonWriter w(os);
            w.beginObject();
            w.field("index",
                    static_cast<std::uint64_t>(out.index));
            w.field("label", out.label);
            w.field("error", out.error);
            if (out.attempts > 0) {
                w.field("attempts",
                        static_cast<std::uint64_t>(out.attempts));
            }
            if (out.timedOut)
                w.field("timed_out", true);
            if (out.quarantined)
                w.field("quarantined", true);
            w.endObject();
            os << "\n";
        }
    }
}

std::size_t
appendJsonlReport(const std::vector<RunOutcome> &outcomes,
                  const std::string &path)
{
    if (path.empty())
        return 0;
    std::ofstream os(path, std::ios::app);
    if (!os)
        fatal("cannot open '%s' for JSONL output", path.c_str());
    writeJsonlReport(outcomes, os);
    return outcomes.size();
}

void
writeQuarantineSummary(const std::vector<std::string> &keys,
                       std::ostream &os)
{
    if (keys.empty())
        return;
    JsonWriter w(os);
    w.beginObject();
    w.beginArray("quarantined_keys");
    for (const std::string &key : keys)
        w.value(key);
    w.endArray();
    w.endObject();
    os << "\n";
}

void
appendQuarantineSummary(const std::vector<std::string> &keys,
                        const std::string &path)
{
    if (keys.empty() || path.empty())
        return;
    std::ofstream os(path, std::ios::app);
    if (!os)
        fatal("cannot open '%s' for JSONL output", path.c_str());
    writeQuarantineSummary(keys, os);
}

std::size_t
reportFailures(const std::vector<RunOutcome> &outcomes)
{
    std::size_t failed = 0;
    for (const RunOutcome &out : outcomes) {
        if (!out.ok) {
            ++failed;
            std::fprintf(stderr, "[exp] request %zu (%s) failed: %s\n",
                         out.index, out.label.c_str(),
                         out.error.c_str());
        }
    }
    return failed;
}

} // namespace exp
} // namespace coscale
