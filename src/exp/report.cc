#include "exp/report.hh"

#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/json.hh"
#include "common/log.hh"

namespace coscale {
namespace exp {

void
writeJsonlReport(const std::vector<RunOutcome> &outcomes,
                 std::ostream &os)
{
    for (const RunOutcome &out : outcomes) {
        if (out.ok) {
            writeJsonReport(out.result,
                            out.hasBaseline ? &out.vsBaseline : nullptr,
                            os);
        } else {
            JsonWriter w(os);
            w.beginObject();
            w.field("index",
                    static_cast<std::uint64_t>(out.index));
            w.field("label", out.label);
            w.field("error", out.error);
            w.endObject();
            os << "\n";
        }
    }
}

std::size_t
appendJsonlReport(const std::vector<RunOutcome> &outcomes,
                  const std::string &path)
{
    if (path.empty())
        return 0;
    std::ofstream os(path, std::ios::app);
    if (!os)
        fatal("cannot open '%s' for JSONL output", path.c_str());
    writeJsonlReport(outcomes, os);
    return outcomes.size();
}

std::size_t
reportFailures(const std::vector<RunOutcome> &outcomes)
{
    std::size_t failed = 0;
    for (const RunOutcome &out : outcomes) {
        if (!out.ok) {
            ++failed;
            std::fprintf(stderr, "[exp] request %zu (%s) failed: %s\n",
                         out.index, out.label.c_str(),
                         out.error.c_str());
        }
    }
    return failed;
}

} // namespace exp
} // namespace coscale
