/**
 * @file
 * Order-sensitive 64-bit digests of experiment inputs. The baseline
 * pool keys its memoized no-DVFS runs by (configuration digest,
 * workload digest, label): two requests share a baseline exactly when
 * every simulation-relevant input matches, so the digest walks every
 * field of SystemConfig (including the nested ladder, cache, DRAM
 * geometry/timing, and power-model structs) and of each AppSpec.
 */

#ifndef COSCALE_EXP_DIGEST_HH
#define COSCALE_EXP_DIGEST_HH

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/system.hh"
#include "trace/synthetic.hh"

namespace coscale {
namespace exp {

/** FNV-1a accumulator over typed words (doubles hashed bit-exact). */
class Digest
{
  public:
    void
    add(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            state ^= (v >> (8 * i)) & 0xffU;
            state *= 0x100000001b3ULL;
        }
    }

    void add(int v) { add(static_cast<std::uint64_t>(
        static_cast<std::int64_t>(v))); }
    void add(bool v) { add(std::uint64_t(v ? 1 : 0)); }
    void add(double v) { add(std::bit_cast<std::uint64_t>(v)); }

    void
    add(const std::string &s)
    {
        add(static_cast<std::uint64_t>(s.size()));
        for (char c : s) {
            state ^= static_cast<unsigned char>(c);
            state *= 0x100000001b3ULL;
        }
    }

    std::uint64_t value() const { return state; }

  private:
    std::uint64_t state = 0xcbf29ce484222325ULL;
};

/** Digest of every simulation-relevant SystemConfig field. */
std::uint64_t configDigest(const SystemConfig &cfg);

/** Digest of a per-core application list (names and all phases). */
std::uint64_t workloadDigest(const std::vector<AppSpec> &apps);

} // namespace exp
} // namespace coscale

#endif // COSCALE_EXP_DIGEST_HH
