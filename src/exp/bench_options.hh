/**
 * @file
 * Shared command-line surface for the figure/table harnesses. Every
 * harness accepts the same knobs — time scale, worker count, progress
 * reporting, JSONL output — parsed here so `bench_fig8_9_policies
 * --jobs 8 --jsonl out.jsonl` works identically across the suite.
 */

#ifndef COSCALE_EXP_BENCH_OPTIONS_HH
#define COSCALE_EXP_BENCH_OPTIONS_HH

#include <string>

#include "dram/mem_backend.hh"
#include "exp/engine.hh"
#include "obs/trace_sink.hh"
#include "sim/system.hh"

namespace coscale {
namespace exp {

struct BenchOptions
{
    /**
     * Time scale: 1.0 is the paper's full 100M-instruction setup; the
     * default keeps a full sweep to a few minutes.
     */
    double scale = 0.1;

    /** Worker threads; 0 = auto (COSCALE_JOBS, then hardware). */
    int jobs = 0;

    /** Print per-run progress lines to stderr. */
    bool progress = false;

    /** When non-empty, append one JSON line per run to this file. */
    std::string jsonlPath;

    /**
     * Epoch-trace destination (--trace PATH, --trace-format FMT).
     * With several requests in a batch, request i writes to
     * "PATH.i" so parallel runs never share a sink.
     */
    TraceSpec trace;

    /** Collect and print per-run metrics registries (--metrics). */
    bool metrics = false;

    /** Per-run wall-clock watchdog in seconds (--timeout; 0 = off). */
    double timeoutSecs = 0.0;

    /** Retry attempts after a failed run (--retries; 0 = fail fast). */
    int retries = 0;

    /**
     * Memory backend picked by --mem-sched / --row-policy /
     * --dram-standard; memBackendSet records whether any of the three
     * flags appeared (an untouched harness keeps makeScaledConfig()'s
     * default-or-environment behaviour).
     */
    MemBackendSel memBackend;
    bool memBackendSet = false;

    /**
     * The harness's base SystemConfig: makeScaledConfig(scale) with
     * the backend flags applied on top. Every harness builds its
     * configs through this so the backend flags work uniformly.
     */
    SystemConfig
    makeSystemConfig() const
    {
        SystemConfig cfg = makeScaledConfig(scale);
        if (memBackendSet)
            applyMemBackend(cfg, memBackend);
        return cfg;
    }

    /**
     * Apply the trace/metrics surface to one request of a batch of
     * @p total (suffixes the trace path for multi-request batches).
     */
    void
    applyObs(RunRequest &req, std::size_t index,
             std::size_t total) const
    {
        if (trace.enabled()) {
            TraceSpec spec = trace;
            if (total > 1)
                spec.path += "." + std::to_string(index);
            req.withTrace(spec);
        }
        if (metrics)
            req.withMetrics();
    }

    EngineOptions
    engineOptions() const
    {
        EngineOptions opts;
        opts.jobs = jobs;
        opts.progress = progress;
        opts.timeoutSecs = timeoutSecs;
        opts.retries = retries;
        return opts;
    }
};

/**
 * Parse the shared harness options. Accepts `--scale X` (or a bare
 * positional scale in (0, 1], the historical form), `--jobs N`,
 * `--jsonl PATH`, `--progress`, the memory-backend selection
 * (`--mem-sched fcfs|frfcfs`, `--row-policy closed|open`,
 * `--dram-standard ddr3|ddr4|lpddr4`), `--list-policies`, and
 * `--help`; falls back to the COSCALE_SCALE environment variable,
 * then @p defaultScale. Unknown flags are fatal.
 */
BenchOptions parseBenchArgs(int argc, char **argv,
                            double defaultScale = 0.1);

/**
 * Print the registered policy roster (knownPolicyNames(), one per
 * line) — the `--list-policies` body shared by the harnesses and
 * coscale_sim.
 */
void printPolicyRoster();

} // namespace exp
} // namespace coscale

#endif // COSCALE_EXP_BENCH_OPTIONS_HH
