#include "exp/bench_options.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/log.hh"
#include "exp/policies.hh"

namespace coscale {
namespace exp {

namespace {

bool
parseScale(const char *text, double *out)
{
    double v = std::atof(text);
    if (v > 0.0 && v <= 1.0) {
        *out = v;
        return true;
    }
    return false;
}

void
printUsage(const char *prog)
{
    std::printf(
        "usage: %s [scale] [--scale X] [--jobs N] [--jsonl PATH]\n"
        "          [--progress] [--trace PATH] [--trace-format FMT]\n"
        "          [--metrics] [--timeout SECS] [--retries N]\n"
        "          [--mem-sched S] [--row-policy P] [--dram-standard D]\n"
        "  scale / --scale X  time scale in (0, 1]; 1.0 is the paper's\n"
        "                     full setup (default via COSCALE_SCALE or\n"
        "                     the harness default)\n"
        "  --jobs N           worker threads (default: COSCALE_JOBS,\n"
        "                     then hardware concurrency)\n"
        "  --jsonl PATH       append one JSON line per run to PATH\n"
        "  --progress         per-run progress lines on stderr\n"
        "  --trace PATH       write an epoch-level trace per run\n"
        "                     (request i of a batch goes to PATH.i)\n"
        "  --trace-format F   jsonl (default) or chrome\n"
        "                     (chrome://tracing / Perfetto JSON)\n"
        "  --metrics          collect and print per-run metrics\n"
        "  --timeout SECS     per-run wall-clock watchdog (0 = off)\n"
        "  --retries N        retry failed runs up to N times\n"
        "  --mem-sched S      channel scheduler: fcfs (paper) or\n"
        "                     frfcfs\n"
        "  --row-policy P     row-buffer policy: closed (paper) or\n"
        "                     open\n"
        "  --dram-standard D  DRAM standard: ddr3 (paper), ddr4, or\n"
        "                     lpddr4\n"
        "  --list-policies    print the registered policy roster and\n"
        "                     exit\n",
        prog);
}

} // namespace

void
printPolicyRoster()
{
    for (const std::string &name : knownPolicyNames())
        std::printf("%s\n", name.c_str());
}

BenchOptions
parseBenchArgs(int argc, char **argv, double defaultScale)
{
    BenchOptions opts;
    opts.scale = defaultScale;

    bool scaleSet = false;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        auto nextValue = [&](const char *flag) -> const char * {
            if (i + 1 >= argc)
                fatal("%s requires a value", flag);
            return argv[++i];
        };
        if (std::strcmp(arg, "--scale") == 0) {
            const char *v = nextValue("--scale");
            if (!parseScale(v, &opts.scale))
                fatal("--scale must be in (0, 1], got '%s'", v);
            scaleSet = true;
        } else if (std::strcmp(arg, "--jobs") == 0) {
            const char *v = nextValue("--jobs");
            int n = std::atoi(v);
            if (n <= 0)
                fatal("--jobs must be a positive integer, got '%s'", v);
            opts.jobs = n;
        } else if (std::strcmp(arg, "--jsonl") == 0) {
            opts.jsonlPath = nextValue("--jsonl");
        } else if (std::strcmp(arg, "--trace") == 0) {
            opts.trace.path = nextValue("--trace");
        } else if (std::strcmp(arg, "--trace-format") == 0) {
            const char *v = nextValue("--trace-format");
            if (!parseTraceFormat(v, &opts.trace.format))
                fatal("--trace-format must be jsonl or chrome, "
                      "got '%s'", v);
        } else if (std::strcmp(arg, "--timeout") == 0) {
            const char *v = nextValue("--timeout");
            double secs = std::atof(v);
            if (secs < 0.0)
                fatal("--timeout must be >= 0 seconds, got '%s'", v);
            opts.timeoutSecs = secs;
        } else if (std::strcmp(arg, "--retries") == 0) {
            const char *v = nextValue("--retries");
            int n = std::atoi(v);
            if (n < 0 || (n == 0 && std::strcmp(v, "0") != 0))
                fatal("--retries must be a non-negative integer, "
                      "got '%s'", v);
            opts.retries = n;
        } else if (std::strcmp(arg, "--mem-sched") == 0) {
            const char *v = nextValue("--mem-sched");
            if (!parseMemSched(v, &opts.memBackend.sched))
                fatal("--mem-sched must be fcfs or frfcfs, got '%s'",
                      v);
            opts.memBackendSet = true;
        } else if (std::strcmp(arg, "--row-policy") == 0) {
            const char *v = nextValue("--row-policy");
            if (!parseRowPolicy(v, &opts.memBackend.rowPolicy))
                fatal("--row-policy must be closed or open, got '%s'",
                      v);
            opts.memBackendSet = true;
        } else if (std::strcmp(arg, "--dram-standard") == 0) {
            const char *v = nextValue("--dram-standard");
            if (!parseDramStandard(v, &opts.memBackend.standard))
                fatal("--dram-standard must be ddr3, ddr4, or lpddr4, "
                      "got '%s'", v);
            opts.memBackendSet = true;
        } else if (std::strcmp(arg, "--metrics") == 0) {
            opts.metrics = true;
        } else if (std::strcmp(arg, "--progress") == 0) {
            opts.progress = true;
        } else if (std::strcmp(arg, "--list-policies") == 0) {
            printPolicyRoster();
            exitCleanly();
        } else if (std::strcmp(arg, "--help") == 0
                   || std::strcmp(arg, "-h") == 0) {
            printUsage(argv[0]);
            exitCleanly();
        } else if (arg[0] != '-' && !scaleSet
                   && parseScale(arg, &opts.scale)) {
            // Historical form: bare positional scale as argv[1].
            scaleSet = true;
        } else {
            fatal("unknown argument '%s' (try --help)", arg);
        }
    }

    if (!scaleSet) {
        // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; no setenv in the process
        if (const char *env = std::getenv("COSCALE_SCALE")) {
            parseScale(env, &opts.scale);
        }
    }
    return opts;
}

} // namespace exp
} // namespace coscale
