#include "exp/engine.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <limits>
#include <memory>
#include <stdexcept>
#include <thread>
#include <typeinfo>
#include <utility>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

#include "common/log.hh"
#include "common/thread_annotations.hh"
#include "exp/digest.hh"

namespace coscale {
namespace exp {

namespace {

std::string
demangled(const char *name)
{
#if defined(__GNUG__)
    int status = 0;
    char *d = abi::__cxa_demangle(name, nullptr, nullptr, &status);
    if (d) {
        std::string s = status == 0 ? std::string(d) : std::string(name);
        std::free(d);
        return s;
    }
#endif
    return name;
}

/**
 * Format the in-flight exception with the request label and dynamic
 * exception type — a batch report that just says "boom" is useless
 * when forty requests ran. Must be called from inside a catch block.
 */
std::string
describeCurrentException(const std::string &label)
{
    std::string prefix = "request '" + label + "': ";
    try {
        throw;
    } catch (const std::exception &e) {
        return prefix + demangled(typeid(e).name()) + ": " + e.what();
    } catch (...) {
        return prefix + "unknown non-standard exception";
    }
}

} // namespace

int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only env probe; the one setenv lives in a single-threaded test
    if (const char *env = std::getenv("COSCALE_JOBS")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
        warnOnce("engine.jobs.env",
                 "COSCALE_JOBS='%s' is not a positive integer; "
                 "falling back to hardware concurrency", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

void
parallelFor(int jobs, std::size_t n,
            const std::function<void(std::size_t)> &fn)
{
    if (n == 0)
        return;

    if (jobs <= 1 || n <= 1) {
        // Serial path mirrors the parallel exception contract: every
        // index runs, then the lowest failing index's error surfaces.
        std::exception_ptr first;
        for (std::size_t i = 0; i < n; ++i) {
            try {
                fn(i);
            } catch (...) {
                if (!first)
                    first = std::current_exception();
            }
        }
        if (first)
            std::rethrow_exception(first);
        return;
    }

    struct ErrState
    {
        Mutex mu;
        std::size_t index COSCALE_GUARDED_BY(mu) =
            std::numeric_limits<std::size_t>::max();
        std::exception_ptr error COSCALE_GUARDED_BY(mu);
    };
    ErrState err;
    std::atomic<std::size_t> next{0};

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                MutexLock lock(err.mu);
                if (i < err.index) {
                    err.index = i;
                    err.error = std::current_exception();
                }
            }
        }
    };

    std::size_t workers = static_cast<std::size_t>(jobs) < n
                              ? static_cast<std::size_t>(jobs)
                              : n;
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t t = 0; t < workers; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();

    MutexLock lock(err.mu);
    if (err.error)
        std::rethrow_exception(err.error);
}

ExperimentEngine::ExperimentEngine(EngineOptions options_)
    : options(options_), jobCount(resolveJobs(options_.jobs))
{
}

BaselinePool &
ExperimentEngine::pool() const
{
    return options.pool ? *options.pool : processBaselinePool();
}

std::string
ExperimentEngine::quarantineKey(const RunRequest &req) const
{
    // Identity, not object: retried and re-submitted copies of the
    // same experiment share a key, unrelated requests never collide.
    return req.label + "/"
           + std::to_string(configDigest(req.effectiveConfig())) + "/"
           + std::to_string(workloadDigest(req.apps));
}

bool
ExperimentEngine::quarantineExpired(const QuarantineEntry &e) const
{
    if (options.quarantineResetSecs <= 0.0)
        return false;
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - e.last)
               .count()
           >= options.quarantineResetSecs;
}

std::vector<std::string>
ExperimentEngine::quarantinedKeys()
{
    std::vector<std::string> keys;
    if (options.quarantineAfter <= 0)
        return keys;
    MutexLock lock(quarantineMu);
    for (const auto &kv : exhaustedFailures) {
        if (kv.second.count >= options.quarantineAfter
            && !quarantineExpired(kv.second)) {
            keys.push_back(kv.first); // map order: already sorted
        }
    }
    return keys;
}

void
ExperimentEngine::resetQuarantine()
{
    MutexLock lock(quarantineMu);
    exhaustedFailures.clear();
}

ExperimentEngine::Attempt
ExperimentEngine::runAttempt(const RunRequest &req)
{
    Attempt a;
    try {
        if (!req.makePolicy) {
            throw std::invalid_argument(
                req.borrowedPolicy
                    ? "ExperimentEngine requires a policy factory; "
                      "borrowed Policy instances cannot be shared "
                      "across worker threads"
                    : "RunRequest has no policy factory");
        }

        if (options.timeoutSecs <= 0.0) {
            a.result = coscale::run(req);
            a.ok = true;
            return a;
        }

        // Watchdogged attempt: run on a helper thread, wait up to the
        // budget, then flip the request's cancel flag and give the
        // epoch loop one grace period to unwind cooperatively. State
        // is shared_ptr-owned so the rare truly-wedged (detached)
        // simulation can never touch freed memory.
        struct Shared
        {
            Mutex mu;
            CondVar cv;
            bool done COSCALE_GUARDED_BY(mu) = false;
            bool ok COSCALE_GUARDED_BY(mu) = false;
            RunResult result COSCALE_GUARDED_BY(mu);
            std::exception_ptr error COSCALE_GUARDED_BY(mu);
            std::atomic<bool> cancel{false};
        };
        auto sh = std::make_shared<Shared>();
        RunRequest guarded = req;
        guarded.cancelFlag = &sh->cancel;

        std::thread runner([sh, guarded] {
            std::exception_ptr err;
            RunResult r;
            bool ok = false;
            try {
                r = coscale::run(guarded);
                ok = true;
            } catch (...) {
                err = std::current_exception();
            }
            {
                MutexLock lock(sh->mu);
                sh->result = std::move(r);
                sh->ok = ok;
                sh->error = err;
                sh->done = true;
            }
            sh->cv.notify_all();
        });

        auto budget = std::chrono::duration<double>(options.timeoutSecs);
        bool finished;
        {
            MutexLock lock(sh->mu);
            auto deadline = std::chrono::steady_clock::now() + budget;
            while (!sh->done
                   && sh->cv.waitUntil(sh->mu, deadline)
                          != std::cv_status::timeout) {
            }
            finished = sh->done;
            if (!finished) {
                sh->cancel.store(true, std::memory_order_relaxed);
                // Grace period for the cooperative epoch-boundary
                // exit; simulated epochs are short in host time, so
                // one more budget's worth is generous.
                deadline = std::chrono::steady_clock::now() + budget;
                while (!sh->done
                       && sh->cv.waitUntil(sh->mu, deadline)
                              != std::cv_status::timeout) {
                }
                finished = sh->done;
            }
        }

        if (!finished) {
            // Wedged inside an epoch (e.g. a policy stuck in
            // decide()). The thread keeps the shared state alive;
            // abandon it rather than block the whole batch.
            runner.detach();
            a.timedOut = true;
            a.error = "request '" + req.label
                      + "': killed by watchdog after "
                      + std::to_string(options.timeoutSecs)
                      + "s (simulation unresponsive)";
            return a;
        }

        runner.join();
        // The join() already synchronizes, but take the lock anyway:
        // it costs nothing uncontended and keeps every guarded access
        // visible to the static analysis.
        MutexLock lock(sh->mu);
        if (sh->ok) {
            a.result = std::move(sh->result);
            a.ok = true;
            return a;
        }
        a.timedOut = sh->cancel.load(std::memory_order_relaxed);
        std::rethrow_exception(sh->error);
    } catch (...) {
        a.error = describeCurrentException(req.label);
    }
    return a;
}

RunOutcome
ExperimentEngine::runOne(const RunRequest &req, std::size_t index)
{
    RunOutcome out;
    out.index = index;
    out.label = req.label;
    auto t0 = std::chrono::steady_clock::now();

    std::string key = quarantineKey(req);
    if (options.quarantineAfter > 0) {
        MutexLock lock(quarantineMu);
        auto it = exhaustedFailures.find(key);
        if (it != exhaustedFailures.end()) {
            if (quarantineExpired(it->second)) {
                // Strikes aged out: parole the identity and let it
                // prove itself with a fresh record.
                exhaustedFailures.erase(it);
            } else if (it->second.count >= options.quarantineAfter) {
                out.quarantined = true;
                out.error = "request '" + req.label
                            + "': quarantined after "
                            + std::to_string(it->second.count)
                            + " exhausted failures";
                return out;
            }
        }
    }

    int max_attempts = 1 + (options.retries > 0 ? options.retries : 0);
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        out.attempts = attempt;
        if (attempt > 1 && options.backoffSecs > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(
                options.backoffSecs * (attempt - 1)));
        }
        Attempt a = runAttempt(req);
        out.timedOut = a.timedOut;
        if (a.ok) {
            out.result = std::move(a.result);
            out.error.clear();
            out.ok = true;
            break;
        }
        out.error = a.error;
    }

    if (out.ok) {
        try {
            if (req.wantBaseline) {
                out.baseline = &pool().baseline(req);
                out.vsBaseline = compare(*out.baseline, out.result);
                out.hasBaseline = true;
            }
        } catch (...) {
            out.ok = false;
            out.error = describeCurrentException(req.label);
        }
    }

    if (!out.ok && !out.quarantined && options.quarantineAfter > 0) {
        MutexLock lock(quarantineMu);
        QuarantineEntry &e = exhaustedFailures[key];
        e.count += 1;
        e.last = std::chrono::steady_clock::now();
    }

    out.wallSecs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    // Host-side timing goes into the run's metrics registry (wall
    // time is inherently nondeterministic, so it must never leak into
    // traces or JSON reports).
    if (out.ok && out.result.metrics)
        out.result.metrics->gauge("engine.wall_secs").set(out.wallSecs);
    return out;
}

std::vector<RunOutcome>
ExperimentEngine::run(const std::vector<RunRequest> &requests)
{
    std::vector<RunOutcome> outcomes(requests.size());
    if (requests.empty())
        return outcomes;

    std::atomic<std::size_t> done{0};
    Mutex progressMu; // serializes the stderr progress lines only

    parallelFor(jobCount, requests.size(), [&](std::size_t i) {
        outcomes[i] = runOne(requests[i], i);
        std::size_t finished =
            done.fetch_add(1, std::memory_order_relaxed) + 1;
        if (options.progress) {
            MutexLock lock(progressMu);
            std::fprintf(stderr, "[exp] %zu/%zu %s (%.2fs)%s\n",
                         finished, requests.size(),
                         outcomes[i].label.c_str(),
                         outcomes[i].wallSecs,
                         outcomes[i].ok ? "" : " (FAILED)");
        }
    });

    if (options.progress) {
        std::fprintf(stderr,
                     "[exp] baseline pool: %llu hits, %llu misses\n",
                     static_cast<unsigned long long>(pool().hits()),
                     static_cast<unsigned long long>(pool().misses()));
    }
    return outcomes;
}

} // namespace exp
} // namespace coscale
