#include "exp/engine.hh"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

namespace coscale {
namespace exp {

int
resolveJobs(int requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("COSCALE_JOBS")) {
        int n = std::atoi(env);
        if (n > 0)
            return n;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ExperimentEngine::ExperimentEngine(EngineOptions options_)
    : options(options_), jobCount(resolveJobs(options_.jobs))
{
}

BaselinePool &
ExperimentEngine::pool() const
{
    return options.pool ? *options.pool : processBaselinePool();
}

RunOutcome
ExperimentEngine::runOne(const RunRequest &req, std::size_t index)
{
    RunOutcome out;
    out.index = index;
    out.label = req.label;
    auto t0 = std::chrono::steady_clock::now();
    try {
        if (!req.makePolicy) {
            throw std::invalid_argument(
                req.borrowedPolicy
                    ? "ExperimentEngine requires a policy factory; "
                      "borrowed Policy instances cannot be shared "
                      "across worker threads"
                    : "RunRequest has no policy factory");
        }
        out.result = coscale::run(req);
        if (req.wantBaseline) {
            out.baseline = &pool().baseline(req);
            out.vsBaseline = compare(*out.baseline, out.result);
            out.hasBaseline = true;
        }
        out.ok = true;
    } catch (const std::exception &e) {
        out.error = e.what();
    } catch (...) {
        out.error = "unknown exception";
    }
    out.wallSecs = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - t0)
                       .count();
    // Host-side timing goes into the run's metrics registry (wall
    // time is inherently nondeterministic, so it must never leak into
    // traces or JSON reports).
    if (out.ok && out.result.metrics)
        out.result.metrics->gauge("engine.wall_secs").set(out.wallSecs);
    return out;
}

std::vector<RunOutcome>
ExperimentEngine::run(const std::vector<RunRequest> &requests)
{
    std::vector<RunOutcome> outcomes(requests.size());
    if (requests.empty())
        return outcomes;

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progressMu;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= requests.size())
                return;
            outcomes[i] = runOne(requests[i], i);
            std::size_t finished =
                done.fetch_add(1, std::memory_order_relaxed) + 1;
            if (options.progress) {
                std::lock_guard<std::mutex> lock(progressMu);
                std::fprintf(stderr, "[exp] %zu/%zu %s (%.2fs)%s\n",
                             finished, requests.size(),
                             outcomes[i].label.c_str(),
                             outcomes[i].wallSecs,
                             outcomes[i].ok ? ""
                                            : " (FAILED)");
            }
        }
    };

    int workers = jobCount;
    if (static_cast<std::size_t>(workers) > requests.size())
        workers = static_cast<int>(requests.size());

    auto poolSummary = [&] {
        if (!options.progress)
            return;
        std::fprintf(stderr,
                     "[exp] baseline pool: %llu hits, %llu misses\n",
                     static_cast<unsigned long long>(pool().hits()),
                     static_cast<unsigned long long>(pool().misses()));
    };

    if (workers <= 1) {
        worker();
        poolSummary();
        return outcomes;
    }

    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers));
    for (int t = 0; t < workers; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();
    poolSummary();
    return outcomes;
}

} // namespace exp
} // namespace coscale
