#include "exp/digest.hh"

namespace coscale {
namespace exp {

namespace {

void
addLadder(Digest &d, const FreqLadder &ladder)
{
    d.add(ladder.size());
    for (int i = 0; i < ladder.size(); ++i) {
        d.add(ladder.freq(i));
        d.add(ladder.voltage(i));
    }
}

void
addGeometry(Digest &d, const MemGeometry &g)
{
    d.add(g.channels);
    d.add(g.dimmsPerChannel);
    d.add(g.ranksPerDimm);
    d.add(g.devicesPerRank);
    d.add(g.banksPerRank);
    d.add(g.blocksPerRow);
    d.add(g.rowsPerBank);
    d.add(static_cast<int>(g.addrMap));
}

void
addTiming(Digest &d, const DramTimingParams &t)
{
    d.add(t.tRCDns);
    d.add(t.tRPns);
    d.add(t.tCLns);
    d.add(t.tCWLns);
    d.add(t.tWRns);
    d.add(t.tRFCns);
    d.add(t.refClock);
    d.add(t.tFAWcycles);
    d.add(t.tRTPcycles);
    d.add(t.tRAScycles);
    d.add(t.tRRDcycles);
    d.add(t.burstCycles);
    d.add(t.tREFIus);
    d.add(t.recalCycles);
    d.add(t.recalExtraNs);
}

void
addCurrents(Digest &d, const DramCurrentParams &c)
{
    d.add(c.vdd);
    d.add(c.iRowRead);
    d.add(c.iRowWrite);
    d.add(c.iActPre);
    d.add(c.iActiveStandby);
    d.add(c.iActivePowerdown);
    d.add(c.iPrechargeStandby);
    d.add(c.iPrechargePowerdown);
    d.add(c.iRefresh);
}

void
addPower(Digest &d, const PowerParams &p)
{
    d.add(p.core.vNom);
    d.add(p.core.fNom);
    d.add(p.core.clockW);
    d.add(p.core.eInstrNj);
    d.add(p.core.eAluNj);
    d.add(p.core.eFpuNj);
    d.add(p.core.eBranchNj);
    d.add(p.core.eMemNj);
    d.add(p.core.leakW);
    d.add(p.l2.leakW);
    d.add(p.l2.accessNj);
    addCurrents(d, p.mem.currents);
    d.add(p.mem.fRef);
    d.add(p.mem.standbySlope);
    d.add(p.mem.powerdownSlope);
    d.add(p.mem.ioTermScale);
    d.add(p.mem.backgroundScale);
    d.add(p.mem.pllW);
    d.add(p.mem.regMaxW);
    d.add(p.mem.mcMinW);
    d.add(p.mem.mcMaxW);
    d.add(p.mem.memPowerMultiplier);
    addGeometry(d, p.geom);
    addTiming(d, p.timing);
    d.add(p.numCores);
    d.add(p.otherFrac);
}

} // namespace

std::uint64_t
configDigest(const SystemConfig &cfg)
{
    Digest d;
    d.add(cfg.numCores);
    addLadder(d, cfg.coreLadder);
    addLadder(d, cfg.memLadder);
    d.add(cfg.llc.sizeBytes);
    d.add(cfg.llc.ways);
    d.add(cfg.llc.hitLatencyNs);
    d.add(cfg.llc.prefetchNextLine);
    addGeometry(d, cfg.geom);
    addTiming(d, cfg.timing);
    d.add(cfg.writeHighWater);
    d.add(cfg.writeLowWater);
    d.add(cfg.respFixedNs);
    // The full backend selection: two configs differing in any of
    // scheduler / row policy / DRAM standard must never alias in the
    // BaselinePool memo.
    d.add(static_cast<int>(cfg.memBackend.sched));
    d.add(static_cast<int>(cfg.memBackend.rowPolicy));
    d.add(static_cast<int>(cfg.memBackend.standard));
    d.add(cfg.coreTransitionTicks);
    d.add(cfg.ooo);
    d.add(cfg.oooWindow);
    d.add(cfg.maxOutstanding);
    d.add(cfg.instrBudget);
    d.add(cfg.epochLen);
    d.add(cfg.profileLen);
    d.add(cfg.gamma);
    d.add(cfg.warmupEpochs);
    d.add(cfg.schedQuantumEpochs);
    d.add(cfg.contextSwitchTicks);
    addPower(d, cfg.power);
    d.add(cfg.seed);
    d.add(cfg.timeScale);
    return d.value();
}

std::uint64_t
workloadDigest(const std::vector<AppSpec> &apps)
{
    Digest d;
    d.add(static_cast<std::uint64_t>(apps.size()));
    for (const AppSpec &app : apps) {
        d.add(app.name);
        d.add(static_cast<std::uint64_t>(app.phases.size()));
        for (const AppPhase &ph : app.phases) {
            d.add(ph.instructions);
            d.add(ph.baseCpi);
            d.add(ph.l1Mpki);
            d.add(ph.llcMpki);
            d.add(ph.writeFrac);
            d.add(ph.seqRunLen);
            d.add(ph.hotBlocks);
            d.add(ph.fAlu);
            d.add(ph.fFpu);
            d.add(ph.fBranch);
            d.add(ph.fMem);
        }
    }
    return d.value();
}

} // namespace exp
} // namespace coscale
