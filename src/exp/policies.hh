/**
 * @file
 * Policy factories by name. RunRequests carry a factory rather than a
 * Policy instance because policies hold mutable per-run state (slack
 * ledgers, epoch counters); each engine worker constructs a fresh
 * instance per run so parallel batches stay deterministic.
 */

#ifndef COSCALE_EXP_POLICIES_HH
#define COSCALE_EXP_POLICIES_HH

#include <string>
#include <vector>

#include "sim/runner.hh"

namespace coscale {
namespace exp {

/**
 * The six policies compared in the paper's Figures 8 and 9, in
 * presentation order: MemScale, CPUOnly, Uncoordinated,
 * Semi-coordinated, CoScale, Offline.
 */
const std::vector<std::string> &paperPolicyNames();

/**
 * Every accepted CLI spelling, in the order factories resolve them:
 * baseline, reactive, memscale, cpuonly, uncoordinated, semi,
 * semi-alt, coscale, coscale-dvfs, coscale-chipwide, offline,
 * multiscale, powercap, fastcap.
 */
const std::vector<std::string> &knownPolicyNames();

/**
 * A factory for the named policy, or an empty function for unknown
 * names. Accepts the paper names above plus the CLI spellings from
 * knownPolicyNames(), case-insensitively and ignoring '-', '_' and
 * spaces. @p capWatts only affects powercap.
 */
PolicyFactory policyFactoryByName(const std::string &name, int cores,
                                  double gamma,
                                  double capWatts = 120.0);

/**
 * As policyFactoryByName, but rejects unknown names with a
 * std::invalid_argument whose message lists every valid spelling —
 * the entry point CLI front ends should use so a typo produces a
 * helpful error instead of an empty factory.
 */
PolicyFactory requirePolicyFactory(const std::string &name, int cores,
                                   double gamma,
                                   double capWatts = 120.0);

} // namespace exp
} // namespace coscale

#endif // COSCALE_EXP_POLICIES_HH
