/**
 * @file
 * Policy factories by name. RunRequests carry a factory rather than a
 * Policy instance because policies hold mutable per-run state (slack
 * ledgers, epoch counters); each engine worker constructs a fresh
 * instance per run so parallel batches stay deterministic.
 */

#ifndef COSCALE_EXP_POLICIES_HH
#define COSCALE_EXP_POLICIES_HH

#include <string>
#include <vector>

#include "sim/runner.hh"

namespace coscale {
namespace exp {

/**
 * The six policies compared in the paper's Figures 8 and 9, in
 * presentation order: MemScale, CPUOnly, Uncoordinated,
 * Semi-coordinated, CoScale, Offline.
 */
const std::vector<std::string> &paperPolicyNames();

/**
 * A factory for the named policy, or an empty function for unknown
 * names. Accepts the paper names above plus the CLI spellings
 * (baseline, reactive, memscale, cpuonly, uncoordinated, semi,
 * semi-alt, coscale, coscale-chipwide, offline, multiscale,
 * powercap), case-insensitively. @p capWatts only affects powercap.
 */
PolicyFactory policyFactoryByName(const std::string &name, int cores,
                                  double gamma,
                                  double capWatts = 120.0);

} // namespace exp
} // namespace coscale

#endif // COSCALE_EXP_POLICIES_HH
