/**
 * @file
 * JSONL emission for engine batches: one JSON object per line, one
 * line per request, in request order. Successful runs reuse the
 * sim-layer writeJsonReport format; failed runs emit a small
 * {"index", "label", "error"} object so downstream tooling sees every
 * request accounted for.
 */

#ifndef COSCALE_EXP_REPORT_HH
#define COSCALE_EXP_REPORT_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "exp/engine.hh"

namespace coscale {
namespace exp {

/** Write one JSON line per outcome, in order, to @p os. */
void writeJsonlReport(const std::vector<RunOutcome> &outcomes,
                      std::ostream &os);

/**
 * Append the batch to @p path as JSONL (no-op when @p path is empty;
 * fatal when the file cannot be opened). Returns the number of lines
 * written.
 */
std::size_t appendJsonlReport(const std::vector<RunOutcome> &outcomes,
                              const std::string &path);

/**
 * Print a one-line stderr summary of any failed outcomes and return
 * the failure count (0 when the whole batch succeeded). Harnesses use
 * the result as their exit status contribution.
 */
std::size_t reportFailures(const std::vector<RunOutcome> &outcomes);

/**
 * Write one {"quarantined_keys": [...]} summary line listing the
 * identities the engine currently refuses
 * (ExperimentEngine::quarantinedKeys()). No-op when @p keys is empty,
 * so clean batches stay byte-identical to pre-quarantine reports.
 */
void writeQuarantineSummary(const std::vector<std::string> &keys,
                            std::ostream &os);

/** Append the summary line to @p path (no-op on empty keys/path). */
void appendQuarantineSummary(const std::vector<std::string> &keys,
                             const std::string &path);

} // namespace exp
} // namespace coscale

#endif // COSCALE_EXP_REPORT_HH
