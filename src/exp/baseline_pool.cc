#include "exp/baseline_pool.hh"

#include <memory>

#include "exp/digest.hh"

namespace coscale {
namespace exp {

const RunResult &
BaselinePool::baseline(const RunRequest &req)
{
    SystemConfig cfg = req.effectiveConfig();
    BaselineKey key{configDigest(cfg), workloadDigest(req.apps),
                    req.label};

    std::shared_future<RunResult> fut;
    std::shared_ptr<std::promise<RunResult>> prom;
    {
        MutexLock lock(mu);
        auto it = entries.find(key);
        if (it == entries.end()) {
            prom = std::make_shared<std::promise<RunResult>>();
            fut = prom->get_future().share();
            entries.emplace(std::move(key), fut);
            nMisses.fetch_add(1, std::memory_order_relaxed);
        } else {
            fut = it->second;
            nHits.fetch_add(1, std::memory_order_relaxed);
        }
    }

    if (prom) {
        try {
            RunRequest base;
            base.label = req.label;
            base.cfg = cfg;
            base.apps = req.apps;
            base.makePolicy = [] {
                return std::make_unique<BaselinePolicy>();
            };
            base.forceAudit = req.forceAudit;
            prom->set_value(coscale::run(base));
        } catch (...) {
            prom->set_exception(std::current_exception());
        }
    }
    return fut.get();
}

std::size_t
BaselinePool::size() const
{
    MutexLock lock(mu);
    return entries.size();
}

BaselinePool &
processBaselinePool()
{
    static BaselinePool pool;
    return pool;
}

} // namespace exp
} // namespace coscale
