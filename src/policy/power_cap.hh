/**
 * @file
 * Power-capping extension (Section 2.3: "CoScale can be readily
 * extended to cap power with appropriate changes to its decision
 * algorithm"). Instead of minimising SER under a performance bound,
 * the capped variant minimises performance loss subject to a
 * full-system power ceiling: the same greedy walk takes the
 * highest-utility (delta power / delta performance) steps until the
 * predicted system power fits under the cap.
 */

#ifndef COSCALE_POLICY_POWER_CAP_HH
#define COSCALE_POLICY_POWER_CAP_HH

#include "policy/policy.hh"

namespace coscale {

/**
 * The shared capping walk: start from all-max and greedily take the
 * highest-utility (delta power / delta performance) single step —
 * one memory rung or one rung on one core — until the predicted
 * system power fits under @p target_w. Sets *over_cap when even
 * all-min cannot fit; accumulates search telemetry into
 * *candidates / *mem_steps (all three pointers required). Used by
 * PowerCapPolicy and FastCapPolicy.
 */
FreqConfig greedyCapDescent(const SystemProfile &profile,
                            const EnergyModel &em, double target_w,
                            bool *over_cap, std::uint64_t *candidates,
                            std::uint64_t *mem_steps);

/** Greedy power-capping controller built on the CoScale machinery. */
class PowerCapPolicy final : public Policy
{
  public:
    explicit PowerCapPolicy(double cap_watts)
        : capWatts(cap_watts)
    {
    }

    std::string name() const override { return "PowerCap"; }

    FreqConfig decide(const SystemProfile &profile, const EnergyModel &em,
                      const FreqConfig &current, Tick epoch_len) override;

    void
    observeEpoch(const EpochObservation &, const EnergyModel &) override
    {
    }

    double cap() const { return capWatts; }

    void setPowerCap(double watts) override { capWatts = watts; }

    /** True if the last decision could not fit under the cap. */
    bool lastDecisionOverCap() const { return overCap; }

  private:
    double capWatts;
    bool overCap = false;
};

} // namespace coscale

#endif // COSCALE_POLICY_POWER_CAP_HH
