#include "policy/multiscale.hh"

#include <algorithm>

#include "common/log.hh"
#include "model/knobs.hh"

namespace coscale {

namespace {

/** Per-channel memory power at ladder index m, traffic-anchored. */
double
channelPower(const EnergyModel &em, const MemProfile &chan,
             double traffic_scale, int m)
{
    const PerfModel &perf = em.perfModel();
    Freq f = em.mem().freq(m);
    MemActivityRates rates;
    double traffic = chan.trafficPerSec * traffic_scale;
    rates.readsPs = traffic * (1.0 - chan.writeFrac);
    rates.writesPs = traffic * chan.writeFrac;
    double stretch = perf.busSecs(f) / perf.busSecs(chan.profiledBusFreq);
    rates.busUtil =
        std::min(1.0, chan.busUtil * traffic_scale * stretch);
    rates.rankActiveFrac =
        std::min(1.0, chan.rankActiveFrac * traffic_scale);
    return em.powerModel()
        .memPowerBreakdown(em.mem().voltage(m), f, rates, 1)
        .total();
}

} // namespace

double
MultiScalePolicy::refTpiOf(const SystemProfile &prof,
                           const EnergyModel &em, int i) const
{
    const CoreProfile &c = prof.cores[static_cast<size_t>(i)];
    const MemProfile &mem =
        (c.homeChannel >= 0
         && c.homeChannel < static_cast<int>(prof.channels.size()))
            ? prof.channels[static_cast<size_t>(c.homeChannel)]
            : prof.mem;
    return em.perfModel().tpiSecs(c, em.cores().fMax(), mem,
                                  em.mem().fMax());
}

FreqConfig
MultiScalePolicy::decide(const SystemProfile &profile,
                         const EnergyModel &em, const FreqConfig &current,
                         Tick epoch_len)
{
    (void)current;
    int n = static_cast<int>(profile.cores.size());
    int channels = static_cast<int>(profile.channels.size());
    const PerfModel &perf = em.perfModel();

    FreqConfig cfg = FreqConfig::allMax(n);

    // Admissible TPI per core, against its home channel's profile.
    double epoch_secs = ticksToSeconds(epoch_len);
    std::vector<double> allowed(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        allowed[static_cast<size_t>(i)] = tracker.allowedTpi(
            appOf(profile.appOnCore, i), refTpiOf(profile, em, i),
            epoch_secs);
    }

    if (channels == 0) {
        // No per-channel profile available: behave like MemScale.
        std::vector<double> ref = refTpis(em, profile, cfg);
        SearchStats stats;
        cfg.memIdx = memOnlyBest(em, profile, cfg.coreIdx, allowed,
                                 obsEnabled() ? &stats : nullptr);
        if (obsEnabled())
            traceSearch(stats.candidates, 0, 0, 0, stats.bestSer);
        return cfg;
    }

    SerEvaluator ev(em, profile);
    double p_base = ev.basePower();
    // Ladder bounds come from the knob space (DESIGN.md §13); the
    // per-channel dimension is this policy's native axis.
    int mem_steps = makeKnobSpace(em, profile).memSteps;

    // Precompute, per channel and frequency step: the worst relative
    // slowdown among the cores homed on it, its power, and per-core
    // admissibility. Channels are independent in performance (each
    // core's traffic goes to one channel), so a joint optimum is a
    // cap-scan: for every achievable worst-slowdown cap, each channel
    // independently drops as deep as the cap and the per-core bounds
    // allow, and the SER couples them through max() and sum().
    std::vector<std::vector<double>> t_rel(
        static_cast<size_t>(channels),
        std::vector<double>(static_cast<size_t>(mem_steps), 1.0));
    std::vector<std::vector<double>> p_ch(
        static_cast<size_t>(channels),
        std::vector<double>(static_cast<size_t>(mem_steps), 0.0));
    std::vector<int> deepest(static_cast<size_t>(channels), 0);
    std::vector<double> caps;
    caps.push_back(1.0);

    for (int ch = 0; ch < channels; ++ch) {
        const MemProfile &chan =
            profile.channels[static_cast<size_t>(ch)];
        std::vector<int> homed;
        for (int i = 0; i < n; ++i) {
            int home = profile.cores[static_cast<size_t>(i)].homeChannel;
            if (home == ch || home < 0)
                homed.push_back(i);
        }
        for (int m = 0; m < mem_steps; ++m) {
            Freq f = em.mem().freq(m);
            double worst = 1.0;
            double reads_now = 0.0;
            double reads_max = 0.0;
            bool feasible = true;
            for (int i : homed) {
                const CoreProfile &c =
                    profile.cores[static_cast<size_t>(i)];
                double t_max = perf.tpiSecs(c, em.cores().fMax(), chan,
                                            em.mem().fMax());
                double t = perf.tpiSecs(c, em.cores().fMax(), chan, f);
                if (t > allowed[static_cast<size_t>(i)]) {
                    feasible = false;
                    break;
                }
                worst = std::max(worst, t_max > 0.0 ? t / t_max : 1.0);
                reads_now += c.memReadPerInstr / t;
                reads_max += c.memReadPerInstr / t_max;
            }
            if (!feasible)
                break;
            double traffic_scale =
                reads_max > 0.0 ? reads_now / reads_max : 1.0;
            t_rel[static_cast<size_t>(ch)][static_cast<size_t>(m)] =
                worst;
            p_ch[static_cast<size_t>(ch)][static_cast<size_t>(m)] =
                channelPower(em, chan, traffic_scale, m);
            deepest[static_cast<size_t>(ch)] = m;
            caps.push_back(worst);
        }
    }
    std::sort(caps.begin(), caps.end());
    caps.erase(std::unique(caps.begin(), caps.end()), caps.end());

    double p_mem_max = 0.0;
    for (int ch = 0; ch < channels; ++ch)
        p_mem_max += p_ch[static_cast<size_t>(ch)][0];

    cfg.chanIdx.assign(static_cast<size_t>(channels), 0);
    double best_ser = 1.0;
    std::uint64_t candidates = 0;
    std::vector<int> pick(static_cast<size_t>(channels), 0);
    for (double cap : caps) {
        double worst = 1.0;
        double p_mem = 0.0;
        for (int ch = 0; ch < channels; ++ch) {
            size_t sc = static_cast<size_t>(ch);
            int m_pick = 0;
            for (int m = deepest[sc]; m >= 1; --m) {
                if (t_rel[sc][static_cast<size_t>(m)] <= cap) {
                    m_pick = m;
                    break;
                }
            }
            pick[sc] = m_pick;
            worst = std::max(
                worst, t_rel[sc][static_cast<size_t>(m_pick)]);
            p_mem += p_ch[sc][static_cast<size_t>(m_pick)];
        }
        double ser = worst * (p_base - p_mem_max + p_mem) / p_base;
        candidates += 1;
        if (ser < best_ser) {
            best_ser = ser;
            cfg.chanIdx = pick;
        }
    }

    // Report the shallowest channel as the nominal uniform index for
    // loggers that only understand memIdx.
    cfg.memIdx = *std::min_element(cfg.chanIdx.begin(),
                                   cfg.chanIdx.end());
    if (obsEnabled())
        traceSearch(candidates, 0, 0, 0, best_ser);
    return cfg;
}

void
MultiScalePolicy::observeEpoch(const EpochObservation &obs,
                               const EnergyModel &em)
{
    int n = static_cast<int>(obs.epochProfile.cores.size());
    double secs = ticksToSeconds(obs.epochTicks);
    for (int i = 0; i < n; ++i) {
        tracker.update(appOf(obs.appOnCore, i),
                       refTpiOf(obs.epochProfile, em, i),
                       obs.instrs[static_cast<size_t>(i)], secs);
    }
}

} // namespace coscale
