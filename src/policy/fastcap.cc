#include "policy/fastcap.hh"

#include <algorithm>

#include "model/knobs.hh"
#include "policy/power_cap.hh"

namespace coscale {

FreqConfig
FastCapPolicy::decide(const SystemProfile &profile, const EnergyModel &em,
                      const FreqConfig &, Tick)
{
    // Phase 1 — fit: the shared greedy descent, aiming slightly below
    // the cap for model-error headroom (same 4% margin as PowerCap).
    double target = capWatts * 0.96;
    std::uint64_t candidates = 0;
    std::uint64_t mem_steps = 0;
    FreqConfig cfg = greedyCapDescent(profile, em, target, &overCap,
                                      &candidates, &mem_steps);

    // Phase 2 — fairness upgrade: the utility-greedy descent can
    // overshoot (its last, highest-utility step is not necessarily
    // the cheapest one that fits), leaving headroom another dimension
    // could use. Repeatedly take the single upgrade that most reduces
    // predicted relative time while still fitting under the target.
    // Each iteration raises one ladder index, so the loop is bounded
    // by the total rung count.
    constexpr double eps = 1e-12;
    KnobSpace space = makeKnobSpace(em, profile, target);
    while (!overCap) {
        int n = static_cast<int>(profile.cores.size());
        double cur_rel = em.relativeTime(profile, cfg);
        double best_rel = cur_rel - eps;
        FreqConfig best_next = cfg;
        bool any = false;

        if (cfg.memIdx > 0) {
            FreqConfig next = cfg;
            next.memIdx -= 1;
            candidates += 1;
            if (space.underCap(em, profile, next)) {
                double rel = em.relativeTime(profile, next);
                if (rel < best_rel) {
                    best_rel = rel;
                    best_next = next;
                    any = true;
                }
            }
        }
        for (int i = 0; i < n; ++i) {
            if (cfg.coreIdx[static_cast<size_t>(i)] == 0)
                continue;
            FreqConfig next = cfg;
            next.coreIdx[static_cast<size_t>(i)] -= 1;
            candidates += 1;
            if (space.underCap(em, profile, next)) {
                double rel = em.relativeTime(profile, next);
                if (rel < best_rel) {
                    best_rel = rel;
                    best_next = next;
                    any = true;
                }
            }
        }
        if (!any)
            break;
        if (best_next.memIdx != cfg.memIdx)
            mem_steps += 1;
        cfg = best_next;
    }

    if (obsEnabled())
        traceSearch(candidates, mem_steps, 0, 0, -1.0);
    return cfg;
}

void
FastCapPolicy::observeEpoch(const EpochObservation &obs,
                            const EnergyModel &em)
{
    // Honest all-max reference, like CoScale: the ledger records how
    // far the cap pushed each application behind its nominal pace.
    // Reporting only — decide() never reads it (see the header).
    int n = static_cast<int>(obs.epochProfile.cores.size());
    double secs = ticksToSeconds(obs.epochTicks);
    for (int i = 0; i < n; ++i) {
        int app = appOf(obs.appOnCore, i);
        tracker.update(app, em.tpiAtMax(obs.epochProfile, i),
                       obs.instrs[static_cast<size_t>(i)], secs);
    }
}

} // namespace coscale
