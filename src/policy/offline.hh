/**
 * @file
 * The Offline upper-bound policy (Section 3.2): per epoch, it is
 * given a *perfect* profile of the upcoming epoch (the runner clones
 * the simulator and runs the clone ahead at maximum frequencies),
 * and selects frequencies by exhaustive-equivalent search over all
 * memory and core combinations. Impractical by construction; used
 * only as an upper bound on CoScale. Like CoScale it remains
 * epoch-by-epoch greedy: it never banks slack for future epochs.
 */

#ifndef COSCALE_POLICY_OFFLINE_HH
#define COSCALE_POLICY_OFFLINE_HH

#include "policy/policy.hh"
#include "policy/search_common.hh"

namespace coscale {

/** Oracle-profiled, exhaustive-search policy. */
class OfflinePolicy final : public Policy
{
  public:
    OfflinePolicy(int num_apps, double gamma)
        : tracker(num_apps, gamma)
    {
    }

    std::string name() const override { return "Offline"; }

    bool wantsOracleProfile() const override { return true; }

    double slackGamma() const override { return tracker.gamma(); }

    const SlackTracker *slackLedger() const override { return &tracker; }

    FreqConfig
    decide(const SystemProfile &profile, const EnergyModel &em,
           const FreqConfig &, Tick epoch_len) override
    {
        int n = static_cast<int>(profile.cores.size());
        FreqConfig all_max = FreqConfig::allMax(n);
        std::vector<double> ref = refTpis(em, profile, all_max);
        std::vector<double> allowed =
            allowedTpis(tracker, ref, epoch_len, profile.appOnCore);
        SearchStats stats;
        FreqConfig pick = exhaustiveBest(
            em, profile, allowed, obsEnabled() ? &stats : nullptr);
        if (obsEnabled())
            traceSearch(stats.candidates, 0, 0, 0, stats.bestSer);
        return pick;
    }

    void
    observeEpoch(const EpochObservation &obs,
                 const EnergyModel &em) override
    {
        int n = static_cast<int>(obs.epochProfile.cores.size());
        FreqConfig all_max = FreqConfig::allMax(n);
        double secs = ticksToSeconds(obs.epochTicks);
        for (int i = 0; i < n; ++i) {
            double ref = em.tpi(obs.epochProfile, i, all_max);
            tracker.update(appOf(obs.appOnCore, i), ref,
                           obs.instrs[static_cast<size_t>(i)], secs);
        }
    }

  private:
    SlackTracker tracker;
};

} // namespace coscale

#endif // COSCALE_POLICY_OFFLINE_HH
