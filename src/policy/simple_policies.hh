/**
 * @file
 * The single-component comparison policies of Section 3.2:
 *
 *  - MemScale: memory-subsystem DVFS only, cores pinned at maximum;
 *  - CPUOnly: per-core DVFS only, memory pinned at maximum, with the
 *    optimistic exhaustive-equivalent selection the paper grants it.
 *
 * Both assume the unmanaged component behaves next epoch as it did in
 * the profiling window, and both keep honest (all-max-referenced)
 * slack accounting.
 */

#ifndef COSCALE_POLICY_SIMPLE_POLICIES_HH
#define COSCALE_POLICY_SIMPLE_POLICIES_HH

#include "policy/policy.hh"
#include "policy/search_common.hh"

namespace coscale {

/** Shared base: honest slack accounting against all-max reference. */
class TrackedPolicy : public Policy
{
  public:
    TrackedPolicy(int num_apps, double gamma)
        : tracker(num_apps, gamma)
    {
    }

    void
    observeEpoch(const EpochObservation &obs,
                 const EnergyModel &em) override
    {
        int n = static_cast<int>(obs.epochProfile.cores.size());
        FreqConfig all_max = FreqConfig::allMax(n);
        double secs = ticksToSeconds(obs.epochTicks);
        for (int i = 0; i < n; ++i) {
            double ref = em.tpi(obs.epochProfile, i, all_max);
            tracker.update(appOf(obs.appOnCore, i), ref,
                           obs.instrs[static_cast<size_t>(i)], secs);
        }
    }

    const SlackTracker &slack() const { return tracker; }

    double slackGamma() const override { return tracker.gamma(); }

    const SlackTracker *slackLedger() const override { return &tracker; }

  protected:
    SlackTracker tracker;
};

/** Memory-subsystem DVFS only (MemScale, [10]). */
class MemScalePolicy final : public TrackedPolicy
{
  public:
    using TrackedPolicy::TrackedPolicy;

    std::string name() const override { return "MemScale"; }

    FreqConfig
    decide(const SystemProfile &profile, const EnergyModel &em,
           const FreqConfig &, Tick epoch_len) override
    {
        int n = static_cast<int>(profile.cores.size());
        FreqConfig cfg = FreqConfig::allMax(n);
        std::vector<double> ref = refTpis(em, profile, cfg);
        std::vector<double> allowed =
            allowedTpis(tracker, ref, epoch_len, profile.appOnCore);
        SearchStats stats;
        cfg.memIdx = memOnlyBest(em, profile, cfg.coreIdx, allowed,
                                 obsEnabled() ? &stats : nullptr);
        if (obsEnabled())
            traceSearch(stats.candidates, 0, 0, 0, stats.bestSer);
        return cfg;
    }
};

/**
 * Measurement-driven feedback governor — the classic alternative to
 * model-based control that Section 2.1 contrasts CoScale against.
 * It shares the honest slack accounting but uses *no* performance or
 * power model when deciding: when slack accumulates it steps one
 * dimension down (alternating CPU and memory), and when slack goes
 * negative it steps both back up. Converges slowly, dithers around
 * phase changes, and cannot trade the two knobs against each other —
 * which is exactly why the paper's model-predictive search wins.
 */
class ReactivePolicy final : public TrackedPolicy
{
  public:
    using TrackedPolicy::TrackedPolicy;

    std::string name() const override { return "Reactive"; }

    FreqConfig
    decide(const SystemProfile &profile, const EnergyModel &em,
           const FreqConfig &current, Tick epoch_len) override
    {
        int n = static_cast<int>(profile.cores.size());
        double epoch_secs = ticksToSeconds(epoch_len);

        // Aggregate slack position, in fractions of an epoch.
        double worst = 1e18;
        for (int i = 0; i < n; ++i)
            worst = std::min(worst, tracker.slackSecs(i));
        double pos = worst / epoch_secs;

        int cpu = current.coreIdx.empty() ? 0 : current.coreIdx[0];
        int mem = current.memIdx;
        if (pos > 0.25 * tracker.gamma()) {
            // Comfortably ahead: spend, alternating dimensions.
            if (stepCpuNext && cpu + 1 < em.cores().size())
                cpu += 1;
            else if (mem + 1 < em.mem().size())
                mem += 1;
            else if (cpu + 1 < em.cores().size())
                cpu += 1;
            stepCpuNext = !stepCpuNext;
        } else if (pos < 0.0) {
            // Behind the bound: back off both knobs.
            cpu = std::max(0, cpu - 1);
            mem = std::max(0, mem - 1);
        }

        FreqConfig cfg;
        cfg.coreIdx.assign(static_cast<size_t>(n), cpu);
        cfg.memIdx = mem;
        // Model-free: one candidate per decision, no SER evaluated.
        if (obsEnabled())
            traceSearch(1, 0, 0, 0, -1.0);
        return cfg;
    }

  private:
    bool stepCpuNext = true;
};

/** Per-core CPU DVFS only, exhaustive-equivalent selection. */
class CpuOnlyPolicy final : public TrackedPolicy
{
  public:
    using TrackedPolicy::TrackedPolicy;

    std::string name() const override { return "CPUOnly"; }

    FreqConfig
    decide(const SystemProfile &profile, const EnergyModel &em,
           const FreqConfig &, Tick epoch_len) override
    {
        int n = static_cast<int>(profile.cores.size());
        FreqConfig all_max = FreqConfig::allMax(n);
        std::vector<double> ref = refTpis(em, profile, all_max);
        std::vector<double> allowed =
            allowedTpis(tracker, ref, epoch_len, profile.appOnCore);
        double ser = 0.0;
        SearchStats stats;
        FreqConfig pick = capScanBestForMem(
            em, profile, 0, allowed, ser,
            obsEnabled() ? &stats : nullptr);
        if (obsEnabled())
            traceSearch(stats.candidates, 0, 0, 0, stats.bestSer);
        return pick;
    }
};

} // namespace coscale

#endif // COSCALE_POLICY_SIMPLE_POLICIES_HH
