/**
 * @file
 * FastCap (PAPERS.md): the per-node controller of the cluster
 * power-capping scheme. Where PowerCapPolicy stops as soon as the
 * predicted power fits under the cap, FastCap spends any leftover
 * headroom on performance: after the shared greedy descent it
 * repeatedly takes the single upgrade step (one memory rung or one
 * core rung back up) that most reduces the predicted relative
 * execution time while still fitting under the cap — the
 * maximise-minimum-performance fairness rule, expressed on the
 * CoScale performance model.
 *
 * The cap is mutable (setPowerCap): the cluster allocator re-divides
 * the global budget every cluster epoch and pushes each node's grant
 * into its FastCap instance before the next decide().
 *
 * Deliberately NOT overridden: slackLedger(). safeDecide()'s
 * slack-exhaustion escape hatch jumps to all-max frequencies when a
 * ledger shows a deep deficit — under a tight cap that is exactly the
 * wrong move (it would blow the budget the node was granted). For a
 * capped node the power bound dominates the performance bound, so the
 * ledger stays internal, for reporting only.
 */

#ifndef COSCALE_POLICY_FASTCAP_HH
#define COSCALE_POLICY_FASTCAP_HH

#include "policy/policy.hh"

namespace coscale {

/** Cap-then-maximise-performance controller (FastCap's node agent). */
class FastCapPolicy final : public Policy
{
  public:
    /**
     * @param num_apps slack-ledger width (reporting only)
     * @param gamma the nominal performance bound the ledger tracks
     * @param cap_watts initial power cap; updated via setPowerCap()
     */
    FastCapPolicy(int num_apps, double gamma, double cap_watts)
        : tracker(num_apps, gamma), capWatts(cap_watts)
    {
    }

    std::string name() const override { return "FastCap"; }

    FreqConfig decide(const SystemProfile &profile, const EnergyModel &em,
                      const FreqConfig &current, Tick epoch_len) override;

    void observeEpoch(const EpochObservation &obs,
                      const EnergyModel &em) override;

    double slackGamma() const override { return tracker.gamma(); }

    void setPowerCap(double watts) override { capWatts = watts; }

    double cap() const { return capWatts; }

    /** True if the last decision could not fit under the cap. */
    bool lastDecisionOverCap() const { return overCap; }

    /** The internal (reporting-only) slack ledger. */
    const SlackTracker &slack() const { return tracker; }

  private:
    SlackTracker tracker;
    double capWatts;
    bool overCap = false;
};

} // namespace coscale

#endif // COSCALE_POLICY_FASTCAP_HH
