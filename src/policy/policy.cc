/**
 * @file
 * Policy::safeDecide — the graceful-degradation wrapper around
 * decide(). See the header comment in policy.hh for the contract;
 * the guards themselves live in search_common (decisionSane,
 * minSlackSecs) so tests and other layers can reuse them.
 */

#include "policy/policy.hh"

#include "policy/search_common.hh"

namespace coscale {

FreqConfig
Policy::safeDecide(const SystemProfile &profile, const EnergyModel &em,
                   const FreqConfig &current, Tick epoch_len)
{
    // Guard 1: slack-exhaustion escape hatch. A deficit deeper than
    // one gamma-epoch means no configuration is admissible (allowed
    // TPI has dropped below even the all-max reference pace), so the
    // only bound-respecting move is maximum frequency everywhere.
    // Threshold in gamma-epochs rather than epochs so it engages
    // exactly where the admissibility algebra says the search space
    // is empty — before the deficit becomes unrecoverable.
    if (const SlackTracker *ledger = slackLedger()) {
        double epoch_secs = ticksToSeconds(epoch_len);
        double worst = minSlackSecs(*ledger);
        if (worst < -ledger->gamma() * epoch_secs) {
            if (obsMetrics)
                obsMetrics->counter("guard.escape_hatch").inc();
            if (obsSink) {
                obsSink->write(TraceEvent(obsTick, "guard",
                                          "escape_hatch")
                                   .f("worst_slack_secs", worst)
                                   .f("epoch_secs", epoch_secs));
            }
            return FreqConfig::allMax(
                static_cast<int>(profile.cores.size()));
        }
    }

    // Guard 2a: profile validation. A poisoned snapshot (dropped-out
    // counters read back NaN) makes every NaN comparison false and
    // can trap a gradient search in an endless not-better-not-worse
    // plateau — so if even the *running* configuration's predictions
    // are garbage, hold it without consulting the search at all.
    if (!decisionSane(em, profile, current)) {
        if (obsMetrics)
            obsMetrics->counter("guard.held_decision").inc();
        if (obsSink) {
            obsSink->write(TraceEvent(obsTick, "guard", "hold")
                               .f("policy", name())
                               .f("mem_idx", current.memIdx)
                               .f("held_mem_idx", current.memIdx));
        }
        return current;
    }

    FreqConfig d = decide(profile, em, current, epoch_len);

    // Guard 2b: model-output validation. Off-ladder indices or a
    // non-finite/non-positive predicted TPI hold the configuration
    // that is already running — it was sane when granted and keeps
    // the system in a known state for one epoch.
    if (!decisionSane(em, profile, d)) {
        if (obsMetrics)
            obsMetrics->counter("guard.held_decision").inc();
        if (obsSink) {
            obsSink->write(
                TraceEvent(obsTick, "guard", "hold")
                    .f("policy", name())
                    .f("mem_idx", d.memIdx)
                    .f("held_mem_idx", current.memIdx));
        }
        return current;
    }
    return d;
}

} // namespace coscale
