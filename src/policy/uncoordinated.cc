#include "policy/uncoordinated.hh"

namespace coscale {

FreqConfig
UncoordinatedPolicy::decide(const SystemProfile &profile,
                            const EnergyModel &em,
                            const FreqConfig &current, Tick epoch_len)
{
    int n = static_cast<int>(profile.cores.size());

    // CPU manager: plans against (cores max, memory as-is); spends its
    // whole slack on core frequencies.
    FreqConfig cpu_ref = FreqConfig::allMax(n);
    cpu_ref.memIdx = current.memIdx;
    std::vector<double> cpu_ref_tpi = refTpis(em, profile, cpu_ref);
    std::vector<double> cpu_allowed = allowedTpis(
        cpuTracker, cpu_ref_tpi, epoch_len, profile.appOnCore);
    double ser = 0.0;
    SearchStats stats;
    SearchStats *sp = obsEnabled() ? &stats : nullptr;
    FreqConfig cpu_pick = capScanBestForMem(em, profile, current.memIdx,
                                            cpu_allowed, ser, sp);

    // Memory manager: plans against (cores as-is, memory max); spends
    // the same slack on the memory frequency.
    FreqConfig mem_ref;
    mem_ref.coreIdx = current.coreIdx;
    mem_ref.memIdx = 0;
    std::vector<double> mem_ref_tpi = refTpis(em, profile, mem_ref);
    std::vector<double> mem_allowed = allowedTpis(
        memTracker, mem_ref_tpi, epoch_len, profile.appOnCore);
    int mem_pick =
        memOnlyBest(em, profile, current.coreIdx, mem_allowed, sp);

    FreqConfig combined;
    combined.coreIdx = cpu_pick.coreIdx;
    combined.memIdx = mem_pick;
    lastApplied = combined;
    // The two managers never compare a joint SER, so no best_ser.
    if (obsEnabled())
        traceSearch(stats.candidates, 0, 0, 0, -1.0);
    return combined;
}

void
UncoordinatedPolicy::observeEpoch(const EpochObservation &obs,
                                  const EnergyModel &em)
{
    int n = static_cast<int>(obs.epochProfile.cores.size());
    double secs = ticksToSeconds(obs.epochTicks);

    // Each manager references a world where only its component can
    // have degraded performance: the other component's applied state
    // is treated as the baseline.
    FreqConfig cpu_ref = FreqConfig::allMax(n);
    cpu_ref.memIdx = obs.applied.memIdx;
    FreqConfig mem_ref;
    mem_ref.coreIdx = obs.applied.coreIdx;
    mem_ref.memIdx = 0;

    for (int i = 0; i < n; ++i) {
        std::uint64_t instrs = obs.instrs[static_cast<size_t>(i)];
        int app = appOf(obs.appOnCore, i);
        cpuTracker.update(app, em.tpi(obs.epochProfile, i, cpu_ref),
                          instrs, secs);
        memTracker.update(app, em.tpi(obs.epochProfile, i, mem_ref),
                          instrs, secs);
    }
}

FreqConfig
SemiCoordinatedPolicy::decide(const SystemProfile &profile,
                              const EnergyModel &em,
                              const FreqConfig &current, Tick epoch_len)
{
    int n = static_cast<int>(profile.cores.size());
    std::uint64_t epoch = epochNo++;

    // Honest reference: all-max. The shared slack is the coordination
    // the paper grants this policy.
    FreqConfig all_max = FreqConfig::allMax(n);
    std::vector<double> ref = refTpis(em, profile, all_max);
    std::vector<double> allowed =
        allowedTpis(tracker, ref, epoch_len, profile.appOnCore);

    bool cpu_acts = phase == Phase::InPhase || (epoch % 2 == 0);
    bool mem_acts = phase == Phase::InPhase || (epoch % 2 == 1);

    SearchStats stats;
    SearchStats *sp = obsEnabled() ? &stats : nullptr;
    FreqConfig combined = current;
    if (cpu_acts) {
        double ser = 0.0;
        FreqConfig pick = capScanBestForMem(em, profile, current.memIdx,
                                            allowed, ser, sp);
        combined.coreIdx = pick.coreIdx;
    }
    if (mem_acts) {
        combined.memIdx =
            memOnlyBest(em, profile, current.coreIdx, allowed, sp);
    }
    if (obsEnabled())
        traceSearch(stats.candidates, 0, 0, 0, -1.0);
    return combined;
}

void
SemiCoordinatedPolicy::observeEpoch(const EpochObservation &obs,
                                    const EnergyModel &em)
{
    int n = static_cast<int>(obs.epochProfile.cores.size());
    FreqConfig all_max = FreqConfig::allMax(n);
    double secs = ticksToSeconds(obs.epochTicks);
    for (int i = 0; i < n; ++i) {
        double ref = em.tpi(obs.epochProfile, i, all_max);
        tracker.update(appOf(obs.appOnCore, i), ref,
                       obs.instrs[static_cast<size_t>(i)], secs);
    }
}

} // namespace coscale
