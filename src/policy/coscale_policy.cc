#include "policy/coscale_policy.hh"

#include <algorithm>
#include <cmath>

#include "common/log.hh"

namespace coscale {

namespace {

constexpr double perfEpsilon = 1e-15;

/** Sorted-list entry for the Fig. 3 group-formation sub-algorithm. */
struct CoreEntry
{
    int core;
    double dPerf;   //!< relative TPI increase of one step down
    double dPower;  //!< power reduction of one step down
};

} // namespace

FreqConfig
CoScalePolicy::decide(const SystemProfile &profile, const EnergyModel &em,
                      const FreqConfig &current, Tick epoch_len)
{
    (void)current;  // the walk restarts from all-max each epoch
    int n = static_cast<int>(profile.cores.size());
    walk.clear();

    FreqConfig all_max = FreqConfig::allMax(n);
    std::vector<double> ref = refTpis(em, profile, all_max);
    std::vector<double> allowed =
        allowedTpis(tracker, ref, epoch_len, profile.appOnCore);

    // Everything walk-invariant (all-max TPIs, baseline power, the
    // traffic anchor) is cached once; the walk then evaluates each
    // candidate in O(N).
    SerEvaluator ev(em, profile);

    FreqConfig cfg = all_max;
    FreqConfig best = cfg;
    double best_ser = ev.ser(cfg);
    if (recording)
        walk.push_back(SearchStep{cfg, best_ser, false, 0});

    // Cached per-core TPI at the current walk position and at max.
    std::vector<double> tpi_cur(static_cast<size_t>(n));
    std::vector<double> tpi_max(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) {
        tpi_cur[static_cast<size_t>(i)] = ev.tpi(i, 0, 0);
        tpi_max[static_cast<size_t>(i)] = ev.tpiAtMax(i);
    }

    // Build / maintain the sorted eligible-core list (Fig. 3, 1-2).
    std::vector<CoreEntry> list;
    auto make_entry = [&](int i, CoreEntry &e) -> bool {
        int idx = cfg.coreIdx[static_cast<size_t>(i)];
        if (idx + 1 >= em.cores().size())
            return false;
        double t_down = ev.tpi(i, idx + 1, cfg.memIdx);
        if (t_down > allowed[static_cast<size_t>(i)])
            return false;
        e.core = i;
        e.dPerf = (t_down - tpi_cur[static_cast<size_t>(i)])
                  / std::max(tpi_max[static_cast<size_t>(i)], perfEpsilon);
        e.dPower = ev.corePower(i, idx, cfg.memIdx)
                   - ev.corePower(i, idx + 1, cfg.memIdx);
        return true;
    };
    auto insert_sorted = [&](const CoreEntry &e) {
        auto pos = std::lower_bound(
            list.begin(), list.end(), e,
            [](const CoreEntry &a, const CoreEntry &b) {
                return a.dPerf < b.dPerf;
            });
        list.insert(pos, e);
    };
    for (int i = 0; i < n; ++i) {
        CoreEntry e;
        if (make_entry(i, e))
            insert_sorted(e);
    }

    bool cores_dirty = true;
    bool mem_dirty = true;
    double marginal_mem = 0.0;
    double d_perf_mem = 0.0;
    double marginal_cores = 0.0;
    int best_group = 0;

    auto mem_feasible = [&]() -> bool {
        if (cfg.memIdx + 1 >= em.mem().size())
            return false;
        for (int i = 0; i < n; ++i) {
            if (ev.tpi(i, cfg.coreIdx[static_cast<size_t>(i)],
                       cfg.memIdx + 1)
                > allowed[static_cast<size_t>(i)]) {
                return false;
            }
        }
        return true;
    };

    auto compute_mem_marginal = [&]() {
        FreqConfig down = cfg;
        down.memIdx += 1;
        d_perf_mem = perfEpsilon;
        for (int i = 0; i < n; ++i) {
            double d = (ev.tpi(i, cfg.coreIdx[static_cast<size_t>(i)],
                               cfg.memIdx + 1)
                        - tpi_cur[static_cast<size_t>(i)])
                       / std::max(tpi_max[static_cast<size_t>(i)],
                                  perfEpsilon);
            d_perf_mem = std::max(d_perf_mem, d);
        }
        double d_power = ev.systemPower(cfg) - ev.systemPower(down);
        marginal_mem = d_power / d_perf_mem;
    };

    // Fig. 3: prefix-sum group utilities over the sorted list. With
    // grouping ablated, only the head of the list (the single
    // cheapest core) competes against the memory step.
    auto compute_group_marginal = [&]() {
        marginal_cores = -1.0;
        best_group = 0;
        double power_sum = 0.0;
        size_t limit =
            opts.coreGrouping ? list.size()
                              : std::min<size_t>(1, list.size());
        for (size_t g = 0; g < limit; ++g) {
            power_sum += list[g].dPower;
            // A single voltage domain only offers the all-cores step.
            if (opts.chipWideCpuDvfs && g + 1 < list.size())
                continue;
            double d_perf = std::max(list[g].dPerf, perfEpsilon);
            double utility = power_sum / d_perf;
            if (utility > marginal_cores) {
                marginal_cores = utility;
                best_group = static_cast<int>(g) + 1;
            }
        }
    };

    auto apply_mem_step = [&]() {
        cfg.memIdx += 1;
        for (int i = 0; i < n; ++i) {
            tpi_cur[static_cast<size_t>(i)] =
                ev.tpi(i, cfg.coreIdx[static_cast<size_t>(i)],
                       cfg.memIdx);
        }
        mem_dirty = true;
        // Per Fig. 2 the core marginals are not recomputed on a
        // memory step (core delta-TPI is memory-independent in the
        // Eq. 1 model), but entries whose *feasibility* changed must
        // be dropped.
        list.erase(std::remove_if(list.begin(), list.end(),
                                  [&](const CoreEntry &e) {
                                      CoreEntry probe;
                                      return !make_entry(e.core, probe);
                                  }),
                   list.end());
        cores_dirty = true;
    };

    auto apply_group_step = [&](int g) {
        std::vector<int> members;
        for (int k = 0; k < g; ++k)
            members.push_back(list[static_cast<size_t>(k)].core);
        list.erase(list.begin(), list.begin() + g);
        for (int i : members) {
            cfg.coreIdx[static_cast<size_t>(i)] += 1;
            tpi_cur[static_cast<size_t>(i)] =
                ev.tpi(i, cfg.coreIdx[static_cast<size_t>(i)],
                       cfg.memIdx);
            CoreEntry e;
            if (make_entry(i, e))
                insert_sorted(e);
        }
        cores_dirty = true;
    };

    // Search telemetry (obs/): candidates = SER evaluations,
    // including the all-max starting point.
    std::uint64_t candidates = 1;
    std::uint64_t mem_steps = 0;
    std::uint64_t group_steps = 0;
    int max_group = 0;

    // Main loop of Fig. 2.
    while (true) {
        bool mem_ok = mem_feasible();
        bool cores_ok = !list.empty();
        if (opts.chipWideCpuDvfs) {
            // The chip can only step if *every* core that is not at
            // the ladder floor is eligible (slack-feasible).
            int scalable = 0;
            for (int idx : cfg.coreIdx) {
                if (idx + 1 < em.cores().size())
                    scalable += 1;
            }
            cores_ok = scalable > 0
                       && static_cast<int>(list.size()) == scalable;
        }
        if (!mem_ok && !cores_ok)
            break;

        bool step_is_mem;
        int group = 1;
        if (mem_ok && cores_ok) {
            if (mem_dirty) {
                compute_mem_marginal();
                mem_dirty = false;
            }
            if (cores_dirty) {
                compute_group_marginal();
                cores_dirty = false;
            }
            step_is_mem = marginal_mem > marginal_cores;
            group = best_group;
        } else if (mem_ok) {
            step_is_mem = true;
        } else {
            if (cores_dirty) {
                compute_group_marginal();
                cores_dirty = false;
            }
            step_is_mem = false;
            group = best_group;
        }

        if (step_is_mem) {
            apply_mem_step();
            mem_steps += 1;
        } else {
            apply_group_step(group);
            group_steps += 1;
            max_group = std::max(max_group, group);
        }

        double ser = ev.ser(cfg);
        candidates += 1;
        if (recording) {
            walk.push_back(SearchStep{cfg, ser, step_is_mem,
                                      step_is_mem ? 0 : group});
        }
        if (ser < best_ser) {
            best_ser = ser;
            best = cfg;
        }
    }

    if (obsEnabled()) {
        traceSearch(candidates, mem_steps, group_steps, max_group,
                    best_ser);
    }
    return best;
}

void
CoScalePolicy::observeEpoch(const EpochObservation &obs,
                            const EnergyModel &em)
{
    if (!opts.carrySlack) {
        // Ablation: forget history; every epoch gets exactly gamma.
        tracker = SlackTracker(tracker.size(), tracker.gamma(), 0.0);
        return;
    }
    int n = static_cast<int>(obs.epochProfile.cores.size());
    FreqConfig all_max = FreqConfig::allMax(n);
    double secs = ticksToSeconds(obs.epochTicks);
    for (int i = 0; i < n; ++i) {
        double ref = em.tpi(obs.epochProfile, i, all_max);
        tracker.update(appOf(obs.appOnCore, i), ref,
                       obs.instrs[static_cast<size_t>(i)], secs);
    }
}

} // namespace coscale
